// Tests for induced subgraphs and the coarse-grained multi-device
// driver (the paper's future-work extension).
#include <gtest/gtest.h>

#include "gen/cliques.hpp"
#include "gen/lfr.hpp"
#include "gen/sbm.hpp"
#include "graph/builder.hpp"
#include "graph/ops.hpp"
#include "metrics/compare.hpp"
#include "metrics/modularity.hpp"
#include "multi/multi.hpp"

namespace glouvain::multi {
namespace {

using graph::Csr;
using graph::VertexId;

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  // Path 0-1-2-3; take {1, 2}: one edge survives.
  const Csr g = graph::build_csr(4, {{0, 1, 1}, {1, 2, 2}, {2, 3, 1}});
  const std::vector<VertexId> members{1, 2};
  const Csr sub = graph::induced_subgraph(g, members);
  EXPECT_EQ(sub.num_vertices(), 2u);
  EXPECT_EQ(sub.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(sub.weights(0)[0], 2.0);
  EXPECT_TRUE(graph::validate(sub).empty());
}

TEST(InducedSubgraph, FullSetIsIdentity) {
  const auto g = gen::ring_of_cliques(4, 4);
  std::vector<VertexId> all(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
  EXPECT_EQ(graph::induced_subgraph(g, all), g);
}

TEST(InducedSubgraph, PreservesSelfLoops) {
  const Csr g = graph::build_csr(3, {{0, 0, 2.0}, {0, 1, 1.0}, {1, 2, 1.0}});
  const std::vector<VertexId> members{0, 1};
  const Csr sub = graph::induced_subgraph(g, members);
  EXPECT_DOUBLE_EQ(sub.loop_weight(0), 2.0);
}

TEST(InducedSubgraph, EmptySelection) {
  const auto g = gen::ring_of_cliques(2, 3);
  const Csr sub = graph::induced_subgraph(g, {});
  EXPECT_EQ(sub.num_vertices(), 0u);
}

TEST(MultiDevice, OneDeviceMatchesSingleDeviceQuality) {
  const auto bench = gen::lfr({.num_vertices = 4096, .mu = 0.25, .seed = 3});
  Config cfg;
  cfg.num_devices = 1;
  const Result r = louvain(bench.graph, cfg);
  const auto single = core::louvain(bench.graph);
  EXPECT_GT(r.modularity, 0.97 * single.modularity);
}

TEST(MultiDevice, BlockPartitionNearSingleDevice) {
  // LFR communities are id-contiguous, so block partitioning cuts few
  // communities: quality must track single-device closely.
  const auto bench = gen::lfr({.num_vertices = 4096, .mu = 0.25, .seed = 5});
  const double q_single = core::louvain(bench.graph).modularity;
  for (unsigned d : {2u, 4u}) {
    Config cfg;
    cfg.num_devices = d;
    cfg.partition = PartitionStrategy::Block;
    const Result r = louvain(bench.graph, cfg);
    EXPECT_GT(r.modularity, 0.95 * q_single) << d;
  }
}

TEST(MultiDevice, RandomPartitionLosesBoundedQuality) {
  // The coarse-grained literature (Cheong et al. [4]) reports up to
  // ~9% modularity loss under random partitioning; we allow 20% and
  // require the global finish to recover far above the coarse phase.
  const auto bench = gen::lfr({.num_vertices = 4096, .mu = 0.25, .seed = 7});
  const double q_single = core::louvain(bench.graph).modularity;
  Config cfg;
  cfg.num_devices = 4;
  cfg.partition = PartitionStrategy::Random;
  const Result r = louvain(bench.graph, cfg);
  EXPECT_GT(r.modularity, 0.80 * q_single);
  EXPECT_GT(r.modularity, r.local_modularity);
}

TEST(MultiDevice, ModularityConsistent) {
  const auto sbm = gen::planted_partition({.num_vertices = 2048,
                                           .num_communities = 16,
                                           .seed = 9});
  Config cfg;
  cfg.num_devices = 3;
  const Result r = louvain(sbm.graph, cfg);
  EXPECT_NEAR(r.modularity, metrics::modularity(sbm.graph, r.community), 1e-9);
  EXPECT_EQ(r.community.size(), sbm.graph.num_vertices());
  EXPECT_EQ(r.devices_used, 3u);
}

TEST(MultiDevice, StillFindsPlantedStructureWithBlocks) {
  const auto sbm = gen::planted_partition({.num_vertices = 2048,
                                           .num_communities = 16,
                                           .intra_degree = 14,
                                           .inter_degree = 1.5,
                                           .seed = 11});
  Config cfg;
  cfg.num_devices = 4;
  cfg.partition = PartitionStrategy::Block;
  const Result r = louvain(sbm.graph, cfg);
  EXPECT_GT(metrics::nmi(r.community, sbm.ground_truth), 0.85);
}

TEST(MultiDevice, EmptyGraph) {
  const Result r = louvain(graph::build_csr(0, {}), {});
  EXPECT_TRUE(r.community.empty());
}

TEST(MultiDevice, MoreDevicesThanVertices) {
  const auto g = gen::ring_of_cliques(2, 3);
  Config cfg;
  cfg.num_devices = 64;
  const Result r = louvain(g, cfg);
  EXPECT_EQ(r.community.size(), g.num_vertices());
  EXPECT_GT(r.modularity, 0.0);
}

}  // namespace
}  // namespace glouvain::multi
