// Tests for the dendrogram API, partition IO, and occupancy analysis.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/louvain.hpp"
#include "core/occupancy.hpp"
#include "gen/cliques.hpp"
#include "gen/lfr.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "metrics/dendrogram.hpp"
#include "metrics/partition.hpp"
#include "metrics/partition_io.hpp"
#include "plm/plm.hpp"
#include "seq/louvain.hpp"

namespace glouvain {
namespace {

using graph::Community;
using graph::VertexId;

TEST(Dendrogram, ComposesLevels) {
  metrics::Dendrogram d;
  d.push_level({0, 0, 1, 1, 2});   // 5 vertices -> 3 communities
  d.push_level({0, 1, 1});         // 3 -> 2
  d.push_level({0, 0});            // 2 -> 1
  EXPECT_EQ(d.num_levels(), 3u);
  EXPECT_EQ(d.num_vertices(), 5u);
  EXPECT_EQ(d.community_at_level(0), (std::vector<Community>{0, 0, 1, 1, 2}));
  EXPECT_EQ(d.community_at_level(1), (std::vector<Community>{0, 0, 1, 1, 1}));
  EXPECT_EQ(d.community_at_level(2), (std::vector<Community>{0, 0, 0, 0, 0}));
  EXPECT_EQ(d.communities_at_level(1), 2u);
}

TEST(Dendrogram, RejectsMismatchedDomain) {
  metrics::Dendrogram d;
  d.push_level({0, 1, 1});  // range = 2
  EXPECT_THROW(d.push_level({0, 1, 2}), std::invalid_argument);  // domain 3 != 2
}

TEST(Dendrogram, OutOfRangeLevelThrows) {
  metrics::Dendrogram d;
  d.push_level({0, 0});
  EXPECT_THROW(d.community_at_level(1), std::out_of_range);
}

class DendrogramCapture : public ::testing::TestWithParam<int> {};
std::string algo_name(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"core", "seq", "plm"};
  return kNames[info.param];
}
INSTANTIATE_TEST_SUITE_P(Algos, DendrogramCapture, ::testing::Values(0, 1, 2),
                         algo_name);

TEST_P(DendrogramCapture, LastLevelEqualsFinalCommunity) {
  const auto bench = gen::lfr({.num_vertices = 2048, .seed = 3});
  LouvainResult result;
  switch (GetParam()) {
    case 0: result = core::louvain(bench.graph); break;
    case 1: result = seq::louvain(bench.graph); break;
    default: result = plm::louvain(bench.graph); break;
  }
  ASSERT_GT(result.dendrogram.num_levels(), 0u);
  EXPECT_EQ(result.dendrogram.num_levels(), result.levels.size());
  EXPECT_EQ(result.dendrogram.community_at_level(result.dendrogram.num_levels() - 1),
            result.community);
  // Community count shrinks (weakly) level over level.
  for (std::size_t l = 0; l + 1 < result.dendrogram.num_levels(); ++l) {
    EXPECT_GE(result.dendrogram.communities_at_level(l),
              result.dendrogram.communities_at_level(l + 1));
  }
}

TEST(PartitionIo, RoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "glouvain_pio";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "p.txt").string();
  const std::vector<Community> part{3, 1, 4, 1, 5};
  metrics::save_partition(part, path);
  EXPECT_EQ(metrics::load_partition(path), part);
  std::filesystem::remove_all(dir);
}

TEST(PartitionIo, MissingVerticesAreInvalid) {
  const auto dir = std::filesystem::temp_directory_path() / "glouvain_pio2";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "p.txt").string();
  {
    std::ofstream out(path);
    out << "# comment\n0 7\n2 9\n";
  }
  const auto part = metrics::load_partition(path);
  ASSERT_EQ(part.size(), 3u);
  EXPECT_EQ(part[0], 7u);
  EXPECT_EQ(part[1], graph::kInvalidCommunity);
  EXPECT_EQ(part[2], 9u);
  std::filesystem::remove_all(dir);
}

TEST(PartitionIo, MissingFileThrows) {
  EXPECT_THROW(metrics::load_partition("/nonexistent/p.txt"), std::runtime_error);
}

TEST(Occupancy, ExactOnUniformDegrees) {
  // 4-regular ring: bucket 0 (lanes 4) -> one full round, 100%.
  const auto g = gen::ring_of_cliques(1, 5);  // K5: degree 4 everywhere
  const auto report =
      core::analyze_occupancy(g, core::BucketScheme::paper_modopt());
  EXPECT_DOUBLE_EQ(report.overall, 1.0);
}

TEST(Occupancy, PartialLastRound) {
  // Star hub degree 5 -> bucket 1 (8 lanes): 5/8; leaves degree 1 in
  // bucket 0 (4 lanes): 1/4.
  std::vector<graph::Edge> edges;
  for (VertexId leaf = 1; leaf <= 5; ++leaf) edges.push_back({0, leaf, 1.0});
  const auto g = graph::build_csr(6, std::move(edges));
  const auto report =
      core::analyze_occupancy(g, core::BucketScheme::paper_modopt());
  EXPECT_DOUBLE_EQ(report.buckets[1].occupancy, 5.0 / 8.0);
  EXPECT_DOUBLE_EQ(report.buckets[0].occupancy, 1.0 / 4.0);
  // overall = (5 + 5*1) / (8 + 5*4)
  EXPECT_DOUBLE_EQ(report.overall, 10.0 / 28.0);
}

TEST(Occupancy, SingleLaneIsAlwaysFull) {
  const auto g = gen::rmat({.scale = 10, .edge_factor = 8}, 7);
  const auto report =
      core::analyze_occupancy(g, core::BucketScheme::single_lane());
  EXPECT_DOUBLE_EQ(report.overall, 1.0);
}

TEST(Occupancy, PaperSchemeBeatsWarpPerVertexOnLowDegreeGraphs) {
  // Road-like degree ~2: 32 lanes per vertex wastes ~94% of slots.
  std::vector<graph::Edge> edges;
  for (VertexId v = 0; v + 1 < 1000; ++v) edges.push_back({v, v + 1, 1.0});
  const auto path = graph::build_csr(1000, std::move(edges));
  const auto paper =
      core::analyze_occupancy(path, core::BucketScheme::paper_modopt());
  const auto warp =
      core::analyze_occupancy(path, core::BucketScheme::warp_per_vertex());
  EXPECT_GT(paper.overall, 0.4);
  EXPECT_LT(warp.overall, 0.1);
}

}  // namespace
}  // namespace glouvain
