// Tests for the simtcheck race/contract checker (src/check/). Two
// halves, mirroring how compute-sanitizer is validated:
//
//  * seeded bugs — deliberately broken kernels (a shared-arena table
//    used by two tasks of one launch, a double slot claim, stale
//    shared-memory reuse, a nested launch, an aliased workspace) MUST
//    be detected and attributed with kernel name + task ids. These
//    guard the checker itself against rot: the CI `check` job fails if
//    a seeded bug goes unreported.
//  * clean runs — the real detection pipeline (core Louvain end to
//    end, and a multi-job svc stress) must produce ZERO violations
//    under full instrumentation.
//
// Determinism: seeded kernels run on a single-worker device, where
// tasks execute serially in task order on the calling thread, so the
// access interleaving the checker sees is schedule-independent.
//
// Every test skips itself when the checker is compiled out
// (non-GLOUVAIN_SIMTCHECK builds): the hooks are no-ops there and the
// registry never fills.
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "check/check.hpp"
#include "core/hash_map.hpp"
#include "core/louvain.hpp"
#include "core/workspace.hpp"
#include "gen/rmat.hpp"
#include "graph/types.hpp"
#include "simt/atomics.hpp"
#include "simt/device.hpp"
#include "simt/shared_arena.hpp"
#include "svc/service.hpp"

namespace glouvain {
namespace {

using graph::Community;
using graph::Weight;

constexpr Community kNull = core::LocalCommunityHashMap::kNull;
constexpr std::size_t kCap = 17;  // prime, as the table requires

class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if constexpr (!check::enabled()) {
      GTEST_SKIP() << "built without GLOUVAIN_SIMTCHECK";
    }
    check::reset();
  }
};

bool has_kind(const check::Report& report, check::ViolationKind kind) {
  for (const auto& v : report.violations) {
    if (v.kind == kind) return true;
  }
  return false;
}

const check::Violation* find_kind(const check::Report& report,
                                  check::ViolationKind kind) {
  for (const auto& v : report.violations) {
    if (v.kind == kind) return &v;
  }
  return nullptr;
}

// --- Seeded bugs ----------------------------------------------------

// The classic escaped-shared-memory bug: a hash table allocated from a
// SharedArena before the launch, then used by BOTH tasks. Task 0 claims
// the slot for community 7; task 1 sees the key present and plain-adds
// to the same weight cell — a write/write race on shared-arena storage.
TEST_F(CheckTest, DetectsSeededSharedArenaRace) {
  simt::Device device({.worker_threads = 1});
  simt::SharedArena arena(4096);
  auto keys = arena.alloc<Community>(kCap);
  auto weights = arena.alloc<Weight>(kCap);
  for (auto& k : keys) k = kNull;  // host-side init: not part of a launch
  for (auto& w : weights) w = 0;

  check::KernelScope scope("seeded/arena_race");
  device.launch(2, 1, [&](simt::TaskContext&) {
    core::LocalCommunityHashMap table(keys, weights);
    table.insert_add(7, 1.0);
  });

  const check::Report report = check::report();
  ASSERT_FALSE(report.clean()) << "seeded race went unreported";
  const check::Violation* race =
      find_kind(report, check::ViolationKind::kWriteWriteRace);
  ASSERT_NE(race, nullptr) << report.to_string();
  EXPECT_TRUE(race->shared_arena) << race->to_string();
  // Attribution: kernel label and both task ids.
  EXPECT_NE(race->kernel.find("seeded/arena_race"), std::string::npos)
      << race->to_string();
  EXPECT_NE(race->task_a, race->task_b);
  EXPECT_TRUE((race->task_a == 0 && race->task_b == 1) ||
              (race->task_a == 1 && race->task_b == 0))
      << race->to_string();
  // The status surface mirrors the CLI/tooling contract.
  EXPECT_FALSE(report.to_status().ok());
}

// Double claim: both tasks clear the shared table and then claim the
// slot for community 7. The physical clear hides the first claim from
// the second task (it reads kNull), but the shadow record survives a
// foreign init — exactly one CAS winner is the paper's invariant.
TEST_F(CheckTest, DetectsSeededDoubleClaim) {
  simt::Device device({.worker_threads = 1});
  simt::SharedArena arena(4096);
  auto keys = arena.alloc<Community>(kCap);
  auto weights = arena.alloc<Weight>(kCap);

  check::KernelScope scope("seeded/double_claim");
  device.launch(2, 1, [&](simt::TaskContext&) {
    core::LocalCommunityHashMap table(keys, weights);
    table.clear();
    table.insert_add(7, 1.0);
  });

  const check::Report report = check::report();
  const check::Violation* claim =
      find_kind(report, check::ViolationKind::kDoubleClaim);
  ASSERT_NE(claim, nullptr) << report.to_string();
  EXPECT_TRUE(claim->shared_arena) << claim->to_string();
  EXPECT_NE(claim->kernel.find("seeded/double_claim"), std::string::npos);
  EXPECT_NE(claim->task_a, claim->task_b);
}

// Stale shared memory: a kernel reads table contents written by a
// PREVIOUS launch — on the GPU that shared memory would long be
// reclaimed; the read observes garbage.
TEST_F(CheckTest, DetectsStaleSharedArenaRead) {
  simt::Device device({.worker_threads = 1});
  simt::SharedArena arena(4096);
  auto keys = arena.alloc<Community>(kCap);
  auto weights = arena.alloc<Weight>(kCap);
  core::LocalCommunityHashMap table(keys, weights);

  check::KernelScope scope("seeded/stale_read");
  device.launch(1, [&](simt::TaskContext&) {
    table.clear();
    table.insert_add(7, 1.0);
  });
  EXPECT_EQ(check::violation_count(), 0u);  // first launch is fine
  device.launch(1, [&](simt::TaskContext&) {
    (void)table.key_at(3);  // contents belong to the previous launch
  });

  const check::Report report = check::report();
  const check::Violation* stale =
      find_kind(report, check::ViolationKind::kStaleSharedRead);
  ASSERT_NE(stale, nullptr) << report.to_string();
  EXPECT_TRUE(stale->shared_arena);
  EXPECT_NE(stale->kernel.find("seeded/stale_read"), std::string::npos);
}

// A task-local table raced by an atomic accumulator: task 0 treats the
// storage as private (plain claim + write), task 1 atomically adds to
// every slot. Mixing the two disciplines on one buffer in one launch is
// the plain/atomic race class.
TEST_F(CheckTest, DetectsPlainAtomicConflict) {
  simt::Device device({.worker_threads = 1});
  std::vector<Community> keys(kCap, kNull);
  std::vector<Weight> weights(kCap, 0);

  check::KernelScope scope("seeded/plain_atomic");
  device.launch(2, 1, [&](simt::TaskContext& ctx) {
    if (ctx.task() == 0) {
      core::LocalCommunityHashMap table({keys.data(), kCap},
                                        {weights.data(), kCap});
      table.insert_add(7, 1.0);
    } else {
      for (auto& w : weights) simt::atomic_add(w, 1.0);
    }
  });

  const check::Report report = check::report();
  const check::Violation* race =
      find_kind(report, check::ViolationKind::kWriteAtomicRace);
  ASSERT_NE(race, nullptr) << report.to_string();
  EXPECT_FALSE(race->shared_arena);  // host vectors, i.e. global memory
  EXPECT_NE(race->kernel.find("seeded/plain_atomic"), std::string::npos);
}

// Tasks must not synchronize inside a launch; launching from a task is
// the canonical way to try.
TEST_F(CheckTest, DetectsNestedLaunch) {
  simt::Device device({.worker_threads = 1});
  check::KernelScope scope("seeded/nested");
  device.launch(1, [&](simt::TaskContext&) {
    device.launch(1, [](simt::TaskContext&) {});
  });
  EXPECT_TRUE(has_kind(check::report(), check::ViolationKind::kNestedLaunch))
      << check::report().to_string();
}

// Two threads driving one core::Workspace concurrently — the svc
// contract breach the WorkspaceGuard exists for.
TEST_F(CheckTest, DetectsAliasedWorkspace) {
  core::Workspace ws;
  std::mutex mu;
  std::condition_variable cv;
  int stage = 0;

  std::thread holder([&] {
    check::WorkspaceGuard guard(&ws);
    std::unique_lock lock(mu);
    stage = 1;
    cv.notify_all();
    cv.wait(lock, [&] { return stage == 2; });
  });
  std::thread intruder([&] {
    {
      std::unique_lock lock(mu);
      cv.wait(lock, [&] { return stage == 1; });
    }
    check::WorkspaceGuard guard(&ws);  // overlaps the holder's guard
    std::lock_guard lock(mu);
    stage = 2;
    cv.notify_all();
  });
  holder.join();
  intruder.join();

  EXPECT_TRUE(
      has_kind(check::report(), check::ViolationKind::kWorkspaceAliased))
      << check::report().to_string();
}

// Re-entrant acquisition by the SAME thread is the nested-phase case
// (modularity evaluation inside optimize_phase) and must stay legal.
TEST_F(CheckTest, NestedWorkspaceGuardOnOneThreadIsClean) {
  core::Workspace ws;
  {
    check::WorkspaceGuard outer(&ws);
    check::WorkspaceGuard inner(&ws);
  }
  EXPECT_EQ(check::violation_count(), 0u);
  {
    // And the workspace is released: a later thread may take it.
    std::thread other([&] { check::WorkspaceGuard guard(&ws); });
    other.join();
  }
  EXPECT_EQ(check::violation_count(), 0u);
}

TEST_F(CheckTest, ContractFailureIsReported) {
  check::contract(true, "holds");
  EXPECT_EQ(check::violation_count(), 0u);
  check::contract(false, "seeded contract breach");
  const check::Report report = check::report();
  const check::Violation* c =
      find_kind(report, check::ViolationKind::kContract);
  ASSERT_NE(c, nullptr);
  EXPECT_NE(c->detail.find("seeded contract breach"), std::string::npos);
}

// Distinct tasks writing DISTINCT addresses, and one task re-writing
// its own address, must stay silent — the checker's value depends on
// not crying wolf.
TEST_F(CheckTest, DisjointAndSameTaskWritesAreClean) {
  simt::Device device({.worker_threads = 1});
  std::vector<Community> keys(kCap, kNull);
  std::vector<Weight> weights(kCap, 0);
  device.launch(2, 1, [&](simt::TaskContext& ctx) {
    core::LocalCommunityHashMap table({keys.data(), kCap},
                                      {weights.data(), kCap});
    // Per-task community id -> different slots; repeated adds exercise
    // same-task rewrites.
    const auto c = static_cast<Community>(1 + ctx.task());
    table.insert_add(c, 1.0);
    table.insert_add(c, 1.0);
  });
  EXPECT_EQ(check::violation_count(), 0u) << check::report().to_string();
}

// --- Clean runs under full instrumentation --------------------------

// The real pipeline end to end: all modopt/aggregate kernels, every
// bucket, multiple levels. Zero violations is the acceptance bar.
TEST_F(CheckTest, CoreLouvainRunsClean) {
  const auto g = gen::rmat({.scale = 10, .edge_factor = 8}, 7);
  const core::Result result = core::louvain(g);
  EXPECT_GT(result.modularity, 0.0);
  EXPECT_EQ(check::violation_count(), 0u) << check::report().to_string();
}

// Multi-job svc stress: concurrent jobs on pooled devices, workspaces
// owned per worker. Any cross-job aliasing or launch-epoch confusion
// would surface here.
TEST_F(CheckTest, SvcMultiJobStressRunsClean) {
  {
    svc::Service service({.devices = 2, .device_threads = 2, .aux_workers = 1});
    std::vector<svc::JobId> ids;
    for (int i = 0; i < 6; ++i) {
      ids.push_back(
          service.submit(gen::rmat({.scale = 10, .edge_factor = 8}, i)));
    }
    for (svc::JobId id : ids) {
      const svc::JobResult r = service.wait(id);
      EXPECT_EQ(r.status, svc::JobStatus::Completed);
    }
  }
  EXPECT_EQ(check::violation_count(), 0u) << check::report().to_string();
}

}  // namespace
}  // namespace glouvain
