// Tests for the concurrent open-addressing hash table of Algorithm 2.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/hash_map.hpp"
#include "simt/thread_pool.hpp"
#include "util/primes.hpp"
#include "util/prng.hpp"

namespace glouvain::core {
namespace {

using graph::Community;
using graph::Weight;

struct TableStorage {
  explicit TableStorage(std::size_t capacity)
      : keys(capacity), weights(capacity) {}
  std::vector<Community> keys;
  std::vector<Weight> weights;
  CommunityHashMap map() {
    return CommunityHashMap(std::span<Community>(keys),
                            std::span<Weight>(weights));
  }
};

TEST(CommunityHashMap, InsertAndLookup) {
  TableStorage storage(7);
  auto map = storage.map();
  map.clear();
  map.insert_add(3, 1.5);
  map.insert_add(3, 2.0);
  map.insert_add(9, 4.0);
  EXPECT_DOUBLE_EQ(map.lookup(3), 3.5);
  EXPECT_DOUBLE_EQ(map.lookup(9), 4.0);
  EXPECT_DOUBLE_EQ(map.lookup(5), 0.0);
}

TEST(CommunityHashMap, HandlesCollisionsToFullLoad) {
  // Capacity-7 table, 7 distinct keys that all must land somewhere.
  TableStorage storage(7);
  auto map = storage.map();
  map.clear();
  for (Community c : {0u, 7u, 14u, 21u, 28u, 35u, 42u}) {  // all ≡ 0 mod 7
    map.insert_add(c, 1.0);
  }
  for (Community c : {0u, 7u, 14u, 21u, 28u, 35u, 42u}) {
    EXPECT_DOUBLE_EQ(map.lookup(c), 1.0) << c;
  }
}

TEST(CommunityHashMap, ClearResets) {
  TableStorage storage(11);
  auto map = storage.map();
  map.clear();
  map.insert_add(1, 5.0);
  map.clear();
  EXPECT_DOUBLE_EQ(map.lookup(1), 0.0);
  for (std::size_t i = 0; i < map.capacity(); ++i) EXPECT_FALSE(map.occupied(i));
}

TEST(CommunityHashMap, SlotIntrospection) {
  TableStorage storage(5);
  auto map = storage.map();
  map.clear();
  const std::size_t pos = map.insert_add(2, 1.25);
  EXPECT_TRUE(map.occupied(pos));
  EXPECT_EQ(map.key_at(pos), 2u);
  EXPECT_DOUBLE_EQ(map.weight_at(pos), 1.25);
}

TEST(CommunityHashMap, MatchesStdMapOnRandomWorkload) {
  util::Xoshiro256 rng(42);
  const std::size_t distinct = 200;
  const auto cap = static_cast<std::size_t>(
      util::hash_capacity_for_degree(distinct * 2));
  TableStorage storage(cap);
  auto map = storage.map();
  map.clear();

  std::map<Community, Weight> reference;
  for (int i = 0; i < 5000; ++i) {
    const auto c = static_cast<Community>(rng.next_below(distinct) * 31 + 5);
    const auto w = static_cast<Weight>(1 + rng.next_below(10));
    map.insert_add(c, w);
    reference[c] += w;
  }
  for (const auto& [c, w] : reference) {
    EXPECT_DOUBLE_EQ(map.lookup(c), w) << c;
  }
}

TEST(CommunityHashMap, ConcurrentAccumulationIsExact) {
  // Many threads hammering a few keys: totals must be exact (integer
  // weights), which exercises both the CAS claim path and the
  // lost-CAS-to-same-key path (lines 11-12 of Algorithm 2).
  simt::ThreadPool pool(4);
  const std::size_t cap = 13;
  TableStorage storage(cap);
  auto map = storage.map();
  map.clear();

  const std::size_t n = 200000;
  pool.parallel_for(n, [&](std::size_t i, unsigned) {
    map.insert_add(static_cast<Community>(i % 5) * 13 + 1, 1.0);
  });
  for (Community k = 0; k < 5; ++k) {
    EXPECT_DOUBLE_EQ(map.lookup(k * 13 + 1), static_cast<double>(n / 5)) << k;
  }
}

TEST(CommunityHashMap, ConcurrentDistinctKeysAllLand) {
  simt::ThreadPool pool(4);
  const std::size_t keys = 500;
  const auto cap =
      static_cast<std::size_t>(util::hash_capacity_for_degree(keys));
  TableStorage storage(cap);
  auto map = storage.map();
  map.clear();
  pool.parallel_for(keys, 1, [&](std::size_t i, unsigned) {
    map.insert_add(static_cast<Community>(i * 97 + 3), 2.0);
  });
  for (std::size_t i = 0; i < keys; ++i) {
    EXPECT_DOUBLE_EQ(map.lookup(static_cast<Community>(i * 97 + 3)), 2.0);
  }
}

TEST(CommunityHashMap, PaperCapacityRuleLeavesFreeSlots) {
  // Capacity from the paper's rule (> 1.5 deg) guarantees the table
  // never fills when a vertex of degree d meets <= d communities.
  for (std::uint64_t deg : {1ULL, 4ULL, 32ULL, 319ULL, 5000ULL}) {
    const auto cap = util::hash_capacity_for_degree(deg);
    EXPECT_GT(cap, deg);
  }
}

}  // namespace
}  // namespace glouvain::core
