// Unit tests for src/util: PRNG, primes, options, table, timers.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>

#include "util/options.hpp"
#include "util/primes.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace glouvain::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, KnownVector) {
  // Reference values for seed 1234567 (from the published algorithm).
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.next(), 3203168211198807973ULL);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 a(7), b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoshiro256, NextBelowCoversRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, NextInClosedRange) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Xoshiro256, SplitStreamsAreIndependent) {
  Xoshiro256 a(21);
  Xoshiro256 b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Hash64, AvalanchesLowBits) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t x = 0; x < 256; ++x) seen.insert(hash64(x));
  EXPECT_EQ(seen.size(), 256u);
}

TEST(Primes, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(91));  // 7 * 13
  EXPECT_TRUE(is_prime(97));
}

TEST(Primes, LargeKnownPrimes) {
  EXPECT_TRUE(is_prime(2147483647ULL));          // 2^31 - 1
  EXPECT_TRUE(is_prime(67280421310721ULL));      // factor of 2^128+1
  EXPECT_FALSE(is_prime(2147483647ULL * 3));
  EXPECT_TRUE(is_prime(18446744073709551557ULL));  // largest 64-bit prime
}

TEST(Primes, NextPrimeAtLeast) {
  EXPECT_EQ(next_prime_atleast(0), 2u);
  EXPECT_EQ(next_prime_atleast(2), 2u);
  EXPECT_EQ(next_prime_atleast(8), 11u);
  EXPECT_EQ(next_prime_atleast(14), 17u);
  EXPECT_EQ(next_prime_atleast(97), 97u);
}

TEST(PrimeTable, LadderEntriesArePrime) {
  PrimeTable table(3, 1 << 20, 1.3);
  for (auto p : table.ladder()) EXPECT_TRUE(is_prime(p)) << p;
}

TEST(PrimeTable, LookupIsAtLeastRequest) {
  const auto& table = PrimeTable::global();
  for (std::uint64_t x : {1ULL, 5ULL, 100ULL, 479ULL, 12345ULL, 999983ULL}) {
    const auto p = table.lookup(x);
    EXPECT_GE(p, x);
    EXPECT_TRUE(is_prime(p));
  }
}

TEST(PrimeTable, LookupBeyondLadderFallsBack) {
  PrimeTable small(3, 1000, 1.3);
  const auto p = small.lookup(1 << 20);
  EXPECT_GE(p, 1u << 20);
  EXPECT_TRUE(is_prime(p));
}

TEST(HashCapacity, PaperRule) {
  // Smallest listed prime > 1.5 * degree.
  for (std::uint64_t deg : {1ULL, 4ULL, 8ULL, 32ULL, 84ULL, 319ULL, 5000ULL}) {
    const auto cap = hash_capacity_for_degree(deg);
    EXPECT_TRUE(is_prime(cap));
    EXPECT_GT(static_cast<double>(cap), 1.5 * static_cast<double>(deg));
  }
  EXPECT_GE(hash_capacity_for_degree(0), 3u);  // degenerate degree
}

TEST(Options, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--alpha", "3", "--beta=2.5", "--flag", "pos1"};
  Options opt(6, argv);
  EXPECT_EQ(opt.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(opt.get_double("beta", 0), 2.5);
  EXPECT_TRUE(opt.get_flag("flag"));
  ASSERT_EQ(opt.positional().size(), 1u);
  EXPECT_EQ(opt.positional()[0], "pos1");
}

TEST(Options, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Options opt(1, argv);
  EXPECT_EQ(opt.get_int("missing", 7), 7);
  EXPECT_EQ(opt.get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(opt.get_flag("off"));
}

TEST(Options, TracksUnknown) {
  const char* argv[] = {"prog", "--known", "1", "--typo", "2"};
  Options opt(5, argv);
  opt.get_int("known", 0);
  const auto unknown = opt.unknown();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Options, HelpFlag) {
  const char* argv[] = {"prog", "--help"};
  Options opt(2, argv);
  EXPECT_TRUE(opt.help_requested());
  opt.get_int("x", 1, "the x");
  EXPECT_NE(opt.usage("test").find("--x"), std::string::npos);
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Right-aligned numeric column: "22" ends both data lines consistently.
  EXPECT_NE(out.find("    1"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Table::count(1234567), "1,234,567");
  EXPECT_EQ(Table::count(12), "12");
  EXPECT_EQ(Table::human(1500000.0), "1.50M");
  EXPECT_EQ(Table::percent(0.123, 1), "12.3%");
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.milliseconds(), 15.0);
  EXPECT_LT(t.milliseconds(), 5000.0);
}

TEST(Accumulator, SumsIntervals) {
  Accumulator acc;
  for (int i = 0; i < 3; ++i) {
    ScopedInterval guard(acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(acc.intervals(), 3);
  EXPECT_GE(acc.seconds(), 0.010);
}

}  // namespace
}  // namespace glouvain::util
