// Service-layer tests: fingerprinting, the LRU result cache, the
// bounded priority queue, and the Service itself — concurrent
// submission from many threads, scheduling order, cancellation,
// deadline expiry, cache-hit determinism, backpressure rejection, and
// shutdown semantics. This suite carries the `stress` ctest label and
// must stay clean under -fsanitize=thread (the `tsan` CMake preset).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gen/cliques.hpp"
#include "gen/er.hpp"
#include "seq/louvain.hpp"
#include "shard/plan_cache.hpp"
#include "stream/apply.hpp"
#include "svc/cache.hpp"
#include "svc/fingerprint.hpp"
#include "svc/queue.hpp"
#include "svc/service.hpp"

namespace glouvain {
namespace {

using namespace std::chrono_literals;

graph::Csr small_graph(std::uint64_t variant) {
  // Ring of cliques: cheap, deterministic, unambiguous communities.
  return gen::ring_of_cliques(8 + static_cast<graph::VertexId>(variant % 4), 5);
}

graph::Csr device_sized_graph(std::uint64_t seed) {
  // n + m above the default seq_cost_limit, so Auto routes to Core.
  return gen::erdos_renyi(3000, 12000, seed);
}

// ---------------------------------------------------------------- fingerprint

TEST(Fingerprint, StableAcrossCopies) {
  const auto g = small_graph(0);
  const graph::Csr copy = g;
  EXPECT_EQ(svc::fingerprint(g), svc::fingerprint(copy));
  EXPECT_EQ(svc::fingerprint(g).hex(), svc::fingerprint(copy).hex());
  EXPECT_EQ(svc::fingerprint(g).hex().size(), 32u);
}

TEST(Fingerprint, DistinguishesGraphs) {
  const auto a = svc::fingerprint(small_graph(0));
  const auto b = svc::fingerprint(small_graph(1));
  const auto c = svc::fingerprint(device_sized_graph(1));
  const auto d = svc::fingerprint(device_sized_graph(2));
  EXPECT_NE(a, b);
  EXPECT_NE(c, d);
  EXPECT_NE(a, c);
}

// --------------------------------------------------------------------- queue

TEST(BoundedPriorityQueue, PriorityThenFifoOrder) {
  svc::BoundedPriorityQueue<int> q(8);
  ASSERT_TRUE(q.push(1, /*priority=*/0, 10));
  ASSERT_TRUE(q.push(2, /*priority=*/5, 20));
  ASSERT_TRUE(q.push(3, /*priority=*/5, 30));
  ASSERT_TRUE(q.push(4, /*priority=*/-1, 40));
  EXPECT_EQ(q.pop().value(), 20);  // highest priority first
  EXPECT_EQ(q.pop().value(), 30);  // FIFO within a priority
  EXPECT_EQ(q.pop().value(), 10);
  EXPECT_EQ(q.pop().value(), 40);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedPriorityQueue, CapacityAndErase) {
  svc::BoundedPriorityQueue<int> q(2);
  EXPECT_TRUE(q.push(1, 0, 10));
  EXPECT_TRUE(q.push(2, 0, 20));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(3, 9, 30));  // bounded: rejected even at high priority
  EXPECT_EQ(q.erase(1).value(), 10);
  EXPECT_FALSE(q.erase(1).has_value());  // already gone
  EXPECT_FALSE(q.contains(1));
  EXPECT_TRUE(q.push(3, 9, 30));
  EXPECT_EQ(q.pop().value(), 30);
}

TEST(BoundedPriorityQueue, FilteredPop) {
  svc::BoundedPriorityQueue<int> q(8);
  q.push(1, 9, 11);  // best, but odd
  q.push(2, 5, 22);
  q.push(3, 1, 33);
  const auto even = [](const int& v) { return v % 2 == 0; };
  EXPECT_EQ(q.pop_if(even).value(), 22);
  EXPECT_EQ(q.pop().value(), 11);
}

// --------------------------------------------------------------------- cache

TEST(ResultCache, LruEviction) {
  svc::ResultCache cache(2);
  const auto key = [](std::uint64_t i) { return svc::Fingerprint{i, ~i}; };
  const auto value = [] { return std::make_shared<core::Result>(); };

  EXPECT_EQ(cache.get(key(1)), nullptr);
  cache.put(key(1), value());
  cache.put(key(2), value());
  EXPECT_NE(cache.get(key(1)), nullptr);  // refreshes 1
  cache.put(key(3), value());             // evicts 2 (least recent)
  EXPECT_EQ(cache.get(key(2)), nullptr);
  EXPECT_NE(cache.get(key(1)), nullptr);
  EXPECT_NE(cache.get(key(3)), nullptr);

  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 2u);
}

TEST(ResultCache, ZeroCapacityDisables) {
  svc::ResultCache cache(0);
  cache.put(svc::Fingerprint{1, 2}, std::make_shared<core::Result>());
  EXPECT_EQ(cache.get(svc::Fingerprint{1, 2}), nullptr);
}

// ------------------------------------------------------------------- service

svc::ServiceConfig quiet_config() {
  svc::ServiceConfig cfg;
  cfg.devices = 2;
  cfg.device_threads = 1;  // single-worker devices: deterministic core runs
  cfg.aux_workers = 1;
  cfg.queue_capacity = 256;
  cfg.cache_capacity = 16;
  return cfg;
}

TEST(Service, AutoRoutingDegradesTinyGraphs) {
  svc::Service service(quiet_config());
  const svc::JobId tiny = service.submit(small_graph(0));
  const svc::JobId big = service.submit(device_sized_graph(1));
  const svc::JobResult rt = service.wait(tiny);
  const svc::JobResult rb = service.wait(big);
  ASSERT_EQ(rt.status, svc::JobStatus::Completed);
  ASSERT_EQ(rb.status, svc::JobStatus::Completed);
  EXPECT_EQ(rt.backend, svc::Backend::Seq);
  EXPECT_EQ(rb.backend, svc::Backend::Core);
  const svc::Stats st = service.stats();
  EXPECT_EQ(st.ran_sequential, 1u);
  EXPECT_EQ(st.ran_on_device, 1u);
  // The device-run result carries real DeviceStats; the degraded one
  // never touched a device.
  EXPECT_EQ(rb.result->device.workers, 1u);
  EXPECT_EQ(rt.result->device.workers, 0u);
}

TEST(Service, ConcurrentSubmissionManyThreads) {
  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 4;  // 32 jobs total
  svc::Service service(quiet_config());

  std::vector<graph::Csr> graphs;
  for (std::uint64_t v = 0; v < 4; ++v) graphs.push_back(small_graph(v));
  graphs.push_back(device_sized_graph(9));

  std::vector<std::vector<std::pair<std::size_t, svc::JobId>>> submitted(
      kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        const std::size_t which =
            static_cast<std::size_t>(t + j) % graphs.size();
        svc::JobOptions jo;
        jo.priority = j;
        jo.use_cache = (t + j) % 2 == 0;  // exercise both paths
        submitted[t].emplace_back(which,
                                  service.submit(graphs[which], jo));
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every job completes, and jobs on the same graph agree exactly
  // (single-worker devices are deterministic, cached or not).
  std::vector<double> modularity(graphs.size(), -2.0);
  int completed = 0;
  for (const auto& per_thread : submitted) {
    for (const auto& [which, id] : per_thread) {
      const svc::JobResult r = service.wait(id);
      ASSERT_EQ(r.status, svc::JobStatus::Completed) << r.error;
      ASSERT_NE(r.result, nullptr);
      if (modularity[which] < -1.5) {
        modularity[which] = r.result->modularity;
      } else {
        EXPECT_EQ(r.result->modularity, modularity[which]);
      }
      ++completed;
    }
  }
  EXPECT_EQ(completed, kThreads * kJobsPerThread);

  const svc::Stats st = service.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(completed));
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(completed));
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_EQ(st.queue_depth, 0u);
  EXPECT_EQ(st.running, 0u);
}

TEST(Service, PriorityOrderOnSingleDevice) {
  svc::ServiceConfig cfg = quiet_config();
  cfg.devices = 1;
  cfg.aux_workers = 0;
  cfg.start_paused = true;
  svc::Service service(cfg);

  const svc::JobId low = service.submit(small_graph(0), {.priority = 0});
  const svc::JobId high = service.submit(small_graph(1), {.priority = 10});
  const svc::JobId mid = service.submit(small_graph(2), {.priority = 5});
  service.resume();

  const auto r_low = service.wait(low);
  const auto r_high = service.wait(high);
  const auto r_mid = service.wait(mid);
  ASSERT_EQ(r_low.status, svc::JobStatus::Completed);
  EXPECT_LT(r_high.start_sequence, r_mid.start_sequence);
  EXPECT_LT(r_mid.start_sequence, r_low.start_sequence);
}

TEST(Service, CancelQueuedJob) {
  svc::ServiceConfig cfg = quiet_config();
  cfg.devices = 1;
  cfg.aux_workers = 0;
  cfg.start_paused = true;
  svc::Service service(cfg);

  const svc::JobId keep = service.submit(small_graph(0));
  const svc::JobId victim = service.submit(small_graph(1));
  EXPECT_EQ(service.poll(victim), svc::JobStatus::Queued);
  EXPECT_TRUE(service.cancel(victim));
  EXPECT_EQ(service.poll(victim), svc::JobStatus::Cancelled);
  EXPECT_FALSE(service.cancel(victim));       // already terminal
  EXPECT_FALSE(service.cancel(9999));         // unknown id

  service.resume();
  EXPECT_EQ(service.wait(victim).status, svc::JobStatus::Cancelled);
  const auto kept = service.wait(keep);
  EXPECT_EQ(kept.status, svc::JobStatus::Completed);
  EXPECT_FALSE(service.cancel(keep));  // completed jobs cannot cancel

  const svc::Stats st = service.stats();
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.completed, 1u);
}

TEST(Service, DeadlineExpiresFromWaiter) {
  svc::ServiceConfig cfg = quiet_config();
  cfg.start_paused = true;  // workers never pick it up
  svc::Service service(cfg);

  const svc::JobId id =
      service.submit(small_graph(0), {.deadline = 30ms});
  const svc::JobResult r = service.wait(id);  // waiter fires the deadline
  EXPECT_EQ(r.status, svc::JobStatus::Expired);
  EXPECT_GE(r.total_seconds, 0.025);
  EXPECT_EQ(service.stats().expired, 1u);
  service.resume();
}

TEST(Service, DeadlineExpiresAtWorkerPop) {
  svc::ServiceConfig cfg = quiet_config();
  cfg.start_paused = true;
  svc::Service service(cfg);

  const svc::JobId id =
      service.submit(small_graph(0), {.deadline = 10ms});
  std::this_thread::sleep_for(30ms);  // deadline passes while paused
  service.resume();
  // The worker, not a waiter, must discover and expire it.
  for (int i = 0; i < 200 && !svc::is_terminal(service.poll(id)); ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(service.poll(id), svc::JobStatus::Expired);
  EXPECT_EQ(service.wait(id).status, svc::JobStatus::Expired);
}

TEST(Service, DeadlineMetWhenJobRuns) {
  svc::Service service(quiet_config());
  const svc::JobId id =
      service.submit(small_graph(0), {.deadline = 10min});
  EXPECT_EQ(service.wait(id).status, svc::JobStatus::Completed);
}

TEST(Service, BackpressureRejectsWhenQueueFull) {
  svc::ServiceConfig cfg = quiet_config();
  cfg.devices = 1;
  cfg.aux_workers = 0;
  cfg.queue_capacity = 4;
  cfg.cache_capacity = 0;  // identical graphs must not short-circuit
  cfg.start_paused = true;
  svc::Service service(cfg);

  std::vector<svc::JobId> accepted;
  for (int i = 0; i < 4; ++i) accepted.push_back(service.submit(small_graph(0)));
  const svc::JobId overflow = service.submit(small_graph(0));

  for (const svc::JobId id : accepted) {
    EXPECT_EQ(service.poll(id), svc::JobStatus::Queued);
  }
  EXPECT_EQ(service.poll(overflow), svc::JobStatus::Rejected);
  const svc::JobResult r = service.wait(overflow);  // terminal: no block
  EXPECT_EQ(r.status, svc::JobStatus::Rejected);

  service.resume();
  for (const svc::JobId id : accepted) {
    EXPECT_EQ(service.wait(id).status, svc::JobStatus::Completed);
  }
  const svc::Stats st = service.stats();
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_EQ(st.accepted, 4u);
}

TEST(Service, CacheHitReturnsIdenticalCommunities) {
  svc::Service service(quiet_config());
  const auto g = device_sized_graph(5);

  const svc::JobResult first = service.wait(service.submit(g));
  ASSERT_EQ(first.status, svc::JobStatus::Completed);
  EXPECT_FALSE(first.cache_hit);

  const svc::JobResult second = service.wait(service.submit(g));
  ASSERT_EQ(second.status, svc::JobStatus::Completed);
  EXPECT_TRUE(second.cache_hit);
  // Same fingerprint -> the same immutable result object.
  EXPECT_EQ(second.result, first.result);
  EXPECT_EQ(second.result->community, first.result->community);
  EXPECT_EQ(second.run_seconds, 0.0);

  // A fresh service recomputes and agrees exactly (single-worker
  // devices are deterministic), so cached answers are not stale.
  svc::Service fresh(quiet_config());
  const svc::JobResult recomputed = fresh.wait(fresh.submit(g));
  ASSERT_EQ(recomputed.status, svc::JobStatus::Completed);
  EXPECT_EQ(recomputed.result->community, first.result->community);

  const svc::Stats st = service.stats();
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.cache_misses, 1u);
}

TEST(Service, CacheOptOutRecomputes) {
  svc::Service service(quiet_config());
  const auto g = small_graph(0);
  const svc::JobResult first = service.wait(service.submit(g));
  const svc::JobResult second =
      service.wait(service.submit(g, {.use_cache = false}));
  ASSERT_EQ(second.status, svc::JobStatus::Completed);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_NE(second.result, first.result);  // distinct run, same answer
  EXPECT_EQ(second.result->community, first.result->community);
}

TEST(Service, ExplicitBackendSelection) {
  svc::Service service(quiet_config());
  // Force the tiny graph onto a device and the comparator backends.
  const auto g = small_graph(0);
  const svc::JobResult on_device =
      service.wait(service.submit(g, {.backend = svc::Backend::Core,
                                      .use_cache = false}));
  const svc::JobResult on_plm =
      service.wait(service.submit(g, {.backend = svc::Backend::Plm,
                                      .use_cache = false}));
  ASSERT_EQ(on_device.status, svc::JobStatus::Completed);
  ASSERT_EQ(on_plm.status, svc::JobStatus::Completed);
  EXPECT_EQ(on_device.backend, svc::Backend::Core);
  EXPECT_EQ(on_plm.backend, svc::Backend::Plm);
  // Ring of cliques has an unambiguous optimum: all engines agree.
  EXPECT_NEAR(on_device.result->modularity, on_plm.result->modularity, 1e-9);
}

TEST(Service, ShutdownWithoutDrainCancelsBacklog) {
  svc::ServiceConfig cfg = quiet_config();
  cfg.start_paused = true;
  svc::Service service(cfg);
  const svc::JobId a = service.submit(small_graph(0));
  const svc::JobId b = service.submit(small_graph(1));
  service.shutdown(/*drain=*/false);
  EXPECT_EQ(service.poll(a), svc::JobStatus::Cancelled);
  EXPECT_EQ(service.poll(b), svc::JobStatus::Cancelled);
  // Submissions after shutdown are rejected, not silently dropped.
  const svc::JobId late = service.submit(small_graph(2));
  EXPECT_EQ(service.poll(late), svc::JobStatus::Rejected);
  EXPECT_EQ(service.stats().cancelled, 2u);
}

TEST(Service, WaitOnUnknownJobDoesNotBlock) {
  svc::Service service(quiet_config());
  EXPECT_EQ(service.wait(424242).status, svc::JobStatus::Cancelled);
  EXPECT_EQ(service.poll(424242), svc::JobStatus::Cancelled);
}

// A denser end-to-end stress: submissions racing with cancellations
// and polls from many threads, mixed deadlines, shared cache. The
// invariant checked is conservation: every accepted job reaches
// exactly one terminal state and the counters add up.
TEST(Service, StressMixedTraffic) {
  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 6;
  svc::ServiceConfig cfg = quiet_config();
  cfg.queue_capacity = 16;  // small enough that rejections can happen
  svc::Service service(cfg);

  std::vector<graph::Csr> graphs;
  for (std::uint64_t v = 0; v < 3; ++v) graphs.push_back(small_graph(v));

  std::atomic<int> terminal{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        svc::JobOptions jo;
        jo.priority = (t * 7 + j) % 5;
        if (j % 3 == 1) jo.deadline = 50ms;
        const std::size_t which = static_cast<std::size_t>(t + j) % graphs.size();
        const svc::JobId id = service.submit(graphs[which], jo);
        if (j % 4 == 3) service.cancel(id);  // may or may not win the race
        const svc::JobResult r = service.wait(id);
        EXPECT_TRUE(svc::is_terminal(r.status));
        if (r.status == svc::JobStatus::Completed) {
          EXPECT_NE(r.result, nullptr);
        }
        ++terminal;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(terminal.load(), kThreads * kJobsPerThread);

  const svc::Stats st = service.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kThreads * kJobsPerThread));
  EXPECT_EQ(st.submitted, st.accepted + st.rejected);
  EXPECT_EQ(st.accepted,
            st.completed + st.cancelled + st.expired + st.failed);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.queue_depth, 0u);
  EXPECT_EQ(st.running, 0u);
}

TEST(Fingerprint, BackendsAndEpochsDoNotCollide) {
  // Regression: the cache used to key on the graph hash alone, so the
  // SAME graph run by two backends returned whichever result landed
  // first. job_key folds backend, options, session and epoch in.
  const auto g = svc::fingerprint(small_graph(0));
  const detect::Options options;
  const auto core = svc::job_key(g, "core", options);
  const auto seq = svc::job_key(g, "seq", options);
  EXPECT_NE(core, seq);

  detect::Options coarse;
  coarse.thresholds.t_final = 1e-2;
  EXPECT_NE(svc::job_key(g, "core", coarse), core);

  EXPECT_NE(svc::job_key(g, "core", options, 1, 1),
            svc::job_key(g, "core", options, 1, 2));  // epochs differ
  EXPECT_NE(svc::job_key(g, "core", options, 1, 1),
            svc::job_key(g, "core", options, 2, 1));  // sessions differ
  EXPECT_EQ(svc::job_key(g, "core", options, 1, 1),
            svc::job_key(g, "core", options, 1, 1));
}

TEST(Service, SameGraphTwoBackendsTwoResults) {
  svc::ServiceConfig cfg;
  cfg.devices = 1;
  cfg.seq_cost_limit = 0;  // no degradation: backends run as asked
  svc::Service service(cfg);
  const auto g = small_graph(2);
  const svc::JobId a = service.submit(g, {.backend = svc::Backend::Core});
  const svc::JobId b = service.submit(g, {.backend = svc::Backend::Seq});
  const svc::JobResult ra = service.wait(a);
  const svc::JobResult rb = service.wait(b);
  ASSERT_EQ(ra.status, svc::JobStatus::Completed);
  ASSERT_EQ(rb.status, svc::JobStatus::Completed);
  // Neither may be served from the other's cache entry.
  EXPECT_FALSE(ra.cache_hit);
  EXPECT_FALSE(rb.cache_hit);
  EXPECT_EQ(ra.backend, svc::Backend::Core);
  EXPECT_EQ(rb.backend, svc::Backend::Seq);
}

TEST(Service, SessionDeltaLifecycle) {
  svc::ServiceConfig cfg;
  cfg.devices = 2;
  svc::Service service(cfg);

  auto g = small_graph(0);
  const graph::VertexId n = g.num_vertices();
  auto sid = service.open_session(std::move(g));
  ASSERT_TRUE(sid.ok()) << sid.status().to_string();

  auto info = service.session_info(*sid);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->epoch, 0u);
  EXPECT_EQ(info->num_vertices, n);
  EXPECT_GT(info->modularity, 0.0);

  // A few deltas, in order; every epoch must land gaplessly.
  std::vector<svc::JobId> jobs;
  for (int i = 0; i < 3; ++i) {
    stream::Delta delta;
    delta.insertions.push_back(
        {static_cast<graph::VertexId>(i), static_cast<graph::VertexId>(n / 2 + i), 1.0});
    auto jid = service.submit_delta(*sid, delta);
    ASSERT_TRUE(jid.ok()) << jid.status().to_string();
    EXPECT_FALSE(service.cancel(*jid));  // delta jobs are not cancellable
    jobs.push_back(*jid);
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const svc::JobResult r = service.wait(jobs[i]);
    ASSERT_EQ(r.status, svc::JobStatus::Completed) << r.error;
    ASSERT_TRUE(r.result);
    EXPECT_EQ(r.result->community.size(), n);
  }

  info = service.session_info(*sid);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->epoch, 3u);
  EXPECT_EQ(info->outstanding, 0u);

  const svc::Stats st = service.stats();
  EXPECT_EQ(st.sessions_opened, 1u);
  EXPECT_EQ(st.deltas_applied, 3u);
  EXPECT_EQ(st.sessions_open, 1u);

  EXPECT_TRUE(service.close_session(*sid).ok());
  EXPECT_EQ(service.close_session(*sid).code(), util::StatusCode::kNotFound);
  EXPECT_EQ(service.session_info(*sid).status().code(),
            util::StatusCode::kNotFound);
}

TEST(Service, CloseSessionRefusesWithOutstandingDeltas) {
  svc::ServiceConfig cfg;
  cfg.devices = 1;
  cfg.start_paused = true;  // keep the delta queued
  svc::Service service(cfg);
  auto sid = service.open_session(small_graph(1));
  ASSERT_TRUE(sid.ok());
  auto jid = service.submit_delta(*sid, stream::Delta{});
  ASSERT_TRUE(jid.ok());
  EXPECT_EQ(service.close_session(*sid).code(),
            util::StatusCode::kFailedPrecondition);
  service.resume();
  EXPECT_EQ(service.wait(*jid).status, svc::JobStatus::Completed);
  EXPECT_TRUE(service.close_session(*sid).ok());
}

TEST(Service, SubmitDeltaToUnknownSession) {
  svc::ServiceConfig cfg;
  cfg.devices = 1;
  svc::Service service(cfg);
  auto jid = service.submit_delta(12345, stream::Delta{});
  EXPECT_EQ(jid.status().code(), util::StatusCode::kNotFound);
}

TEST(Service, ConcurrentSessionsOnDistinctWorkers) {
  svc::ServiceConfig cfg;
  cfg.devices = 2;
  svc::Service service(cfg);

  auto s1 = service.open_session(small_graph(0));
  auto s2 = service.open_session(small_graph(3));
  ASSERT_TRUE(s1.ok() && s2.ok());
  // Round-robin pinning spreads sessions across the device pool.
  EXPECT_NE(service.session_info(*s1)->pinned_worker,
            service.session_info(*s2)->pinned_worker);

  std::vector<svc::JobId> jobs;
  for (int i = 0; i < 4; ++i) {
    stream::Delta d;
    d.insertions.push_back({static_cast<graph::VertexId>(i),
                            static_cast<graph::VertexId>(i + 7), 1.0});
    auto j1 = service.submit_delta(*s1, d);
    auto j2 = service.submit_delta(*s2, d);
    ASSERT_TRUE(j1.ok() && j2.ok());
    jobs.push_back(*j1);
    jobs.push_back(*j2);
  }
  for (const svc::JobId id : jobs) {
    EXPECT_EQ(service.wait(id).status, svc::JobStatus::Completed);
  }
  EXPECT_EQ(service.session_info(*s1)->epoch, 4u);
  EXPECT_EQ(service.session_info(*s2)->epoch, 4u);
  EXPECT_TRUE(service.close_session(*s1).ok());
  EXPECT_TRUE(service.close_session(*s2).ok());
}

// ------------------------------------------------------ shard integration

TEST(Service, PartitionSeedKeyedIntoResultCache) {
  // Two jobs differing ONLY in the partition seed must never alias a
  // cache entry — even when the graph is small enough that the shard
  // backend collapses to one shard and both answers coincide (aliasing
  // would be wrong there too, and silently so).
  svc::Service service(quiet_config());
  const auto g = device_sized_graph(9);
  auto opts_a = std::make_shared<detect::Options>();
  opts_a->shards = 2;
  opts_a->partition_seed = 1;
  auto opts_b = std::make_shared<detect::Options>(*opts_a);
  opts_b->partition_seed = 2;

  const svc::JobResult a = service.wait(service.submit(
      g, {.backend = svc::Backend::Shard, .options = opts_a}));
  const svc::JobResult b = service.wait(service.submit(
      g, {.backend = svc::Backend::Shard, .options = opts_b}));
  ASSERT_EQ(a.status, svc::JobStatus::Completed) << a.error;
  ASSERT_EQ(b.status, svc::JobStatus::Completed) << b.error;
  EXPECT_FALSE(a.cache_hit);
  EXPECT_FALSE(b.cache_hit);  // the seed is in the job fingerprint
  EXPECT_NE(a.result, b.result);

  // The same seed resubmitted IS a hit, on the same immutable object.
  auto opts_c = std::make_shared<detect::Options>(*opts_a);
  const svc::JobResult c = service.wait(service.submit(
      g, {.backend = svc::Backend::Shard, .options = opts_c}));
  ASSERT_EQ(c.status, svc::JobStatus::Completed) << c.error;
  EXPECT_TRUE(c.cache_hit);
  EXPECT_EQ(c.result, a.result);
}

TEST(Service, PlanCacheReusedAcrossJobsAndInvalidatedByDeltas) {
  // Big enough that shards_for() keeps k = 2 at level 0 (the plan
  // cache is only consulted on genuinely sharded levels).
  shard::plan_cache().clear();
  svc::Service service(quiet_config());
  const auto g = gen::erdos_renyi(20000, 60000, 3);
  auto opts = std::make_shared<detect::Options>();
  opts->shards = 2;
  const svc::JobOptions job{.backend = svc::Backend::Shard,
                            .use_cache = false,  // force a real recompute
                            .options = opts};

  ASSERT_EQ(service.wait(service.submit(g, job)).status,
            svc::JobStatus::Completed);
  const shard::PlanCache::Stats first = shard::plan_cache().stats();
  EXPECT_GT(first.misses, 0u);
  ASSERT_EQ(service.wait(service.submit(g, job)).status,
            svc::JobStatus::Completed);
  const shard::PlanCache::Stats second = shard::plan_cache().stats();
  EXPECT_GT(second.hits, 0u);  // the repeat reused the cached plan(s)

  // A stream delta changes the graph, hence its fingerprint, hence the
  // plan key: the mutated graph must MISS (a stale plan for the old
  // content would partition vertices that no longer match).
  stream::Delta delta;
  delta.insertions.push_back({1, 4242, 1.0});
  const graph::Csr mutated = stream::apply_delta(g, delta).graph;
  ASSERT_EQ(service.wait(service.submit(mutated, job)).status,
            svc::JobStatus::Completed);
  const shard::PlanCache::Stats third = shard::plan_cache().stats();
  EXPECT_GT(third.misses, second.misses);

  // svc::Stats surfaces the same counters (read live from the cache).
  const svc::Stats st = service.stats();
  EXPECT_EQ(st.plan_hits, third.hits);
  EXPECT_EQ(st.plan_misses, third.misses);
  EXPECT_EQ(st.plan_entries, third.entries);
}

// Many submitters racing on one process-wide plan cache: the stress
// invariant is conservation (every get is a hit or a miss) and that a
// cached plan is always a complete plan for its key. Runs under the
// `stress` label / tsan preset like the rest of this suite.
TEST(Service, PlanCacheConcurrentStress) {
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  shard::PlanCache cache(4);  // smaller than the key set: evictions churn

  std::vector<graph::Csr> graphs;
  std::vector<shard::PlanKey> keys;
  std::vector<std::shared_ptr<const shard::Plan>> plans;
  shard::PartitionConfig pc;
  pc.num_shards = 2;
  for (graph::VertexId i = 0; i < 8; ++i) {
    graphs.push_back(gen::ring_of_cliques(4 + i, 5));
    keys.push_back(
        shard::plan_key(graphs.back(), pc, detect::ShardStorage::kPlain));
    plans.push_back(
        std::make_shared<shard::Plan>(shard::make_plan(graphs.back(), pc)));
  }

  std::atomic<std::uint64_t> gets{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t j = static_cast<std::size_t>(t + i) % keys.size();
        auto plan = cache.get(keys[j]);
        gets.fetch_add(1, std::memory_order_relaxed);
        if (!plan) {
          cache.put(keys[j], plans[j]);
        } else {
          // A hit must be the complete plan for this key's graph.
          EXPECT_EQ(plan->num_shards, 2u);
          EXPECT_EQ(plan->owner.size(), graphs[j].num_vertices());
        }
        if (i % 64 == 0) (void)cache.stats();
      }
    });
  }
  for (auto& th : threads) th.join();

  const shard::PlanCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, gets.load());
  EXPECT_LE(st.entries, 4u);
  EXPECT_GT(st.evictions, 0u);
  for (std::size_t j = 0; j < keys.size(); ++j) {
    const auto plan = cache.get(keys[j]);
    if (plan) {
      EXPECT_EQ(plan->owner.size(), graphs[j].num_vertices());
    }
  }
}

}  // namespace
}  // namespace glouvain
