// Tests for the synthetic-graph generators: structural validity,
// determinism, and the family-specific properties each generator is
// supposed to deliver (degree skew, planarity-like sparsity, planted
// structure, ...).
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/ba.hpp"
#include "gen/cliques.hpp"
#include "gen/er.hpp"
#include "gen/lfr.hpp"
#include "gen/mesh.hpp"
#include "gen/rgg.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/sbm.hpp"
#include "gen/suite.hpp"
#include "gen/ws.hpp"
#include "graph/ops.hpp"

namespace glouvain::gen {
namespace {

using graph::Csr;
using graph::VertexId;

TEST(ErdosRenyi, SizeAndValidity) {
  const Csr g = erdos_renyi(1000, 5000, 1);
  EXPECT_EQ(g.num_vertices(), 1000u);
  EXPECT_GT(g.num_edges(), 4800u);  // some duplicates merge
  EXPECT_LE(g.num_edges(), 5000u);
  EXPECT_TRUE(graph::validate(g).empty()) << graph::validate(g);
}

TEST(ErdosRenyi, DeterministicBySeed) {
  EXPECT_EQ(erdos_renyi(500, 2000, 7), erdos_renyi(500, 2000, 7));
  EXPECT_NE(erdos_renyi(500, 2000, 7), erdos_renyi(500, 2000, 8));
}

TEST(Rmat, HeavyTailedDegrees) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  const Csr g = rmat(p, 3);
  EXPECT_EQ(g.num_vertices(), 4096u);
  EXPECT_TRUE(graph::validate(g).empty());
  const auto stats = graph::degree_stats(g);
  // R-MAT must produce a hub far above the mean: paper's social graphs
  // have max degree orders of magnitude above average.
  EXPECT_GT(static_cast<double>(stats.max_degree), 8 * stats.mean_degree);
  // And the top bucket of the paper's binning should be non-empty.
  EXPECT_GT(stats.bucket_counts[5] + stats.bucket_counts[6], 0u);
}

TEST(Rmat, DeterministicBySeed) {
  RmatParams p;
  p.scale = 10;
  EXPECT_EQ(rmat(p, 5), rmat(p, 5));
}

TEST(BarabasiAlbert, PowerLawTail) {
  const Csr g = barabasi_albert(4000, 5, 4);
  EXPECT_EQ(g.num_vertices(), 4000u);
  EXPECT_TRUE(graph::validate(g).empty());
  const auto stats = graph::degree_stats(g);
  EXPECT_GT(static_cast<double>(stats.max_degree), 5 * stats.mean_degree);
  // Preferential attachment keeps the graph connected.
  EXPECT_EQ(graph::count_components(g), 1u);
}

TEST(WattsStrogatz, DegreeConcentration) {
  const Csr g = watts_strogatz(2000, 3, 0.05, 5);
  EXPECT_TRUE(graph::validate(g).empty());
  const auto stats = graph::degree_stats(g);
  EXPECT_NEAR(stats.mean_degree, 6.0, 0.5);
  EXPECT_LE(stats.max_degree, 20u);
}

TEST(RandomGeometric, SpatialStructure) {
  const Csr g = random_geometric(5000, 0, 6);
  EXPECT_EQ(g.num_vertices(), 5000u);
  EXPECT_TRUE(graph::validate(g).empty());
  const auto stats = graph::degree_stats(g);
  // Connectivity-threshold radius: mean degree ~ 1.44^2 * pi * ln n / pi.
  EXPECT_GT(stats.mean_degree, 4.0);
  EXPECT_LT(stats.mean_degree, 40.0);
}

TEST(RandomGeometric, ExplicitRadius) {
  const Csr small_r = random_geometric(2000, 0.01, 7);
  const Csr large_r = random_geometric(2000, 0.05, 7);
  EXPECT_LT(small_r.num_edges(), large_r.num_edges());
}

TEST(Grid2d, ExactStructure) {
  const Csr von = grid2d(10, 10, false);
  EXPECT_EQ(von.num_vertices(), 100u);
  EXPECT_EQ(von.num_edges(), 2u * 9 * 10);  // horizontal + vertical
  const Csr moore = grid2d(10, 10, true);
  EXPECT_EQ(moore.num_edges(), 2u * 9 * 10 + 2u * 9 * 9);  // + diagonals
  EXPECT_TRUE(graph::validate(moore).empty());
}

TEST(Grid3d, StencilDegrees) {
  const Csr g = grid3d(8, 8, 8, true);
  EXPECT_EQ(g.num_vertices(), 512u);
  EXPECT_TRUE(graph::validate(g).empty());
  const auto stats = graph::degree_stats(g);
  EXPECT_EQ(stats.max_degree, 26u);  // interior of a 26-point stencil
  EXPECT_EQ(stats.min_degree, 7u);   // corner
}

TEST(Grid3d, VonNeumann) {
  const Csr g = grid3d(6, 6, 6, false);
  const auto stats = graph::degree_stats(g);
  EXPECT_EQ(stats.max_degree, 6u);
  EXPECT_EQ(stats.min_degree, 3u);
}

TEST(KktMesh, AddsCouplingEdges) {
  const Csr base = grid3d(8, 8, 8, true);
  const Csr kkt = kkt_mesh(8, 8, 8, 33, 2);
  EXPECT_GT(kkt.num_edges(), base.num_edges());
  EXPECT_TRUE(graph::validate(kkt).empty());
  EXPECT_EQ(kkt.num_vertices(), base.num_vertices());
}

TEST(Road, MostlyDegreeTwoChains) {
  RoadParams p;
  p.grid_nx = 60;
  p.grid_ny = 60;
  p.seed = 11;
  const Csr g = road_network(p);
  EXPECT_TRUE(graph::validate(g).empty());
  const auto stats = graph::degree_stats(g);
  EXPECT_LE(stats.max_degree, 4u);  // lattice + subdivision only
  // Subdivision vertices dominate: mean degree close to 2.
  EXPECT_GT(stats.mean_degree, 1.5);
  EXPECT_LT(stats.mean_degree, 3.0);
  EXPECT_GT(g.num_vertices(), 60u * 60u);  // subdivision added vertices
}

TEST(Sbm, GroundTruthShapes) {
  SbmParams p;
  p.num_vertices = 2048;
  p.num_communities = 16;
  p.seed = 13;
  const SbmResult r = planted_partition(p);
  EXPECT_EQ(r.ground_truth.size(), 2048u);
  EXPECT_TRUE(graph::validate(r.graph).empty());
  const auto max_label =
      *std::max_element(r.ground_truth.begin(), r.ground_truth.end());
  EXPECT_EQ(max_label, 15u);
  // Intra edges must dominate: count them.
  std::uint64_t intra = 0, inter = 0;
  for (VertexId v = 0; v < 2048; ++v) {
    for (auto nb : r.graph.neighbors(v)) {
      (r.ground_truth[v] == r.ground_truth[nb] ? intra : inter) += 1;
    }
  }
  EXPECT_GT(intra, 3 * inter);
}

TEST(Lfr, MixingParameterRespected) {
  LfrParams p;
  p.num_vertices = 4096;
  p.mu = 0.2;
  p.seed = 17;
  const LfrResult r = lfr(p);
  EXPECT_TRUE(graph::validate(r.graph).empty());
  std::uint64_t intra = 0, total = 0;
  for (VertexId v = 0; v < p.num_vertices; ++v) {
    for (auto nb : r.graph.neighbors(v)) {
      intra += (r.ground_truth[v] == r.ground_truth[nb]);
      ++total;
    }
  }
  const double observed_mu = 1.0 - static_cast<double>(intra) / total;
  EXPECT_NEAR(observed_mu, 0.2, 0.08);
}

TEST(Lfr, SkewedDegreesWithCommunities) {
  LfrParams p;
  p.num_vertices = 4096;
  p.seed = 19;
  const LfrResult r = lfr(p);
  const auto stats = graph::degree_stats(r.graph);
  EXPECT_GT(static_cast<double>(stats.max_degree), 3 * stats.mean_degree);
}

TEST(RingOfCliques, ExactCounts) {
  const Csr g = ring_of_cliques(5, 4);
  EXPECT_EQ(g.num_vertices(), 20u);
  // 5 * C(4,2) clique edges + 5 bridges.
  EXPECT_EQ(g.num_edges(), 5u * 6 + 5);
  EXPECT_TRUE(graph::validate(g).empty());
  EXPECT_EQ(graph::count_components(g), 1u);
}

TEST(RingOfCliques, SingleClique) {
  const Csr g = ring_of_cliques(1, 5);
  EXPECT_EQ(g.num_edges(), 10u);
}

class SuiteEntryTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllFamilies, SuiteEntryTest,
                         ::testing::ValuesIn(suite_names()),
                         [](const auto& info) { return info.param; });

TEST_P(SuiteEntryTest, BuildsValidGraphAtTinyScale) {
  const SuiteEntry& entry = suite_entry(GetParam());
  const Csr g = entry.build(/*scale=*/0.02, /*seed=*/1);
  EXPECT_GT(g.num_vertices(), 0u);
  EXPECT_GT(g.num_edges(), 0u);
  EXPECT_TRUE(graph::validate(g).empty()) << graph::validate(g);
}

TEST_P(SuiteEntryTest, DeterministicBySeed) {
  const SuiteEntry& entry = suite_entry(GetParam());
  EXPECT_EQ(entry.build(0.02, 3), entry.build(0.02, 3));
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW(suite_entry("no-such-graph"), std::invalid_argument);
}

TEST(Suite, CoversPaperFamilies) {
  // One stand-in per family listed in DESIGN.md.
  const auto names = suite_names();
  EXPECT_GE(names.size(), 12u);
}

}  // namespace
}  // namespace glouvain::gen
