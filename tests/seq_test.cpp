// Tests for the sequential Louvain baseline.
#include <gtest/gtest.h>

#include "gen/cliques.hpp"
#include "gen/er.hpp"
#include "gen/sbm.hpp"
#include "metrics/compare.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition.hpp"
#include "graph/builder.hpp"
#include "seq/louvain.hpp"

namespace glouvain::seq {
namespace {

using graph::Community;
using graph::VertexId;

TEST(SeqLouvain, RecoversRingOfCliques) {
  const auto g = gen::ring_of_cliques(12, 6);
  const auto result = louvain(g);
  // Each clique must be one community.
  auto labels = result.community;
  EXPECT_EQ(metrics::renumber(labels), 12u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(labels[v], labels[(v / 6) * 6]) << v;
  }
  EXPECT_GT(result.modularity, 0.8);
}

TEST(SeqLouvain, ReportedModularityMatchesRecomputation) {
  const auto g = gen::erdos_renyi(800, 4000, 3);
  const auto result = louvain(g);
  EXPECT_NEAR(result.modularity, metrics::modularity(g, result.community), 1e-9);
}

TEST(SeqLouvain, LevelModularityMonotone) {
  const auto g = gen::planted_partition({.num_vertices = 2000,
                                         .num_communities = 20,
                                         .intra_degree = 10,
                                         .inter_degree = 2,
                                         .seed = 5})
                     .graph;
  const auto result = louvain(g);
  ASSERT_GE(result.levels.size(), 1u);
  for (std::size_t i = 0; i + 1 < result.levels.size(); ++i) {
    EXPECT_LE(result.levels[i].modularity_after,
              result.levels[i + 1].modularity_after + 1e-9);
  }
  // And each phase improves on its entry modularity.
  for (const auto& level : result.levels) {
    EXPECT_GE(level.modularity_after, level.modularity_before - 1e-9);
  }
}

TEST(SeqLouvain, FindsPlantedPartition) {
  const auto sbm = gen::planted_partition({.num_vertices = 2048,
                                           .num_communities = 16,
                                           .intra_degree = 14,
                                           .inter_degree = 1.5,
                                           .seed = 7});
  const auto result = louvain(sbm.graph);
  EXPECT_GT(metrics::nmi(result.community, sbm.ground_truth), 0.9);
}

TEST(SeqLouvain, SingleVertexAndEmptyGraph) {
  const auto empty = graph::build_csr(0, {});
  const auto r0 = louvain(empty);
  EXPECT_EQ(r0.community.size(), 0u);

  const auto lone = graph::build_csr(1, {});
  const auto r1 = louvain(lone);
  EXPECT_EQ(r1.community.size(), 1u);
}

TEST(SeqLouvain, DisconnectedComponentsStaySeparate) {
  // Two disjoint triangles: optimal = one community per triangle.
  const auto g = graph::build_csr(
      6, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {3, 4, 1}, {4, 5, 1}, {3, 5, 1}});
  const auto result = louvain(g);
  auto labels = result.community;
  EXPECT_EQ(metrics::renumber(labels), 2u);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(SeqLouvain, AdaptiveThresholdIsFasterOrEqual) {
  const auto g = gen::erdos_renyi(3000, 20000, 11);
  Config fine;  // adaptive=false: always t_final
  Config adaptive;
  adaptive.thresholds.adaptive = true;
  adaptive.thresholds.adaptive_limit = 1000;  // force t_bin on level 0
  const auto r_fine = louvain(g, fine);
  const auto r_adapt = louvain(g, adaptive);
  // Coarser early threshold means no more sweeps in the first phase.
  ASSERT_FALSE(r_fine.levels.empty());
  ASSERT_FALSE(r_adapt.levels.empty());
  EXPECT_LE(r_adapt.levels[0].iterations, r_fine.levels[0].iterations);
  // Quality stays within a couple of percent (paper: ~0.13% average).
  EXPECT_GT(r_adapt.modularity, 0.95 * r_fine.modularity);
}

TEST(OptimizePhase, AllSingletonsWhenNoGainPossible) {
  // A star's optimum is one community; a single sweep must move leaves.
  const auto star = graph::build_csr(
      5, {{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {0, 4, 1}});
  std::vector<Community> community;
  double q = 0;
  optimize_phase(star, community, 1e-9, 100, &q);
  auto labels = community;
  EXPECT_EQ(metrics::renumber(labels), 1u);
  EXPECT_GE(q, -1e-12);
}

TEST(OptimizePhase, RespectsMaxSweeps) {
  const auto g = gen::erdos_renyi(500, 3000, 13);
  std::vector<Community> community;
  const int sweeps = optimize_phase(g, community, 0.0, 3, nullptr);
  EXPECT_LE(sweeps, 3);
}

TEST(SeqLouvain, DeterministicAcrossRuns) {
  const auto g = gen::erdos_renyi(600, 3000, 17);
  const auto a = louvain(g);
  const auto b = louvain(g);
  EXPECT_EQ(a.community, b.community);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

TEST(SeqLouvain, TepsPopulated) {
  const auto g = gen::erdos_renyi(2000, 10000, 19);
  const auto result = louvain(g);
  EXPECT_GT(result.first_phase_teps, 0.0);
}

}  // namespace
}  // namespace glouvain::seq
