// Cross-module integration tests: all three Louvain implementations on
// the full generator suite, quality parity, and pipeline plumbing
// (IO -> detect -> compare).
#include <gtest/gtest.h>

#include <filesystem>

#include "core/louvain.hpp"
#include "gen/suite.hpp"
#include "graph/io.hpp"
#include "graph/ops.hpp"
#include "metrics/compare.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition.hpp"
#include "plm/plm.hpp"
#include "seq/louvain.hpp"

namespace glouvain {
namespace {

/// Tiny-scale instance of every suite family.
class SuiteQuality : public ::testing::TestWithParam<std::string> {
 protected:
  graph::Csr make() {
    return gen::suite_entry(GetParam()).build(/*scale=*/0.03, /*seed=*/1);
  }
};

INSTANTIATE_TEST_SUITE_P(AllFamilies, SuiteQuality,
                         ::testing::ValuesIn(gen::suite_names()),
                         [](const auto& info) { return info.param; });

TEST_P(SuiteQuality, CoreTracksSequentialPerGraph) {
  const auto g = make();
  const auto rs = seq::louvain(g);
  const auto rc = core::louvain(g);
  // Paper Figure 1 claims the AVERAGE relative modularity stays >= 98%
  // (tested below); per graph we allow a 3% band with an absolute
  // fallback for degenerate Q ~ 0 cases.
  EXPECT_GT(rc.modularity, rs.modularity - std::max(0.03 * std::abs(rs.modularity), 0.02))
      << "seq=" << rs.modularity << " core=" << rc.modularity;
}

TEST(Integration, AverageRelativeModularityAtLeast98Percent) {
  // The paper's headline quality claim (Figure 1): with thresholds
  // (t_bin, t_final) = (1e-2, 1e-6) the GPU algorithm's modularity
  // averages >= 98-99% of sequential across the suite.
  double sum_ratio = 0;
  int count = 0;
  for (const auto& name : gen::suite_names()) {
    const auto g = gen::suite_entry(name).build(0.03, 1);
    const double qs = seq::louvain(g).modularity;
    const double qc = core::louvain(g).modularity;
    if (qs > 0.05) {
      sum_ratio += qc / qs;
      ++count;
    }
  }
  ASSERT_GT(count, 5);
  EXPECT_GT(sum_ratio / count, 0.98);
}

TEST_P(SuiteQuality, AllThreeProduceValidPartitions) {
  const auto g = make();
  for (auto community : {seq::louvain(g).community, plm::louvain(g).community,
                         core::louvain(g).community}) {
    ASSERT_EQ(community.size(), g.num_vertices());
    // Labels are dense after each pipeline's renumbering.
    auto labels = community;
    const auto k = metrics::renumber(labels);
    EXPECT_GT(k, 0u);
    EXPECT_LE(k, g.num_vertices());
    EXPECT_EQ(labels, community);  // already dense
  }
}

TEST(Integration, PartitionsAgreeOnStructuredFamilies) {
  // Louvain is order-dependent, and on graphs without a crisp community
  // structure (dense social graphs, meshes) different optimizers find
  // genuinely different near-optimal partitions. On families with real
  // structure the partitions must broadly agree; NMI of independent
  // partitions would be near 0.
  for (const char* name : {"community", "road", "trace", "rgg"}) {
    const auto g = gen::suite_entry(name).build(0.03, 1);
    const auto a = core::louvain(g).community;
    const auto b = seq::louvain(g).community;
    EXPECT_GT(metrics::nmi(a, b), 0.5) << name;
  }
}

TEST(Integration, FileRoundTripThenDetect) {
  const auto dir = std::filesystem::temp_directory_path() / "glouvain_integ";
  std::filesystem::create_directories(dir);
  const auto g = gen::suite_entry("community").build(0.03, 5);
  const std::string path = (dir / "g.bin").string();
  graph::save_binary(g, path);
  const auto loaded = graph::load_auto(path);
  ASSERT_EQ(loaded, g);
  const auto result = core::louvain(loaded);
  EXPECT_GT(result.modularity, 0.3);
  std::filesystem::remove_all(dir);
}

TEST(Integration, CoreBeatsOrMatchesPlmQualityOnAverage) {
  // Average relative modularity across families: core within 1% of plm.
  double sum_ratio = 0;
  int count = 0;
  for (const auto& name : gen::suite_names()) {
    const auto g = gen::suite_entry(name).build(0.02, 3);
    const double qp = plm::louvain(g).modularity;
    const double qc = core::louvain(g).modularity;
    if (qp > 0.05) {
      sum_ratio += qc / qp;
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_GT(sum_ratio / count, 0.98);
}

TEST(Integration, HierarchyIsConsistent) {
  // Flattened community of the full run must reproduce the final
  // modularity when evaluated on the ORIGINAL graph — the multi-level
  // plumbing (renumber, flatten, new_id) has no slack if this holds.
  const auto g = gen::suite_entry("fem3d").build(0.02, 7);
  for (int seed = 0; seed < 3; ++seed) {
    const auto result = core::louvain(g);
    EXPECT_NEAR(metrics::modularity(g, result.community), result.modularity, 1e-7);
  }
}

}  // namespace
}  // namespace glouvain
