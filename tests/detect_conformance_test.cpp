// Backend-conformance suite for the unified detect:: API: every
// registered Detector must produce valid labels and comparable
// modularity on the same seeded inputs, and must emit a well-formed
// span tree when a Recorder is attached.
#include "detect/detector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include "check/check.hpp"
#include "gen/rmat.hpp"
#include "gen/sbm.hpp"
#include "obs/recorder.hpp"
#include "svc/service.hpp"

namespace glouvain {
namespace {

graph::Csr sbm_graph() {
  gen::SbmParams p;
  p.num_vertices = 1 << 11;
  p.num_communities = 16;
  p.intra_degree = 12.0;
  p.inter_degree = 2.0;
  p.seed = 42;
  return gen::planted_partition(p).graph;
}

graph::Csr rmat_graph() {
  gen::RmatParams p;
  p.scale = 10;
  p.edge_factor = 8.0;
  return gen::rmat(p, 7);
}

detect::Options small_options() {
  detect::Options options;
  options.threads = 2;
  return options;
}

void check_labels(const detect::Result& result, graph::VertexId n,
                  const std::string& backend) {
  ASSERT_EQ(result.community.size(), static_cast<std::size_t>(n)) << backend;
  for (const graph::Community c : result.community) {
    ASSERT_LT(c, n) << backend;
  }
}

TEST(DetectRegistry, BuiltInBackendsAreRegistered) {
  const auto names = detect::backend_names();
  const std::set<std::string> have(names.begin(), names.end());
  for (const char* expected : {"core", "seq", "plm", "multi"}) {
    EXPECT_TRUE(have.count(expected)) << expected;
  }
}

TEST(DetectRegistry, UnknownBackendYieldsInvalidArgument) {
  const auto d = detect::make("no-such-backend");
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(DetectRegistry, RegisterExtendsAndRejectsDuplicates) {
  struct Fake : detect::Detector {
    std::string_view name() const noexcept override { return "fake"; }
    detect::Result run(const graph::Csr&, const detect::Options&,
                       obs::Recorder*) override {
      return {};
    }
  };
  const bool added = detect::register_backend(
      "conformance-fake", [](const detect::Extensions&) {
        return std::make_unique<Fake>();
      });
  EXPECT_TRUE(added);
  EXPECT_FALSE(detect::register_backend(
      "conformance-fake",
      [](const detect::Extensions&) { return std::make_unique<Fake>(); }));
  const auto d = detect::make("conformance-fake");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->name(), "fake");
}

TEST(DetectConformance, EveryBackendAgreesOnPlantedCommunities) {
  const graph::Csr g = sbm_graph();
  const auto options = small_options();

  auto seq = detect::make("seq");
  ASSERT_TRUE(seq.ok());
  const detect::Result reference = (*seq)->run(g, options);
  ASSERT_GT(reference.modularity, 0.3);

  for (const char* backend : {"core", "seq", "plm", "multi"}) {
    SCOPED_TRACE(backend);
    auto d = detect::make(backend);
    ASSERT_TRUE(d.ok()) << d.status().to_string();
    const detect::Result result = (*d)->run(g, options);
    check_labels(result, g.num_vertices(), backend);
    EXPECT_NEAR(result.modularity, reference.modularity, 0.08);
    EXPECT_FALSE(result.levels.empty());
  }
}

TEST(DetectConformance, EveryBackendHandlesSkewedDegrees) {
  const graph::Csr g = rmat_graph();
  const auto options = small_options();
  for (const char* backend : {"core", "seq", "plm", "multi"}) {
    SCOPED_TRACE(backend);
    auto d = detect::make(backend);
    ASSERT_TRUE(d.ok());
    const detect::Result result = (*d)->run(g, options);
    check_labels(result, g.num_vertices(), backend);
    EXPECT_GE(result.modularity, 0.0);
  }
}

TEST(DetectConformance, EveryBackendEmitsAWellFormedSpanTree) {
  const graph::Csr g = sbm_graph();
  const auto options = small_options();
  for (const char* backend : {"core", "seq", "plm", "multi"}) {
    SCOPED_TRACE(backend);
    auto d = detect::make(backend);
    ASSERT_TRUE(d.ok());
    obs::Recorder rec;
    const detect::Result result = (*d)->run(g, options, &rec);
    EXPECT_TRUE(rec.validate().empty()) << rec.validate();
    EXPECT_FALSE(rec.spans().empty());
    // Recorded root spans cannot exceed the run's own wall clock by
    // more than scheduling noise.
    EXPECT_LE(rec.recorded_seconds(), result.total_seconds + 0.25);
    // Every backend must at least time the two Louvain phases.
    std::set<std::string> names;
    for (const obs::SpanRecord& s : rec.spans()) {
      names.insert(std::string(rec.name(s.name)));
    }
    EXPECT_TRUE(names.count("modopt")) << backend;
    EXPECT_TRUE(names.count("aggregate")) << backend;
  }
}

TEST(DetectConformance, CoreSpansCoverTheKernelStages) {
  const graph::Csr g = rmat_graph();
  auto d = detect::make("core");
  ASSERT_TRUE(d.ok());
  obs::Recorder rec;
  (void)(*d)->run(g, small_options(), &rec);
  std::set<std::string> names;
  for (const obs::SpanRecord& s : rec.spans()) {
    names.insert(std::string(rec.name(s.name)));
  }
  EXPECT_TRUE(names.count("modopt/binning"));
  EXPECT_TRUE(names.count("modopt/sweep"));
  EXPECT_TRUE(names.count("modopt/commit"));
  EXPECT_TRUE(names.count("aggregate/binning"));
  EXPECT_TRUE(names.count("fold"));
  // At least one degree-bucket kernel span in each phase.
  EXPECT_TRUE(std::any_of(names.begin(), names.end(), [](const std::string& n) {
    return n.rfind("modopt/bucket", 0) == 0 && n != "modopt/bucket_occupancy";
  }));
  EXPECT_TRUE(std::any_of(names.begin(), names.end(), [](const std::string& n) {
    return n.rfind("aggregate/bucket", 0) == 0 &&
           n != "aggregate/bucket_occupancy";
  }));
}

TEST(DetectConformance, DetectorsAreReusableAcrossRuns) {
  const graph::Csr a = sbm_graph();
  const graph::Csr b = rmat_graph();
  auto d = detect::make("core");
  ASSERT_TRUE(d.ok());
  const detect::Result ra = (*d)->run(a, small_options());
  const detect::Result rb = (*d)->run(b, small_options());
  check_labels(ra, a.num_vertices(), "core run 1");
  check_labels(rb, b.num_vertices(), "core run 2");
}

// --- Device-backend parity matrix (DESIGN.md §13): the scalar lane
// substrate is the bitwise reference — identical partitions across
// every storage × table-layout combination — while the vector substrate
// answers to a quality bar (≥98% of the sequential modularity) plus
// label validity, since its argmax fold order differs.

TEST(DetectConformance, ScalarDeviceIsBitwiseStableAcrossStorageAndLayout) {
  const graph::Csr g = sbm_graph();
  auto d = detect::make("core");
  ASSERT_TRUE(d.ok());

  detect::Options options = small_options();
  options.device = simt::Backend::kScalar;
  const detect::Result reference = (*d)->run(g, options);
  check_labels(reference, g.num_vertices(), "scalar/plain/sentinel");

  for (const detect::Storage storage :
       {detect::Storage::kPlain, detect::Storage::kZcsr,
        detect::Storage::kMmap}) {
    for (const detect::TableLayout layout :
         {detect::TableLayout::kSentinel, detect::TableLayout::kOccupancy}) {
      SCOPED_TRACE(std::string(detect::storage_name(storage)) + "/" +
                   detect::table_layout_name(layout));
      detect::Options combo = options;
      combo.storage = storage;
      combo.table_layout = layout;
      const detect::Result result = (*d)->run(g, combo);
      // Bitwise: the same labels, not merely the same modularity.
      EXPECT_EQ(result.community, reference.community);
    }
  }
}

TEST(DetectConformance, VectorDeviceMeetsQualityParityAcrossTheMatrix) {
  const graph::Csr g = sbm_graph();
  auto seq = detect::make("seq");
  ASSERT_TRUE(seq.ok());
  const double seq_q = (*seq)->run(g, small_options()).modularity;
  ASSERT_GT(seq_q, 0.3);

  auto d = detect::make("core");
  ASSERT_TRUE(d.ok());
  for (const detect::Storage storage :
       {detect::Storage::kPlain, detect::Storage::kZcsr,
        detect::Storage::kMmap}) {
    for (const detect::TableLayout layout :
         {detect::TableLayout::kSentinel, detect::TableLayout::kOccupancy}) {
      SCOPED_TRACE(std::string(detect::storage_name(storage)) + "/" +
                   detect::table_layout_name(layout));
      detect::Options options = small_options();
      options.device = simt::Backend::kVector;
      options.storage = storage;
      options.table_layout = layout;
      const detect::Result result = (*d)->run(g, options);
      check_labels(result, g.num_vertices(), "vector");
      EXPECT_GE(result.modularity, 0.98 * seq_q);
    }
  }
}

TEST(DetectConformance, AutoDeviceMatchesItsResolution) {
  // kAuto must behave exactly like whatever it resolves to on this
  // machine — one detector instance, re-run across the switch, so the
  // registry's backend-aware runner rebuild is exercised too.
  const graph::Csr g = sbm_graph();
  auto d = detect::make("core");
  ASSERT_TRUE(d.ok());
  detect::Options options = small_options();
  options.device = simt::Backend::kAuto;
  const detect::Result auto_run = (*d)->run(g, options);
  options.device = simt::resolve_backend(simt::Backend::kAuto);
  const detect::Result resolved_run = (*d)->run(g, options);
  EXPECT_EQ(auto_run.community, resolved_run.community);
}

TEST(DetectConformance, VectorLaneOccupancyCounterIsEmitted) {
  // The obs counter only exists on vector runs; scalar runs must not
  // emit it (it would read as 0/0). Under a GLOUVAIN_SIMTCHECK build
  // the vector collectives deliberately take the scalar reference path
  // (that is the twin the checker instruments), so no run emits it.
  const graph::Csr g = sbm_graph();
  auto d = detect::make("core");
  ASSERT_TRUE(d.ok());
  for (const simt::Backend device :
       {simt::Backend::kScalar, simt::Backend::kVector}) {
    SCOPED_TRACE(simt::backend_name(device));
    detect::Options options = small_options();
    options.device = device;
    obs::Recorder rec;
    (void)(*d)->run(g, options, &rec);
    bool found = false;
    double value = -1.0;
    for (const auto& c : rec.counters()) {
      if (rec.name(c.name) == std::string_view("modopt/vector_lane_occupancy")) {
        found = true;
        value = c.value;
      }
    }
    if (device == simt::Backend::kVector && !check::enabled()) {
      EXPECT_TRUE(found);
      EXPECT_GT(value, 0.0);
      EXPECT_LE(value, 1.0);
    } else {
      EXPECT_FALSE(found);
    }
  }
}

TEST(DetectConformance, ServiceRunsEveryBackend) {
  svc::ServiceConfig cfg;
  cfg.devices = 1;
  cfg.device_threads = 2;
  cfg.aux_workers = 1;
  cfg.options.threads = 2;
  const graph::Csr g = sbm_graph();
  svc::Service service(cfg);
  for (const svc::Backend b : {svc::Backend::Core, svc::Backend::Seq,
                               svc::Backend::Plm, svc::Backend::Multi}) {
    SCOPED_TRACE(svc::to_string(b));
    svc::JobOptions jo;
    jo.backend = b;
    jo.use_cache = false;
    const auto id = service.try_submit(g, jo);
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    const svc::JobResult r = service.wait(*id);
    EXPECT_EQ(r.status, svc::JobStatus::Completed) << r.error;
    ASSERT_TRUE(r.result);
    EXPECT_GT(r.result->modularity, 0.3);
    EXPECT_TRUE(svc::to_status(r).ok());
  }
}

}  // namespace
}  // namespace glouvain
