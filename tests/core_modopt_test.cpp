// Tests for the modularity-optimization phase (Algorithms 1-2) of the
// GPU-style core.
#include <gtest/gtest.h>

#include "core/louvain.hpp"
#include "core/modopt.hpp"
#include "gen/cliques.hpp"
#include "gen/er.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition.hpp"

namespace glouvain::core {
namespace {

using graph::Community;
using graph::VertexId;
using graph::Weight;

TEST(PhaseState, ResetInitializesSingletons) {
  const auto g = gen::ring_of_cliques(4, 4);
  simt::Device device;
  PhaseState state;
  state.reset(g, device);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(state.community[v], v);
    EXPECT_EQ(state.com_size[v], 1u);
    EXPECT_DOUBLE_EQ(state.tot[v], g.strength(v));
    EXPECT_DOUBLE_EQ(state.strengths[v], g.strength(v));
  }
}

TEST(DeviceModularity, MatchesReference) {
  const auto g = gen::erdos_renyi(500, 3000, 3);
  simt::Device device;
  PhaseState state;
  state.reset(g, device);
  // All singletons.
  EXPECT_NEAR(device_modularity(device, g, state.community, state.tot),
              metrics::modularity(g, state.community), 1e-9);
}

TEST(OptimizePhase, OneCliqueCollapses) {
  const auto g = gen::ring_of_cliques(1, 6);
  Louvain runner;
  std::vector<Community> community;
  runner.run_phase(g, community, 1e-9);
  auto labels = community;
  EXPECT_EQ(metrics::renumber(labels), 1u);
}

TEST(OptimizePhase, RingOfCliquesToCliques) {
  const auto g = gen::ring_of_cliques(10, 5);
  Louvain runner;
  std::vector<Community> community;
  const PhaseResult pr = runner.run_phase(g, community, 1e-9);
  auto labels = community;
  EXPECT_EQ(metrics::renumber(labels), 10u);
  EXPECT_GT(pr.sweeps, 0);
  EXPECT_NEAR(pr.modularity, metrics::modularity(g, community), 1e-9);
}

TEST(OptimizePhase, PhaseNeverDecreasesModularity) {
  const auto g = gen::rmat({.scale = 11, .edge_factor = 8}, 5);
  Louvain runner;
  std::vector<Community> community;
  const PhaseResult pr = runner.run_phase(g, community, 1e-6);
  // Singleton start has Q <= 0 on an unweighted simple graph.
  std::vector<Community> singletons(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) singletons[v] = v;
  EXPECT_GE(pr.modularity, metrics::modularity(g, singletons) - 1e-9);
}

TEST(OptimizePhase, RespectsSweepCap) {
  const auto g = gen::erdos_renyi(1000, 8000, 7);
  Config cfg;
  cfg.max_sweeps_per_level = 2;
  Louvain runner(cfg);
  std::vector<Community> community;
  const PhaseResult pr = runner.run_phase(g, community, 0.0);
  EXPECT_LE(pr.sweeps, 2);
}

TEST(OptimizePhase, SingletonGuardBlocksLargerIds) {
  // Two isolated vertices joined by an edge: in sweep 1 both are
  // singletons; only the larger id may move (to the smaller).
  const auto g = graph::build_csr(2, {{0, 1, 1.0}});
  Louvain runner;
  std::vector<Community> community;
  runner.run_phase(g, community, 1e-9);
  EXPECT_EQ(community[0], 0u);
  EXPECT_EQ(community[1], 0u);
}

TEST(OptimizePhase, WeightedEdgesDriveDecisions) {
  // Triangle 0-1-2 with a heavy 0-1 edge plus pendant 2-3: vertex 2
  // prefers the heavy pair only if weights are honored.
  const auto g = graph::build_csr(
      4, {{0, 1, 10.0}, {1, 2, 1.0}, {0, 2, 1.0}, {2, 3, 1.0}});
  Louvain runner;
  std::vector<Community> community;
  runner.run_phase(g, community, 1e-9);
  EXPECT_EQ(community[0], community[1]);
}

TEST(OptimizePhase, IsolatedVerticesStaySingleton) {
  const auto g = graph::build_csr(5, {{0, 1, 1.0}});
  Louvain runner;
  std::vector<Community> community;
  runner.run_phase(g, community, 1e-9);
  EXPECT_EQ(community[2], 2u);
  EXPECT_EQ(community[3], 3u);
  EXPECT_EQ(community[4], 4u);
}

TEST(OptimizePhase, RelaxedStrategyStillConverges) {
  const auto g = gen::ring_of_cliques(8, 6);
  Config cfg;
  cfg.update = UpdateStrategy::Relaxed;
  Louvain runner(cfg);
  std::vector<Community> community;
  const PhaseResult pr = runner.run_phase(g, community, 1e-9);
  auto labels = community;
  EXPECT_EQ(metrics::renumber(labels), 8u);
  EXPECT_GT(pr.modularity, 0.7);
}

TEST(OptimizePhase, AblationSchemesAgreeOnCliques) {
  const auto g = gen::ring_of_cliques(6, 5);
  for (auto scheme : {BucketScheme::single_lane(), BucketScheme::warp_per_vertex()}) {
    Config cfg;
    cfg.modopt_buckets = scheme;
    Louvain runner(cfg);
    std::vector<Community> community;
    runner.run_phase(g, community, 1e-9);
    auto labels = community;
    EXPECT_EQ(metrics::renumber(labels), 6u);
  }
}

TEST(OptimizePhase, HighDegreeHubUsesGlobalBucket) {
  // A star with 500 leaves: the hub sits in the >319 bucket whose hash
  // table lives in "global memory"; everything must still converge to
  // one community.
  std::vector<graph::Edge> edges;
  for (VertexId leaf = 1; leaf <= 500; ++leaf) edges.push_back({0, leaf, 1.0});
  const auto star = graph::build_csr(501, std::move(edges));
  Louvain runner;
  std::vector<Community> community;
  runner.run_phase(star, community, 1e-9);
  auto labels = community;
  EXPECT_EQ(metrics::renumber(labels), 1u);
  // Shared arena must not have been used for the hub's table.
  EXPECT_EQ(runner.device().total_spills(), 0u);
}

TEST(OptimizePhase, FirstSweepTimeRecorded) {
  const auto g = gen::erdos_renyi(2000, 12000, 9);
  Louvain runner;
  std::vector<Community> community;
  const PhaseResult pr = runner.run_phase(g, community, 1e-6);
  EXPECT_GT(pr.first_sweep_seconds, 0.0);
}

}  // namespace
}  // namespace glouvain::core
