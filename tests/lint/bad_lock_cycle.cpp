// glint fixture: lock-order cycle. Two mutexes acquired in opposite
// orders by two call paths — the classic AB/BA deadlock, one function
// call deep on each side so the regex lint structurally cannot see it.
// NOT part of any build target; the `glint_fixture_lock_cycle` ctest
// runs glint over this file with --expect-violations.
//
// Expected findings:
//   lock-cycle   Ledger::m_ -> Journal::m_ -> Ledger::m_
// The aligned pair at the bottom (both paths take Ledger then Journal)
// must NOT add a second cycle.

#include <mutex>
#include <vector>

namespace glouvain::fixture {

class Journal {
 public:
  void append(int v) {
    std::lock_guard<std::mutex> lock(m_);
    entries_.push_back(v);
  }
  // Reverse edge: Journal::m_ held while reaching into the ledger.
  template <typename Ledger>
  void reconcile(Ledger& ledger) {
    std::lock_guard<std::mutex> lock(m_);
    ledger.total();  // acquires Ledger::m_ under Journal::m_
  }

 private:
  std::mutex m_;
  std::vector<int> entries_;
};

class Ledger {
 public:
  // Forward edge: Ledger::m_ held while append() takes Journal::m_.
  void post(Journal& journal, int v) {
    std::lock_guard<std::mutex> lock(m_);
    sum_ += v;
    journal.append(v);
  }
  long total() {
    std::lock_guard<std::mutex> lock(m_);
    return sum_;
  }

 private:
  std::mutex m_;
  long sum_ = 0;
};

// Consistent ordering (Ledger -> Journal on both paths) is fine and
// must not be reported as a second cycle.
inline void aligned(Ledger& ledger, Journal& journal) {
  ledger.post(journal, 1);
  ledger.post(journal, 2);
}

}  // namespace glouvain::fixture
