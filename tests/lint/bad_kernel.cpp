// Lint fixture: every rule in tools/simt_lint.py must fire on this
// file. It is intentionally NOT part of any build target — it exists so
// the `simt_lint_fixture` ctest (run with --expect-violations) fails
// the build if the linter rots and stops catching these.
//
// Expected findings:
//   raw-atomic       lines with std::atomic / <atomic> below
//   raw-intrinsic    the <immintrin.h> include and the _mm256 gather
//   seq-cst          the memory_order_seq_cst load
//   kernel-alloc     the push_back / new inside the launch body
// The suppressed std::atomic at the end must NOT be reported.
// (unpaired-launch moved to tools/glint.py — tests/lint/
// bad_unpaired_launch.cpp is its fixture now.)

#include <atomic>
#include <cstddef>
#include <immintrin.h>
#include <vector>

#include "simt/device.hpp"

namespace glouvain::fixture {

std::atomic<int> g_bad_counter{0};  // raw-atomic: should use simt::atomic_*

// raw-intrinsic: vector code outside src/simt/ must use simt::vec.
inline __m256i bad_gather(const int* table, __m256i idx) {
  return _mm256_i32gather_epi32(table, idx, 4);
}

inline int bad_seq_cst_read() {
  return g_bad_counter.load(std::memory_order_seq_cst);  // seq-cst
}

inline void bad_kernel(simt::Device& device, std::vector<int>& sink) {
  device.launch(64, [&](simt::TaskContext& ctx) {
    sink.push_back(static_cast<int>(ctx.task()));  // kernel-alloc: growth
    int* leak = new int(static_cast<int>(ctx.task()));  // kernel-alloc: new
    delete leak;
  });
}

// Suppression escape hatch — this one is deliberate and must stay
// invisible to the linter.
std::atomic<int> g_allowed{0};  // simt-lint: allow(raw-atomic)

}  // namespace glouvain::fixture
