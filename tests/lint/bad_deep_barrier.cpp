// glint fixture: transitive barrier-purity and kernel allocation. The
// violations here hide ONE CALL DEEP: the run_lanes() fan-out body
// calls a helper that writes cross-shard state, and the Device::launch
// body calls a helper that grows a vector — both invisible to
// simt_lint's syntactic body scan, both exactly what glint's call-graph
// walk exists to catch. NOT part of any build target; run with
// --expect-violations.
//
// Expected findings:
//   shard-barrier  run_lanes body -> commit_now() -> gs.apply_move(...)
//   kernel-alloc   launch body -> log_task() -> sink.push_back(...)
// The buffered / arena-based twins at the bottom must NOT be reported.

#include <cstddef>
#include <span>
#include <thread>
#include <vector>

#include "shard/halo.hpp"
#include "simt/device.hpp"

namespace glouvain::fixture {

template <typename Fn>
void run_lanes(unsigned lanes, Fn&& fn) {
  std::vector<std::thread> threads;
  for (unsigned lane = 0; lane < lanes; ++lane) {
    threads.emplace_back([&fn, lane] { fn(lane); });
  }
  for (std::thread& t : threads) t.join();
}

// The hidden cross-shard write: perfectly innocent-looking at the
// fan-out site.
inline void commit_now(shard::GlobalState& gs, graph::VertexId v,
                       graph::Community c,
                       std::span<const graph::Weight> strengths) {
  gs.apply_move(v, c, strengths);
}

// shard-barrier (one call deep): every lane publishes moves before the
// join barrier — a data race on a real multi-device deployment.
inline void bad_jacobi_round(shard::GlobalState& gs,
                             std::span<const graph::Weight> strengths,
                             unsigned lanes) {
  run_lanes(lanes, [&](unsigned lane) {
    const auto v = static_cast<graph::VertexId>(lane);
    commit_now(gs, v, static_cast<graph::Community>(lane + 1), strengths);
  });
}

// The hidden allocation, same trick.
inline void log_task(std::vector<std::size_t>& sink, std::size_t task) {
  sink.push_back(task);
}

// kernel-alloc (one call deep): vector growth from inside a kernel.
inline void bad_logging_kernel(simt::Device& device,
                               std::vector<std::size_t>& sink) {
  device.launch(64, [&](simt::TaskContext& ctx) {
    log_task(sink, ctx.task());
  });
}

// Clean twins: the lane buffers locally (published after the join, by
// the caller), and the kernel draws from its SharedArena.
inline void good_buffered_round(std::vector<unsigned>& buffer,
                                unsigned lanes) {
  run_lanes(lanes, [&](unsigned lane) { buffer[lane] = lane + 1; });
}

inline long good_arena_kernel(simt::Device& device, std::size_t n) {
  long total = 0;
  device.launch(1, [&](simt::TaskContext& ctx) {
    auto scratch = ctx.shared().alloc<long>(n);
    for (std::size_t i = 0; i < n; ++i) scratch[i] = 1;
    for (std::size_t i = 0; i < n; ++i) total += scratch[i];
  });
  return total;
}

}  // namespace glouvain::fixture
