// glint fixture: unpaired-launch, the scope-based replacement for
// simt_lint's 40-line proximity heuristic. The first kernel has no
// obs::Span anywhere in its function; the second demonstrates exactly
// why proximity was wrong: a span WAS opened 10 lines above the
// launch, but its block closed before the launch runs, so nothing
// attributes the kernel — the old heuristic would have blessed it.
// NOT part of any build target; run with --expect-violations.
//
// Expected findings:
//   unpaired-launch  the span-less kernel in bad_naked_launch
//   unpaired-launch  the dead-span kernel in bad_closed_span_launch
// good_outer_span_launch must NOT be reported even though its span
// opens far more than 40 lines before the launch.

#include <cstddef>

#include "obs/obs.hpp"
#include "simt/device.hpp"

namespace glouvain::fixture {

// unpaired-launch: no span, no trace attribution.
inline void bad_naked_launch(simt::Device& device, int* out, std::size_t n) {
  device.launch(n, [&](simt::TaskContext& ctx) {
    out[ctx.task()] = static_cast<int>(ctx.task());
  });
}

// unpaired-launch: the span's scope ends before the launch — within 40
// lines, so the proximity heuristic used to bless this.
inline void bad_closed_span_launch(obs::Recorder* rec, simt::Device& device,
                                   int* out, std::size_t n) {
  {
    obs::Span setup_span(rec, "fixture/setup");
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
  }
  device.launch(n, [&](simt::TaskContext& ctx) {
    out[ctx.task()] += 1;
  });
}

// Clean: one span in an enclosing scope covers both launches, even
// with more than 40 lines of padding between them — the span is ALIVE,
// which is what actually matters.
inline void good_outer_span_launch(obs::Recorder* rec, simt::Device& device,
                                   int* out, std::size_t n) {
  obs::Span phase_span(rec, "fixture/phase");
  device.launch(n, [&](simt::TaskContext& ctx) {
    out[ctx.task()] = 1;
  });
  // ---- padding so the second launch sits >40 lines from the span ----
  // line 1
  // line 2
  // line 3
  // line 4
  // line 5
  // line 6
  // line 7
  // line 8
  // line 9
  // line 10
  // line 11
  // line 12
  // line 13
  // line 14
  // line 15
  // line 16
  // line 17
  // line 18
  // line 19
  // line 20
  // line 21
  // line 22
  // line 23
  // line 24
  // line 25
  // line 26
  // line 27
  // line 28
  // line 29
  // line 30
  // line 31
  // line 32
  // line 33
  // line 34
  // line 35
  // line 36
  // line 37
  // line 38
  // line 39
  // line 40
  // line 41
  // line 42
  device.launch(n, [&](simt::TaskContext& ctx) {
    out[ctx.task()] += 1;
  });
}

}  // namespace glouvain::fixture
