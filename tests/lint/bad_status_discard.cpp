// glint fixture: util::Status / StatusOr discipline. A try_* result
// dropped on the floor as an expression statement, and .value() calls
// with no dominating .ok() check (one on a named StatusOr, one on a
// temporary that could never have been checked). NOT part of any build
// target; run with --expect-violations.
//
// Expected findings:
//   status-discard   the bare try_flush(...) statement
//   unchecked-value  parsed.value() with no parsed.ok() anywhere
//   unchecked-value  try_parse(...).value() on the temporary
// The checked consumer at the bottom must NOT be reported.

#include <string>

#include "util/status.hpp"

namespace glouvain::fixture {

inline util::Status try_flush(const std::string& path) {
  if (path.empty()) return util::Status::invalid_argument("empty path");
  return util::Status::ok_status();
}

inline util::StatusOr<int> try_parse(const std::string& text) {
  if (text.empty()) return util::Status::invalid_argument("empty");
  return static_cast<int>(text.size());
}

// status-discard: the Status is an expression statement — an IO error
// here vanishes without a trace.
inline void bad_discard(const std::string& path) {
  try_flush(path);
}

// unchecked-value: no .ok() consultation of `parsed` on any path.
inline int bad_value(const std::string& text) {
  auto parsed = try_parse(text);
  return parsed.value();
}

// unchecked-value (temporary): the StatusOr is never even bound, so no
// check could possibly dominate the access.
inline int bad_temporary(const std::string& text) {
  return try_parse(text).value();
}

// Clean: checked before use, error propagated.
inline util::StatusOr<int> good_checked(const std::string& text) {
  auto parsed = try_parse(text);
  if (!parsed.ok()) return parsed.status();
  return parsed.value() * 2;
}

}  // namespace glouvain::fixture
