// glint fixture: kernel-lifetime (arena escape). SharedArena- and
// Workspace-backed spans stored into a member, a static, and a global —
// all three outlive the launch epoch / workspace reset that reclaims
// the backing memory, the exact stale-pointer class the runtime
// arena-generation checker (src/check) catches at execution time. NOT
// part of any build target; run with --expect-violations.
//
// Expected findings:
//   arena-escape  the member store in BadCache::fill
//   arena-escape  the static store in bad_static_stash
//   arena-escape  the global store in bad_global_stash
// The launch-local use at the bottom must NOT be reported.

#include <cstddef>
#include <span>

#include "simt/device.hpp"

namespace glouvain::fixture {

std::span<int> g_leaked_row;

class BadCache {
 public:
  // arena-escape: ctx.shared() memory dies at the next arena.reset();
  // the member span does not.
  void fill(simt::Device& device, std::size_t n) {
    device.launch(1, [&](simt::TaskContext& ctx) {
      cached_row_ = ctx.shared().alloc<int>(n);
      for (std::size_t i = 0; i < n; ++i) cached_row_[i] = 0;
    });
  }

  std::span<int> row() const { return cached_row_; }

 private:
  std::span<int> cached_row_;
};

// arena-escape: a static outlives every epoch by definition.
inline int* bad_static_stash(simt::TaskContext& ctx, std::size_t n) {
  static std::span<int> stash;
  stash = ctx.shared().alloc<int>(n);
  return stash.data();
}

// arena-escape: namespace-scope globals, same story.
inline void bad_global_stash(simt::TaskContext& ctx, std::size_t n) {
  g_leaked_row = ctx.shared().alloc<int>(n);
}

// Clean: the span never leaves the task, which is the contract.
inline long good_local_use(simt::TaskContext& ctx, std::size_t n) {
  auto row = ctx.shared().alloc<long>(n);
  long sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    row[i] = static_cast<long>(i);
    sum += row[i];
  }
  return sum;
}

}  // namespace glouvain::fixture
