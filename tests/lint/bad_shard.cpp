// Lint fixture for the shard-ghost and shard-barrier rules:
// cross-shard reads and writes that index the exchanged label/total
// arrays directly instead of going through the GlobalState accessors
// (src/shard/halo.hpp), and cross-shard mutations issued from inside a
// run_lanes() fan-out body instead of being buffered for the join
// barrier. It is intentionally NOT part of any build target — it
// exists so the `simt_lint_fixture` ctest (run with
// --expect-violations) fails the build if the linter rots and stops
// catching these.
//
// Expected findings:
//   shard-ghost    the three direct element accesses below
//   shard-barrier  the three in-lane mutations in bad_jacobi_round
// The suppressed read, the whole-vector pass, and the read-only lane
// body at the end must NOT be reported.

#include <span>
#include <vector>

#include "shard/halo.hpp"

namespace glouvain::fixture {

inline graph::Community bad_ghost_read(const shard::GlobalState& gs,
                                       graph::VertexId v) {
  return gs.labels_raw[v];  // shard-ghost: use gs.community_of(v)
}

inline void bad_ghost_write(shard::GlobalState& gs, graph::VertexId v,
                            graph::Community c) {
  gs.labels_raw[v] = c;  // shard-ghost: use gs.store_label / apply_move
}

inline graph::Weight bad_tot_read(const shard::GlobalState& gs,
                                  graph::Community c) {
  return gs.tot_raw[c];  // shard-ghost: use gs.tot_of(c)
}

inline graph::Community tolerated_read(const shard::GlobalState& gs,
                                       graph::VertexId v) {
  return gs.labels_raw[v];  // simt-lint: allow(shard-ghost)
}

/// Passing the whole array to a reduction is the blessed bulk path
/// (device_modularity takes the full span) — the rule only flags
/// element access, so this must stay clean.
inline std::span<const graph::Community> bulk_view(
    const shard::GlobalState& gs) {
  return gs.labels_raw;
}

template <typename Fn>
void run_lanes(unsigned lanes, Fn&& fn);  // stand-in for the engine's

/// A Jacobi round that publishes from inside the fan-out instead of
/// buffering proposals for the barrier: every mutation here is a data
/// race between lanes (and a phantom halo message on real devices).
inline void bad_jacobi_round(shard::GlobalState& gs,
                             std::span<const graph::Weight> strengths,
                             std::vector<int>& last_moved,
                             std::vector<int>& dirty_round, int round) {
  run_lanes(2, [&](unsigned lane) {
    const graph::VertexId v = lane;
    gs.apply_move(v, 0, strengths);  // shard-barrier: buffer a proposal
    last_moved[v] = round;           // shard-barrier: stamp at the barrier
    dirty_round[v + 1] = round;      // shard-barrier: stamp at the barrier
  });
}

/// Reading the round-start snapshot from a lane is the whole point of
/// Jacobi rounds — reads (and == comparisons) must stay clean.
inline int good_jacobi_round(const shard::GlobalState& gs,
                             const std::vector<int>& last_moved, int round) {
  int frontier = 0;
  run_lanes(2, [&](unsigned lane) {
    if (last_moved[lane] == round || gs.community_of(lane) != 0) ++frontier;
  });
  return frontier;
}

}  // namespace glouvain::fixture
