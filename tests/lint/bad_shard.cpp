// Lint fixture for the shard-ghost rule: cross-shard reads and writes
// that index the exchanged label/total arrays directly instead of
// going through the GlobalState accessors (src/shard/halo.hpp). It is
// intentionally NOT part of any build target — it exists so the
// `simt_lint_fixture` ctest (run with --expect-violations) fails the
// build if the linter rots and stops catching these.
//
// Expected findings:
//   shard-ghost  the three direct element accesses below
// The suppressed read and the whole-vector pass at the end must NOT be
// reported.

#include <span>

#include "shard/halo.hpp"

namespace glouvain::fixture {

inline graph::Community bad_ghost_read(const shard::GlobalState& gs,
                                       graph::VertexId v) {
  return gs.labels_raw[v];  // shard-ghost: use gs.community_of(v)
}

inline void bad_ghost_write(shard::GlobalState& gs, graph::VertexId v,
                            graph::Community c) {
  gs.labels_raw[v] = c;  // shard-ghost: use gs.store_label / apply_move
}

inline graph::Weight bad_tot_read(const shard::GlobalState& gs,
                                  graph::Community c) {
  return gs.tot_raw[c];  // shard-ghost: use gs.tot_of(c)
}

inline graph::Community tolerated_read(const shard::GlobalState& gs,
                                       graph::VertexId v) {
  return gs.labels_raw[v];  // simt-lint: allow(shard-ghost)
}

/// Passing the whole array to a reduction is the blessed bulk path
/// (device_modularity takes the full span) — the rule only flags
/// element access, so this must stay clean.
inline std::span<const graph::Community> bulk_view(
    const shard::GlobalState& gs) {
  return gs.labels_raw;
}

}  // namespace glouvain::fixture
