// glint fixture: blocking while holding a lock. A worker holds its
// registry mutex and (a) calls a pool acquire() that condition-waits
// for a free device — the DevicePool::acquire-under-svc-lock hazard
// from DESIGN.md §14 — and (b) waits on a condition_variable while a
// SECOND lock is held (the wait releases only its own mutex). NOT part
// of any build target; run with --expect-violations.
//
// Expected findings:
//   blocking-under-lock  registry_m_ held across pool.acquire_slot()
//   wait-holding-lock    cv wait releasing pool m_ but not registry_m_
// The clean consumer at the bottom (wait with only its own lock held)
// must NOT be reported.

#include <condition_variable>
#include <mutex>

namespace glouvain::fixture {

class SlotPool {
 public:
  // Blocks until a slot frees up: transitively a cv wait, which glint
  // must discover through the call graph.
  unsigned acquire_slot() {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] { return free_ > 0; });
    return --free_;
  }
  void release_slot() {
    {
      std::lock_guard<std::mutex> lock(m_);
      ++free_;
    }
    cv_.notify_one();
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  unsigned free_ = 2;
};

class Registry {
 public:
  // blocking-under-lock: the registry lock is held across a call that
  // condition-waits; every other registry user now waits on the pool.
  unsigned bad_assign(SlotPool& pool) {
    std::lock_guard<std::mutex> lock(registry_m_);
    ++assignments_;
    return pool.acquire_slot();
  }

  // wait-holding-lock: the wait releases pool_m_ while registry_m_
  // stays held through the sleep.
  void bad_nested_wait() {
    std::lock_guard<std::mutex> reg_lock(registry_m_);
    std::unique_lock<std::mutex> lock(pool_m_);
    ready_cv_.wait(lock, [&] { return ready_; });
    ++assignments_;
  }

  // Clean: waiting with only the waited-on mutex held is the normal
  // condition-variable idiom and must not be flagged.
  void good_wait() {
    std::unique_lock<std::mutex> lock(pool_m_);
    ready_cv_.wait(lock, [&] { return ready_; });
  }

 private:
  std::mutex registry_m_;
  std::mutex pool_m_;
  std::condition_variable ready_cv_;
  bool ready_ = false;
  unsigned assignments_ = 0;
};

}  // namespace glouvain::fixture
