// Tests for the shared-memory PLM comparator.
#include <gtest/gtest.h>

#include "gen/cliques.hpp"
#include "gen/er.hpp"
#include "gen/lfr.hpp"
#include "gen/sbm.hpp"
#include "metrics/compare.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition.hpp"
#include "graph/builder.hpp"
#include "plm/plm.hpp"
#include "seq/louvain.hpp"

namespace glouvain::plm {
namespace {

using graph::VertexId;

TEST(Plm, RecoversRingOfCliques) {
  const auto g = gen::ring_of_cliques(16, 8);
  const auto result = louvain(g);
  auto labels = result.community;
  EXPECT_EQ(metrics::renumber(labels), 16u);
  EXPECT_GT(result.modularity, 0.85);
}

TEST(Plm, ReportedModularityMatchesRecomputation) {
  const auto g = gen::erdos_renyi(1000, 6000, 3);
  const auto result = louvain(g);
  EXPECT_NEAR(result.modularity, metrics::modularity(g, result.community), 1e-9);
}

TEST(Plm, QualityOnParWithSequential) {
  // Paper's comparators report modularity within a fraction of a
  // percent of sequential; we allow 3% across several graph families.
  const auto lfr = gen::lfr({.num_vertices = 4096, .mu = 0.3, .seed = 5});
  const auto sbm = gen::planted_partition({.num_vertices = 4096,
                                           .num_communities = 32,
                                           .seed = 7});
  for (const auto* g : {&lfr.graph, &sbm.graph}) {
    const double q_seq = seq::louvain(*g).modularity;
    const double q_plm = louvain(*g).modularity;
    EXPECT_GT(q_plm, 0.97 * q_seq);
  }
}

TEST(Plm, FindsPlantedPartition) {
  const auto sbm = gen::planted_partition({.num_vertices = 2048,
                                           .num_communities = 16,
                                           .intra_degree = 14,
                                           .inter_degree = 1.5,
                                           .seed = 9});
  const auto result = louvain(sbm.graph);
  EXPECT_GT(metrics::nmi(result.community, sbm.ground_truth), 0.9);
}

TEST(Plm, HandlesTrivialGraphs) {
  EXPECT_EQ(louvain(graph::build_csr(0, {})).community.size(), 0u);
  const auto pair = graph::build_csr(2, {{0, 1, 1.0}});
  const auto result = louvain(pair);
  auto labels = result.community;
  EXPECT_EQ(metrics::renumber(labels), 1u);  // the pair merges
}

TEST(Plm, SingletonGuardPreventsSwaps) {
  // A long path: adjacent singletons would happily swap into each
  // other; the guard must still allow convergence to chunks.
  std::vector<graph::Edge> edges;
  for (VertexId v = 0; v + 1 < 64; ++v) edges.push_back({v, v + 1, 1.0});
  const auto path = graph::build_csr(64, std::move(edges));
  const auto result = louvain(path);
  EXPECT_GT(result.modularity, 0.5);
  auto labels = result.community;
  const auto k = metrics::renumber(labels);
  EXPECT_GT(k, 1u);
  EXPECT_LT(k, 64u);
}

TEST(Plm, AdaptiveThresholdShortensFirstPhase) {
  const auto g = gen::erdos_renyi(3000, 18000, 11);
  Config fine;
  fine.thresholds.adaptive = false;
  Config adaptive;
  adaptive.thresholds.adaptive = true;
  adaptive.thresholds.adaptive_limit = 1000;
  const auto r_fine = louvain(g, fine);
  const auto r_adapt = louvain(g, adaptive);
  ASSERT_FALSE(r_fine.levels.empty());
  ASSERT_FALSE(r_adapt.levels.empty());
  EXPECT_LE(r_adapt.levels[0].iterations, r_fine.levels[0].iterations);
}

TEST(Plm, LevelReportsConsistent) {
  const auto g = gen::erdos_renyi(1500, 9000, 13);
  const auto result = louvain(g);
  ASSERT_FALSE(result.levels.empty());
  EXPECT_EQ(result.levels[0].vertices, g.num_vertices());
  EXPECT_EQ(result.levels[0].arcs, g.num_arcs());
  for (const auto& level : result.levels) {
    EXPECT_GT(level.iterations, 0);
    EXPECT_GE(level.optimize_seconds, 0.0);
    EXPECT_GE(level.aggregate_seconds, 0.0);
  }
}

}  // namespace
}  // namespace glouvain::plm
