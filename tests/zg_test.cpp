// Tests for the zg compressed-storage subsystem (DESIGN.md §12):
// varint/zigzag codec properties, ZCsr round-trips, container io,
// the bit-packed-occupancy hash table, and the end-to-end guarantee
// the whole layer rests on — Louvain partitions bitwise-identical to
// the plain-CSR path under every storage mode and table layout.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/hash_map.hpp"
#include "core/louvain.hpp"
#include "detect/detector.hpp"
#include "gen/cliques.hpp"
#include "gen/rmat.hpp"
#include "gen/sbm.hpp"
#include "graph/builder.hpp"
#include "seq/louvain.hpp"
#include "util/primes.hpp"
#include "util/prng.hpp"
#include "zg/container.hpp"
#include "zg/occmap.hpp"
#include "zg/varint.hpp"
#include "zg/zcsr.hpp"

namespace glouvain::zg {
namespace {

using graph::Community;
using graph::Csr;
using graph::Edge;
using graph::VertexId;
using graph::Weight;

// ---------------------------------------------------------------- codec

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {
      0,
      1,
      127,
      128,
      16383,
      16384,
      (std::uint64_t{1} << 32) - 1,
      std::uint64_t{1} << 32,
      std::uint64_t{1} << 53,
      std::uint64_t{1} << 63,
      std::numeric_limits<std::uint64_t>::max(),
  };
  for (const std::uint64_t v : values) {
    std::vector<std::uint8_t> buf;
    const std::size_t written = varint_append(buf, v);
    EXPECT_EQ(written, buf.size()) << v;
    EXPECT_EQ(written, varint_size(v)) << v;
    EXPECT_LE(written, kMaxVarintBytes) << v;
    const std::uint8_t* p = buf.data();
    EXPECT_EQ(varint_read(p), v);
    EXPECT_EQ(static_cast<std::size_t>(p - buf.data()), buf.size()) << v;
  }
}

TEST(Varint, RoundTripsRandomStream) {
  util::Xoshiro256 rng(17);
  std::vector<std::uint64_t> values;
  std::vector<std::uint8_t> buf;
  for (int i = 0; i < 5000; ++i) {
    // Mix magnitudes: shift a full-width draw by a random bit count so
    // every varint length is exercised.
    const std::uint64_t v = rng.next() >> (rng.next_below(64));
    values.push_back(v);
    varint_append(buf, v);
  }
  const std::uint8_t* p = buf.data();
  for (const std::uint64_t v : values) EXPECT_EQ(varint_read(p), v);
  EXPECT_EQ(static_cast<std::size_t>(p - buf.data()), buf.size());
}

TEST(Zigzag, MapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  EXPECT_EQ(zigzag_encode(2), 4u);
}

TEST(Zigzag, RoundTripsExtremes) {
  const std::int64_t values[] = {
      0,  1,  -1, 63, -64, 8191, -8192,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min(),
  };
  for (const std::int64_t v : values) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v) << v;
  }
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next());
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

// ---------------------------------------------------------------- zcsr

Csr random_graph(VertexId n, std::size_t m, std::uint64_t seed,
                 bool fractional_weights = false) {
  util::Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < m; ++i) {
    const double w = fractional_weights
                         ? 0.25 + static_cast<double>(rng.next_below(1000)) / 64.0
                         : 1.0 + static_cast<double>(rng.next_below(5));
    edges.push_back({static_cast<VertexId>(rng.next_below(n)),
                     static_cast<VertexId>(rng.next_below(n)), w});
  }
  return graph::build_csr(n, std::move(edges));
}

void expect_bitwise_equal(const Csr& back, const Csr& g) {
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_arcs(), g.num_arcs());
  const auto go = g.offsets();
  const auto bo = back.offsets();
  for (std::size_t i = 0; i < go.size(); ++i) EXPECT_EQ(bo[i], go[i]) << i;
  const auto ga = g.adjacency();
  const auto ba = back.adjacency();
  for (std::size_t i = 0; i < ga.size(); ++i) EXPECT_EQ(ba[i], ga[i]) << i;
  const auto gw = g.edge_weights();
  const auto bw = back.edge_weights();
  for (std::size_t i = 0; i < gw.size(); ++i) {
    // Bitwise, not approximate: the decode must reproduce the exact
    // doubles or downstream modularity arithmetic diverges.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(bw[i]),
              std::bit_cast<std::uint64_t>(gw[i]))
        << i;
  }
}

void expect_round_trips(const Csr& g) {
  const ZCsr z = ZCsr::encode(g);
  EXPECT_EQ(z.num_vertices(), g.num_vertices());
  EXPECT_EQ(z.num_arcs(), g.num_arcs());
  EXPECT_EQ(z.num_loops(), g.num_loops());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(z.total_weight()),
            std::bit_cast<std::uint64_t>(g.total_weight()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(z.degree(v), g.degree(v)) << v;
  }
  expect_bitwise_equal(z.decode_all(), g);
}

TEST(ZCsr, RoundTripsDegreeZeroRows) {
  // All-isolated and isolated-interleaved graphs: the 0x00 row case.
  expect_round_trips(graph::build_csr(5, {}));
  expect_round_trips(
      graph::build_csr(7, {{1, 3, 1.0}, {5, 3, 1.0}}));  // 0,2,4,6 isolated
}

TEST(ZCsr, RoundTripsDegreeOneAndHubRows) {
  // Star: one hub row with 400 neighbours, 400 degree-1 rows. The hub
  // exercises long delta runs, the leaves the single-neighbour prefix.
  std::vector<Edge> edges;
  for (VertexId leaf = 1; leaf <= 400; ++leaf) edges.push_back({0, leaf, 1.0});
  expect_round_trips(graph::build_csr(401, std::move(edges)));
}

TEST(ZCsr, RoundTripsSelfLoops) {
  expect_round_trips(graph::build_csr(
      4, {{0, 0, 2.0}, {0, 1, 1.0}, {2, 2, 3.0}, {2, 3, 1.0}}));
}

TEST(ZCsr, SelectsCheapestWeightMode) {
  // Unweighted -> kUniform (zero weight bytes).
  const Csr uniform = gen::ring_of_cliques(6, 5);
  EXPECT_EQ(ZCsr::encode(uniform).weight_mode(), WeightMode::kUniform);
  // Small positive integers -> kIntegralVarint.
  EXPECT_EQ(ZCsr::encode(random_graph(64, 256, 4)).weight_mode(),
            WeightMode::kIntegralVarint);
  // Fractional weights -> kRaw.
  EXPECT_EQ(ZCsr::encode(random_graph(64, 256, 4, true)).weight_mode(),
            WeightMode::kRaw);
}

TEST(ZCsr, RoundTripsEveryWeightMode) {
  expect_round_trips(gen::ring_of_cliques(8, 6));          // uniform
  expect_round_trips(random_graph(200, 900, 11));          // integral
  expect_round_trips(random_graph(200, 900, 12, true));    // raw
}

TEST(ZCsr, CompressesSortedAdjacency) {
  const Csr g = gen::rmat({.scale = 12, .edge_factor = 8.0}, 5);
  const ZCsr z = ZCsr::encode(g);
  EXPECT_LT(z.bytes_stream() + z.bytes_index(), z.plain_bytes() / 2)
      << "adjacency must shrink at least 2x on an unweighted rmat graph";
}

TEST(ZCsr, CursorAtMatchesSequentialCursor) {
  const Csr g = random_graph(500, 2500, 9);
  const ZCsr z = ZCsr::encode(g);
  std::vector<VertexId> sa(z.max_degree()), ra(z.max_degree());
  std::vector<Weight> sw(z.max_degree()), rw(z.max_degree());
  ZCsr::Cursor seq_cur = z.cursor();
  for (VertexId v = 0; v < z.num_vertices(); ++v) {
    ASSERT_EQ(seq_cur.vertex(), v);
    seq_cur.decode_into(sa.data(), sw.data());
    z.decode_row(v, ra.data(), rw.data());  // cursor_at + decode
    const std::uint32_t deg = z.degree(v);
    for (std::uint32_t i = 0; i < deg; ++i) {
      EXPECT_EQ(ra[i], sa[i]) << v;
      EXPECT_EQ(rw[i], sw[i]) << v;
    }
  }
}

TEST(ZCsr, CursorSkipAndNullWeightDecode) {
  const Csr g = random_graph(300, 1200, 21);
  const ZCsr z = ZCsr::encode(g);
  // Skip the first half, decode the rest with a null weight buffer.
  ZCsr::Cursor c = z.cursor();
  for (VertexId v = 0; v < 150; ++v) c.skip_row();
  std::vector<VertexId> adj(z.max_degree());
  for (VertexId v = 150; v < z.num_vertices(); ++v) {
    ASSERT_EQ(c.vertex(), v);
    c.decode_into(adj.data(), nullptr);
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) EXPECT_EQ(adj[i], nbrs[i]);
  }
}

// ------------------------------------------------------------ container

class ZgContainer : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "glouvain_zg_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(ZgContainer, SaveLoadRoundTrips) {
  const Csr g = random_graph(400, 1600, 31);
  const ZCsr z = ZCsr::encode(g);
  ASSERT_TRUE(save(z, path("g.zg")).ok());
  const auto back = load(path("g.zg"));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->num_loops(), z.num_loops());
  EXPECT_EQ(back->weight_mode(), z.weight_mode());
  expect_bitwise_equal(back->decode_all(), g);
}

TEST_F(ZgContainer, MappedOpenRoundTrips) {
  const Csr g = random_graph(400, 1600, 32, /*fractional_weights=*/true);
  const ZCsr z = ZCsr::encode(g);
  ASSERT_TRUE(save(z, path("m.zg")).ok());
  auto mapped = MappedGraph::open(path("m.zg"));
  ASSERT_TRUE(mapped.ok()) << mapped.status().to_string();
  expect_bitwise_equal(mapped->zcsr().decode_all(), g);
}

TEST_F(ZgContainer, MissingFileIsNotFound) {
  const auto missing = load(path("nope.zg"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

TEST_F(ZgContainer, BadMagicIsInvalidArgument) {
  std::ofstream out(path("bad.zg"), std::ios::binary);
  out << "NOTZ" << std::string(96, '-');  // longer than the 64-byte header
  out.close();
  const auto bad = load(path("bad.zg"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().to_string().find("bad magic"), std::string::npos);
}

TEST_F(ZgContainer, TruncationIsRejected) {
  const ZCsr z = ZCsr::encode(random_graph(300, 1200, 33));
  ASSERT_TRUE(save(z, path("t.zg")).ok());
  // Chop the stream section short: the header's section lengths no
  // longer fit the file, which must fail cleanly, not over-read.
  const auto full = std::filesystem::file_size(path("t.zg"));
  std::filesystem::resize_file(path("t.zg"), full - 16);
  EXPECT_FALSE(load(path("t.zg")).ok());
  EXPECT_FALSE(MappedGraph::open(path("t.zg")).ok());
}

TEST_F(ZgContainer, CorruptVersionIsInvalidArgument) {
  const ZCsr z = ZCsr::encode(random_graph(50, 120, 34));
  ASSERT_TRUE(save(z, path("v.zg")).ok());
  std::fstream f(path("v.zg"),
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(4);  // version field follows the 4-byte magic
  const std::uint32_t bogus = 999;
  f.write(reinterpret_cast<const char*>(&bogus), sizeof bogus);
  f.close();
  const auto bad = load(path("v.zg"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().to_string().find("version"), std::string::npos);
}

// --------------------------------------------------- occupancy hash map

struct OccStorage {
  explicit OccStorage(const util::HashTableParams& params)
      : keys(params.capacity),
        weights(params.capacity),
        occ(OccCommunityHashMap::occ_words(params.capacity)),
        params_(params) {}
  std::vector<Community> keys;
  std::vector<Weight> weights;
  std::vector<std::uint32_t> occ;
  util::HashTableParams params_;
  OccCommunityHashMap map() {
    return OccCommunityHashMap(keys, weights, occ, params_);
  }
};

struct SentinelStorage {
  explicit SentinelStorage(const util::HashTableParams& params)
      : keys(params.capacity), weights(params.capacity), params_(params) {}
  std::vector<Community> keys;
  std::vector<Weight> weights;
  util::HashTableParams params_;
  core::LocalCommunityHashMap map() {
    return core::LocalCommunityHashMap(keys, weights, params_);
  }
};

TEST(OccCommunityHashMap, MatchesSentinelLayoutSlotForSlot) {
  // Identical insert_add sequences must visit identical slots (the
  // probe sequences are the same) and yield identical lookups — the
  // property that makes the layouts interchangeable mid-kernel.
  for (const std::uint32_t deg : {2u, 5u, 17u, 200u, 1000u}) {
    const util::HashTableParams params = util::hash_params_for_degree(deg);
    OccStorage occ_storage(params);
    SentinelStorage sen_storage(params);
    auto occ = occ_storage.map();
    auto sen = sen_storage.map();
    occ.clear();
    sen.clear();
    util::Xoshiro256 rng(deg);
    std::vector<Community> inserted;
    for (std::uint32_t i = 0; i < deg; ++i) {
      const auto c = static_cast<Community>(rng.next_below(deg * 4 + 8));
      const auto w = 0.5 + static_cast<Weight>(rng.next_below(16));
      bool occ_claimed = false;
      bool sen_claimed = false;
      const std::size_t occ_pos = occ.insert_add_claim(c, w, occ_claimed);
      const std::size_t sen_pos = sen.insert_add_claim(c, w, sen_claimed);
      EXPECT_EQ(occ_pos, sen_pos) << c;
      EXPECT_EQ(occ_claimed, sen_claimed) << c;
      inserted.push_back(c);
    }
    for (const Community c : inserted) {
      EXPECT_EQ(occ.lookup(c), sen.lookup(c)) << c;
    }
    // Absent keys miss in both; key_at agrees slot-for-slot, with the
    // occupancy map presenting the sentinel for unoccupied slots.
    for (Community c = 0; c < deg * 4 + 8; ++c) {
      EXPECT_EQ(occ.lookup(c), sen.lookup(c)) << c;
    }
    for (std::size_t pos = 0; pos < params.capacity; ++pos) {
      EXPECT_EQ(occ.key_at(pos), sen.key_at(pos)) << pos;
      if (occ.key_at(pos) != OccCommunityHashMap::kNull) {
        EXPECT_EQ(occ.weight_at(pos), sen.weight_at(pos)) << pos;
      }
    }
  }
}

TEST(OccCommunityHashMap, ClearMakesTableReusable) {
  const util::HashTableParams params = util::hash_params_for_degree(8);
  OccStorage storage(params);
  auto map = storage.map();
  map.clear();
  map.insert_add(3, 2.0);
  map.insert_add(3, 1.5);
  EXPECT_DOUBLE_EQ(map.lookup(3), 3.5);
  map.clear();
  EXPECT_DOUBLE_EQ(map.lookup(3), 0.0);
  EXPECT_EQ(map.key_at(0), OccCommunityHashMap::kNull);
  map.insert_add(3, 1.0);
  EXPECT_DOUBLE_EQ(map.lookup(3), 1.0);
}

TEST(OccCommunityHashMap, HandlesCollisionsToFullLoad) {
  const util::HashTableParams params = util::hash_params_for_degree(5);
  OccStorage storage(params);
  auto map = storage.map();
  map.clear();
  const std::uint32_t cap = params.capacity;
  for (Community c = 0; c < cap; ++c) map.insert_add(c * cap, 1.0);
  for (Community c = 0; c < cap; ++c) {
    EXPECT_DOUBLE_EQ(map.lookup(c * cap), 1.0) << c;
  }
}

// ----------------------------------------------------- bitwise louvain

Csr sbm_graph() {
  gen::SbmParams p;
  p.num_vertices = 1 << 11;
  p.num_communities = 16;
  p.intra_degree = 12.0;
  p.inter_degree = 2.0;
  p.seed = 42;
  return gen::planted_partition(p).graph;
}

void expect_same_result(const std::vector<Community>& a_labels, double a_mod,
                        const std::vector<Community>& b_labels, double b_mod) {
  EXPECT_EQ(a_labels, b_labels);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a_mod),
            std::bit_cast<std::uint64_t>(b_mod));
}

TEST(ZLouvain, CoreRunZIsBitwiseIdenticalToPlain) {
  const Csr g = sbm_graph();
  const ZCsr z = ZCsr::encode(g);
  core::Config cfg;
  cfg.threads = 2;
  core::Louvain runner(cfg);
  const auto plain = runner.run(g);
  const auto compressed = runner.run_z(z);
  expect_same_result(plain.community, plain.modularity, compressed.community,
                     compressed.modularity);
}

TEST(ZLouvain, CoreRunZOnWeightedGraphIsBitwiseIdentical) {
  const Csr g = random_graph(1200, 9000, 77, /*fractional_weights=*/true);
  const ZCsr z = ZCsr::encode(g);
  core::Config cfg;
  cfg.threads = 2;
  core::Louvain runner(cfg);
  const auto plain = runner.run(g);
  const auto compressed = runner.run_z(z);
  expect_same_result(plain.community, plain.modularity, compressed.community,
                     compressed.modularity);
}

TEST(ZLouvain, OccupancyTableLayoutIsBitwiseIdentical) {
  const Csr g = sbm_graph();
  core::Config sentinel_cfg;
  sentinel_cfg.threads = 2;
  core::Config occ_cfg = sentinel_cfg;
  occ_cfg.table_layout = core::TableLayout::kOccupancy;
  const auto a = core::louvain(g, sentinel_cfg);
  const auto b = core::louvain(g, occ_cfg);
  expect_same_result(a.community, a.modularity, b.community, b.modularity);
  // And the occupancy layout composes with the compressed storage path.
  const auto c = core::louvain_z(ZCsr::encode(g), occ_cfg);
  expect_same_result(a.community, a.modularity, c.community, c.modularity);
}

TEST(ZLouvain, CoreRunZRejectsColoring) {
  core::Config cfg;
  cfg.use_coloring = true;
  core::Louvain runner(cfg);
  const ZCsr z = ZCsr::encode(sbm_graph());
  EXPECT_THROW((void)runner.run_z(z), std::invalid_argument);
}

TEST(ZLouvain, SeqLouvainZIsBitwiseIdenticalToPlain) {
  const Csr g = sbm_graph();
  const auto plain = seq::louvain(g);
  const auto compressed = seq::louvain_z(ZCsr::encode(g));
  expect_same_result(plain.community, plain.modularity, compressed.community,
                     compressed.modularity);
}

TEST(ZLouvain, MappedGraphRunMatchesPlain) {
  const auto dir = std::filesystem::temp_directory_path() / "glouvain_zg_run";
  std::filesystem::create_directories(dir);
  const std::string file = (dir / "run.zg").string();
  const Csr g = sbm_graph();
  ASSERT_TRUE(save(ZCsr::encode(g), file).ok());
  auto mapped = MappedGraph::open(file);
  ASSERT_TRUE(mapped.ok());
  core::Config cfg;
  cfg.threads = 2;
  core::Louvain runner(cfg);
  const auto plain = runner.run(g);
  const auto z = runner.run_z(mapped->zcsr());
  expect_same_result(plain.community, plain.modularity, z.community,
                     z.modularity);
  std::filesystem::remove_all(dir);  // unlink is safe under a live mapping
}

// ------------------------------------------------------- detect wiring

TEST(ZDetect, StorageKnobIsBitwiseIdenticalAcrossModes) {
  const Csr g = sbm_graph();
  for (const char* backend : {"core", "seq"}) {
    auto detector = detect::make(backend);
    ASSERT_TRUE(detector.ok());
    detect::Options options;
    options.threads = 2;
    const auto plain = (*detector)->run(g, options);
    options.storage = detect::Storage::kZcsr;
    const auto zcsr = (*detector)->run(g, options);
    options.storage = detect::Storage::kMmap;
    const auto mmap = (*detector)->run(g, options);
    expect_same_result(plain.community, plain.modularity, zcsr.community,
                       zcsr.modularity);
    expect_same_result(plain.community, plain.modularity, mmap.community,
                       mmap.modularity);
  }
}

TEST(ZDetect, BackendsWithoutCompressedPathReject) {
  const Csr g = sbm_graph();
  detect::Options options;
  options.threads = 2;
  options.storage = detect::Storage::kZcsr;
  for (const char* backend : {"plm", "multi"}) {
    auto detector = detect::make(backend);
    ASSERT_TRUE(detector.ok());
    EXPECT_THROW((void)(*detector)->run(g, options), std::invalid_argument)
        << backend;
  }
}

TEST(ZDetect, BaseRunZFallbackDecodesAndDelegates) {
  // plm has no native z path: its inherited run_z must decode to a
  // plain Csr and produce the backend's ordinary result.
  const Csr g = sbm_graph();
  const ZCsr z = ZCsr::encode(g);
  auto detector = detect::make("plm");
  ASSERT_TRUE(detector.ok());
  detect::Options options;
  options.threads = 2;
  const auto via_z = (*detector)->run_z(z, options);
  const auto via_plain = (*detector)->run(g, options);
  expect_same_result(via_plain.community, via_plain.modularity,
                     via_z.community, via_z.modularity);
}

TEST(ZDetect, WarmStartRequiresPlainStorage) {
  const Csr g = sbm_graph();
  auto detector = detect::make("core");
  ASSERT_TRUE(detector.ok());
  detect::Options options;
  options.threads = 2;
  auto warm = std::make_shared<detect::WarmStart>();
  warm->seed.assign(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) warm->seed[v] = v;
  options.warm_start = warm;
  options.storage = detect::Storage::kZcsr;
  EXPECT_THROW((void)(*detector)->run(g, options), std::invalid_argument);
}

TEST(ZDetect, StorageNamesRoundTrip) {
  for (const auto s : {detect::Storage::kPlain, detect::Storage::kZcsr,
                       detect::Storage::kMmap}) {
    detect::Storage parsed = detect::Storage::kPlain;
    EXPECT_TRUE(detect::parse_storage(detect::storage_name(s), parsed));
    EXPECT_EQ(parsed, s);
  }
  detect::Storage out = detect::Storage::kMmap;
  EXPECT_FALSE(detect::parse_storage("gzip", out));
  EXPECT_EQ(out, detect::Storage::kMmap);  // untouched on failure
}

}  // namespace
}  // namespace glouvain::zg
