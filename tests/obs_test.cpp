// Unit tests for the obs::Recorder instrumentation substrate: span
// tree construction, counter accumulation, structural validation, and
// both exporters.
#include "obs/recorder.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>

namespace glouvain::obs {
namespace {

TEST(Recorder, SpansFormATree) {
  Recorder rec;
  {
    Span root(&rec, "modopt");
    {
      Span sweep(&rec, "modopt/sweep");
      Span kernel(&rec, "modopt/bucket0");
    }
  }
  ASSERT_EQ(rec.spans().size(), 3u);
  EXPECT_EQ(rec.spans()[0].parent, -1);
  EXPECT_EQ(rec.spans()[1].parent, 0);
  EXPECT_EQ(rec.spans()[2].parent, 1);
  EXPECT_EQ(rec.name(rec.spans()[0].name), "modopt");
  EXPECT_EQ(rec.name(rec.spans()[2].name), "modopt/bucket0");
  for (const SpanRecord& s : rec.spans()) EXPECT_GE(s.duration_ns, 0);
  EXPECT_TRUE(rec.validate().empty()) << rec.validate();
}

TEST(Recorder, LevelTagsAttachToSpansAndCounters) {
  Recorder rec;
  rec.set_level(3);
  {
    Span s(&rec, "aggregate");
    rec.count("level/vertices", 128);
  }
  rec.set_level(-1);
  EXPECT_EQ(rec.spans()[0].level, 3);
  ASSERT_EQ(rec.counters().size(), 1u);
  EXPECT_EQ(rec.counters()[0].level, 3);
  EXPECT_DOUBLE_EQ(rec.counters()[0].value, 128);
}

TEST(Recorder, CountersAccumulateByNameLevelAndBin) {
  Recorder rec;
  rec.count("modopt/bucket_occupancy", 10, /*bin=*/2);
  rec.count("modopt/bucket_occupancy", 5, /*bin=*/2);
  rec.count("modopt/bucket_occupancy", 7, /*bin=*/3);
  rec.count("modopt/sweeps", 4);
  ASSERT_EQ(rec.counters().size(), 3u);
  EXPECT_DOUBLE_EQ(rec.counters()[0].value, 15);
  EXPECT_EQ(rec.counters()[0].bin, 2);
  EXPECT_DOUBLE_EQ(rec.counters()[1].value, 7);
  EXPECT_EQ(rec.counters()[2].bin, -1);
}

TEST(Recorder, ValidateFlagsUnclosedSpan) {
  Recorder rec;
  (void)rec.begin_span("modopt");
  const std::string problem = rec.validate();
  EXPECT_NE(problem.find("never closed"), std::string::npos) << problem;
}

TEST(Recorder, NullRecorderSpanIsANoop) {
  Span s(nullptr, "anything");  // must not crash or allocate a recorder
  SUCCEED();
}

TEST(Recorder, ClearDropsDataButKeepsWorking) {
  Recorder rec;
  { Span s(&rec, "modopt"); }
  rec.count("x", 1);
  rec.clear();
  EXPECT_TRUE(rec.spans().empty());
  EXPECT_TRUE(rec.counters().empty());
  { Span s(&rec, "aggregate"); }
  ASSERT_EQ(rec.spans().size(), 1u);
  EXPECT_TRUE(rec.validate().empty());
}

TEST(Recorder, RecordedSecondsSumsRoots) {
  Recorder rec;
  { Span a(&rec, "a"); }
  { Span b(&rec, "b"); }
  EXPECT_GE(rec.recorded_seconds(), 0.0);
  // Two closed roots: total equals the sum of their durations.
  const double expect = (static_cast<double>(rec.spans()[0].duration_ns) +
                         static_cast<double>(rec.spans()[1].duration_ns)) *
                        1e-9;
  EXPECT_DOUBLE_EQ(rec.recorded_seconds(), expect);
}

TEST(Recorder, ChromeTraceLooksLikeJson) {
  Recorder rec;
  rec.set_level(0);
  {
    Span s(&rec, "modopt");
    rec.count("modopt/sweeps", 2);
  }
  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"modopt\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"level\":0}"), std::string::npos);
}

TEST(Recorder, PhaseTableRendersStagesAndCounters) {
  Recorder rec;
  rec.set_level(0);
  {
    Span phase(&rec, "modopt");
    { Span k(&rec, "modopt/bucket1"); }
  }
  rec.count("modopt/moved_frac", 0.5, 0);
  std::ostringstream os;
  rec.write_phase_table(os);
  const std::string table = os.str();
  EXPECT_NE(table.find("modopt/bucket1"), std::string::npos);
  EXPECT_NE(table.find("moved_frac"), std::string::npos);
}

TEST(Recorder, TimedSpansCarryTracksAndOverlapValidates) {
  // The barrier-time publication path of the concurrent shard rounds:
  // two lane spans with OVERLAPPING intervals under one parent, tagged
  // with their 1-based device lanes. validate() must accept them (the
  // sibling-sum check only binds track-0 children) and the chrome
  // trace must put each on its lane's tid.
  Recorder rec;
  {
    Span round(&rec, "shard/round");
    const std::int64_t begin = rec.elapsed_ns();
    std::int64_t now = begin;
    while (now - begin < 4000) now = rec.elapsed_ns();  // stay inside round
    rec.add_timed_span("shard/phase", now - 2000, 1500, /*track=*/1);
    rec.add_timed_span("shard/phase", now - 1800, 1700, /*track=*/2);
  }
  ASSERT_EQ(rec.spans().size(), 3u);
  EXPECT_EQ(rec.spans()[1].track, 1u);
  EXPECT_EQ(rec.spans()[2].track, 2u);
  EXPECT_EQ(rec.spans()[1].parent, 0);
  EXPECT_EQ(rec.spans()[2].parent, 0);
  EXPECT_EQ(rec.spans()[1].duration_ns, 1500);
  // Overlapping same-parent intervals on distinct nonzero tracks are
  // exactly what concurrent lanes produce — not a validation problem.
  EXPECT_TRUE(rec.validate().empty()) << rec.validate();

  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST(Recorder, TimedSpanOnDriverTrackStillSumChecked) {
  // A track-0 timed span is an ordinary child: the nonzero-track
  // exemption is per-track, not a blanket bypass for add_timed_span —
  // a driver-track child wildly exceeding its parent must still fail
  // validation.
  Recorder rec;
  {
    Span parent(&rec, "parent");
    rec.add_timed_span("child", 0,
                       std::numeric_limits<std::int64_t>::max() / 2,
                       /*track=*/0);
  }
  EXPECT_FALSE(rec.validate().empty());
}

TEST(Recorder, NamesAreInternedAcrossClear) {
  Recorder rec;
  { Span s(&rec, "modopt"); }
  const std::uint32_t id = rec.spans()[0].name;
  rec.clear();
  { Span s(&rec, "modopt"); }
  EXPECT_EQ(rec.spans()[0].name, id);
}

}  // namespace
}  // namespace glouvain::obs
