// Unit tests for the graph substrate: CSR invariants, builder
// canonicalization, file IO round-trips, graph operations.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/io.hpp"
#include "graph/ops.hpp"
#include "util/prng.hpp"

namespace glouvain::graph {
namespace {

/// Triangle 0-1-2 plus pendant 3 attached to 2.
Csr small_graph() {
  return build_csr(4, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}, {2, 3, 1.0}});
}

Csr random_graph(VertexId n, std::size_t m, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < m; ++i) {
    edges.push_back({static_cast<VertexId>(rng.next_below(n)),
                     static_cast<VertexId>(rng.next_below(n)),
                     1.0 + static_cast<double>(rng.next_below(5))});
  }
  return build_csr(n, std::move(edges));
}

TEST(Builder, SymmetrizesAndCountsDegrees) {
  const Csr g = small_graph();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.num_arcs(), 8u);  // every non-loop edge twice
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_TRUE(validate(g).empty()) << validate(g);
}

TEST(Builder, MergesDuplicateEdges) {
  const Csr g = build_csr(2, {{0, 1, 1.0}, {0, 1, 2.0}, {1, 0, 3.0}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.weights(0)[0], 6.0);
  EXPECT_DOUBLE_EQ(g.weights(1)[0], 6.0);
  EXPECT_TRUE(validate(g).empty()) << validate(g);
}

TEST(Builder, SelfLoopStoredOnce) {
  const Csr g = build_csr(2, {{0, 0, 2.5}, {0, 1, 1.0}});
  EXPECT_EQ(g.num_loops(), 1u);
  EXPECT_DOUBLE_EQ(g.loop_weight(0), 2.5);
  EXPECT_DOUBLE_EQ(g.loop_weight(1), 0.0);
  // strength counts the loop once; total = 2*1 (edge both dirs) + 2.5.
  EXPECT_DOUBLE_EQ(g.strength(0), 3.5);
  EXPECT_DOUBLE_EQ(g.total_weight(), 4.5);
}

TEST(Builder, DropLoopsOption) {
  BuildOptions opts;
  opts.drop_loops = true;
  const Csr g = build_csr(2, {{0, 0, 2.5}, {0, 1, 1.0}}, opts);
  EXPECT_EQ(g.num_loops(), 0u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Builder, PresymmetrizedInput) {
  BuildOptions opts;
  opts.symmetrize = false;
  const Csr g = build_csr(2, {{0, 1, 1.0}, {1, 0, 1.0}}, opts);
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_TRUE(validate(g).empty()) << validate(g);
}

TEST(Builder, RejectsOutOfRange) {
  EXPECT_THROW(build_csr(2, {{0, 5, 1.0}}), std::out_of_range);
}

TEST(Builder, InfersVertexCount) {
  const Csr g = build_csr({{3, 9, 1.0}});
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.degree(9), 1u);
}

TEST(Builder, EmptyGraph) {
  const Csr g = build_csr(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(Builder, IsolatedVertices) {
  const Csr g = build_csr(10, {{0, 1, 1.0}});
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.degree(5), 0u);
  EXPECT_TRUE(validate(g).empty());
}

TEST(Csr, RowsSortedByNeighbor) {
  const Csr g = random_graph(100, 600, 1);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
}

TEST(Csr, StrengthsMatchTotalWeight) {
  const Csr g = random_graph(500, 3000, 2);
  const auto strengths = g.compute_strengths();
  Weight sum = 0;
  for (auto s : strengths) sum += s;
  EXPECT_NEAR(sum, g.total_weight(), 1e-9);
}

TEST(Validate, DetectsAsymmetry) {
  // Hand-build a broken CSR: arc 0->1 without 1->0.
  Csr broken({0, 1, 1}, {1}, {1.0});
  EXPECT_FALSE(validate(broken).empty());
}

TEST(Validate, DetectsBadWeight) {
  Csr broken({0, 1, 2}, {1, 0}, {0.0, 0.0});
  EXPECT_FALSE(validate(broken).empty());
}

TEST(Ops, DegreeStatsBuckets) {
  const Csr g = small_graph();
  const DegreeStats stats = degree_stats(g);
  EXPECT_EQ(stats.min_degree, 1u);
  EXPECT_EQ(stats.max_degree, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 2.0);
  EXPECT_EQ(stats.bucket_counts[0], 4u);  // all degrees <= 4
}

TEST(Ops, PermutePreservesStructure) {
  const Csr g = random_graph(200, 1000, 3);
  std::vector<VertexId> perm(200);
  for (VertexId v = 0; v < 200; ++v) perm[v] = (v * 7 + 3) % 200;  // bijection
  const Csr p = permute(g, perm);
  EXPECT_TRUE(validate(p).empty()) << validate(p);
  EXPECT_EQ(p.num_arcs(), g.num_arcs());
  EXPECT_NEAR(p.total_weight(), g.total_weight(), 1e-9);
  for (VertexId v = 0; v < 200; ++v) EXPECT_EQ(p.degree(perm[v]), g.degree(v));
}

TEST(Ops, ContractReferenceMergesCommunities) {
  // Two triangles joined by one edge; contract each triangle.
  const Csr g = build_csr(6, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
                              {3, 4, 1}, {4, 5, 1}, {3, 5, 1},
                              {2, 3, 1}});
  const std::vector<Community> part{0, 0, 0, 1, 1, 1};
  const Csr c = contract_reference(g, part);
  EXPECT_EQ(c.num_vertices(), 2u);
  // Self-loop: 2 * 3 internal edges = 6; cross edge weight 1.
  EXPECT_DOUBLE_EQ(c.loop_weight(0), 6.0);
  EXPECT_DOUBLE_EQ(c.loop_weight(1), 6.0);
  EXPECT_NEAR(c.total_weight(), g.total_weight(), 1e-9);
  EXPECT_TRUE(validate(c).empty()) << validate(c);
}

TEST(Ops, ContractPreservesTotalWeightOnRandom) {
  const Csr g = random_graph(300, 2000, 4);
  util::Xoshiro256 rng(9);
  std::vector<Community> part(300);
  for (auto& c : part) c = static_cast<Community>(rng.next_below(17));
  std::vector<VertexId> new_id;
  const Csr c = contract_reference(g, part, &new_id);
  EXPECT_NEAR(c.total_weight(), g.total_weight(), 1e-9);
  EXPECT_TRUE(validate(c).empty()) << validate(c);
  // Strength of each new vertex equals the summed member strengths.
  std::vector<Weight> expect(c.num_vertices(), 0);
  for (VertexId v = 0; v < 300; ++v) expect[new_id[part[v]]] += g.strength(v);
  for (VertexId nv = 0; nv < c.num_vertices(); ++nv) {
    EXPECT_NEAR(c.strength(nv), expect[nv], 1e-9) << nv;
  }
}

TEST(Ops, ContractIdentityPartition) {
  const Csr g = random_graph(50, 200, 5);
  std::vector<Community> part(50);
  for (VertexId v = 0; v < 50; ++v) part[v] = v;
  const Csr c = contract_reference(g, part);
  EXPECT_EQ(c, g);
}

TEST(Ops, CountComponents) {
  const Csr g = build_csr(6, {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}});
  EXPECT_EQ(count_components(g), 3u);  // {0,1,2}, {3,4}, {5}
}

class IoRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "glouvain_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(IoRoundTrip, EdgeList) {
  const Csr g = random_graph(100, 400, 6);
  save_edge_list(g, path("g.txt"));
  const Csr back = load_edge_list(path("g.txt"));
  EXPECT_EQ(back.num_arcs(), g.num_arcs());
  EXPECT_NEAR(back.total_weight(), g.total_weight(), 1e-6);
}

TEST_F(IoRoundTrip, Binary) {
  const Csr g = random_graph(100, 400, 7);
  save_binary(g, path("g.bin"));
  const Csr back = load_binary(path("g.bin"));
  EXPECT_EQ(back, g);
}

TEST_F(IoRoundTrip, MatrixMarketSymmetric) {
  std::ofstream out(path("m.mtx"));
  out << "%%MatrixMarket matrix coordinate real symmetric\n"
      << "% comment\n"
      << "3 3 3\n"
      << "2 1 1.5\n"
      << "3 1 2.0\n"
      << "3 2 0.5\n";
  out.close();
  const Csr g = load_matrix_market(path("m.mtx"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 2 * (1.5 + 2.0 + 0.5));
  EXPECT_TRUE(validate(g).empty());
}

TEST_F(IoRoundTrip, MatrixMarketPattern) {
  std::ofstream out(path("p.mtx"));
  out << "%%MatrixMarket matrix coordinate pattern symmetric\n"
      << "2 2 1\n"
      << "2 1\n";
  out.close();
  const Csr g = load_matrix_market(path("p.mtx"));
  EXPECT_DOUBLE_EQ(g.weights(0)[0], 1.0);
}

TEST_F(IoRoundTrip, Metis) {
  std::ofstream out(path("g.graph"));
  out << "3 2\n"
      << "2 3\n"
      << "1\n"
      << "1\n";
  out.close();
  const Csr g = load_metis(path("g.graph"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(validate(g).empty());
}

TEST_F(IoRoundTrip, MetisWeighted) {
  std::ofstream out(path("w.graph"));
  out << "2 1 1\n"
      << "2 3.5\n"
      << "1 3.5\n";
  out.close();
  const Csr g = load_metis(path("w.graph"));
  EXPECT_DOUBLE_EQ(g.weights(0)[0], 3.5);
}

TEST_F(IoRoundTrip, AutoDispatch) {
  const Csr g = random_graph(40, 100, 8);
  save_binary(g, path("a.bin"));
  EXPECT_EQ(load_auto(path("a.bin")), g);
  save_edge_list(g, path("a.txt"));
  EXPECT_EQ(load_auto(path("a.txt")).num_arcs(), g.num_arcs());
}

TEST_F(IoRoundTrip, MissingFileThrows) {
  EXPECT_THROW(load_edge_list(path("nope.txt")), std::runtime_error);
  EXPECT_THROW(load_binary(path("nope.bin")), std::runtime_error);
}

TEST_F(IoRoundTrip, BadMagicThrows) {
  std::ofstream out(path("bad.bin"), std::ios::binary);
  out << "NOTMAGIC overlong";
  out.close();
  EXPECT_THROW(load_binary(path("bad.bin")), std::runtime_error);
}

void expect_vertex_overflow(const util::Status& status) {
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.to_string().find("exceeds the 32-bit vertex-id space"),
            std::string::npos)
      << status.to_string();
}

TEST_F(IoRoundTrip, EdgeListRejectsOversizedVertexId) {
  // 5e9 does not fit a 32-bit VertexId; a silent static_cast would
  // wrap it onto an unrelated vertex.
  std::ofstream out(path("big.txt"));
  out << "0 1 1.0\n5000000000 0 1.0\n";
  out.close();
  const auto g = try_load_edge_list(path("big.txt"));
  expect_vertex_overflow(g.status());
}

TEST_F(IoRoundTrip, MatrixMarketRejectsOversizedHeader) {
  std::ofstream out(path("big.mtx"));
  out << "%%MatrixMarket matrix coordinate real symmetric\n"
      << "5000000000 5000000000 1\n"
      << "2 1 1.0\n";
  out.close();
  const auto g = try_load_matrix_market(path("big.mtx"));
  expect_vertex_overflow(g.status());
}

TEST_F(IoRoundTrip, MetisRejectsOversizedHeader) {
  std::ofstream out(path("big.graph"));
  out << "5000000000 1\n";
  out.close();
  const auto g = try_load_metis(path("big.graph"));
  expect_vertex_overflow(g.status());
}

TEST_F(IoRoundTrip, BinaryRejectsOversizedSectionCount) {
  // Craft a file whose offsets section claims far more entries than
  // bytes remain: the length prefix must be bounded by the file size,
  // never trusted into a resize.
  std::ofstream out(path("huge.bin"), std::ios::binary);
  out << "GLOUBIN1";
  const std::uint64_t bogus_count = 1ull << 40;
  out.write(reinterpret_cast<const char*>(&bogus_count), sizeof bogus_count);
  const std::uint64_t filler = 0;
  out.write(reinterpret_cast<const char*>(&filler), sizeof filler);
  out.close();
  const auto g = try_load_binary(path("huge.bin"));
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(g.status().to_string().find("section claims"), std::string::npos)
      << g.status().to_string();
}

}  // namespace
}  // namespace glouvain::graph
