// Workspace arena contract tests: (a) the modopt + aggregation loop is
// allocation-free once the arena has warmed to the graph (the paper's
// cudaMalloc-once discipline, checked with a counting global operator
// new), and (b) reusing a dirty workspace across graphs and runs never
// perturbs results — partitions and modularities are bitwise identical
// to a fresh-device run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#ifdef GLOUVAIN_TRACE_ALLOCS
#include <cstdio>
#include <execinfo.h>
#endif

#include "check/check.hpp"
#include "core/aggregate.hpp"
#include "core/louvain.hpp"
#include "core/modopt.hpp"
#include "core/workspace.hpp"
#include "detect/detector.hpp"
#include "gen/churn.hpp"
#include "gen/er.hpp"
#include "gen/rmat.hpp"
#include "gen/sbm.hpp"
#include "stream/apply.hpp"
#include "stream/frontier.hpp"
#include "stream/session.hpp"

// --- Global allocation counter -------------------------------------
//
// Replacing the usual (and the aligned) operator new in this binary
// lets a test open a counting window around the hot loop; nothrow and
// array forms funnel through these per the standard's defaults.
// GCC flags free() against the replaced operator new, but these
// operators ARE malloc-based, so the pairing is right.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};

// Build with -DGLOUVAIN_TRACE_ALLOCS (and -g -rdynamic) to get a
// backtrace for every counted allocation when hunting a failure here.
void note_alloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
#ifdef GLOUVAIN_TRACE_ALLOCS
    void* frames[32];
    const int depth = backtrace(frames, 32);
    backtrace_symbols_fd(frames, depth, 2);
    std::fputs("----\n", stderr);
#endif
  }
}
}  // namespace

void* operator new(std::size_t size) {
  note_alloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t al) {
  note_alloc();
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace glouvain::core {
namespace {

using graph::Community;
using graph::VertexId;

// --- (a) zero allocations once warm ---------------------------------

TEST(WorkspaceAllocations, WarmModoptAggregateLoopIsAllocationFree) {
  if constexpr (check::enabled()) {
    GTEST_SKIP() << "simtcheck shadow map allocates inside kernels";
  }
  // Degrees span the shared buckets and the global bucket (rmat hubs).
  const auto g = gen::rmat({.scale = 11, .edge_factor = 8}, 5);
  simt::Device device;
  Config cfg;
  Workspace ws;
  PhaseState state;

  const auto iterate = [&] {
    state.reset(g, device);
    optimize_phase(device, g, cfg, state,
                   std::span<const VertexId>{}, 1e-6, ws, nullptr);
    AggregationResult agg =
        aggregate(device, g, cfg, state.community, ws, nullptr);
    // Feed the level's products back, as the level driver does.
    ws.recycle(std::move(agg.contracted));
    ws.put(std::move(agg.new_id));
  };

  iterate();  // iteration 1 warms every slot, pool and scratch chunk

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  iterate();  // iteration 2: the ISSUE's acceptance bar
  iterate();  // and steady state stays clean
  g_count_allocs.store(false);

  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "warm modopt+aggregation iterations must not touch the heap";
}

// --- (b) dirty workspace == fresh device, bitwise -------------------

TEST(WorkspaceReuse, CoreDirtyWorkspaceMatchesFreshRun) {
  const auto a = gen::rmat({.scale = 10, .edge_factor = 8}, 3);
  const auto b = gen::erdos_renyi(1500, 9000, 11);

  Louvain reused;
  (void)reused.run(a);  // dirty the workspace with a different graph
  const Result warm = reused.run(b);

  Louvain fresh;
  const Result cold = fresh.run(b);

  EXPECT_EQ(warm.community, cold.community);
  EXPECT_EQ(warm.modularity, cold.modularity);  // bitwise, not NEAR
  ASSERT_EQ(warm.levels.size(), cold.levels.size());
  for (std::size_t l = 0; l < warm.levels.size(); ++l) {
    EXPECT_EQ(warm.levels[l].vertices, cold.levels[l].vertices);
    EXPECT_EQ(warm.levels[l].iterations, cold.levels[l].iterations);
    EXPECT_EQ(warm.levels[l].modularity_after, cold.levels[l].modularity_after);
  }
}

TEST(WorkspaceReuse, RepeatedRunsOnSameGraphAreIdentical) {
  const auto g = gen::rmat({.scale = 10, .edge_factor = 8}, 7);
  Louvain runner;
  const Result first = runner.run(g);
  const Result second = runner.run(g);
  const Result third = runner.run(g);
  EXPECT_EQ(first.community, second.community);
  EXPECT_EQ(first.modularity, second.modularity);
  EXPECT_EQ(second.community, third.community);
  EXPECT_EQ(second.modularity, third.modularity);
}

TEST(WorkspaceReuse, SeqDetectorReuseMatchesFreshDetector) {
  const auto a = gen::rmat({.scale = 9, .edge_factor = 8}, 3);
  const auto b = gen::erdos_renyi(1200, 7000, 13);
  detect::Options opts;

  auto reused = detect::make("seq");
  ASSERT_TRUE(reused.ok());
  (void)(*reused)->run(a, opts);
  const detect::Result warm = (*reused)->run(b, opts);

  auto fresh = detect::make("seq");
  ASSERT_TRUE(fresh.ok());
  const detect::Result cold = (*fresh)->run(b, opts);

  EXPECT_EQ(warm.community, cold.community);
  EXPECT_EQ(warm.modularity, cold.modularity);
}

// One stream warm-start epoch: the session's detector and rebuild
// arena are both dirty from the initial cold detection, and its result
// must still be bitwise what a fresh detector produces for the same
// (post-delta graph, seed, frontier) warm request.
TEST(WorkspaceReuse, StreamWarmEpochMatchesFreshWarmRun) {
  gen::SbmParams sbm;
  sbm.num_vertices = 2000;
  sbm.num_communities = 20;
  sbm.intra_degree = 10.0;
  sbm.inter_degree = 2.0;
  sbm.seed = 11;
  auto planted = gen::planted_partition(sbm);

  gen::ChurnParams churn;
  churn.epochs = 1;
  churn.churn_fraction = 0.01;
  churn.seed = 12;
  const auto deltas = gen::churn(planted.graph, planted.ground_truth, churn);
  ASSERT_EQ(deltas.size(), 1u);

  auto session = stream::Session::open(planted.graph, {});
  ASSERT_TRUE(session.ok());
  const std::vector<Community> seed_partition = session->community();
  ASSERT_TRUE(session->apply(deltas[0]).ok());

  // Replay the session's pipeline with everything fresh.
  stream::ApplyResult applied = stream::apply_delta(planted.graph, deltas[0]);
  auto warm = std::make_shared<detect::WarmStart>();
  warm->frontier = stream::compute_frontier(applied.graph, seed_partition,
                                            applied.touched);
  warm->seed = seed_partition;
  warm->seed.resize(applied.graph.num_vertices());
  for (std::size_t v = seed_partition.size();
       v < warm->seed.size(); ++v) {
    warm->seed[v] = static_cast<Community>(v);
  }
  detect::Options opts;
  opts.warm_start = std::move(warm);
  auto fresh = detect::make("core");
  ASSERT_TRUE(fresh.ok());
  const detect::Result cold = (*fresh)->run(applied.graph, opts);

  EXPECT_EQ(session->community(), cold.community);
  EXPECT_EQ(session->result().modularity, cold.modularity);
}

}  // namespace
}  // namespace glouvain::core
