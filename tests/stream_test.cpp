// Invariants of the dynamic-graph subsystem:
//   * apply_delta == fresh graph::build_csr of the mutated edge list,
//     BITWISE (weight-1 edges make every float sum order-independent);
//   * warm-start detection stays within tolerance of a cold recompute
//     after any delta sequence, for both warm backends;
//   * the affected-vertex frontier obeys its documented closure rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "detect/detector.hpp"
#include "gen/churn.hpp"
#include "gen/sbm.hpp"
#include "graph/builder.hpp"
#include "stream/apply.hpp"
#include "stream/delta_io.hpp"
#include "stream/frontier.hpp"
#include "stream/session.hpp"

namespace {

using namespace glouvain;
using graph::Community;
using graph::Csr;
using graph::Edge;
using graph::VertexId;

/// Reference model: the undirected edge map (u <= v), mutated with the
/// exact Delta semantics, rebuilt from scratch through build_csr.
class EdgeModel {
 public:
  explicit EdgeModel(const Csr& graph) {
    for (VertexId u = 0; u < graph.num_vertices(); ++u) {
      auto nbrs = graph.neighbors(u);
      auto ws = graph.weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (u <= nbrs[i]) edges_[{u, nbrs[i]}] = ws[i];
      }
    }
    num_vertices_ = graph.num_vertices();
  }

  void apply(const stream::Delta& delta) {
    for (const Edge& e : delta.deletions) {  // deletions first
      edges_.erase(key(e.u, e.v));
    }
    for (const Edge& e : delta.insertions) {
      if (e.w <= 0) continue;
      edges_[key(e.u, e.v)] += e.w;
      num_vertices_ = std::max({num_vertices_, e.u + 1, e.v + 1});
    }
  }

  Csr build() const {
    std::vector<Edge> list;
    list.reserve(edges_.size());
    for (const auto& [uv, w] : edges_) list.push_back({uv.first, uv.second, w});
    return graph::build_csr(num_vertices_, std::move(list));
  }

 private:
  static std::pair<VertexId, VertexId> key(VertexId u, VertexId v) {
    return {std::min(u, v), std::max(u, v)};
  }

  std::map<std::pair<VertexId, VertexId>, graph::Weight> edges_;
  VertexId num_vertices_ = 0;
};

void expect_bitwise_equal(const Csr& a, const Csr& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  EXPECT_TRUE(std::ranges::equal(a.offsets(), b.offsets()));
  EXPECT_TRUE(std::ranges::equal(a.adjacency(), b.adjacency()));
  // Bitwise, not approximate: integer-valued weights sum exactly in any
  // order, so the parallel merge must reproduce build_csr's doubles.
  EXPECT_TRUE(std::ranges::equal(a.edge_weights(), b.edge_weights()));
}

gen::SbmResult small_sbm(std::uint64_t seed = 7) {
  gen::SbmParams p;
  p.num_vertices = 4000;
  p.num_communities = 40;
  p.intra_degree = 10;
  p.inter_degree = 2;
  p.seed = seed;
  return gen::planted_partition(p);
}

TEST(StreamApply, MatchesFreshBuildOverChurn) {
  auto sbm = small_sbm();
  EdgeModel model(sbm.graph);

  gen::ChurnParams cp;
  cp.epochs = 6;
  cp.churn_fraction = 0.03;
  cp.seed = 11;
  const auto deltas = gen::churn(sbm.graph, sbm.ground_truth, cp);
  ASSERT_EQ(deltas.size(), cp.epochs);

  Csr current = sbm.graph;
  for (const stream::Delta& delta : deltas) {
    auto applied = stream::apply_delta(current, delta);
    EXPECT_EQ(applied.inserted, delta.insertions.size());
    EXPECT_EQ(applied.deleted, delta.deletions.size());
    model.apply(delta);
    expect_bitwise_equal(applied.graph, model.build());
    current = std::move(applied.graph);
  }
}

TEST(StreamApply, MergingChurnAndNewVertices) {
  auto sbm = small_sbm(3);
  EdgeModel model(sbm.graph);

  gen::ChurnParams cp;
  cp.epochs = 4;
  cp.churn_fraction = 0.02;
  cp.mode = gen::ChurnMode::CommunityMerging;
  cp.seed = 5;
  auto deltas = gen::churn(sbm.graph, sbm.ground_truth, cp);
  // Splice in growth plus edge cases: a new vertex, a self-loop, a
  // no-op deletion, a non-positive insertion.
  const VertexId n = sbm.graph.num_vertices();
  deltas[1].insertions.push_back({n + 2, 0, 1.0});
  deltas[1].insertions.push_back({5, 5, 1.0});
  deltas[1].insertions.push_back({1, 2, 0.0});          // ignored
  deltas[1].deletions.push_back({n + 500, n + 501, 1}); // out of range no-op

  Csr current = sbm.graph;
  for (const stream::Delta& delta : deltas) {
    auto applied = stream::apply_delta(current, delta);
    model.apply(delta);
    expect_bitwise_equal(applied.graph, model.build());
    current = std::move(applied.graph);
  }
  EXPECT_EQ(current.num_vertices(), n + 3);
}

TEST(StreamApply, DeleteThenReinsertReplacesWeight) {
  // Same edge deleted and re-inserted in one batch: deletion runs
  // first, so the edge ends with the fresh weight, not the sum.
  Csr g = graph::build_csr(4, {{0, 1, 3.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  stream::Delta d;
  d.deletions.push_back({0, 1, 0});
  d.insertions.push_back({0, 1, 7.0});
  auto applied = stream::apply_delta(g, d);
  const Csr expected =
      graph::build_csr(4, {{0, 1, 7.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  expect_bitwise_equal(applied.graph, expected);
  EXPECT_EQ(applied.deleted, 1u);
  EXPECT_EQ(applied.inserted, 1u);
}

TEST(StreamFrontier, ClosureAndHops) {
  // Path 0-1-2-3-4-5 with communities {0,1,2} and {3,4,5}.
  Csr g = graph::build_csr(
      6, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 5, 1}});
  const std::vector<Community> comm = {0, 0, 0, 1, 1, 1};

  // Touched = {0}: closure pulls in all of community 0, not community 1.
  std::vector<VertexId> touched = {0};
  auto f = stream::compute_frontier(g, comm, touched, {});
  EXPECT_EQ(f, (std::vector<VertexId>{0, 1, 2}));

  // No closure: just the touched endpoints.
  stream::FrontierOptions bare;
  bare.community_closure = false;
  f = stream::compute_frontier(g, comm, touched, bare);
  EXPECT_EQ(f, (std::vector<VertexId>{0}));

  // One hop from the closure crosses into community 1 via edge 2-3.
  stream::FrontierOptions hop;
  hop.hops = 1;
  f = stream::compute_frontier(g, comm, touched, hop);
  EXPECT_EQ(f, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(StreamFrontier, NewVerticesAlwaysIncluded) {
  Csr g = graph::build_csr(5, {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}});
  const std::vector<Community> comm = {0, 0, 0};  // vertices 3,4 are new
  auto f = stream::compute_frontier(g, comm, {}, {});
  EXPECT_EQ(f, (std::vector<VertexId>{3, 4}));
}

TEST(StreamDeltaIo, Roundtrip) {
  std::vector<stream::Delta> deltas(2);
  deltas[0].stamp = 1;
  deltas[0].insertions = {{1, 2, 1.5}, {3, 4, 1.0}};
  deltas[0].deletions = {{0, 1, 1.0}};
  deltas[1].stamp = 9;
  deltas[1].insertions = {{7, 7, 2.0}};

  const std::string path = testing::TempDir() + "/deltas_roundtrip.txt";
  ASSERT_TRUE(stream::try_save_deltas(deltas, path).ok());
  auto loaded = stream::try_load_deltas(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].stamp, 1u);
  EXPECT_EQ((*loaded)[0].insertions, deltas[0].insertions);
  EXPECT_EQ((*loaded)[0].deletions, deltas[0].deletions);
  EXPECT_EQ((*loaded)[1].insertions, deltas[1].insertions);

  auto missing = stream::try_load_deltas(testing::TempDir() + "/nope.txt");
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

class WarmVsColdTest : public testing::TestWithParam<const char*> {};

TEST_P(WarmVsColdTest, ModularityWithinToleranceOverChurn) {
  auto sbm = small_sbm(17);
  gen::ChurnParams cp;
  cp.epochs = 5;
  cp.churn_fraction = 0.02;
  cp.seed = 23;
  const auto deltas = gen::churn(sbm.graph, sbm.ground_truth, cp);

  stream::SessionOptions so;
  so.backend = GetParam();
  auto session = stream::Session::open(sbm.graph, so);
  ASSERT_TRUE(session.ok()) << session.status().to_string();

  auto detector = detect::make(GetParam());
  ASSERT_TRUE(detector.ok());

  Csr current = sbm.graph;
  for (const stream::Delta& delta : deltas) {
    auto rep = session->apply(delta);
    ASSERT_TRUE(rep.ok()) << rep.status().to_string();
    current = stream::apply_delta(current, delta).graph;

    const detect::Result cold = (*detector)->run(current, {});
    // Warm-start must track the cold answer; Louvain is heuristic, so
    // tolerance, not equality. 0.02 absolute Q is far tighter than the
    // run-to-run spread of a bad partition.
    EXPECT_NEAR(rep->modularity, cold.modularity, 0.02);
    EXPECT_GE(rep->modularity, 0.5);  // SBM structure stays detectable
  }
  EXPECT_EQ(session->epoch(), deltas.size());
  expect_bitwise_equal(session->graph(), current);
}

INSTANTIATE_TEST_SUITE_P(Backends, WarmVsColdTest,
                         testing::Values("core", "seq"));

TEST(StreamSession, EmptyDeltaIsNoop) {
  auto sbm = small_sbm(29);
  auto session = stream::Session::open(sbm.graph, {});
  ASSERT_TRUE(session.ok());
  const double q0 = session->result().modularity;
  auto rep = session->apply(stream::Delta{});
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->frontier_size, 0u);
  EXPECT_EQ(rep->modularity, q0);
  EXPECT_EQ(session->epoch(), 1u);
}

TEST(StreamSession, UnknownBackendRejected) {
  stream::SessionOptions so;
  so.backend = "no-such-backend";
  auto session = stream::Session::open(small_sbm().graph, so);
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(DetectWarmStart, RegistryRoutesAndValidates) {
  auto sbm = small_sbm(31);
  auto detector = detect::make("core");
  ASSERT_TRUE(detector.ok());
  const detect::Result cold = (*detector)->run(sbm.graph, {});

  // Re-optimize everything from the previous partition: quality holds.
  detect::Options options;
  auto warm = std::make_shared<detect::WarmStart>();
  warm->seed = cold.community;
  options.warm_start = warm;
  const detect::Result rewarmed = (*detector)->run(sbm.graph, options);
  EXPECT_NEAR(rewarmed.modularity, cold.modularity, 0.02);

  // A malformed seed must be rejected loudly, not silently misused.
  auto bad = std::make_shared<detect::WarmStart>();
  bad->seed.assign(3, 0);  // wrong size
  options.warm_start = bad;
  EXPECT_THROW((*detector)->run(sbm.graph, options), std::invalid_argument);

  auto seq = detect::make("seq");
  ASSERT_TRUE(seq.ok());
  EXPECT_THROW((*seq)->run(sbm.graph, options), std::invalid_argument);
}

TEST(GenChurn, DeltasAreConsistent) {
  auto sbm = small_sbm(41);
  gen::ChurnParams cp;
  cp.epochs = 3;
  cp.churn_fraction = 0.05;
  const auto deltas = gen::churn(sbm.graph, sbm.ground_truth, cp);
  ASSERT_EQ(deltas.size(), 3u);

  Csr current = sbm.graph;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    EXPECT_EQ(deltas[i].stamp, i + 1);
    EXPECT_FALSE(deltas[i].empty());
    // Every deletion hits a live edge and every insertion is novel,
    // because the generator tracks the evolving edge set.
    auto applied = stream::apply_delta(current, deltas[i]);
    EXPECT_EQ(applied.deleted, deltas[i].deletions.size());
    EXPECT_EQ(applied.inserted, deltas[i].insertions.size());
    // Preserving mode only inserts within a planted community.
    for (const Edge& e : deltas[i].insertions) {
      EXPECT_EQ(sbm.ground_truth[e.u], sbm.ground_truth[e.v]);
    }
    current = std::move(applied.graph);
  }
}

}  // namespace
