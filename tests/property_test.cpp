// Property-based invariants swept over a (generator x seed) grid with
// parameterized gtest: these are the laws every component must satisfy
// regardless of input shape.
#include <gtest/gtest.h>

#include <cmath>

#include "core/aggregate.hpp"
#include "core/louvain.hpp"
#include "gen/ba.hpp"
#include "gen/er.hpp"
#include "gen/rgg.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/ws.hpp"
#include "graph/ops.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition.hpp"
#include "seq/louvain.hpp"
#include "util/prng.hpp"

namespace glouvain {
namespace {

using graph::Community;
using graph::Csr;
using graph::VertexId;

struct Family {
  const char* name;
  Csr (*make)(std::uint64_t seed);
};

Csr make_er(std::uint64_t s) { return gen::erdos_renyi(600, 3000, s); }
Csr make_rmat(std::uint64_t s) {
  return gen::rmat({.scale = 10, .edge_factor = 8}, s);
}
Csr make_ba(std::uint64_t s) { return gen::barabasi_albert(800, 4, s); }
Csr make_ws(std::uint64_t s) { return gen::watts_strogatz(800, 3, 0.1, s); }
Csr make_rgg(std::uint64_t s) { return gen::random_geometric(800, 0, s); }
Csr make_road(std::uint64_t s) {
  gen::RoadParams p;
  p.grid_nx = 24;
  p.grid_ny = 24;
  p.seed = s;
  return gen::road_network(p);
}

const Family kFamilies[] = {
    {"er", make_er},     {"rmat", make_rmat}, {"ba", make_ba},
    {"ws", make_ws},     {"rgg", make_rgg},   {"road", make_road},
};

class GraphProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  Csr make() {
    const auto [family, seed] = GetParam();
    return kFamilies[family].make(seed);
  }
};

INSTANTIATE_TEST_SUITE_P(
    Grid, GraphProperty,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values<std::uint64_t>(1, 2, 3)),
    [](const auto& info) {
      return std::string(kFamilies[std::get<0>(info.param)].name) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(GraphProperty, GeneratorOutputIsValidCsr) {
  const Csr g = make();
  EXPECT_TRUE(graph::validate(g).empty()) << graph::validate(g);
}

TEST_P(GraphProperty, ModularityIsBounded) {
  const Csr g = make();
  util::Xoshiro256 rng(99);
  std::vector<Community> part(g.num_vertices());
  for (auto& c : part) {
    c = static_cast<Community>(rng.next_below(std::max<VertexId>(1, g.num_vertices() / 10)));
  }
  const double q = metrics::modularity(g, part);
  EXPECT_GE(q, -1.0);
  EXPECT_LE(q, 1.0);
}

TEST_P(GraphProperty, CoreAggregationMatchesReferenceOnLouvainPartition) {
  // Aggregate with the partition an actual optimization produced (more
  // adversarial than random: skewed sizes, singletons, hubs).
  const Csr g = make();
  const auto result = seq::louvain(g);
  // Convert to representative labels valid for contraction.
  std::vector<Community> labels = result.community;
  metrics::renumber(labels);
  simt::Device device;
  const auto agg = core::aggregate(device, g, core::Config{}, labels);
  const Csr expect = graph::contract_reference(g, labels);
  EXPECT_EQ(agg.contracted, expect);
}

TEST_P(GraphProperty, CoreLouvainModularityConsistent) {
  const Csr g = make();
  const auto result = core::louvain(g);
  EXPECT_NEAR(metrics::modularity(g, result.community), result.modularity, 1e-7);
  EXPECT_GE(result.modularity, -1.0);
  EXPECT_LE(result.modularity, 1.0);
}

TEST_P(GraphProperty, CoreNeverWorseThanSingletons) {
  const Csr g = make();
  std::vector<Community> singletons(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) singletons[v] = v;
  const double q0 = metrics::modularity(g, singletons);
  EXPECT_GE(core::louvain(g).modularity, q0 - 1e-9);
}

TEST_P(GraphProperty, LevelsShrinkStrictly) {
  const Csr g = make();
  const auto result = core::louvain(g);
  for (std::size_t i = 0; i + 1 < result.levels.size(); ++i) {
    EXPECT_LT(result.levels[i + 1].vertices, result.levels[i].vertices);
  }
}

TEST_P(GraphProperty, CommunityLabelsDense) {
  const Csr g = make();
  const auto result = core::louvain(g);
  auto labels = result.community;
  const Community k = metrics::renumber(labels);
  EXPECT_EQ(labels, result.community);
  const auto sizes = metrics::community_sizes(result.community);
  EXPECT_EQ(sizes.size(), k);
  for (auto s : sizes) EXPECT_GT(s, 0u);
}

TEST_P(GraphProperty, TotalWeightInvariantThroughHierarchy) {
  const Csr g = make();
  std::vector<Community> labels = seq::louvain(g).community;
  metrics::renumber(labels);
  const Csr c = graph::contract_reference(g, labels);
  EXPECT_NEAR(c.total_weight(), g.total_weight(),
              1e-9 * std::max(1.0, g.total_weight()));
}

}  // namespace
}  // namespace glouvain
