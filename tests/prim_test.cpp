// Unit + parameterized property tests for the Thrust-analogue
// primitives: scans, reductions, partition, sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "prim/partition.hpp"
#include "prim/reduce.hpp"
#include "prim/scan.hpp"
#include "prim/sort.hpp"
#include "prim/transform.hpp"
#include "util/prng.hpp"

namespace glouvain::prim {
namespace {

std::vector<std::uint64_t> random_vector(std::size_t n, std::uint64_t seed,
                                         std::uint64_t max_value = 1000) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(max_value);
  return v;
}

/// Sizes spanning the serial cutoffs of every primitive.
class PrimSizes : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, PrimSizes,
                         ::testing::Values(0, 1, 2, 7, 100, 4096, 40000, 300000));

TEST_P(PrimSizes, ExclusiveScanMatchesSerial) {
  const std::size_t n = GetParam();
  auto in = random_vector(n, 42 + n);
  std::vector<std::uint64_t> expect(n), got(n);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expect[i] = running;
    running += in[i];
  }
  const auto total =
      exclusive_scan(std::span<const std::uint64_t>(in), std::span<std::uint64_t>(got));
  EXPECT_EQ(total, running);
  EXPECT_EQ(got, expect);
}

TEST_P(PrimSizes, ExclusiveScanInPlace) {
  const std::size_t n = GetParam();
  auto data = random_vector(n, 5 + n);
  auto copy = data;
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = copy[i];
    copy[i] = running;
    running += v;
  }
  exclusive_scan(std::span<std::uint64_t>(data));
  EXPECT_EQ(data, copy);
}

TEST_P(PrimSizes, InclusiveScanMatchesSerial) {
  const std::size_t n = GetParam();
  auto in = random_vector(n, 7 + n);
  std::vector<std::uint64_t> expect(n), got(n);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < n; ++i) {
    running += in[i];
    expect[i] = running;
  }
  inclusive_scan(std::span<const std::uint64_t>(in), std::span<std::uint64_t>(got));
  EXPECT_EQ(got, expect);
}

TEST_P(PrimSizes, InclusiveScanInPlaceAliased) {
  const std::size_t n = GetParam();
  auto data = random_vector(n, 9 + n);
  auto expect = data;
  std::uint64_t running = 0;
  for (auto& x : expect) {
    running += x;
    x = running;
  }
  inclusive_scan(std::span<std::uint64_t>(data));
  EXPECT_EQ(data, expect);
}

TEST_P(PrimSizes, SumMatchesAccumulate) {
  const std::size_t n = GetParam();
  auto in = random_vector(n, 11 + n);
  EXPECT_EQ(sum(std::span<const std::uint64_t>(in)),
            std::accumulate(in.begin(), in.end(), std::uint64_t{0}));
}

TEST_P(PrimSizes, PartitionKeepsAllElementsAndIsStable) {
  const std::size_t n = GetParam();
  auto in = random_vector(n, 13 + n);
  std::vector<std::uint64_t> out(n);
  auto pred = [](std::uint64_t x) { return x % 3 == 0; };
  const std::size_t split =
      stable_partition_copy(std::span<const std::uint64_t>(in),
                            std::span<std::uint64_t>(out), pred);
  // Expected via std::stable_partition on a copy.
  auto expect = in;
  auto mid = std::stable_partition(expect.begin(), expect.end(), pred);
  EXPECT_EQ(split, static_cast<std::size_t>(mid - expect.begin()));
  EXPECT_EQ(out, expect);
}

TEST_P(PrimSizes, SortMatchesStdSort) {
  const std::size_t n = GetParam();
  auto data = random_vector(n, 17 + n, 1u << 30);
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  prim::sort(std::span<std::uint64_t>(data));
  EXPECT_EQ(data, expect);
}

TEST(Scan, AllZeros) {
  std::vector<std::uint64_t> z(100000, 0);
  EXPECT_EQ(exclusive_scan(std::span<std::uint64_t>(z)), 0u);
  for (auto v : z) ASSERT_EQ(v, 0u);
}

TEST(Reduce, CustomCombine) {
  std::vector<std::uint64_t> v{5, 9, 1, 7};
  const auto max = reduce(std::span<const std::uint64_t>(v), std::uint64_t{0},
                          [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); });
  EXPECT_EQ(max, 9u);
}

TEST(Reduce, CountIfIndex) {
  EXPECT_EQ(count_if_index(100000, [](std::size_t i) { return i % 7 == 0; }),
            (100000 + 6) / 7);
  EXPECT_EQ(count_if_index(0, [](std::size_t) { return true; }), 0u);
}

TEST(Reduce, MaxValue) {
  auto v = random_vector(200000, 3, 1u << 20);
  EXPECT_EQ(max_value(std::span<const std::uint64_t>(v), std::uint64_t{0}),
            *std::max_element(v.begin(), v.end()));
}

TEST(Partition, AllTrueAllFalse) {
  auto in = random_vector(50000, 23);
  std::vector<std::uint64_t> out(in.size());
  EXPECT_EQ(stable_partition_copy(std::span<const std::uint64_t>(in),
                                  std::span<std::uint64_t>(out),
                                  [](std::uint64_t) { return true; }),
            in.size());
  EXPECT_EQ(out, in);
  EXPECT_EQ(stable_partition_copy(std::span<const std::uint64_t>(in),
                                  std::span<std::uint64_t>(out),
                                  [](std::uint64_t) { return false; }),
            0u);
  EXPECT_EQ(out, in);
}

TEST(Sort, DescendingComparator) {
  auto data = random_vector(100000, 29);
  prim::sort(std::span<std::uint64_t>(data), std::greater<std::uint64_t>{});
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end(), std::greater<std::uint64_t>{}));
}

TEST(Sort, ByKeyAppliesSamePermutation) {
  std::vector<std::uint32_t> keys{5, 1, 4, 2, 3};
  std::vector<std::string> vals{"e", "a", "d", "b", "c"};
  sort_by_key(std::span<std::uint32_t>(keys), std::span<std::string>(vals));
  EXPECT_EQ(keys, (std::vector<std::uint32_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(vals, (std::vector<std::string>{"a", "b", "c", "d", "e"}));
}

TEST(Transform, FillIotaGatherScatter) {
  std::vector<std::uint32_t> v(1000);
  fill(std::span<std::uint32_t>(v), 7u);
  for (auto x : v) ASSERT_EQ(x, 7u);

  iota(std::span<std::uint32_t>(v), 5u);
  EXPECT_EQ(v[0], 5u);
  EXPECT_EQ(v[999], 1004u);

  std::vector<std::uint32_t> idx(1000);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    idx[i] = static_cast<std::uint32_t>(idx.size() - 1 - i);
  }
  std::vector<std::uint32_t> out(1000);
  gather(std::span<const std::uint32_t>(v), std::span<const std::uint32_t>(idx),
         std::span<std::uint32_t>(out));
  EXPECT_EQ(out[0], 1004u);
  EXPECT_EQ(out[999], 5u);

  std::vector<std::uint32_t> back(1000);
  scatter(std::span<const std::uint32_t>(out), std::span<const std::uint32_t>(idx),
          std::span<std::uint32_t>(back));
  EXPECT_EQ(back, v);
}

TEST(Transform, TransformApplies) {
  std::vector<std::uint32_t> in(5000);
  iota(std::span<std::uint32_t>(in), 0u);
  std::vector<std::uint64_t> out(in.size());
  transform(std::span<const std::uint32_t>(in), std::span<std::uint64_t>(out),
            [](std::uint32_t x) { return std::uint64_t{x} * 2; });
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], 2 * i);
}

}  // namespace
}  // namespace glouvain::prim
