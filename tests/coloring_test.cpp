// Tests for parallel greedy coloring and the coloring-serialized core.
#include <gtest/gtest.h>

#include "core/louvain.hpp"
#include "gen/cliques.hpp"
#include "gen/er.hpp"
#include "gen/mesh.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/coloring.hpp"
#include "graph/ops.hpp"
#include "metrics/partition.hpp"
#include "seq/louvain.hpp"

namespace glouvain::graph {
namespace {

TEST(Coloring, ProperOnRandomGraphs) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Csr g = gen::erdos_renyi(2000, 10000, seed);
    const Coloring c = color_graph(g);
    EXPECT_TRUE(validate_coloring(g, c).empty()) << validate_coloring(g, c);
  }
}

TEST(Coloring, ProperOnSkewedGraph) {
  const Csr g = gen::rmat({.scale = 12, .edge_factor = 12}, 5);
  const Coloring c = color_graph(g);
  EXPECT_TRUE(validate_coloring(g, c).empty());
  // First-fit bound.
  EXPECT_LE(c.num_colors, degree_stats(g).max_degree + 1);
}

TEST(Coloring, CliqueNeedsExactlyItsSize) {
  const Csr g = gen::ring_of_cliques(1, 7);
  const Coloring c = color_graph(g);
  EXPECT_EQ(c.num_colors, 7u);
  EXPECT_TRUE(validate_coloring(g, c).empty());
}

TEST(Coloring, BipartiteGridUsesFewColors) {
  const Csr g = gen::grid2d(30, 30, /*moore=*/false);
  const Coloring c = color_graph(g);
  EXPECT_TRUE(validate_coloring(g, c).empty());
  // The 4-neighbour grid is bipartite (2 colors optimal); speculative
  // parallel first-fit is nondeterministic but can never exceed the
  // max-degree+1 bound.
  EXPECT_LE(c.num_colors, 5u);
}

TEST(Coloring, EdgelessGraphIsOneColor) {
  const Csr g = graph::build_csr(10, {});
  const Coloring c = color_graph(g);
  EXPECT_EQ(c.num_colors, 1u);
}

TEST(Coloring, SelfLoopsIgnored) {
  const Csr g = graph::build_csr(2, {{0, 0, 1.0}, {0, 1, 1.0}});
  const Coloring c = color_graph(g);
  EXPECT_TRUE(validate_coloring(g, c).empty());
  EXPECT_EQ(c.num_colors, 2u);
}

TEST(Coloring, DetectsInvalid) {
  const Csr g = graph::build_csr(2, {{0, 1, 1.0}});
  Coloring bad{{0, 0}, 1, 1};
  EXPECT_FALSE(validate_coloring(g, bad).empty());
}

TEST(ColoringSerializedCore, MeshQualityAtLeastHashSubrounds) {
  // On a uniform-degree mesh, coloring fully eliminates swap
  // oscillation; quality must at least match hash sub-rounds.
  const auto g = gen::grid3d(12, 12, 12, false);
  core::Config hash_cfg;
  core::Config color_cfg;
  color_cfg.use_coloring = true;
  const double q_hash = core::louvain(g, hash_cfg).modularity;
  const double q_color = core::louvain(g, color_cfg).modularity;
  EXPECT_GT(q_color, 0.95 * q_hash);
  const double q_seq = seq::louvain(g).modularity;
  EXPECT_GT(q_color, 0.95 * q_seq);
}

TEST(ColoringSerializedCore, RecoversCliques) {
  const auto g = gen::ring_of_cliques(12, 6);
  core::Config cfg;
  cfg.use_coloring = true;
  auto result = core::louvain(g, cfg);
  auto labels = result.community;
  EXPECT_EQ(metrics::renumber(labels), 12u);
}

}  // namespace
}  // namespace glouvain::graph
