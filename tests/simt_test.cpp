// Unit tests for the software SIMT device: thread pool, atomics,
// lane groups, shared arenas, kernel launch semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "simt/atomics.hpp"
#include "simt/device.hpp"
#include "simt/lane_group.hpp"
#include "simt/shared_arena.hpp"
#include "simt/thread_pool.hpp"

namespace glouvain::simt {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i, unsigned) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, WorkerIdsInRange) {
  ThreadPool pool(3);
  std::atomic<unsigned> max_worker{0};
  pool.parallel_for(10000, 16, [&](std::size_t, unsigned w) {
    unsigned cur = max_worker.load();
    while (w > cur && !max_worker.compare_exchange_weak(cur, w)) {
    }
  });
  EXPECT_LT(max_worker.load(), pool.size());
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  int count = 0;
  pool.parallel_for(0, [&](std::size_t, unsigned) { ++count; });
  EXPECT_EQ(count, 0);
  std::atomic<int> acount{0};
  pool.parallel_for(1, [&](std::size_t, unsigned) { acount.fetch_add(1); });
  EXPECT_EQ(acount.load(), 1);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 1 << 18;
  std::vector<long> partial(pool.size(), 0);
  pool.parallel_for(n, [&](std::size_t i, unsigned w) {
    partial[w] += static_cast<long>(i);
  });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(total, static_cast<long>(n) * (static_cast<long>(n) - 1) / 2);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(10000, 8,
                        [&](std::size_t i, unsigned) {
                          if (i == 5000) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool must remain usable afterwards.
  std::atomic<int> ok{0};
  pool.parallel_for(100, [&](std::size_t, unsigned) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 100);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.parallel_for(64, 1, [&](std::size_t, unsigned) {
    pool.parallel_for(10, [&](std::size_t, unsigned) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 640);
}

TEST(ThreadPool, SingleWorkerPool) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t count = 0;
  pool.parallel_for(1000, [&](std::size_t, unsigned) { ++count; });
  EXPECT_EQ(count, 1000u);
}

TEST(Atomics, AddReturnsOldValue) {
  double d = 1.5;
  EXPECT_DOUBLE_EQ(atomic_add(d, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(d, 3.5);
  std::uint32_t u = 7;
  EXPECT_EQ(atomic_add(u, 3u), 7u);
  EXPECT_EQ(u, 10u);
}

TEST(Atomics, SubOnUnsignedWraps) {
  std::uint32_t u = 10;
  atomic_sub(u, 3u);
  EXPECT_EQ(u, 7u);
}

// atomicCAS contract, pinned per width: the return value is what was
// OBSERVED in memory, and the swap happened iff that equals `expected`
// — CUDA semantics, NOT the bool-returning std::atomic CAS. The
// checker, the hash-map claim path and the paper's Algorithm 2 all
// lean on this.
TEST(Atomics, CasSemantics) {
  std::uint32_t x = 5;
  // Success: returns expected.
  EXPECT_EQ(atomic_cas(x, 5u, 9u), 5u);
  EXPECT_EQ(x, 9u);
  // Failure: returns observed, no write.
  EXPECT_EQ(atomic_cas(x, 5u, 1u), 9u);
  EXPECT_EQ(x, 9u);
}

TEST(Atomics, CasSemanticsInt32) {
  std::int32_t x = -5;
  EXPECT_EQ(atomic_cas(x, std::int32_t{-5}, std::int32_t{9}), -5);
  EXPECT_EQ(x, 9);
  // Failure path: observed value back, memory untouched, even when
  // desired would have matched a stale expectation.
  EXPECT_EQ(atomic_cas(x, std::int32_t{-5}, std::int32_t{-1}), 9);
  EXPECT_EQ(x, 9);
  // Winning with the observed value as the new expectation.
  EXPECT_EQ(atomic_cas(x, std::int32_t{9}, std::int32_t{-7}), 9);
  EXPECT_EQ(x, -7);
}

TEST(Atomics, CasSemanticsUint64) {
  const std::uint64_t big = std::uint64_t{1} << 40;
  std::uint64_t x = big;
  EXPECT_EQ(atomic_cas(x, big, big + 1), big);
  EXPECT_EQ(x, big + 1);
  EXPECT_EQ(atomic_cas(x, big, std::uint64_t{0}), big + 1);  // failure
  EXPECT_EQ(x, big + 1);
  EXPECT_EQ(atomic_cas(x, big + 1, std::uint64_t{3}), big + 1);
  EXPECT_EQ(x, 3u);
}

TEST(Atomics, CasFailureWritesNothingUnderContention) {
  // The failure path must never store `desired`: after a lost claim the
  // slot still holds the winner's value.
  ThreadPool pool(4);
  std::uint64_t slot = ~std::uint64_t{0};
  std::atomic<std::uint64_t> winner_value{0};
  pool.parallel_for(10000, 1, [&](std::size_t i, unsigned) {
    const auto mine = static_cast<std::uint64_t>(i + 1);
    if (atomic_cas(slot, ~std::uint64_t{0}, mine) == ~std::uint64_t{0}) {
      winner_value.store(mine);
    }
  });
  EXPECT_EQ(slot, winner_value.load());
}

TEST(Atomics, MinMax) {
  std::uint64_t x = 50;
  atomic_min(x, std::uint64_t{10});
  EXPECT_EQ(x, 10u);
  atomic_min(x, std::uint64_t{99});
  EXPECT_EQ(x, 10u);
  atomic_max(x, std::uint64_t{77});
  EXPECT_EQ(x, 77u);
}

TEST(Atomics, ConcurrentDoubleSumIsExactForIntegers) {
  ThreadPool pool(4);
  double sum = 0;
  pool.parallel_for(100000, [&](std::size_t, unsigned) { atomic_add(sum, 1.0); });
  EXPECT_DOUBLE_EQ(sum, 100000.0);
}

TEST(Atomics, ConcurrentCasClaimsExactlyOnce) {
  ThreadPool pool(4);
  std::uint32_t slot = 0xFFFFFFFFu;
  std::atomic<int> winners{0};
  pool.parallel_for(10000, 1, [&](std::size_t i, unsigned) {
    const auto claimed = static_cast<std::uint32_t>(i);
    if (atomic_cas(slot, 0xFFFFFFFFu, claimed) == 0xFFFFFFFFu) {
      winners.fetch_add(1);
    }
  });
  EXPECT_EQ(winners.load(), 1);
  EXPECT_NE(slot, 0xFFFFFFFFu);
}

TEST(LaneGroup, StridedForVisitsAllOnce) {
  for (unsigned lanes : {1u, 2u, 4u, 8u, 32u, 128u}) {
    LaneGroup g(lanes);
    std::vector<int> hits(1000, 0);
    g.strided_for(1000, [&](unsigned lane, std::size_t idx) {
      EXPECT_EQ(idx % lanes, lane);  // interleaved assignment
      ++hits[idx];
    });
    for (int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(LaneGroup, StridedForWarpOrder) {
  LaneGroup g(4);
  std::vector<std::size_t> order;
  g.strided_for(10, [&](unsigned, std::size_t idx) { order.push_back(idx); });
  // Round 0: 0 1 2 3; round 1: 4 5 6 7; round 2: 8 9.
  const std::vector<std::size_t> expect{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(order, expect);
}

TEST(LaneGroup, ReduceSum) {
  LaneGroup g(8);
  std::vector<int> vals{1, 2, 3, 4, 5, 6, 7, 8};
  const int total = g.reduce(std::span<int>(vals), [](int a, int b) { return a + b; });
  EXPECT_EQ(total, 36);
}

TEST(LaneGroup, ReduceMaxSingleLane) {
  LaneGroup g(1);
  std::vector<int> vals{42};
  EXPECT_EQ(g.reduce(std::span<int>(vals), [](int a, int b) { return std::max(a, b); }), 42);
}

TEST(LaneGroup, ExclusiveScan) {
  LaneGroup g(4);
  std::vector<std::uint64_t> counts{3, 0, 2, 5};
  const auto total = g.exclusive_scan(std::span<std::uint64_t>(counts));
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{0, 3, 3, 5}));
}

TEST(SharedArena, SharedThenSpill) {
  SharedArena arena(1024);
  auto a = arena.alloc<double>(64);  // 512 bytes -> shared
  EXPECT_EQ(arena.spills(), 0u);
  auto b = arena.alloc<double>(64);  // another 512 -> fits exactly
  EXPECT_EQ(arena.spills(), 0u);
  auto c = arena.alloc<double>(8);  // no room -> spill
  EXPECT_EQ(arena.spills(), 1u);
  // All three must be disjoint and writable.
  a[0] = 1;
  b[0] = 2;
  c[0] = 3;
  EXPECT_EQ(a[0] + b[0] + c[0], 6);
}

TEST(SharedArena, SpillSpansSurviveLaterAllocations) {
  SharedArena arena(64);
  auto first = arena.alloc_global<std::uint32_t>(100);
  first[99] = 7;
  // Force many more overflow allocations; `first` must stay valid.
  for (int i = 0; i < 200; ++i) {
    auto more = arena.alloc_global<std::uint32_t>(100000);
    more[0] = static_cast<std::uint32_t>(i);
  }
  EXPECT_EQ(first[99], 7u);
}

TEST(SharedArena, ResetReclaims) {
  SharedArena arena(1024);
  arena.alloc<double>(100);  // spills (800 > ... fits actually 800<1024) -> no
  arena.alloc<double>(100);  // 1600 total -> spills
  const auto spills_before = arena.spills();
  arena.reset();
  auto again = arena.alloc<double>(100);
  again[0] = 1.0;
  EXPECT_EQ(arena.spills(), spills_before);  // reset does not clear counter
  EXPECT_EQ(arena.shared_used() > 0, true);
}

// --- SharedArena exhaustion: a request larger than the shared
// capacity must take the diagnosable global-memory fallback (the
// paper's largest-bucket path), never UB.

TEST(SharedArena, OverCapacityRequestFallsBackToGlobal) {
  SharedArena arena(1024);
  auto big = arena.alloc<double>(1024);  // 8 KiB against 1 KiB shared
  ASSERT_EQ(big.size(), 1024u);
  EXPECT_EQ(arena.spills(), 1u);           // the diagnosis
  EXPECT_EQ(arena.shared_used(), 0u);      // shared region untouched
  big[0] = 1.0;                            // span fully writable
  big[1023] = 2.0;
  EXPECT_DOUBLE_EQ(big[0] + big[1023], 3.0);
  // The fallback must not corrupt later in-capacity allocations.
  auto small = arena.alloc<double>(8);
  small[7] = 5.0;
  EXPECT_DOUBLE_EQ(big[1023], 2.0);
}

TEST(SharedArena, ZeroCapacityArenaAlwaysSpillsSafely) {
  SharedArena arena(0);
  auto span = arena.alloc<std::uint32_t>(16);
  span[15] = 42;
  EXPECT_EQ(span[15], 42u);
  EXPECT_EQ(arena.spills(), 1u);
}

TEST(SharedArena, ExhaustionResetReclaimsSharedNotSpillCount) {
  SharedArena arena(256);
  (void)arena.alloc<double>(16);  // 128 B: fits
  (void)arena.alloc<double>(64);  // 512 B more: spills
  EXPECT_EQ(arena.spills(), 1u);
  arena.reset();
  auto again = arena.alloc<double>(16);
  again[0] = 1.0;
  EXPECT_EQ(arena.spills(), 1u);  // counter is cumulative diagnostics
  EXPECT_GT(arena.shared_used(), 0u);
}

TEST(Device, KernelOverSharedBytesIsDiagnosableViaSpills) {
  // Every task requests 16x the configured shared memory; all of them
  // must complete correctly and each must tick the spill counter.
  Device device({.worker_threads = 2, .shared_bytes = 256});
  std::vector<std::atomic<int>> ok(64);
  device.launch(64, [&](TaskContext& ctx) {
    auto span = ctx.shared().alloc<double>(512);  // 4 KiB
    span[0] = static_cast<double>(ctx.task());
    span[511] = 1.0;
    if (span[0] == static_cast<double>(ctx.task())) {
      ok[ctx.task()].fetch_add(1);
    }
  });
  for (auto& o : ok) ASSERT_EQ(o.load(), 1);
  EXPECT_EQ(device.total_spills(), 64u);
  device.clear_spills();
  EXPECT_EQ(device.total_spills(), 0u);
}

TEST(Device, LaunchRunsEveryTask) {
  Device device({.worker_threads = 4});
  std::vector<std::atomic<int>> hits(5000);
  device.launch(5000, [&](TaskContext& ctx) { hits[ctx.task()].fetch_add(1); });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Device, ArenaIsResetBetweenTasks) {
  Device device({.worker_threads = 2, .shared_bytes = 4096});
  std::atomic<std::uint64_t> spill_tasks{0};
  device.launch(1000, [&](TaskContext& ctx) {
    // 2048 bytes per task: only fits if the arena was reset.
    auto span = ctx.shared().alloc<double>(256);
    span[0] = 1;
    if (ctx.shared().spills()) spill_tasks.fetch_add(1);
  });
  EXPECT_EQ(device.total_spills(), 0u);
}

TEST(Device, ForEachCoversRange) {
  Device device({.worker_threads = 3});
  std::vector<std::atomic<int>> hits(777);
  device.for_each(777, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Device, ConfigDefaultsMatchPaper) {
  Device device;
  EXPECT_EQ(device.config().warp_size, 32u);
  EXPECT_EQ(device.config().block_threads, 128u);  // 4 warps per block
  EXPECT_EQ(device.config().shared_bytes, 48u * 1024u);  // Kepler SM
}

}  // namespace
}  // namespace glouvain::simt
