// Unit tests for the software SIMT device: thread pool, atomics,
// lane groups, shared arenas, kernel launch semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "simt/atomics.hpp"
#include "simt/device.hpp"
#include "simt/lane_group.hpp"
#include "simt/shared_arena.hpp"
#include "simt/thread_pool.hpp"

namespace glouvain::simt {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i, unsigned) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, WorkerIdsInRange) {
  ThreadPool pool(3);
  std::atomic<unsigned> max_worker{0};
  pool.parallel_for(10000, 16, [&](std::size_t, unsigned w) {
    unsigned cur = max_worker.load();
    while (w > cur && !max_worker.compare_exchange_weak(cur, w)) {
    }
  });
  EXPECT_LT(max_worker.load(), pool.size());
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  int count = 0;
  pool.parallel_for(0, [&](std::size_t, unsigned) { ++count; });
  EXPECT_EQ(count, 0);
  std::atomic<int> acount{0};
  pool.parallel_for(1, [&](std::size_t, unsigned) { acount.fetch_add(1); });
  EXPECT_EQ(acount.load(), 1);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 1 << 18;
  std::vector<long> partial(pool.size(), 0);
  pool.parallel_for(n, [&](std::size_t i, unsigned w) {
    partial[w] += static_cast<long>(i);
  });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(total, static_cast<long>(n) * (static_cast<long>(n) - 1) / 2);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(10000, 8,
                        [&](std::size_t i, unsigned) {
                          if (i == 5000) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool must remain usable afterwards.
  std::atomic<int> ok{0};
  pool.parallel_for(100, [&](std::size_t, unsigned) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 100);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.parallel_for(64, 1, [&](std::size_t, unsigned) {
    pool.parallel_for(10, [&](std::size_t, unsigned) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 640);
}

TEST(ThreadPool, SingleWorkerPool) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t count = 0;
  pool.parallel_for(1000, [&](std::size_t, unsigned) { ++count; });
  EXPECT_EQ(count, 1000u);
}

TEST(Atomics, AddReturnsOldValue) {
  double d = 1.5;
  EXPECT_DOUBLE_EQ(atomic_add(d, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(d, 3.5);
  std::uint32_t u = 7;
  EXPECT_EQ(atomic_add(u, 3u), 7u);
  EXPECT_EQ(u, 10u);
}

TEST(Atomics, SubOnUnsignedWraps) {
  std::uint32_t u = 10;
  atomic_sub(u, 3u);
  EXPECT_EQ(u, 7u);
}

TEST(Atomics, CasSemantics) {
  std::uint32_t x = 5;
  // Success: returns expected.
  EXPECT_EQ(atomic_cas(x, 5u, 9u), 5u);
  EXPECT_EQ(x, 9u);
  // Failure: returns observed, no write.
  EXPECT_EQ(atomic_cas(x, 5u, 1u), 9u);
  EXPECT_EQ(x, 9u);
}

TEST(Atomics, MinMax) {
  std::uint64_t x = 50;
  atomic_min(x, std::uint64_t{10});
  EXPECT_EQ(x, 10u);
  atomic_min(x, std::uint64_t{99});
  EXPECT_EQ(x, 10u);
  atomic_max(x, std::uint64_t{77});
  EXPECT_EQ(x, 77u);
}

TEST(Atomics, ConcurrentDoubleSumIsExactForIntegers) {
  ThreadPool pool(4);
  double sum = 0;
  pool.parallel_for(100000, [&](std::size_t, unsigned) { atomic_add(sum, 1.0); });
  EXPECT_DOUBLE_EQ(sum, 100000.0);
}

TEST(Atomics, ConcurrentCasClaimsExactlyOnce) {
  ThreadPool pool(4);
  std::uint32_t slot = 0xFFFFFFFFu;
  std::atomic<int> winners{0};
  pool.parallel_for(10000, 1, [&](std::size_t i, unsigned) {
    const auto claimed = static_cast<std::uint32_t>(i);
    if (atomic_cas(slot, 0xFFFFFFFFu, claimed) == 0xFFFFFFFFu) {
      winners.fetch_add(1);
    }
  });
  EXPECT_EQ(winners.load(), 1);
  EXPECT_NE(slot, 0xFFFFFFFFu);
}

TEST(LaneGroup, StridedForVisitsAllOnce) {
  for (unsigned lanes : {1u, 2u, 4u, 8u, 32u, 128u}) {
    LaneGroup g(lanes);
    std::vector<int> hits(1000, 0);
    g.strided_for(1000, [&](unsigned lane, std::size_t idx) {
      EXPECT_EQ(idx % lanes, lane);  // interleaved assignment
      ++hits[idx];
    });
    for (int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(LaneGroup, StridedForWarpOrder) {
  LaneGroup g(4);
  std::vector<std::size_t> order;
  g.strided_for(10, [&](unsigned, std::size_t idx) { order.push_back(idx); });
  // Round 0: 0 1 2 3; round 1: 4 5 6 7; round 2: 8 9.
  const std::vector<std::size_t> expect{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(order, expect);
}

TEST(LaneGroup, ReduceSum) {
  LaneGroup g(8);
  std::vector<int> vals{1, 2, 3, 4, 5, 6, 7, 8};
  const int total = g.reduce(std::span<int>(vals), [](int a, int b) { return a + b; });
  EXPECT_EQ(total, 36);
}

TEST(LaneGroup, ReduceMaxSingleLane) {
  LaneGroup g(1);
  std::vector<int> vals{42};
  EXPECT_EQ(g.reduce(std::span<int>(vals), [](int a, int b) { return std::max(a, b); }), 42);
}

TEST(LaneGroup, ExclusiveScan) {
  LaneGroup g(4);
  std::vector<std::uint64_t> counts{3, 0, 2, 5};
  const auto total = g.exclusive_scan(std::span<std::uint64_t>(counts));
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{0, 3, 3, 5}));
}

TEST(SharedArena, SharedThenSpill) {
  SharedArena arena(1024);
  auto a = arena.alloc<double>(64);  // 512 bytes -> shared
  EXPECT_EQ(arena.spills(), 0u);
  auto b = arena.alloc<double>(64);  // another 512 -> fits exactly
  EXPECT_EQ(arena.spills(), 0u);
  auto c = arena.alloc<double>(8);  // no room -> spill
  EXPECT_EQ(arena.spills(), 1u);
  // All three must be disjoint and writable.
  a[0] = 1;
  b[0] = 2;
  c[0] = 3;
  EXPECT_EQ(a[0] + b[0] + c[0], 6);
}

TEST(SharedArena, SpillSpansSurviveLaterAllocations) {
  SharedArena arena(64);
  auto first = arena.alloc_global<std::uint32_t>(100);
  first[99] = 7;
  // Force many more overflow allocations; `first` must stay valid.
  for (int i = 0; i < 200; ++i) {
    auto more = arena.alloc_global<std::uint32_t>(100000);
    more[0] = static_cast<std::uint32_t>(i);
  }
  EXPECT_EQ(first[99], 7u);
}

TEST(SharedArena, ResetReclaims) {
  SharedArena arena(1024);
  arena.alloc<double>(100);  // spills (800 > ... fits actually 800<1024) -> no
  arena.alloc<double>(100);  // 1600 total -> spills
  const auto spills_before = arena.spills();
  arena.reset();
  auto again = arena.alloc<double>(100);
  again[0] = 1.0;
  EXPECT_EQ(arena.spills(), spills_before);  // reset does not clear counter
  EXPECT_EQ(arena.shared_used() > 0, true);
}

TEST(Device, LaunchRunsEveryTask) {
  Device device({.worker_threads = 4});
  std::vector<std::atomic<int>> hits(5000);
  device.launch(5000, [&](TaskContext& ctx) { hits[ctx.task()].fetch_add(1); });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Device, ArenaIsResetBetweenTasks) {
  Device device({.worker_threads = 2, .shared_bytes = 4096});
  std::atomic<std::uint64_t> spill_tasks{0};
  device.launch(1000, [&](TaskContext& ctx) {
    // 2048 bytes per task: only fits if the arena was reset.
    auto span = ctx.shared().alloc<double>(256);
    span[0] = 1;
    if (ctx.shared().spills()) spill_tasks.fetch_add(1);
  });
  EXPECT_EQ(device.total_spills(), 0u);
}

TEST(Device, ForEachCoversRange) {
  Device device({.worker_threads = 3});
  std::vector<std::atomic<int>> hits(777);
  device.for_each(777, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Device, ConfigDefaultsMatchPaper) {
  Device device;
  EXPECT_EQ(device.config().warp_size, 32u);
  EXPECT_EQ(device.config().block_threads, 128u);  // 4 warps per block
  EXPECT_EQ(device.config().shared_bytes, 48u * 1024u);  // Kepler SM
}

}  // namespace
}  // namespace glouvain::simt
