// Unit tests for the software SIMT device: thread pool, atomics,
// lane groups, shared arenas, kernel launch semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "simt/atomics.hpp"
#include "simt/backend.hpp"
#include "simt/device.hpp"
#include "simt/lane_group.hpp"
#include "simt/lane_vec.hpp"
#include "simt/shared_arena.hpp"
#include "simt/thread_pool.hpp"
#include "simt/vector_ops.hpp"

namespace glouvain::simt {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i, unsigned) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, WorkerIdsInRange) {
  ThreadPool pool(3);
  std::atomic<unsigned> max_worker{0};
  pool.parallel_for(10000, 16, [&](std::size_t, unsigned w) {
    unsigned cur = max_worker.load();
    while (w > cur && !max_worker.compare_exchange_weak(cur, w)) {
    }
  });
  EXPECT_LT(max_worker.load(), pool.size());
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  int count = 0;
  pool.parallel_for(0, [&](std::size_t, unsigned) { ++count; });
  EXPECT_EQ(count, 0);
  std::atomic<int> acount{0};
  pool.parallel_for(1, [&](std::size_t, unsigned) { acount.fetch_add(1); });
  EXPECT_EQ(acount.load(), 1);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 1 << 18;
  std::vector<long> partial(pool.size(), 0);
  pool.parallel_for(n, [&](std::size_t i, unsigned w) {
    partial[w] += static_cast<long>(i);
  });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(total, static_cast<long>(n) * (static_cast<long>(n) - 1) / 2);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(10000, 8,
                        [&](std::size_t i, unsigned) {
                          if (i == 5000) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool must remain usable afterwards.
  std::atomic<int> ok{0};
  pool.parallel_for(100, [&](std::size_t, unsigned) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 100);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.parallel_for(64, 1, [&](std::size_t, unsigned) {
    pool.parallel_for(10, [&](std::size_t, unsigned) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 640);
}

TEST(ThreadPool, SingleWorkerPool) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t count = 0;
  pool.parallel_for(1000, [&](std::size_t, unsigned) { ++count; });
  EXPECT_EQ(count, 1000u);
}

TEST(Atomics, AddReturnsOldValue) {
  double d = 1.5;
  EXPECT_DOUBLE_EQ(atomic_add(d, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(d, 3.5);
  std::uint32_t u = 7;
  EXPECT_EQ(atomic_add(u, 3u), 7u);
  EXPECT_EQ(u, 10u);
}

TEST(Atomics, SubOnUnsignedWraps) {
  std::uint32_t u = 10;
  atomic_sub(u, 3u);
  EXPECT_EQ(u, 7u);
}

// atomicCAS contract, pinned per width: the return value is what was
// OBSERVED in memory, and the swap happened iff that equals `expected`
// — CUDA semantics, NOT the bool-returning std::atomic CAS. The
// checker, the hash-map claim path and the paper's Algorithm 2 all
// lean on this.
TEST(Atomics, CasSemantics) {
  std::uint32_t x = 5;
  // Success: returns expected.
  EXPECT_EQ(atomic_cas(x, 5u, 9u), 5u);
  EXPECT_EQ(x, 9u);
  // Failure: returns observed, no write.
  EXPECT_EQ(atomic_cas(x, 5u, 1u), 9u);
  EXPECT_EQ(x, 9u);
}

TEST(Atomics, CasSemanticsInt32) {
  std::int32_t x = -5;
  EXPECT_EQ(atomic_cas(x, std::int32_t{-5}, std::int32_t{9}), -5);
  EXPECT_EQ(x, 9);
  // Failure path: observed value back, memory untouched, even when
  // desired would have matched a stale expectation.
  EXPECT_EQ(atomic_cas(x, std::int32_t{-5}, std::int32_t{-1}), 9);
  EXPECT_EQ(x, 9);
  // Winning with the observed value as the new expectation.
  EXPECT_EQ(atomic_cas(x, std::int32_t{9}, std::int32_t{-7}), 9);
  EXPECT_EQ(x, -7);
}

TEST(Atomics, CasSemanticsUint64) {
  const std::uint64_t big = std::uint64_t{1} << 40;
  std::uint64_t x = big;
  EXPECT_EQ(atomic_cas(x, big, big + 1), big);
  EXPECT_EQ(x, big + 1);
  EXPECT_EQ(atomic_cas(x, big, std::uint64_t{0}), big + 1);  // failure
  EXPECT_EQ(x, big + 1);
  EXPECT_EQ(atomic_cas(x, big + 1, std::uint64_t{3}), big + 1);
  EXPECT_EQ(x, 3u);
}

TEST(Atomics, CasFailureWritesNothingUnderContention) {
  // The failure path must never store `desired`: after a lost claim the
  // slot still holds the winner's value.
  ThreadPool pool(4);
  std::uint64_t slot = ~std::uint64_t{0};
  std::atomic<std::uint64_t> winner_value{0};
  pool.parallel_for(10000, 1, [&](std::size_t i, unsigned) {
    const auto mine = static_cast<std::uint64_t>(i + 1);
    if (atomic_cas(slot, ~std::uint64_t{0}, mine) == ~std::uint64_t{0}) {
      winner_value.store(mine);
    }
  });
  EXPECT_EQ(slot, winner_value.load());
}

TEST(Atomics, MinMax) {
  std::uint64_t x = 50;
  atomic_min(x, std::uint64_t{10});
  EXPECT_EQ(x, 10u);
  atomic_min(x, std::uint64_t{99});
  EXPECT_EQ(x, 10u);
  atomic_max(x, std::uint64_t{77});
  EXPECT_EQ(x, 77u);
}

TEST(Atomics, ConcurrentDoubleSumIsExactForIntegers) {
  ThreadPool pool(4);
  double sum = 0;
  pool.parallel_for(100000, [&](std::size_t, unsigned) { atomic_add(sum, 1.0); });
  EXPECT_DOUBLE_EQ(sum, 100000.0);
}

TEST(Atomics, ConcurrentCasClaimsExactlyOnce) {
  ThreadPool pool(4);
  std::uint32_t slot = 0xFFFFFFFFu;
  std::atomic<int> winners{0};
  pool.parallel_for(10000, 1, [&](std::size_t i, unsigned) {
    const auto claimed = static_cast<std::uint32_t>(i);
    if (atomic_cas(slot, 0xFFFFFFFFu, claimed) == 0xFFFFFFFFu) {
      winners.fetch_add(1);
    }
  });
  EXPECT_EQ(winners.load(), 1);
  EXPECT_NE(slot, 0xFFFFFFFFu);
}

TEST(LaneGroup, StridedForVisitsAllOnce) {
  for (unsigned lanes : {1u, 2u, 4u, 8u, 32u, 128u}) {
    LaneGroup g(lanes);
    std::vector<int> hits(1000, 0);
    g.strided_for(1000, [&](unsigned lane, std::size_t idx) {
      EXPECT_EQ(idx % lanes, lane);  // interleaved assignment
      ++hits[idx];
    });
    for (int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(LaneGroup, StridedForWarpOrder) {
  LaneGroup g(4);
  std::vector<std::size_t> order;
  g.strided_for(10, [&](unsigned, std::size_t idx) { order.push_back(idx); });
  // Round 0: 0 1 2 3; round 1: 4 5 6 7; round 2: 8 9.
  const std::vector<std::size_t> expect{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(order, expect);
}

TEST(LaneGroup, ReduceSum) {
  LaneGroup g(8);
  std::vector<int> vals{1, 2, 3, 4, 5, 6, 7, 8};
  const int total = g.reduce(std::span<int>(vals), [](int a, int b) { return a + b; });
  EXPECT_EQ(total, 36);
}

TEST(LaneGroup, ReduceMaxSingleLane) {
  LaneGroup g(1);
  std::vector<int> vals{42};
  EXPECT_EQ(g.reduce(std::span<int>(vals), [](int a, int b) { return std::max(a, b); }), 42);
}

TEST(LaneGroup, ExclusiveScan) {
  LaneGroup g(4);
  std::vector<std::uint64_t> counts{3, 0, 2, 5};
  const auto total = g.exclusive_scan(std::span<std::uint64_t>(counts));
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{0, 3, 3, 5}));
}

TEST(SharedArena, SharedThenSpill) {
  SharedArena arena(1024);
  auto a = arena.alloc<double>(64);  // 512 bytes -> shared
  EXPECT_EQ(arena.spills(), 0u);
  auto b = arena.alloc<double>(64);  // another 512 -> fits exactly
  EXPECT_EQ(arena.spills(), 0u);
  auto c = arena.alloc<double>(8);  // no room -> spill
  EXPECT_EQ(arena.spills(), 1u);
  // All three must be disjoint and writable.
  a[0] = 1;
  b[0] = 2;
  c[0] = 3;
  EXPECT_EQ(a[0] + b[0] + c[0], 6);
}

TEST(SharedArena, SpillSpansSurviveLaterAllocations) {
  SharedArena arena(64);
  auto first = arena.alloc_global<std::uint32_t>(100);
  first[99] = 7;
  // Force many more overflow allocations; `first` must stay valid.
  for (int i = 0; i < 200; ++i) {
    auto more = arena.alloc_global<std::uint32_t>(100000);
    more[0] = static_cast<std::uint32_t>(i);
  }
  EXPECT_EQ(first[99], 7u);
}

TEST(SharedArena, ResetReclaims) {
  SharedArena arena(1024);
  arena.alloc<double>(100);  // spills (800 > ... fits actually 800<1024) -> no
  arena.alloc<double>(100);  // 1600 total -> spills
  const auto spills_before = arena.spills();
  arena.reset();
  auto again = arena.alloc<double>(100);
  again[0] = 1.0;
  EXPECT_EQ(arena.spills(), spills_before);  // reset does not clear counter
  EXPECT_EQ(arena.shared_used() > 0, true);
}

// --- SharedArena exhaustion: a request larger than the shared
// capacity must take the diagnosable global-memory fallback (the
// paper's largest-bucket path), never UB.

TEST(SharedArena, OverCapacityRequestFallsBackToGlobal) {
  SharedArena arena(1024);
  auto big = arena.alloc<double>(1024);  // 8 KiB against 1 KiB shared
  ASSERT_EQ(big.size(), 1024u);
  EXPECT_EQ(arena.spills(), 1u);           // the diagnosis
  EXPECT_EQ(arena.shared_used(), 0u);      // shared region untouched
  big[0] = 1.0;                            // span fully writable
  big[1023] = 2.0;
  EXPECT_DOUBLE_EQ(big[0] + big[1023], 3.0);
  // The fallback must not corrupt later in-capacity allocations.
  auto small = arena.alloc<double>(8);
  small[7] = 5.0;
  EXPECT_DOUBLE_EQ(big[1023], 2.0);
}

TEST(SharedArena, ZeroCapacityArenaAlwaysSpillsSafely) {
  SharedArena arena(0);
  auto span = arena.alloc<std::uint32_t>(16);
  span[15] = 42;
  EXPECT_EQ(span[15], 42u);
  EXPECT_EQ(arena.spills(), 1u);
}

TEST(SharedArena, ExhaustionResetReclaimsSharedNotSpillCount) {
  SharedArena arena(256);
  (void)arena.alloc<double>(16);  // 128 B: fits
  (void)arena.alloc<double>(64);  // 512 B more: spills
  EXPECT_EQ(arena.spills(), 1u);
  arena.reset();
  auto again = arena.alloc<double>(16);
  again[0] = 1.0;
  EXPECT_EQ(arena.spills(), 1u);  // counter is cumulative diagnostics
  EXPECT_GT(arena.shared_used(), 0u);
}

TEST(Device, KernelOverSharedBytesIsDiagnosableViaSpills) {
  // Every task requests 16x the configured shared memory; all of them
  // must complete correctly and each must tick the spill counter.
  Device device({.worker_threads = 2, .shared_bytes = 256});
  std::vector<std::atomic<int>> ok(64);
  device.launch(64, [&](TaskContext& ctx) {
    auto span = ctx.shared().alloc<double>(512);  // 4 KiB
    span[0] = static_cast<double>(ctx.task());
    span[511] = 1.0;
    if (span[0] == static_cast<double>(ctx.task())) {
      ok[ctx.task()].fetch_add(1);
    }
  });
  for (auto& o : ok) ASSERT_EQ(o.load(), 1);
  EXPECT_EQ(device.total_spills(), 64u);
  device.clear_spills();
  EXPECT_EQ(device.total_spills(), 0u);
}

TEST(Device, LaunchRunsEveryTask) {
  Device device({.worker_threads = 4});
  std::vector<std::atomic<int>> hits(5000);
  device.launch(5000, [&](TaskContext& ctx) { hits[ctx.task()].fetch_add(1); });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Device, ArenaIsResetBetweenTasks) {
  Device device({.worker_threads = 2, .shared_bytes = 4096});
  std::atomic<std::uint64_t> spill_tasks{0};
  device.launch(1000, [&](TaskContext& ctx) {
    // 2048 bytes per task: only fits if the arena was reset.
    auto span = ctx.shared().alloc<double>(256);
    span[0] = 1;
    if (ctx.shared().spills()) spill_tasks.fetch_add(1);
  });
  EXPECT_EQ(device.total_spills(), 0u);
}

TEST(Device, ForEachCoversRange) {
  Device device({.worker_threads = 3});
  std::vector<std::atomic<int>> hits(777);
  device.for_each(777, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Device, ConfigDefaultsMatchPaper) {
  Device device;
  EXPECT_EQ(device.config().warp_size, 32u);
  EXPECT_EQ(device.config().block_threads, 128u);  // 4 warps per block
  EXPECT_EQ(device.config().shared_bytes, 48u * 1024u);  // Kepler SM
}

// --- Backend selection: names round-trip, unknown names are rejected
// (the CLI's exit-2 path leans on parse_backend returning false), and
// kAuto always resolves to a concrete substrate.

TEST(Backend, ParseRoundTripsAndRejectsUnknown) {
  Backend b = Backend::kAuto;
  EXPECT_TRUE(parse_backend("scalar", b));
  EXPECT_EQ(b, Backend::kScalar);
  EXPECT_TRUE(parse_backend("vector", b));
  EXPECT_EQ(b, Backend::kVector);
  EXPECT_TRUE(parse_backend("auto", b));
  EXPECT_EQ(b, Backend::kAuto);
  b = Backend::kScalar;
  EXPECT_FALSE(parse_backend("avx512", b));
  EXPECT_EQ(b, Backend::kScalar);  // left alone on failure
  EXPECT_FALSE(parse_backend("", b));
  for (Backend x : {Backend::kScalar, Backend::kVector, Backend::kAuto}) {
    Backend y = Backend::kScalar;
    EXPECT_TRUE(parse_backend(backend_name(x), y));
    EXPECT_EQ(y, x);
  }
}

TEST(Backend, ResolveIsConcreteAndIdempotent) {
  const Backend resolved = resolve_backend(Backend::kAuto);
  EXPECT_NE(resolved, Backend::kAuto);
  EXPECT_EQ(resolved,
            cpu_has_avx2() ? Backend::kVector : Backend::kScalar);
  // Explicit requests pass through (kVector is safe without AVX2 —
  // the vector primitives fall back to their scalar-emulation twins).
  EXPECT_EQ(resolve_backend(Backend::kScalar), Backend::kScalar);
  EXPECT_EQ(resolve_backend(Backend::kVector), Backend::kVector);
  EXPECT_EQ(resolve_backend(Backend::kAuto), resolved);  // cached probe
}

TEST(Device, BackendIsResolvedAtConstruction) {
  Device def;
  EXPECT_NE(def.backend(), Backend::kAuto);  // kAuto never escapes
  ScalarDevice scalar;
  EXPECT_EQ(scalar.backend(), Backend::kScalar);
  VectorDevice vector;
  EXPECT_EQ(vector.backend(), Backend::kVector);
  // The named subclasses keep the rest of the config intact.
  ScalarDevice custom({.worker_threads = 2, .shared_bytes = 256});
  EXPECT_EQ(custom.backend(), Backend::kScalar);
  EXPECT_EQ(custom.config().shared_bytes, 256u);
}

// --- Reduce/scan preconditions (documented on LaneGroup): the span is
// always FULL lane width, and lanes idled by a partial final round must
// hold the combine identity (reduce) or zero (scan). These tests pin
// the kernel-side discipline that makes the offset-halving tree safe.

TEST(LaneGroup, PartialFinalRoundReduceWithIdleLaneIdentity) {
  // n = 5 over 8 lanes: lanes 5..7 never see an element, so the kernel
  // leaves their slots at the identity. The tree must still produce the
  // true max (idle lanes must not win) and the true sum.
  FixedLaneGroup<8> g;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> best(8, kNegInf);
  std::vector<double> sums(8, 0.0);
  const double vals[5] = {0.25, -1.0, 7.5, 3.0, 0.5};
  g.strided_for(5, [&](unsigned lane, std::size_t idx) {
    best[lane] = std::max(best[lane], vals[idx]);
    sums[lane] += vals[idx];
  });
  EXPECT_DOUBLE_EQ(
      g.reduce(std::span<double>(best),
               [](double a, double b) { return std::max(a, b); }),
      7.5);
  EXPECT_DOUBLE_EQ(g.reduce(std::span<double>(sums),
                            [](double a, double b) { return a + b; }),
                   10.25);
}

TEST(LaneGroup, PartialFinalRoundExclusiveScanWithIdleZeros) {
  // 10 items over 8 lanes: the second round is partial (lanes 2..7
  // idle). Counts land as {2,2,1,1,1,1,1,1}; idle-in-final-round lanes
  // still hold their earlier counts, and a lane that never counted
  // holds zero — both legal under the documented precondition.
  FixedLaneGroup<8> g;
  std::vector<std::uint64_t> counts(8, 0);
  g.strided_for(10, [&](unsigned lane, std::size_t) { ++counts[lane]; });
  const auto total = g.exclusive_scan(std::span<std::uint64_t>(counts));
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(counts,
            (std::vector<std::uint64_t>{0, 2, 4, 5, 6, 7, 8, 9}));
}

TEST(LaneGroup, RuntimeWidthsArePowersOfTwo) {
  // The runtime-width group accepts exactly the paper's bucket widths;
  // the power-of-two contract itself is a (debug-build) assertion plus
  // the FixedLaneGroup static_assert, so here we just pin that every
  // supported width round-trips through reduce correctly at full width.
  for (unsigned lanes : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    LaneGroup g(lanes);
    std::vector<std::uint64_t> ones(lanes, 1);
    EXPECT_EQ(g.reduce(std::span<std::uint64_t>(ones),
                       [](std::uint64_t a, std::uint64_t b) { return a + b; }),
              lanes)
        << lanes;
  }
}

// --- VectorLaneGroup: same group concept, same collective semantics as
// the scalar FixedLaneGroup of equal width, plus occupancy accounting.

TEST(VectorLaneGroup, MatchesFixedLaneGroupSemantics) {
  VectorLaneGroup<8> v;
  EXPECT_TRUE(VectorLaneGroup<8>::kVector);
  EXPECT_FALSE(FixedLaneGroup<8>::kVector);
  EXPECT_EQ(v.lanes(), 8u);
  std::vector<int> hits(37, 0);
  v.strided_for(37, [&](unsigned lane, std::size_t idx) {
    EXPECT_EQ(idx % 8, lane);
    ++hits[idx];
  });
  for (int h : hits) ASSERT_EQ(h, 1);
  std::vector<std::uint64_t> counts{3, 0, 2, 5, 1, 0, 0, 4};
  std::vector<std::uint64_t> counts_ref = counts;
  const auto total = v.exclusive_scan(std::span<std::uint64_t>(counts));
  const auto total_ref =
      FixedLaneGroup<8>{}.exclusive_scan(std::span<std::uint64_t>(counts_ref));
  EXPECT_EQ(total, total_ref);
  EXPECT_EQ(counts, counts_ref);
}

TEST(VectorLaneGroup, NoteRoundsAccumulatesOccupancy) {
  VecLaneStats stats;
  VectorLaneGroup<32> v(&stats);
  v.note_rounds(20, 32);
  v.note_rounds(7, 32);
  EXPECT_EQ(stats.active, 27u);
  EXPECT_EQ(stats.slots, 64u);
  // A stats-less group must accept note_rounds as a no-op.
  VectorLaneGroup<32>{}.note_rounds(1, 8);
}

// --- simt::vec primitives: parity against plain scalar references.
// On AVX2 hardware these exercise the real vector paths; under
// GLOUVAIN_NO_AVX2=1 (the CI fallback smoke) the same assertions hold
// on the scalar-emulation twins.

TEST(VecOps, GatherMatchesScalarLoop) {
  std::vector<std::uint32_t> table(1000);
  for (std::size_t i = 0; i < table.size(); ++i) {
    table[i] = static_cast<std::uint32_t>(i * 2654435761u);
  }
  std::vector<std::uint32_t> idx{0, 999, 13, 13, 500, 7, 998, 1,
                                 42, 900, 3,  77, 123, 0, 55};
  std::vector<std::uint32_t> out(idx.size(), 0);
  vec::gather_u32(idx.data(), idx.size(), table.data(), out.data());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    ASSERT_EQ(out[i], table[idx[i]]) << i;
  }
  vec::gather_u32(idx.data(), 0, table.data(), out.data());  // empty ok
}

namespace {
// Scalar reference for the fused scan: ascending slot order, the
// kernel_ops epsilon rule (1e-15 band, ties to the lowest key).
vec::BestSlot scan_ref(const std::uint32_t* keys, const double* weights,
                       const std::uint32_t* occ, std::size_t cap,
                       std::uint32_t skip_key, const double* tot, double k,
                       double inv_m2) {
  constexpr double kEps = 1e-15;
  vec::BestSlot best{-std::numeric_limits<double>::infinity(), 0xffffffffu,
                     0.0};
  for (std::size_t i = 0; i < cap; ++i) {
    const bool live = occ != nullptr ? ((occ[i >> 5] >> (i & 31)) & 1u) != 0
                                     : keys[i] != 0xffffffffu;
    if (!live) continue;
    if (keys[i] == skip_key) {
      best.d_skip = weights[i];
      continue;
    }
    const double gain = weights[i] - k * tot[keys[i]] * inv_m2;
    if (gain > best.gain + kEps ||
        (gain > best.gain - kEps && keys[i] < best.key)) {
      best.gain = gain;
      best.key = keys[i];
    }
  }
  return best;
}
}  // namespace

TEST(VecOps, ScanBestSentinelMatchesReference) {
  // 37 slots (odd tail), ~half empty, one skip slot, distinct gains.
  constexpr std::size_t kCap = 37;
  constexpr std::uint32_t kEmpty = 0xffffffffu;
  std::vector<std::uint32_t> keys(kCap, kEmpty);
  std::vector<double> weights(kCap, 0.0);
  std::vector<double> tot(64, 0.0);
  for (std::size_t c = 0; c < tot.size(); ++c) {
    tot[c] = 1.0 + 0.37 * static_cast<double>(c);
  }
  for (std::size_t i = 0; i < kCap; i += 2) {
    keys[i] = static_cast<std::uint32_t>((i * 7) % 60);
    weights[i] = 0.5 + 0.11 * static_cast<double>(i);
  }
  keys[8] = 42;  // the skip slot
  weights[8] = 3.25;
  const double k = 5.0;
  const double inv_m2 = 1.0 / 256.0;
  const auto got = vec::scan_best_sentinel(keys.data(), weights.data(), kCap,
                                           42, tot.data(), k, inv_m2);
  const auto want = scan_ref(keys.data(), weights.data(), nullptr, kCap, 42,
                             tot.data(), k, inv_m2);
  EXPECT_EQ(got.key, want.key);
  EXPECT_DOUBLE_EQ(got.gain, want.gain);
  EXPECT_DOUBLE_EQ(got.d_skip, 3.25);
}

TEST(VecOps, ScanBestSentinelExactTieGoesToLowestKey) {
  // Two slots with bitwise-identical gains in different vector lanes:
  // the fold order differs between backends, but the epsilon tie rule
  // must still hand the win to the lowest community id.
  constexpr std::uint32_t kEmpty = 0xffffffffu;
  std::vector<std::uint32_t> keys(16, kEmpty);
  std::vector<double> weights(16, 0.0);
  std::vector<double> tot(16, 2.0);  // equal tot -> equal gains
  keys[3] = 9;
  weights[3] = 1.5;
  keys[13] = 4;  // same gain, lower key, later slot, different lane
  weights[13] = 1.5;
  const auto got = vec::scan_best_sentinel(keys.data(), weights.data(), 16,
                                           1000, tot.data(), 3.0, 1.0 / 64.0);
  EXPECT_EQ(got.key, 4u);
  EXPECT_DOUBLE_EQ(got.gain, 1.5 - 3.0 * 2.0 / 64.0);
  EXPECT_DOUBLE_EQ(got.d_skip, 0.0);
}

TEST(VecOps, ScanBestSentinelAllEmptyAndAllSkip) {
  constexpr std::uint32_t kEmpty = 0xffffffffu;
  std::vector<std::uint32_t> keys(32, kEmpty);
  std::vector<double> weights(32, 7.0);
  std::vector<double> tot(4, 1.0);
  auto got = vec::scan_best_sentinel(keys.data(), weights.data(), 32, 2,
                                     tot.data(), 1.0, 0.5);
  EXPECT_EQ(got.key, kEmpty);  // nothing found
  EXPECT_DOUBLE_EQ(got.d_skip, 0.0);
  keys[17] = 2;  // only the skip key present
  weights[17] = 2.5;
  got = vec::scan_best_sentinel(keys.data(), weights.data(), 32, 2, tot.data(),
                                1.0, 0.5);
  EXPECT_EQ(got.key, kEmpty);
  EXPECT_DOUBLE_EQ(got.d_skip, 2.5);
}

TEST(VecOps, ScanBestOccMatchesReferenceWithGarbageDeadSlots) {
  // Occupancy layout: dead slots deliberately hold garbage keys that
  // would win the argmax if the mask leaked.
  constexpr std::size_t kCap = 64;
  std::vector<std::uint32_t> keys(kCap, 3);   // garbage: a real key id
  std::vector<double> weights(kCap, 1e9);     // garbage: huge gain
  std::vector<std::uint32_t> occ((kCap + 31) / 32, 0);
  std::vector<double> tot(64, 0.0);
  for (std::size_t c = 0; c < tot.size(); ++c) {
    tot[c] = 0.5 + 0.21 * static_cast<double>(c);
  }
  const std::size_t live[] = {0, 5, 8, 21, 22, 23, 40, 63};
  for (std::size_t i : live) {
    occ[i >> 5] |= (1u << (i & 31));
    keys[i] = static_cast<std::uint32_t>((i * 11) % 50);
    weights[i] = 0.25 + 0.07 * static_cast<double>(i);
  }
  const double k = 2.0;
  const double inv_m2 = 1.0 / 128.0;
  const auto got =
      vec::scan_best_occ(keys.data(), weights.data(), occ.data(), kCap,
                         keys[21], tot.data(), k, inv_m2);
  const auto want = scan_ref(keys.data(), weights.data(), occ.data(), kCap,
                             keys[21], tot.data(), k, inv_m2);
  EXPECT_EQ(got.key, want.key);
  EXPECT_DOUBLE_EQ(got.gain, want.gain);
  EXPECT_DOUBLE_EQ(got.d_skip, want.d_skip);
}

TEST(VecOps, RowInternalWeightMatchesScalarSum) {
  constexpr std::size_t kDeg = 103;  // odd tail past the 4-wide rounds
  std::vector<std::uint32_t> adj(kDeg);
  std::vector<double> w(kDeg);
  std::vector<std::uint32_t> community(200);
  for (std::size_t i = 0; i < community.size(); ++i) {
    community[i] = static_cast<std::uint32_t>(i % 7);
  }
  double want = 0.0;
  for (std::size_t i = 0; i < kDeg; ++i) {
    adj[i] = static_cast<std::uint32_t>((i * 13) % community.size());
    w[i] = 1.0 + static_cast<double>(i % 5);  // small ints: sum is exact
    if (community[adj[i]] == 3u) want += w[i];
  }
  EXPECT_DOUBLE_EQ(
      vec::row_internal_weight(adj.data(), w.data(), kDeg, community.data(), 3),
      want);
  EXPECT_DOUBLE_EQ(
      vec::row_internal_weight(adj.data(), w.data(), 0, community.data(), 3),
      0.0);
}

}  // namespace
}  // namespace glouvain::simt
