# Exit-code contract smoke, run by ctest: every failure class the CLI
# documents in `glouvain --help` (the util::Status table) must come back
# as that exact process exit code from a real invocation. Guards the
# code table in usage()/README against drifting from util::exit_code.
#
# Expects: GLOUVAIN, WORK_DIR.
foreach(var GLOUVAIN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_cli_codes.cmake: ${var} not set")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(graph "${WORK_DIR}/cli_codes_graph.bin")

# expect(<code> <description> <arg...>): run glouvain, require the code.
function(expect code description)
  execute_process(COMMAND "${GLOUVAIN}" ${ARGN}
    RESULT_VARIABLE rv OUTPUT_QUIET ERROR_QUIET)
  if(NOT rv EQUAL ${code})
    message(FATAL_ERROR
      "${description}: expected exit ${code}, got ${rv} (glouvain ${ARGN})")
  endif()
  message(STATUS "ok [${code}] ${description}")
endfunction()

# 0 ok
expect(0 "help text" help)
expect(0 "generate a graph"
  generate --family pokec --scale 0.02 --seed 3 --out "${graph}")
expect(0 "stats on a valid graph" stats --in "${graph}")

# 1 usage error
expect(1 "no command" )
expect(1 "unknown command" frobnicate)
expect(1 "churn without --out" churn --in "${graph}")

# 0 ok: the device-backend matrix documented in --help. `vector` on a
# machine without AVX2 silently runs the scalar-emulation twins, so all
# three names succeed everywhere.
expect(0 "detect with --device scalar"
  detect --in "${graph}" --device scalar --out "${WORK_DIR}/cli_scalar.part")
expect(0 "detect with --device vector"
  detect --in "${graph}" --device vector --out "${WORK_DIR}/cli_vector.part")
expect(0 "detect with --device auto"
  detect --in "${graph}" --device auto --out "${WORK_DIR}/cli_auto.part")

# 2 invalid argument
expect(2 "detect without --in" detect)
expect(2 "unknown detect backend" detect --in "${graph}" --backend bogus)
expect(2 "unknown device backend" detect --in "${graph}" --device avx512)
expect(2 "unknown table layout" detect --in "${graph}" --table cuckoo)
set(deltas "${WORK_DIR}/cli_codes.deltas")
file(WRITE "${deltas}" "batch 1\n+ 0 1\n")
expect(2 "unknown stream backend"
  stream --in "${graph}" --deltas "${deltas}" --backend bogus)

# 3 not found
expect(3 "detect on a missing graph" detect --in "${WORK_DIR}/absent.bin")
expect(3 "stream with missing deltas"
  stream --in "${graph}" --deltas "${WORK_DIR}/absent.deltas")
