# End-to-end smoke for the observability pipeline, run by ctest:
#   generate a small suite graph, run `glouvain detect --trace`, then
#   validate the emitted JSON against schemas/trace.schema.json and
#   require the stage spans the ISSUE names (binning, degree-bucket
#   kernels, commit, aggregation).
#
# Expects: GLOUVAIN, TRACE_CHECK, SCHEMA, WORK_DIR.
foreach(var GLOUVAIN TRACE_CHECK SCHEMA WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_trace_smoke.cmake: ${var} not set")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(graph "${WORK_DIR}/smoke_graph.bin")
set(trace "${WORK_DIR}/smoke_trace.json")

execute_process(
  COMMAND "${GLOUVAIN}" generate --family pokec --scale 0.05 --seed 7
          --out "${graph}"
  RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "glouvain generate failed (${rv})")
endif()

execute_process(
  COMMAND "${GLOUVAIN}" detect --in "${graph}" --backend core
          --trace "${trace}" --threads 2
  RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "glouvain detect --trace failed (${rv})")
endif()

execute_process(
  COMMAND "${TRACE_CHECK}" --schema "${SCHEMA}" --trace "${trace}"
          --require modopt/binning --require modopt/bucket
          --require modopt/commit --require modopt/sweep
          --require aggregate --require aggregate/bucket --require fold
  RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "trace_check failed (${rv})")
endif()
