// Tests for the util::Status error vocabulary and its adoption by the
// graph I/O layer (try_* loaders with distinct failure codes).
#include "util/status.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "graph/builder.hpp"
#include "graph/io.hpp"

namespace glouvain {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(Status, OkByDefault) {
  util::Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kOk);
  EXPECT_EQ(util::exit_code(s), 0);
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const util::Status s = util::Status::invalid_argument("bad flag");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad flag");
  EXPECT_NE(s.to_string().find("bad flag"), std::string::npos);
}

TEST(Status, ExitCodesAreDistinct) {
  EXPECT_EQ(util::exit_code(util::Status::invalid_argument("")), 2);
  EXPECT_EQ(util::exit_code(util::Status::not_found("")), 3);
  EXPECT_EQ(util::exit_code(util::Status::io_error("")), 4);
  EXPECT_NE(util::exit_code(util::Status::resource_exhausted("")),
            util::exit_code(util::Status::deadline_exceeded("")));
  EXPECT_NE(util::exit_code(util::Status::cancelled("")),
            util::exit_code(util::Status::internal("")));
}

TEST(StatusOr, HoldsValueOrStatus) {
  util::StatusOr<int> ok_value = 42;
  ASSERT_TRUE(ok_value.ok());
  EXPECT_EQ(*ok_value, 42);

  util::StatusOr<int> err = util::Status::not_found("missing");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), util::StatusCode::kNotFound);
  EXPECT_THROW((void)err.value(), std::logic_error);
}

TEST(GraphIoStatus, MissingFileIsNotFound) {
  const auto r = graph::try_load_edge_list(temp_path("definitely_absent.txt"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kNotFound);
  EXPECT_NE(r.status().message().find("cannot open"), std::string::npos);
}

TEST(GraphIoStatus, MalformedEdgeLineIsInvalidArgument) {
  const std::string path = temp_path("bad_edges.txt");
  std::ofstream(path) << "0 1\nnot numbers\n";
  const auto r = graph::try_load_edge_list(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(GraphIoStatus, BadBinaryMagicIsInvalidArgument) {
  const std::string path = temp_path("bad_magic.bin");
  std::ofstream(path, std::ios::binary) << "NOTMAGIC and some bytes";
  const auto r = graph::try_load_binary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(GraphIoStatus, TruncatedBinaryIsIoError) {
  const std::string good = temp_path("roundtrip.bin");
  graph::Csr g = graph::build_csr({{0, 1, 1.0}, {1, 2, 2.0}, {2, 0, 1.0}});
  ASSERT_TRUE(graph::try_save_binary(g, good).ok());

  std::ifstream in(good, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const std::string cut = temp_path("truncated.bin");
  std::ofstream(cut, std::ios::binary) << bytes.substr(0, bytes.size() - 8);

  const auto r = graph::try_load_binary(cut);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kIoError);
}

TEST(GraphIoStatus, BinaryRoundTripIsOk) {
  const std::string path = temp_path("ok_roundtrip.bin");
  graph::Csr g = graph::build_csr({{0, 1, 1.0}, {1, 2, 2.0}, {2, 0, 1.0}});
  ASSERT_TRUE(graph::try_save_binary(g, path).ok());
  const auto r = graph::try_load_binary(path);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->num_vertices(), g.num_vertices());
  EXPECT_EQ(r->num_edges(), g.num_edges());
}

TEST(GraphIoStatus, AutoDispatchPropagatesStatus) {
  const auto missing = graph::try_load_auto(temp_path("absent.mtx"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);

  const std::string path = temp_path("not_mm.mtx");
  std::ofstream(path) << "this is not a MatrixMarket file\n";
  const auto bad = graph::try_load_auto(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(GraphIoStatus, ThrowingWrappersPreserveMessages) {
  try {
    (void)graph::load_edge_list(temp_path("gone.txt"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

}  // namespace
}  // namespace glouvain
