// Tests for degree binning and the bucket schemes of §4.1.
#include <gtest/gtest.h>

#include <set>

#include "core/buckets.hpp"
#include "gen/rmat.hpp"
#include "graph/ops.hpp"

namespace glouvain::core {
namespace {

using graph::EdgeIdx;
using graph::VertexId;

TEST(BucketScheme, PaperModoptBoundaries) {
  const auto scheme = BucketScheme::paper_modopt();
  EXPECT_EQ(scheme.num_buckets(), 7u);
  EXPECT_EQ(scheme.bucket_of(1), 0u);
  EXPECT_EQ(scheme.bucket_of(4), 0u);
  EXPECT_EQ(scheme.bucket_of(5), 1u);
  EXPECT_EQ(scheme.bucket_of(8), 1u);
  EXPECT_EQ(scheme.bucket_of(16), 2u);
  EXPECT_EQ(scheme.bucket_of(17), 3u);
  EXPECT_EQ(scheme.bucket_of(32), 3u);
  EXPECT_EQ(scheme.bucket_of(84), 4u);
  EXPECT_EQ(scheme.bucket_of(85), 5u);
  EXPECT_EQ(scheme.bucket_of(319), 5u);
  EXPECT_EQ(scheme.bucket_of(320), 6u);
  EXPECT_EQ(scheme.bucket_of(1000000), 6u);
  // Lane assignment: 2^{k+1} threads for groups 1-4, warp, block, block.
  EXPECT_EQ(scheme.lanes[0], 4u);
  EXPECT_EQ(scheme.lanes[3], 32u);
  EXPECT_EQ(scheme.lanes[4], 32u);
  EXPECT_EQ(scheme.lanes[5], 128u);
  EXPECT_EQ(scheme.lanes[6], 128u);
  EXPECT_EQ(scheme.global_from, 6u);  // only the last bucket off-chip
}

TEST(BucketScheme, PaperAggregationBoundaries) {
  const auto scheme = BucketScheme::paper_aggregation();
  EXPECT_EQ(scheme.num_buckets(), 3u);
  EXPECT_EQ(scheme.bucket_of(1), 0u);
  EXPECT_EQ(scheme.bucket_of(127), 0u);
  EXPECT_EQ(scheme.bucket_of(128), 1u);
  EXPECT_EQ(scheme.bucket_of(479), 1u);
  EXPECT_EQ(scheme.bucket_of(480), 2u);
}

TEST(BucketScheme, AblationSchemes) {
  EXPECT_EQ(BucketScheme::single_lane().num_buckets(), 1u);
  EXPECT_EQ(BucketScheme::single_lane().lanes[0], 1u);
  EXPECT_EQ(BucketScheme::warp_per_vertex().lanes[0], 32u);
}

TEST(BinByKey, EveryItemInItsBucket) {
  gen::RmatParams p;
  p.scale = 12;
  p.edge_factor = 12;
  const auto g = gen::rmat(p, 7);
  const auto scheme = BucketScheme::paper_modopt();
  const Binned binned = bin_by_key(
      g.num_vertices(), scheme, [&](VertexId v) { return g.degree(v); });

  // Partition property: every vertex exactly once.
  std::set<VertexId> seen;
  for (auto v : binned.order) EXPECT_TRUE(seen.insert(v).second);
  EXPECT_EQ(seen.size(), g.num_vertices());

  // Bucket membership respects the scheme boundaries.
  for (std::size_t b = 0; b < scheme.num_buckets(); ++b) {
    for (auto v : binned.bucket(b)) {
      EXPECT_EQ(scheme.bucket_of(g.degree(v)), b) << "v=" << v;
    }
  }
}

TEST(BinByKey, HeavyBucketSortedDescending) {
  gen::RmatParams p;
  p.scale = 13;
  p.edge_factor = 16;
  const auto g = gen::rmat(p, 9);
  const auto scheme = BucketScheme::paper_modopt();
  const Binned binned = bin_by_key(
      g.num_vertices(), scheme, [&](VertexId v) { return g.degree(v); });
  auto heavy = binned.bucket(scheme.num_buckets() - 1);
  ASSERT_GT(heavy.size(), 0u) << "R-MAT should produce >319-degree hubs";
  for (std::size_t i = 0; i + 1 < heavy.size(); ++i) {
    EXPECT_GE(g.degree(heavy[i]), g.degree(heavy[i + 1]));
  }
}

TEST(BinByKey, StableWithinIntermediateBuckets) {
  // Equal-degree vertices keep id order in non-final buckets (stable
  // partition), which pins down deterministic processing order.
  const auto g = gen::rmat({.scale = 10, .edge_factor = 8}, 3);
  const auto scheme = BucketScheme::paper_modopt();
  const Binned binned = bin_by_key(
      g.num_vertices(), scheme, [&](VertexId v) { return g.degree(v); });
  for (std::size_t b = 0; b + 1 < scheme.num_buckets(); ++b) {
    auto bucket = binned.bucket(b);
    for (std::size_t i = 0; i + 1 < bucket.size(); ++i) {
      EXPECT_LT(bucket[i], bucket[i + 1]);  // stable = increasing ids
    }
  }
}

TEST(BinByKey, SingleBucketScheme) {
  const Binned binned = bin_by_key(100, BucketScheme::single_lane(),
                                   [](VertexId v) { return v; });
  EXPECT_EQ(binned.begin[0], 0u);
  EXPECT_EQ(binned.begin[1], 100u);
}

TEST(BinByKey, EmptyInput) {
  const Binned binned = bin_by_key(0, BucketScheme::paper_modopt(),
                                   [](VertexId) { return 1; });
  EXPECT_TRUE(binned.order.empty());
  EXPECT_EQ(binned.begin.size(), 8u);
}

}  // namespace
}  // namespace glouvain::core
