// Tests for the GPU-style aggregation phase (Algorithm 3): it must
// produce exactly the same contracted graph as the sequential reference
// contraction, for arbitrary partitions.
#include <gtest/gtest.h>

#include "core/aggregate.hpp"
#include "gen/er.hpp"
#include "gen/rmat.hpp"
#include "gen/sbm.hpp"
#include "graph/builder.hpp"
#include "graph/ops.hpp"
#include "metrics/modularity.hpp"
#include "util/prng.hpp"

namespace glouvain::core {
namespace {

using graph::Community;
using graph::Csr;
using graph::VertexId;

std::vector<Community> random_partition(VertexId n, Community blocks,
                                        std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Community> part(n);
  for (auto& c : part) {
    // Labels must be < n; pick random representatives among [0, n).
    c = static_cast<Community>(rng.next_below(blocks) * (n / blocks));
  }
  return part;
}

class AggregateVsReference
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, AggregateVsReference,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),   // graph seed
                       ::testing::Values(4, 17, 64)));  // block count

TEST_P(AggregateVsReference, MatchesSequentialContraction) {
  const auto [seed, blocks] = GetParam();
  const Csr g = gen::erdos_renyi(400, 2400, 100 + seed);
  const auto part = random_partition(g.num_vertices(), blocks, 200 + seed);

  simt::Device device;
  Config cfg;
  const AggregationResult got = aggregate(device, g, cfg, part);
  std::vector<VertexId> ref_new_id;
  const Csr expect = graph::contract_reference(g, part, &ref_new_id);

  ASSERT_EQ(got.contracted.num_vertices(), expect.num_vertices());
  EXPECT_EQ(got.contracted, expect);  // identical arrays, rows sorted
  // new_id maps agree wherever defined.
  for (std::size_t c = 0; c < ref_new_id.size(); ++c) {
    if (ref_new_id[c] != graph::kInvalidVertex) {
      EXPECT_EQ(got.new_id[c], ref_new_id[c]) << c;
    }
  }
}

TEST(Aggregate, IdentityPartitionGivesIsomorphicGraph) {
  const Csr g = gen::erdos_renyi(200, 900, 5);
  std::vector<Community> identity(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) identity[v] = v;
  simt::Device device;
  const AggregationResult agg = aggregate(device, g, Config{}, identity);
  EXPECT_EQ(agg.contracted, g);
}

TEST(Aggregate, AllOneCommunity) {
  const Csr g = gen::erdos_renyi(100, 500, 7);
  std::vector<Community> one(g.num_vertices(), 0);
  simt::Device device;
  const AggregationResult agg = aggregate(device, g, Config{}, one);
  EXPECT_EQ(agg.contracted.num_vertices(), 1u);
  EXPECT_EQ(agg.contracted.num_loops(), 1u);
  EXPECT_NEAR(agg.contracted.total_weight(), g.total_weight(), 1e-9);
}

TEST(Aggregate, PreservesTotalWeight) {
  gen::RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  const Csr g = gen::rmat(p, 11);
  const auto part = random_partition(g.num_vertices(), 97, 13);
  simt::Device device;
  const AggregationResult agg = aggregate(device, g, Config{}, part);
  EXPECT_NEAR(agg.contracted.total_weight(), g.total_weight(), 1e-6);
  EXPECT_TRUE(graph::validate(agg.contracted).empty())
      << graph::validate(agg.contracted);
}

TEST(Aggregate, ModularityInvariantAcrossContraction) {
  const Csr g = gen::planted_partition({.num_vertices = 1000,
                                        .num_communities = 10,
                                        .seed = 17})
                    .graph;
  auto part = random_partition(g.num_vertices(), 25, 19);
  const double q_before = metrics::modularity(g, part);
  simt::Device device;
  const AggregationResult agg = aggregate(device, g, Config{}, part);
  std::vector<Community> identity(agg.contracted.num_vertices());
  for (VertexId v = 0; v < agg.contracted.num_vertices(); ++v) identity[v] = v;
  EXPECT_NEAR(metrics::modularity(agg.contracted, identity), q_before, 1e-9);
}

TEST(Aggregate, SkewedCommunitySizesHitAllBuckets) {
  // One giant community (degree sum > 479 -> global bucket), several
  // mid-size ones (warp/block shared buckets).
  gen::RmatParams p;
  p.scale = 11;
  p.edge_factor = 16;
  const Csr g = gen::rmat(p, 23);
  std::vector<Community> part(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    part[v] = v < g.num_vertices() / 2 ? 0 : (v % 37) * 41 % g.num_vertices();
  }
  // Normalize labels to valid representatives.
  for (auto& c : part) c = c % g.num_vertices();
  simt::Device device;
  const AggregationResult got = aggregate(device, g, Config{}, part);
  const Csr expect = graph::contract_reference(g, part);
  EXPECT_EQ(got.contracted, expect);
}

TEST(Aggregate, NewIdIsDenseAndOrdered) {
  const Csr g = gen::erdos_renyi(150, 600, 29);
  const auto part = random_partition(g.num_vertices(), 10, 31);
  simt::Device device;
  const AggregationResult agg = aggregate(device, g, Config{}, part);
  // Collect defined ids: must be exactly [0, k), increasing with label.
  VertexId expected = 0;
  for (std::size_t c = 0; c < agg.new_id.size(); ++c) {
    if (agg.new_id[c] != graph::kInvalidVertex) {
      EXPECT_EQ(agg.new_id[c], expected++);
    }
  }
  EXPECT_EQ(expected, agg.num_communities);
  EXPECT_EQ(expected, agg.contracted.num_vertices());
}

TEST(Aggregate, EmptyGraph) {
  const Csr g = graph::build_csr(0, {});
  simt::Device device;
  const AggregationResult agg = aggregate(device, g, Config{}, {});
  EXPECT_EQ(agg.contracted.num_vertices(), 0u);
}

TEST(Aggregate, GraphWithSelfLoopsContractsCorrectly) {
  // Self-loops must fold into the new vertex's loop once.
  const Csr g = graph::build_csr(
      4, {{0, 0, 2.0}, {0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 3, 1.5}});
  const std::vector<Community> part{0, 0, 2, 2};
  simt::Device device;
  const AggregationResult agg = aggregate(device, g, Config{}, part);
  const Csr expect = graph::contract_reference(g, part);
  EXPECT_EQ(agg.contracted, expect);
  // New community {0,1}: loop = 2*1 (internal edge) + 2 (old loop) = 4.
  EXPECT_DOUBLE_EQ(agg.contracted.loop_weight(0), 4.0);
  EXPECT_DOUBLE_EQ(agg.contracted.loop_weight(1), 2.0 + 1.5);
}

}  // namespace
}  // namespace glouvain::core
