// Tests for modularity, move gains, partition bookkeeping, NMI/ARI.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/cliques.hpp"
#include "gen/er.hpp"
#include "graph/builder.hpp"
#include "graph/ops.hpp"
#include "metrics/compare.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition.hpp"
#include "util/prng.hpp"

namespace glouvain::metrics {
namespace {

using graph::build_csr;
using graph::Community;
using graph::Csr;
using graph::VertexId;
using graph::Weight;

TEST(Modularity, SingletonPartitionOfCompleteGraph) {
  // K4, all singletons: Q = -sum (k_i/2m)^2 = -4 * (3/12)^2 = -0.25.
  const Csr g = gen::ring_of_cliques(1, 4);
  std::vector<Community> singletons{0, 1, 2, 3};
  EXPECT_NEAR(modularity(g, singletons), -0.25, 1e-12);
}

TEST(Modularity, OneBlockIsZero) {
  // Everything in one community: Q = m2/m2 - (m2/m2)^2 = 0.
  const Csr g = gen::ring_of_cliques(4, 4);
  std::vector<Community> one(g.num_vertices(), 0);
  EXPECT_NEAR(modularity(g, one), 0.0, 1e-12);
}

TEST(Modularity, TwoTrianglesBridge) {
  // Two triangles joined by one edge, split at the bridge:
  // m = 7, 2m = 14. in = 6 per triangle; tot = 7 per side.
  // Q = 12/14 - 2*(7/14)^2 = 6/7 - 1/2 = 5/14.
  const Csr g = build_csr(6, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
                              {3, 4, 1}, {4, 5, 1}, {3, 5, 1},
                              {2, 3, 1}});
  const std::vector<Community> split{0, 0, 0, 1, 1, 1};
  EXPECT_NEAR(modularity(g, split), 5.0 / 14.0, 1e-12);
}

TEST(Modularity, SelfLoopsCount) {
  // Single vertex with a self-loop, its own community: Q = 1 - 1 = 0.
  const Csr g = build_csr(1, {{0, 0, 2.0}});
  const std::vector<Community> part{0};
  EXPECT_NEAR(modularity(g, part), 0.0, 1e-12);
}

TEST(Modularity, WeightsMatter) {
  // Two vertices, one edge: both communities: Q = -0.5 regardless of w.
  for (double w : {1.0, 2.5, 10.0}) {
    const Csr g = build_csr(2, {{0, 1, w}});
    const std::vector<Community> apart{0, 1};
    EXPECT_NEAR(modularity(g, apart), -0.5, 1e-12) << w;
  }
}

TEST(Modularity, InvariantUnderContraction) {
  const Csr g = gen::erdos_renyi(300, 1200, 21);
  util::Xoshiro256 rng(3);
  std::vector<Community> part(300);
  for (auto& c : part) c = static_cast<Community>(rng.next_below(20));
  const double q_fine = modularity(g, part);

  std::vector<graph::VertexId> new_id;
  const Csr coarse = graph::contract_reference(g, part, &new_id);
  // On the contracted graph each vertex is its own community.
  std::vector<Community> identity(coarse.num_vertices());
  for (VertexId v = 0; v < coarse.num_vertices(); ++v) identity[v] = v;
  EXPECT_NEAR(modularity(coarse, identity), q_fine, 1e-9);
}

TEST(MoveGain, MatchesRecomputedDelta) {
  const Csr g = gen::erdos_renyi(120, 500, 23);
  util::Xoshiro256 rng(5);
  std::vector<Community> part(120);
  for (auto& c : part) c = static_cast<Community>(rng.next_below(10));
  const auto strengths = g.compute_strengths();

  for (int trial = 0; trial < 200; ++trial) {
    const auto v = static_cast<VertexId>(rng.next_below(120));
    const auto target = static_cast<Community>(rng.next_below(10));
    const auto tot = community_totals(g, part);
    const double predicted = move_gain(g, part, tot, strengths, v, target);

    const double before = modularity(g, part);
    auto moved = part;
    moved[v] = target;
    const double after = modularity(g, moved);
    EXPECT_NEAR(predicted, after - before, 1e-10)
        << "v=" << v << " target=" << target;
  }
}

TEST(CommunityTotals, SumToTotalWeight) {
  const Csr g = gen::erdos_renyi(200, 900, 29);
  std::vector<Community> part(200, 0);
  for (VertexId v = 0; v < 200; ++v) part[v] = v % 7;
  const auto tot = community_totals(g, part);
  Weight sum = 0;
  for (auto t : tot) sum += t;
  EXPECT_NEAR(sum, g.total_weight(), 1e-9);
}

TEST(Renumber, DenseAndOrderPreserving) {
  std::vector<Community> labels{7, 3, 7, 9, 3};
  const Community k = renumber(labels);
  EXPECT_EQ(k, 3u);
  // Increasing old label order: 3 -> 0, 7 -> 1, 9 -> 2.
  EXPECT_EQ(labels, (std::vector<Community>{1, 0, 1, 2, 0}));
}

TEST(Renumber, AlreadyDense) {
  std::vector<Community> labels{0, 1, 2, 1};
  EXPECT_EQ(renumber(labels), 3u);
  EXPECT_EQ(labels, (std::vector<Community>{0, 1, 2, 1}));
}

TEST(Flatten, ComposesLevels) {
  const std::vector<Community> lower{0, 0, 1, 2};
  const std::vector<Community> upper{5, 5, 6};
  EXPECT_EQ(flatten(lower, upper), (std::vector<Community>{5, 5, 5, 6}));
}

TEST(PartitionStats, CountsProperties) {
  const std::vector<Community> part{0, 0, 0, 1, 2, 2};
  const auto stats = partition_stats(part);
  EXPECT_EQ(stats.num_communities, 3u);
  EXPECT_EQ(stats.largest, 3u);
  EXPECT_EQ(stats.smallest, 1u);
  EXPECT_EQ(stats.singletons, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_size, 2.0);
}

TEST(Nmi, IdenticalPartitions) {
  const std::vector<Community> a{0, 0, 1, 1, 2};
  EXPECT_NEAR(nmi(a, a), 1.0, 1e-12);
}

TEST(Nmi, PermutedLabelsStillPerfect) {
  const std::vector<Community> a{0, 0, 1, 1, 2, 2};
  const std::vector<Community> b{5, 5, 9, 9, 1, 1};
  EXPECT_NEAR(nmi(a, b), 1.0, 1e-12);
}

TEST(Nmi, IndependentPartitionsNearZero) {
  // a splits by half, b alternates: knowing a tells nothing about b.
  std::vector<Community> a(1000), b(1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    a[i] = i < 500 ? 0 : 1;
    b[i] = i % 2;
  }
  EXPECT_LT(nmi(a, b), 0.01);
}

TEST(Nmi, SizeMismatchThrows) {
  const std::vector<Community> a{0, 1};
  const std::vector<Community> b{0};
  EXPECT_THROW(nmi(a, b), std::invalid_argument);
}

TEST(Ari, IdenticalIsOne) {
  const std::vector<Community> a{0, 0, 1, 1, 2};
  EXPECT_NEAR(adjusted_rand_index(a, a), 1.0, 1e-12);
}

TEST(Ari, IndependentNearZero) {
  std::vector<Community> a(2000), b(2000);
  util::Xoshiro256 rng(31);
  for (std::size_t i = 0; i < 2000; ++i) {
    a[i] = static_cast<Community>(rng.next_below(8));
    b[i] = static_cast<Community>(rng.next_below(8));
  }
  EXPECT_NEAR(adjusted_rand_index(a, b), 0.0, 0.05);
}

TEST(Ari, DisagreementLowersScore) {
  std::vector<Community> a{0, 0, 0, 1, 1, 1};
  std::vector<Community> b = a;
  b[2] = 1;  // one vertex misplaced
  const double ari = adjusted_rand_index(a, b);
  EXPECT_LT(ari, 1.0);
  EXPECT_GT(ari, 0.0);
}

}  // namespace
}  // namespace glouvain::metrics
