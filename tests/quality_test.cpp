// Tests for coverage and conductance.
#include <gtest/gtest.h>

#include "gen/cliques.hpp"
#include "graph/builder.hpp"
#include "metrics/quality.hpp"

namespace glouvain::metrics {
namespace {

using graph::build_csr;
using graph::Community;
using graph::Csr;

TEST(Coverage, AllInOneIsOne) {
  const Csr g = gen::ring_of_cliques(4, 4);
  const std::vector<Community> one(g.num_vertices(), 0);
  EXPECT_DOUBLE_EQ(coverage(g, one), 1.0);
}

TEST(Coverage, SingletonsCoverOnlyLoops) {
  const Csr g = build_csr(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 0, 2.0}});
  std::vector<Community> singletons{0, 1, 2};
  // Internal weight = the self-loop (2); total = 2*2 + 2 = 6.
  EXPECT_NEAR(coverage(g, singletons), 2.0 / 6.0, 1e-12);
}

TEST(Coverage, CliquePartition) {
  // Ring of 4 triangles: internal = 4 * 3 edges, cut = 4 bridges.
  const Csr g = gen::ring_of_cliques(4, 3);
  std::vector<Community> part(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) part[v] = v / 3;
  EXPECT_NEAR(coverage(g, part), 12.0 / 16.0, 1e-12);
}

TEST(Conductance, IsolatedCommunityIsZero) {
  // Two disjoint triangles.
  const Csr g = build_csr(6, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
                              {3, 4, 1}, {4, 5, 1}, {3, 5, 1}});
  const std::vector<Community> part{0, 0, 0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(conductance(g, part, 0), 0.0);
  EXPECT_DOUBLE_EQ(conductance(g, part, 1), 0.0);
}

TEST(Conductance, BridgedTriangles) {
  // Two triangles + 1 bridge: cut = 1, vol(c0) = 7 (6 internal arcs + bridge).
  const Csr g = build_csr(6, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
                              {3, 4, 1}, {4, 5, 1}, {3, 5, 1},
                              {2, 3, 1}});
  const std::vector<Community> part{0, 0, 0, 1, 1, 1};
  EXPECT_NEAR(conductance(g, part, 0), 1.0 / 7.0, 1e-12);
  const auto report = conductance_all(g, part);
  ASSERT_EQ(report.per_community.size(), 2u);
  EXPECT_NEAR(report.per_community[0], 1.0 / 7.0, 1e-12);
  EXPECT_NEAR(report.weighted_mean, 1.0 / 7.0, 1e-12);
}

TEST(Conductance, AllInOneIsZero) {
  const Csr g = gen::ring_of_cliques(3, 4);
  const std::vector<Community> one(g.num_vertices(), 0);
  EXPECT_DOUBLE_EQ(conductance(g, one, 0), 0.0);  // empty complement
}

TEST(Conductance, OutOfRangeCommunity) {
  const Csr g = gen::ring_of_cliques(2, 3);
  const std::vector<Community> part(g.num_vertices(), 0);
  EXPECT_DOUBLE_EQ(conductance(g, part, 99), 0.0);
}

}  // namespace
}  // namespace glouvain::metrics
