// Tests for the sharded multi-device backend: the partitioner's
// invariants (every edge owned by exactly one shard, hub replicas
// consistent with the global rows, ghost tables closed under the
// exchange plan, the phantom 2m padding), the k=1 bitwise identity
// against the core backend, quality under real sharding, and the
// fingerprint/registry integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>

#include "core/louvain.hpp"
#include "detect/detector.hpp"
#include "gen/cliques.hpp"
#include "gen/lfr.hpp"
#include "gen/rmat.hpp"
#include "gen/sbm.hpp"
#include "graph/builder.hpp"
#include "metrics/modularity.hpp"
#include "shard/engine.hpp"
#include "shard/halo.hpp"
#include "shard/partition.hpp"
#include "shard/plan_cache.hpp"
#include "simt/device_pool.hpp"
#include "svc/fingerprint.hpp"

namespace glouvain::shard {
namespace {

using graph::Community;
using graph::Csr;
using graph::EdgeIdx;
using graph::VertexId;
using graph::Weight;
using graph::kInvalidVertex;

/// Check every structural invariant of a plan against its graph.
void check_plan(const Csr& g, const Plan& plan, const PartitionConfig& pc) {
  const VertexId n = g.num_vertices();
  ASSERT_EQ(plan.owner.size(), n);
  ASSERT_EQ(plan.shards.size(), plan.num_shards);
  for (const unsigned o : plan.owner) ASSERT_LT(o, plan.num_shards);

  // Every edge owned by exactly one shard (the min-endpoint rule):
  // the per-shard owned_edges counts must tile the edge set.
  EdgeIdx owned_total = 0;
  for (const Shard& sh : plan.shards) owned_total += sh.owned_edges;
  EXPECT_EQ(owned_total, g.num_edges());

  std::vector<VertexId> seen_owner(n, kInvalidVertex);
  std::uint64_t frozen_listed = 0;
  for (unsigned s = 0; s < plan.num_shards; ++s) {
    const Shard& sh = plan.shards[s];
    const VertexId local_n = sh.num_local();
    ASSERT_EQ(sh.global_of.size(), local_n);
    ASSERT_EQ(local_n, sh.num_owned + sh.num_replica + sh.num_ghost +
                           (sh.has_phantom ? 1 : 0));

    // The phantom makes every shard's 2m equal the global 2m (modulo
    // the parallel-reduction rounding of total_weight()).
    EXPECT_GE(sh.pad_weight, 0.0);
    if (sh.has_phantom) {
      EXPECT_NEAR(sh.local.total_weight(), g.total_weight(),
                  1e-9 * g.total_weight());
    }

    // Build the global->local map of this shard.
    std::map<VertexId, VertexId> to_local;
    for (VertexId i = 0; i < local_n; ++i) {
      const VertexId v = sh.global_of[i];
      if (i + 1 == local_n && sh.has_phantom) {
        EXPECT_EQ(v, kInvalidVertex);
        continue;
      }
      ASSERT_LT(v, n);
      EXPECT_TRUE(to_local.emplace(v, i).second) << "duplicate local vertex";
    }

    for (VertexId i = 0; i < local_n; ++i) {
      const VertexId v = sh.global_of[i];
      const auto lnbr = sh.local.neighbors(i);
      const auto lwts = sh.local.weights(i);
      if (sh.has_phantom && i + 1 == local_n) {
        // Phantom: exactly one self-loop carrying the pad.
        ASSERT_EQ(lnbr.size(), 1u);
        EXPECT_EQ(lnbr[0], i);
        EXPECT_DOUBLE_EQ(lwts[0], sh.pad_weight);
        continue;
      }
      if (i < sh.num_owned) {
        // Owned: the full global row, bitwise, endpoints remapped.
        EXPECT_EQ(plan.owner[v], s);
        const auto gnbr = g.neighbors(v);
        const auto gwts = g.weights(v);
        ASSERT_EQ(lnbr.size(), gnbr.size());
        for (std::size_t e = 0; e < gnbr.size(); ++e) {
          const auto it = to_local.find(gnbr[e]);
          ASSERT_NE(it, to_local.end()) << "owned-row endpoint not local";
          EXPECT_EQ(lnbr[e], it->second);
          EXPECT_EQ(lwts[e], gwts[e]);
        }
      } else if (i < sh.num_owned + sh.num_replica) {
        // Replica (hub mirror): the split row — exactly the global
        // edges of v whose endpoint this shard owns, same weights.
        EXPECT_NE(plan.owner[v], s);
        EXPECT_GT(g.degree(v), pc.hub_degree);
        std::multiset<std::pair<VertexId, Weight>> expect;
        const auto gnbr = g.neighbors(v);
        const auto gwts = g.weights(v);
        for (std::size_t e = 0; e < gnbr.size(); ++e) {
          if (plan.owner[gnbr[e]] == s) expect.emplace(gnbr[e], gwts[e]);
        }
        std::multiset<std::pair<VertexId, Weight>> got;
        for (std::size_t e = 0; e < lnbr.size(); ++e) {
          const VertexId u = sh.global_of[lnbr[e]];
          EXPECT_EQ(plan.owner[u], s) << "split-row endpoint not owned";
          got.emplace(u, lwts[e]);
        }
        EXPECT_EQ(got, expect);
      } else {
        // Ghost: label-only, empty row. Under hubrep a hub can never
        // be a ghost (the owned neighbor guarantees a mirror); block
        // and random have no mirrors, so hub-degree ghosts are fine.
        EXPECT_NE(plan.owner[v], s);
        if (pc.strategy == detect::Partition::kHubRep) {
          EXPECT_LE(g.degree(v), pc.hub_degree);
        }
        EXPECT_EQ(lnbr.size(), 0u);
      }
    }

    // Exchange closure: every frozen non-phantom vertex appears in
    // exactly one recv list, filed under its true owner, and every
    // listed vertex is frozen here.
    ASSERT_EQ(plan.exchange.recv[s].size(), plan.num_shards);
    std::set<VertexId> frozen;
    for (VertexId i = sh.num_owned;
         i < sh.num_owned + sh.num_replica + sh.num_ghost; ++i) {
      frozen.insert(sh.global_of[i]);
    }
    std::set<VertexId> listed;
    for (unsigned p = 0; p < plan.num_shards; ++p) {
      for (const VertexId v : plan.exchange.recv[s][p]) {
        EXPECT_EQ(plan.owner[v], p);
        EXPECT_TRUE(listed.insert(v).second) << "vertex in two recv lists";
      }
      // send is the exact mirror.
      EXPECT_EQ(plan.exchange.send[p][s], plan.exchange.recv[s][p]);
    }
    EXPECT_EQ(listed, frozen);
    frozen_listed += frozen.size();

    // Every owned vertex claimed exactly once across shards.
    for (VertexId i = 0; i < sh.num_owned; ++i) {
      ASSERT_EQ(seen_owner[sh.global_of[i]], kInvalidVertex);
      seen_owner[sh.global_of[i]] = s;
    }
  }
  for (VertexId v = 0; v < n; ++v) EXPECT_EQ(seen_owner[v], plan.owner[v]);
  EXPECT_EQ(plan.exchange.values_per_round(), frozen_listed);
  std::uint64_t phantoms = 0;
  for (const Shard& sh : plan.shards) phantoms += sh.has_phantom ? 1 : 0;
  EXPECT_NEAR(plan.stats.ghost_ratio,
              static_cast<double>(frozen_listed + phantoms) / n, 1e-12);
}

TEST(Partition, InvariantsAcrossStrategiesAndCounts) {
  const Csr g = gen::rmat({.scale = 11, .edge_factor = 12}, 17);
  for (const auto strategy :
       {detect::Partition::kBlock, detect::Partition::kRandom,
        detect::Partition::kHubRep}) {
    for (const unsigned k : {2u, 3u, 8u}) {
      PartitionConfig pc;
      pc.num_shards = k;
      pc.strategy = strategy;
      pc.hub_degree = 24;  // rmat at this scale has real hubs above this
      const Plan plan = make_plan(g, pc);
      ASSERT_EQ(plan.num_shards, k);
      check_plan(g, plan, pc);
      if (strategy == detect::Partition::kHubRep) {
        EXPECT_GT(plan.stats.replicated_hubs, 0u);
      }
    }
  }
}

TEST(Partition, SingleShardIsTheInputGraph) {
  const auto bench = gen::lfr({.num_vertices = 2048, .mu = 0.2, .seed = 5});
  PartitionConfig pc;
  pc.num_shards = 1;
  const Plan plan = make_plan(bench.graph, pc);
  ASSERT_EQ(plan.num_shards, 1u);
  const Shard& sh = plan.shards[0];
  EXPECT_FALSE(sh.has_phantom);
  EXPECT_EQ(sh.num_owned, bench.graph.num_vertices());
  EXPECT_EQ(sh.num_frozen(), 0u);
  EXPECT_EQ(sh.local, bench.graph);  // bitwise: same arrays
  EXPECT_EQ(plan.stats.cut_edges, 0u);
}

TEST(Partition, MoreShardsThanVerticesClamps) {
  const auto g = gen::ring_of_cliques(2, 3);
  PartitionConfig pc;
  pc.num_shards = 100;
  const Plan plan = make_plan(g, pc);
  EXPECT_LE(plan.num_shards, g.num_vertices());
  check_plan(g, plan, pc);
}

TEST(Partition, HubRepReplicatesHighDegreeRows) {
  // A star: the hub touches every block, so hubrep must mirror it into
  // every other shard while block partitioning makes it a ghostless cut.
  std::vector<graph::Edge> edges;
  for (VertexId v = 1; v < 1025; ++v) edges.push_back({0, v, 1.0});
  const Csr g = graph::build_csr(1025, std::move(edges));
  PartitionConfig pc;
  pc.num_shards = 4;
  pc.strategy = detect::Partition::kHubRep;
  const Plan plan = make_plan(g, pc);
  check_plan(g, plan, pc);
  EXPECT_EQ(plan.stats.replicated_hubs, 1u);
  // In the leaf shards every cut edge carries the hub endpoint, which
  // is mirrored — no ghosts. The hub's own shard holds the full star
  // row, so the leaves owned elsewhere are its ghosts.
  for (unsigned s = 0; s < plan.num_shards; ++s) {
    if (s == plan.owner[0]) {
      EXPECT_EQ(plan.shards[s].num_ghost + plan.shards[s].num_owned, 1025u);
    } else {
      EXPECT_EQ(plan.shards[s].num_ghost, 0u);
      EXPECT_EQ(plan.shards[s].num_replica, 1u);
    }
  }
}

TEST(GlobalState, AccessorsRoundTrip) {
  const Csr g = graph::build_csr(4, {{0, 1, 1}, {1, 2, 2}, {2, 3, 1}});
  GlobalState gs;
  gs.reset(g.num_vertices());
  EXPECT_EQ(gs.community_of(2), 2u);
  const auto strengths = g.compute_strengths();
  gs.rebuild_tot(strengths);
  EXPECT_DOUBLE_EQ(gs.tot_of(1), 3.0);
  gs.store_label(3, 2);
  gs.rebuild_tot(strengths);
  EXPECT_DOUBLE_EQ(gs.tot_of(2), 4.0);
  EXPECT_DOUBLE_EQ(gs.tot_of(3), 0.0);
}

shard::Config pinned_config() {
  shard::Config cfg;
  cfg.threads = 2;
  cfg.device = simt::Backend::kScalar;
  return shard::to_config(cfg, cfg);
}

TEST(Engine, SingleShardBitwiseIdenticalToCore) {
  const auto bench = gen::lfr({.num_vertices = 4096, .mu = 0.25, .seed = 3});
  shard::Config cfg = pinned_config();
  cfg.shards = 1;
  const Result sharded = louvain(bench.graph, cfg);

  core::Config core_cfg = core::to_config(cfg);
  const core::Result reference = core::louvain(bench.graph, core_cfg);

  EXPECT_EQ(sharded.shards_used, 1u);
  EXPECT_EQ(sharded.community, reference.community);  // bitwise labels
  EXPECT_EQ(sharded.modularity, reference.modularity);
  ASSERT_EQ(sharded.levels.size(), reference.levels.size());
  for (std::size_t l = 0; l < sharded.levels.size(); ++l) {
    EXPECT_EQ(sharded.levels[l].vertices, reference.levels[l].vertices);
    EXPECT_EQ(sharded.levels[l].iterations, reference.levels[l].iterations);
    EXPECT_EQ(sharded.levels[l].modularity_after,
              reference.levels[l].modularity_after);
  }
}

TEST(Engine, ShardedQualityTracksCore) {
  const auto bench = gen::lfr({.num_vertices = 4096, .mu = 0.25, .seed = 7});
  const double q_core = core::louvain(bench.graph).modularity;
  for (const auto strategy :
       {detect::Partition::kBlock, detect::Partition::kHubRep}) {
    for (const unsigned k : {2u, 4u, 8u}) {
      shard::Config cfg = pinned_config();
      cfg.shards = k;
      cfg.partition = strategy;
      cfg.min_shard_vertices = 64;  // force real sharding on 4k vertices
      cfg.hub_degree = 48;
      const Result r = louvain(bench.graph, cfg);
      EXPECT_EQ(r.shards_used, k);
      EXPECT_GE(r.exchange_rounds, 1);
      EXPECT_GT(r.critical_seconds, 0.0);
      EXPECT_GT(r.modularity, 0.97 * q_core)
          << partition_name(strategy) << " k=" << k;
      EXPECT_NEAR(r.modularity,
                  metrics::modularity(bench.graph, r.community), 1e-6)
          << partition_name(strategy) << " k=" << k;
    }
  }
}

TEST(Engine, PlantedStructureSurvivesSharding) {
  const auto sbm = gen::planted_partition(
      {.num_vertices = 2048, .num_communities = 16, .seed = 9});
  shard::Config cfg = pinned_config();
  cfg.shards = 4;
  cfg.min_shard_vertices = 64;
  const Result r = louvain(sbm.graph, cfg);
  const double q_core = core::louvain(sbm.graph).modularity;
  EXPECT_GT(r.modularity, 0.97 * q_core);
  EXPECT_EQ(r.community.size(), sbm.graph.num_vertices());
}

TEST(Engine, AdaptiveCollapseOnSmallGraphs) {
  // 64 shards requested on a tiny graph: every level falls below
  // min_shard_vertices, so the run is the core-identical path.
  const auto g = gen::ring_of_cliques(8, 6);
  shard::Config cfg = pinned_config();
  cfg.shards = 64;
  const Result r = louvain(g, cfg);
  EXPECT_EQ(r.shards_used, 1u);
  EXPECT_EQ(r.exchange_rounds, 0);
  core::Config core_cfg = core::to_config(cfg);
  EXPECT_EQ(r.community, core::louvain(g, core_cfg).community);
}

TEST(Detector, RegistryRunsShardBackend) {
  const auto bench = gen::lfr({.num_vertices = 2048, .mu = 0.2, .seed = 11});
  auto detector = detect::make("shard");
  ASSERT_TRUE(detector.ok());
  detect::Options options;
  options.shards = 2;
  options.device = simt::Backend::kScalar;
  const detect::Result r = (*detector)->run(bench.graph, options);
  EXPECT_EQ(r.community.size(), bench.graph.num_vertices());
  EXPECT_GT(r.modularity, 0.0);
  const auto names = detect::backend_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "shard"), names.end());
}

TEST(Detector, ShardRejectsIncompatibleKnobs) {
  const auto g = gen::ring_of_cliques(4, 4);
  auto detector = detect::make("shard");
  ASSERT_TRUE(detector.ok());
  detect::Options options;
  options.storage = detect::Storage::kZcsr;
  EXPECT_THROW((*detector)->run(g, options), std::invalid_argument);
  options.storage = detect::Storage::kPlain;
  options.use_coloring = true;
  EXPECT_THROW((*detector)->run(g, options), std::invalid_argument);
  options.use_coloring = false;
  auto warm = std::make_shared<detect::WarmStart>();
  warm->seed.assign(g.num_vertices(), 0);
  options.warm_start = warm;
  EXPECT_THROW((*detector)->run(g, options), std::invalid_argument);
}

shard::Config sharded_config(unsigned k, bool concurrent,
                             detect::ShardStorage storage) {
  shard::Config cfg = pinned_config();
  cfg.shards = k;
  cfg.min_shard_vertices = 64;  // force real sharding on 4k vertices
  cfg.hub_degree = 48;
  cfg.concurrent_shards = concurrent;
  cfg.shard_storage = storage;
  return cfg;
}

TEST(Engine, ConcurrentSingleShardBitwiseIdenticalToCore) {
  // k <= 1 must stay the core-identical path whether or not concurrent
  // rounds are on, and regardless of the shard storage mode (there is
  // nothing to spill or lease at k = 1).
  const auto bench = gen::lfr({.num_vertices = 4096, .mu = 0.25, .seed = 3});
  const core::Result reference =
      core::louvain(bench.graph, core::to_config(pinned_config()));
  for (const auto storage :
       {detect::ShardStorage::kPlain, detect::ShardStorage::kMmap}) {
    shard::Config cfg = sharded_config(1, true, storage);
    const Result r = louvain(bench.graph, cfg);
    EXPECT_EQ(r.shards_used, 1u);
    EXPECT_EQ(r.community, reference.community);  // bitwise labels
    EXPECT_EQ(r.modularity, reference.modularity);
  }
}

TEST(Engine, ConcurrentQualityTracksSequential) {
  // The validated barrier commit keeps the Jacobi rounds within the
  // quality envelope of the sequential Gauss-Seidel rounds.
  const auto bench = gen::lfr({.num_vertices = 4096, .mu = 0.25, .seed = 7});
  for (const auto strategy :
       {detect::Partition::kBlock, detect::Partition::kHubRep}) {
    for (const unsigned k : {2u, 4u}) {
      shard::Config seq_cfg =
          sharded_config(k, false, detect::ShardStorage::kPlain);
      seq_cfg.partition = strategy;
      shard::Config conc_cfg = seq_cfg;
      conc_cfg.concurrent_shards = true;
      const Result seq = louvain(bench.graph, seq_cfg);
      const Result conc = louvain(bench.graph, conc_cfg);
      EXPECT_EQ(conc.shards_used, k);
      EXPECT_GE(conc.devices_used, 1u);
      EXPECT_GT(conc.modularity, 0.98 * seq.modularity)
          << partition_name(strategy) << " k=" << k;
      EXPECT_NEAR(conc.modularity,
                  metrics::modularity(bench.graph, conc.community), 1e-6);
    }
  }
}

TEST(Engine, ConcurrentDeterministicAcrossDeviceCounts) {
  // The barrier applies proposals in fixed shard order, so the answer
  // must be identical whether the pool grants 1 lane (fully degraded,
  // round-robin multiplexed) or one lane per shard.
  const auto bench = gen::lfr({.num_vertices = 4096, .mu = 0.25, .seed = 13});
  std::vector<Community> labels;
  double q = 0;
  bool first = true;
  for (const unsigned width : {1u, 2u, 4u}) {
    shard::Config cfg =
        sharded_config(4, true, detect::ShardStorage::kPlain);
    simt::DevicePoolConfig pc;
    pc.max_devices = width;
    pc.total_threads = 2;
    pc.device = cfg.core.device;
    pc.device.worker_threads = 0;
    cfg.device_pool = std::make_shared<simt::DevicePool>(pc);
    const Result r = louvain(bench.graph, cfg);
    EXPECT_LE(r.devices_used, width);
    if (first) {
      labels = r.community;
      q = r.modularity;
      first = false;
    } else {
      EXPECT_EQ(r.community, labels) << "pool width " << width;
      EXPECT_EQ(r.modularity, q) << "pool width " << width;
    }
  }
}

TEST(Engine, MmapShardsBitwiseMatchPlain) {
  // Out-of-core shards decode to bitwise-identical local graphs, so
  // the whole run must match plain storage label for label — in both
  // execution modes.
  const auto bench = gen::lfr({.num_vertices = 4096, .mu = 0.25, .seed = 21});
  for (const bool concurrent : {false, true}) {
    const Result plain = louvain(
        bench.graph, sharded_config(4, concurrent,
                                    detect::ShardStorage::kPlain));
    const Result mmap = louvain(
        bench.graph, sharded_config(4, concurrent,
                                    detect::ShardStorage::kMmap));
    EXPECT_EQ(mmap.community, plain.community)
        << (concurrent ? "concurrent" : "sequential");
    EXPECT_EQ(mmap.modularity, plain.modularity);
  }
}

TEST(PlanCache, LruHitMissEviction) {
  PlanCache cache(2);
  const Csr g1 = gen::ring_of_cliques(4, 4);
  const Csr g2 = gen::ring_of_cliques(5, 4);
  const Csr g3 = gen::ring_of_cliques(6, 4);
  PartitionConfig pc;
  pc.num_shards = 2;
  const PlanKey k1 = plan_key(g1, pc, detect::ShardStorage::kPlain);
  const PlanKey k2 = plan_key(g2, pc, detect::ShardStorage::kPlain);
  const PlanKey k3 = plan_key(g3, pc, detect::ShardStorage::kPlain);

  EXPECT_EQ(cache.get(k1), nullptr);
  cache.put(k1, std::make_shared<Plan>(make_plan(g1, pc)));
  cache.put(k2, std::make_shared<Plan>(make_plan(g2, pc)));
  EXPECT_NE(cache.get(k1), nullptr);  // refreshes k1's LRU position
  cache.put(k3, std::make_shared<Plan>(make_plan(g3, pc)));
  EXPECT_EQ(cache.get(k2), nullptr);  // k2 was LRU, evicted
  EXPECT_NE(cache.get(k1), nullptr);
  EXPECT_NE(cache.get(k3), nullptr);

  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.capacity, 2u);
}

TEST(PlanCache, KeyTracksContentAndKnobs) {
  // A stream delta that changes the graph changes the fingerprint and
  // with it the key — stale plans are never served, only forgotten.
  const Csr g = gen::ring_of_cliques(6, 5);
  Csr same = gen::ring_of_cliques(6, 5);
  Csr heavier = graph::build_csr(
      g.num_vertices(), [&] {
        std::vector<graph::Edge> edges;
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          const auto nbr = g.neighbors(v);
          const auto wts = g.weights(v);
          for (std::size_t e = 0; e < nbr.size(); ++e) {
            if (nbr[e] > v) edges.push_back({v, nbr[e], wts[e]});
          }
        }
        edges[0].w += 1.0;  // the delta
        return edges;
      }());
  PartitionConfig pc;
  pc.num_shards = 2;
  const PlanKey base = plan_key(g, pc, detect::ShardStorage::kPlain);
  EXPECT_EQ(base, plan_key(same, pc, detect::ShardStorage::kPlain));
  EXPECT_NE(base, plan_key(heavier, pc, detect::ShardStorage::kPlain));
  PartitionConfig reseeded = pc;
  reseeded.seed = 99;
  EXPECT_NE(base, plan_key(g, reseeded, detect::ShardStorage::kPlain));
  EXPECT_NE(base, plan_key(g, pc, detect::ShardStorage::kMmap));
}

TEST(PlanCache, EngineReusesCachedPlans) {
  plan_cache().clear();
  const auto bench = gen::lfr({.num_vertices = 4096, .mu = 0.25, .seed = 31});
  shard::Config cfg = sharded_config(2, false, detect::ShardStorage::kPlain);
  Engine engine(cfg);
  const Result r1 = engine.run(bench.graph);
  EXPECT_GT(r1.plan_misses, 0u);
  EXPECT_EQ(r1.plan_hits, 0u);
  const Result r2 = engine.run(bench.graph);
  EXPECT_EQ(r2.plan_misses, 0u);
  EXPECT_EQ(r2.plan_hits, r1.plan_misses);
  EXPECT_EQ(r2.community, r1.community);  // cached plans, same answer
}

TEST(PlanCache, MissingSpillFilesForceRebuild) {
  // A foreign cleanup of the spill directory must degrade a cached
  // mmap plan to a rebuild, not a crash — and the rebuild must land on
  // the same answer.
  plan_cache().clear();
  const auto dir = std::filesystem::temp_directory_path() /
                   "glouvain-shard-test-spills";
  std::filesystem::create_directories(dir);
  const auto bench = gen::lfr({.num_vertices = 4096, .mu = 0.25, .seed = 37});
  shard::Config cfg = sharded_config(2, false, detect::ShardStorage::kMmap);
  cfg.spill_dir = dir.string();
  Engine engine(cfg);
  const Result r1 = engine.run(bench.graph);
  EXPECT_GT(r1.plan_misses, 0u);
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::filesystem::remove(entry.path(), ec);
  }
  const Result r2 = engine.run(bench.graph);
  EXPECT_EQ(r2.plan_hits, 0u);
  EXPECT_EQ(r2.plan_misses, r1.plan_misses);
  EXPECT_EQ(r2.community, r1.community);
  plan_cache().clear();  // release the plans so their spills delete
  std::filesystem::remove_all(dir, ec);
}

TEST(Fingerprint, JobKeyAbsorbsShardKnobs) {
  const auto g = gen::ring_of_cliques(4, 4);
  const svc::Fingerprint fp = svc::fingerprint(g);
  detect::Options base;
  const auto key = [&](const detect::Options& o) {
    return svc::job_key(fp, "shard", o);
  };
  detect::Options two = base;
  two.shards = 2;
  detect::Options four = base;
  four.shards = 4;
  EXPECT_NE(key(two), key(four));
  detect::Options block = two;
  block.partition = detect::Partition::kBlock;
  EXPECT_NE(key(two), key(block));
  detect::Options reseeded = two;
  reseeded.partition_seed = 99;
  EXPECT_NE(key(two), key(reseeded));
  // threads must NOT change the key (speed, not answer).
  detect::Options threaded = two;
  threaded.threads = 7;
  EXPECT_EQ(key(two), key(threaded));
}

}  // namespace
}  // namespace glouvain::shard
