// End-to-end tests of the GPU-style Louvain driver.
#include <gtest/gtest.h>

#include "core/louvain.hpp"
#include "graph/builder.hpp"
#include "gen/cliques.hpp"
#include "gen/er.hpp"
#include "gen/lfr.hpp"
#include "gen/rmat.hpp"
#include "gen/sbm.hpp"
#include "metrics/compare.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition.hpp"
#include "seq/louvain.hpp"

namespace glouvain::core {
namespace {

using graph::Community;
using graph::VertexId;

TEST(CoreLouvain, RecoversRingOfCliques) {
  const auto g = gen::ring_of_cliques(16, 8);
  const Result result = louvain(g);
  auto labels = result.community;
  EXPECT_EQ(metrics::renumber(labels), 16u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(labels[v], labels[(v / 8) * 8]);
  }
}

TEST(CoreLouvain, ReportedModularityMatchesRecomputation) {
  const auto g = gen::rmat({.scale = 12, .edge_factor = 8}, 3);
  const Result result = louvain(g);
  EXPECT_NEAR(result.modularity, metrics::modularity(g, result.community), 1e-7);
}

TEST(CoreLouvain, QualityWithinOnePercentOfSequentialOnStructuredGraphs) {
  // The paper's headline quality claim: GPU modularity is never more
  // than ~1-2% below sequential (Figure 1 discussion) on graphs with
  // real community structure.
  const auto lfr = gen::lfr({.num_vertices = 4096, .mu = 0.3, .seed = 5});
  const auto sbm = gen::planted_partition(
      {.num_vertices = 4096, .num_communities = 32, .seed = 7});
  for (const auto* g : {&lfr.graph, &sbm.graph}) {
    const double q_seq = seq::louvain(*g).modularity;
    const double q_core = louvain(*g).modularity;
    EXPECT_GT(q_core, 0.98 * q_seq);
  }
}

TEST(CoreLouvain, FindsPlantedPartition) {
  const auto sbm = gen::planted_partition({.num_vertices = 4096,
                                           .num_communities = 32,
                                           .intra_degree = 14,
                                           .inter_degree = 1.5,
                                           .seed = 9});
  const Result result = louvain(sbm.graph);
  EXPECT_GT(metrics::nmi(result.community, sbm.ground_truth), 0.95);
  EXPECT_GT(metrics::adjusted_rand_index(result.community, sbm.ground_truth), 0.9);
}

TEST(CoreLouvain, LevelReportsAreCoherent) {
  const auto g = gen::lfr({.num_vertices = 2048, .seed = 11});
  const Result result = louvain(g.graph);
  ASSERT_GE(result.levels.size(), 2u);
  EXPECT_EQ(result.levels[0].vertices, g.graph.num_vertices());
  for (std::size_t i = 0; i + 1 < result.levels.size(); ++i) {
    // Graph shrinks level over level.
    EXPECT_LT(result.levels[i + 1].vertices, result.levels[i].vertices);
    // Modularity never decreases across levels.
    EXPECT_LE(result.levels[i].modularity_after,
              result.levels[i + 1].modularity_after + 1e-9);
  }
}

TEST(CoreLouvain, TrivialGraphs) {
  EXPECT_EQ(louvain(graph::build_csr(0, {})).community.size(), 0u);
  const Result lone = louvain(graph::build_csr(3, {}));
  EXPECT_EQ(lone.community.size(), 3u);  // three isolated singletons
  auto labels = lone.community;
  EXPECT_EQ(metrics::renumber(labels), 3u);
}

TEST(CoreLouvain, DeterministicWithSingleWorker) {
  Config cfg;
  cfg.device.worker_threads = 1;
  const auto g = gen::rmat({.scale = 10, .edge_factor = 8}, 13);
  Louvain a(cfg), b(cfg);
  const Result ra = a.run(g);
  const Result rb = b.run(g);
  EXPECT_EQ(ra.community, rb.community);
  EXPECT_DOUBLE_EQ(ra.modularity, rb.modularity);
}

TEST(CoreLouvain, RelaxedStrategyQualityClose) {
  // Paper §5: relaxed vs bucketed modularity differs by < 0.13% on
  // average; allow 2% on one graph.
  const auto g = gen::lfr({.num_vertices = 2048, .mu = 0.25, .seed = 15});
  Config bucketed;
  Config relaxed;
  relaxed.update = UpdateStrategy::Relaxed;
  const double qb = louvain(g.graph, bucketed).modularity;
  const double qr = louvain(g.graph, relaxed).modularity;
  EXPECT_GT(qr, 0.98 * qb);
}

TEST(CoreLouvain, ThresholdScheduleShortensPhases) {
  const auto g = gen::rmat({.scale = 12, .edge_factor = 12}, 17);
  Config coarse;
  coarse.thresholds.t_bin = 1e-1;
  coarse.thresholds.adaptive_limit = 256;  // t_bin while n > 256
  Config fine;
  fine.thresholds.adaptive = false;  // always t_final
  const Result rc = louvain(g, coarse);
  const Result rf = louvain(g, fine);
  ASSERT_FALSE(rc.levels.empty());
  ASSERT_FALSE(rf.levels.empty());
  EXPECT_LE(rc.levels[0].iterations, rf.levels[0].iterations);
  EXPECT_GT(rc.modularity, 0.9 * rf.modularity);
}

TEST(CoreLouvain, NoSharedSpillsWithPaperBuckets) {
  // The paper's bucket boundaries are chosen so groups 1-6 fit in the
  // 48 KiB shared memory; the device must report zero spills.
  const auto g = gen::rmat({.scale = 12, .edge_factor = 16}, 19);
  const Result result = louvain(g);
  EXPECT_EQ(result.device.shared_spills, 0u);
}

TEST(CoreLouvain, ReusableRunner) {
  Louvain runner;
  const auto g1 = gen::ring_of_cliques(8, 5);
  const auto g2 = gen::erdos_renyi(500, 2500, 21);
  const Result r1 = runner.run(g1);
  const Result r2 = runner.run(g2);
  EXPECT_GT(r1.modularity, 0.7);
  EXPECT_NEAR(r2.modularity, metrics::modularity(g2, r2.community), 1e-7);
}

TEST(CoreLouvain, TepsPopulated) {
  const auto g = gen::erdos_renyi(3000, 20000, 23);
  const Result result = louvain(g);
  EXPECT_GT(result.first_phase_teps, 0.0);
}

TEST(CoreLouvain, MaxLevelsRespected) {
  Config cfg;
  cfg.max_levels = 1;
  const auto g = gen::lfr({.num_vertices = 2048, .seed = 25});
  const Result result = louvain(g.graph, cfg);
  EXPECT_EQ(result.levels.size(), 1u);
}

}  // namespace
}  // namespace glouvain::core
