#!/usr/bin/env python3
"""glint — AST-based interprocedural analyzer for the glouvain repo.

Where tools/simt_lint.py is a line-regex lint (comment-stripped, one
line at a time), glint builds a structural model of the sources —
functions with qualified names, class members with types, a call graph
— and runs checks that need to see THROUGH a function call:

  lock-cycle          the lock-acquisition graph over every std::mutex /
                      lock_guard / unique_lock / scoped_lock site has a
                      cycle (A held while taking B, elsewhere B held
                      while taking A): a deadlock waiting for the right
                      interleaving. Mutexes are identified by their
                      declaring class (svc::Service::Impl::m, not the
                      spelling at the lock site), so `impl_->m` and the
                      worker loop's `s.m` alias correctly.
  blocking-under-lock a call made while holding a lock reaches (through
                      any number of calls) a condition_variable wait or
                      thread join on OTHER state: DevicePool::acquire
                      under a svc worker lock, Service::wait under the
                      plan-cache mutex, and friends. Plain nested mutex
                      acquisition is NOT flagged here — that is the
                      lock-order graph's job.
  wait-holding-lock   condition_variable::wait(lk) while a second lock
                      is held: the wait releases only its own mutex, the
                      other one blocks every thread that needs it.
  status-discard      a call whose util::Status / StatusOr result is
                      dropped on the floor (expression statement).
                      Signatures come from the index, so try_* calls are
                      recognized across translation units.
  unchecked-value     .value() on a StatusOr variable with no dominating
                      .ok() / .status() consultation of that variable in
                      the function (or on a temporary, which can never
                      have been checked). StatusOr::value() throws on
                      error — an unchecked one is an assert in disguise.
  arena-escape        a SharedArena- / Workspace-backed span or pointer
                      (ctx.shared().alloc<T>(), ws.buffer<T>()) stored
                      into a class member, a static, or a global: the
                      backing memory dies at the next launch epoch /
                      arena reset, the pointer does not. Complements the
                      runtime arena-generation check (src/check).
  shard-barrier       cross-shard mutable state (GlobalState::apply_move
                      / store_label / rebuild_tot, the last_moved /
                      dirty_round stamps) written inside a run_lanes()
                      fan-out body — including one or more calls deep,
                      which the regex rule structurally cannot see.
  kernel-alloc        operator new / malloc / vector growth inside a
                      Device::launch body, again transitively through
                      the call graph (the cudaMalloc-once discipline).
  unpaired-launch     a Device::launch call with no obs::Span object
                      alive in an enclosing scope (and no begin_span()
                      earlier in the function). Scope-based: replaces
                      simt_lint's 40-line proximity heuristic, so a span
                      opened 100 lines up in an outer block pairs, and
                      an unrelated span whose block already closed does
                      not.

Frontends (--frontend auto|clang|tokens):
  clang    libclang via the python bindings (clang.cindex), driven by
           --compile-commands; precise types and extents. Any failure
           (missing bindings, unparseable TU) degrades to `tokens` with
           a note — CI stays deterministic either way.
  tokens   a self-contained C++ lexer + structural parser (no
           dependencies): tracks namespace/class/function scopes by
           brace matching, records member declarations, and hands each
           check the same IR the clang frontend produces. This is the
           no-clang fallback the container/CI can always run.

Both frontends feed one IR (Program: functions, classes, globals), and
every check runs identically on either.

Suppression:
  - inline, one finding:   ...;  // glint: allow(rule)
  - committed baseline:    tools/glint_baseline.json — every entry
    carries a "why"; --write-baseline regenerates keys after a refactor.

Output: text (default) and SARIF 2.1.0 (--sarif out.json).
Incremental: --changed-files f1 f2 ... indexes every given root (the
interprocedural context) but only REPORTS findings anchored in the
changed files.

Exit codes: 0 clean, 1 violations, 2 usage error. --expect-violations
flips 0/1 (fixture self-test); with --rules r1,r2 every listed rule
must fire for the fixture to pass.
"""

import argparse
import json
import os
import re
import sys

ALL_RULES = (
    "lock-cycle", "blocking-under-lock", "wait-holding-lock",
    "status-discard", "unchecked-value", "arena-escape",
    "shard-barrier", "kernel-alloc", "unpaired-launch",
)
SOURCE_EXT = (".cpp", ".hpp", ".cc", ".h")
SUPPRESS_RE = re.compile(r"glint:\s*allow\(([a-z-]+)\)")
CALL_DEPTH = 4  # interprocedural walk bound

# Bare names too common to resolve by name alone (method-call fallback
# when the receiver type cannot be recovered).
AMBIENT_NAMES = frozenset({
    "size", "empty", "begin", "end", "clear", "data", "get", "count",
    "find", "at", "front", "back", "push", "pop", "reset", "value",
    "ok", "status", "str", "c_str", "first", "second", "emplace",
    "insert", "erase", "swap", "move", "forward", "max", "min", "abs",
    "load", "store", "lock", "unlock", "wait", "notify_one",
    "notify_all", "join", "detach", "push_back", "emplace_back",
    "resize", "reserve", "assign", "to_string", "run", "main",
})

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind    # 'id' | 'num' | 'str' | 'chr' | 'p' (punct)
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.text}@{self.line}"


_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_ID_CONT = _ID_START | set("0123456789")
_PUNCT3 = ("...", "->*", "<<=", ">>=", "<=>")
_PUNCT2 = ("::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
           "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=")


def tokenize(text):
    """C++ tokens with line numbers. Comments and preprocessor lines are
    skipped (line structure preserved); string/char literals collapse to
    single tokens so nothing inside them can match a check."""
    toks = []
    i, n, line = 0, len(text), 1
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                i += 1
            i += 2
            continue
        if c == "#" and at_line_start:
            # Preprocessor directive: skip to EOL, honoring backslash
            # continuations.
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                if text[i] == "\n":
                    break
                i += 1
            continue
        at_line_start = False
        if c == '"':
            # Raw strings R"tag(...)tag" need the full delimiter scan.
            if toks and toks[-1].kind == "id" and toks[-1].text.endswith("R") \
                    and toks[-1].text in ("R", "u8R", "uR", "UR", "LR"):
                j = i + 1
                tag = ""
                while j < n and text[j] != "(":
                    tag += text[j]
                    j += 1
                close = ")" + tag + '"'
                k = text.find(close, j)
                k = n if k < 0 else k + len(close)
                line += text.count("\n", i, k)
                toks[-1] = Tok("str", '""', toks[-1].line)
                i = k
                continue
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                elif text[j] == "\n":
                    line += 1
                j += 1
            toks.append(Tok("str", '""', line))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            # Digit separators (1'000) never reach here: the number
            # lexer below consumes them first.
            toks.append(Tok("chr", "''", line))
            i = j + 1
            continue
        if c in _ID_START:
            j = i
            while j < n and text[j] in _ID_CONT:
                j += 1
            toks.append(Tok("id", text[i:j], line))
            i = j
            continue
        if c.isdigit() or (c == "." and nxt.isdigit()):
            j = i
            while j < n and (text[j] in _ID_CONT or text[j] in ".'" or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        three, two = text[i:i + 3], text[i:i + 2]
        if three in _PUNCT3:
            toks.append(Tok("p", three, line))
            i += 3
        elif two in _PUNCT2:
            toks.append(Tok("p", two, line))
            i += 2
        else:
            toks.append(Tok("p", c, line))
            i += 1
    return toks


# ---------------------------------------------------------------------------
# IR
# ---------------------------------------------------------------------------

class FunctionInfo:
    __slots__ = ("name", "qual", "cls", "file", "line", "end_line",
                 "toks", "params", "ret", "locals")

    def __init__(self, name, qual, cls, file, line):
        self.name = name          # bare name
        self.qual = qual          # namespace-qualified
        self.cls = cls            # qualified enclosing class or None
        self.file = file
        self.line = line
        self.end_line = line
        self.toks = []            # body tokens (inside the outer braces)
        self.params = {}          # name -> type string
        self.ret = ""             # return type string (best effort)
        self.locals = {}          # name -> type string (filled lazily)


class ClassInfo:
    __slots__ = ("name", "qual", "file", "members")

    def __init__(self, name, qual, file):
        self.name = name
        self.qual = qual
        self.file = file
        self.members = {}         # member name -> type string


class Program:
    def __init__(self):
        self.functions = []                 # [FunctionInfo]
        self.by_name = {}                   # bare name -> [FunctionInfo]
        self.by_qual = {}                   # qual suffix name -> FunctionInfo
        self.classes = {}                   # bare name -> [ClassInfo]
        self.globals = set()                # namespace-scope variable names
        self.status_fns = set()             # bare names returning Status*
        self.status_quals = set()           # qualified names returning Status*
        self.raw_lines = {}                 # file -> [str] (for suppressions)

    def add_function(self, fn):
        self.functions.append(fn)
        self.by_name.setdefault(fn.name, []).append(fn)
        self.by_qual[fn.qual] = fn

    def add_class(self, ci):
        self.classes.setdefault(ci.name, []).append(ci)

    def note_signature(self, name, qual, ret):
        if "Status" in ret:
            self.status_fns.add(name)
            self.status_quals.add(qual)

    def lookup_class(self, name):
        """Resolve a (possibly qualified) type name to a ClassInfo."""
        bare = name.split("::")[-1]
        cands = self.classes.get(bare, [])
        if not cands:
            return None
        if len(cands) == 1 or "::" not in name:
            return cands[0]
        for c in cands:
            if c.qual.endswith(name):
                return c
        return cands[0]

    def lookup_method(self, cls_name, method):
        """Find a FunctionInfo for Class::method."""
        for fn in self.by_name.get(method, []):
            if fn.cls and fn.cls.split("::")[-1] == cls_name.split("::")[-1]:
                return fn
        return None


# ---------------------------------------------------------------------------
# Tokens frontend: structural parser
# ---------------------------------------------------------------------------

_CTRL = frozenset({"if", "for", "while", "switch", "catch", "do", "else",
                   "try", "return"})
_SKIP_HEAD = frozenset({"inline", "static", "constexpr", "const", "virtual",
                        "explicit", "friend", "typename", "extern",
                        "mutable", "volatile", "noexcept", "override",
                        "final"})


def _type_str(toks):
    return " ".join(t.text for t in toks)


class TokenFrontend:
    """Single pass over the token stream with a scope stack. Built for
    this repo's (clang-format-consistent) style; fixture tests under
    tests/lint/ gate it against rot."""

    def __init__(self, program):
        self.p = program

    def parse_file(self, path, rel):
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        self.p.raw_lines[rel] = text.splitlines()
        toks = tokenize(text)
        # scope stack entries: (kind, name, brace_depth_at_open)
        #   kind in {'ns', 'class', 'fn', 'block'}
        scopes = []
        ns = []        # namespace path
        cls_stack = []  # ClassInfo stack
        fn = None      # innermost FunctionInfo being collected
        fn_depth = 0
        depth = 0
        head_start = 0  # token index where the current decl head began
        i, n = 0, len(toks)
        while i < n:
            t = toks[i]
            if fn is not None:
                # Inside a function body: collect tokens until its brace
                # closes; lambdas / nested blocks just ride along.
                if t.text == "{":
                    depth += 1
                elif t.text == "}":
                    depth -= 1
                    if depth < fn_depth:
                        fn.end_line = t.line
                        fn = None
                        if scopes and scopes[-1][0] == "fn":
                            scopes.pop()
                        head_start = i + 1
                        i += 1
                        continue
                fn.toks.append(t)
                i += 1
                continue
            if t.text == "{":
                head = toks[head_start:i]
                kind, name, info = self._classify_head(head, ns, cls_stack,
                                                       rel)
                depth += 1
                scopes.append((kind, name, depth))
                if kind == "ns":
                    ns.append(name)
                elif kind == "class":
                    cls_stack.append(info)
                elif kind == "fn":
                    fn = info
                    fn_depth = depth
                    self.p.add_function(info)
                head_start = i + 1
                i += 1
                continue
            if t.text == "}":
                depth -= 1
                if scopes and scopes[-1][2] == depth + 1:
                    kind, name, _ = scopes.pop()
                    if kind == "ns":
                        ns.pop()
                    elif kind == "class":
                        cls_stack.pop()
                head_start = i + 1
                i += 1
                continue
            if t.text == ";":
                head = toks[head_start:i]
                self._classify_decl(head, ns, cls_stack, rel)
                head_start = i + 1
                i += 1
                continue
            i += 1

    # -- head classification -------------------------------------------------

    def _classify_head(self, head, ns, cls_stack, rel):
        """Decide what scope an opening '{' introduces."""
        texts = [t.text for t in head]
        # Strip trailing base-clause of enum/class and attributes.
        if "namespace" in texts:
            k = texts.index("namespace")
            parts = []
            j = k + 1
            while j < len(texts) and (head[j].kind == "id" or
                                      texts[j] == "::"):
                parts.append(texts[j])
                j += 1
            return ("ns", "".join(parts) or "<anon>", None)
        for key in ("class", "struct"):
            if key in texts:
                k = texts.index(key)
                # `struct X {` / `struct X : base {` / `struct A::B {`
                # — but NOT a return type (`struct X f() {`) or a
                # variable (`struct X x = {`): those have a '(' or '='
                # after the name.
                j = k + 1
                while j < len(texts) and texts[j].startswith("[["):
                    j += 1
                name_parts = []
                while j < len(texts) and (head[j].kind == "id" or
                                          texts[j] == "::"):
                    if texts[j] not in ("final",):
                        name_parts.append(texts[j])
                    j += 1
                rest = texts[j:]
                if name_parts and ("(" not in rest and "=" not in rest):
                    name = "".join(name_parts)
                    qual = "::".join(ns + [name])
                    ci = ClassInfo(name.split("::")[-1], qual, rel)
                    self.p.add_class(ci)
                    return ("class", name, ci)
        if "enum" in texts or "union" in texts:
            return ("block", "", None)
        # Function definition: ... name ( params ) [quals] {
        info = self._match_function(head, ns, cls_stack, rel)
        if info is not None:
            return ("fn", info.name, info)
        return ("block", "", None)

    def _match_function(self, head, ns, cls_stack, rel):
        texts = [t.text for t in head]
        if not texts:
            return None
        # Walk back over trailer: const noexcept override final -> T &&
        i = len(texts) - 1
        while i >= 0 and texts[i] in ("const", "noexcept", "override",
                                      "final", "&", "&&", "mutable"):
            i -= 1
        # trailing return type `-> T...`
        if "->" in texts[max(0, i - 8):i + 1]:
            while i >= 0 and texts[i] != ")":
                i -= 1
        if i < 0 or texts[i] != ")":
            # ctor-initializer list: `Ctor(...) : a_(x), b_(y) {` — the
            # last token is an init `)` but a `:` separates it from the
            # param list. Find `:` at depth 0 after a `)`.
            i = self._ctor_init_start(texts)
            if i is None:
                return None
        # `i` indexes the `)` closing the parameter list (or the token
        # before the ctor `:`). Match backwards to its `(`.
        depth = 0
        j = i
        while j >= 0:
            if texts[j] == ")":
                depth += 1
            elif texts[j] == "(":
                depth -= 1
                if depth == 0:
                    break
            j -= 1
        if j <= 0:
            return None
        # Name = one identifier chain `A::B::name` (or `~name`) directly
        # before '(' — a greedy walk would swallow the return type.
        k = j - 1
        if k >= 0 and texts[k] == ">":
            return None  # template-id call or specialization artifact
        name_parts = []
        while k >= 0 and head[k].kind == "id":
            name_parts.append(texts[k])
            k -= 1
            if k >= 0 and texts[k] == "~":
                name_parts.append("~")
                k -= 1
            if k >= 0 and texts[k] == "::":
                name_parts.append("::")
                k -= 1
            else:
                break
        if not name_parts:
            return None
        name_parts.reverse()
        full = "".join(name_parts)
        if "operator" in full:
            return None
        bare = full.split("::")[-1]
        if bare in _CTRL or bare in ("lock_guard", "unique_lock",
                                     "scoped_lock"):
            return None
        # Heuristic: a definition head needs a return type (or be a
        # ctor/dtor whose name matches the class).
        ret_toks = [t for t in head[:k + 1]
                    if t.text not in _SKIP_HEAD and not
                    t.text.startswith("[[")]
        is_ctor = bool(cls_stack) and bare.lstrip("~") == cls_stack[-1].name
        out_of_line = "::" in full
        if not ret_toks and not is_ctor and not out_of_line:
            return None
        cls = None
        if out_of_line:
            cls_name = "::".join(full.split("::")[:-1])
            cls = "::".join(ns + [cls_name])
            # Out-of-line free functions (ns::f) are rare here; treating
            # the qualifier as a class is harmless for the checks.
        elif cls_stack:
            cls = cls_stack[-1].qual
        qual = (cls + "::" + bare) if cls else "::".join(ns + [bare])
        fn = FunctionInfo(bare, qual, cls, rel, head[0].line if head else 0)
        fn.ret = _type_str(ret_toks)
        fn.params = self._parse_params(head, j, i)
        self.p.note_signature(bare, qual, fn.ret)
        return fn

    @staticmethod
    def _ctor_init_start(texts):
        """For `Ctor(args) : inits... {` return the index of the `)`
        closing the parameter list; None when the head has no ctor
        colon."""
        depth = 0
        last_close = None
        for idx, t in enumerate(texts):
            if t in "([{":
                depth += 1
            elif t in ")]}":
                depth -= 1
                if t == ")" and depth == 0:
                    last_close = idx
            elif t == ":" and depth == 0 and last_close is not None:
                return last_close
        return None

    @staticmethod
    def _parse_params(head, open_i, close_i):
        params = {}
        depth = 0
        cur = []
        def flush(cur):
            # last identifier (before a default '=') is the name
            stop = len(cur)
            for x, t in enumerate(cur):
                if t.text == "=":
                    stop = x
                    break
            ids = [t for t in cur[:stop] if t.kind == "id"]
            if len(ids) >= 2:
                # The trailing identifier is the parameter NAME — the type
                # string must not include it or receiver lookup breaks.
                ty = cur[:stop]
                if ty and ty[-1] is ids[-1]:
                    ty = ty[:-1]
                params[ids[-1].text] = _type_str(ty)
        for t in head[open_i + 1:close_i]:
            if t.text in "(<[{":
                depth += 1
            elif t.text in ")>]}":
                depth -= 1
            if t.text == "," and depth == 0:
                flush(cur)
                cur = []
            else:
                cur.append(t)
        if cur:
            flush(cur)
        return params

    # -- declaration statements ----------------------------------------------

    def _classify_decl(self, head, ns, cls_stack, rel):
        """A `...;` statement at namespace or class scope: record member
        variables, global variables, and Status-returning prototypes."""
        # Access labels ride along in the head (`private : Type name`):
        # strip them rather than losing the declaration.
        while len(head) >= 2 and head[0].text in ("public", "private",
                                                  "protected") and \
                head[1].text == ":":
            head = head[2:]
        texts = [t.text for t in head]
        if not texts or texts[0] in ("using", "typedef", "template",
                                     "friend", "static_assert"):
            return
        if "(" in texts:
            # function prototype: name before the first '(' at depth 0
            depth = 0
            for idx, t in enumerate(texts):
                if t in "<[{":
                    depth += 1
                elif t in ">]}":
                    depth -= 1
                elif t == "(" and depth == 0:
                    if idx > 0 and head[idx - 1].kind == "id":
                        bare = texts[idx - 1]
                        ret = _type_str([x for x in head[:idx - 1]
                                         if x.text not in _SKIP_HEAD])
                        scope = (cls_stack[-1].qual if cls_stack
                                 else "::".join(ns))
                        qual = (scope + "::" + bare) if scope else bare
                        self.p.note_signature(bare, qual, ret)
                    return
                elif t == ")" and depth == 0:
                    return
            return
        # variable declaration: `Type name;` / `Type name = init;` /
        # `Type name{init};`
        stop = len(head)
        for idx, t in enumerate(head):
            if t.text in ("=", "{"):
                stop = idx
                break
        ids = [t for t in head[:stop] if t.kind == "id"]
        if len(ids) < 2:
            return
        name = ids[-1].text
        ty = _type_str(head[:stop])
        ty = ty[: ty.rfind(name)] if name in ty else ty
        if cls_stack:
            cls_stack[-1].members[name] = ty.strip()
        elif ns:
            self.p.globals.add(name)


# ---------------------------------------------------------------------------
# clang frontend (optional, CI): same Program out of libclang cursors
# ---------------------------------------------------------------------------

class ClangFrontend:
    """libclang-based indexer. Produces the same Program the token
    frontend does, with compiler-grade name/type fidelity. Any failure
    raises; the driver catches and falls back to tokens."""

    def __init__(self, program, compile_commands):
        from clang import cindex  # noqa: raises ImportError without bindings
        self.cindex = cindex
        self.p = program
        self.args_for = {}
        if compile_commands:
            with open(compile_commands, encoding="utf-8") as f:
                for e in json.load(f):
                    path = os.path.normpath(
                        os.path.join(e["directory"], e["file"]))
                    cmd = e.get("command", "")
                    args = [a for a in cmd.split()[1:]
                            if not a.endswith(".o") and a not in ("-c", "-o")
                            and not a.endswith(".cpp")]
                    self.args_for[path] = args
        self.index = cindex.Index.create()

    def parse_file(self, path, rel):
        ck = self.cindex.CursorKind
        with open(path, encoding="utf-8", errors="replace") as f:
            self.p.raw_lines[rel] = f.read().splitlines()
        args = self.args_for.get(os.path.abspath(path),
                                 ["-std=c++20", "-I" + os.path.join(
                                     os.path.dirname(path), "..")])
        tu = self.index.parse(path, args=args)
        want = os.path.abspath(path)

        def visit(cur, ns, cls):
            for child in cur.get_children():
                loc = child.location
                if loc.file is None or os.path.abspath(loc.file.name) != want:
                    continue
                k = child.kind
                if k == ck.NAMESPACE:
                    visit(child, ns + [child.spelling], cls)
                elif k in (ck.CLASS_DECL, ck.STRUCT_DECL) and \
                        child.is_definition():
                    qual = "::".join(ns + ([cls.name] if cls else []) +
                                     [child.spelling])
                    ci = ClassInfo(child.spelling, qual, rel)
                    self.p.add_class(ci)
                    visit(child, ns, ci)
                elif k == ck.FIELD_DECL and cls is not None:
                    cls.members[child.spelling] = child.type.spelling
                elif k == ck.VAR_DECL and cls is None:
                    self.p.globals.add(child.spelling)
                elif k in (ck.CXX_METHOD, ck.FUNCTION_DECL, ck.CONSTRUCTOR,
                           ck.DESTRUCTOR, ck.FUNCTION_TEMPLATE):
                    ret = child.result_type.spelling if \
                        k != ck.CONSTRUCTOR else ""
                    scope = cls.qual if cls else "::".join(ns)
                    qual = (scope + "::" if scope else "") + child.spelling
                    self.p.note_signature(child.spelling, qual, ret)
                    if child.is_definition():
                        fn = FunctionInfo(child.spelling, qual,
                                          cls.qual if cls else None, rel,
                                          loc.line)
                        fn.ret = ret
                        fn.end_line = child.extent.end.line
                        for arg in child.get_arguments():
                            fn.params[arg.spelling] = arg.type.spelling
                        body = None
                        for c2 in child.get_children():
                            if c2.kind == ck.COMPOUND_STMT:
                                body = c2
                        if body is not None:
                            fn.toks = [
                                Tok("id" if tok.kind.name == "IDENTIFIER"
                                    else ("str" if tok.kind.name == "LITERAL"
                                          and tok.spelling.startswith('"')
                                          else "p"),
                                    tok.spelling, tok.location.line)
                                for tok in tu.get_tokens(extent=body.extent)
                            ][1:-1]  # shed the outer braces
                        self.p.add_function(fn)
                    else:
                        visit(child, ns, cls)

        visit(tu.cursor, [], None)


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------

class Finding:
    def __init__(self, rule, file, line, message, func="", key=""):
        self.rule = rule
        self.file = file
        self.line = line
        self.message = message
        self.func = func          # qualified enclosing function
        self.key = key or message  # stable identity for the baseline

    def baseline_key(self):
        return f"{self.rule}|{self.file}|{self.func}|{self.key}"

    def __str__(self):
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Body scanning helpers
# ---------------------------------------------------------------------------

def match_close(toks, i, open_ch="(", close_ch=")"):
    """Index of the token closing the bracket opened at toks[i]."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_ch:
            depth += 1
        elif t == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n - 1


def enclosing_block_end(toks, i):
    """End index of the innermost brace block containing token i (end of
    function body if none)."""
    depth = 0
    n = len(toks)
    j = i
    while j < n:
        t = toks[j].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth < 0:
                return j
        j += 1
    return n - 1


def receiver_before(toks, i):
    """For a call `recv . name (` at name-index i, return the receiver
    expression tokens (best effort, right to left)."""
    j = i - 1
    if j < 0 or toks[j].text not in (".", "->"):
        return []
    j -= 1
    out = []
    depth = 0
    while j >= 0:
        t = toks[j].text
        if t in ")]":
            depth += 1
        elif t in "([":
            if depth == 0:
                break
            depth -= 1
        elif depth == 0:
            if toks[j].kind not in ("id",) and t not in (".", "->", "::",
                                                         "*", ")", "]"):
                break
            if t in (",", ";", "{", "}", "=", "return"):
                break
        out.append(toks[j])
        j -= 1
    out.reverse()
    return out


def expr_text(toks):
    return "".join(t.text for t in toks)


_WRAPPERS = ("std::unique_ptr", "std::shared_ptr", "unique_ptr",
             "shared_ptr", "std::optional", "optional")


def unwrap_type(ty):
    """unique_ptr<Impl> -> Impl, const X& -> X, etc."""
    ty = ty.replace("const ", "").replace("&", "").replace("*", "").strip()
    for w in _WRAPPERS:
        pre = w + " <"
        alt = w + "<"
        for p in (pre, alt):
            if ty.startswith(p) and ty.endswith(">"):
                return unwrap_type(ty[len(p):-1].strip())
    return ty.replace(" ", "")


class BodyModel:
    """Lazy per-function facts shared by the checks."""

    def __init__(self, program, fn):
        self.p = program
        self.fn = fn
        self._locals = None

    def locals(self):
        """Local declarations `Type name = ...;` / `Type& name = ...;`
        (reference bindings matter for mutex aliasing)."""
        if self._locals is not None:
            return self._locals
        out = dict(self.fn.params)
        toks = self.fn.toks
        i, n = 0, len(toks)
        stmt_start = 0
        while i < n:
            t = toks[i].text
            if t in (";", "{", "}"):
                stmt_start = i + 1
            elif t == "=" and i - stmt_start >= 2:
                head = toks[stmt_start:i]
                ids = [x for x in head if x.kind == "id"]
                if len(ids) >= 2 and all(
                        x.kind in ("id",) or x.text in
                        ("::", "<", ">", "&", "*", ",", "const")
                        for x in head):
                    name = ids[-1].text
                    ty = _type_str(head[:-1])
                    out.setdefault(name, ty)
            i += 1
        self._locals = out
        return out

    # -- type/identity resolution -------------------------------------------

    def type_of(self, expr_toks):
        """Best-effort static type of an expression: identifier chains,
        deref, and calls to indexed functions."""
        if not expr_toks:
            return None
        texts = [t.text for t in expr_toks]
        if texts[0] == "*":
            inner = self.type_of(expr_toks[1:])
            return inner
        if texts[0] == "this":
            base_ty = self.fn.cls
            rest = expr_toks[1:]
            return self._walk_members(base_ty, rest)
        # call: `name ( ... )` or `ns :: name ( ... )`
        if texts[-1] == ")" and "(" in texts:
            open_i = texts.index("(")
            callee = texts[open_i - 1] if open_i >= 1 else None
            if callee:
                fi = self._resolve_free(callee)
                if fi is not None:
                    return unwrap_type(fi.ret)
            return None
        # identifier chain a.b->c
        name = texts[0]
        ty = None
        loc = self.locals()
        if name in loc:
            ty = unwrap_type(loc[name])
        elif self.fn.cls:
            ci = self.p.lookup_class(self.fn.cls)
            if ci and name in ci.members:
                ty = unwrap_type(ci.members[name])
        if ty is None:
            return None
        return self._walk_members(ty, expr_toks[1:])

    def _walk_members(self, ty, rest):
        i = 0
        while i < len(rest) and ty is not None:
            if rest[i].text in (".", "->"):
                i += 1
                continue
            ci = self.p.lookup_class(ty)
            if ci is None or rest[i].text not in ci.members:
                return None
            ty = unwrap_type(ci.members[rest[i].text])
            i += 1
        return ty

    def _resolve_free(self, name):
        cands = self.p.by_name.get(name, [])
        if len(cands) == 1:
            return cands[0]
        return None

    def mutex_id(self, expr_toks):
        """Canonical identity of the mutex an expression names: its
        declaring class + member when resolvable, else file::expr."""
        texts = [t.text for t in expr_toks]
        # strip trailing member access to find owner
        if len(texts) >= 3 and texts[-2] in (".", "->"):
            owner_ty = self.type_of(expr_toks[:-2])
            if owner_ty:
                ci = self.p.lookup_class(owner_ty)
                if ci:
                    return f"{ci.qual}::{texts[-1]}"
        if len(texts) == 1:
            name = texts[0]
            if self.fn.cls:
                ci = self.p.lookup_class(self.fn.cls)
                if ci and name in ci.members:
                    return f"{ci.qual}::{name}"
            loc = self.locals()
            if name in loc:
                ty = unwrap_type(loc[name])
                return f"{ty or self.fn.file}::{name}"
        return f"{self.fn.file}::{expr_text(expr_toks)}"


# ---------------------------------------------------------------------------
# Lock model
# ---------------------------------------------------------------------------

GUARD_TYPES = ("lock_guard", "unique_lock", "scoped_lock", "shared_lock")


class LockSite:
    __slots__ = ("mutex", "guard_var", "start", "end", "line")

    def __init__(self, mutex, guard_var, start, end, line):
        self.mutex = mutex        # canonical mutex id
        self.guard_var = guard_var
        self.start = start        # token index where hold begins
        self.end = end            # token index where hold ends
        self.line = line


def lock_sites(model):
    """Every lock-acquisition site in a function body with its token
    hold-range."""
    fn = model.fn
    toks = fn.toks
    sites = []
    i, n = 0, len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.text in GUARD_TYPES:
            # std::lock_guard<...> name(mutex);   (or CTAD, no <...>)
            j = i + 1
            if j < n and toks[j].text == "<":
                j = match_close(toks, j, "<", ">") + 1
            if j < n and toks[j].kind == "id":
                guard = toks[j].text
                j += 1
                if j < n and toks[j].text == "(":
                    close = match_close(toks, j)
                    args = split_args(toks, j, close)
                    # The hold ends at the guard's scope — or at an
                    # explicit guard.unlock(), whichever comes first
                    # (worker loops unlock before backend execution).
                    end = min(enclosing_block_end(toks, i),
                              unlock_end(model, None, close, var=guard))
                    for arg in args:
                        # std::adopt_lock / defer_lock etc. are ids too;
                        # only the first argument names the mutex for
                        # guard/unique; scoped_lock takes several.
                        if any(a.text in ("adopt_lock", "defer_lock",
                                          "try_to_lock") for a in arg):
                            continue
                        sites.append(LockSite(model.mutex_id(arg), guard,
                                              close + 1, end, t.line))
                        if t.text != "scoped_lock":
                            break
                    i = close
        elif t.text == "lock" and i >= 2 and toks[i - 1].text in (".", "->") \
                and i + 1 < n and toks[i + 1].text == "(":
            recv = receiver_before(toks, i)
            if recv:
                close = match_close(toks, i + 1)
                # `guard.lock()` re-acquires the guard's mutex, not a
                # mutex named `guard`.
                mid = None
                if len(recv) == 1:
                    for prior in sites:
                        if prior.guard_var == recv[0].text:
                            mid = prior.mutex
                            break
                if mid is None:
                    mid = model.mutex_id(recv)
                sites.append(LockSite(mid, None, close + 1,
                                      unlock_end(model, recv, close),
                                      t.line))
                i = close
        i += 1
    return sites


def unlock_end(model, recv, from_i, var=None):
    """Token index of `recv.unlock()` (or `var.unlock()`) after from_i
    (end of body if absent)."""
    toks = model.fn.toks
    want = var if var is not None else expr_text(recv)
    for i in range(from_i, len(toks)):
        if toks[i].text == "unlock" and i >= 2 and \
                toks[i - 1].text in (".", "->"):
            if expr_text(receiver_before(toks, i)) == want:
                return i
    return len(toks) - 1


def split_args(toks, open_i, close_i):
    args = []
    cur = []
    depth = 0
    for t in toks[open_i + 1:close_i]:
        if t.text in "([{<":
            depth += 1
        elif t.text in ")]}>":
            depth -= 1
        if t.text == "," and depth == 0:
            if cur:
                args.append(cur)
            cur = []
        else:
            cur.append(t)
    if cur:
        args.append(cur)
    return args


def call_sites(toks):
    """(index, name, receiver_toks, qualifier) for every call in a token
    stream."""
    out = []
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or i + 1 >= n or toks[i + 1].text != "(":
            continue
        if t.text in _CTRL or t.text in ("sizeof", "alignof", "decltype",
                                         "static_cast", "dynamic_cast",
                                         "reinterpret_cast", "const_cast",
                                         "defined", "assert"):
            continue
        prev = toks[i - 1].text if i > 0 else ""
        if prev == "new":
            continue
        recv = receiver_before(toks, i) if prev in (".", "->") else []
        qual = ""
        if prev == "::" and i >= 2 and toks[i - 2].kind == "id":
            qual = toks[i - 2].text
        out.append((i, t.text, recv, qual))
    return out


# ---------------------------------------------------------------------------
# Interprocedural machinery
# ---------------------------------------------------------------------------

class Analyzer:
    def __init__(self, program):
        self.p = program
        self.models = {}
        self._acq_memo = {}
        self._blocking_memo = {}
        self._viol_memo = {}

    def model(self, fn):
        m = self.models.get(id(fn))
        if m is None:
            m = BodyModel(self.p, fn)
            self.models[id(fn)] = m
        return m

    def resolve_call(self, model, name, recv, qual):
        """FunctionInfo(s) a call may land in. Conservative: unresolved
        receivers fall back to bare-name lookup only when unambiguous
        and not an ambient STL-ish name."""
        if recv:
            ty = model.type_of(recv)
            if ty:
                hit = self.p.lookup_method(ty, name)
                return [hit] if hit else []
            if name in AMBIENT_NAMES:
                return []
        cands = self.p.by_name.get(name, [])
        if recv or qual:
            cands = [c for c in cands
                     if (not qual or (c.qual and qual in c.qual.split("::")))]
        if name in AMBIENT_NAMES:
            return []
        return cands if len(cands) <= 2 else []

    # -- transitive facts ----------------------------------------------------

    def mutexes_acquired(self, fn, depth=0, stack=None):
        """Canonical ids of every mutex fn may acquire, transitively."""
        key = id(fn)
        if key in self._acq_memo:
            return self._acq_memo[key]
        if depth > CALL_DEPTH:
            return {}
        stack = stack or set()
        if key in stack:
            return {}
        stack = stack | {key}
        model = self.model(fn)
        out = {}
        for s in lock_sites(model):
            out.setdefault(s.mutex, (fn.file, s.line))
        for i, name, recv, qual in call_sites(fn.toks):
            for callee in self.resolve_call(model, name, recv, qual):
                for m, site in self.mutexes_acquired(callee, depth + 1,
                                                     stack).items():
                    out.setdefault(m, site)
        if depth == 0:
            self._acq_memo[key] = out
        return out

    def blocking_reason(self, fn, depth=0, stack=None):
        """None, or a human chain explaining how fn blocks (cv wait /
        thread join), transitively."""
        key = id(fn)
        if key in self._blocking_memo:
            return self._blocking_memo[key]
        if depth > CALL_DEPTH:
            return None
        stack = stack or set()
        if key in stack:
            return None
        stack = stack | {key}
        toks = fn.toks
        reason = None
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            if t.text in ("wait", "wait_for", "wait_until") and i >= 2 and \
                    toks[i - 1].text in (".", "->"):
                reason = f"{fn.qual} waits on a condition_variable " \
                         f"({fn.file}:{t.line})"
                break
            if t.text == "join" and i >= 2 and toks[i - 1].text in (".", "->"):
                reason = f"{fn.qual} joins a thread ({fn.file}:{t.line})"
                break
        if reason is None:
            model = self.model(fn)
            for i, name, recv, qual in call_sites(toks):
                for callee in self.resolve_call(model, name, recv, qual):
                    sub = self.blocking_reason(callee, depth + 1, stack)
                    if sub:
                        reason = f"{fn.qual} -> {sub}"
                        break
                if reason:
                    break
        if depth == 0:
            self._blocking_memo[key] = reason
        return reason

    def body_violations(self, fn, patterns, depth=0, stack=None):
        """First (line, what, chain) in fn (or transitively through its
        calls) matching one of `patterns`, a dict name->predicate over
        (toks, i)."""
        key = (id(fn), tuple(sorted(patterns)))
        if key in self._viol_memo:
            return self._viol_memo[key]
        if depth > CALL_DEPTH:
            return None
        stack = stack or set()
        if id(fn) in stack:
            return None
        stack = stack | {id(fn)}
        hit = scan_patterns(fn.toks, patterns)
        if hit is not None:
            line, what = hit
            result = (line, what, [f"{fn.qual} ({fn.file}:{line})"])
        else:
            result = None
            model = self.model(fn)
            for i, name, recv, qual in call_sites(fn.toks):
                for callee in self.resolve_call(model, name, recv, qual):
                    # The runtime checker's own instrumentation (note_*,
                    # contract) allocates its shadow registry lazily —
                    # behind `if constexpr (check::enabled())`, compiled
                    # out of release builds. Walking into it would flag
                    # every instrumented kernel, so the alloc walk treats
                    # check:: as allocation-free by design.
                    if "alloc" in patterns and \
                            "::check::" in f"::{callee.qual}":
                        continue
                    sub = self.body_violations(callee, patterns, depth + 1,
                                               stack)
                    if sub:
                        line0 = fn.toks[i].line
                        result = (sub[0], sub[1],
                                  [f"{fn.qual} ({fn.file}:{line0})"] + sub[2])
                        break
                if result:
                    break
        if depth == 0:
            self._viol_memo[key] = result
        return result


BARRIER_WRITES = ("apply_move", "store_label", "rebuild_tot")
STAMP_ARRAYS = ("last_moved", "dirty_round")
ALLOC_GROWTH = ("push_back", "emplace_back", "resize", "reserve")


def scan_patterns(toks, patterns):
    n = len(toks)
    for i, t in enumerate(toks):
        if "barrier" in patterns:
            if t.kind == "id" and t.text in BARRIER_WRITES and i >= 1 and \
                    toks[i - 1].text in (".", "->") and i + 1 < n and \
                    toks[i + 1].text == "(":
                return (t.line, f"{t.text}() write")
            if t.kind == "id" and t.text in STAMP_ARRAYS and i + 1 < n and \
                    toks[i + 1].text == "[":
                close = match_close(toks, i + 1, "[", "]")
                if close + 1 < n and toks[close + 1].text == "=":
                    return (t.line, f"{t.text}[...] = write")
        if "alloc" in patterns:
            if t.text == "new" and t.kind == "id":
                return (t.line, "operator new")
            if t.kind == "id" and t.text in ("malloc", "calloc", "realloc") \
                    and i + 1 < n and toks[i + 1].text == "(":
                return (t.line, f"{t.text}()")
            if t.kind == "id" and t.text in ALLOC_GROWTH and i >= 1 and \
                    toks[i - 1].text in (".", "->") and i + 1 < n and \
                    toks[i + 1].text == "(":
                return (t.line, f"{t.text}() growth")
    return None


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------

def check_locks(an, fns, findings):
    """lock-cycle, blocking-under-lock, wait-holding-lock."""
    edges = {}  # (A, B) -> (file, line, chain)
    for fn in fns:
        model = an.model(fn)
        sites = lock_sites(model)
        toks = fn.toks
        for s in sites:
            held_others = [o for o in sites
                           if o is not s and o.start <= s.start and
                           s.start < o.end]
            # direct nesting edges
            for o in held_others:
                if o.mutex != s.mutex:
                    edges.setdefault((o.mutex, s.mutex),
                                     (fn.file, s.line, fn.qual))
            # events inside this hold range
            for i, name, recv, qual in call_sites(toks):
                if not (s.start <= i < s.end):
                    continue
                # condition_variable wait with OUR guard var releases
                # this mutex — not a block under it.
                if name in ("wait", "wait_for", "wait_until") and recv:
                    args_open = i + 1
                    close = match_close(toks, args_open)
                    first = split_args(toks, args_open, close)
                    lockvar = first[0][0].text if first and first[0] else ""
                    releasing = {o2.mutex for o2 in sites
                                 if o2.guard_var == lockvar}
                    still = [o2 for o2 in sites
                             if o2.start <= i < o2.end and
                             o2.mutex not in releasing]
                    for o2 in still:
                        findings.append(Finding(
                            "wait-holding-lock", fn.file, toks[i].line,
                            f"condition_variable::{name}({lockvar}) while "
                            f"also holding {o2.mutex} (acquired line "
                            f"{o2.line}) — the wait only releases its own "
                            "mutex",
                            fn.qual, key=f"{o2.mutex}|{name}"))
                    continue
                for callee in an.resolve_call(model, name, recv, qual):
                    # lock-order edges through the call
                    for m, site in an.mutexes_acquired(callee).items():
                        if m != s.mutex:
                            edges.setdefault(
                                (s.mutex, m),
                                (fn.file, toks[i].line,
                                 f"{fn.qual} -> {callee.qual}"))
                    reason = an.blocking_reason(callee)
                    if reason:
                        findings.append(Finding(
                            "blocking-under-lock", fn.file, toks[i].line,
                            f"call to {callee.qual}() while holding "
                            f"{s.mutex} (acquired line {s.line}) blocks: "
                            f"{reason}",
                            fn.qual, key=f"{s.mutex}|{callee.qual}"))
    # cycle detection over the order graph
    adj = {}
    for (a, b) in edges:
        adj.setdefault(a, set()).add(b)
    seen_cycles = set()
    for start in sorted(adj):
        path = []
        on_path = set()

        def dfs(u):
            if u in on_path:
                k = path.index(u)
                cyc = tuple(sorted(path[k:]))
                if cyc not in seen_cycles:
                    seen_cycles.add(cyc)
                    chain = path[k:] + [u]
                    file, line, where = edges[(path[k], path[k + 1]
                                               if k + 1 < len(path) else u)]
                    findings.append(Finding(
                        "lock-cycle", file, line,
                        "lock-order cycle: " + " -> ".join(chain) +
                        f" (one edge from {where}; a concurrent reverse "
                        "acquisition deadlocks)",
                        where, key="|".join(cyc)))
                return
            if u not in adj:
                return
            on_path.add(u)
            path.append(u)
            for v in sorted(adj[u]):
                dfs(v)
            path.pop()
            on_path.discard(u)

        dfs(start)


def check_status(an, fns, findings):
    """status-discard, unchecked-value."""
    p = an.p
    for fn in fns:
        toks = fn.toks
        model = an.model(fn)
        n = len(toks)
        checked = set()   # identifiers consulted via .ok()/.status()
        for i, t in enumerate(toks):
            if t.kind == "id" and t.text in ("ok", "status") and i >= 2 and \
                    toks[i - 1].text in (".", "->"):
                recv = receiver_before(toks, i)
                if len(recv) == 1:
                    checked.add(recv[0].text)
        for i, name, recv, qual in call_sites(toks):
            # ---- status-discard: expression-statement call ----
            prev = toks[i - 1].text if i > 0 else ";"
            stmt_head = prev in (";", "{", "}") or \
                (prev in (".", "->") and _stmt_leading(toks, i))
            if stmt_head:
                close = match_close(toks, i + 1)
                if close + 1 < n and toks[close + 1].text == ";":
                    if _returns_status(p, model, name, recv, qual):
                        findings.append(Finding(
                            "status-discard", fn.file, toks[i].line,
                            f"result of {name}() (util::Status/StatusOr) "
                            "is discarded — check .ok() or propagate",
                            fn.qual, key=name))
            # ---- unchecked-value ----
            if name == "value" and recv:
                base = _value_base(recv)
                if base is None:
                    findings.append(Finding(
                        "unchecked-value", fn.file, toks[i].line,
                        ".value() on a temporary StatusOr — it can never "
                        "have been checked; bind it and test .ok() first",
                        fn.qual, key="temporary"))
                elif base not in checked:
                    findings.append(Finding(
                        "unchecked-value", fn.file, toks[i].line,
                        f".value() on '{base}' with no .ok()/.status() "
                        "consultation of it anywhere in this function — "
                        "StatusOr::value() throws on error",
                        fn.qual, key=base))


def _stmt_leading(toks, i):
    """True when the receiver chain before a `.`-call starts a
    statement (so the whole statement is the call)."""
    recv = receiver_before(toks, i)
    if not recv:
        return False
    start = i - 1 - len(recv)  # token before the receiver chain
    if start < 0:
        return True
    return toks[start].text in (";", "{", "}")


def _value_base(recv):
    """Identifier a `.value()` receiver refers to: `x`, `std::move(x)`;
    None for temporaries like `f(...)`."""
    texts = [t.text for t in recv]
    ids = [t.text for t in recv if t.kind == "id"]
    if len(recv) == 1 and recv[0].kind == "id":
        return recv[0].text
    if "move" in ids and texts[-1] == ")":
        inner = [t for t in recv if t.kind == "id" and t.text != "move" and
                 t.text != "std"]
        if len(inner) == 1:
            return inner[0].text
    if texts and texts[-1] == ")":
        return None  # call temporary
    if ids:
        return ids[-1]
    return None


def _returns_status(p, model, name, recv, qual):
    if recv:
        ty = model.type_of(recv)
        if ty:
            hit = p.lookup_method(ty, name)
            if hit is not None:
                return "Status" in hit.ret
            # declared-but-not-defined methods: fall through to name set
    if name in AMBIENT_NAMES:
        return False
    if name in p.status_fns:
        cands = p.by_name.get(name, [])
        if cands and not all("Status" in c.ret for c in cands):
            return False  # ambiguous bare name
        return True
    return False


ARENA_SOURCES = ("alloc", "alloc_global", "buffer")
ARENA_DEF_FILES = ("shared_arena.hpp", "workspace.hpp", "workspace.cpp",
                   "scratch.hpp")


def check_arena_escape(an, fns, findings):
    p = an.p
    for fn in fns:
        if os.path.basename(fn.file) in ARENA_DEF_FILES:
            continue  # the allocators themselves
        toks = fn.toks
        n = len(toks)
        tainted = set()
        static_locals = set()
        ci = p.lookup_class(fn.cls) if fn.cls else None
        # Pre-pass: locals declared `static Type name...;` stay alive
        # across epochs even when assigned in a later statement.
        stmt = []
        for t in toks:
            if t.text in (";", "{", "}"):
                if stmt and stmt[0].text == "static":
                    ids = [x.text for x in stmt if x.kind == "id"]
                    if len(ids) >= 2:
                        static_locals.add(ids[-1])
                stmt = []
            else:
                stmt.append(t)
        i = 0
        while i < n:
            t = toks[i]
            # `lhs = <expr containing arena source>` or decl init
            if t.text == "=" and i + 1 < n:
                stmt_end = i
                while stmt_end < n and toks[stmt_end].text != ";":
                    stmt_end += 1
                rhs = toks[i + 1:stmt_end]
                rhs_src = _arena_source_in(rhs, tainted)
                if rhs_src:
                    stmt_start = i - 1
                    while stmt_start >= 0 and \
                            toks[stmt_start].text not in (";", "{", "}"):
                        stmt_start -= 1
                    lhs = toks[stmt_start + 1:i]
                    lhs_ids = [x.text for x in lhs if x.kind == "id"]
                    target = lhs_ids[-1] if lhs_ids else ""
                    lhs_texts = [x.text for x in lhs]
                    declares = len(lhs_ids) >= 2 or "auto" in lhs_texts
                    is_member = ci is not None and target in ci.members \
                        and not declares
                    is_this = "this" in lhs_texts
                    is_global = target in p.globals and not declares
                    is_static = "static" in lhs_texts or \
                        target in static_locals
                    if is_member or is_this or is_global or is_static:
                        where = ("member" if (is_member or is_this) else
                                 "static" if is_static else "global")
                        findings.append(Finding(
                            "arena-escape", fn.file, t.line,
                            f"arena/workspace-backed span ({rhs_src}) "
                            f"stored into a {where} '{target}' — the "
                            "backing memory dies at the next launch epoch "
                            "/ ws reset, this pointer does not",
                            fn.qual, key=f"{where}|{target}"))
                    else:
                        tainted.add(target)
                    i = stmt_end
                    continue
                # propagation: alias of a tainted local
                rhs_ids = [x.text for x in rhs if x.kind == "id"]
                if rhs_ids and rhs_ids[0] in tainted and len(rhs_ids) <= 2:
                    lhs = toks[max(0, i - 4):i]
                    lhs_ids = [x.text for x in lhs if x.kind == "id"]
                    if lhs_ids:
                        target = lhs_ids[-1]
                        if ci is not None and target in ci.members:
                            findings.append(Finding(
                                "arena-escape", fn.file, t.line,
                                f"arena-derived value '{rhs_ids[0]}' stored "
                                f"into member '{target}' — outlives the "
                                "launch epoch",
                                fn.qual, key=f"member|{target}"))
                        else:
                            tainted.add(target)
            i += 1


def _arena_source_in(toks, tainted):
    """Does a token run contain a direct arena allocation (or a .data()
    off a tainted local)?"""
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text in ARENA_SOURCES and i >= 1 and \
                toks[i - 1].text in (".", "->"):
            j = i + 1
            if j < n and toks[j].text == "<":
                j = match_close(toks, j, "<", ">") + 1
            if j < n and toks[j].text == "(":
                return f".{t.text}()"
        if t.kind == "id" and t.text == "data" and i >= 2 and \
                toks[i - 1].text in (".", "->") and \
                toks[i - 2].kind == "id" and toks[i - 2].text in tainted:
            return f"{toks[i - 2].text}.data()"
    return None


DEVICE_RECV_RE = re.compile(r"(^|[.>:])device_?$|^ctx$|device\(\)$")


def _fanout_regions(toks, names):
    """(call_index, name, body_start, body_end) for each call to one of
    `names` whose arguments contain a lambda body (the fan-out region).
    Bodiless prototypes (a `;` before any `{` inside the args) are
    skipped."""
    out = []
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in names:
            continue
        j = i + 1
        if j < n and toks[j].text == "<":
            j = match_close(toks, j, "<", ">") + 1
        if j >= n or toks[j].text != "(":
            continue
        close = match_close(toks, j)
        has_brace = any(x.text == "{" for x in toks[j:close])
        if has_brace:
            out.append((i, t.text, j + 1, close))
    return out


def check_fanout(an, fns, findings):
    """shard-barrier and kernel-alloc, transitively; unpaired-launch via
    span live-range."""
    for fn in fns:
        toks = fn.toks
        model = an.model(fn)

        # ---- spans alive per token index (for unpaired-launch) ----
        span_ranges = []
        for i, t in enumerate(toks):
            if t.kind == "id" and t.text == "Span" and i >= 2 and \
                    toks[i - 1].text == "::" and toks[i - 2].text == "obs":
                span_ranges.append((i, enclosing_block_end(toks, i)))
            if t.kind == "id" and t.text == "begin_span":
                span_ranges.append((i, len(toks) - 1))

        def spanned(i):
            return any(s <= i <= e for s, e in span_ranges)

        # ---- run_lanes regions: shard-barrier ----
        for ci, name, b0, b1 in _fanout_regions(toks, ("run_lanes",)):
            region = toks[b0:b1]
            hit = scan_patterns(region, {"barrier"})
            if hit:
                findings.append(Finding(
                    "shard-barrier", fn.file, hit[0],
                    f"'{hit[1]}' inside a run_lanes() fan-out — cross-shard "
                    "state is read-only until the join barrier; buffer the "
                    "mutation as a proposal",
                    fn.qual, key=hit[1]))
            for i, cname, recv, qual in call_sites(region):
                for callee in an.resolve_call(model, cname, recv, qual):
                    sub = an.body_violations(callee, {"barrier"})
                    if sub:
                        findings.append(Finding(
                            "shard-barrier", fn.file, region[i].line,
                            f"run_lanes() body calls {cname}() which "
                            f"performs '{sub[1]}' "
                            f"({' -> '.join(sub[2])}) — a cross-shard "
                            "write hidden behind a call is still a write "
                            "before the barrier",
                            fn.qual, key=f"deep|{cname}|{sub[1]}"))

        # ---- Device::launch / for_each regions ----
        launchish = _fanout_regions(toks, ("launch", "for_each",
                                           "for_each_worker"))
        for ci, name, b0, b1 in launchish:
            recv = receiver_before(toks, ci)
            recv_txt = expr_text(recv)
            ty = model.type_of(recv) if recv else None
            devicey = (ty in ("Device", "ScalarDevice", "VectorDevice")
                       or bool(DEVICE_RECV_RE.search(recv_txt)))
            if not devicey:
                continue
            region = toks[b0:b1]
            hit = scan_patterns(region, {"alloc"})
            if hit:
                findings.append(Finding(
                    "kernel-alloc", fn.file, hit[0],
                    f"'{hit[1]}' inside a kernel body — draw from the "
                    "SharedArena / Workspace instead",
                    fn.qual, key=hit[1]))
            for i, cname, crecv, qual in call_sites(region):
                # Only follow named helpers, not the ambient surface.
                for callee in an.resolve_call(model, cname, crecv, qual):
                    if os.path.basename(callee.file) in ARENA_DEF_FILES:
                        continue
                    sub = an.body_violations(callee, {"alloc"})
                    if sub:
                        findings.append(Finding(
                            "kernel-alloc", fn.file, region[i].line,
                            f"kernel body calls {cname}() which allocates: "
                            f"'{sub[1]}' ({' -> '.join(sub[2])})",
                            fn.qual, key=f"deep|{cname}|{sub[1]}"))
            if name == "launch" and not spanned(ci):
                findings.append(Finding(
                    "unpaired-launch", fn.file, toks[ci].line,
                    "Device::launch with no obs::Span alive in an "
                    "enclosing scope (and no begin_span earlier in "
                    f"{fn.name}) — kernels must be attributable in phase "
                    "tables and traces",
                    fn.qual, key=f"{recv_txt}|{toks[ci].line - fn.line}"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

# Repo root (parent of tools/): findings and baseline keys carry paths
# relative to it so they are stable no matter where glint is invoked
# from (ctest runs in the build tree).
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def repo_rel(path):
    rel = os.path.relpath(os.path.abspath(path), REPO_ROOT)
    return path if rel.startswith("..") else rel


def collect(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, _, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(SOURCE_EXT):
                        files.append(os.path.join(root, name))
        else:
            print(f"error: no such file or directory: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def build_program(files, frontend, compile_commands, notes):
    p = Program()
    fe = None
    if frontend in ("auto", "clang"):
        try:
            fe = ClangFrontend(p, compile_commands)
            notes.append("frontend: clang (libclang)")
        except Exception as e:  # ImportError, bad db, API drift
            if frontend == "clang":
                print(f"error: clang frontend unavailable: {e}",
                      file=sys.stderr)
                sys.exit(2)
            notes.append(f"frontend: tokens (clang unavailable: "
                         f"{e.__class__.__name__})")
    else:
        notes.append("frontend: tokens")
    if fe is None:
        fe = TokenFrontend(p)
    for path in files:
        rel = repo_rel(path)
        try:
            fe.parse_file(path, rel)
        except Exception as e:
            if isinstance(fe, TokenFrontend):
                raise
            notes.append(f"clang failed on {rel} ({e.__class__.__name__}); "
                         "re-indexing with tokens")
            p2 = Program()
            tf = TokenFrontend(p2)
            for path2 in files:
                tf.parse_file(path2, repo_rel(path2))
            return p2
    return p


def load_baseline(path):
    if not path or not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    return {e["key"]: e.get("why", "") for e in data.get("suppressions", [])}


def write_baseline(path, findings):
    entries = [{"key": f.baseline_key(),
                "rule": f.rule,
                "file": f.file,
                "why": "TODO: justify or fix"}
               for f in findings]
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"comment": "glint baseline — every entry must carry a "
                              "justification in 'why'; regenerate with "
                              "--write-baseline after refactors",
                   "suppressions": entries}, f, indent=2)
        f.write("\n")


def to_sarif(findings):
    rules = sorted({f.rule for f in findings} | set(ALL_RULES))
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "glint",
                "informationUri": "tools/glint.py",
                "rules": [{"id": r} for r in rules],
            }},
            "results": [{
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [{"physicalLocation": {
                    "artifactLocation": {"uri": f.file.replace(os.sep, "/")},
                    "region": {"startLine": max(1, f.line)},
                }}],
            } for f in findings],
        }],
    }


def suppressed_inline(program, f):
    lines = program.raw_lines.get(f.file)
    if not lines or f.line - 1 >= len(lines):
        return False
    m = SUPPRESS_RE.search(lines[f.line - 1])
    return bool(m) and m.group(1) == f.rule


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="+",
                    help="files or directories to index AND report on")
    ap.add_argument("--frontend", choices=("auto", "clang", "tokens"),
                    default="auto")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for the clang frontend")
    ap.add_argument("--rules", default=None,
                    help="comma-separated subset of rules to run "
                         f"(default all: {','.join(ALL_RULES)})")
    ap.add_argument("--baseline", default=None,
                    help="baseline suppression JSON (tools/glint_baseline"
                         ".json)")
    ap.add_argument("--write-baseline", default=None, metavar="PATH",
                    help="write current findings as a fresh baseline and "
                         "exit 0")
    ap.add_argument("--changed-files", nargs="*", default=None,
                    help="only report findings anchored in these files "
                         "(the full paths are still indexed for "
                         "interprocedural context)")
    ap.add_argument("--sarif", default=None, metavar="OUT",
                    help="also write SARIF 2.1.0 to OUT")
    ap.add_argument("--expect-violations", action="store_true",
                    help="fixture mode: succeed iff violations ARE found "
                         "(with --rules: every listed rule must fire)")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args()

    rules = tuple(args.rules.split(",")) if args.rules else ALL_RULES
    for r in rules:
        if r not in ALL_RULES:
            print(f"error: unknown rule '{r}'", file=sys.stderr)
            return 2

    files = collect(args.paths)
    if not files:
        print("error: no sources under the given paths", file=sys.stderr)
        return 2

    notes = []
    program = build_program(files, args.frontend, args.compile_commands,
                            notes)
    an = Analyzer(program)
    fns = program.functions

    findings = []
    if {"lock-cycle", "blocking-under-lock",
            "wait-holding-lock"} & set(rules):
        check_locks(an, fns, findings)
    if {"status-discard", "unchecked-value"} & set(rules):
        check_status(an, fns, findings)
    if "arena-escape" in rules:
        check_arena_escape(an, fns, findings)
    if {"shard-barrier", "kernel-alloc", "unpaired-launch"} & set(rules):
        check_fanout(an, fns, findings)

    findings = [f for f in findings if f.rule in rules]
    # dedupe (transitive walks can reach one site twice)
    uniq = {}
    for f in findings:
        uniq.setdefault((f.rule, f.file, f.line, f.key), f)
    findings = sorted(uniq.values(),
                      key=lambda f: (f.file, f.line, f.rule))

    findings = [f for f in findings if not suppressed_inline(program, f)]

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(f"baseline written: {len(findings)} entr"
              f"{'y' if len(findings) == 1 else 'ies'} -> "
              f"{args.write_baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    live, baselined = [], []
    for f in findings:
        if f.baseline_key() in baseline:
            baselined.append(f)
        else:
            live.append(f)

    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as fh:
            json.dump(to_sarif(live), fh, indent=2)
            fh.write("\n")

    if args.changed_files is not None:
        changed = {repo_rel(c) for c in args.changed_files}
        live = [f for f in live if f.file in changed]

    for note in notes:
        print(f"note: {note}", file=sys.stderr)
    for f in live:
        print(f)
    if args.verbose:
        for f in baselined:
            print(f"baselined: {f}  (why: "
                  f"{baseline[f.baseline_key()]})")

    if args.expect_violations:
        hit_rules = {f.rule for f in live}
        missing = [r for r in rules if r not in hit_rules] \
            if args.rules else ([] if live else list(rules))
        if live and not missing:
            print(f"fixture OK: {len(live)} violation(s) caught "
                  f"({', '.join(sorted(hit_rules))})")
            return 0
        print("error: fixture did not trip "
              f"{', '.join(missing) or 'any rule'} — the analyzer has "
              "rotted", file=sys.stderr)
        return 1

    if live:
        print(f"\n{len(live)} violation(s) in {len(files)} file(s)"
              + (f" ({len(baselined)} baselined)" if baselined else ""),
              file=sys.stderr)
        return 1
    print(f"{len(files)} file(s) clean"
          + (f" ({len(baselined)} baselined)" if baselined else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
