// glouvain — command-line front end for the library.
//
//   glouvain generate --family rmat --scale 14 --out g.bin
//   glouvain stats    --in g.bin
//   glouvain detect   --in g.bin --algo core --out communities.txt
//   glouvain convert  --in g.mtx --out g.bin
//
// `detect` writes one "<vertex> <community>" line per vertex and prints
// modularity / timing to stdout.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "core/louvain.hpp"
#include "gen/suite.hpp"
#include "graph/coloring.hpp"
#include "graph/io.hpp"
#include "graph/ops.hpp"
#include "metrics/partition.hpp"
#include "multi/multi.hpp"
#include "plm/plm.hpp"
#include "seq/louvain.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace glouvain;

int usage(const char* error = nullptr) {
  if (error) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: glouvain <command> [options]\n"
               "\n"
               "commands:\n"
               "  generate  build a synthetic suite graph and save it\n"
               "            --family <name|list> --scale S --seed N --out FILE\n"
               "  detect    run community detection\n"
               "            --in FILE --algo core|seq|plm|multi [--out FILE]\n"
               "            [--tbin X --tfinal Y] [--devices D] [--coloring]\n"
               "  stats     print graph statistics      --in FILE\n"
               "  convert   re-encode a graph file      --in FILE --out FILE\n"
               "  color     greedy parallel coloring    --in FILE\n");
  return error ? 1 : 0;
}

graph::Csr load_required(util::Options& opt) {
  const std::string in = opt.get_string("in", "", "input graph file");
  if (in.empty()) throw std::runtime_error("--in is required");
  return graph::load_auto(in);
}

int cmd_generate(util::Options& opt) {
  const std::string family =
      opt.get_string("family", "list", "suite family (or 'list')");
  const double scale = opt.get_double("scale", 0.1, "size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const std::string out = opt.get_string("out", "", "output file (.bin/.txt)");
  if (family == "list") {
    util::Table table({"name", "family", "stands in for"});
    for (const auto& e : gen::table1_suite()) {
      table.add_row({e.name, e.family, e.paper_graph});
    }
    table.print(std::cout);
    return 0;
  }
  if (out.empty()) return usage("--out is required for generate");
  const auto g = gen::suite_entry(family).build(scale, static_cast<std::uint64_t>(seed));
  if (out.size() > 4 && out.compare(out.size() - 4, 4, ".bin") == 0) {
    graph::save_binary(g, out);
  } else {
    graph::save_edge_list(g, out);
  }
  std::printf("wrote %s: %u vertices, %llu edges\n", out.c_str(),
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()));
  return 0;
}

int cmd_detect(util::Options& opt) {
  const auto g = load_required(opt);
  const std::string algo =
      opt.get_string("algo", "core", "core | seq | plm | multi");
  const std::string out = opt.get_string("out", "", "community output file");
  const double t_bin = opt.get_double("tbin", 1e-2, "coarse threshold");
  const double t_final = opt.get_double("tfinal", 1e-6, "fine threshold");
  const auto devices = static_cast<unsigned>(
      opt.get_int("devices", 2, "simulated devices (multi only)"));
  const bool coloring = opt.get_flag("coloring", "serialize moves by graph coloring");

  ThresholdSchedule thresholds{.t_bin = t_bin, .t_final = t_final,
                               .adaptive_limit = 100'000, .adaptive = true};
  LouvainResult result;
  if (algo == "core" || algo == "multi") {
    core::Config cfg;
    cfg.thresholds = thresholds;
    cfg.use_coloring = coloring;
    if (algo == "core") {
      result = core::louvain(g, cfg);
    } else {
      multi::Config mcfg;
      mcfg.num_devices = devices;
      mcfg.device = cfg;
      mcfg.partition =
          opt.get_string("partition", "random", "block | random (multi only)") ==
                  "block"
              ? multi::PartitionStrategy::Block
              : multi::PartitionStrategy::Random;
      mcfg.local_levels = static_cast<int>(
          opt.get_int("local-levels", 1, "local levels before merge (multi only)"));
      const multi::Result mr = multi::louvain(g, mcfg);
      std::printf("coarse phase alone: Q = %.5f on %u devices\n",
                  mr.local_modularity, mr.devices_used);
      result = mr;
    }
  } else if (algo == "seq") {
    seq::Config cfg;
    cfg.thresholds = thresholds;
    result = seq::louvain(g, cfg);
  } else if (algo == "plm") {
    plm::Config cfg;
    cfg.thresholds = thresholds;
    result = plm::louvain(g, cfg);
  } else {
    return usage("unknown --algo");
  }

  const auto stats = metrics::partition_stats(result.community);
  std::printf("%s: Q = %.5f, %llu communities, %zu levels, %.3fs\n",
              algo.c_str(), result.modularity,
              static_cast<unsigned long long>(stats.num_communities),
              result.levels.size(), result.total_seconds);
  if (!out.empty()) {
    std::ofstream os(out);
    for (std::size_t v = 0; v < result.community.size(); ++v) {
      os << v << ' ' << result.community[v] << '\n';
    }
    std::printf("communities written to %s\n", out.c_str());
  }
  return 0;
}

int cmd_stats(util::Options& opt) {
  const auto g = load_required(opt);
  const auto stats = graph::degree_stats(g);
  std::printf("vertices:    %u\n", g.num_vertices());
  std::printf("edges:       %llu (%llu loops)\n",
              static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(g.num_loops()));
  std::printf("total 2m:    %.1f\n", g.total_weight());
  std::printf("degrees:     min %llu / mean %.2f / max %llu\n",
              static_cast<unsigned long long>(stats.min_degree),
              stats.mean_degree,
              static_cast<unsigned long long>(stats.max_degree));
  std::printf("components:  %llu\n",
              static_cast<unsigned long long>(graph::count_components(g)));
  static const char* kNames[] = {"(0,4]", "(4,8]", "(8,16]", "(16,32]",
                                 "(32,84]", "(84,319]", ">319"};
  std::printf("paper degree buckets:\n");
  for (int b = 0; b < 7; ++b) {
    std::printf("  %-8s %llu\n", kNames[b],
                static_cast<unsigned long long>(stats.bucket_counts[b]));
  }
  const std::string problem = graph::validate(g);
  std::printf("validate:    %s\n", problem.empty() ? "ok" : problem.c_str());
  return 0;
}

int cmd_convert(util::Options& opt) {
  const auto g = load_required(opt);
  const std::string out = opt.get_string("out", "", "output file (.bin/.txt)");
  if (out.empty()) return usage("--out is required for convert");
  if (out.size() > 4 && out.compare(out.size() - 4, 4, ".bin") == 0) {
    graph::save_binary(g, out);
  } else {
    graph::save_edge_list(g, out);
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int cmd_color(util::Options& opt) {
  const auto g = load_required(opt);
  const auto coloring = graph::color_graph(g);
  std::printf("colors: %u (max degree + 1 bound: %llu), %d speculative rounds\n",
              coloring.num_colors,
              static_cast<unsigned long long>(graph::degree_stats(g).max_degree + 1),
              coloring.rounds);
  const std::string problem = graph::validate_coloring(g, coloring);
  std::printf("validate: %s\n", problem.empty() ? "ok" : problem.c_str());
  return problem.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage("missing command");
  const std::string command = argv[1];
  util::Options opt(argc - 1, argv + 1);
  try {
    if (command == "generate") return cmd_generate(opt);
    if (command == "detect") return cmd_detect(opt);
    if (command == "stats") return cmd_stats(opt);
    if (command == "convert") return cmd_convert(opt);
    if (command == "color") return cmd_color(opt);
    if (command == "--help" || command == "-h" || command == "help") return usage();
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  return usage(("unknown command: " + command).c_str());
}
