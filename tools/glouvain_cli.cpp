// glouvain — command-line front end for the library.
//
//   glouvain generate --family rmat --scale 14 --out g.bin
//   glouvain stats    --in g.bin
//   glouvain detect   --in g.bin --backend core --trace trace.json
//   glouvain convert  --in g.mtx --out g.bin
//   glouvain batch    --manifest jobs.txt --devices 2
//
// `detect` writes one "<vertex> <community>" line per vertex and prints
// modularity / timing to stdout; `--trace FILE` additionally records
// the per-level phase/kernel span tree and dumps it as chrome://tracing
// JSON plus a phase table on stdout. `batch` reads a manifest of graph
// files (one `path [priority]` per line) and runs them concurrently
// through the svc::Service layer.
//
// Every backend is reached through the detect::make() registry — there
// is no per-backend dispatch here. Errors exit with the distinct codes
// of util::exit_code (2 = bad input, 3 = not found, 4 = I/O, ...).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "detect/detector.hpp"
#include "zg/container.hpp"
#include "gen/churn.hpp"
#include "gen/suite.hpp"
#include "graph/coloring.hpp"
#include "graph/io.hpp"
#include "graph/ops.hpp"
#include "metrics/partition.hpp"
#include "obs/recorder.hpp"
#include "stream/delta_io.hpp"
#include "stream/session.hpp"
#include "svc/service.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/status.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace glouvain;

int usage(const char* error = nullptr) {
  if (error) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: glouvain <command> [options]\n"
               "\n"
               "commands:\n"
               "  generate  build a synthetic suite graph and save it\n"
               "            --family <name|list> --scale S --seed N --out FILE\n"
               "  detect    run community detection\n"
               "            --in FILE --backend core|seq|plm|multi|shard\n"
               "            [--out FILE] [--trace FILE] [--tbin X --tfinal Y]\n"
               "            [--devices D] [--coloring] [--threads N] [--verbose]\n"
               "            [--storage plain|zcsr|mmap] [--table sentinel|occ]\n"
               "            [--device scalar|vector|auto] [--shards K]\n"
               "            [--partition block|random|hubrep] [--partition-seed N]\n"
               "            [--concurrent-shards] [--shard-storage plain|mmap]\n"
               "  compress  varint-compress a graph into a .zg container\n"
               "            --in FILE --out FILE.zg\n"
               "  batch     run a manifest of graphs through the service\n"
               "            --manifest FILE [--devices D] [--threads N]\n"
               "            [--aux A] [--queue Q] [--cache C] [--repeat R]\n"
               "            [--backend auto|core|seq|plm|multi|shard]\n"
               "            [--shards K] [--partition block|random|hubrep]\n"
               "            [--concurrent-shards] [--shard-storage plain|mmap]\n"
               "            [--deadline MS]\n"
               "  stream    apply delta batches to a dynamic-graph session\n"
               "            --in FILE --deltas FILE [--backend core|seq]\n"
               "            [--cold] [--hops H] [--no-closure] [--threads N]\n"
               "            [--out FILE]\n"
               "  churn     generate timestamped delta batches\n"
               "            --in FILE --out FILE [--labels FILE] [--epochs E]\n"
               "            [--fraction F] [--mode preserve|merge] [--seed N]\n"
               "  stats     print graph statistics      --in FILE\n"
               "  convert   re-encode a graph file      --in FILE --out FILE\n"
               "  color     greedy parallel coloring    --in FILE\n"
               "\n"
               "storage modes (detect --storage; .zg inputs default to mmap):\n"
               "  plain  raw CSR arrays in memory (default for other inputs)\n"
               "  zcsr   delta/varint-compressed adjacency, rows decoded\n"
               "         through per-worker cursors; partitions bitwise-equal\n"
               "  mmap   the zcsr layout read from a mapped .zg container\n"
               "         (out-of-core: the plain arrays never materialize)\n"
               "\n"
               "partition strategies (shard backend; multi understands the\n"
               "  first two): block = arc-balanced contiguous ranges, random =\n"
               "  hashed assignment, hubrep = arc-balanced blocks with\n"
               "  high-degree hubs placed by neighbor plurality and mirrored\n"
               "  into every shard they touch (default)\n"
               "\n"
               "device backends (detect --device; core/multi backends only):\n"
               "  scalar  lockstep lane interpreter; partitions bitwise-stable\n"
               "          across runs and machines\n"
               "  vector  AVX2 lane substrate (gathered hash probes, masked\n"
               "          slot scans); falls back to a scalar emulation of\n"
               "          the same call graph without AVX2 or with\n"
               "          GLOUVAIN_NO_AVX2 set\n"
               "  auto    vector iff the CPU supports AVX2 (default)\n"
               "\n"
               "flag/exit-code matrix: unknown names for --backend, --storage,\n"
               "  --table or --device, and unsupported combinations (zcsr/mmap\n"
               "  with --coloring or warm starts; non-plain storage on plm or\n"
               "  multi) all exit 2 (invalid argument).\n"
               "\n"
               "exit codes (util::Status, see README):\n"
               "  0 ok                 1 usage error          2 invalid argument\n"
               "  3 not found          4 I/O error            5 resource exhausted\n"
               "  6 deadline exceeded  7 cancelled            8 failed precondition\n"
               "  9 unavailable       10 internal error\n");
  return error ? 1 : 0;
}

/// Print a non-ok status and return its distinct process exit code.
int fail_status(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return util::exit_code(status);
}

util::StatusOr<graph::Csr> load_required(util::Options& opt) {
  const std::string in = opt.get_string("in", "", "input graph file");
  if (in.empty()) return util::Status::invalid_argument("--in is required");
  return graph::try_load_auto(in);
}

int cmd_generate(util::Options& opt) {
  const std::string family =
      opt.get_string("family", "list", "suite family (or 'list')");
  const double scale = opt.get_double("scale", 0.1, "size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const std::string out = opt.get_string("out", "", "output file (.bin/.txt)");
  if (family == "list") {
    util::Table table({"name", "family", "stands in for"});
    for (const auto& e : gen::table1_suite()) {
      table.add_row({e.name, e.family, e.paper_graph});
    }
    table.print(std::cout);
    return 0;
  }
  if (out.empty()) return usage("--out is required for generate");
  const auto g = gen::suite_entry(family).build(scale, static_cast<std::uint64_t>(seed));
  const util::Status saved =
      (out.size() > 4 && out.compare(out.size() - 4, 4, ".bin") == 0)
          ? graph::try_save_binary(g, out)
          : graph::try_save_edge_list(g, out);
  if (!saved.ok()) return fail_status(saved);
  std::printf("wrote %s: %u vertices, %llu edges\n", out.c_str(),
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()));
  return 0;
}

void print_levels(const LouvainResult& result) {
  util::Table table({"level", "vertices", "arcs", "sweeps", "Q after",
                     "optimize s", "aggregate s"});
  for (std::size_t l = 0; l < result.levels.size(); ++l) {
    const LevelReport& r = result.levels[l];
    table.add_row({std::to_string(l), std::to_string(r.vertices),
                   std::to_string(r.arcs), std::to_string(r.iterations),
                   util::Table::fixed(r.modularity_after, 5),
                   util::Table::fixed(r.optimize_seconds, 4),
                   util::Table::fixed(r.aggregate_seconds, 4)});
  }
  table.print(std::cout);
}

bool is_zg_path(const std::string& path) {
  return path.size() > 3 && path.compare(path.size() - 3, 3, ".zg") == 0;
}

int cmd_detect(util::Options& opt) {
  const std::string in =
      opt.get_string("in", "", "input graph file (.bin/.txt/.mtx/.zg)");
  if (in.empty()) {
    return fail_status(util::Status::invalid_argument("--in is required"));
  }

  std::string backend =
      opt.get_string("backend", "", "core | seq | plm | multi | shard");
  const std::string algo =
      opt.get_string("algo", "core", "deprecated alias of --backend");
  if (backend.empty()) backend = algo;
  const std::string out = opt.get_string("out", "", "community output file");
  const std::string trace_path =
      opt.get_string("trace", "", "write chrome://tracing JSON here");
  const double t_bin = opt.get_double("tbin", 1e-2, "coarse threshold");
  const double t_final = opt.get_double("tfinal", 1e-6, "fine threshold");
  const auto devices = static_cast<unsigned>(
      opt.get_int("devices", 2, "simulated devices (multi only)"));
  const auto threads = static_cast<unsigned>(opt.get_int(
      "threads", 0, "simt device worker threads (0 = hardware)"));
  const bool coloring = opt.get_flag("coloring", "serialize moves by graph coloring");
  const bool verbose =
      opt.get_flag("verbose", "print per-level timings and device stats");
  const std::string storage_arg = opt.get_string(
      "storage", "", "level-0 storage: plain | zcsr | mmap (see below)");
  const std::string table_arg = opt.get_string(
      "table", "sentinel", "modopt hash-table layout: sentinel | occ");
  const std::string device_arg = opt.get_string(
      "device", "auto", "lane substrate: scalar | vector | auto");

  detect::Storage storage =
      is_zg_path(in) ? detect::Storage::kMmap : detect::Storage::kPlain;
  if (!storage_arg.empty() && !detect::parse_storage(storage_arg, storage)) {
    return fail_status(
        util::Status::invalid_argument("unknown --storage: " + storage_arg));
  }

  // One canonical Options carries every algorithm knob; the Extensions
  // struct is reserved for backend-internal machinery (bucket schemes,
  // multi device counts) that has no Options equivalent.
  detect::Options options;
  options.thresholds = ThresholdSchedule{.t_bin = t_bin, .t_final = t_final,
                                         .adaptive_limit = 100'000,
                                         .adaptive = true};
  options.threads = threads;
  options.storage = storage;
  options.use_coloring = coloring;
  options.shards = static_cast<unsigned>(
      opt.get_int("shards", 1, "shard count (shard backend only)"));
  options.partition_seed = static_cast<std::uint64_t>(
      opt.get_int("partition-seed", 1, "random-partition seed"));
  options.concurrent_shards = opt.get_flag(
      "concurrent-shards", "run shards concurrently on pooled devices");
  const std::string shard_storage_arg = opt.get_string(
      "shard-storage", "plain", "plain | mmap (out-of-core shard graphs)");
  if (!detect::parse_shard_storage(shard_storage_arg, options.shard_storage)) {
    return fail_status(util::Status::invalid_argument(
        "unknown --shard-storage: " + shard_storage_arg));
  }
  if (!detect::parse_table_layout(table_arg, options.table_layout)) {
    return fail_status(
        util::Status::invalid_argument("unknown --table: " + table_arg));
  }
  if (!simt::parse_backend(device_arg, options.device)) {
    return fail_status(
        util::Status::invalid_argument("unknown --device: " + device_arg));
  }

  const std::string partition_arg = opt.get_string(
      "partition", "", "block | random | hubrep (shard; block|random for multi)");
  if (!partition_arg.empty() &&
      !detect::parse_partition(partition_arg, options.partition)) {
    return fail_status(
        util::Status::invalid_argument("unknown --partition: " + partition_arg));
  }

  detect::Extensions ext;
  ext.multi.num_devices = devices;
  // The deprecated multi backend predates the hub-replicated strategy:
  // block maps across, anything else falls back to its random default.
  ext.multi.partition = partition_arg == "block"
                            ? multi::PartitionStrategy::Block
                            : multi::PartitionStrategy::Random;
  ext.multi.local_levels = static_cast<int>(
      opt.get_int("local-levels", 1, "local levels before merge (multi only)"));

  auto detector = detect::make(backend, ext);
  if (!detector.ok()) return fail_status(detector.status());

  // A recorder is attached only when someone will read it; otherwise
  // the run takes the nullptr (zero-overhead) path.
  obs::Recorder recorder;
  obs::Recorder* rec = (!trace_path.empty() || verbose) ? &recorder : nullptr;

  // .zg containers dispatch through the compressed entry point (the
  // graph library itself stays below zg in the dependency order, so
  // the format is routed here, not in try_load_auto). --storage plain
  // on a .zg input decodes once and runs the plain path.
  detect::Result result;
  if (is_zg_path(in)) {
    if (storage == detect::Storage::kMmap) {
      auto mapped = zg::MappedGraph::open(in);
      if (!mapped.ok()) return fail_status(mapped.status());
      result = (*detector)->run_z(mapped->zcsr(), options, rec);
    } else {
      auto z = zg::load(in);
      if (!z.ok()) return fail_status(z.status());
      if (storage == detect::Storage::kPlain) {
        const graph::Csr g = z->decode_all();
        result = (*detector)->run(g, options, rec);
      } else {
        result = (*detector)->run_z(*z, options, rec);
      }
    }
  } else {
    auto loaded = graph::try_load_auto(in);
    if (!loaded.ok()) return fail_status(loaded.status());
    const graph::Csr g = std::move(loaded).value();
    result = (*detector)->run(g, options, rec);
  }

  const auto stats = metrics::partition_stats(result.community);
  std::printf("%s: Q = %.5f, %llu communities, %zu levels, %.3fs\n",
              backend.c_str(), result.modularity,
              static_cast<unsigned long long>(stats.num_communities),
              result.levels.size(), result.total_seconds);
  if (verbose) {
    print_levels(result);
    if (result.device.workers > 0) {
      std::printf("device: %u workers, %llu shared-arena spills\n",
                  result.device.workers,
                  static_cast<unsigned long long>(result.device.shared_spills));
    }
    if (result.first_phase_teps > 0) {
      std::printf("first-phase TEPS: %.3g\n", result.first_phase_teps);
    }
  }
  if (rec) {
    recorder.write_phase_table(std::cout);
    const std::string problem = recorder.validate();
    if (!problem.empty()) {
      std::fprintf(stderr, "warning: span tree malformed: %s\n", problem.c_str());
    }
  }
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    if (os) recorder.write_chrome_trace(os);
    if (!os) {
      return fail_status(
          util::Status::io_error("cannot write trace: " + trace_path));
    }
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  if (!out.empty()) {
    std::ofstream os(out);
    for (std::size_t v = 0; v < result.community.size(); ++v) {
      os << v << ' ' << result.community[v] << '\n';
    }
    if (!os) {
      return fail_status(
          util::Status::io_error("cannot write communities: " + out));
    }
    std::printf("communities written to %s\n", out.c_str());
  }
  return 0;
}

util::StatusOr<svc::Backend> parse_backend(const std::string& name) {
  if (name == "auto") return svc::Backend::Auto;
  if (name == "core") return svc::Backend::Core;
  if (name == "seq") return svc::Backend::Seq;
  if (name == "plm") return svc::Backend::Plm;
  if (name == "multi") return svc::Backend::Multi;
  if (name == "shard") return svc::Backend::Shard;
  return util::Status::invalid_argument("unknown --backend: " + name);
}

int cmd_batch(util::Options& opt) {
  const std::string manifest_path =
      opt.get_string("manifest", "", "manifest file: one `path [priority]` per line");
  svc::ServiceConfig cfg;
  cfg.devices = static_cast<unsigned>(
      opt.get_int("devices", 2, "pooled simt devices"));
  cfg.device_threads = static_cast<unsigned>(opt.get_int(
      "threads", 0, "simt worker threads per device (0 = hardware)"));
  cfg.aux_workers = static_cast<unsigned>(
      opt.get_int("aux", 1, "device-less workers for sequential jobs"));
  cfg.queue_capacity = static_cast<std::size_t>(
      opt.get_int("queue", 256, "pending-job bound (backpressure beyond)"));
  cfg.cache_capacity = static_cast<std::size_t>(
      opt.get_int("cache", 32, "result-cache entries (0 = off)"));
  cfg.seq_cost_limit = static_cast<std::uint64_t>(opt.get_int(
      "seq-limit", 1 << 13, "n+m at or below this runs on the seq backend"));
  cfg.options.shards = static_cast<unsigned>(
      opt.get_int("shards", 1, "shard count (shard backend only)"));
  cfg.options.concurrent_shards = opt.get_flag(
      "concurrent-shards", "run shards concurrently on pooled devices");
  const std::string serve_storage_arg = opt.get_string(
      "shard-storage", "plain", "plain | mmap (out-of-core shard graphs)");
  if (!detect::parse_shard_storage(serve_storage_arg,
                                   cfg.options.shard_storage)) {
    return fail_status(util::Status::invalid_argument(
        "unknown --shard-storage: " + serve_storage_arg));
  }
  const std::string partition_arg = opt.get_string(
      "partition", "", "block | random | hubrep (shard backend only)");
  if (!partition_arg.empty() &&
      !detect::parse_partition(partition_arg, cfg.options.partition)) {
    return fail_status(
        util::Status::invalid_argument("unknown --partition: " + partition_arg));
  }
  const auto backend = parse_backend(
      opt.get_string("backend", "auto",
                     "auto | core | seq | plm | multi | shard"));
  if (!backend.ok()) return fail_status(backend.status());
  const auto repeat = static_cast<int>(
      opt.get_int("repeat", 1, "submit the whole manifest this many times"));
  const auto deadline_ms = opt.get_int(
      "deadline", 0, "per-job deadline in milliseconds (0 = none)");
  if (manifest_path.empty()) return usage("--manifest is required for batch");

  struct Entry {
    std::string path;
    int priority = 0;
  };
  std::vector<Entry> entries;
  std::ifstream is(manifest_path);
  if (!is) {
    return fail_status(
        util::Status::not_found("cannot open manifest: " + manifest_path));
  }
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    Entry e;
    if (!(ls >> e.path) || e.path[0] == '#' || e.path[0] == '%') continue;
    ls >> e.priority;
    entries.push_back(std::move(e));
  }
  if (entries.empty()) return usage("manifest lists no graphs");

  // Load each distinct file once; repeated passes resubmit the same
  // graphs, which is exactly what exercises the result cache.
  std::vector<graph::Csr> graphs;
  graphs.reserve(entries.size());
  for (const Entry& e : entries) {
    auto g = graph::try_load_auto(e.path);
    if (!g.ok()) return fail_status(g.status());
    graphs.push_back(std::move(g).value());
  }

  svc::Service service(cfg);
  struct Submitted {
    svc::JobId id;
    const Entry* entry;
    int pass;
  };
  std::vector<Submitted> jobs;
  util::Status worst = util::Status::ok_status();
  util::Timer wall;
  for (int pass = 0; pass < repeat; ++pass) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      svc::JobOptions jo;
      jo.priority = entries[i].priority;
      jo.backend = *backend;
      jo.deadline = std::chrono::milliseconds(deadline_ms);
      auto id = service.try_submit(graphs[i], jo);
      if (!id.ok()) {
        std::fprintf(stderr, "submit %s (pass %d): %s\n", entries[i].path.c_str(),
                     pass, id.status().to_string().c_str());
        if (worst.ok()) worst = id.status();
        continue;
      }
      jobs.push_back({*id, &entries[i], pass});
    }
  }

  util::Table table({"job", "graph", "pass", "status", "backend", "cache",
                     "Q", "queue ms", "run ms"});
  for (const Submitted& s : jobs) {
    const svc::JobResult r = service.wait(s.id);
    const util::Status status = svc::to_status(r);
    if (!status.ok() && worst.ok()) worst = status;
    table.add_row(
        {std::to_string(s.id), s.entry->path, std::to_string(s.pass),
         svc::to_string(r.status), svc::to_string(r.backend),
         r.cache_hit ? "hit" : "-",
         r.result ? util::Table::fixed(r.result->modularity, 5) : "-",
         util::Table::fixed(r.queue_seconds * 1e3, 2),
         util::Table::fixed(r.run_seconds * 1e3, 2)});
  }
  const double total = wall.seconds();
  table.print(std::cout);

  const svc::Stats st = service.stats();
  std::printf("\n%zu jobs in %.3fs (%.1f jobs/s)\n", jobs.size(), total,
              static_cast<double>(jobs.size()) / total);
  std::printf("accepted %llu  rejected %llu  completed %llu  cancelled %llu  "
              "expired %llu  failed %llu\n",
              static_cast<unsigned long long>(st.accepted),
              static_cast<unsigned long long>(st.rejected),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.cancelled),
              static_cast<unsigned long long>(st.expired),
              static_cast<unsigned long long>(st.failed));
  std::printf("cache hits %llu  misses %llu  entries %zu  evictions %llu\n",
              static_cast<unsigned long long>(st.cache_hits),
              static_cast<unsigned long long>(st.cache_misses),
              st.cache_entries,
              static_cast<unsigned long long>(st.cache_evictions));
  std::printf("routing: device %llu  sequential %llu  other %llu\n",
              static_cast<unsigned long long>(st.ran_on_device),
              static_cast<unsigned long long>(st.ran_sequential),
              static_cast<unsigned long long>(st.ran_other));
  std::printf("devices %u x %u threads, %llu shared-arena spills; "
              "queue wait %.3fs, run %.3fs\n",
              st.devices, st.device_threads,
              static_cast<unsigned long long>(st.shared_spills),
              st.queue_wait_seconds, st.run_seconds);
  std::printf("phases: optimize %.3fs, aggregate %.3fs over %llu levels, "
              "%llu sweeps\n",
              st.optimize_seconds, st.aggregate_seconds,
              static_cast<unsigned long long>(st.levels_total),
              static_cast<unsigned long long>(st.sweeps_total));
  return util::exit_code(worst);
}

/// `v c` lines, the format `detect --out` writes. Labels must cover
/// every vertex of the graph the deltas will mutate.
util::StatusOr<std::vector<graph::Community>> load_labels(
    const std::string& path, graph::VertexId num_vertices) {
  std::ifstream is(path);
  if (!is) return util::Status::not_found("cannot open labels: " + path);
  std::vector<graph::Community> labels(num_vertices, 0);
  std::vector<bool> seen(num_vertices, false);
  std::uint64_t v = 0;
  std::uint64_t c = 0;
  while (is >> v >> c) {
    if (v >= num_vertices) {
      return util::Status::invalid_argument(
          "labels: vertex " + std::to_string(v) + " out of range");
    }
    labels[v] = static_cast<graph::Community>(c);
    seen[v] = true;
  }
  for (graph::VertexId u = 0; u < num_vertices; ++u) {
    if (!seen[u]) {
      return util::Status::invalid_argument(
          "labels: vertex " + std::to_string(u) + " missing from " + path);
    }
  }
  return labels;
}

int cmd_stream(util::Options& opt) {
  auto loaded = load_required(opt);
  if (!loaded.ok()) return fail_status(loaded.status());
  graph::Csr g = std::move(loaded).value();

  const std::string deltas_path =
      opt.get_string("deltas", "", "delta batch file (`batch` / `+ u v w` / `- u v` lines)");
  const std::string out = opt.get_string("out", "", "final community output file");
  stream::SessionOptions so;
  so.backend = opt.get_string(
      "backend", "core", "warm backends: core | seq (others run cold)");
  so.options.threads = static_cast<unsigned>(opt.get_int(
      "threads", 0, "simt device worker threads (0 = hardware)"));
  so.warm = !opt.get_flag("cold", "full recompute per delta (the baseline)");
  so.frontier.hops = static_cast<unsigned>(
      opt.get_int("hops", 0, "extra frontier adjacency expansions"));
  so.frontier.community_closure =
      !opt.get_flag("no-closure", "frontier = touched endpoints only");
  if (deltas_path.empty()) return usage("--deltas is required for stream");

  auto deltas = stream::try_load_deltas(deltas_path);
  if (!deltas.ok()) return fail_status(deltas.status());

  util::Timer wall;
  auto session = stream::Session::open(std::move(g), std::move(so));
  if (!session.ok()) return fail_status(session.status());
  std::printf("epoch 0 (%s, cold): Q = %.5f, %.3fs\n",
              session->options().backend.c_str(),
              session->result().modularity, wall.seconds());

  util::Table table({"epoch", "stamp", "+edges", "-edges", "frontier",
                     "apply ms", "frontier ms", "detect ms", "Q"});
  for (const stream::Delta& delta : *deltas) {
    auto rep = session->apply(delta);
    if (!rep.ok()) return fail_status(rep.status());
    table.add_row({std::to_string(rep->epoch), std::to_string(delta.stamp),
                   std::to_string(rep->inserted), std::to_string(rep->deleted),
                   std::to_string(rep->frontier_size),
                   util::Table::fixed(rep->apply_seconds * 1e3, 2),
                   util::Table::fixed(rep->frontier_seconds * 1e3, 2),
                   util::Table::fixed(rep->detect_seconds * 1e3, 2),
                   util::Table::fixed(rep->modularity, 5)});
  }
  table.print(std::cout);

  const auto stats = metrics::partition_stats(session->community());
  std::printf("\nfinal after %llu deltas: Q = %.5f, %llu communities, "
              "%u vertices, %.3fs total\n",
              static_cast<unsigned long long>(session->epoch()),
              session->result().modularity,
              static_cast<unsigned long long>(stats.num_communities),
              session->graph().num_vertices(), wall.seconds());
  if (!out.empty()) {
    std::ofstream os(out);
    for (std::size_t v = 0; v < session->community().size(); ++v) {
      os << v << ' ' << session->community()[v] << '\n';
    }
    if (!os) {
      return fail_status(
          util::Status::io_error("cannot write communities: " + out));
    }
    std::printf("communities written to %s\n", out.c_str());
  }
  return 0;
}

int cmd_churn(util::Options& opt) {
  auto loaded = load_required(opt);
  if (!loaded.ok()) return fail_status(loaded.status());
  const graph::Csr g = std::move(loaded).value();

  const std::string out = opt.get_string("out", "", "delta file to write");
  const std::string labels_path = opt.get_string(
      "labels", "", "community file (`v c` lines); default: seq detection");
  gen::ChurnParams params;
  params.epochs = static_cast<std::uint64_t>(
      opt.get_int("epochs", 8, "delta batches to generate"));
  params.churn_fraction =
      opt.get_double("fraction", 0.01, "edges churned per epoch");
  params.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1, "RNG seed"));
  const std::string mode =
      opt.get_string("mode", "preserve", "preserve | merge");
  if (mode == "merge") {
    params.mode = gen::ChurnMode::CommunityMerging;
  } else if (mode != "preserve") {
    return fail_status(util::Status::invalid_argument("unknown --mode: " + mode));
  }
  if (out.empty()) return usage("--out is required for churn");

  std::vector<graph::Community> labels;
  if (!labels_path.empty()) {
    auto l = load_labels(labels_path, g.num_vertices());
    if (!l.ok()) return fail_status(l.status());
    labels = std::move(l).value();
  } else {
    auto detector = detect::make("seq");
    if (!detector.ok()) return fail_status(detector.status());
    labels = (*detector)->run(g, {}).community;
  }

  const auto deltas = gen::churn(g, labels, params);
  const util::Status saved = stream::try_save_deltas(deltas, out);
  if (!saved.ok()) return fail_status(saved);
  std::size_t ins = 0;
  std::size_t del = 0;
  for (const auto& d : deltas) {
    ins += d.insertions.size();
    del += d.deletions.size();
  }
  std::printf("wrote %s: %zu batches (%s), %zu insertions, %zu deletions\n",
              out.c_str(), deltas.size(), mode.c_str(), ins, del);
  return 0;
}

int cmd_stats(util::Options& opt) {
  auto loaded = load_required(opt);
  if (!loaded.ok()) return fail_status(loaded.status());
  const graph::Csr g = std::move(loaded).value();
  const auto stats = graph::degree_stats(g);
  std::printf("vertices:    %u\n", g.num_vertices());
  std::printf("edges:       %llu (%llu loops)\n",
              static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(g.num_loops()));
  std::printf("total 2m:    %.1f\n", g.total_weight());
  std::printf("degrees:     min %llu / mean %.2f / max %llu\n",
              static_cast<unsigned long long>(stats.min_degree),
              stats.mean_degree,
              static_cast<unsigned long long>(stats.max_degree));
  std::printf("components:  %llu\n",
              static_cast<unsigned long long>(graph::count_components(g)));
  static const char* kNames[] = {"(0,4]", "(4,8]", "(8,16]", "(16,32]",
                                 "(32,84]", "(84,319]", ">319"};
  std::printf("paper degree buckets:\n");
  for (int b = 0; b < 7; ++b) {
    std::printf("  %-8s %llu\n", kNames[b],
                static_cast<unsigned long long>(stats.bucket_counts[b]));
  }
  const std::string problem = graph::validate(g);
  std::printf("validate:    %s\n", problem.empty() ? "ok" : problem.c_str());
  return 0;
}

int cmd_convert(util::Options& opt) {
  auto loaded = load_required(opt);
  if (!loaded.ok()) return fail_status(loaded.status());
  const graph::Csr g = std::move(loaded).value();
  const std::string out = opt.get_string("out", "", "output file (.bin/.txt)");
  if (out.empty()) return usage("--out is required for convert");
  const util::Status saved =
      (out.size() > 4 && out.compare(out.size() - 4, 4, ".bin") == 0)
          ? graph::try_save_binary(g, out)
          : graph::try_save_edge_list(g, out);
  if (!saved.ok()) return fail_status(saved);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int cmd_compress(util::Options& opt) {
  auto loaded = load_required(opt);
  if (!loaded.ok()) return fail_status(loaded.status());
  const graph::Csr g = std::move(loaded).value();
  const std::string out = opt.get_string("out", "", "output container (.zg)");
  if (out.empty()) return usage("--out is required for compress");

  const zg::ZCsr z = zg::ZCsr::encode(g);
  const util::Status saved = zg::save(z, out);
  if (!saved.ok()) return fail_status(saved);

  const auto plain = static_cast<unsigned long long>(z.plain_bytes());
  const auto stream = static_cast<unsigned long long>(z.bytes_stream());
  const auto index = static_cast<unsigned long long>(z.bytes_index());
  std::printf("wrote %s: %u vertices, %llu edges, %s weights\n", out.c_str(),
              z.num_vertices(), static_cast<unsigned long long>(z.num_edges()),
              zg::to_string(z.weight_mode()));
  std::printf("adjacency: %llu plain bytes -> %llu stream + %llu index "
              "(%.2fx smaller)\n",
              plain, stream, index,
              stream + index > 0
                  ? static_cast<double>(plain) /
                        static_cast<double>(stream + index)
                  : 0.0);
  return 0;
}

int cmd_color(util::Options& opt) {
  auto loaded = load_required(opt);
  if (!loaded.ok()) return fail_status(loaded.status());
  const graph::Csr g = std::move(loaded).value();
  const auto coloring = graph::color_graph(g);
  std::printf("colors: %u (max degree + 1 bound: %llu), %d speculative rounds\n",
              coloring.num_colors,
              static_cast<unsigned long long>(graph::degree_stats(g).max_degree + 1),
              coloring.rounds);
  const std::string problem = graph::validate_coloring(g, coloring);
  std::printf("validate: %s\n", problem.empty() ? "ok" : problem.c_str());
  return problem.empty() ? 0 : 1;
}

// Under GLOUVAIN_SIMTCHECK builds, surface the checker's report at
// exit: print every retained violation to stderr and turn a clean
// command exit into the report's util::Status exit code. In normal
// builds this is a no-op that compiles to `return code`.
int with_check_report(int code) {
  if constexpr (check::enabled()) {
    const check::Report report = check::report();
    if (!report.clean()) {
      std::fputs(report.to_string().c_str(), stderr);
      if (code == 0) return util::exit_code(report.to_status());
    }
  }
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage("missing command");
  const std::string command = argv[1];
  util::Options opt(argc - 1, argv + 1);
  try {
    if (command == "generate") return with_check_report(cmd_generate(opt));
    if (command == "detect") return with_check_report(cmd_detect(opt));
    if (command == "batch") return with_check_report(cmd_batch(opt));
    if (command == "stream") return with_check_report(cmd_stream(opt));
    if (command == "churn") return with_check_report(cmd_churn(opt));
    if (command == "stats") return cmd_stats(opt);
    if (command == "convert") return cmd_convert(opt);
    if (command == "compress") return with_check_report(cmd_compress(opt));
    if (command == "color") return with_check_report(cmd_color(opt));
    if (command == "--help" || command == "-h" || command == "help") return usage();
  } catch (const std::invalid_argument& e) {
    // Backend rejections (e.g. compressed storage on a backend without
    // a z path) are invalid arguments, not usage errors: exit 2, no
    // usage dump.
    return fail_status(util::Status::invalid_argument(e.what()));
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  return usage(("unknown command: " + command).c_str());
}
