// glouvain — command-line front end for the library.
//
//   glouvain generate --family rmat --scale 14 --out g.bin
//   glouvain stats    --in g.bin
//   glouvain detect   --in g.bin --algo core --out communities.txt
//   glouvain convert  --in g.mtx --out g.bin
//   glouvain batch    --manifest jobs.txt --devices 2
//
// `detect` writes one "<vertex> <community>" line per vertex and prints
// modularity / timing to stdout. `batch` reads a manifest of graph
// files (one `path [priority]` per line) and runs them concurrently
// through the svc::Service layer.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/louvain.hpp"
#include "gen/suite.hpp"
#include "graph/coloring.hpp"
#include "graph/io.hpp"
#include "graph/ops.hpp"
#include "metrics/partition.hpp"
#include "multi/multi.hpp"
#include "plm/plm.hpp"
#include "seq/louvain.hpp"
#include "svc/service.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace glouvain;

int usage(const char* error = nullptr) {
  if (error) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: glouvain <command> [options]\n"
               "\n"
               "commands:\n"
               "  generate  build a synthetic suite graph and save it\n"
               "            --family <name|list> --scale S --seed N --out FILE\n"
               "  detect    run community detection\n"
               "            --in FILE --algo core|seq|plm|multi [--out FILE]\n"
               "            [--tbin X --tfinal Y] [--devices D] [--coloring]\n"
               "            [--threads N] [--verbose]\n"
               "  batch     run a manifest of graphs through the service\n"
               "            --manifest FILE [--devices D] [--threads N]\n"
               "            [--aux A] [--queue Q] [--cache C] [--repeat R]\n"
               "            [--backend auto|core|seq|plm|multi] [--deadline MS]\n"
               "  stats     print graph statistics      --in FILE\n"
               "  convert   re-encode a graph file      --in FILE --out FILE\n"
               "  color     greedy parallel coloring    --in FILE\n");
  return error ? 1 : 0;
}

graph::Csr load_required(util::Options& opt) {
  const std::string in = opt.get_string("in", "", "input graph file");
  if (in.empty()) throw std::runtime_error("--in is required");
  return graph::load_auto(in);
}

int cmd_generate(util::Options& opt) {
  const std::string family =
      opt.get_string("family", "list", "suite family (or 'list')");
  const double scale = opt.get_double("scale", 0.1, "size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const std::string out = opt.get_string("out", "", "output file (.bin/.txt)");
  if (family == "list") {
    util::Table table({"name", "family", "stands in for"});
    for (const auto& e : gen::table1_suite()) {
      table.add_row({e.name, e.family, e.paper_graph});
    }
    table.print(std::cout);
    return 0;
  }
  if (out.empty()) return usage("--out is required for generate");
  const auto g = gen::suite_entry(family).build(scale, static_cast<std::uint64_t>(seed));
  if (out.size() > 4 && out.compare(out.size() - 4, 4, ".bin") == 0) {
    graph::save_binary(g, out);
  } else {
    graph::save_edge_list(g, out);
  }
  std::printf("wrote %s: %u vertices, %llu edges\n", out.c_str(),
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()));
  return 0;
}

void print_levels(const LouvainResult& result) {
  util::Table table({"level", "vertices", "arcs", "sweeps", "Q after",
                     "optimize s", "aggregate s"});
  for (std::size_t l = 0; l < result.levels.size(); ++l) {
    const LevelReport& r = result.levels[l];
    table.add_row({std::to_string(l), std::to_string(r.vertices),
                   std::to_string(r.arcs), std::to_string(r.iterations),
                   util::Table::fixed(r.modularity_after, 5),
                   util::Table::fixed(r.optimize_seconds, 4),
                   util::Table::fixed(r.aggregate_seconds, 4)});
  }
  table.print(std::cout);
}

int cmd_detect(util::Options& opt) {
  const auto g = load_required(opt);
  const std::string algo =
      opt.get_string("algo", "core", "core | seq | plm | multi");
  const std::string out = opt.get_string("out", "", "community output file");
  const double t_bin = opt.get_double("tbin", 1e-2, "coarse threshold");
  const double t_final = opt.get_double("tfinal", 1e-6, "fine threshold");
  const auto devices = static_cast<unsigned>(
      opt.get_int("devices", 2, "simulated devices (multi only)"));
  const auto threads = static_cast<unsigned>(opt.get_int(
      "threads", 0, "simt device worker threads (0 = hardware)"));
  const bool coloring = opt.get_flag("coloring", "serialize moves by graph coloring");
  const bool verbose =
      opt.get_flag("verbose", "print per-level timings and device stats");

  ThresholdSchedule thresholds{.t_bin = t_bin, .t_final = t_final,
                               .adaptive_limit = 100'000, .adaptive = true};
  LouvainResult result;
  core::DeviceStats device_stats;
  bool have_device_stats = false;
  if (algo == "core" || algo == "multi") {
    core::Config cfg;
    cfg.thresholds = thresholds;
    cfg.use_coloring = coloring;
    cfg.device.worker_threads = threads;
    if (algo == "core") {
      const core::Result cr = core::louvain(g, cfg);
      device_stats = cr.device;
      have_device_stats = true;
      result = cr;
    } else {
      multi::Config mcfg;
      mcfg.num_devices = devices;
      mcfg.device = cfg;
      mcfg.partition =
          opt.get_string("partition", "random", "block | random (multi only)") ==
                  "block"
              ? multi::PartitionStrategy::Block
              : multi::PartitionStrategy::Random;
      mcfg.local_levels = static_cast<int>(
          opt.get_int("local-levels", 1, "local levels before merge (multi only)"));
      const multi::Result mr = multi::louvain(g, mcfg);
      std::printf("coarse phase alone: Q = %.5f on %u devices\n",
                  mr.local_modularity, mr.devices_used);
      result = mr;
    }
  } else if (algo == "seq") {
    seq::Config cfg;
    cfg.thresholds = thresholds;
    result = seq::louvain(g, cfg);
  } else if (algo == "plm") {
    plm::Config cfg;
    cfg.thresholds = thresholds;
    cfg.threads = threads;
    result = plm::louvain(g, cfg);
  } else {
    return usage("unknown --algo");
  }

  const auto stats = metrics::partition_stats(result.community);
  std::printf("%s: Q = %.5f, %llu communities, %zu levels, %.3fs\n",
              algo.c_str(), result.modularity,
              static_cast<unsigned long long>(stats.num_communities),
              result.levels.size(), result.total_seconds);
  if (verbose) {
    print_levels(result);
    if (have_device_stats) {
      std::printf("device: %u workers, %llu shared-arena spills\n",
                  device_stats.workers,
                  static_cast<unsigned long long>(device_stats.shared_spills));
    }
    if (result.first_phase_teps > 0) {
      std::printf("first-phase TEPS: %.3g\n", result.first_phase_teps);
    }
  }
  if (!out.empty()) {
    std::ofstream os(out);
    for (std::size_t v = 0; v < result.community.size(); ++v) {
      os << v << ' ' << result.community[v] << '\n';
    }
    std::printf("communities written to %s\n", out.c_str());
  }
  return 0;
}

svc::Backend parse_backend(const std::string& name) {
  if (name == "auto") return svc::Backend::Auto;
  if (name == "core") return svc::Backend::Core;
  if (name == "seq") return svc::Backend::Seq;
  if (name == "plm") return svc::Backend::Plm;
  if (name == "multi") return svc::Backend::Multi;
  throw std::runtime_error("unknown --backend: " + name);
}

int cmd_batch(util::Options& opt) {
  const std::string manifest_path =
      opt.get_string("manifest", "", "manifest file: one `path [priority]` per line");
  svc::ServiceConfig cfg;
  cfg.devices = static_cast<unsigned>(
      opt.get_int("devices", 2, "pooled simt devices"));
  cfg.device_threads = static_cast<unsigned>(opt.get_int(
      "threads", 0, "simt worker threads per device (0 = hardware)"));
  cfg.aux_workers = static_cast<unsigned>(
      opt.get_int("aux", 1, "device-less workers for sequential jobs"));
  cfg.queue_capacity = static_cast<std::size_t>(
      opt.get_int("queue", 256, "pending-job bound (backpressure beyond)"));
  cfg.cache_capacity = static_cast<std::size_t>(
      opt.get_int("cache", 32, "result-cache entries (0 = off)"));
  cfg.seq_cost_limit = static_cast<std::uint64_t>(opt.get_int(
      "seq-limit", 1 << 13, "n+m at or below this runs on the seq backend"));
  const svc::Backend backend = parse_backend(
      opt.get_string("backend", "auto", "auto | core | seq | plm | multi"));
  const auto repeat = static_cast<int>(
      opt.get_int("repeat", 1, "submit the whole manifest this many times"));
  const auto deadline_ms = opt.get_int(
      "deadline", 0, "per-job deadline in milliseconds (0 = none)");
  if (manifest_path.empty()) return usage("--manifest is required for batch");

  struct Entry {
    std::string path;
    int priority = 0;
  };
  std::vector<Entry> entries;
  std::ifstream is(manifest_path);
  if (!is) throw std::runtime_error("cannot open manifest: " + manifest_path);
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    Entry e;
    if (!(ls >> e.path) || e.path[0] == '#' || e.path[0] == '%') continue;
    ls >> e.priority;
    entries.push_back(std::move(e));
  }
  if (entries.empty()) return usage("manifest lists no graphs");

  // Load each distinct file once; repeated passes resubmit the same
  // graphs, which is exactly what exercises the result cache.
  std::vector<graph::Csr> graphs;
  graphs.reserve(entries.size());
  for (const Entry& e : entries) graphs.push_back(graph::load_auto(e.path));

  svc::Service service(cfg);
  struct Submitted {
    svc::JobId id;
    const Entry* entry;
    int pass;
  };
  std::vector<Submitted> jobs;
  util::Timer wall;
  for (int pass = 0; pass < repeat; ++pass) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      svc::JobOptions jo;
      jo.priority = entries[i].priority;
      jo.backend = backend;
      jo.deadline = std::chrono::milliseconds(deadline_ms);
      jobs.push_back({service.submit(graphs[i], jo), &entries[i], pass});
    }
  }

  util::Table table({"job", "graph", "pass", "status", "backend", "cache",
                     "Q", "queue ms", "run ms"});
  for (const Submitted& s : jobs) {
    const svc::JobResult r = service.wait(s.id);
    table.add_row(
        {std::to_string(s.id), s.entry->path, std::to_string(s.pass),
         svc::to_string(r.status), svc::to_string(r.backend),
         r.cache_hit ? "hit" : "-",
         r.result ? util::Table::fixed(r.result->modularity, 5) : "-",
         util::Table::fixed(r.queue_seconds * 1e3, 2),
         util::Table::fixed(r.run_seconds * 1e3, 2)});
  }
  const double total = wall.seconds();
  table.print(std::cout);

  const svc::Stats st = service.stats();
  std::printf("\n%zu jobs in %.3fs (%.1f jobs/s)\n", jobs.size(), total,
              static_cast<double>(jobs.size()) / total);
  std::printf("accepted %llu  rejected %llu  completed %llu  cancelled %llu  "
              "expired %llu  failed %llu\n",
              static_cast<unsigned long long>(st.accepted),
              static_cast<unsigned long long>(st.rejected),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.cancelled),
              static_cast<unsigned long long>(st.expired),
              static_cast<unsigned long long>(st.failed));
  std::printf("cache hits %llu  misses %llu  entries %zu  evictions %llu\n",
              static_cast<unsigned long long>(st.cache_hits),
              static_cast<unsigned long long>(st.cache_misses),
              st.cache_entries,
              static_cast<unsigned long long>(st.cache_evictions));
  std::printf("routing: device %llu  sequential %llu  other %llu\n",
              static_cast<unsigned long long>(st.ran_on_device),
              static_cast<unsigned long long>(st.ran_sequential),
              static_cast<unsigned long long>(st.ran_other));
  std::printf("devices %u x %u threads, %llu shared-arena spills; "
              "queue wait %.3fs, run %.3fs\n",
              st.devices, st.device_threads,
              static_cast<unsigned long long>(st.shared_spills),
              st.queue_wait_seconds, st.run_seconds);
  return 0;
}

int cmd_stats(util::Options& opt) {
  const auto g = load_required(opt);
  const auto stats = graph::degree_stats(g);
  std::printf("vertices:    %u\n", g.num_vertices());
  std::printf("edges:       %llu (%llu loops)\n",
              static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(g.num_loops()));
  std::printf("total 2m:    %.1f\n", g.total_weight());
  std::printf("degrees:     min %llu / mean %.2f / max %llu\n",
              static_cast<unsigned long long>(stats.min_degree),
              stats.mean_degree,
              static_cast<unsigned long long>(stats.max_degree));
  std::printf("components:  %llu\n",
              static_cast<unsigned long long>(graph::count_components(g)));
  static const char* kNames[] = {"(0,4]", "(4,8]", "(8,16]", "(16,32]",
                                 "(32,84]", "(84,319]", ">319"};
  std::printf("paper degree buckets:\n");
  for (int b = 0; b < 7; ++b) {
    std::printf("  %-8s %llu\n", kNames[b],
                static_cast<unsigned long long>(stats.bucket_counts[b]));
  }
  const std::string problem = graph::validate(g);
  std::printf("validate:    %s\n", problem.empty() ? "ok" : problem.c_str());
  return 0;
}

int cmd_convert(util::Options& opt) {
  const auto g = load_required(opt);
  const std::string out = opt.get_string("out", "", "output file (.bin/.txt)");
  if (out.empty()) return usage("--out is required for convert");
  if (out.size() > 4 && out.compare(out.size() - 4, 4, ".bin") == 0) {
    graph::save_binary(g, out);
  } else {
    graph::save_edge_list(g, out);
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int cmd_color(util::Options& opt) {
  const auto g = load_required(opt);
  const auto coloring = graph::color_graph(g);
  std::printf("colors: %u (max degree + 1 bound: %llu), %d speculative rounds\n",
              coloring.num_colors,
              static_cast<unsigned long long>(graph::degree_stats(g).max_degree + 1),
              coloring.rounds);
  const std::string problem = graph::validate_coloring(g, coloring);
  std::printf("validate: %s\n", problem.empty() ? "ok" : problem.c_str());
  return problem.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage("missing command");
  const std::string command = argv[1];
  util::Options opt(argc - 1, argv + 1);
  try {
    if (command == "generate") return cmd_generate(opt);
    if (command == "detect") return cmd_detect(opt);
    if (command == "batch") return cmd_batch(opt);
    if (command == "stats") return cmd_stats(opt);
    if (command == "convert") return cmd_convert(opt);
    if (command == "color") return cmd_color(opt);
    if (command == "--help" || command == "-h" || command == "help") return usage();
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  return usage(("unknown command: " + command).c_str());
}
