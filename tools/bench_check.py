#!/usr/bin/env python3
"""Compare a bench JSON report against a checked-in baseline.

Both files follow schemas/bench.schema.json (emitted by the bench
harnesses via --json FILE). The guarded metric is TIME PER LEVEL
(metrics.seconds / metrics.levels) per (graph, backend) run: it tracks
the hot-path kernels while staying robust to a graph generator change
shifting how many levels the hierarchy needs. A run regresses when its
time-per-level exceeds the baseline's by more than --tolerance
(default 25%). When both reports carry a top-level peak_rss_bytes
(sampled via ru_maxrss at write time), the report-level memory
high-water mark is gated the same way with --rss-tolerance — the zg
storage layer exists to shrink exactly this number, so a silent RSS
regression is as real a failure as a slow kernel.

Additional metrics can be gated by name with --metric NAME[:TOL]
(repeatable): the metric's current value may not exceed the baseline's
by more than TOL (fractional; defaults to --tolerance). Metrics a run
lists in its "diagnostic" array are NEVER gated — neither by --metric
nor by the time-per-level check when "seconds" itself is flagged —
because the producing bench declared them load-sensitive observations
(e.g. shard/critical_s, the wall-clock critical path measured on a
timeshared simulator).

Exit codes: 0 = within tolerance, 1 = regression, 2 = unusable input
(schema mismatch, different operating point, no comparable runs).

Refresh the baseline (same flags the CI job uses) after intentional
performance changes or a runner hardware change:

    build/bench/table1_suite --skip-seq --scale 0.05 --repeat 3 \
        --json bench/baselines/BENCH_table1.json
"""

import argparse
import json
import sys

SCHEMA = "glouvain-bench-1"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        print(f"error: {path}: schema {doc.get('schema')!r} != {SCHEMA!r}",
              file=sys.stderr)
        sys.exit(2)
    return doc


def time_per_level(run):
    metrics = run.get("metrics", {})
    seconds = metrics.get("seconds")
    levels = metrics.get("levels")
    if seconds is None or not levels:
        return None
    return seconds / levels


def diagnostics_of(run):
    """Metric names this run flags as diagnostic (never gated)."""
    names = run.get("diagnostic", [])
    return set(names) if isinstance(names, list) else set()


def parse_metric_specs(specs, default_tol):
    """--metric NAME[:TOL] -> [(name, tol)]."""
    parsed = []
    for spec in specs or []:
        name, sep, tol = spec.rpartition(":")
        if sep and name:
            try:
                parsed.append((name, float(tol)))
                continue
            except ValueError:
                pass  # a metric name containing ':' with no tolerance
        parsed.append((spec, default_tol))
    return parsed


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline JSON (bench/baselines/)")
    parser.add_argument("--current", required=True,
                        help="freshly measured JSON to judge")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    parser.add_argument("--rss-tolerance", type=float, default=0.25,
                        help="allowed fractional peak-RSS regression when "
                             "both reports record peak_rss_bytes "
                             "(default 0.25)")
    parser.add_argument("--metric", action="append", default=[],
                        metavar="NAME[:TOL]",
                        help="also gate this metric per run (repeatable); "
                             "TOL defaults to --tolerance. Runs that flag "
                             "the metric as diagnostic are skipped.")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    if baseline.get("bench") != current.get("bench"):
        print(f"error: comparing different benches: "
              f"{baseline.get('bench')!r} vs {current.get('bench')!r}",
              file=sys.stderr)
        sys.exit(2)
    if baseline.get("params") != current.get("params"):
        print(f"error: different operating points: baseline params "
              f"{baseline.get('params')} vs current {current.get('params')}"
              f" — rerun with the baseline's flags or refresh the baseline",
              file=sys.stderr)
        sys.exit(2)

    base_runs = {(r["graph"], r["backend"]): r for r in baseline["runs"]}
    metric_specs = parse_metric_specs(args.metric, args.tolerance)
    regressions = []
    compared = 0
    skipped_diagnostic = 0

    print(f"{'graph':<16} {'backend':<20} {'base ms/level':>14} "
          f"{'cur ms/level':>14} {'delta':>8}")
    for run in current["runs"]:
        key = (run["graph"], run["backend"])
        base = base_runs.get(key)
        if base is None:
            continue
        diag = diagnostics_of(run) | diagnostics_of(base)
        if "seconds" in diag:
            skipped_diagnostic += 1
        else:
            base_tpl = time_per_level(base)
            cur_tpl = time_per_level(run)
            if base_tpl is not None and cur_tpl is not None and base_tpl > 0:
                compared += 1
                delta = cur_tpl / base_tpl - 1.0
                flag = "  REGRESSED" if delta > args.tolerance else ""
                print(f"{key[0]:<16} {key[1]:<20} {base_tpl * 1e3:>14.3f} "
                      f"{cur_tpl * 1e3:>14.3f} {delta:>+7.1%}{flag}")
                if delta > args.tolerance:
                    regressions.append((key, delta))
        for name, tol in metric_specs:
            if name in diag:
                skipped_diagnostic += 1
                continue
            base_v = base.get("metrics", {}).get(name)
            cur_v = run.get("metrics", {}).get(name)
            if base_v is None or cur_v is None or base_v <= 0:
                continue
            compared += 1
            delta = cur_v / base_v - 1.0
            flag = "  REGRESSED" if delta > tol else ""
            print(f"{key[0]:<16} {key[1] + ' ' + name:<20} "
                  f"{base_v:>14.3f} {cur_v:>14.3f} {delta:>+7.1%}{flag}")
            if delta > tol:
                regressions.append(((key[0], f"{key[1]}:{name}"), delta))

    if compared == 0:
        print("error: no comparable (graph, backend) runs between the files",
              file=sys.stderr)
        sys.exit(2)

    base_rss = baseline.get("peak_rss_bytes")
    cur_rss = current.get("peak_rss_bytes")
    if base_rss and cur_rss:
        rss_delta = cur_rss / base_rss - 1.0
        flag = "  REGRESSED" if rss_delta > args.rss_tolerance else ""
        print(f"\npeak RSS: {base_rss / 2**20:.1f} MiB -> "
              f"{cur_rss / 2**20:.1f} MiB ({rss_delta:+.1%}){flag}")
        if rss_delta > args.rss_tolerance:
            regressions.append((("peak_rss_bytes", "report"), rss_delta))

    note = (f" ({skipped_diagnostic} diagnostic check(s) skipped)"
            if skipped_diagnostic else "")
    print(f"\n{compared} checks compared, tolerance {args.tolerance:.0%}{note}")
    if regressions:
        print(f"{len(regressions)} regression(s):", file=sys.stderr)
        for (graph, backend), delta in regressions:
            what = ("peak RSS" if graph == "peak_rss_bytes"
                    else "gated value")
            print(f"  {graph}/{backend}: {delta:+.1%} {what}",
                  file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
