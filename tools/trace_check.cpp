// trace_check — validate a `glouvain detect --trace` JSON dump against
// schemas/trace.schema.json without any external JSON dependency.
//
//   trace_check --schema schemas/trace.schema.json --trace out.json
//               [--require PREFIX]...
//
// The validator implements the JSON-Schema subset the checked-in schema
// actually uses: type, properties, required, items, enum, minimum.
// Each --require PREFIX additionally demands at least one traceEvents
// entry whose name equals PREFIX or starts with it (so
// `--require modopt/bucket` is satisfied by any degree-bucket kernel).
//
// Exit codes: 0 valid, 1 schema/requirement violation, 2 usage,
// 3 cannot read an input file, 4 JSON parse error.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

// ---------------------------------------------------------------- JSON

struct Json {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Json> items;                            // Array
  std::vector<std::pair<std::string, Json>> members;  // Object

  const Json* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse(Json& out, std::string& error) {
    if (!value(out)) {
      error = error_ + " at offset " + std::to_string(pos_);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing content at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool fail(const char* what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // The recorder only escapes control characters; encode the
            // code point as UTF-8 (BMP only, no surrogate pairing).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    try {
      out = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return fail("bad number");
    }
    return true;
  }

  bool value(Json& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.type = Json::Type::Object;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!string(key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
        ++pos_;
        Json member;
        if (!value(member)) return false;
        out.members.emplace_back(std::move(key), std::move(member));
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out.type = Json::Type::Array;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        Json item;
        if (!value(item)) return false;
        out.items.push_back(std::move(item));
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.type = Json::Type::String;
      return string(out.str);
    }
    if (c == 't') {
      out.type = Json::Type::Bool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.type = Json::Type::Bool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.type = Json::Type::Null;
      return literal("null");
    }
    out.type = Json::Type::Number;
    return number(out.number);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ------------------------------------------------- schema-subset check

bool is_integer(const Json& v) {
  return v.type == Json::Type::Number && std::floor(v.number) == v.number &&
         std::isfinite(v.number);
}

bool type_matches(const Json& value, const std::string& name) {
  switch (value.type) {
    case Json::Type::Null: return name == "null";
    case Json::Type::Bool: return name == "boolean";
    case Json::Type::Number:
      return name == "number" || (name == "integer" && is_integer(value));
    case Json::Type::String: return name == "string";
    case Json::Type::Array: return name == "array";
    case Json::Type::Object: return name == "object";
  }
  return false;
}

bool json_equal(const Json& a, const Json& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case Json::Type::Null: return true;
    case Json::Type::Bool: return a.boolean == b.boolean;
    case Json::Type::Number: return a.number == b.number;
    case Json::Type::String: return a.str == b.str;
    default: return false;  // enum members are scalars in our schema
  }
}

bool validate(const Json& value, const Json& schema, const std::string& path,
              std::string& error) {
  if (const Json* type = schema.find("type")) {
    if (!type_matches(value, type->str)) {
      error = path + ": expected type '" + type->str + "'";
      return false;
    }
  }
  if (const Json* req = schema.find("required")) {
    for (const Json& key : req->items) {
      if (!value.find(key.str)) {
        error = path + ": missing required member '" + key.str + "'";
        return false;
      }
    }
  }
  if (const Json* props = schema.find("properties")) {
    for (const auto& [key, sub] : props->members) {
      if (const Json* member = value.find(key)) {
        if (!validate(*member, sub, path + "." + key, error)) return false;
      }
    }
  }
  if (const Json* items = schema.find("items")) {
    for (std::size_t i = 0; i < value.items.size(); ++i) {
      if (!validate(value.items[i], *items,
                    path + "[" + std::to_string(i) + "]", error)) {
        return false;
      }
    }
  }
  if (const Json* choices = schema.find("enum")) {
    bool matched = false;
    for (const Json& choice : choices->items) {
      if (json_equal(value, choice)) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      error = path + ": value not in enum";
      return false;
    }
  }
  if (const Json* minimum = schema.find("minimum")) {
    if (value.type == Json::Type::Number && value.number < minimum->number) {
      error = path + ": below minimum " + std::to_string(minimum->number);
      return false;
    }
  }
  return true;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: trace_check --schema FILE --trace FILE "
               "[--require PREFIX]...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema_path, trace_path;
  std::vector<std::string> required;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--schema" && i + 1 < argc) schema_path = argv[++i];
    else if (arg == "--trace" && i + 1 < argc) trace_path = argv[++i];
    else if (arg == "--require" && i + 1 < argc) required.push_back(argv[++i]);
    else return usage();
  }
  if (schema_path.empty() || trace_path.empty()) return usage();

  std::string schema_text, trace_text;
  if (!read_file(schema_path, schema_text)) {
    std::fprintf(stderr, "trace_check: cannot read %s\n", schema_path.c_str());
    return 3;
  }
  if (!read_file(trace_path, trace_text)) {
    std::fprintf(stderr, "trace_check: cannot read %s\n", trace_path.c_str());
    return 3;
  }

  Json schema, trace;
  std::string error;
  if (!Parser(schema_text).parse(schema, error)) {
    std::fprintf(stderr, "trace_check: %s: %s\n", schema_path.c_str(),
                 error.c_str());
    return 4;
  }
  if (!Parser(trace_text).parse(trace, error)) {
    std::fprintf(stderr, "trace_check: %s: %s\n", trace_path.c_str(),
                 error.c_str());
    return 4;
  }

  if (!validate(trace, schema, "$", error)) {
    std::fprintf(stderr, "trace_check: %s: %s\n", trace_path.c_str(),
                 error.c_str());
    return 1;
  }

  const Json* events = trace.find("traceEvents");
  const Json* counters = trace.find("counters");
  for (const std::string& prefix : required) {
    bool found = false;
    for (const Json& event : events->items) {
      const Json* name = event.find("name");
      if (name && name->str.rfind(prefix, 0) == 0) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "trace_check: no span named '%s*' in %s\n",
                   prefix.c_str(), trace_path.c_str());
      return 1;
    }
  }

  std::printf("trace_check: %s ok (%zu spans, %zu counters)\n",
              trace_path.c_str(), events->items.size(),
              counters->items.size());
  return 0;
}
