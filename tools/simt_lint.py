#!/usr/bin/env python3
"""Static lint for the software-SIMT device contracts.

Complements the runtime checker (src/check/, GLOUVAIN_SIMTCHECK builds)
with rules that are cheaper to enforce at the source level:

  raw-atomic       std::atomic / std::atomic_ref / #include <atomic>
                   outside src/simt/ — kernel code must go through
                   simt::atomic_* so the CUDA-intrinsic semantics (and
                   the simtcheck instrumentation) stay in one place.
  raw-intrinsic    #include <immintrin.h> or _mm*/__m256* vector
                   intrinsics outside src/simt/ — kernel code must go
                   through the simt::vec primitives so the scalar
                   emulation twin and the simtcheck gating stay in one
                   place (only src/simt/vector_ops_avx2.cpp is compiled
                   with -mavx2).
  seq-cst          memory_order_seq_cst anywhere — the device model is
                   relaxed/acq-rel like the GPU original; a seq_cst op
                   on the hot path is either a bug or an unmarked fence.
  kernel-alloc     operator new / malloc / vector growth inside a
                   Device::launch body — kernels draw from the
                   SharedArena / Workspace (the cudaMalloc-once
                   discipline guarded by core_workspace_test).
  shard-ghost      element indexing into the sharded engine's exchanged
                   label/total arrays (labels_raw[...] / tot_raw[...])
                   outside src/shard/halo.hpp — cross-shard reads and
                   writes must go through the GlobalState accessors
                   (community_of / tot_of / store_label / apply_move /
                   rebuild_tot) so every halo access maps onto an
                   explicit exchange message in a real deployment.
                   Passing the whole vector (e.g. to device_modularity)
                   is allowed; only element access is flagged.
  shard-barrier    cross-shard mutable state touched inside a
                   run_lanes() fan-out body — the sharded engine's
                   concurrent Jacobi rounds require every lane to treat
                   the global view (GlobalState writes via apply_move /
                   store_label / rebuild_tot, and the last_moved /
                   dirty_round stamps) as read-only until the join
                   barrier publishes buffered proposals; a write from
                   inside the fan-out is a data race on a real
                   multi-device deployment. Reads are allowed.

Span/launch pairing (unpaired-launch) lives in tools/glint.py now: it
is a live-range property of the span's SCOPE, which the AST-shaped
analyzer gets right and a line-proximity regex cannot. glint also
re-checks kernel-alloc and shard-barrier transitively (one call deep
and beyond); the shallow body scans here remain as the fast fallback.

Engine: regex over comment/string-stripped sources (line numbers
preserved). When --compile-commands points at a compile_commands.json
and the clang python bindings are importable, raw-atomic and seq-cst
findings are additionally confirmed against the clang token stream (and
dropped when the tokens disagree, e.g. a hit inside a stringified
macro); without clang the regex verdict stands.

Suppress a finding with a trailing comment on the same line:
    std::atomic<int> epoch;  // simt-lint: allow(raw-atomic)

Exit codes: 0 = clean, 1 = violations, 2 = usage error. With
--expect-violations (fixture self-test) the meaning of 0/1 flips: the
run fails if the deliberate violations are NOT caught.
"""

import argparse
import json
import os
import re
import sys

RULES = ("raw-atomic", "raw-intrinsic", "seq-cst", "kernel-alloc",
         "shard-ghost", "shard-barrier")
SOURCE_EXT = (".cpp", ".hpp", ".cc", ".h")

RAW_ATOMIC_RE = re.compile(
    r"std\s*::\s*atomic(_ref|_flag)?\b|^\s*#\s*include\s*<atomic>")
RAW_INTRINSIC_RE = re.compile(
    r"^\s*#\s*include\s*<(imm|x86|avx|emm|smm|tmm)intrin\.h>|"
    r"\b_mm\d*_\w+\s*\(|\b__m(128|256|512)[id]?\b")
SEQ_CST_RE = re.compile(r"\bmemory_order_seq_cst\b|\bmemory_order\s*::\s*seq_cst\b")
LAUNCH_RE = re.compile(r"\bdevice_?\s*(\.|->)\s*(launch|for_each)\s*\(")
ALLOC_RE = re.compile(
    r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|"
    r"(\.|->)\s*(push_back|emplace_back|resize|reserve)\s*\(")
SHARD_GHOST_RE = re.compile(r"\b(labels_raw|tot_raw)\s*\[")
# The sharded engine's concurrent fan-out: everything brace-enclosed
# after a run_lanes( call runs on a lane thread before the barrier.
LANES_RE = re.compile(r"\brun_lanes\s*(<[^>]*>)?\s*\(")
# Cross-shard mutations that must wait for the barrier: GlobalState
# writers, and assignment (not comparison) to the round-stamp arrays.
SHARD_BARRIER_RE = re.compile(
    r"(\.|->)\s*(apply_move|store_label|rebuild_tot)\s*\(|"
    r"\b(last_moved|dirty_round)\s*\[[^\]]*\]\s*=(?!=)")
SUPPRESS_RE = re.compile(r"simt-lint:\s*allow\(([a-z-]+)\)")


def strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving newlines
    and column positions so findings keep their real line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # str / chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def is_simt_source(path):
    parts = os.path.normpath(path).split(os.sep)
    return "simt" in parts


def launch_bodies(lines):
    """Yield (launch_line, body_line) pairs for every line inside a
    Device::launch / for_each lambda body, via brace counting from the
    call site."""
    i = 0
    n = len(lines)
    while i < n:
        if not LAUNCH_RE.search(lines[i]):
            i += 1
            continue
        launch_at = i
        depth = 0
        opened = False
        j = i
        while j < n:
            for ch in lines[j]:
                if ch == "{":
                    depth += 1
                    opened = True
                elif ch == "}":
                    depth -= 1
            if opened:
                yield launch_at, j
                if depth <= 0:
                    break
            j += 1
        i = launch_at + 1


def lanes_bodies(lines):
    """Yield (call_line, body_line) pairs for every line inside a
    run_lanes() fan-out body, via brace counting from the call site
    (same mechanics as launch_bodies). A `;` reached before any `{`
    marks a bodiless prototype / pointer-passing call — without the
    guard its scan would run on into the NEXT function's braces and
    double-report whatever a later fan-out contains."""
    i = 0
    n = len(lines)
    while i < n:
        if not LANES_RE.search(lines[i]):
            i += 1
            continue
        call_at = i
        depth = 0
        opened = False
        bodiless = False
        j = i
        while j < n:
            for ch in lines[j]:
                if ch == "{":
                    depth += 1
                    opened = True
                elif ch == "}":
                    depth -= 1
                elif ch == ";" and not opened:
                    bodiless = True
                    break
            if bodiless:
                break
            if opened:
                yield call_at, j
                if depth <= 0:
                    break
            j += 1
        i = call_at + 1


def lint_file(path, rel, findings):
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    stripped = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    lines = stripped.splitlines()

    def suppressed(lineno, rule):
        if lineno - 1 >= len(raw_lines):
            return False
        m = SUPPRESS_RE.search(raw_lines[lineno - 1])
        return bool(m) and m.group(1) == rule

    def add(lineno, rule, message):
        if not suppressed(lineno, rule):
            findings.append(Finding(rel, lineno, rule, message))

    simt = is_simt_source(rel)
    for idx, line in enumerate(lines, start=1):
        if not simt and RAW_ATOMIC_RE.search(line):
            add(idx, "raw-atomic",
                "raw std::atomic outside src/simt/ — use simt::atomic_*")
        if not simt and RAW_INTRINSIC_RE.search(line):
            add(idx, "raw-intrinsic",
                "raw vector intrinsic outside src/simt/ — use the "
                "simt::vec primitives")
        if SEQ_CST_RE.search(line):
            add(idx, "seq-cst",
                "seq_cst ordering on the device hot path — the model is "
                "relaxed/acq-rel")
        if os.path.basename(rel) != "halo.hpp" and SHARD_GHOST_RE.search(line):
            add(idx, "shard-ghost",
                "direct element access to the exchanged shard arrays — "
                "go through the GlobalState accessors (shard/halo.hpp)")

    for call_at, body_line in lanes_bodies(lines):
        if body_line == call_at:
            continue
        m = SHARD_BARRIER_RE.search(lines[body_line])
        if m:
            add(body_line + 1, "shard-barrier",
                f"'{m.group(0).strip()}' inside a run_lanes() fan-out — "
                "cross-shard state is read-only until the join barrier; "
                "buffer the mutation as a proposal instead")

    if not simt:
        body_of = {}
        for launch_at, body_line in launch_bodies(lines):
            body_of.setdefault(launch_at, []).append(body_line)
        for launch_at in body_of:
            for body_line in body_of[launch_at]:
                if body_line == launch_at:
                    continue
                m = ALLOC_RE.search(lines[body_line])
                if m:
                    add(body_line + 1, "kernel-alloc",
                        f"'{m.group(0).strip()}' inside a kernel body — "
                        "draw from the SharedArena / Workspace instead")


def clang_confirm(findings, compile_commands):
    """Filter raw-atomic / seq-cst findings through the clang token
    stream when the bindings are available; regex verdict stands
    otherwise."""
    try:
        from clang import cindex
    except ImportError:
        return findings, "clang bindings unavailable; regex verdict stands"
    try:
        with open(compile_commands) as f:
            entries = json.load(f)
    except OSError as e:
        return findings, f"cannot read {compile_commands}: {e}"
    args_for = {}
    for e in entries:
        path = os.path.normpath(os.path.join(e["directory"], e["file"]))
        args = [a for a in e.get("command", "").split()[1:]
                if not a.endswith(".o") and a not in ("-c", "-o")]
        args_for[path] = args
    index = cindex.Index.create()
    confirmed = []
    for fnd in findings:
        if fnd.rule not in ("raw-atomic", "seq-cst"):
            confirmed.append(fnd)
            continue
        path = os.path.abspath(fnd.path)
        args = args_for.get(path)
        try:
            tu = index.parse(path, args=args)
            needles = ("atomic",) if fnd.rule == "raw-atomic" else ("seq_cst",)
            hit = any(tok.location.line == fnd.line and
                      any(n in tok.spelling for n in needles)
                      for tok in tu.get_tokens(extent=tu.cursor.extent))
        except cindex.TranslationUnitLoadError:
            hit = True  # cannot parse: keep the regex verdict
        if hit:
            confirmed.append(fnd)
    return confirmed, None


def collect(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, _, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(SOURCE_EXT):
                        files.append(os.path.join(root, name))
        else:
            print(f"error: no such file or directory: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+",
                        help="source files or directories to lint")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for clang token "
                             "confirmation of raw-atomic/seq-cst findings")
    parser.add_argument("--expect-violations", action="store_true",
                        help="fixture mode: succeed iff violations ARE found")
    args = parser.parse_args()

    files = collect(args.paths)
    if not files:
        print("error: no sources found under the given paths", file=sys.stderr)
        return 2

    findings = []
    for path in files:
        lint_file(path, os.path.relpath(path), findings)

    note = None
    if args.compile_commands:
        findings, note = clang_confirm(findings, args.compile_commands)

    for fnd in findings:
        print(fnd)
    if note:
        print(f"note: {note}", file=sys.stderr)

    if args.expect_violations:
        if findings:
            rules_hit = sorted({f.rule for f in findings})
            print(f"fixture OK: {len(findings)} violation(s) caught "
                  f"({', '.join(rules_hit)})")
            return 0
        print("error: fixture produced no violations — the linter has rotted",
              file=sys.stderr)
        return 1

    if findings:
        print(f"\n{len(findings)} violation(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"{len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
