#!/usr/bin/env python3
"""Validate bench JSON report(s) against schemas/bench.schema.json.

Usage: bench_schema_check.py REPORT [REPORT...]

Full draft-07 validation when the `jsonschema` package is importable;
otherwise a structural spot-check of the same contract (required keys,
numeric params/metrics) so the gate still bites on a bare interpreter.

Exit codes: 0 = every report conforms, 1 = violation, 2 = unreadable
input.
"""

import json
import numbers
import os
import sys

SCHEMA_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "schemas", "bench.schema.json")


def structural_check(doc, path):
    """Fallback mirror of the schema's load-bearing constraints."""
    for key in ("schema", "bench", "params", "peak_rss_bytes", "runs"):
        if key not in doc:
            return f"{path}: missing required key {key!r}"
    if doc["schema"] != "glouvain-bench-1":
        return f"{path}: schema {doc['schema']!r} != 'glouvain-bench-1'"
    if not isinstance(doc["peak_rss_bytes"], int) or doc["peak_rss_bytes"] < 0:
        return f"{path}: peak_rss_bytes must be a non-negative integer"
    for key, value in doc["params"].items():
        if not isinstance(value, numbers.Number):
            return f"{path}: params.{key} is not numeric"
    for i, run in enumerate(doc["runs"]):
        for key in ("graph", "backend", "metrics"):
            if key not in run:
                return f"{path}: runs[{i}] missing {key!r}"
        for key, value in run["metrics"].items():
            if not isinstance(value, numbers.Number):
                return f"{path}: runs[{i}].metrics.{key} is not numeric"
            if key.startswith("zg/") and value < 0:
                return f"{path}: runs[{i}].metrics.{key} is negative"
        diag = run.get("diagnostic")
        if diag is not None:
            if not isinstance(diag, list) or any(
                    not isinstance(d, str) for d in diag):
                return f"{path}: runs[{i}].diagnostic must be a string list"
    return None


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(SCHEMA_PATH) as f:
            schema = json.load(f)
    except OSError as e:
        print(f"error: cannot read schema: {e}", file=sys.stderr)
        return 2

    try:
        import jsonschema
        validator = jsonschema.Draft7Validator(schema)
    except ImportError:
        validator = None
        print("note: jsonschema unavailable — structural spot-check only")

    failed = False
    for path in argv[1:]:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {path}: {e}", file=sys.stderr)
            return 2
        if validator is not None:
            errors = sorted(validator.iter_errors(doc), key=str)
            for err in errors:
                where = "/".join(str(p) for p in err.absolute_path) or "<root>"
                print(f"FAIL {path}: {where}: {err.message}", file=sys.stderr)
            if errors:
                failed = True
                continue
        problem = structural_check(doc, path)
        if problem:
            print(f"FAIL {problem}", file=sys.stderr)
            failed = True
            continue
        print(f"ok   {path} conforms to {os.path.basename(SCHEMA_PATH)}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
