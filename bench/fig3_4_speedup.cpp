// Figures 3 and 4 reproduction: per-graph speedup of the GPU-style
// algorithm against (Fig 3) the ORIGINAL sequential Louvain (fixed fine
// threshold everywhere) and (Fig 4) the ADAPTIVE sequential variant
// that also uses t_bin on large graphs.
//
// Paper shapes: Fig 3 speedups range 2.7-312 (avg 41.7); Fig 4 drops to
// 1-27 (avg 6.7) because the adaptive sequential baseline is itself
// ~7.3x faster than the original, losing only 0.13% modularity.
#include "bench_common.hpp"

using namespace glouvain;

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const double scale = opt.get_double("scale", 0.1, "suite size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const auto limit = static_cast<graph::VertexId>(
      opt.get_int("adaptive-limit", 2000, "t_bin applies while |V| > limit"));
  const std::string json_path = opt.get_string(
      "json", "", "write machine-readable results to this file");
  const auto graphs = bench::graphs_from_options(opt);
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("Figures 3-4: speedup vs (adaptive) sequential").c_str());
    return 0;
  }

  bench::banner("Figures 3 & 4 — speedup vs original and adaptive sequential",
                "Fig 3: GPU speedup 2.7-312x (avg 41.7) vs original sequential. "
                "Fig 4: adaptive sequential is ~7.3x faster than original "
                "(-0.13% modularity), leaving GPU speedups of 1-27x (avg 6.7)");

  bench::JsonReport report("fig3_4_speedup");
  report.set_param("scale", scale);
  report.set_param("seed", static_cast<double>(seed));
  report.set_param("adaptive_limit", static_cast<double>(limit));

  util::Table table({"graph", "seq[s]", "seq-adapt[s]", "gpu[s]",
                     "fig3 speedup", "fig4 speedup", "Q(seq)", "Q(adapt)",
                     "Q(gpu)"});
  double sum3 = 0, sum4 = 0, sum_adapt_gain = 0, sum_mod_drop = 0;
  for (const auto& name : graphs) {
    auto g = gen::suite_entry(name).build(scale, static_cast<std::uint64_t>(seed));

    // Original sequential: fine threshold from the start.
    seq::Config orig_cfg;
    orig_cfg.thresholds = bench::paper_thresholds();
    orig_cfg.thresholds.adaptive = false;
    const auto orig = seq::louvain(g, orig_cfg);

    // Adaptive sequential (Fig 4's baseline): t_bin on large graphs.
    seq::Config adapt_cfg;
    adapt_cfg.thresholds = bench::paper_thresholds();
    adapt_cfg.thresholds.adaptive_limit = limit;
    const auto adapt = seq::louvain(g, adapt_cfg);

    core::Config gpu_cfg;
    gpu_cfg.thresholds = bench::paper_thresholds();
    gpu_cfg.thresholds.adaptive_limit = limit;
    const auto gpu = core::louvain(g, gpu_cfg);

    report.add_run(name, "seq", g.num_vertices(), g.num_edges(),
                   bench::make_algo_run(orig));
    report.add_run(name, "seq-adaptive", g.num_vertices(), g.num_edges(),
                   bench::make_algo_run(adapt));
    report.add_run(name, "core", g.num_vertices(), g.num_edges(),
                   bench::make_algo_run(gpu));

    const double s3 = orig.total_seconds / std::max(gpu.total_seconds, 1e-9);
    const double s4 = adapt.total_seconds / std::max(gpu.total_seconds, 1e-9);
    sum3 += s3;
    sum4 += s4;
    sum_adapt_gain += orig.total_seconds / std::max(adapt.total_seconds, 1e-9);
    sum_mod_drop += orig.modularity > 1e-9
                        ? (orig.modularity - adapt.modularity) / orig.modularity
                        : 0;

    table.add_row({name, util::Table::fixed(orig.total_seconds, 3),
                   util::Table::fixed(adapt.total_seconds, 3),
                   util::Table::fixed(gpu.total_seconds, 3),
                   util::Table::fixed(s3, 1), util::Table::fixed(s4, 1),
                   util::Table::fixed(orig.modularity, 4),
                   util::Table::fixed(adapt.modularity, 4),
                   util::Table::fixed(gpu.modularity, 4)});
  }
  table.print(std::cout);
  const double n = static_cast<double>(graphs.size());
  std::printf("\naverages: fig3 speedup %.1fx, fig4 speedup %.1fx, adaptive-seq "
              "gain %.1fx (paper: 7.3x), adaptive modularity drop %.2f%% "
              "(paper: 0.13%%)\n",
              sum3 / n, sum4 / n, sum_adapt_gain / n, 100.0 * sum_mod_drop / n);
  std::printf("note: absolute speedups are bounded by this container's %u "
              "hardware threads; the paper's K40m has 2880 cores. The shape "
              "to check: fig4 << fig3, adaptive gain >> 1.\n",
              std::thread::hardware_concurrency());
  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}
