// Ablation for this reproduction's one documented deviation from the
// paper's pseudocode: hash-partitioned commit sub-rounds inside each
// degree bucket (Config::commit_subrounds; see DESIGN.md).
//
// Motivation: with subrounds = 1 (the literal pseudocode) all vertices
// of one bucket decide synchronously; on uniform-degree graphs one
// bucket holds nearly every vertex and adjacent vertices oscillate by
// swapping communities in lockstep, capping modularity well below
// sequential (observed Q ~ 0.03 vs 0.18 on the channel mesh at level
// 0). Sub-rounds are a cheap stand-in for the graph coloring of Lu et
// al. [16], which the paper cites as the source of its move controls.
#include "bench_common.hpp"

using namespace glouvain;

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const double scale = opt.get_double("scale", 0.05, "suite size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const auto graphs = bench::graphs_from_options(opt);
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("Ablation: commit sub-rounds per bucket").c_str());
    return 0;
  }

  bench::banner("Ablation — commit sub-rounds per degree bucket",
                "deviation ablation (not in the paper): S=1 is the literal "
                "pseudocode; S>1 breaks synchronous swap oscillation on "
                "uniform-degree graphs at a small scheduling cost");

  // S=1 is the literal pseudocode; S>1 hash sub-rounds; "col" uses a
  // proper graph coloring (the full mechanism of [16]).
  const std::vector<unsigned> rounds{1, 2, 4, 8};
  util::Table table([&] {
    std::vector<std::string> headers{"graph", "Q(seq)"};
    for (auto s : rounds) headers.push_back("Q S=" + std::to_string(s));
    headers.push_back("Q col");
    for (auto s : rounds) headers.push_back("t S=" + std::to_string(s));
    headers.push_back("t col");
    return headers;
  }());

  std::vector<double> q_ratio_sum(rounds.size() + 1, 0);
  for (const auto& name : graphs) {
    const auto g = gen::suite_entry(name).build(scale, static_cast<std::uint64_t>(seed));
    const auto seq_run = bench::run_seq(g, /*adaptive=*/false);
    std::vector<std::string> row{name, util::Table::fixed(seq_run.modularity, 4)};
    std::vector<std::string> time_cells;
    for (std::size_t i = 0; i <= rounds.size(); ++i) {
      core::Config cfg;
      if (i < rounds.size()) {
        cfg.commit_subrounds = rounds[i];
      } else {
        cfg.use_coloring = true;
      }
      const auto r = bench::run_core(g, cfg);
      q_ratio_sum[i] += seq_run.modularity > 1e-9
                            ? r.modularity / seq_run.modularity
                            : 1.0;
      row.push_back(util::Table::fixed(r.modularity, 4));
      time_cells.push_back(util::Table::fixed(r.seconds, 3));
    }
    row.insert(row.end(), time_cells.begin(), time_cells.end());
    table.add_row(row);
  }
  table.print(std::cout);
  std::printf("\naverage modularity vs sequential:");
  for (std::size_t i = 0; i <= rounds.size(); ++i) {
    const std::string label =
        i < rounds.size() ? "S=" + std::to_string(rounds[i]) : "coloring";
    std::printf(" %s: %s", label.c_str(),
                util::Table::percent(q_ratio_sum[i] / static_cast<double>(graphs.size()), 1)
                    .c_str());
  }
  std::printf("\n");
  return 0;
}
