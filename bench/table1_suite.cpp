// Table 1 reproduction: the graph suite with sequential and GPU-style
// running times. The paper lists 55 graphs (|V| up to 50.9M) with the
// original sequential time and the GPU time at (t_bin, t_final) =
// (1e-2, 1e-6); the observable to reproduce is the SHAPE — the GPU
// algorithm is faster on every graph, with the largest ratios on
// graphs whose sequential time is dominated by large early phases
// (channel/packing/StocF in the paper).
#include "bench_common.hpp"

#include "graph/ops.hpp"

using namespace glouvain;

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const double scale = opt.get_double("scale", 0.1, "suite size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const bool skip_seq = opt.get_flag("skip-seq", "only run the GPU-style algorithm");
  const auto graphs = bench::graphs_from_options(opt);
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("Table 1: suite timings, sequential vs GPU-style").c_str());
    return 0;
  }

  bench::banner("Table 1 — benchmark suite timings",
                "sequential Louvain 2.27s-934s per graph on a Xeon i5-6600; "
                "GPU 0.15s-26.1s on a K40m; GPU faster on all 55 graphs");

  util::Table table({"graph", "stands in for", "|V|", "|E|", "deg(avg)",
                     "seq[s]", "gpu[s]", "speedup", "Q(seq)", "Q(gpu)"});
  for (const auto& name : graphs) {
    const auto& entry = gen::suite_entry(name);
    const auto g = entry.build(scale, static_cast<std::uint64_t>(seed));
    const auto stats = graph::degree_stats(g);

    bench::AlgoRun seq_run{};
    if (!skip_seq) seq_run = bench::run_seq(g, /*adaptive=*/false);
    const auto core_run = bench::run_core(g);

    table.add_row({name, entry.paper_graph, util::Table::count(g.num_vertices()),
                   util::Table::count(g.num_edges()),
                   util::Table::fixed(stats.mean_degree, 1),
                   skip_seq ? "-" : util::Table::fixed(seq_run.seconds, 3),
                   util::Table::fixed(core_run.seconds, 3),
                   skip_seq ? "-"
                            : util::Table::fixed(seq_run.seconds /
                                                     std::max(core_run.seconds, 1e-9),
                                                 1),
                   skip_seq ? "-" : util::Table::fixed(seq_run.modularity, 4),
                   util::Table::fixed(core_run.modularity, 4)});
  }
  table.print(std::cout);
  std::printf("\nnote: sizes are scaled to this container (--scale %.2f); the "
              "paper's originals are 10-100x larger.\n", scale);
  return 0;
}
