// Table 1 reproduction: the graph suite with sequential and GPU-style
// running times. The paper lists 55 graphs (|V| up to 50.9M) with the
// original sequential time and the GPU time at (t_bin, t_final) =
// (1e-2, 1e-6); the observable to reproduce is the SHAPE — the GPU
// algorithm is faster on every graph, with the largest ratios on
// graphs whose sequential time is dominated by large early phases
// (channel/packing/StocF in the paper).
#include "bench_common.hpp"

#include "graph/ops.hpp"

using namespace glouvain;

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const double scale = opt.get_double("scale", 0.1, "suite size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const bool skip_seq = opt.get_flag("skip-seq", "only run the GPU-style algorithm");
  const std::string json_path = opt.get_string(
      "json", "", "write machine-readable results to this file");
  const int repeat = static_cast<int>(opt.get_int(
      "repeat", 1, "timed runs per graph; the fastest is reported"));
  const auto graphs = bench::graphs_from_options(opt);
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("Table 1: suite timings, sequential vs GPU-style").c_str());
    return 0;
  }

  bench::banner("Table 1 — benchmark suite timings",
                "sequential Louvain 2.27s-934s per graph on a Xeon i5-6600; "
                "GPU 0.15s-26.1s on a K40m; GPU faster on all 55 graphs");

  bench::JsonReport report("table1_suite");
  report.set_param("scale", scale);
  report.set_param("seed", static_cast<double>(seed));
  report.set_param("repeat", static_cast<double>(repeat));

  util::Table table({"graph", "stands in for", "|V|", "|E|", "deg(avg)",
                     "seq[s]", "gpu[s]", "vec[s]", "speedup", "Q(seq)",
                     "Q(gpu)"});
  for (const auto& name : graphs) {
    const auto& entry = gen::suite_entry(name);
    const auto g = entry.build(scale, static_cast<std::uint64_t>(seed));
    const auto stats = graph::degree_stats(g);

    // Best-of-N damps scheduler noise so the CI baseline check can use
    // a tight tolerance; partitions are identical across repeats.
    bench::AlgoRun seq_run{};
    if (!skip_seq) {
      seq_run = bench::run_seq(g, /*adaptive=*/false);
      for (int r = 1; r < repeat; ++r) {
        const auto again = bench::run_seq(g, /*adaptive=*/false);
        if (again.seconds < seq_run.seconds) seq_run = again;
      }
      report.add_run(name, "seq", g.num_vertices(), g.num_edges(), seq_run);
    }
    // "core" is pinned to the scalar lane substrate — the bitwise
    // reference whose timings stay comparable across baseline
    // refreshes regardless of the host's vector ISA. The vector
    // substrate gets its own gated (graph, "core-vector") rows.
    core::Config scalar_cfg;
    scalar_cfg.device.backend = simt::Backend::kScalar;
    auto core_run = bench::run_core(g, scalar_cfg);
    for (int r = 1; r < repeat; ++r) {
      auto again = bench::run_core(g, scalar_cfg);
      if (again.seconds < core_run.seconds) core_run = std::move(again);
    }
    report.add_run(name, "core", g.num_vertices(), g.num_edges(), core_run);

    core::Config vector_cfg;
    vector_cfg.device.backend = simt::Backend::kVector;
    auto vec_run = bench::run_core(g, vector_cfg);
    for (int r = 1; r < repeat; ++r) {
      auto again = bench::run_core(g, vector_cfg);
      if (again.seconds < vec_run.seconds) vec_run = std::move(again);
    }
    report.add_run(name, "core-vector", g.num_vertices(), g.num_edges(),
                   vec_run);

    table.add_row({name, entry.paper_graph, util::Table::count(g.num_vertices()),
                   util::Table::count(g.num_edges()),
                   util::Table::fixed(stats.mean_degree, 1),
                   skip_seq ? "-" : util::Table::fixed(seq_run.seconds, 3),
                   util::Table::fixed(core_run.seconds, 3),
                   util::Table::fixed(vec_run.seconds, 3),
                   skip_seq ? "-"
                            : util::Table::fixed(seq_run.seconds /
                                                     std::max(core_run.seconds, 1e-9),
                                                 1),
                   skip_seq ? "-" : util::Table::fixed(seq_run.modularity, 4),
                   util::Table::fixed(core_run.modularity, 4)});
  }
  table.print(std::cout);
  std::printf("\nnote: sizes are scaled to this container (--scale %.2f); the "
              "paper's originals are 10-100x larger.\n", scale);
  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}
