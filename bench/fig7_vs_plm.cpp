// Figure 7 reproduction: GPU-style algorithm vs the shared-memory
// fine-grained CPU Louvain (our stand-in for the OpenMP code of Lu et
// al. [16] on 2x Xeon E5-2680 / 20 threads).
//
// Paper shape: GPU wins on every one of 30 graphs, speedup 1.1-27x,
// average 6.1x, both at thresholds (1e-2, 1e-6). On this container the
// two contenders share the same cores, so the expected shape is a
// speedup distribution centred near 1 with the GPU-style kernel ahead
// where degree skew lets lane scaling and hashing locality pay off;
// the micro_hashing bench isolates the paper's 9x hashing-rate claim.
#include "bench_common.hpp"

using namespace glouvain;

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const double scale = opt.get_double("scale", 0.1, "suite size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const auto graphs = bench::graphs_from_options(opt);
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("Figure 7: GPU-style vs shared-memory PLM").c_str());
    return 0;
  }

  bench::banner("Figure 7 — speedup vs shared-memory parallel Louvain",
                "GPU 1.1-27x faster than 20-thread OpenMP Louvain (avg 6.1x), "
                "same thresholds (1e-2, 1e-6) on both");

  util::Table table({"graph", "plm[s]", "gpu[s]", "speedup", "Q(plm)", "Q(gpu)"});
  double sum_speedup = 0, sum_q_ratio = 0;
  for (const auto& name : graphs) {
    const auto g = gen::suite_entry(name).build(scale, static_cast<std::uint64_t>(seed));
    const auto plm_run = bench::run_plm(g);
    const auto gpu_run = bench::run_core(g);
    const double speedup = plm_run.seconds / std::max(gpu_run.seconds, 1e-9);
    sum_speedup += speedup;
    sum_q_ratio += plm_run.modularity > 1e-9
                       ? gpu_run.modularity / plm_run.modularity
                       : 1.0;
    table.add_row({name, util::Table::fixed(plm_run.seconds, 3),
                   util::Table::fixed(gpu_run.seconds, 3),
                   util::Table::fixed(speedup, 2),
                   util::Table::fixed(plm_run.modularity, 4),
                   util::Table::fixed(gpu_run.modularity, 4)});
  }
  table.print(std::cout);
  const double n = static_cast<double>(graphs.size());
  std::printf("\naverages: speedup %.2fx, modularity ratio %s (paper: both "
              "algorithms within 0.2%%)\n",
              sum_speedup / n, util::Table::percent(sum_q_ratio / n, 1).c_str());
  return 0;
}
