// TEPS reproduction (§5, last paragraph): traversed edges per second in
// the first modularity-optimization phase. The paper reports a maximum
// of 0.225 GTEPS (on channel-500) for the single K40m, against 1.54
// GTEPS for a Blue Gene/Q with 524,288 threads — i.e. the
// supercomputer is less than 7x faster than one GPU.
#include "bench_common.hpp"

using namespace glouvain;

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const double scale = opt.get_double("scale", 0.1, "suite size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const auto graphs = bench::graphs_from_options(opt);
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("TEPS of the first modularity phase").c_str());
    return 0;
  }

  bench::banner("TEPS — first-phase processing rate",
                "max 0.225 GTEPS on one K40m (channel-500); Blue Gene/Q with "
                "524,288 threads reaches 1.54 GTEPS, <7x one GPU");

  util::Table table({"graph", "|E|", "gpu MTEPS", "seq MTEPS", "ratio"});
  double best = 0;
  std::string best_name;
  for (const auto& name : graphs) {
    const auto g = gen::suite_entry(name).build(scale, static_cast<std::uint64_t>(seed));
    const auto gpu_run = bench::run_core(g);
    const auto seq_run = bench::run_seq(g, /*adaptive=*/false);
    if (gpu_run.teps > best) {
      best = gpu_run.teps;
      best_name = name;
    }
    table.add_row({name, util::Table::count(g.num_edges()),
                   util::Table::fixed(gpu_run.teps / 1e6, 1),
                   util::Table::fixed(seq_run.teps / 1e6, 1),
                   util::Table::fixed(gpu_run.teps / std::max(seq_run.teps, 1.0), 2)});
  }
  table.print(std::cout);
  std::printf("\nbest: %.1f MTEPS on %s (paper: 225 MTEPS on channel-500 with "
              "2880 CUDA cores)\n", best / 1e6, best_name.c_str());
  return 0;
}
