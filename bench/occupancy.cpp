// §5 profiling reproduction: warp occupancy of the bucketed kernel.
// Paper: "On UK-2002, on average 62.5% of the threads in a warp are
// active whenever the warp is selected for execution ... this indicates
// that we achieve sufficient parallelism to keep the device occupied."
// We compute the static occupancy of the hashing loop (active
// lane-slots / issued lane-slots) for the paper's bucket scheme and the
// two ablation schemes, per suite graph.
#include "bench_common.hpp"

#include "core/occupancy.hpp"

using namespace glouvain;

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const double scale = opt.get_double("scale", 0.1, "suite size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const auto graphs = bench::graphs_from_options(opt);
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("warp occupancy of the bucketed kernel").c_str());
    return 0;
  }

  bench::banner("Occupancy — active lanes per issued warp slot (§5)",
                "paper: 62.5% of warp threads active on UK-2002 with the "
                "7-bucket scheme; node-centred assignment wastes far more "
                "lanes on skewed degrees");

  util::Table table({"graph", "paper scheme", "1-lane", "warp/vertex",
                     "worst bucket", "best bucket"});
  double sum_paper = 0;
  for (const auto& name : graphs) {
    const auto g = gen::suite_entry(name).build(scale, static_cast<std::uint64_t>(seed));
    const auto paper = core::analyze_occupancy(g, core::BucketScheme::paper_modopt());
    const auto single = core::analyze_occupancy(g, core::BucketScheme::single_lane());
    const auto warp = core::analyze_occupancy(g, core::BucketScheme::warp_per_vertex());
    sum_paper += paper.overall;

    double worst = 1.0, best = 0.0;
    for (const auto& bucket : paper.buckets) {
      if (!bucket.vertices) continue;
      worst = std::min(worst, bucket.occupancy);
      best = std::max(best, bucket.occupancy);
    }
    table.add_row({name, util::Table::percent(paper.overall, 1),
                   util::Table::percent(single.overall, 1),
                   util::Table::percent(warp.overall, 1),
                   util::Table::percent(worst, 1), util::Table::percent(best, 1)});
  }
  table.print(std::cout);
  std::printf("\naverage occupancy, paper scheme: %s (paper reports 62.5%% on "
              "uk-2002); single-lane is trivially 100%% per lane but "
              "serializes hubs — the relevant comparison is warp-per-vertex, "
              "which wastes lanes on low-degree vertices.\n",
              util::Table::percent(sum_paper / static_cast<double>(graphs.size()), 1)
                  .c_str());
  return 0;
}
