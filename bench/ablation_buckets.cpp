// §4.1 design ablation: the degree-bucketed lane assignment (the
// paper's central contribution — "the first parallel implementation
// that parallelizes the access to individual edges") against the
// node-centred strategies of prior work: one lane per vertex, and a
// uniform warp per vertex.
//
// Expected shape: on skewed-degree graphs the paper scheme beats
// one-lane-per-vertex (load imbalance from hubs) and uniform-warp
// (wasted lanes on degree-2 vertices); on uniform low-degree graphs
// (road) the advantage shrinks.
#include "bench_common.hpp"

using namespace glouvain;

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const double scale = opt.get_double("scale", 0.1, "suite size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const auto graphs = bench::graphs_from_options(opt);
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("Ablation: bucket/lane schemes").c_str());
    return 0;
  }

  bench::banner("Ablation — degree buckets vs node-centred thread assignment",
                "the degree-scaled thread assignment is the paper's claimed "
                "load-balance win over node-centred prior work");

  util::Table table({"graph", "paper[s]", "1-lane[s]", "warp[s]",
                     "vs 1-lane", "vs warp", "Q(paper)"});
  double sum_vs_single = 0, sum_vs_warp = 0;
  for (const auto& name : graphs) {
    const auto g = gen::suite_entry(name).build(scale, static_cast<std::uint64_t>(seed));

    core::Config paper_cfg;  // defaults = paper buckets
    core::Config single_cfg;
    single_cfg.modopt_buckets = core::BucketScheme::single_lane();
    core::Config warp_cfg;
    warp_cfg.modopt_buckets = core::BucketScheme::warp_per_vertex();

    const auto rp = bench::run_core(g, paper_cfg);
    const auto r1 = bench::run_core(g, single_cfg);
    const auto rw = bench::run_core(g, warp_cfg);

    sum_vs_single += r1.seconds / std::max(rp.seconds, 1e-9);
    sum_vs_warp += rw.seconds / std::max(rp.seconds, 1e-9);
    table.add_row({name, util::Table::fixed(rp.seconds, 3),
                   util::Table::fixed(r1.seconds, 3),
                   util::Table::fixed(rw.seconds, 3),
                   util::Table::fixed(r1.seconds / std::max(rp.seconds, 1e-9), 2),
                   util::Table::fixed(rw.seconds / std::max(rp.seconds, 1e-9), 2),
                   util::Table::fixed(rp.modularity, 4)});
  }
  table.print(std::cout);
  const double n = static_cast<double>(graphs.size());
  std::printf("\naverages: paper scheme vs 1-lane %.2fx, vs uniform-warp %.2fx "
              "(>1 means the paper scheme is faster)\n",
              sum_vs_single / n, sum_vs_warp / n);
  std::printf("note: on the software device lane groups serialize inside one "
              "OS thread, so only the scheduling/locality component of the "
              "GPU win is visible here, not SIMD occupancy.\n");
  return 0;
}
