// §5 in-text experiment: bucketed vs "relaxed" community updates.
//
// Paper: committing moves only at the end of a full sweep ("relaxed")
// changes modularity by < 0.13% on average but can increase running
// time by up to 10x, typically in the optimization phase right after
// the t_bin -> t_final switch; the number of phases is sometimes much
// smaller under relaxed, without a clear runtime trend.
#include "bench_common.hpp"

using namespace glouvain;

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const double scale = opt.get_double("scale", 0.05, "suite size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const auto graphs = bench::graphs_from_options(opt);
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("Ablation: bucketed vs relaxed updates").c_str());
    return 0;
  }

  bench::banner("Ablation — bucketed vs relaxed community updates (§5)",
                "relaxed: modularity within 0.13% on average, but runtime up "
                "to 10x worse on some graphs; sometimes far fewer phases");

  util::Table table({"graph", "buck[s]", "rlx[s]", "slowdown", "Q(buck)",
                     "Q(rlx)", "lvl(buck)", "lvl(rlx)"});
  double worst_slowdown = 0, sum_dq = 0;
  for (const auto& name : graphs) {
    const auto g = gen::suite_entry(name).build(scale, static_cast<std::uint64_t>(seed));
    core::Config bucketed;
    core::Config relaxed;
    relaxed.update = core::UpdateStrategy::Relaxed;
    const auto rb = bench::run_core(g, bucketed);
    const auto rr = bench::run_core(g, relaxed);
    const double slowdown = rr.seconds / std::max(rb.seconds, 1e-9);
    worst_slowdown = std::max(worst_slowdown, slowdown);
    sum_dq += rb.modularity > 1e-9
                  ? std::abs(rb.modularity - rr.modularity) / rb.modularity
                  : 0;
    table.add_row({name, util::Table::fixed(rb.seconds, 3),
                   util::Table::fixed(rr.seconds, 3),
                   util::Table::fixed(slowdown, 2),
                   util::Table::fixed(rb.modularity, 4),
                   util::Table::fixed(rr.modularity, 4),
                   std::to_string(rb.levels), std::to_string(rr.levels)});
  }
  table.print(std::cout);
  std::printf("\nworst relaxed slowdown: %.1fx (paper: up to 10x); mean |dQ|: "
              "%.2f%% (paper: <0.13%% avg, our relaxed mode loses more on "
              "uniform-degree meshes — see DESIGN.md on oscillation)\n",
              worst_slowdown, 100.0 * sum_dq / static_cast<double>(graphs.size()));
  return 0;
}
