// §5 micro-measurement: time to hash all 2|E| edges once, GPU-style
// kernel vs the shared-memory baseline's accumulation, on the first
// iteration of the modularity optimization (every vertex its own
// community — worst case for table size).
//
// Paper: the GPU code hashes the first iteration ~9x faster than the
// OpenMP code of [16], attributed to CAS/atomics instead of locks and
// to shared-memory (L1-speed) tables.
#include "bench_common.hpp"

#include "core/buckets.hpp"
#include "core/hash_map.hpp"
#include "simt/lane_group.hpp"
#include "util/primes.hpp"

using namespace glouvain;

namespace {

/// One full edge-hashing pass with the paper's bucketed kernels
/// (hash tables from the shared arena, lane-strided edge loops).
double core_hash_pass(simt::Device& device, const graph::Csr& g) {
  const auto scheme = core::BucketScheme::paper_modopt();
  const auto binned = core::bin_by_key(
      g.num_vertices(), scheme,
      [&](graph::VertexId v) { return g.degree(v); }, device.pool());
  std::vector<graph::Weight> sink(device.workers(), 0);

  util::Timer timer;
  for (std::size_t b = 0; b < scheme.num_buckets(); ++b) {
    auto bucket = binned.bucket(b);
    if (bucket.empty()) continue;
    const bool use_global = b >= scheme.global_from;
    device.launch(bucket.size(), use_global ? 1 : 0, [&](simt::TaskContext& ctx) {
      const graph::VertexId v = bucket[ctx.task()];
      const graph::EdgeIdx deg = g.degree(v);
      if (deg == 0) return;
      const auto cap =
          static_cast<std::size_t>(util::hash_capacity_for_degree(deg));
      auto keys = use_global ? ctx.shared().alloc_global<graph::Community>(cap)
                             : ctx.shared().alloc<graph::Community>(cap);
      auto weights = use_global ? ctx.shared().alloc_global<graph::Weight>(cap)
                                : ctx.shared().alloc<graph::Weight>(cap);
      core::CommunityHashMap table(keys, weights);
      table.clear();
      const graph::EdgeIdx off = g.offset(v);
      auto adjacency = g.adjacency();
      auto ew = g.edge_weights();
      simt::LaneGroup group(scheme.lanes[b]);
      group.strided_for(deg, [&](unsigned, std::size_t idx) {
        // First iteration: every neighbour is its own community.
        table.insert_add(adjacency[off + idx], ew[off + idx]);
      });
      sink[ctx.worker()] += table.weight_at(0);
    });
  }
  const double seconds = timer.seconds();
  volatile double keep = 0;
  for (auto s : sink) keep += s;
  (void)keep;
  return seconds;
}

/// The baseline's accumulation pass: per-worker dense scratch arrays
/// (the typical OpenMP approach the paper compares hashing rates with).
double plm_hash_pass(simt::ThreadPool& pool, const graph::Csr& g) {
  const graph::VertexId n = g.num_vertices();
  std::vector<std::vector<graph::Weight>> neigh(pool.size());
  std::vector<std::vector<graph::Community>> touched(pool.size());
  for (unsigned w = 0; w < pool.size(); ++w) {
    neigh[w].assign(n, -1);
    touched[w].reserve(256);
  }
  std::vector<graph::Weight> sink(pool.size(), 0);

  util::Timer timer;
  pool.parallel_for(n, [&](std::size_t vi, unsigned worker) {
    const auto v = static_cast<graph::VertexId>(vi);
    auto& nw = neigh[worker];
    auto& tc = touched[worker];
    tc.clear();
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const graph::Community c = nbrs[i];  // first iteration: own community
      if (nw[c] < 0) {
        nw[c] = 0;
        tc.push_back(c);
      }
      nw[c] += ws[i];
    }
    if (!tc.empty()) sink[worker] += nw[tc[0]];
    for (auto c : tc) nw[c] = -1;
  });
  const double seconds = timer.seconds();
  volatile double keep = 0;
  for (auto s : sink) keep += s;
  (void)keep;
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const double scale = opt.get_double("scale", 0.2, "suite size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const std::int64_t reps = opt.get_int("reps", 3, "repetitions (min taken)");
  const auto graphs = bench::graphs_from_options(opt);
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("first-iteration hashing rate, core vs baseline").c_str());
    return 0;
  }

  bench::banner("Hashing microbench — first-iteration edge hashing rate",
                "GPU hashes the first iteration ~9x faster than the OpenMP "
                "code of [16] (CAS + on-chip tables vs locks)");

  simt::Device device;
  util::Table table({"graph", "2|E|", "core[ms]", "base[ms]", "core MEPS",
                     "base MEPS", "ratio"});
  for (const auto& name : graphs) {
    const auto g = gen::suite_entry(name).build(scale, static_cast<std::uint64_t>(seed));
    double tc = 1e300, tp = 1e300;
    for (int r = 0; r < reps; ++r) {
      tc = std::min(tc, core_hash_pass(device, g));
      tp = std::min(tp, plm_hash_pass(device.pool(), g));
    }
    const double arcs = static_cast<double>(g.num_arcs());
    table.add_row({name, util::Table::count(g.num_arcs()),
                   util::Table::fixed(tc * 1e3, 2), util::Table::fixed(tp * 1e3, 2),
                   util::Table::fixed(arcs / tc / 1e6, 1),
                   util::Table::fixed(arcs / tp / 1e6, 1),
                   util::Table::fixed(tp / tc, 2)});
  }
  table.print(std::cout);
  std::printf("\nnote: both passes run on the same cores here; the paper's 9x "
              "included the K40m's memory-bandwidth advantage.\n");
  return 0;
}
