// Compressed-storage scale harness (DESIGN.md §12): an R-MAT graph in
// the 10-50M-edge range end to end under all three storage modes —
// zcsr (in-memory varint stream), mmap (the same stream read from a
// .zg container mapping) and plain — verifying the partitions are
// bitwise-identical and reporting the adjacency-bytes reduction the
// zg subsystem stands in for (GPU global-memory compression; the K40m
// of the paper holds 12 GB, and §5 bounds the largest processable
// input by exactly this adjacency footprint).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gen/rmat.hpp"
#include "zg/container.hpp"

using namespace glouvain;

namespace {

/// Sum of every record of an unbinned counter across levels.
double counter_total(const obs::Recorder& rec, std::string_view name) {
  double total = 0;
  for (const obs::CounterRecord& c : rec.counters()) {
    if (rec.name(c.name) == name) total += c.value;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const auto scale = static_cast<unsigned>(
      opt.get_int("scale", 19, "R-MAT scale (n = 2^scale vertices)"));
  const double edge_factor =
      opt.get_double("edge-factor", 20.0, "edges per vertex");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const auto repeat =
      static_cast<int>(opt.get_int("repeat", 1, "timed runs per mode (min)"));
  const std::string json = opt.get_string("json", "", "bench JSON output file");
  const std::string zg_path = opt.get_string(
      "zg", "zg_scale.zg", "container written for (and mapped by) mmap mode");
  if (opt.help_requested()) {
    std::printf("%s",
                opt.usage("compressed-storage scale run (zcsr/mmap/plain)")
                    .c_str());
    return 0;
  }

  bench::banner("zg scale — compressed storage at paper-scale inputs",
                "the 12 GB K40m bounds processable inputs by adjacency bytes; "
                "zcsr/mmap storage cuts those >=2x with bitwise-identical "
                "partitions");

  gen::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  util::Timer gen_timer;
  const graph::Csr g = gen::rmat(params, static_cast<std::uint64_t>(seed));
  std::printf("graph: 2^%u vertices -> %u vertices, %llu edges (%.1fs to "
              "generate)\n",
              scale, g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              gen_timer.seconds());

  util::Timer enc_timer;
  const zg::ZCsr z = zg::ZCsr::encode(g);
  const double encode_seconds = enc_timer.seconds();
  const util::Status saved = zg::save(z, zg_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.to_string().c_str());
    return util::exit_code(saved);
  }
  auto mapped = zg::MappedGraph::open(zg_path);
  if (!mapped.ok()) {
    std::fprintf(stderr, "error: %s\n", mapped.status().to_string().c_str());
    return util::exit_code(mapped.status());
  }
  const double packed =
      static_cast<double>(z.bytes_stream() + z.bytes_index());
  std::printf("encode: %.1fs, %s weights, %.0f adjacency bytes -> %.0f "
              "(%.2fx smaller)\n\n",
              encode_seconds, zg::to_string(z.weight_mode()),
              static_cast<double>(z.plain_bytes()), packed,
              static_cast<double>(z.plain_bytes()) / packed);

  core::Config cfg;
  cfg.thresholds = bench::paper_thresholds();

  struct ModeResult {
    std::string name;
    double seconds = 0;
    detect::Result result;
    double decode_ns = 0;
    double reseeks = 0;
    double bytes_ht = 0;
  };
  std::vector<ModeResult> modes;

  // One warm runner per mode (the per-mode arenas and workspace then
  // mirror a dedicated device). Run order is zcsr -> mmap -> plain:
  // ru_maxrss only grows, so the compressed modes run before the plain
  // arrays put the high-water mark out of reach.
  const auto run_mode = [&](const std::string& name, auto&& invoke) {
    core::Louvain runner(cfg);
    obs::Recorder rec;
    ModeResult mr;
    mr.name = name;
    for (int r = 0; r < repeat; ++r) {
      util::Timer t;
      detect::Result result = invoke(runner, rec);
      const double s = t.seconds();
      if (r == 0 || s < mr.seconds) mr.seconds = s;
      mr.result = std::move(result);
    }
    mr.decode_ns = counter_total(rec, "zg/decode_ns") / repeat;
    mr.reseeks = counter_total(rec, "zg/reseeks") / repeat;
    mr.bytes_ht = counter_total(rec, "zg/bytes_ht") / repeat;
    modes.push_back(std::move(mr));
  };

  run_mode("zcsr", [&](core::Louvain& runner, obs::Recorder& rec) {
    return runner.run_z(z, &rec);
  });
  run_mode("mmap", [&](core::Louvain& runner, obs::Recorder& rec) {
    return runner.run_z(mapped->zcsr(), &rec);
  });
  run_mode("plain", [&](core::Louvain& runner, obs::Recorder& rec) {
    return runner.run(g, &rec);
  });

  bool identical = true;
  for (const ModeResult& mr : modes) {
    if (mr.result.community != modes.front().result.community) {
      identical = false;
      std::fprintf(stderr, "FAIL: %s partition differs from %s\n",
                   mr.name.c_str(), modes.front().name.c_str());
    }
  }

  util::Table table({"mode", "seconds", "Q", "levels", "decode ms", "reseeks"});
  for (const ModeResult& mr : modes) {
    table.add_row({mr.name, util::Table::fixed(mr.seconds, 3),
                   util::Table::fixed(mr.result.modularity, 5),
                   std::to_string(mr.result.levels.size()),
                   util::Table::fixed(mr.decode_ns / 1e6, 2),
                   util::Table::fixed(mr.reseeks, 0)});
  }
  table.print(std::cout);
  std::printf("\npartitions: %s\n",
              identical ? "bitwise-identical across modes" : "MISMATCH");
  std::printf("peak RSS: %.1f MiB (whole process; plain arrays dominate)\n",
              static_cast<double>(bench::peak_rss_bytes()) / (1024.0 * 1024.0));

  if (!json.empty()) {
    bench::JsonReport report("zg_scale");
    report.set_param("scale", scale);
    report.set_param("edge_factor", edge_factor);
    report.set_param("seed", static_cast<double>(seed));
    report.set_param("repeat", repeat);
    for (const ModeResult& mr : modes) {
      std::vector<std::pair<std::string, double>> metrics = {
          {"vertices", static_cast<double>(g.num_vertices())},
          {"edges", static_cast<double>(g.num_edges())},
          {"seconds", mr.seconds},
          {"modularity", mr.result.modularity},
          {"levels", static_cast<double>(mr.result.levels.size())},
          {"identical", identical ? 1.0 : 0.0},
      };
      if (mr.name != "plain") {
        metrics.emplace_back("zg/bytes_adj",
                             static_cast<double>(z.bytes_stream()));
        metrics.emplace_back("zg/bytes_index",
                             static_cast<double>(z.bytes_index()));
        metrics.emplace_back("zg/plain_bytes",
                             static_cast<double>(z.plain_bytes()));
        metrics.emplace_back("zg/ratio",
                             static_cast<double>(z.plain_bytes()) / packed);
        metrics.emplace_back("zg/decode_ns", mr.decode_ns);
        metrics.emplace_back("zg/reseeks", mr.reseeks);
      }
      if (mr.bytes_ht > 0) metrics.emplace_back("zg/bytes_ht", mr.bytes_ht);
      report.add_metrics("rmat", mr.name, std::move(metrics));
    }
    if (!report.write(json)) return 4;
  }
  return identical ? 0 : 1;
}
