// google-benchmark microbenches for the Thrust-analogue primitives and
// the concurrent hash table — the building blocks whose throughput the
// kernels inherit.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/hash_map.hpp"
#include "prim/partition.hpp"
#include "prim/reduce.hpp"
#include "prim/scan.hpp"
#include "prim/sort.hpp"
#include "util/primes.hpp"
#include "util/prng.hpp"

namespace {

using namespace glouvain;

std::vector<std::uint64_t> make_data(std::size_t n) {
  util::Xoshiro256 rng(42);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(1 << 20);
  return v;
}

void BM_ExclusiveScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto in = make_data(n);
  std::vector<std::uint64_t> out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prim::exclusive_scan(std::span<const std::uint64_t>(in),
                             std::span<std::uint64_t>(out)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ExclusiveScan)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_StablePartition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto in = make_data(n);
  std::vector<std::uint64_t> out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prim::stable_partition_copy(
        std::span<const std::uint64_t>(in), std::span<std::uint64_t>(out),
        [](std::uint64_t x) { return (x & 7) == 0; }));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_StablePartition)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_Sort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base = make_data(n);
  std::vector<std::uint64_t> data(n);
  for (auto _ : state) {
    data = base;
    prim::sort(std::span<std::uint64_t>(data));
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Sort)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_Reduce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto in = make_data(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prim::sum(std::span<const std::uint64_t>(in)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Reduce)->Arg(1 << 16)->Arg(1 << 22);

/// Single-threaded insert-accumulate throughput of the Algorithm-2
/// hash table at the paper's load factor (<= 2/3).
void BM_HashInsert(benchmark::State& state) {
  const auto degree = static_cast<std::size_t>(state.range(0));
  const auto cap = static_cast<std::size_t>(util::hash_capacity_for_degree(degree));
  std::vector<graph::Community> keys(cap);
  std::vector<graph::Weight> weights(cap);
  core::CommunityHashMap table{std::span<graph::Community>(keys),
                               std::span<graph::Weight>(weights)};
  util::Xoshiro256 rng(7);
  std::vector<graph::Community> communities(degree);
  for (auto& c : communities) {
    c = static_cast<graph::Community>(rng.next_below(degree));
  }
  for (auto _ : state) {
    table.clear();
    for (auto c : communities) {
      benchmark::DoNotOptimize(table.insert_add(c, 1.0));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(degree) * state.iterations());
}
BENCHMARK(BM_HashInsert)->Arg(4)->Arg(32)->Arg(319)->Arg(4096)->Arg(1 << 16);

/// Contended accumulate: all pool workers hammering one table.
void BM_HashInsertContended(benchmark::State& state) {
  const std::size_t keys_n = 64;
  const auto cap = static_cast<std::size_t>(util::hash_capacity_for_degree(keys_n * 2));
  std::vector<graph::Community> keys(cap);
  std::vector<graph::Weight> weights(cap);
  core::CommunityHashMap table{std::span<graph::Community>(keys),
                               std::span<graph::Weight>(weights)};
  auto& pool = simt::ThreadPool::global();
  const std::size_t n = 1 << 18;
  for (auto _ : state) {
    table.clear();
    pool.parallel_for(n, [&](std::size_t i, unsigned) {
      table.insert_add(static_cast<graph::Community>(i % keys_n), 1.0);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_HashInsertContended);

}  // namespace

BENCHMARK_MAIN();
