// Dynamic-graph extension bench (not a paper figure): warm-started
// re-detection after edge churn versus a full recompute per batch.
// Two stream::Sessions replay the same generated delta sequence over
// the same planted-partition graph; one warm-starts from the previous
// partition and sweeps only the affected frontier, the other runs the
// detector cold every epoch. Methodology and the acceptance bar
// (>= 3x at <= 1% modularity gap on the default 100k-vertex SBM) are
// described in EXPERIMENTS.md "Streaming updates".
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "gen/churn.hpp"
#include "gen/sbm.hpp"
#include "stream/session.hpp"

namespace glouvain {
namespace {

int run(int argc, char** argv) {
  util::Options opt(argc, argv);
  const auto n = static_cast<graph::VertexId>(
      opt.get_int("scale", 100'000, "vertices in the planted-partition SBM"));
  const auto k = static_cast<graph::VertexId>(
      opt.get_int("communities", 500, "planted communities"));
  const double intra = opt.get_double("intra", 12.0, "expected intra-degree");
  const double inter = opt.get_double("inter", 2.0, "expected inter-degree");
  const int epochs =
      static_cast<int>(opt.get_int("epochs", 8, "churn batches to replay"));
  const double fraction = opt.get_double(
      "fraction", 0.002, "edges churned per batch, as a fraction of m");
  const std::string mode =
      opt.get_string("mode", "preserve", "churn mode: preserve | merge");
  const auto seed =
      static_cast<std::uint64_t>(opt.get_int("seed", 1, "generator seed"));
  const std::string backend =
      opt.get_string("backend", "core", "detection backend for both sessions");
  const auto threads = static_cast<unsigned>(
      opt.get_int("threads", 0, "worker threads (0 = hardware concurrency)"));
  const std::string json_path = opt.get_string(
      "json", "", "write machine-readable results to this file");
  if (opt.help_requested()) {
    std::cout << opt.usage("warm-start streaming updates vs full recompute");
    return 0;
  }

  bench::banner("stream_updates",
                "dynamic extension — warm-started re-detection after edge "
                "churn (no counterpart figure; see EXPERIMENTS.md)");

  gen::SbmParams sbm;
  sbm.num_vertices = n;
  sbm.num_communities = k;
  sbm.intra_degree = intra;
  sbm.inter_degree = inter;
  sbm.seed = seed;
  auto planted = gen::planted_partition(sbm);
  std::printf("graph: sbm n=%s m=%s k=%s churn=%s/batch x %d (%s)\n\n",
              util::Table::count(planted.graph.num_vertices()).c_str(),
              util::Table::count(planted.graph.num_edges()).c_str(),
              util::Table::count(k).c_str(),
              util::Table::percent(fraction, 2).c_str(), epochs, mode.c_str());

  gen::ChurnParams churn;
  churn.epochs = epochs;
  churn.churn_fraction = fraction;
  churn.mode = mode == "merge" ? gen::ChurnMode::CommunityMerging
                               : gen::ChurnMode::CommunityPreserving;
  churn.seed = seed + 1;
  const auto deltas = gen::churn(planted.graph, planted.ground_truth, churn);

  stream::SessionOptions warm_opts;
  warm_opts.backend = backend;
  warm_opts.options.thresholds = bench::paper_thresholds();
  warm_opts.options.threads = threads;
  stream::SessionOptions cold_opts = warm_opts;
  cold_opts.warm = false;

  auto warm = stream::Session::open(planted.graph, warm_opts);
  auto cold = stream::Session::open(std::move(planted.graph), cold_opts);
  if (!warm.ok() || !cold.ok()) {
    std::fprintf(stderr, "session open failed: %s\n",
                 (warm.ok() ? cold.status() : warm.status()).to_string().c_str());
    return 1;
  }
  std::printf("epoch 0 (cold baseline for both): Q = %.4f\n\n",
              warm->result().modularity);

  bench::JsonReport report("stream_updates");
  report.set_param("scale", static_cast<double>(n));
  report.set_param("communities", static_cast<double>(k));
  report.set_param("epochs", static_cast<double>(epochs));
  report.set_param("fraction", fraction);
  report.set_param("seed", static_cast<double>(seed));

  util::Table table({"epoch", "+edges", "-edges", "frontier", "warm ms",
                     "cold ms", "speedup", "Q warm", "Q cold", "gap"});
  for (std::size_t c = 0; c < 10; ++c) {
    table.set_align(c, util::Table::Align::Right);
  }

  double warm_total = 0;
  double cold_total = 0;
  double worst_gap = 0;
  for (const auto& delta : deltas) {
    const auto wr = warm->apply(delta);
    const auto cr = cold->apply(delta);
    if (!wr.ok() || !cr.ok()) {
      std::fprintf(stderr, "apply failed: %s\n",
                   (wr.ok() ? cr.status() : wr.status()).to_string().c_str());
      return 1;
    }
    const double wt =
        wr->apply_seconds + wr->frontier_seconds + wr->detect_seconds;
    const double ct = cr->apply_seconds + cr->detect_seconds;
    const double gap = std::abs(wr->modularity - cr->modularity) /
                       std::max(std::abs(cr->modularity), 1e-12);
    warm_total += wt;
    cold_total += ct;
    worst_gap = std::max(worst_gap, gap);
    const std::string graph_tag = "sbm-epoch" + std::to_string(wr->epoch);
    report.add_metrics(graph_tag, "warm",
                       {{"inserted", static_cast<double>(wr->inserted)},
                        {"deleted", static_cast<double>(wr->deleted)},
                        {"frontier", static_cast<double>(wr->frontier_size)},
                        {"apply_ms", wr->apply_seconds * 1e3},
                        {"frontier_ms", wr->frontier_seconds * 1e3},
                        {"detect_ms", wr->detect_seconds * 1e3},
                        {"modularity", wr->modularity}});
    report.add_metrics(graph_tag, "cold",
                       {{"apply_ms", cr->apply_seconds * 1e3},
                        {"detect_ms", cr->detect_seconds * 1e3},
                        {"modularity", cr->modularity}});
    table.add_row({std::to_string(wr->epoch),
                   util::Table::count(wr->inserted),
                   util::Table::count(wr->deleted),
                   util::Table::count(wr->frontier_size),
                   util::Table::fixed(wt * 1e3, 2),
                   util::Table::fixed(ct * 1e3, 2),
                   util::Table::fixed(ct / std::max(wt, 1e-12), 2),
                   util::Table::fixed(wr->modularity, 4),
                   util::Table::fixed(cr->modularity, 4),
                   util::Table::percent(gap, 2)});
  }
  table.print(std::cout);

  const double speedup = cold_total / std::max(warm_total, 1e-12);
  std::printf("\ntotals: warm %.3f s, cold %.3f s, speedup %.2fx, "
              "worst gap %s\n",
              warm_total, cold_total, speedup,
              util::Table::percent(worst_gap, 2).c_str());
  const bool pass = speedup >= 3.0 && worst_gap <= 0.01;
  std::printf("acceptance (>= 3x, gap <= 1%%): %s\n", pass ? "PASS" : "FAIL");
  report.add_metrics("sbm", "summary",
                     {{"warm_total_s", warm_total},
                      {"cold_total_s", cold_total},
                      {"speedup", speedup},
                      {"worst_gap", worst_gap}});
  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace glouvain

int main(int argc, char** argv) { return glouvain::run(argc, argv); }
