// Figures 5 and 6 reproduction: per-stage time breakdown (modularity
// optimization vs aggregation) across the multilevel hierarchy.
//
// Paper shapes: Fig 5 (road_usa) — the first stage dominates, followed
// by a long tail of cheap stages; ~70% of total time in optimization.
// Fig 6 (nlpkkt200) — a pathological middle stage dominates: for the
// first few stages the graph barely contracts, then one expensive
// optimization phase (largest community 2 orders of magnitude bigger
// than before) precedes the collapse.
#include "bench_common.hpp"

using namespace glouvain;

namespace {

void breakdown(const char* figure, const char* graph_name, const char* paper_graph,
               const LouvainResult& r) {
  std::printf("\n%s — %s (stands in for %s)\n", figure, graph_name, paper_graph);
  util::Table table({"stage", "|V| in", "sweeps", "opt[s]", "agg[s]",
                     "opt share", "Q after"});
  double opt_total = 0, agg_total = 0;
  for (std::size_t i = 0; i < r.levels.size(); ++i) {
    const auto& level = r.levels[i];
    opt_total += level.optimize_seconds;
    agg_total += level.aggregate_seconds;
    table.add_row({std::to_string(i + 1), util::Table::count(level.vertices),
                   std::to_string(level.iterations),
                   util::Table::fixed(level.optimize_seconds, 4),
                   util::Table::fixed(level.aggregate_seconds, 4),
                   util::Table::percent(
                       level.optimize_seconds /
                           std::max(level.optimize_seconds + level.aggregate_seconds,
                                    1e-12),
                       0),
                   util::Table::fixed(level.modularity_after, 4)});
  }
  table.print(std::cout);
  std::printf("phase totals: optimization %.3fs (%s), aggregation %.3fs (%s); "
              "paper: ~70%% / ~30%%\n",
              opt_total,
              util::Table::percent(opt_total / std::max(opt_total + agg_total, 1e-12), 0)
                  .c_str(),
              agg_total,
              util::Table::percent(agg_total / std::max(opt_total + agg_total, 1e-12), 0)
                  .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const double scale = opt.get_double("scale", 0.3, "suite size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const auto limit = static_cast<graph::VertexId>(
      opt.get_int("adaptive-limit", 2000, "t_bin applies while |V| > limit"));
  const std::string trace_prefix = opt.get_string(
      "trace", "", "write chrome://tracing JSON to PREFIX-<graph>.json");
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("Figures 5-6: per-stage time breakdown").c_str());
    return 0;
  }

  bench::banner("Figures 5 & 6 — per-stage time breakdown",
                "Fig 5 (road_usa): heavy first stage + cheap tail, ~70% of "
                "time in optimization. Fig 6 (nlpkkt200): little contraction "
                "early, then one dominant mid-stage optimization");

  core::Config cfg;
  cfg.thresholds = bench::paper_thresholds();
  cfg.thresholds.adaptive_limit = limit;

  {
    obs::Recorder rec;
    obs::Recorder* recp = trace_prefix.empty() ? nullptr : &rec;
    const auto g = gen::suite_entry("road").build(scale, static_cast<std::uint64_t>(seed));
    const auto r = core::louvain(g, cfg, recp);
    breakdown("Figure 5", "road", "road_usa", r);
    if (recp) {
      rec.write_phase_table(std::cout);
      bench::write_trace(rec, trace_prefix, "road");
    }
  }
  {
    obs::Recorder rec;
    obs::Recorder* recp = trace_prefix.empty() ? nullptr : &rec;
    const auto g = gen::suite_entry("nlpkkt").build(scale, static_cast<std::uint64_t>(seed));
    const auto r = core::louvain(g, cfg, recp);
    breakdown("Figure 6", "nlpkkt", "nlpkkt200", r);
    if (recp) {
      rec.write_phase_table(std::cout);
      bench::write_trace(rec, trace_prefix, "nlpkkt");
    }
  }
  return 0;
}
