// Service-layer throughput: p50/p99 job latency and jobs/sec for a
// stream of detection jobs through svc::Service, cold (every graph
// distinct, every job runs a backend) versus warm (the same graphs
// resubmitted, served from the LRU result cache). Not a paper figure:
// this measures the orchestration layer the paper's load-balanced
// kernels point toward (§6 outlook — keeping the device busy across
// many inputs), on top of the reproduced algorithm.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "svc/service.hpp"

namespace {

using namespace glouvain;

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

double mean(const std::vector<double>& v) {
  double s = 0;
  for (const double x : v) s += x;
  return v.empty() ? 0 : s / static_cast<double>(v.size());
}

struct PassReport {
  double wall_seconds = 0;
  std::vector<double> latencies;  // per-job submit -> terminal, seconds
  int cache_hits = 0;
  int completed = 0;
};

PassReport run_pass(svc::Service& service, const std::vector<graph::Csr>& graphs) {
  PassReport report;
  util::Timer wall;
  std::vector<svc::JobId> ids;
  ids.reserve(graphs.size());
  for (const auto& g : graphs) ids.push_back(service.submit(g));
  for (const svc::JobId id : ids) {
    const svc::JobResult r = service.wait(id);
    if (r.status == svc::JobStatus::Completed) {
      ++report.completed;
      report.latencies.push_back(r.total_seconds);
      if (r.cache_hit) ++report.cache_hits;
    }
  }
  report.wall_seconds = wall.seconds();
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const double scale = opt.get_double("scale", 0.04, "graph size multiplier");
  const auto jobs = static_cast<int>(opt.get_int("jobs", 24, "jobs per pass"));
  const auto devices = static_cast<unsigned>(
      opt.get_int("devices", 2, "pooled simt devices"));
  const auto threads = static_cast<unsigned>(
      opt.get_int("threads", 0, "simt workers per device (0 = hardware)"));
  const auto seed = static_cast<std::uint64_t>(
      opt.get_int("seed", 1, "generator seed base"));
  if (opt.help_requested()) {
    std::fputs(opt.usage("service throughput: cold vs cached job streams").c_str(),
               stderr);
    return 0;
  }

  bench::banner("svc_throughput — service layer, jobs/sec and latency",
                "the kernels keep one device saturated on one graph; the "
                "service keeps a device pool saturated on a stream of them "
                "(paper outlook; Staudt & Meyerhenke's engineering line)");

  // Distinct seeds -> distinct fingerprints: the cold pass cannot hit.
  const std::vector<std::string> families = {"orkut", "road", "community",
                                             "rgg"};
  std::vector<graph::Csr> graphs;
  graphs.reserve(static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) {
    const auto& entry = gen::suite_entry(families[static_cast<std::size_t>(j) %
                                                  families.size()]);
    graphs.push_back(entry.build(scale, seed + static_cast<std::uint64_t>(j)));
  }

  svc::ServiceConfig cfg;
  cfg.devices = devices;
  cfg.device_threads = threads;
  cfg.queue_capacity = static_cast<std::size_t>(jobs) * 2 + 8;
  cfg.cache_capacity = static_cast<std::size_t>(jobs) + 8;
  svc::Service service(cfg);

  const PassReport cold = run_pass(service, graphs);
  const PassReport warm = run_pass(service, graphs);

  util::Table table({"pass", "jobs", "completed", "cache hits", "jobs/s",
                     "p50 ms", "p99 ms", "mean ms"});
  const auto row = [&table, jobs](const char* name, const PassReport& r) {
    table.add_row({name, std::to_string(jobs), std::to_string(r.completed),
                   std::to_string(r.cache_hits),
                   util::Table::fixed(static_cast<double>(r.completed) /
                                          r.wall_seconds, 1),
                   util::Table::fixed(percentile(r.latencies, 0.50) * 1e3, 2),
                   util::Table::fixed(percentile(r.latencies, 0.99) * 1e3, 2),
                   util::Table::fixed(mean(r.latencies) * 1e3, 2)});
  };
  row("cold", cold);
  row("warm (cached)", warm);
  table.print(std::cout);

  const double speedup = mean(warm.latencies) > 0
                             ? mean(cold.latencies) / mean(warm.latencies)
                             : 0;
  std::printf("\ncache-hit speedup (mean cold / mean warm): %.1fx "
              "(acceptance: > 10x)\n", speedup);

  const svc::Stats st = service.stats();
  std::printf("service: %u devices x %u threads, %llu spills; "
              "cache %llu hits / %llu misses; routing device %llu, "
              "sequential %llu\n",
              st.devices, st.device_threads,
              static_cast<unsigned long long>(st.shared_spills),
              static_cast<unsigned long long>(st.cache_hits),
              static_cast<unsigned long long>(st.cache_misses),
              static_cast<unsigned long long>(st.ran_on_device),
              static_cast<unsigned long long>(st.ran_sequential));
  std::printf("phases:  optimize %.3fs, aggregate %.3fs across %llu levels "
              "(%llu sweeps)\n",
              st.optimize_seconds, st.aggregate_seconds,
              static_cast<unsigned long long>(st.levels_total),
              static_cast<unsigned long long>(st.sweeps_total));
  return speedup > 10.0 ? 0 : 1;
}
