// Figures 1 and 2 reproduction: the (t_final, t_bin) threshold grid.
//
// Figure 1: average modularity relative to sequential, over t_bin in
// {1e-1..1e-4} x t_final in {1e-3..1e-7}; the paper reports the
// relative modularity DECREASES as thresholds increase but never drops
// below 98%.
// Figure 2: average speedup relative to the best configuration per
// graph; the paper reports speedup depends critically on t_bin (higher
// t_bin -> faster), and picks (1e-2, 1e-6) as the operating point with
// >99% modularity at ~63% of best speedup.
#include "bench_common.hpp"

#include <cmath>
#include <map>

using namespace glouvain;

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const double scale = opt.get_double("scale", 0.05, "suite size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  // Force the adaptive switch to bite even on scaled-down graphs: the
  // paper uses 100k vertices; scaled suite graphs are smaller.
  const auto limit = static_cast<graph::VertexId>(
      opt.get_int("adaptive-limit", 2000, "t_bin applies while |V| > limit"));
  const auto graphs = bench::graphs_from_options(opt);
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("Figures 1-2: threshold grid").c_str());
    return 0;
  }

  bench::banner("Figures 1 & 2 — modularity and speedup over the threshold grid",
                "Fig 1: relative modularity 98-100%, decreasing with larger "
                "thresholds. Fig 2: speedup rises with t_bin; chosen point "
                "(1e-2, 1e-6) keeps >99% modularity at ~63% of best speedup");

  const std::vector<double> t_bins{1e-1, 1e-2, 1e-3, 1e-4};
  const std::vector<double> t_finals{1e-3, 1e-4, 1e-5, 1e-6, 1e-7};

  // Per-graph sequential reference and per-config results.
  struct Cell {
    double rel_mod_sum = 0;
    double seconds_sum = 0;
  };
  std::map<std::pair<double, double>, Cell> cells;
  std::map<std::pair<double, double>, std::map<std::string, double>> times;

  for (const auto& name : graphs) {
    const auto g = gen::suite_entry(name).build(scale, static_cast<std::uint64_t>(seed));
    const auto seq_run = bench::run_seq(g, /*adaptive=*/false);
    for (double tb : t_bins) {
      for (double tf : t_finals) {
        core::Config cfg;
        cfg.thresholds = {.t_bin = tb, .t_final = tf, .adaptive_limit = limit,
                          .adaptive = true};
        const auto r = core::louvain(g, cfg);
        auto& cell = cells[{tb, tf}];
        cell.rel_mod_sum += seq_run.modularity > 1e-9
                                ? r.modularity / seq_run.modularity
                                : 1.0;
        cell.seconds_sum += r.total_seconds;
        times[{tb, tf}][name] = r.total_seconds;
      }
    }
  }

  const double n_graphs = static_cast<double>(graphs.size());

  std::printf("Figure 1: average modularity relative to sequential (%%)\n");
  util::Table mod_table([&] {
    std::vector<std::string> headers{"t_bin \\ t_final"};
    for (double tf : t_finals) headers.push_back(util::Table::sci(tf, 0));
    return headers;
  }());
  for (double tb : t_bins) {
    std::vector<std::string> row{util::Table::sci(tb, 0)};
    for (double tf : t_finals) {
      row.push_back(util::Table::percent(cells[{tb, tf}].rel_mod_sum / n_graphs, 2));
    }
    mod_table.add_row(row);
  }
  mod_table.print(std::cout);

  // Figure 2: per-graph best time across configs, then average relative
  // speedup per config (exactly the paper's procedure).
  std::map<std::string, double> best_time;
  for (const auto& name : graphs) {
    double best = 1e300;
    for (const auto& [key, per_graph] : times) {
      (void)key;
      best = std::min(best, per_graph.at(name));
    }
    best_time[name] = best;
  }

  std::printf("\nFigure 2: average speedup relative to best configuration (%%)\n");
  util::Table spd_table([&] {
    std::vector<std::string> headers{"t_bin \\ t_final"};
    for (double tf : t_finals) headers.push_back(util::Table::sci(tf, 0));
    return headers;
  }());
  for (double tb : t_bins) {
    std::vector<std::string> row{util::Table::sci(tb, 0)};
    for (double tf : t_finals) {
      double rel_sum = 0;
      for (const auto& name : graphs) {
        rel_sum += best_time[name] / times[{tb, tf}][name];
      }
      row.push_back(util::Table::percent(rel_sum / n_graphs, 1));
    }
    spd_table.add_row(row);
  }
  spd_table.print(std::cout);

  const auto& chosen = cells[{1e-2, 1e-6}];
  std::printf("\nchosen operating point (1e-2, 1e-6): relative modularity %s, "
              "mean time %.3fs\n",
              util::Table::percent(chosen.rel_mod_sum / n_graphs, 2).c_str(),
              chosen.seconds_sum / n_graphs);
  return 0;
}
