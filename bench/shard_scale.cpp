// Sharded multi-device scaling experiment (src/shard): partition the
// level-0 graph into k shards with hub replication, run per-shard move
// phases with halo exchange, and track (a) solution quality against
// the sequential reference and (b) the modeled device-parallel
// critical path as k grows. In the default sequential mode the shards
// execute one after another on one warm software-SIMT device, so
// wall-clock does NOT shrink with k — the critical path (max per-shard
// phase time + exchange, per round) is what a k-GPU deployment would
// wait on (see DESIGN.md §14). With --concurrent each sequential run
// is paired with a concurrent one: the same k shards as Jacobi rounds
// on k pooled devices (simt::DevicePool), where wall-clock DOES
// shrink — the measured sequential/concurrent ratio is reported as
// shard/concurrent_speedup.
//
// Gates (exit 1 on failure; the CI shard-smoke job runs these):
//   * k = 1 is bitwise-identical to the core backend — under plain AND
//     (with --concurrent) mmap shard storage;
//   * quality stays >= 98% of sequential Louvain at every sharded k
//     for both block and hubrep partitioning, sequential AND
//     concurrent (the Jacobi schedule must not cost quality);
//   * the critical path, in DETERMINISTIC work units
//     (Result::critical_work: sweeps x active arcs on the busiest
//     shard + marshal + exchange per round), decreases strictly
//     monotonically across the sequential k ladder for each strategy;
//   * with --concurrent, mmap hubrep k=4 is bitwise-identical to the
//     plain-storage run at the same k (storage must not change moves);
//   * with --concurrent on a host with >= 8 hardware threads, hubrep
//     k=4 concurrent wall-clock beats sequential by >= 1.8x. On
//     smaller hosts (the 1-CPU CI runner included) the speedup is
//     reported as a diagnostic only — there are no spare cores for
//     the lanes to land on, so the ratio measures scheduler noise.
// Wall time on this one-CPU simulator swings +-2x with machine load
// (and folds in thread-pool launch overhead a real device pays in
// microseconds), so critical SECONDS are reported as a diagnostic,
// not gated; the engine is deterministic, so identical inputs gate
// identically on a given lane substrate.
#include "bench_common.hpp"

#include <cstring>
#include <thread>

#include "gen/rmat.hpp"
#include "shard/engine.hpp"
#include "shard/plan_cache.hpp"

using namespace glouvain;

namespace {

struct ShardRun {
  unsigned k = 1;
  const char* partition = "-";
  bool concurrent = false;
  shard::Result result;
  double seconds = 0;
  double speedup = 0;  ///< sequential wall / concurrent wall (conc rows)
};

const char* partition_label(detect::Partition p) {
  return detect::partition_name(p);
}

shard::Config make_cfg(unsigned k, detect::Partition strategy,
                       bool concurrent, detect::ShardStorage storage) {
  shard::Config cfg;
  cfg.thresholds = bench::paper_thresholds();
  cfg.shards = k;
  cfg.partition = strategy;
  cfg.concurrent_shards = concurrent;
  cfg.shard_storage = storage;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const auto scale = static_cast<unsigned>(
      opt.get_int("scale", 19, "rmat scale (n = 2^scale)"));
  const double edge_factor =
      opt.get_double("edge-factor", 20.0, "rmat edges per vertex");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const bool full = opt.get_flag("full", "also run k = 8");
  const bool concurrent =
      opt.get_flag("concurrent", "pair each sharded run with a concurrent "
                                 "(pooled-device Jacobi) variant");
  const auto max_k = static_cast<unsigned>(
      opt.get_int("max-k", full ? 8 : 4, "largest shard count in the ladder"));
  const std::string json = opt.get_string("json", "", "bench JSON output file");
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("sharded multi-device scaling").c_str());
    return 0;
  }

  bench::banner("Sharded Louvain — hub-replicated partitioning + halo "
                "exchange",
                "conclusion/[4]: coarse-grained multi-GPU holds quality; "
                "hub replication (PowerGraph-style) bounds the ghost "
                "surface of scale-free cuts");

  const graph::Csr g =
      gen::rmat({.scale = scale, .edge_factor = edge_factor},
                static_cast<std::uint64_t>(seed));
  std::printf("rmat scale %u: %u vertices, %llu edges\n\n", scale,
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // Quality reference: sequential Blondel-style Louvain (the gate the
  // ISSUE pins), plus the core backend for the k = 1 bitwise check.
  const bench::AlgoRun seq = bench::run_seq(g, /*adaptive=*/true);
  std::printf("seq  reference: Q = %.5f (%.2fs)\n", seq.modularity,
              seq.seconds);
  core::Config core_cfg;
  core_cfg.thresholds = bench::paper_thresholds();
  const core::Result core_r = core::louvain(g, core_cfg);
  std::printf("core reference: Q = %.5f (%.2fs)\n\n", core_r.modularity,
              core_r.total_seconds);

  std::vector<unsigned> ks;
  for (const unsigned k : {1u, 2u, 4u, 8u}) {
    if (k <= max_k) ks.push_back(k);
  }
  const detect::Partition strategies[] = {detect::Partition::kBlock,
                                          detect::Partition::kHubRep};
  const unsigned hw = std::thread::hardware_concurrency();

  std::vector<ShardRun> runs;
  bool ok = true;

  // k = 1 first (partition-independent): must replicate core exactly.
  {
    shard::Config cfg = make_cfg(1, detect::Partition::kHubRep, false,
                                 detect::ShardStorage::kPlain);
    util::Timer t;
    ShardRun run{1, "-", false, shard::louvain(g, shard::to_config(cfg, cfg)),
                 0, 0};
    run.seconds = t.seconds();
    const bool bitwise =
        run.result.community == core_r.community &&
        run.result.modularity == core_r.modularity;
    std::printf("k=1 bitwise vs core: %s\n", bitwise ? "identical" : "MISMATCH");
    if (!bitwise) ok = false;
    runs.push_back(std::move(run));
  }
  if (concurrent) {
    // The unsharded path ignores the concurrency and storage knobs at
    // the moves level, but both must still reproduce core exactly
    // end to end (k=1 mmap exercises the spill/decode round-trip).
    for (const auto storage :
         {detect::ShardStorage::kPlain, detect::ShardStorage::kMmap}) {
      shard::Config cfg =
          make_cfg(1, detect::Partition::kHubRep, true, storage);
      const shard::Result r = shard::louvain(g, shard::to_config(cfg, cfg));
      const bool bitwise = r.community == core_r.community &&
                           r.modularity == core_r.modularity;
      std::printf("k=1 concurrent/%s bitwise vs core: %s\n",
                  detect::shard_storage_name(storage),
                  bitwise ? "identical" : "MISMATCH");
      if (!bitwise) ok = false;
    }
  }
  std::printf("\n");

  for (const auto strategy : strategies) {
    for (const unsigned k : ks) {
      if (k == 1) continue;
      shard::Config cfg =
          make_cfg(k, strategy, false, detect::ShardStorage::kPlain);
      util::Timer t;
      ShardRun run{k, partition_label(strategy), false,
                   shard::louvain(g, shard::to_config(cfg, cfg)), 0, 0};
      run.seconds = t.seconds();
      const double seq_wall = run.seconds;
      runs.push_back(std::move(run));

      if (concurrent) {
        shard::Config ccfg =
            make_cfg(k, strategy, true, detect::ShardStorage::kPlain);
        util::Timer ct;
        ShardRun crun{k, partition_label(strategy), true,
                      shard::louvain(g, shard::to_config(ccfg, ccfg)), 0, 0};
        crun.seconds = ct.seconds();
        crun.speedup = crun.seconds > 1e-9 ? seq_wall / crun.seconds : 0;
        runs.push_back(std::move(crun));
      }
    }
  }

  // Out-of-core cross-check: the mmap containers round-trip the local
  // graphs bitwise, so storage must never change the moves. Checked at
  // the deepest hubrep k of the ladder, concurrent (the mode that maps
  // the containers from several lanes at once).
  if (concurrent && max_k >= 2) {
    const unsigned k = std::min(4u, max_k);
    const ShardRun* plain_ref = nullptr;
    for (const ShardRun& run : runs) {
      if (run.concurrent && run.k == k &&
          std::strcmp(run.partition, "hubrep") == 0) {
        plain_ref = &run;
      }
    }
    shard::Config mcfg = make_cfg(k, detect::Partition::kHubRep, true,
                                  detect::ShardStorage::kMmap);
    const shard::Result mr = shard::louvain(g, shard::to_config(mcfg, mcfg));
    const bool bitwise = plain_ref != nullptr &&
                         mr.community == plain_ref->result.community &&
                         mr.modularity == plain_ref->result.modularity;
    std::printf("mmap hubrep k=%u bitwise vs plain: %s\n\n", k,
                bitwise ? "identical" : "MISMATCH");
    if (!bitwise) ok = false;
  }

  util::Table table({"partition", "k", "mode", "Q", "vs seq", "work[Marc]",
                     "critical[s]", "wall[s]", "devs", "speedup"});
  for (const ShardRun& run : runs) {
    const auto& r = run.result;
    table.add_row(
        {run.partition, std::to_string(run.k),
         run.concurrent ? "conc" : "seq",
         util::Table::fixed(r.modularity, 5),
         util::Table::percent(
             seq.modularity > 1e-9 ? r.modularity / seq.modularity : 1.0, 1),
         util::Table::fixed(r.critical_work * 1e-6, 1),
         util::Table::fixed(r.critical_seconds, 3),
         util::Table::fixed(run.seconds, 3),
         std::to_string(r.devices_used),
         run.concurrent ? util::Table::fixed(run.speedup, 2) : "-"});
  }
  table.print(std::cout);

  // ---- gates ----
  for (const ShardRun& run : runs) {
    if (run.k == 1) continue;
    const double ratio = run.result.modularity / seq.modularity;
    if (ratio < 0.98) {
      std::printf("GATE FAIL: %s k=%u %s quality %.1f%% of seq (< 98%%)\n",
                  run.partition, run.k, run.concurrent ? "conc" : "seq",
                  100.0 * ratio);
      ok = false;
    }
  }
  const double work1 = runs[0].result.critical_work;
  for (const auto strategy : strategies) {
    const char* pname = partition_label(strategy);
    double prev = work1;
    unsigned prev_k = 1;
    for (const ShardRun& run : runs) {
      if (run.k == 1 || run.concurrent ||
          std::strcmp(run.partition, pname) != 0) {
        continue;
      }
      if (run.result.critical_work >= prev) {
        std::printf("GATE FAIL: %s critical work k=%u (%.1fM arcs) not "
                    "below k=%u (%.1fM arcs)\n",
                    pname, run.k, run.result.critical_work * 1e-6, prev_k,
                    prev * 1e-6);
        ok = false;
      }
      prev = run.result.critical_work;
      prev_k = run.k;
    }
  }
  // The wall-clock speedup gate arms only where it is physically
  // meaningful: a concurrent hubrep k=4 run on a host with >= 8
  // hardware threads (4 lanes x >= 2 workers). Elsewhere — notably a
  // 1-CPU CI runner, where the lanes timeshare one core — the ratio
  // is recorded as a diagnostic.
  if (concurrent && max_k >= 4) {
    for (const ShardRun& run : runs) {
      if (!run.concurrent || run.k != 4 ||
          std::strcmp(run.partition, "hubrep") != 0) {
        continue;
      }
      if (hw >= 8 && run.speedup < 1.8) {
        std::printf("GATE FAIL: concurrent hubrep k=4 speedup %.2fx < 1.8x "
                    "(hw=%u)\n",
                    run.speedup, hw);
        ok = false;
      } else {
        std::printf("concurrent hubrep k=4 speedup: %.2fx (hw=%u, gate %s)\n",
                    run.speedup, hw, hw >= 8 ? "armed" : "diagnostic only");
      }
    }
  }
  std::printf("\ngates: %s\n", ok ? "PASS" : "FAIL");
  std::printf("note: sequential rows simulate the shards one after another "
              "on one device; work[Marc]/critical[s] model the per-round "
              "max-shard + exchange path a k-device deployment waits on. "
              "The work column is deterministic and gated; seconds and "
              "speedups are diagnostics unless the host has the cores to "
              "make them physical.\n");

  if (!json.empty()) {
    const shard::PlanCache::Stats plan = shard::plan_cache().stats();
    bench::JsonReport report("shard_scale");
    report.set_param("scale", static_cast<double>(scale));
    report.set_param("edge_factor", edge_factor);
    report.set_param("seed", static_cast<double>(seed));
    report.set_param("concurrent", concurrent ? 1.0 : 0.0);
    report.set_param("max_k", static_cast<double>(max_k));
    report.add_metrics("rmat", "seq",
                       {{"vertices", static_cast<double>(g.num_vertices())},
                        {"edges", static_cast<double>(g.num_edges())},
                        {"seconds", seq.seconds},
                        {"levels", static_cast<double>(seq.levels)},
                        {"modularity", seq.modularity}});
    report.add_metrics("rmat", "core",
                       {{"seconds", core_r.total_seconds},
                        {"levels", static_cast<double>(core_r.levels.size())},
                        {"modularity", core_r.modularity}});
    for (const ShardRun& run : runs) {
      const auto& r = run.result;
      std::string name =
          run.k == 1 ? std::string("shard-1")
                     : std::string("shard-") + run.partition + "-" +
                           std::to_string(run.k);
      if (run.concurrent) name += "-conc";
      std::vector<std::pair<std::string, double>> metrics = {
          {"shards", static_cast<double>(run.k)},
          {"seconds", run.seconds},
          {"levels", static_cast<double>(r.levels.size())},
          {"modularity", r.modularity},
          {"quality_vs_seq",
           seq.modularity > 1e-9 ? r.modularity / seq.modularity : 1.0},
          {"shard/critical_s", r.critical_seconds},
          {"shard/critical_work", r.critical_work},
          {"shard/cut_fraction", r.partition.cut_fraction},
          {"shard/ghost_ratio", r.partition.ghost_ratio},
          {"shard/imbalance", r.partition.imbalance},
          {"shard/replicated_hubs",
           static_cast<double>(r.partition.replicated_hubs)},
          {"shard/exchange_rounds", static_cast<double>(r.exchange_rounds)},
          {"cache/plan_hits", static_cast<double>(r.plan_hits)},
          {"cache/plan_misses", static_cast<double>(r.plan_misses)},
          {"gates_pass", ok ? 1.0 : 0.0}};
      std::vector<std::string> diagnostic = {"shard/critical_s"};
      if (run.concurrent) {
        metrics.emplace_back("shard/concurrent_devices",
                             static_cast<double>(r.devices_used));
        metrics.emplace_back("shard/concurrent_speedup", run.speedup);
        diagnostic.emplace_back("shard/concurrent_speedup");
      }
      report.add_metrics("rmat", name, std::move(metrics));
      report.mark_diagnostic(std::move(diagnostic));
    }
    report.set_param("plan_cache_hits", static_cast<double>(plan.hits));
    report.set_param("plan_cache_misses", static_cast<double>(plan.misses));
    if (!report.write(json)) return 4;
  }
  return ok ? 0 : 1;
}
