// Sharded multi-device scaling experiment (src/shard): partition the
// level-0 graph into k shards with hub replication, run per-shard move
// phases with halo exchange, and track (a) solution quality against
// the sequential reference and (b) the modeled device-parallel
// critical path as k grows. On this substrate the shards execute
// sequentially on one warm software-SIMT device, so wall-clock does
// NOT shrink with k — the critical path (max per-shard phase time +
// exchange, per round) is what a k-GPU deployment would wait on (see
// DESIGN.md §14).
//
// Gates (exit 1 on failure; the CI shard-smoke job runs these):
//   * k = 1 is bitwise-identical to the core backend;
//   * quality stays >= 98% of sequential Louvain at every sharded k
//     for both block and hubrep partitioning;
//   * the critical path, in DETERMINISTIC work units
//     (Result::critical_work: sweeps x active arcs on the busiest
//     shard + marshal + exchange per round), decreases strictly
//     monotonically k = 1 -> 2 -> 4 for each strategy. The engine is
//     deterministic, so identical inputs gate identically on a given
//     lane substrate (Options::device = kAuto resolves to the AVX2
//     vector backend on every CI runner) — wall time
//     on this one-CPU simulator swings +-2x with machine load (and
//     folds in thread-pool launch overhead a real device pays in
//     microseconds, not the simulator's ~0.1s per round), so critical
//     SECONDS are reported as a diagnostic, not gated.
#include "bench_common.hpp"

#include <cstring>

#include "gen/rmat.hpp"
#include "shard/engine.hpp"

using namespace glouvain;

namespace {

struct ShardRun {
  unsigned k = 1;
  const char* partition = "-";
  shard::Result result;
  double seconds = 0;
};

const char* partition_label(detect::Partition p) {
  return detect::partition_name(p);
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const auto scale = static_cast<unsigned>(
      opt.get_int("scale", 19, "rmat scale (n = 2^scale)"));
  const double edge_factor =
      opt.get_double("edge-factor", 20.0, "rmat edges per vertex");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const bool full = opt.get_flag("full", "also run k = 8");
  const std::string json = opt.get_string("json", "", "bench JSON output file");
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("sharded multi-device scaling").c_str());
    return 0;
  }

  bench::banner("Sharded Louvain — hub-replicated partitioning + halo "
                "exchange",
                "conclusion/[4]: coarse-grained multi-GPU holds quality; "
                "hub replication (PowerGraph-style) bounds the ghost "
                "surface of scale-free cuts");

  const graph::Csr g =
      gen::rmat({.scale = scale, .edge_factor = edge_factor},
                static_cast<std::uint64_t>(seed));
  std::printf("rmat scale %u: %u vertices, %llu edges\n\n", scale,
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // Quality reference: sequential Blondel-style Louvain (the gate the
  // ISSUE pins), plus the core backend for the k = 1 bitwise check.
  const bench::AlgoRun seq = bench::run_seq(g, /*adaptive=*/true);
  std::printf("seq  reference: Q = %.5f (%.2fs)\n", seq.modularity,
              seq.seconds);
  core::Config core_cfg;
  core_cfg.thresholds = bench::paper_thresholds();
  const core::Result core_r = core::louvain(g, core_cfg);
  std::printf("core reference: Q = %.5f (%.2fs)\n\n", core_r.modularity,
              core_r.total_seconds);

  std::vector<unsigned> ks = {1, 2, 4};
  if (full) ks.push_back(8);
  const detect::Partition strategies[] = {detect::Partition::kBlock,
                                          detect::Partition::kHubRep};

  std::vector<ShardRun> runs;
  bool ok = true;

  // k = 1 first (partition-independent): must replicate core exactly.
  {
    shard::Config cfg;
    cfg.thresholds = bench::paper_thresholds();
    cfg.shards = 1;
    util::Timer t;
    ShardRun run{1, "-", shard::louvain(g, shard::to_config(cfg, cfg)), 0};
    run.seconds = t.seconds();
    const bool bitwise =
        run.result.community == core_r.community &&
        run.result.modularity == core_r.modularity;
    std::printf("k=1 bitwise vs core: %s\n\n", bitwise ? "identical" : "MISMATCH");
    if (!bitwise) ok = false;
    runs.push_back(std::move(run));
  }

  for (const auto strategy : strategies) {
    for (const unsigned k : ks) {
      if (k == 1) continue;
      shard::Config cfg;
      cfg.thresholds = bench::paper_thresholds();
      cfg.shards = k;
      cfg.partition = strategy;
      util::Timer t;
      ShardRun run{k, partition_label(strategy),
                   shard::louvain(g, shard::to_config(cfg, cfg)), 0};
      run.seconds = t.seconds();
      runs.push_back(std::move(run));
    }
  }

  util::Table table({"partition", "k", "Q", "vs seq", "work[Marc]",
                     "critical[s]", "wall[s]", "cut%", "ghost", "imbal",
                     "hubs"});
  for (const ShardRun& run : runs) {
    const auto& r = run.result;
    table.add_row(
        {run.partition, std::to_string(run.k),
         util::Table::fixed(r.modularity, 5),
         util::Table::percent(
             seq.modularity > 1e-9 ? r.modularity / seq.modularity : 1.0, 1),
         util::Table::fixed(r.critical_work * 1e-6, 1),
         util::Table::fixed(r.critical_seconds, 3),
         util::Table::fixed(run.seconds, 3),
         util::Table::percent(r.partition.cut_fraction, 1),
         util::Table::fixed(r.partition.ghost_ratio, 3),
         util::Table::fixed(r.partition.imbalance, 2),
         std::to_string(r.partition.replicated_hubs)});
  }
  table.print(std::cout);

  // ---- gates ----
  for (const ShardRun& run : runs) {
    if (run.k == 1) continue;
    const double ratio = run.result.modularity / seq.modularity;
    if (ratio < 0.98) {
      std::printf("GATE FAIL: %s k=%u quality %.1f%% of seq (< 98%%)\n",
                  run.partition, run.k, 100.0 * ratio);
      ok = false;
    }
  }
  const double work1 = runs[0].result.critical_work;
  for (const auto strategy : strategies) {
    const char* pname = partition_label(strategy);
    double prev = work1;
    unsigned prev_k = 1;
    for (const ShardRun& run : runs) {
      if (run.k == 1 || std::strcmp(run.partition, pname) != 0) continue;
      if (run.result.critical_work >= prev) {
        std::printf("GATE FAIL: %s critical work k=%u (%.1fM arcs) not "
                    "below k=%u (%.1fM arcs)\n",
                    pname, run.k, run.result.critical_work * 1e-6, prev_k,
                    prev * 1e-6);
        ok = false;
      }
      prev = run.result.critical_work;
      prev_k = run.k;
    }
  }
  std::printf("\ngates: %s\n", ok ? "PASS" : "FAIL");
  std::printf("note: shards are simulated sequentially on one device; "
              "work[Marc]/critical[s] model the per-round max-shard + "
              "exchange path a k-device deployment waits on. The work "
              "column is deterministic and gated; seconds are a "
              "diagnostic.\n");

  if (!json.empty()) {
    bench::JsonReport report("shard_scale");
    report.set_param("scale", static_cast<double>(scale));
    report.set_param("edge_factor", edge_factor);
    report.set_param("seed", static_cast<double>(seed));
    report.add_metrics("rmat", "seq",
                       {{"vertices", static_cast<double>(g.num_vertices())},
                        {"edges", static_cast<double>(g.num_edges())},
                        {"seconds", seq.seconds},
                        {"levels", static_cast<double>(seq.levels)},
                        {"modularity", seq.modularity}});
    report.add_metrics("rmat", "core",
                       {{"seconds", core_r.total_seconds},
                        {"levels", static_cast<double>(core_r.levels.size())},
                        {"modularity", core_r.modularity}});
    for (const ShardRun& run : runs) {
      const auto& r = run.result;
      report.add_metrics(
          "rmat",
          run.k == 1 ? std::string("shard-1")
                     : std::string("shard-") + run.partition + "-" +
                           std::to_string(run.k),
          {{"shards", static_cast<double>(run.k)},
           {"seconds", run.seconds},
           {"levels", static_cast<double>(r.levels.size())},
           {"modularity", r.modularity},
           {"quality_vs_seq", seq.modularity > 1e-9
                                  ? r.modularity / seq.modularity
                                  : 1.0},
           {"shard/critical_s", r.critical_seconds},
           {"shard/critical_work", r.critical_work},
           {"shard/cut_fraction", r.partition.cut_fraction},
           {"shard/ghost_ratio", r.partition.ghost_ratio},
           {"shard/imbalance", r.partition.imbalance},
           {"shard/replicated_hubs",
            static_cast<double>(r.partition.replicated_hubs)},
           {"shard/exchange_rounds",
            static_cast<double>(r.exchange_rounds)},
           {"gates_pass", ok ? 1.0 : 0.0}});
    }
    if (!report.write(json)) return 4;
  }
  return ok ? 0 : 1;
}
