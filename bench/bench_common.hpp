// Shared plumbing for the table/figure reproduction harnesses: suite
// iteration, algorithm invocation at the paper's parameter points, and
// uniform reporting (every bench prints a `paper:` line stating the
// published number/shape it reproduces, then its measured rows).
#pragma once

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#if __has_include(<sys/resource.h>)
#include <sys/resource.h>
#define GLOUVAIN_BENCH_HAS_RUSAGE 1
#endif

#include "core/louvain.hpp"
#include "gen/suite.hpp"
#include "graph/csr.hpp"
#include "obs/recorder.hpp"
#include "plm/plm.hpp"
#include "seq/louvain.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace glouvain::bench {

/// The paper's chosen operating point (§5): t_bin = 1e-2, t_final =
/// 1e-6, switch at 100k vertices.
inline ThresholdSchedule paper_thresholds() {
  return {.t_bin = 1e-2, .t_final = 1e-6, .adaptive_limit = 100'000,
          .adaptive = true};
}

/// Print the provenance banner common to all harnesses.
inline void banner(const char* experiment, const char* paper_claim) {
  std::printf("== %s ==\n", experiment);
  std::printf("reproduces: Naim, Manne, Halappanavar, Tumeo. \"Community "
              "Detection on the GPU\", IPDPS 2017\n");
  std::printf("paper:      %s\n", paper_claim);
  std::printf("substrate:  software-SIMT device (no GPU in this environment; "
              "see DESIGN.md)\n\n");
}

/// Resolve --graph (name | "all") against the suite.
inline std::vector<std::string> graphs_from_options(util::Options& opt,
                                                    const char* def = "all") {
  const std::string which = opt.get_string(
      "graph", def, "suite graph name or 'all' (see gen/suite.hpp)");
  if (which == "all") return gen::suite_names();
  return {which};
}

/// Per-level phase breakdown preserved for machine-readable output.
struct PhaseLevel {
  std::size_t vertices = 0;
  int sweeps = 0;
  double optimize_ms = 0;
  double aggregate_ms = 0;
  double modularity_after = 0;
};

struct AlgoRun {
  double seconds = 0;
  double modularity = 0;
  int levels = 0;
  double teps = 0;
  std::vector<PhaseLevel> phase_levels;
};

inline AlgoRun make_algo_run(const LouvainResult& r) {
  AlgoRun run{r.total_seconds, r.modularity, static_cast<int>(r.levels.size()),
              r.first_phase_teps, {}};
  run.phase_levels.reserve(r.levels.size());
  for (const auto& level : r.levels) {
    run.phase_levels.push_back({level.vertices, level.iterations,
                                level.optimize_seconds * 1e3,
                                level.aggregate_seconds * 1e3,
                                level.modularity_after});
  }
  return run;
}

inline AlgoRun run_seq(const graph::Csr& g, bool adaptive,
                       obs::Recorder* rec = nullptr) {
  seq::Config cfg;
  cfg.thresholds = paper_thresholds();
  cfg.thresholds.adaptive = adaptive;
  return make_algo_run(seq::louvain(g, cfg, rec));
}

inline AlgoRun run_plm(const graph::Csr& g, obs::Recorder* rec = nullptr) {
  plm::Config cfg;
  cfg.thresholds = paper_thresholds();
  return make_algo_run(plm::louvain(g, cfg, rec));
}

inline AlgoRun run_core(const graph::Csr& g, core::Config cfg = core::Config{},
                        obs::Recorder* rec = nullptr) {
  cfg.thresholds = paper_thresholds();
  return make_algo_run(core::louvain(g, cfg, rec));
}

/// Peak resident set of this process in bytes (0 where unsupported).
inline std::uint64_t peak_rss_bytes() {
#ifdef GLOUVAIN_BENCH_HAS_RUSAGE
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
  }
#endif
  return 0;
}

/// Machine-readable benchmark output (schemas/bench.schema.json):
/// one JSON document per harness invocation, one entry per (graph,
/// backend) run, with the per-level phase breakdown attached. The CI
/// bench-smoke job diffs these against bench/baselines/.
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  void set_param(const std::string& key, double value) {
    params_.emplace_back(key, value);
  }

  void add_run(const std::string& graph, const std::string& backend,
               std::size_t vertices, std::size_t edges, const AlgoRun& run) {
    Row row;
    row.graph = graph;
    row.backend = backend;
    row.metrics = {{"vertices", static_cast<double>(vertices)},
                   {"edges", static_cast<double>(edges)},
                   {"seconds", run.seconds},
                   {"modularity", run.modularity},
                   {"levels", static_cast<double>(run.levels)},
                   {"teps", run.teps}};
    row.levels = run.phase_levels;
    rows_.push_back(std::move(row));
  }

  /// Free-form entry (streaming bench epochs and other non-AlgoRun
  /// shapes): any set of numeric metrics under a graph/backend pair.
  void add_metrics(const std::string& graph, const std::string& backend,
                   std::vector<std::pair<std::string, double>> metrics) {
    rows_.push_back({graph, backend, std::move(metrics), {}, {}});
  }

  /// Flag metric names of the LAST added run as diagnostic: recorded
  /// for humans, never gated (tools/bench_check.py skips them). Use
  /// for wall-clock figures that swing with machine load — e.g. the
  /// shard critical-path seconds next to the deterministic work units.
  void mark_diagnostic(std::vector<std::string> names) {
    if (!rows_.empty()) rows_.back().diagnostic = std::move(names);
  }

  /// Write the document; returns false (with a note on stderr) if the
  /// path cannot be opened. Peak RSS is sampled here, after the runs.
  bool write(const std::string& path) const {
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "cannot write bench json %s\n", path.c_str());
      return false;
    }
    os << "{\n  \"schema\": \"glouvain-bench-1\",\n";
    os << "  \"bench\": \"" << bench_ << "\",\n";
    os << "  \"params\": {";
    for (std::size_t i = 0; i < params_.size(); ++i) {
      os << (i ? ", " : "") << '"' << params_[i].first
         << "\": " << number(params_[i].second);
    }
    os << "},\n";
    os << "  \"peak_rss_bytes\": " << peak_rss_bytes() << ",\n";
    os << "  \"runs\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      os << "    {\"graph\": \"" << row.graph << "\", \"backend\": \""
         << row.backend << "\", \"metrics\": {";
      for (std::size_t k = 0; k < row.metrics.size(); ++k) {
        os << (k ? ", " : "") << '"' << row.metrics[k].first
           << "\": " << number(row.metrics[k].second);
      }
      os << "}";
      if (!row.diagnostic.empty()) {
        os << ", \"diagnostic\": [";
        for (std::size_t d = 0; d < row.diagnostic.size(); ++d) {
          os << (d ? ", " : "") << '"' << row.diagnostic[d] << '"';
        }
        os << "]";
      }
      if (!row.levels.empty()) {
        os << ", \"levels\": [";
        for (std::size_t l = 0; l < row.levels.size(); ++l) {
          const PhaseLevel& level = row.levels[l];
          os << (l ? ", " : "") << "{\"vertices\": " << level.vertices
             << ", \"sweeps\": " << level.sweeps
             << ", \"optimize_ms\": " << number(level.optimize_ms)
             << ", \"aggregate_ms\": " << number(level.aggregate_ms)
             << ", \"modularity_after\": " << number(level.modularity_after)
             << "}";
        }
        os << "]";
      }
      os << "}" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::printf("bench json written to %s\n", path.c_str());
    return true;
  }

 private:
  struct Row {
    std::string graph;
    std::string backend;
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<PhaseLevel> levels;
    std::vector<std::string> diagnostic;  ///< metric names never gated
  };

  /// JSON has no NaN/Inf literals; clamp them to null-safe 0.
  static std::string number(double v) {
    if (!std::isfinite(v)) return "0";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
  }

  std::string bench_;
  std::vector<std::pair<std::string, double>> params_;
  std::vector<Row> rows_;
};

/// `--trace PREFIX` support: when the flag is set, returns a live
/// Recorder for each named run and writes PREFIX-<tag>.json after it.
inline void write_trace(const obs::Recorder& rec, const std::string& prefix,
                        const std::string& tag) {
  const std::string path = prefix + "-" + tag + ".json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write trace %s\n", path.c_str());
    return;
  }
  rec.write_chrome_trace(os);
  std::printf("trace written to %s\n", path.c_str());
}

}  // namespace glouvain::bench
