// Shared plumbing for the table/figure reproduction harnesses: suite
// iteration, algorithm invocation at the paper's parameter points, and
// uniform reporting (every bench prints a `paper:` line stating the
// published number/shape it reproduces, then its measured rows).
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/louvain.hpp"
#include "gen/suite.hpp"
#include "graph/csr.hpp"
#include "obs/recorder.hpp"
#include "plm/plm.hpp"
#include "seq/louvain.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace glouvain::bench {

/// The paper's chosen operating point (§5): t_bin = 1e-2, t_final =
/// 1e-6, switch at 100k vertices.
inline ThresholdSchedule paper_thresholds() {
  return {.t_bin = 1e-2, .t_final = 1e-6, .adaptive_limit = 100'000,
          .adaptive = true};
}

/// Print the provenance banner common to all harnesses.
inline void banner(const char* experiment, const char* paper_claim) {
  std::printf("== %s ==\n", experiment);
  std::printf("reproduces: Naim, Manne, Halappanavar, Tumeo. \"Community "
              "Detection on the GPU\", IPDPS 2017\n");
  std::printf("paper:      %s\n", paper_claim);
  std::printf("substrate:  software-SIMT device (no GPU in this environment; "
              "see DESIGN.md)\n\n");
}

/// Resolve --graph (name | "all") against the suite.
inline std::vector<std::string> graphs_from_options(util::Options& opt,
                                                    const char* def = "all") {
  const std::string which = opt.get_string(
      "graph", def, "suite graph name or 'all' (see gen/suite.hpp)");
  if (which == "all") return gen::suite_names();
  return {which};
}

struct AlgoRun {
  double seconds = 0;
  double modularity = 0;
  int levels = 0;
  double teps = 0;
};

inline AlgoRun run_seq(const graph::Csr& g, bool adaptive,
                       obs::Recorder* rec = nullptr) {
  seq::Config cfg;
  cfg.thresholds = paper_thresholds();
  cfg.thresholds.adaptive = adaptive;
  const auto r = seq::louvain(g, cfg, rec);
  return {r.total_seconds, r.modularity, static_cast<int>(r.levels.size()),
          r.first_phase_teps};
}

inline AlgoRun run_plm(const graph::Csr& g, obs::Recorder* rec = nullptr) {
  plm::Config cfg;
  cfg.thresholds = paper_thresholds();
  const auto r = plm::louvain(g, cfg, rec);
  return {r.total_seconds, r.modularity, static_cast<int>(r.levels.size()),
          r.first_phase_teps};
}

inline AlgoRun run_core(const graph::Csr& g, core::Config cfg = core::Config{},
                        obs::Recorder* rec = nullptr) {
  cfg.thresholds = paper_thresholds();
  const auto r = core::louvain(g, cfg, rec);
  return {r.total_seconds, r.modularity, static_cast<int>(r.levels.size()),
          r.first_phase_teps};
}

/// `--trace PREFIX` support: when the flag is set, returns a live
/// Recorder for each named run and writes PREFIX-<tag>.json after it.
inline void write_trace(const obs::Recorder& rec, const std::string& prefix,
                        const std::string& tag) {
  const std::string path = prefix + "-" + tag + ".json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write trace %s\n", path.c_str());
    return;
  }
  rec.write_chrome_trace(os);
  std::printf("trace written to %s\n", path.c_str());
}

}  // namespace glouvain::bench
