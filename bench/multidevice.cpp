// §6 (conclusion) extension experiment: the GPU-style algorithm as the
// building block of a coarse-grained multi-device Louvain, following
// Cheong et al. [4]. Reproduced observations:
//   * Cheong et al. report up to 9% modularity loss for the multi-GPU
//     coarse-grained scheme;
//   * the paper's conclusion notes that "coarse grained approaches seem
//     to consistently produce solutions of high modularity even when
//     using an initial random vertex partitioning".
// This harness sweeps device count x partition strategy and prints the
// coarse-phase and final modularity against single-device quality.
// (The multi backend is deprecated in favour of the sharded engine —
// bench/shard_scale.cpp — but this harness remains the reproduction of
// the coarse-grained [4] scheme the paper's conclusion discusses.)
#include "bench_common.hpp"

#include "multi/multi.hpp"

using namespace glouvain;

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const double scale = opt.get_double("scale", 0.1, "suite size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  const std::string device_arg = opt.get_string(
      "device", "auto", "lane substrate: scalar | vector | auto");
  const std::string json = opt.get_string("json", "", "bench JSON output file");
  const auto graphs = bench::graphs_from_options(opt, "community");
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("multi-device coarse-grained Louvain").c_str());
    return 0;
  }

  simt::Backend device = simt::Backend::kAuto;
  if (!simt::parse_backend(device_arg, device)) {
    std::fprintf(stderr, "unknown --device: %s\n", device_arg.c_str());
    return 2;
  }

  bench::banner("Multi-device — coarse-grained partitioned Louvain (§6)",
                "Cheong et al. [4]: up to 9% modularity loss multi-GPU; paper "
                "conclusion: coarse-grained holds up even under random "
                "vertex partitioning");

  bench::JsonReport report("multidevice");
  report.set_param("scale", scale);
  report.set_param("seed", static_cast<double>(seed));
  report.set_param("device",
                   static_cast<double>(simt::resolve_backend(device)));

  util::Table table({"graph", "partition", "D", "Q(coarse)", "Q(final)",
                     "vs single", "time[s]"});
  for (const auto& name : graphs) {
    const auto g =
        gen::suite_entry(name).build(scale, static_cast<std::uint64_t>(seed));
    core::Config single;
    single.device.backend = device;
    const bench::AlgoRun base = bench::run_core(g, single);
    const double q_single = base.modularity;
    table.add_row({name, "-", "1", "-", util::Table::fixed(q_single, 4),
                   "100.0%", "-"});
    report.add_run(name, "core", g.num_vertices(), g.num_edges(), base);
    for (auto strategy : {multi::PartitionStrategy::Block,
                          multi::PartitionStrategy::Random}) {
      const char* pname =
          strategy == multi::PartitionStrategy::Block ? "block" : "random";
      for (unsigned d : {2u, 4u, 8u}) {
        multi::Config cfg;
        cfg.num_devices = d;
        cfg.partition = strategy;
        cfg.thresholds = bench::paper_thresholds();
        cfg.device = device;  // lowered into every per-device core run
        const multi::Result r = multi::louvain(g, cfg);
        table.add_row(
            {name, pname, std::to_string(d),
             util::Table::fixed(r.local_modularity, 4),
             util::Table::fixed(r.modularity, 4),
             util::Table::percent(
                 q_single > 1e-9 ? r.modularity / q_single : 1.0, 1),
             util::Table::fixed(r.total_seconds, 3)});
        report.add_metrics(
            name, std::string("multi-") + pname,
            {{"vertices", static_cast<double>(g.num_vertices())},
             {"edges", static_cast<double>(g.num_edges())},
             {"devices", static_cast<double>(d)},
             {"seconds", r.total_seconds},
             {"modularity", r.modularity},
             {"local_modularity", r.local_modularity},
             {"vs_single", q_single > 1e-9 ? r.modularity / q_single : 1.0}});
      }
    }
  }
  table.print(std::cout);
  std::printf("\nexpected shape: block partitioning tracks single-device; "
              "random costs up to ~10-20%% before the finishing pass "
              "recovers most of it.\n");
  if (!json.empty() && !report.write(json)) return 4;
  return 0;
}
