# Empty dependencies file for core_modopt_test.
# This may be replaced when dependencies are built.
