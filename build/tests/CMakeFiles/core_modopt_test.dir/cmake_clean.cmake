file(REMOVE_RECURSE
  "CMakeFiles/core_modopt_test.dir/core_modopt_test.cpp.o"
  "CMakeFiles/core_modopt_test.dir/core_modopt_test.cpp.o.d"
  "core_modopt_test"
  "core_modopt_test.pdb"
  "core_modopt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_modopt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
