# Empty dependencies file for core_louvain_test.
# This may be replaced when dependencies are built.
