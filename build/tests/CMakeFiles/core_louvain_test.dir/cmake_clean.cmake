file(REMOVE_RECURSE
  "CMakeFiles/core_louvain_test.dir/core_louvain_test.cpp.o"
  "CMakeFiles/core_louvain_test.dir/core_louvain_test.cpp.o.d"
  "core_louvain_test"
  "core_louvain_test.pdb"
  "core_louvain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_louvain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
