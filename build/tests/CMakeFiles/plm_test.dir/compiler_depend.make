# Empty compiler generated dependencies file for plm_test.
# This may be replaced when dependencies are built.
