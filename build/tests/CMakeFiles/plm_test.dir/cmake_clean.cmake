file(REMOVE_RECURSE
  "CMakeFiles/plm_test.dir/plm_test.cpp.o"
  "CMakeFiles/plm_test.dir/plm_test.cpp.o.d"
  "plm_test"
  "plm_test.pdb"
  "plm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
