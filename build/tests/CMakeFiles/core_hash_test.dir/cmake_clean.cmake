file(REMOVE_RECURSE
  "CMakeFiles/core_hash_test.dir/core_hash_test.cpp.o"
  "CMakeFiles/core_hash_test.dir/core_hash_test.cpp.o.d"
  "core_hash_test"
  "core_hash_test.pdb"
  "core_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
