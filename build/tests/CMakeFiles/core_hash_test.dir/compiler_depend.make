# Empty compiler generated dependencies file for core_hash_test.
# This may be replaced when dependencies are built.
