file(REMOVE_RECURSE
  "CMakeFiles/core_buckets_test.dir/core_buckets_test.cpp.o"
  "CMakeFiles/core_buckets_test.dir/core_buckets_test.cpp.o.d"
  "core_buckets_test"
  "core_buckets_test.pdb"
  "core_buckets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_buckets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
