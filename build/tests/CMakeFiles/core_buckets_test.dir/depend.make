# Empty dependencies file for core_buckets_test.
# This may be replaced when dependencies are built.
