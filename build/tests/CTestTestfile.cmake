# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/simt_test[1]_include.cmake")
include("/root/repo/build/tests/prim_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/seq_test[1]_include.cmake")
include("/root/repo/build/tests/plm_test[1]_include.cmake")
include("/root/repo/build/tests/core_hash_test[1]_include.cmake")
include("/root/repo/build/tests/core_buckets_test[1]_include.cmake")
include("/root/repo/build/tests/core_modopt_test[1]_include.cmake")
include("/root/repo/build/tests/core_aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/core_louvain_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/coloring_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/quality_test[1]_include.cmake")
include("/root/repo/build/tests/multi_test[1]_include.cmake")
