file(REMOVE_RECURSE
  "CMakeFiles/teps.dir/teps.cpp.o"
  "CMakeFiles/teps.dir/teps.cpp.o.d"
  "teps"
  "teps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
