# Empty dependencies file for teps.
# This may be replaced when dependencies are built.
