# Empty dependencies file for fig1_2_thresholds.
# This may be replaced when dependencies are built.
