file(REMOVE_RECURSE
  "CMakeFiles/fig1_2_thresholds.dir/fig1_2_thresholds.cpp.o"
  "CMakeFiles/fig1_2_thresholds.dir/fig1_2_thresholds.cpp.o.d"
  "fig1_2_thresholds"
  "fig1_2_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_2_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
