# Empty compiler generated dependencies file for occupancy.
# This may be replaced when dependencies are built.
