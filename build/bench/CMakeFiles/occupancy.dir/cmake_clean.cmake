file(REMOVE_RECURSE
  "CMakeFiles/occupancy.dir/occupancy.cpp.o"
  "CMakeFiles/occupancy.dir/occupancy.cpp.o.d"
  "occupancy"
  "occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
