file(REMOVE_RECURSE
  "CMakeFiles/multidevice.dir/multidevice.cpp.o"
  "CMakeFiles/multidevice.dir/multidevice.cpp.o.d"
  "multidevice"
  "multidevice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidevice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
