# Empty compiler generated dependencies file for multidevice.
# This may be replaced when dependencies are built.
