file(REMOVE_RECURSE
  "CMakeFiles/micro_prim.dir/micro_prim.cpp.o"
  "CMakeFiles/micro_prim.dir/micro_prim.cpp.o.d"
  "micro_prim"
  "micro_prim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_prim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
