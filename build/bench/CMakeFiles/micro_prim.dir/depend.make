# Empty dependencies file for micro_prim.
# This may be replaced when dependencies are built.
