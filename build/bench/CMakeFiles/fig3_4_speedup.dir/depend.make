# Empty dependencies file for fig3_4_speedup.
# This may be replaced when dependencies are built.
