file(REMOVE_RECURSE
  "CMakeFiles/fig5_6_stages.dir/fig5_6_stages.cpp.o"
  "CMakeFiles/fig5_6_stages.dir/fig5_6_stages.cpp.o.d"
  "fig5_6_stages"
  "fig5_6_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_6_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
