# Empty dependencies file for fig5_6_stages.
# This may be replaced when dependencies are built.
