file(REMOVE_RECURSE
  "CMakeFiles/fig7_vs_plm.dir/fig7_vs_plm.cpp.o"
  "CMakeFiles/fig7_vs_plm.dir/fig7_vs_plm.cpp.o.d"
  "fig7_vs_plm"
  "fig7_vs_plm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_vs_plm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
