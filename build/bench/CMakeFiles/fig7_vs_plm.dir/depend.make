# Empty dependencies file for fig7_vs_plm.
# This may be replaced when dependencies are built.
