file(REMOVE_RECURSE
  "CMakeFiles/ablation_subrounds.dir/ablation_subrounds.cpp.o"
  "CMakeFiles/ablation_subrounds.dir/ablation_subrounds.cpp.o.d"
  "ablation_subrounds"
  "ablation_subrounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subrounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
