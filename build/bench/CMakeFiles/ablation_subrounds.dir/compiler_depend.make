# Empty compiler generated dependencies file for ablation_subrounds.
# This may be replaced when dependencies are built.
