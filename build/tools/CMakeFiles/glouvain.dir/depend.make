# Empty dependencies file for glouvain.
# This may be replaced when dependencies are built.
