file(REMOVE_RECURSE
  "CMakeFiles/glouvain.dir/glouvain_cli.cpp.o"
  "CMakeFiles/glouvain.dir/glouvain_cli.cpp.o.d"
  "glouvain"
  "glouvain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glouvain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
