file(REMOVE_RECURSE
  "CMakeFiles/glouvain_plm.dir/plm.cpp.o"
  "CMakeFiles/glouvain_plm.dir/plm.cpp.o.d"
  "libglouvain_plm.a"
  "libglouvain_plm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glouvain_plm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
