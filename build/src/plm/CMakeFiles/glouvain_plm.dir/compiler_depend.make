# Empty compiler generated dependencies file for glouvain_plm.
# This may be replaced when dependencies are built.
