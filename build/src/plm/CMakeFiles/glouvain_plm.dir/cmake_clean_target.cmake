file(REMOVE_RECURSE
  "libglouvain_plm.a"
)
