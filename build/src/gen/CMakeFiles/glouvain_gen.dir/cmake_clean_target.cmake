file(REMOVE_RECURSE
  "libglouvain_gen.a"
)
