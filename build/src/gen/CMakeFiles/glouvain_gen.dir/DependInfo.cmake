
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/ba.cpp" "src/gen/CMakeFiles/glouvain_gen.dir/ba.cpp.o" "gcc" "src/gen/CMakeFiles/glouvain_gen.dir/ba.cpp.o.d"
  "/root/repo/src/gen/cliques.cpp" "src/gen/CMakeFiles/glouvain_gen.dir/cliques.cpp.o" "gcc" "src/gen/CMakeFiles/glouvain_gen.dir/cliques.cpp.o.d"
  "/root/repo/src/gen/er.cpp" "src/gen/CMakeFiles/glouvain_gen.dir/er.cpp.o" "gcc" "src/gen/CMakeFiles/glouvain_gen.dir/er.cpp.o.d"
  "/root/repo/src/gen/lfr.cpp" "src/gen/CMakeFiles/glouvain_gen.dir/lfr.cpp.o" "gcc" "src/gen/CMakeFiles/glouvain_gen.dir/lfr.cpp.o.d"
  "/root/repo/src/gen/mesh.cpp" "src/gen/CMakeFiles/glouvain_gen.dir/mesh.cpp.o" "gcc" "src/gen/CMakeFiles/glouvain_gen.dir/mesh.cpp.o.d"
  "/root/repo/src/gen/rgg.cpp" "src/gen/CMakeFiles/glouvain_gen.dir/rgg.cpp.o" "gcc" "src/gen/CMakeFiles/glouvain_gen.dir/rgg.cpp.o.d"
  "/root/repo/src/gen/rmat.cpp" "src/gen/CMakeFiles/glouvain_gen.dir/rmat.cpp.o" "gcc" "src/gen/CMakeFiles/glouvain_gen.dir/rmat.cpp.o.d"
  "/root/repo/src/gen/road.cpp" "src/gen/CMakeFiles/glouvain_gen.dir/road.cpp.o" "gcc" "src/gen/CMakeFiles/glouvain_gen.dir/road.cpp.o.d"
  "/root/repo/src/gen/sbm.cpp" "src/gen/CMakeFiles/glouvain_gen.dir/sbm.cpp.o" "gcc" "src/gen/CMakeFiles/glouvain_gen.dir/sbm.cpp.o.d"
  "/root/repo/src/gen/suite.cpp" "src/gen/CMakeFiles/glouvain_gen.dir/suite.cpp.o" "gcc" "src/gen/CMakeFiles/glouvain_gen.dir/suite.cpp.o.d"
  "/root/repo/src/gen/ws.cpp" "src/gen/CMakeFiles/glouvain_gen.dir/ws.cpp.o" "gcc" "src/gen/CMakeFiles/glouvain_gen.dir/ws.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/glouvain_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/glouvain_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/glouvain_simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
