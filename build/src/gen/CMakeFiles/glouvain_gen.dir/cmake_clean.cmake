file(REMOVE_RECURSE
  "CMakeFiles/glouvain_gen.dir/ba.cpp.o"
  "CMakeFiles/glouvain_gen.dir/ba.cpp.o.d"
  "CMakeFiles/glouvain_gen.dir/cliques.cpp.o"
  "CMakeFiles/glouvain_gen.dir/cliques.cpp.o.d"
  "CMakeFiles/glouvain_gen.dir/er.cpp.o"
  "CMakeFiles/glouvain_gen.dir/er.cpp.o.d"
  "CMakeFiles/glouvain_gen.dir/lfr.cpp.o"
  "CMakeFiles/glouvain_gen.dir/lfr.cpp.o.d"
  "CMakeFiles/glouvain_gen.dir/mesh.cpp.o"
  "CMakeFiles/glouvain_gen.dir/mesh.cpp.o.d"
  "CMakeFiles/glouvain_gen.dir/rgg.cpp.o"
  "CMakeFiles/glouvain_gen.dir/rgg.cpp.o.d"
  "CMakeFiles/glouvain_gen.dir/rmat.cpp.o"
  "CMakeFiles/glouvain_gen.dir/rmat.cpp.o.d"
  "CMakeFiles/glouvain_gen.dir/road.cpp.o"
  "CMakeFiles/glouvain_gen.dir/road.cpp.o.d"
  "CMakeFiles/glouvain_gen.dir/sbm.cpp.o"
  "CMakeFiles/glouvain_gen.dir/sbm.cpp.o.d"
  "CMakeFiles/glouvain_gen.dir/suite.cpp.o"
  "CMakeFiles/glouvain_gen.dir/suite.cpp.o.d"
  "CMakeFiles/glouvain_gen.dir/ws.cpp.o"
  "CMakeFiles/glouvain_gen.dir/ws.cpp.o.d"
  "libglouvain_gen.a"
  "libglouvain_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glouvain_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
