# Empty compiler generated dependencies file for glouvain_gen.
# This may be replaced when dependencies are built.
