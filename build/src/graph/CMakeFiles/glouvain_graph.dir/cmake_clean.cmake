file(REMOVE_RECURSE
  "CMakeFiles/glouvain_graph.dir/builder.cpp.o"
  "CMakeFiles/glouvain_graph.dir/builder.cpp.o.d"
  "CMakeFiles/glouvain_graph.dir/coloring.cpp.o"
  "CMakeFiles/glouvain_graph.dir/coloring.cpp.o.d"
  "CMakeFiles/glouvain_graph.dir/csr.cpp.o"
  "CMakeFiles/glouvain_graph.dir/csr.cpp.o.d"
  "CMakeFiles/glouvain_graph.dir/io.cpp.o"
  "CMakeFiles/glouvain_graph.dir/io.cpp.o.d"
  "CMakeFiles/glouvain_graph.dir/ops.cpp.o"
  "CMakeFiles/glouvain_graph.dir/ops.cpp.o.d"
  "libglouvain_graph.a"
  "libglouvain_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glouvain_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
