# Empty dependencies file for glouvain_graph.
# This may be replaced when dependencies are built.
