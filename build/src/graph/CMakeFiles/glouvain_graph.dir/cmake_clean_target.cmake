file(REMOVE_RECURSE
  "libglouvain_graph.a"
)
