file(REMOVE_RECURSE
  "CMakeFiles/glouvain_simt.dir/thread_pool.cpp.o"
  "CMakeFiles/glouvain_simt.dir/thread_pool.cpp.o.d"
  "libglouvain_simt.a"
  "libglouvain_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glouvain_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
