file(REMOVE_RECURSE
  "libglouvain_simt.a"
)
