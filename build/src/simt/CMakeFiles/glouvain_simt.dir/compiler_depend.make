# Empty compiler generated dependencies file for glouvain_simt.
# This may be replaced when dependencies are built.
