file(REMOVE_RECURSE
  "CMakeFiles/glouvain_metrics.dir/compare.cpp.o"
  "CMakeFiles/glouvain_metrics.dir/compare.cpp.o.d"
  "CMakeFiles/glouvain_metrics.dir/dendrogram.cpp.o"
  "CMakeFiles/glouvain_metrics.dir/dendrogram.cpp.o.d"
  "CMakeFiles/glouvain_metrics.dir/modularity.cpp.o"
  "CMakeFiles/glouvain_metrics.dir/modularity.cpp.o.d"
  "CMakeFiles/glouvain_metrics.dir/partition.cpp.o"
  "CMakeFiles/glouvain_metrics.dir/partition.cpp.o.d"
  "CMakeFiles/glouvain_metrics.dir/partition_io.cpp.o"
  "CMakeFiles/glouvain_metrics.dir/partition_io.cpp.o.d"
  "CMakeFiles/glouvain_metrics.dir/quality.cpp.o"
  "CMakeFiles/glouvain_metrics.dir/quality.cpp.o.d"
  "libglouvain_metrics.a"
  "libglouvain_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glouvain_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
