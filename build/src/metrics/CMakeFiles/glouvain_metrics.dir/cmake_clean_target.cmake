file(REMOVE_RECURSE
  "libglouvain_metrics.a"
)
