# Empty compiler generated dependencies file for glouvain_metrics.
# This may be replaced when dependencies are built.
