
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/compare.cpp" "src/metrics/CMakeFiles/glouvain_metrics.dir/compare.cpp.o" "gcc" "src/metrics/CMakeFiles/glouvain_metrics.dir/compare.cpp.o.d"
  "/root/repo/src/metrics/dendrogram.cpp" "src/metrics/CMakeFiles/glouvain_metrics.dir/dendrogram.cpp.o" "gcc" "src/metrics/CMakeFiles/glouvain_metrics.dir/dendrogram.cpp.o.d"
  "/root/repo/src/metrics/modularity.cpp" "src/metrics/CMakeFiles/glouvain_metrics.dir/modularity.cpp.o" "gcc" "src/metrics/CMakeFiles/glouvain_metrics.dir/modularity.cpp.o.d"
  "/root/repo/src/metrics/partition.cpp" "src/metrics/CMakeFiles/glouvain_metrics.dir/partition.cpp.o" "gcc" "src/metrics/CMakeFiles/glouvain_metrics.dir/partition.cpp.o.d"
  "/root/repo/src/metrics/partition_io.cpp" "src/metrics/CMakeFiles/glouvain_metrics.dir/partition_io.cpp.o" "gcc" "src/metrics/CMakeFiles/glouvain_metrics.dir/partition_io.cpp.o.d"
  "/root/repo/src/metrics/quality.cpp" "src/metrics/CMakeFiles/glouvain_metrics.dir/quality.cpp.o" "gcc" "src/metrics/CMakeFiles/glouvain_metrics.dir/quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/glouvain_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/glouvain_simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
