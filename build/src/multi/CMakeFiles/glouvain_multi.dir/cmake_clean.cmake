file(REMOVE_RECURSE
  "CMakeFiles/glouvain_multi.dir/multi.cpp.o"
  "CMakeFiles/glouvain_multi.dir/multi.cpp.o.d"
  "libglouvain_multi.a"
  "libglouvain_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glouvain_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
