# Empty dependencies file for glouvain_multi.
# This may be replaced when dependencies are built.
