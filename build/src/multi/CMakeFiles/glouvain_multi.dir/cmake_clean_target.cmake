file(REMOVE_RECURSE
  "libglouvain_multi.a"
)
