file(REMOVE_RECURSE
  "libglouvain_seq.a"
)
