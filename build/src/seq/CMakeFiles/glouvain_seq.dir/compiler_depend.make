# Empty compiler generated dependencies file for glouvain_seq.
# This may be replaced when dependencies are built.
