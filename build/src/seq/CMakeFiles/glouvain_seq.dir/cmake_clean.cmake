file(REMOVE_RECURSE
  "CMakeFiles/glouvain_seq.dir/louvain.cpp.o"
  "CMakeFiles/glouvain_seq.dir/louvain.cpp.o.d"
  "libglouvain_seq.a"
  "libglouvain_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glouvain_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
