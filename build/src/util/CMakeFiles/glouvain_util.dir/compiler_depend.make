# Empty compiler generated dependencies file for glouvain_util.
# This may be replaced when dependencies are built.
