file(REMOVE_RECURSE
  "CMakeFiles/glouvain_util.dir/log.cpp.o"
  "CMakeFiles/glouvain_util.dir/log.cpp.o.d"
  "CMakeFiles/glouvain_util.dir/options.cpp.o"
  "CMakeFiles/glouvain_util.dir/options.cpp.o.d"
  "CMakeFiles/glouvain_util.dir/primes.cpp.o"
  "CMakeFiles/glouvain_util.dir/primes.cpp.o.d"
  "CMakeFiles/glouvain_util.dir/table.cpp.o"
  "CMakeFiles/glouvain_util.dir/table.cpp.o.d"
  "libglouvain_util.a"
  "libglouvain_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glouvain_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
