file(REMOVE_RECURSE
  "libglouvain_util.a"
)
