file(REMOVE_RECURSE
  "libglouvain_core.a"
)
