file(REMOVE_RECURSE
  "CMakeFiles/glouvain_core.dir/aggregate.cpp.o"
  "CMakeFiles/glouvain_core.dir/aggregate.cpp.o.d"
  "CMakeFiles/glouvain_core.dir/louvain.cpp.o"
  "CMakeFiles/glouvain_core.dir/louvain.cpp.o.d"
  "CMakeFiles/glouvain_core.dir/modopt.cpp.o"
  "CMakeFiles/glouvain_core.dir/modopt.cpp.o.d"
  "CMakeFiles/glouvain_core.dir/occupancy.cpp.o"
  "CMakeFiles/glouvain_core.dir/occupancy.cpp.o.d"
  "libglouvain_core.a"
  "libglouvain_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glouvain_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
