# Empty dependencies file for glouvain_core.
# This may be replaced when dependencies are built.
