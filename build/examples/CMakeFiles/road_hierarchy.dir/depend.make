# Empty dependencies file for road_hierarchy.
# This may be replaced when dependencies are built.
