file(REMOVE_RECURSE
  "CMakeFiles/road_hierarchy.dir/road_hierarchy.cpp.o"
  "CMakeFiles/road_hierarchy.dir/road_hierarchy.cpp.o.d"
  "road_hierarchy"
  "road_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
