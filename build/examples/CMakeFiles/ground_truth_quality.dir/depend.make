# Empty dependencies file for ground_truth_quality.
# This may be replaced when dependencies are built.
