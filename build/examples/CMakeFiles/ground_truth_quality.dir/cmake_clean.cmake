file(REMOVE_RECURSE
  "CMakeFiles/ground_truth_quality.dir/ground_truth_quality.cpp.o"
  "CMakeFiles/ground_truth_quality.dir/ground_truth_quality.cpp.o.d"
  "ground_truth_quality"
  "ground_truth_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ground_truth_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
