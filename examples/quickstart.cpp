// Quickstart: build a graph, run the GPU-style Louvain method, inspect
// the result. This is the 60-second tour of the public API.
//
//   ./quickstart                  # demo graph (ring of cliques)
//   ./quickstart --file my.txt    # your own edge list / .mtx / .bin
#include <cstdio>

#include "core/louvain.hpp"
#include "gen/cliques.hpp"
#include "graph/io.hpp"
#include "metrics/partition.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace glouvain;

  util::Options opt(argc, argv);
  const std::string file =
      opt.get_string("file", "", "graph file (edge list, .mtx, .graph, .bin)");
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("Louvain community detection quickstart").c_str());
    return 0;
  }

  // 1. Get a graph: from a file, or a demo graph with obvious structure.
  graph::Csr g = file.empty() ? gen::ring_of_cliques(32, 12)
                              : graph::load_auto(file);
  std::printf("graph: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // 2. Run the detector. Config{} gives the paper's defaults: degree
  //    buckets, (1e-2, 1e-6) thresholds, bucketed updates.
  core::Config config;
  const core::Result result = core::louvain(g, config);

  // 3. Use the result: result.community[v] is the community of vertex v
  //    (dense labels in [0, k)); result.levels traces the hierarchy.
  const auto stats = metrics::partition_stats(result.community);
  std::printf("found %llu communities (largest %llu, %llu singletons)\n",
              static_cast<unsigned long long>(stats.num_communities),
              static_cast<unsigned long long>(stats.largest),
              static_cast<unsigned long long>(stats.singletons));
  std::printf("modularity Q = %.4f in %.3fs over %zu levels\n",
              result.modularity, result.total_seconds, result.levels.size());
  for (std::size_t i = 0; i < result.levels.size(); ++i) {
    const auto& level = result.levels[i];
    std::printf("  level %zu: %u vertices, %d sweeps, Q -> %.4f\n", i + 1,
                level.vertices, level.iterations, level.modularity_after);
  }
  return 0;
}
