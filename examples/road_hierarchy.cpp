// Road-network scenario: the multilevel hierarchy itself is the
// product. On a road network Louvain's levels correspond to
// neighbourhoods -> districts -> regions; this example walks the
// dendrogram and reports how the graph coarsens level by level —
// the same behaviour Figure 5 of the paper times on road_usa.
#include <cstdio>
#include <iostream>

#include "core/louvain.hpp"
#include "gen/road.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace glouvain;

  util::Options opt(argc, argv);
  const auto side = static_cast<graph::VertexId>(
      opt.get_int("side", 220, "road lattice side length"));
  const std::int64_t seed = opt.get_int("seed", 7, "generator seed");
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("hierarchical regions of a road network").c_str());
    return 0;
  }

  gen::RoadParams params;
  params.grid_nx = side;
  params.grid_ny = side;
  params.seed = static_cast<std::uint64_t>(seed);
  const auto g = gen::road_network(params);
  std::printf("road network: %u junctions/segment points, %llu road segments\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()));

  const core::Result result = core::louvain(g);

  std::printf("hierarchy (%zu levels, final Q = %.4f, %.3fs):\n",
              result.levels.size(), result.modularity, result.total_seconds);
  util::Table table({"level", "regions in", "sweeps", "Q after", "opt[s]",
                     "agg[s]"});
  for (std::size_t i = 0; i < result.levels.size(); ++i) {
    const auto& level = result.levels[i];
    table.add_row({std::to_string(i + 1), util::Table::count(level.vertices),
                   std::to_string(level.iterations),
                   util::Table::fixed(level.modularity_after, 4),
                   util::Table::fixed(level.optimize_seconds, 3),
                   util::Table::fixed(level.aggregate_seconds, 3)});
  }
  table.print(std::cout);

  const auto stats = metrics::partition_stats(result.community);
  std::printf("\nfinal map: %llu regions, typical size %.0f junctions, largest %llu\n",
              static_cast<unsigned long long>(stats.num_communities),
              stats.mean_size,
              static_cast<unsigned long long>(stats.largest));
  std::printf("(Figure 5 shape check: the first level should dominate the "
              "runtime, followed by a cheap tail.)\n");
  return 0;
}
