// Multi-device scenario (the paper's §6 future-work direction): run the
// coarse-grained partitioned Louvain across simulated devices and
// compare both partition strategies against a single device —
// reproducing the paper's closing observation that coarse-grained
// schemes hold up surprisingly well even under random partitioning.
#include <cstdio>
#include <iostream>

#include "core/louvain.hpp"
#include "gen/lfr.hpp"
#include "metrics/compare.hpp"
#include "metrics/quality.hpp"
#include "multi/multi.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace glouvain;

  util::Options opt(argc, argv);
  const auto n = static_cast<graph::VertexId>(
      opt.get_int("n", 1 << 14, "number of vertices"));
  const std::int64_t seed = opt.get_int("seed", 11, "generator seed");
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("coarse-grained multi-device Louvain").c_str());
    return 0;
  }

  const auto bench = gen::lfr({.num_vertices = n, .mu = 0.25,
                               .seed = static_cast<std::uint64_t>(seed)});
  const auto& g = bench.graph;
  std::printf("LFR graph: %u vertices, %llu edges, planted communities known\n\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()));

  const auto single = core::louvain(g);
  util::Table table({"configuration", "Q(coarse)", "Q(final)", "NMI vs truth",
                     "conductance", "time[s]"});
  table.add_row({"single device", "-", util::Table::fixed(single.modularity, 4),
                 util::Table::fixed(metrics::nmi(single.community, bench.ground_truth), 3),
                 util::Table::fixed(
                     metrics::conductance_all(g, single.community).weighted_mean, 3),
                 util::Table::fixed(single.total_seconds, 3)});

  for (auto strategy : {multi::PartitionStrategy::Block,
                        multi::PartitionStrategy::Random}) {
    for (unsigned d : {2u, 4u}) {
      multi::Config cfg;
      cfg.num_devices = d;
      cfg.partition = strategy;
      const multi::Result r = multi::louvain(g, cfg);
      const std::string name =
          std::string(strategy == multi::PartitionStrategy::Block ? "block"
                                                                  : "random") +
          " x" + std::to_string(d);
      table.add_row({name, util::Table::fixed(r.local_modularity, 4),
                     util::Table::fixed(r.modularity, 4),
                     util::Table::fixed(metrics::nmi(r.community, bench.ground_truth), 3),
                     util::Table::fixed(
                         metrics::conductance_all(g, r.community).weighted_mean, 3),
                     util::Table::fixed(r.total_seconds, 3)});
    }
  }
  table.print(std::cout);
  std::printf("\nexpected shape: block partitioning matches single-device; "
              "random partitioning's coarse phase is poor but the global "
              "finishing pass recovers most of the gap (Cheong et al. "
              "report up to 9%% residual loss).\n");
  return 0;
}
