// Social-network scenario (the paper's motivating application, §1):
// detect communities in a synthetic social graph with heavy-tailed
// degrees, report the community-size distribution, and show how the
// degree-bucketed kernel spreads the skewed work — the exact situation
// the paper's edge-level parallelism is designed for.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/louvain.hpp"
#include "gen/rmat.hpp"
#include "graph/ops.hpp"
#include "metrics/partition.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace glouvain;

  util::Options opt(argc, argv);
  const auto scale = static_cast<unsigned>(
      opt.get_int("scale", 15, "log2 of the number of users"));
  const double edge_factor =
      opt.get_double("edge-factor", 16, "average friendships per user");
  const std::int64_t seed = opt.get_int("seed", 42, "generator seed");
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("community detection on a synthetic social network").c_str());
    return 0;
  }

  gen::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  const auto g = gen::rmat(params, static_cast<std::uint64_t>(seed));

  // Degree skew is what makes social networks hard to load-balance;
  // show the paper's 7-bucket histogram for this graph.
  const auto stats = graph::degree_stats(g);
  std::printf("social graph: %u users, %llu friendships, degrees %llu..%llu "
              "(mean %.1f)\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(stats.min_degree),
              static_cast<unsigned long long>(stats.max_degree),
              stats.mean_degree);
  static const char* kBucketNames[] = {"1-4",    "5-8",    "9-16", "17-32",
                                       "33-84",  "85-319", ">319"};
  std::printf("degree buckets (paper §4.1): ");
  for (int b = 0; b < 7; ++b) {
    std::printf("%s:%llu  ", kBucketNames[b],
                static_cast<unsigned long long>(stats.bucket_counts[b]));
  }
  std::printf("\n\n");

  const core::Result result = core::louvain(g);

  auto sizes = metrics::community_sizes(result.community);
  std::sort(sizes.rbegin(), sizes.rend());
  std::printf("detected %zu communities, Q = %.4f, %.3fs\n", sizes.size(),
              result.modularity, result.total_seconds);
  util::Table table({"rank", "members", "share"});
  for (std::size_t i = 0; i < std::min<std::size_t>(10, sizes.size()); ++i) {
    table.add_row({std::to_string(i + 1), util::Table::count(sizes[i]),
                   util::Table::percent(static_cast<double>(sizes[i]) /
                                            g.num_vertices(), 2)});
  }
  table.print(std::cout);

  std::uint64_t covered = 0;
  std::size_t rank = 0;
  while (rank < sizes.size() && covered * 2 < g.num_vertices()) {
    covered += sizes[rank++];
  }
  std::printf("\nhalf of all users live in the %zu largest communities\n", rank);
  return 0;
}
