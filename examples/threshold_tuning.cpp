// Threshold-tuning scenario: the practical knob the paper spends
// Figures 1-2 on. For one graph, sweep t_bin and show the
// quality/time trade-off so a user can pick their own operating point.
#include <cstdio>
#include <iostream>

#include "core/louvain.hpp"
#include "gen/suite.hpp"
#include "seq/louvain.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace glouvain;

  util::Options opt(argc, argv);
  const std::string name =
      opt.get_string("graph", "orkut", "suite graph name (see gen/suite.hpp)");
  const double scale = opt.get_double("scale", 0.15, "size multiplier");
  const std::int64_t seed = opt.get_int("seed", 1, "generator seed");
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("pick a threshold operating point for your graph").c_str());
    return 0;
  }

  const auto g = gen::suite_entry(name).build(scale, static_cast<std::uint64_t>(seed));
  std::printf("graph '%s': %u vertices, %llu edges\n", name.c_str(),
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()));

  seq::Config seq_cfg;  // fine threshold everywhere = quality reference
  const auto reference = seq::louvain(g, seq_cfg);
  std::printf("sequential reference: Q = %.4f in %.3fs\n\n",
              reference.modularity, reference.total_seconds);

  util::Table table({"t_bin", "Q", "Q vs seq", "time[s]", "speedup", "levels"});
  for (double t_bin : {1e-1, 1e-2, 1e-3, 1e-4}) {
    core::Config cfg;
    cfg.thresholds = {.t_bin = t_bin, .t_final = 1e-6, .adaptive_limit = 1000,
                      .adaptive = true};
    const auto r = core::louvain(g, cfg);
    table.add_row({util::Table::sci(t_bin, 0), util::Table::fixed(r.modularity, 4),
                   util::Table::percent(
                       reference.modularity > 1e-9
                           ? r.modularity / reference.modularity
                           : 1.0, 1),
                   util::Table::fixed(r.total_seconds, 3),
                   util::Table::fixed(reference.total_seconds /
                                          std::max(r.total_seconds, 1e-9), 1),
                   std::to_string(r.levels.size())});
  }
  table.print(std::cout);
  std::printf("\nthe paper picks t_bin = 1e-2: the knee where modularity stays "
              ">99%% while most of the speedup is realized (Figures 1-2).\n");
  return 0;
}
