// Ground-truth benchmark scenario: sweep the LFR mixing parameter mu
// and measure how well each algorithm (sequential, shared-memory PLM,
// GPU-style core) recovers the planted communities. The standard
// community-detection evaluation the paper's quality claims rest on.
#include <cstdio>
#include <iostream>

#include "core/louvain.hpp"
#include "gen/lfr.hpp"
#include "metrics/compare.hpp"
#include "plm/plm.hpp"
#include "seq/louvain.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace glouvain;

  util::Options opt(argc, argv);
  const auto n = static_cast<graph::VertexId>(
      opt.get_int("n", 1 << 14, "number of vertices"));
  const std::int64_t seed = opt.get_int("seed", 3, "generator seed");
  if (opt.help_requested()) {
    std::printf("%s", opt.usage("planted-community recovery vs mixing parameter").c_str());
    return 0;
  }

  std::printf("LFR benchmark, n=%u: NMI against planted communities\n", n);
  util::Table table({"mu", "|E|", "NMI(seq)", "NMI(plm)", "NMI(core)",
                     "Q(core)", "t(core)[s]"});
  for (double mu : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    gen::LfrParams params;
    params.num_vertices = n;
    params.mu = mu;
    params.seed = static_cast<std::uint64_t>(seed);
    const auto bench = gen::lfr(params);

    const auto rs = seq::louvain(bench.graph);
    const auto rp = plm::louvain(bench.graph);
    const auto rc = core::louvain(bench.graph);

    table.add_row(
        {util::Table::fixed(mu, 1), util::Table::count(bench.graph.num_edges()),
         util::Table::fixed(metrics::nmi(rs.community, bench.ground_truth), 3),
         util::Table::fixed(metrics::nmi(rp.community, bench.ground_truth), 3),
         util::Table::fixed(metrics::nmi(rc.community, bench.ground_truth), 3),
         util::Table::fixed(rc.modularity, 3),
         util::Table::fixed(rc.total_seconds, 3)});
  }
  table.print(std::cout);
  std::printf("\nexpected shape: NMI ~ 1 for mu <= 0.3, degrading as mixing "
              "approaches 0.5-0.6; all three algorithms should track each "
              "other closely.\n");
  return 0;
}
