#include "seq/louvain.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/ops.hpp"
#include "metrics/partition.hpp"
#include "obs/recorder.hpp"
#include "util/timer.hpp"

namespace glouvain::seq {

namespace {

using graph::Community;
using graph::Csr;
using graph::VertexId;
using graph::Weight;

/// Modularity from maintained in/tot accumulators.
double modularity_from(const std::vector<Weight>& in,
                       const std::vector<Weight>& tot, Weight m2) {
  double q = 0;
  for (std::size_t c = 0; c < in.size(); ++c) {
    if (tot[c] > 0) q += in[c] / m2 - (tot[c] / m2) * (tot[c] / m2);
  }
  return q;
}

/// One neighbour row handed to the phase body by a row source.
struct Row {
  std::span<const VertexId> nbrs;
  std::span<const Weight> ws;
};

/// Row source over a plain Csr: zero-cost spans into the arrays.
struct PlainSource {
  const Csr& g;

  VertexId num_vertices() const { return g.num_vertices(); }
  Weight total_weight() const { return g.total_weight(); }
  void strengths_and_loops(std::vector<Weight>& s, std::vector<Weight>& l) {
    s = g.compute_strengths();
    const VertexId n = g.num_vertices();
    l.resize(n);
    for (VertexId v = 0; v < n; ++v) l[v] = g.loop_weight(v);
  }
  Row row(VertexId v) { return {g.neighbors(v), g.weights(v)}; }
};

/// Row source over the varint-compressed ZCsr: one cached decode
/// cursor. The phase body visits vertices in increasing id order, so
/// the cursor advances sequentially (one cheap reseek per sweep, back
/// to row 0). Decoded values equal the plain arrays bit for bit, and
/// sums below run in the same row order as the Csr members, so every
/// downstream double matches the plain path bitwise.
class ZSource {
 public:
  explicit ZSource(const zg::ZCsr& z)
      : z_(z), cursor_(z.cursor()), adj_(z.max_degree()), w_(z.max_degree()) {}

  VertexId num_vertices() const { return z_.num_vertices(); }
  Weight total_weight() const { return z_.total_weight(); }
  void strengths_and_loops(std::vector<Weight>& s, std::vector<Weight>& l) {
    const VertexId n = z_.num_vertices();
    s.resize(n);
    l.resize(n);
    auto cur = z_.cursor();
    for (VertexId v = 0; v < n; ++v) {
      const std::uint32_t deg = z_.degree(v);
      cur.decode_into(adj_.data(), w_.data());
      Weight sum = 0;
      Weight loop = 0;
      for (std::uint32_t i = 0; i < deg; ++i) {
        sum += w_[i];
        if (adj_[i] == v) loop += w_[i];
      }
      s[v] = sum;
      l[v] = loop;
    }
  }
  Row row(VertexId v) {
    if (cursor_.vertex() != v) cursor_ = z_.cursor_at(v);
    const std::uint32_t deg = z_.degree(v);
    cursor_.decode_into(adj_.data(), w_.data());
    return {{adj_.data(), deg}, {w_.data(), deg}};
  }

 private:
  const zg::ZCsr& z_;
  zg::ZCsr::Cursor cursor_;
  std::vector<VertexId> adj_;
  std::vector<Weight> w_;
};

/// The shared phase body, templated over the row source. A non-empty
/// `seed` replaces the singleton bootstrap (in/tot are accumulated
/// from the seeded membership); a non-empty `active` restricts the
/// sweep to those vertices — everyone else keeps its community but
/// still participates in every gain term, so the maintained
/// modularity stays exact.
template <typename Source>
int phase_impl(Source& src, std::vector<Community>& community,
               double threshold, int max_sweeps, double* final_modularity,
               obs::Recorder* rec, std::span<const Community> seed,
               std::span<const VertexId> active) {
  const VertexId n = src.num_vertices();
  const Weight m2 = src.total_weight();

  std::vector<Weight> strengths;
  std::vector<Weight> loops;
  src.strengths_and_loops(strengths, loops);

  std::vector<Weight> tot;
  std::vector<Weight> in;
  if (seed.empty()) {
    community.assign(n, 0);
    for (VertexId v = 0; v < n; ++v) community[v] = v;
    tot = strengths;  // one community per vertex
    in.assign(n, 0);
    for (VertexId v = 0; v < n; ++v) in[v] = loops[v];
  } else {
    community.assign(seed.begin(), seed.end());
    tot.assign(n, 0);
    in.assign(n, 0);
    for (VertexId v = 0; v < n; ++v) {
      const Community c = community[v];
      tot[c] += strengths[v];
      Weight internal = loops[v];
      const Row r = src.row(v);
      for (std::size_t i = 0; i < r.nbrs.size(); ++i) {
        if (r.nbrs[i] != v && community[r.nbrs[i]] == c) internal += r.ws[i];
      }
      in[c] += internal;  // each internal edge lands twice, once per end
    }
  }

  // Sparse neighbour-community accumulator (the "hash table" of the
  // sequential algorithm): value array indexed by community plus the
  // list of touched entries for O(deg) reset.
  std::vector<Weight> neigh_weight(n, -1);
  std::vector<Community> touched;
  touched.reserve(256);

  double current_q = modularity_from(in, tot, m2);
  int sweeps = 0;
  const std::size_t sweep_size = active.empty() ? n : active.size();

  while (sweeps < max_sweeps) {
    ++sweeps;
    obs::Span sweep_span(rec, "modopt/sweep");
    bool moved = false;
    std::size_t moved_count = 0;

    for (std::size_t idx = 0; idx < sweep_size; ++idx) {
      const VertexId v = active.empty() ? static_cast<VertexId>(idx) : active[idx];
      const Community old_c = community[v];
      const Weight k = strengths[v];

      // Gather d_{v,c} for every adjacent community (self excluded).
      touched.clear();
      const Row r = src.row(v);
      for (std::size_t i = 0; i < r.nbrs.size(); ++i) {
        if (r.nbrs[i] == v) continue;
        const Community c = community[r.nbrs[i]];
        if (neigh_weight[c] < 0) {
          neigh_weight[c] = 0;
          touched.push_back(c);
        }
        neigh_weight[c] += r.ws[i];
      }

      const Weight d_old = neigh_weight[old_c] < 0 ? 0 : neigh_weight[old_c];

      // Remove v from its community.
      tot[old_c] -= k;
      in[old_c] -= 2 * d_old + loops[v];

      // Best target: maximize d_vc - k * tot_c / m2; ties to lowest id;
      // staying put wins ties against moving (strict improvement only).
      Community best_c = old_c;
      double best_gain = d_old - k * tot[old_c] / m2;
      for (const Community c : touched) {
        if (c == old_c) continue;
        const double gain = neigh_weight[c] - k * tot[c] / m2;
        if (gain > best_gain + 1e-15 ||
            (gain > best_gain - 1e-15 && c < best_c)) {
          best_gain = gain;
          best_c = c;
        }
      }

      // Insert into the winner.
      const Weight d_best = best_c == old_c
                                ? d_old
                                : (neigh_weight[best_c] < 0 ? 0 : neigh_weight[best_c]);
      tot[best_c] += k;
      in[best_c] += 2 * d_best + loops[v];
      community[v] = best_c;
      if (best_c != old_c) {
        moved = true;
        ++moved_count;
      }

      for (const Community c : touched) neigh_weight[c] = -1;
    }

    if (rec && sweep_size > 0) {
      rec->count("modopt/moved_frac",
                 static_cast<double>(moved_count) /
                     static_cast<double>(sweep_size),
                 sweeps - 1);
    }

    const double new_q = modularity_from(in, tot, m2);
    const double gain = new_q - current_q;
    current_q = new_q;
    if (!moved || gain < threshold) break;
  }

  if (rec) rec->count("modopt/sweeps", sweeps);
  if (final_modularity) *final_modularity = current_q;
  return sweeps;
}

/// The reference contraction over a compressed row source: the exact
/// algorithm of graph::contract_reference with member rows decoded
/// from the stream. Rows are appended in the same vertex/row order, so
/// the sort inputs — and therefore the merged sums and the resulting
/// Csr arrays — are identical to the plain path bit for bit.
Csr contract_z(const zg::ZCsr& z, const std::vector<Community>& community,
               std::vector<VertexId>* new_id_out) {
  const VertexId n = z.num_vertices();

  std::vector<std::uint8_t> non_empty(n, 0);
  for (VertexId v = 0; v < n; ++v) non_empty[community[v]] = 1;
  std::vector<VertexId> new_id(n, graph::kInvalidVertex);
  VertexId next = 0;
  for (VertexId c = 0; c < n; ++c) {
    if (non_empty[c]) new_id[c] = next++;
  }
  const VertexId nn = next;
  if (new_id_out) *new_id_out = new_id;

  std::vector<std::vector<std::pair<VertexId, Weight>>> rows(nn);
  std::vector<VertexId> adj_buf(z.max_degree());
  std::vector<Weight> w_buf(z.max_degree());
  auto cur = z.cursor();
  for (VertexId v = 0; v < n; ++v) {
    const VertexId c = new_id[community[v]];
    auto& row = rows[c];
    const std::uint32_t deg = z.degree(v);
    cur.decode_into(adj_buf.data(), w_buf.data());
    for (std::uint32_t i = 0; i < deg; ++i) {
      row.emplace_back(new_id[community[adj_buf[i]]], w_buf[i]);
    }
  }

  std::vector<graph::EdgeIdx> offsets(nn + 1, 0);
  std::vector<VertexId> adj;
  std::vector<Weight> weights;
  for (VertexId c = 0; c < nn; ++c) {
    auto& row = rows[c];
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    graph::EdgeIdx count = 0;
    for (std::size_t i = 0; i < row.size();) {
      const VertexId nb = row[i].first;
      Weight w = 0;
      while (i < row.size() && row[i].first == nb) {
        w += row[i].second;
        ++i;
      }
      adj.push_back(nb);
      weights.push_back(w);
      ++count;
    }
    offsets[c + 1] = offsets[c] + count;
    row.clear();
    row.shrink_to_fit();
  }
  return Csr(std::move(offsets), std::move(adj), std::move(weights));
}

/// Shared multi-level driver; seed/active apply to level 0 only.
/// Exactly one of `graph` / `z0` is non-null: z0 selects the
/// compressed level-0 path (cold start only), after which the loop
/// continues on the contracted plain Csr either way.
LouvainResult run_impl(const Csr* graph, const zg::ZCsr* z0,
                       const Config& config, obs::Recorder* rec,
                       std::span<const Community> seed,
                       std::span<const VertexId> active) {
  util::Timer total_timer;
  const VertexId n0 = z0 ? z0->num_vertices() : graph->num_vertices();
  LouvainResult result;
  result.community.resize(n0);
  for (VertexId v = 0; v < n0; ++v) result.community[v] = v;

  if (z0 && rec) {
    rec->count("zg/bytes_adj", static_cast<double>(z0->bytes_stream()));
    rec->count("zg/bytes_index", static_cast<double>(z0->bytes_index()));
    rec->count("zg/plain_bytes", static_cast<double>(z0->plain_bytes()));
    const double packed =
        static_cast<double>(z0->bytes_stream() + z0->bytes_index());
    if (packed > 0) {
      rec->count("zg/ratio", static_cast<double>(z0->plain_bytes()) / packed);
    }
  }

  Csr current;  // empty during level 0 of a compressed run
  if (!z0) current = *graph;
  double prev_q = -1.0;

  for (int level = 0; level < config.max_levels; ++level) {
    if (rec) rec->set_level(level);
    const bool z_level = z0 != nullptr && level == 0;
    LevelReport report;
    report.vertices = z_level ? z0->num_vertices() : current.num_vertices();
    report.arcs = z_level ? z0->num_arcs() : current.num_arcs();
    report.modularity_before = prev_q < -0.5 ? 0 : prev_q;

    const double threshold = config.thresholds.threshold_for(report.vertices);

    util::Timer opt_timer;
    std::vector<Community> phase_community;
    double q = 0;
    {
      obs::Span opt_span(rec, "modopt");
      const bool warm_level = level == 0 && !seed.empty();
      const auto level_seed = warm_level ? seed : std::span<const Community>{};
      const auto level_active =
          warm_level ? active : std::span<const VertexId>{};
      if (z_level) {
        ZSource src(*z0);
        report.iterations =
            phase_impl(src, phase_community, threshold,
                       config.max_sweeps_per_level, &q, rec, level_seed,
                       level_active);
      } else {
        PlainSource src{current};
        report.iterations =
            phase_impl(src, phase_community, threshold,
                       config.max_sweeps_per_level, &q, rec, level_seed,
                       level_active);
      }
    }
    report.optimize_seconds = opt_timer.seconds();
    report.modularity_after = q;

    if (level == 0) {
      result.first_phase_teps = report.optimize_seconds > 0
          ? static_cast<double>(report.arcs) * report.iterations /
                report.optimize_seconds
          : 0;
    }

    // Always stop on the *fine* threshold, as the multi-level driver of
    // the original code does — t_bin only shortens phases, not the run.
    const bool converged = prev_q >= -0.5 && (q - prev_q) < config.thresholds.t_final;

    util::Timer agg_timer;
    std::vector<VertexId> new_id;
    Csr contracted;
    {
      obs::Span agg_span(rec, "aggregate");
      metrics::renumber(phase_community);
      result.community = metrics::flatten(result.community, phase_community);
      result.dendrogram.push_level(phase_community);
      contracted = z_level
          ? contract_z(*z0, phase_community, &new_id)
          : graph::contract_reference(current, phase_community, &new_id);
    }
    report.aggregate_seconds = agg_timer.seconds();
    result.levels.push_back(report);
    if (rec) {
      rec->count("level/vertices", static_cast<double>(report.vertices));
      rec->count("level/arcs", static_cast<double>(report.arcs));
    }

    const bool shrunk = contracted.num_vertices() < report.vertices;
    prev_q = q;
    current = std::move(contracted);
    if (converged || !shrunk) break;
  }
  if (rec) rec->set_level(-1);

  result.modularity = prev_q;
  result.total_seconds = total_timer.seconds();
  return result;
}

}  // namespace

int optimize_phase(const Csr& graph, std::vector<Community>& community,
                   double threshold, int max_sweeps, double* final_modularity,
                   obs::Recorder* rec) {
  PlainSource src{graph};
  return phase_impl(src, community, threshold, max_sweeps, final_modularity,
                    rec, {}, {});
}

LouvainResult louvain(const Csr& graph, const Config& config,
                      obs::Recorder* rec) {
  return run_impl(&graph, nullptr, config, rec, {}, {});
}

LouvainResult louvain_z(const zg::ZCsr& z, const Config& config,
                        obs::Recorder* rec) {
  return run_impl(nullptr, &z, config, rec, {}, {});
}

LouvainResult louvain_warm(const Csr& graph, std::span<const Community> seed,
                           std::span<const VertexId> active,
                           const Config& config, obs::Recorder* rec) {
  if (seed.size() != graph.num_vertices()) {
    throw std::invalid_argument("louvain_warm: seed size != num_vertices");
  }
  for (const Community c : seed) {
    if (c >= graph.num_vertices()) {
      throw std::invalid_argument("louvain_warm: seed label out of range");
    }
  }
  for (const VertexId v : active) {
    if (v >= graph.num_vertices()) {
      throw std::invalid_argument("louvain_warm: active vertex out of range");
    }
  }
  return run_impl(&graph, nullptr, config, rec, seed, active);
}

}  // namespace glouvain::seq
