#include "seq/louvain.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/ops.hpp"
#include "metrics/partition.hpp"
#include "obs/recorder.hpp"
#include "util/timer.hpp"

namespace glouvain::seq {

namespace {

using graph::Community;
using graph::Csr;
using graph::VertexId;
using graph::Weight;

/// Modularity from maintained in/tot accumulators.
double modularity_from(const std::vector<Weight>& in,
                       const std::vector<Weight>& tot, Weight m2) {
  double q = 0;
  for (std::size_t c = 0; c < in.size(); ++c) {
    if (tot[c] > 0) q += in[c] / m2 - (tot[c] / m2) * (tot[c] / m2);
  }
  return q;
}

/// The shared phase body. A non-empty `seed` replaces the singleton
/// bootstrap (in/tot are accumulated from the seeded membership); a
/// non-empty `active` restricts the sweep to those vertices — everyone
/// else keeps its community but still participates in every gain term,
/// so the maintained modularity stays exact.
int phase_impl(const Csr& graph, std::vector<Community>& community,
               double threshold, int max_sweeps, double* final_modularity,
               obs::Recorder* rec, std::span<const Community> seed,
               std::span<const VertexId> active) {
  const VertexId n = graph.num_vertices();
  const Weight m2 = graph.total_weight();

  std::vector<Weight> strengths = graph.compute_strengths();
  std::vector<Weight> loops(n);
  for (VertexId v = 0; v < n; ++v) loops[v] = graph.loop_weight(v);

  std::vector<Weight> tot;
  std::vector<Weight> in;
  if (seed.empty()) {
    community.assign(n, 0);
    for (VertexId v = 0; v < n; ++v) community[v] = v;
    tot = strengths;  // one community per vertex
    in.assign(n, 0);
    for (VertexId v = 0; v < n; ++v) in[v] = loops[v];
  } else {
    community.assign(seed.begin(), seed.end());
    tot.assign(n, 0);
    in.assign(n, 0);
    for (VertexId v = 0; v < n; ++v) {
      const Community c = community[v];
      tot[c] += strengths[v];
      Weight internal = loops[v];
      auto nbrs = graph.neighbors(v);
      auto ws = graph.weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (nbrs[i] != v && community[nbrs[i]] == c) internal += ws[i];
      }
      in[c] += internal;  // each internal edge lands twice, once per end
    }
  }

  // Sparse neighbour-community accumulator (the "hash table" of the
  // sequential algorithm): value array indexed by community plus the
  // list of touched entries for O(deg) reset.
  std::vector<Weight> neigh_weight(n, -1);
  std::vector<Community> touched;
  touched.reserve(256);

  double current_q = modularity_from(in, tot, m2);
  int sweeps = 0;
  const std::size_t sweep_size = active.empty() ? n : active.size();

  while (sweeps < max_sweeps) {
    ++sweeps;
    obs::Span sweep_span(rec, "modopt/sweep");
    bool moved = false;
    std::size_t moved_count = 0;

    for (std::size_t idx = 0; idx < sweep_size; ++idx) {
      const VertexId v = active.empty() ? static_cast<VertexId>(idx) : active[idx];
      const Community old_c = community[v];
      const Weight k = strengths[v];

      // Gather d_{v,c} for every adjacent community (self excluded).
      touched.clear();
      auto nbrs = graph.neighbors(v);
      auto ws = graph.weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (nbrs[i] == v) continue;
        const Community c = community[nbrs[i]];
        if (neigh_weight[c] < 0) {
          neigh_weight[c] = 0;
          touched.push_back(c);
        }
        neigh_weight[c] += ws[i];
      }

      const Weight d_old = neigh_weight[old_c] < 0 ? 0 : neigh_weight[old_c];

      // Remove v from its community.
      tot[old_c] -= k;
      in[old_c] -= 2 * d_old + loops[v];

      // Best target: maximize d_vc - k * tot_c / m2; ties to lowest id;
      // staying put wins ties against moving (strict improvement only).
      Community best_c = old_c;
      double best_gain = d_old - k * tot[old_c] / m2;
      for (const Community c : touched) {
        if (c == old_c) continue;
        const double gain = neigh_weight[c] - k * tot[c] / m2;
        if (gain > best_gain + 1e-15 ||
            (gain > best_gain - 1e-15 && c < best_c)) {
          best_gain = gain;
          best_c = c;
        }
      }

      // Insert into the winner.
      const Weight d_best = best_c == old_c
                                ? d_old
                                : (neigh_weight[best_c] < 0 ? 0 : neigh_weight[best_c]);
      tot[best_c] += k;
      in[best_c] += 2 * d_best + loops[v];
      community[v] = best_c;
      if (best_c != old_c) {
        moved = true;
        ++moved_count;
      }

      for (const Community c : touched) neigh_weight[c] = -1;
    }

    if (rec && sweep_size > 0) {
      rec->count("modopt/moved_frac",
                 static_cast<double>(moved_count) /
                     static_cast<double>(sweep_size),
                 sweeps - 1);
    }

    const double new_q = modularity_from(in, tot, m2);
    const double gain = new_q - current_q;
    current_q = new_q;
    if (!moved || gain < threshold) break;
  }

  if (rec) rec->count("modopt/sweeps", sweeps);
  if (final_modularity) *final_modularity = current_q;
  return sweeps;
}

/// Shared multi-level driver; seed/active apply to level 0 only.
LouvainResult run_impl(const Csr& graph, const Config& config,
                       obs::Recorder* rec, std::span<const Community> seed,
                       std::span<const VertexId> active) {
  util::Timer total_timer;
  LouvainResult result;
  result.community.resize(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) result.community[v] = v;

  Csr current = graph;
  double prev_q = -1.0;

  for (int level = 0; level < config.max_levels; ++level) {
    if (rec) rec->set_level(level);
    LevelReport report;
    report.vertices = current.num_vertices();
    report.arcs = current.num_arcs();
    report.modularity_before = prev_q < -0.5 ? 0 : prev_q;

    const double threshold = config.thresholds.threshold_for(current.num_vertices());

    util::Timer opt_timer;
    std::vector<Community> phase_community;
    double q = 0;
    {
      obs::Span opt_span(rec, "modopt");
      const bool warm_level = level == 0 && !seed.empty();
      report.iterations = phase_impl(
          current, phase_community, threshold, config.max_sweeps_per_level, &q,
          rec, warm_level ? seed : std::span<const Community>{},
          warm_level ? active : std::span<const VertexId>{});
    }
    report.optimize_seconds = opt_timer.seconds();
    report.modularity_after = q;

    if (level == 0) {
      result.first_phase_teps = report.optimize_seconds > 0
          ? static_cast<double>(current.num_arcs()) * report.iterations /
                report.optimize_seconds
          : 0;
    }

    // Always stop on the *fine* threshold, as the multi-level driver of
    // the original code does — t_bin only shortens phases, not the run.
    const bool converged = prev_q >= -0.5 && (q - prev_q) < config.thresholds.t_final;

    util::Timer agg_timer;
    std::vector<VertexId> new_id;
    Csr contracted;
    {
      obs::Span agg_span(rec, "aggregate");
      metrics::renumber(phase_community);
      result.community = metrics::flatten(result.community, phase_community);
      result.dendrogram.push_level(phase_community);
      contracted = graph::contract_reference(current, phase_community, &new_id);
    }
    report.aggregate_seconds = agg_timer.seconds();
    result.levels.push_back(report);
    if (rec) {
      rec->count("level/vertices", static_cast<double>(report.vertices));
      rec->count("level/arcs", static_cast<double>(report.arcs));
    }

    const bool shrunk = contracted.num_vertices() < current.num_vertices();
    prev_q = q;
    current = std::move(contracted);
    if (converged || !shrunk) break;
  }
  if (rec) rec->set_level(-1);

  result.modularity = prev_q;
  result.total_seconds = total_timer.seconds();
  return result;
}

}  // namespace

int optimize_phase(const Csr& graph, std::vector<Community>& community,
                   double threshold, int max_sweeps, double* final_modularity,
                   obs::Recorder* rec) {
  return phase_impl(graph, community, threshold, max_sweeps, final_modularity,
                    rec, {}, {});
}

LouvainResult louvain(const Csr& graph, const Config& config,
                      obs::Recorder* rec) {
  return run_impl(graph, config, rec, {}, {});
}

LouvainResult louvain_warm(const Csr& graph, std::span<const Community> seed,
                           std::span<const VertexId> active,
                           const Config& config, obs::Recorder* rec) {
  if (seed.size() != graph.num_vertices()) {
    throw std::invalid_argument("louvain_warm: seed size != num_vertices");
  }
  for (const Community c : seed) {
    if (c >= graph.num_vertices()) {
      throw std::invalid_argument("louvain_warm: seed label out of range");
    }
  }
  for (const VertexId v : active) {
    if (v >= graph.num_vertices()) {
      throw std::invalid_argument("louvain_warm: active vertex out of range");
    }
  }
  return run_impl(graph, config, rec, seed, active);
}

}  // namespace glouvain::seq
