// Sequential Louvain method — a faithful re-implementation of the
// original algorithm of Blondel, Guillaume, Lambiotte & Lefebvre
// (2008), the baseline the paper's speedups are measured against
// (Table 1 column 4, Figure 3). With `thresholds.adaptive = true` it
// becomes the "adaptive sequential algorithm" of Figure 4, which uses
// the coarse t_bin threshold on large intermediate graphs.
#pragma once

#include "core/common.hpp"
#include "graph/csr.hpp"

namespace glouvain::seq {

struct Config {
  ThresholdSchedule thresholds{.adaptive = false};
  int max_levels = 64;
  int max_sweeps_per_level = 1000;
};

/// Full multi-level run.
LouvainResult louvain(const graph::Csr& graph, const Config& config = {});

/// One modularity-optimization phase on `graph` starting from the
/// all-singletons partition; `community` receives the result (dense
/// labels NOT renumbered — labels are community representatives).
/// Returns the number of sweeps executed. Exposed for unit tests.
int optimize_phase(const graph::Csr& graph,
                   std::vector<graph::Community>& community, double threshold,
                   int max_sweeps, double* final_modularity = nullptr);

}  // namespace glouvain::seq
