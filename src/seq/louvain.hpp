// Sequential Louvain method — a faithful re-implementation of the
// original algorithm of Blondel, Guillaume, Lambiotte & Lefebvre
// (2008), the baseline the paper's speedups are measured against
// (Table 1 column 4, Figure 3). With `thresholds.adaptive = true` it
// becomes the "adaptive sequential algorithm" of Figure 4, which uses
// the coarse t_bin threshold on large intermediate graphs.
#pragma once

#include <span>

#include "core/common.hpp"
#include "detect/options.hpp"
#include "graph/csr.hpp"
#include "zg/zcsr.hpp"

namespace glouvain::obs {
class Recorder;
}

namespace glouvain::seq {

/// All knobs are the shared detect::Options; the sequential baseline
/// defaults to the exact (non-adaptive) threshold schedule and ignores
/// Options::threads.
struct Config : detect::Options {
  Config() { thresholds.adaptive = false; }
};

/// Full multi-level run. `recorder` (optional) receives per-level
/// "modopt"/"aggregate" spans comparable with the core backend's.
LouvainResult louvain(const graph::Csr& graph, const Config& config = {},
                      obs::Recorder* recorder = nullptr);

/// Compressed-storage run: level 0 streams neighbour rows from the
/// varint-encoded `z` through a sequential decode cursor instead of a
/// plain Csr; the (much smaller) contracted levels run plain as usual.
/// Partitions are bitwise-identical to louvain() on the graph `z`
/// encodes.
LouvainResult louvain_z(const zg::ZCsr& z, const Config& config = {},
                        obs::Recorder* recorder = nullptr);

/// Warm-start run (the dynamic-graph path): level 0 starts from `seed`
/// (one label < num_vertices per vertex, need not be dense) and sweeps
/// only the vertices in `active` (empty = all of them); later levels
/// run the normal contraction hierarchy. The returned modularity is
/// exact for the final partition, comparable to louvain()'s. Throws
/// std::invalid_argument on a malformed seed or frontier.
LouvainResult louvain_warm(const graph::Csr& graph,
                           std::span<const graph::Community> seed,
                           std::span<const graph::VertexId> active,
                           const Config& config = {},
                           obs::Recorder* recorder = nullptr);

/// One modularity-optimization phase on `graph` starting from the
/// all-singletons partition; `community` receives the result (dense
/// labels NOT renumbered — labels are community representatives).
/// Returns the number of sweeps executed. Exposed for unit tests.
int optimize_phase(const graph::Csr& graph,
                   std::vector<graph::Community>& community, double threshold,
                   int max_sweeps, double* final_modularity = nullptr,
                   obs::Recorder* recorder = nullptr);

}  // namespace glouvain::seq
