// Shadow-memory registry behind check.hpp. One process-global instance:
// the software device may be multiplied (svc device pool), but launch
// epochs are allocated from one counter, so accesses from concurrent
// jobs on different devices can never be confused for same-launch
// conflicts.
//
// Concurrency model: instrumented accesses run on pool worker threads.
// The shadow map is sharded 64 ways by address hash; each shard is a
// mutex + open hash map, so the checker serializes conflicting notes
// even when the underlying (buggy) accesses race — the record it keeps
// is coherent no matter how the data race interleaved. Everything here
// is slow-path-only code: it exists to be correct and informative, not
// fast, and it is compiled into the hot functions only under
// GLOUVAIN_SIMTCHECK.
#include "check/check.hpp"

#include <atomic>  // simt-lint: allow(raw-atomic) — checker infrastructure
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <sstream>
#include <thread>
#include <tuple>
#include <unordered_map>

namespace glouvain::check {

const char* to_string(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::kWriteWriteRace: return "write-write race";
    case ViolationKind::kWriteAtomicRace: return "plain/atomic race";
    case ViolationKind::kDoubleClaim: return "double slot claim";
    case ViolationKind::kStaleSharedRead: return "stale shared-memory read";
    case ViolationKind::kNestedLaunch: return "nested launch";
    case ViolationKind::kWorkspaceAliased: return "workspace aliased";
    case ViolationKind::kContract: return "contract violation";
  }
  return "?";
}

std::string Violation::to_string() const {
  std::ostringstream os;
  os << "[simtcheck] " << check::to_string(kind) << ": kernel " << kernel;
  if (epoch) os << " (epoch " << epoch << ")";
  if (task_a != kNoIndex) {
    os << " task " << task_a;
    if (task_b != kNoIndex && task_b != task_a) os << " vs task " << task_b;
  }
  if (address) {
    os << " at 0x" << std::hex << address << std::dec
       << (shared_arena ? " [shared arena]" : " [global]");
  }
  if (!detail.empty()) os << " — " << detail;
  return os.str();
}

std::string Report::to_string() const {
  if (clean()) return "[simtcheck] clean: no races or contract violations\n";
  std::ostringstream os;
  os << "[simtcheck] " << total << " violation(s)";
  if (violations.size() < total) {
    os << " (" << violations.size() << " retained after dedup)";
  }
  os << "\n";
  for (const Violation& v : violations) os << "  " << v.to_string() << "\n";
  return os.str();
}

util::Status Report::to_status() const {
  if (clean()) return util::Status::ok_status();
  std::string first = violations.empty() ? "" : violations.front().to_string();
  return util::Status::internal("simtcheck: " + std::to_string(total) +
                                " violation(s); first: " + first);
}

namespace {

using detail::Access;

struct Cell {
  std::uint64_t epoch = 0;
  std::uint32_t task = 0;
  Access access = Access::kInit;
  std::uint32_t arena_gen = 0;
};

struct Shard {
  std::mutex mu;
  std::unordered_map<std::uintptr_t, Cell> cells;
};

struct ArenaRange {
  std::uintptr_t hi = 0;
  std::uint32_t gen = 1;
};

struct ArenaHit {
  bool arena = false;
  std::uint32_t gen = 0;
};

struct WorkspaceOwner {
  std::thread::id owner;
  int depth = 0;
};

constexpr std::size_t kShards = 64;
constexpr std::size_t kMaxRetained = 256;

struct State {
  // Launch bookkeeping.
  std::atomic<std::uint64_t> next_epoch{1};  // simt-lint: allow(raw-atomic)
  std::mutex launches_mu;
  std::unordered_map<std::uint64_t, std::string> launch_labels;

  // Shadow cells.
  Shard shards[kShards];

  // Registered SharedArena buffers, keyed by buffer base address.
  std::shared_mutex arenas_mu;
  std::map<std::uintptr_t, ArenaRange> arenas;

  // Workspace exclusivity.
  std::mutex ws_mu;
  std::unordered_map<const void*, WorkspaceOwner> workspaces;

  // Violations.
  std::mutex v_mu;
  std::vector<Violation> violations;
  std::set<std::tuple<std::uint8_t, std::uint64_t, std::size_t, std::size_t>>
      dedup;
  std::atomic<std::uint64_t> total{0};  // simt-lint: allow(raw-atomic)
};

State& state() {
  static State* s = new State();  // leaked: outlives static-dtor order
  return *s;
}

thread_local std::uint64_t t_launch = 0;
thread_local std::size_t t_task = 0;
thread_local const char* t_kernel = nullptr;
thread_local std::size_t t_kernel_index = kNoIndex;

Shard& shard_for(std::uintptr_t addr) {
  // Mix the address so adjacent elements spread across shards.
  std::uintptr_t h = addr >> 3;
  h ^= h >> 17;
  return state().shards[h & (kShards - 1)];
}

ArenaHit arena_lookup(std::uintptr_t addr) {
  State& s = state();
  std::shared_lock lock(s.arenas_mu);
  auto it = s.arenas.upper_bound(addr);
  if (it == s.arenas.begin()) return {};
  --it;
  if (addr < it->second.hi) return {true, it->second.gen};
  return {};
}

std::string label_of(std::uint64_t launch) {
  State& s = state();
  std::lock_guard lock(s.launches_mu);
  auto it = s.launch_labels.find(launch);
  return it == s.launch_labels.end() ? std::string("kernel") : it->second;
}

void record(Violation v) {
  State& s = state();
  s.total.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(s.v_mu);
  const auto key = std::make_tuple(static_cast<std::uint8_t>(v.kind), v.epoch,
                                   v.task_a, v.task_b);
  if (!s.dedup.insert(key).second) return;
  std::fputs((v.to_string() + "\n").c_str(), stderr);
  if (s.violations.size() < kMaxRetained) s.violations.push_back(std::move(v));
}

/// Conflict matrix for two accesses to one address by DISTINCT tasks of
/// one launch (and one arena generation). kInit never conflicts: a
/// table clear is initialization, and the races it could mask resurface
/// at the claim/accumulate that follows.
ViolationKind conflict(Access prev, Access cur, bool& is_conflict) {
  is_conflict = true;
  const auto plain = [](Access a) {
    return a == Access::kPlainWrite || a == Access::kPlainClaim;
  };
  const auto atomic = [](Access a) {
    return a == Access::kAtomic || a == Access::kCasClaim;
  };
  if (prev == Access::kInit || cur == Access::kInit) {
    is_conflict = false;
  } else if (prev == Access::kPlainClaim && cur == Access::kPlainClaim) {
    return ViolationKind::kDoubleClaim;
  } else if (prev == Access::kCasClaim && cur == Access::kCasClaim) {
    return ViolationKind::kDoubleClaim;
  } else if (plain(prev) && plain(cur)) {
    return ViolationKind::kWriteWriteRace;
  } else if ((plain(prev) && atomic(cur)) || (atomic(prev) && plain(cur))) {
    return ViolationKind::kWriteAtomicRace;
  } else {
    is_conflict = false;  // atomic vs atomic: the device model allows it
  }
  return ViolationKind::kContract;
}

const char* access_name(Access a) {
  switch (a) {
    case Access::kInit: return "init";
    case Access::kPlainWrite: return "plain write";
    case Access::kPlainClaim: return "plain claim";
    case Access::kAtomic: return "atomic";
    case Access::kCasClaim: return "CAS claim";
  }
  return "?";
}

}  // namespace

Report report() {
  State& s = state();
  Report r;
  r.total = s.total.load(std::memory_order_relaxed);
  std::lock_guard lock(s.v_mu);
  r.violations = s.violations;
  return r;
}

std::uint64_t violation_count() noexcept {
  return state().total.load(std::memory_order_relaxed);
}

void reset() {
  State& s = state();
  {
    std::lock_guard lock(s.v_mu);
    s.violations.clear();
    s.dedup.clear();
  }
  s.total.store(0, std::memory_order_relaxed);
  for (Shard& sh : s.shards) {
    std::lock_guard lock(sh.mu);
    sh.cells.clear();
  }
  {
    std::lock_guard lock(s.launches_mu);
    s.launch_labels.clear();
  }
  {
    std::lock_guard lock(s.ws_mu);
    s.workspaces.clear();
  }
  // Registered arenas (and their generations) survive: live devices
  // keep using their buffers across a reset.
}

namespace detail {

void note(const void* addr, Access access) noexcept {
  if (t_launch == 0) return;  // host-side access: outside the device model
  try {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    const ArenaHit hit = arena_lookup(a);
    Shard& sh = shard_for(a);
    std::lock_guard lock(sh.mu);
    auto [it, inserted] =
        sh.cells.try_emplace(a, Cell{t_launch, static_cast<std::uint32_t>(t_task),
                                     access, hit.gen});
    if (inserted) return;
    Cell& cell = it->second;
    const bool live =
        cell.epoch == t_launch && (!hit.arena || cell.arena_gen == hit.gen);
    if (live && cell.task != t_task) {
      bool is_conflict = false;
      const ViolationKind kind = conflict(cell.access, access, is_conflict);
      if (is_conflict) {
        Violation v;
        v.kind = kind;
        v.kernel = label_of(t_launch);
        v.epoch = t_launch;
        v.task_a = t_task;
        v.task_b = cell.task;
        v.address = a;
        v.shared_arena = hit.arena;
        v.detail = std::string(access_name(access)) + " after " +
                   access_name(cell.access) + " by the other task";
        record(std::move(v));
      }
      // A clear must not erase the other task's same-launch record, or
      // the reclaim that follows would look like a first claim.
      if (access == Access::kInit) return;
    }
    cell = Cell{t_launch, static_cast<std::uint32_t>(t_task), access, hit.gen};
  } catch (...) {
    // The checker never takes the process down on its own allocation
    // failure; worst case it under-reports.
  }
}

void note_read(const void* addr) noexcept {
  if (t_launch == 0) return;
  try {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    const ArenaHit hit = arena_lookup(a);
    if (!hit.arena) return;  // staleness is a shared-memory property
    Shard& sh = shard_for(a);
    std::lock_guard lock(sh.mu);
    auto it = sh.cells.find(a);
    if (it == sh.cells.end()) return;
    const Cell& cell = it->second;
    if (cell.epoch != t_launch || cell.arena_gen != hit.gen) {
      Violation v;
      v.kind = ViolationKind::kStaleSharedRead;
      v.kernel = label_of(t_launch);
      v.epoch = t_launch;
      v.task_a = t_task;
      v.task_b = cell.task;
      v.address = a;
      v.shared_arena = true;
      v.detail = "last written in epoch " + std::to_string(cell.epoch) +
                 " by task " + std::to_string(cell.task) +
                 (cell.arena_gen != hit.gen ? " (arena since reclaimed)" : "");
      record(std::move(v));
    }
  } catch (...) {
  }
}

std::uint64_t open_launch(std::size_t tasks) noexcept {
  State& s = state();
  const std::uint64_t epoch =
      s.next_epoch.fetch_add(1, std::memory_order_relaxed);
  try {
    std::string label;
    if (t_kernel) {
      label = t_kernel;
      if (t_kernel_index != kNoIndex) {
        label += "[" + std::to_string(t_kernel_index) + "]";
      }
    } else {
      label = "kernel";
    }
    if (t_launch != 0) {
      Violation v;
      v.kind = ViolationKind::kNestedLaunch;
      v.kernel = label;
      v.epoch = epoch;
      v.task_a = t_task;
      v.detail = "launched from inside task " + std::to_string(t_task) +
                 " of " + label_of(t_launch) +
                 " — tasks must not synchronize within a launch";
      record(std::move(v));
    }
    std::lock_guard lock(s.launches_mu);
    s.launch_labels.emplace(epoch,
                            label + "/" + std::to_string(tasks) + "t");
  } catch (...) {
  }
  return epoch;
}

void close_launch(std::uint64_t launch) noexcept {
  if (launch == 0) return;
  State& s = state();
  try {
    std::lock_guard lock(s.launches_mu);
    s.launch_labels.erase(launch);
  } catch (...) {
  }
}

void enter_task(std::uint64_t launch, std::size_t task,
                std::uint64_t& prev_launch, std::size_t& prev_task) noexcept {
  prev_launch = t_launch;
  prev_task = t_task;
  t_launch = launch;
  t_task = task;
}

void leave_task(std::uint64_t prev_launch, std::size_t prev_task) noexcept {
  t_launch = prev_launch;
  t_task = prev_task;
}

void set_kernel(const char* name, std::size_t index) noexcept {
  t_kernel = name;
  t_kernel_index = index;
}

void clear_kernel() noexcept {
  t_kernel = nullptr;
  t_kernel_index = kNoIndex;
}

void register_arena(const void* lo, std::size_t bytes) noexcept {
  if (lo == nullptr || bytes == 0) return;
  State& s = state();
  try {
    const auto a = reinterpret_cast<std::uintptr_t>(lo);
    std::unique_lock lock(s.arenas_mu);
    s.arenas[a] = ArenaRange{a + bytes, 1};
  } catch (...) {
  }
}

void unregister_arena(const void* lo) noexcept {
  if (lo == nullptr) return;
  State& s = state();
  try {
    std::unique_lock lock(s.arenas_mu);
    s.arenas.erase(reinterpret_cast<std::uintptr_t>(lo));
  } catch (...) {
  }
}

void reset_arena(const void* lo) noexcept {
  if (lo == nullptr) return;
  State& s = state();
  try {
    std::unique_lock lock(s.arenas_mu);
    auto it = s.arenas.find(reinterpret_cast<std::uintptr_t>(lo));
    if (it != s.arenas.end()) ++it->second.gen;
  } catch (...) {
  }
}

bool acquire_workspace(const void* ws) noexcept {
  State& s = state();
  try {
    std::lock_guard lock(s.ws_mu);
    auto [it, inserted] =
        s.workspaces.try_emplace(ws, WorkspaceOwner{std::this_thread::get_id(), 1});
    if (inserted) return true;
    WorkspaceOwner& owner = it->second;
    if (owner.owner == std::this_thread::get_id()) {
      ++owner.depth;  // phases nest (modularity inside optimize)
      return true;
    }
    Violation v;
    v.kind = ViolationKind::kWorkspaceAliased;
    v.kernel = "host";
    std::ostringstream os;
    os << "workspace " << ws << " is driven by two threads concurrently"
       << " — concurrent jobs must not share a core::Workspace";
    v.detail = os.str();
    record(std::move(v));
    return false;
  } catch (...) {
    return false;
  }
}

void release_workspace(const void* ws) noexcept {
  State& s = state();
  try {
    std::lock_guard lock(s.ws_mu);
    auto it = s.workspaces.find(ws);
    if (it == s.workspaces.end()) return;
    if (--it->second.depth <= 0) s.workspaces.erase(it);
  } catch (...) {
  }
}

void fail_contract(const char* what) noexcept {
  try {
    Violation v;
    v.kind = ViolationKind::kContract;
    v.kernel = t_launch != 0 ? label_of(t_launch)
                             : (t_kernel ? std::string(t_kernel) : "host");
    v.epoch = t_launch;
    v.task_a = t_launch != 0 ? t_task : kNoIndex;
    v.detail = what;
    record(std::move(v));
  } catch (...) {
  }
}

}  // namespace detail
}  // namespace glouvain::check
