// `check` — a compute-sanitizer analogue for the software SIMT device.
//
// The GPU original is debugged with `cuda-memcheck` / `compute-sanitizer
// --tool racecheck`, which understand the CUDA execution model: thread
// blocks that cannot synchronize inside a launch, shared memory that is
// reclaimed between blocks, hash slots that must be claimed by exactly
// one CAS winner. TSan sees none of that — it trusts std::atomic_ref
// and is blind to "two tasks plain-wrote the same SharedArena slot in
// one launch" or "a kernel read stale shared-memory contents from a
// previous launch", the dominant failure modes of parallel Louvain.
//
// This header is the hook surface. Every function below compiles to an
// empty inline when GLOUVAIN_SIMTCHECK is not defined, so release
// builds carry zero instrumentation (verified by the bench-smoke CI
// gate). Under `cmake --preset check` the hooks feed a process-global
// shadow map (registry.cpp):
//
//   * each instrumented address carries {launch epoch, task id, access
//     kind, arena generation};
//   * conflicting access kinds from two tasks of one launch report a
//     race (plain/plain, plain/atomic, claim/claim);
//   * reads of SharedArena memory whose record is from an older launch
//     or an older arena generation report stale shared-memory reuse;
//   * launch-contract breaches (nested launches, bucket-partition
//     overruns, workspace aliasing across threads) report directly.
//
// Violations accumulate in a registry; report() snapshots them as a
// check::Report with a util::Status surface, mirroring trace_check and
// bench_check. The instrumented tests gate on it under `ctest -L
// simtcheck`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace glouvain::check {

/// True in GLOUVAIN_SIMTCHECK builds; constexpr so callers can
/// `if constexpr` entire instrumented blocks away.
constexpr bool enabled() noexcept {
#ifdef GLOUVAIN_SIMTCHECK
  return true;
#else
  return false;
#endif
}

constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

enum class ViolationKind : std::uint8_t {
  kWriteWriteRace,    ///< two tasks plain-wrote one address in one launch
  kWriteAtomicRace,   ///< plain write raced an atomic access across tasks
  kDoubleClaim,       ///< one hash slot claimed by two winners in one launch
  kStaleSharedRead,   ///< read of shared-arena contents from an older launch
  kNestedLaunch,      ///< a task launched a kernel (in-launch synchronization)
  kWorkspaceAliased,  ///< one core::Workspace driven by two threads at once
  kContract,          ///< an asserted launch contract failed
};

const char* to_string(ViolationKind kind) noexcept;

/// One reported breach, with enough trace to find the kernel: launch
/// name as labelled by check::KernelScope, the launch epoch, the two
/// task ids involved, and the address (flagged when it lies inside a
/// registered SharedArena).
struct Violation {
  ViolationKind kind = ViolationKind::kContract;
  std::string kernel;            ///< label of the launch that tripped it
  std::uint64_t epoch = 0;       ///< launch epoch of the tripping access
  std::size_t task_a = kNoIndex; ///< task performing the tripping access
  std::size_t task_b = kNoIndex; ///< task of the prior conflicting access
  std::uintptr_t address = 0;    ///< conflicting location (0 for contracts)
  bool shared_arena = false;     ///< address lies in SharedArena storage
  std::string detail;            ///< human-readable specifics

  std::string to_string() const;
};

/// Snapshot of the registry: the retained violations (deduplicated per
/// {kind, epoch, task pair}; capped) plus the total including drops.
struct Report {
  std::vector<Violation> violations;
  std::uint64_t total = 0;  ///< all observed, including deduplicated ones

  bool clean() const noexcept { return total == 0; }
  std::string to_string() const;
  /// kOk when clean, kInternal with a one-line summary otherwise —
  /// the same Status surface the CLI and svc error paths use.
  util::Status to_status() const;
};

/// Always linkable (trivially empty when the checker is off).
Report report();
std::uint64_t violation_count() noexcept;
/// Drop all violations and shadow state (between test cases).
void reset();

// ---------------------------------------------------------------------
// Out-of-line implementation surface (registry.cpp). Do not call these
// directly; use the inline hooks below, which vanish when the checker
// is disabled.
namespace detail {

enum class Access : std::uint8_t {
  kInit,        ///< initialization write (table clear); never conflicts
  kPlainWrite,  ///< non-atomic store
  kPlainClaim,  ///< non-atomic claim of an empty hash slot
  kAtomic,      ///< atomic read-modify-write / load / store
  kCasClaim,    ///< successful CAS claim of a hash slot
};

void note(const void* addr, Access access) noexcept;
void note_read(const void* addr) noexcept;
std::uint64_t open_launch(std::size_t tasks) noexcept;
void close_launch(std::uint64_t launch) noexcept;
void enter_task(std::uint64_t launch, std::size_t task,
                std::uint64_t& prev_launch, std::size_t& prev_task) noexcept;
void leave_task(std::uint64_t prev_launch, std::size_t prev_task) noexcept;
void set_kernel(const char* name, std::size_t index) noexcept;
void clear_kernel() noexcept;
void register_arena(const void* lo, std::size_t bytes) noexcept;
void unregister_arena(const void* lo) noexcept;
void reset_arena(const void* lo) noexcept;
bool acquire_workspace(const void* ws) noexcept;
void release_workspace(const void* ws) noexcept;
void fail_contract(const char* what) noexcept;

}  // namespace detail

// ---------------------------------------------------------------------
// Shadow-memory access notes (called by simt::atomics and the core hash
// map / kernel bodies).

/// A non-atomic store to `addr` by the current task.
inline void note_plain_write(const void* addr) noexcept {
  if constexpr (enabled()) detail::note(addr, detail::Access::kPlainWrite);
}

/// A non-atomic claim of a previously-empty hash slot (the task-local
/// table's claim write). Two claims of one slot in one launch by
/// distinct tasks report kDoubleClaim.
inline void note_plain_claim(const void* addr) noexcept {
  if constexpr (enabled()) detail::note(addr, detail::Access::kPlainClaim);
}

/// An initialization write (hash-table clear). Refreshes the shadow
/// record without conflicting — and deliberately does NOT erase another
/// task's same-launch record, so a cleared-then-reclaimed slot still
/// reports the double claim.
inline void note_init(const void* addr) noexcept {
  if constexpr (enabled()) detail::note(addr, detail::Access::kInit);
}

/// An atomic access (add/min/max/load/store or a failed CAS).
inline void note_atomic(const void* addr) noexcept {
  if constexpr (enabled()) detail::note(addr, detail::Access::kAtomic);
}

/// A successful atomicCAS — the paper's slot-claim idiom. Two CAS
/// winners on one address in one launch report kDoubleClaim.
inline void note_cas_claim(const void* addr) noexcept {
  if constexpr (enabled()) detail::note(addr, detail::Access::kCasClaim);
}

/// A non-atomic load. Only checked against SharedArena storage: a read
/// whose shadow record predates the current launch (or the arena's
/// last reset) reports kStaleSharedRead.
inline void note_plain_read(const void* addr) noexcept {
  if constexpr (enabled()) detail::note_read(addr);
}

/// Assert a launch contract; reports kContract when `ok` is false.
inline void contract(bool ok, const char* what) noexcept {
  if constexpr (enabled()) {
    if (!ok) detail::fail_contract(what);
  }
}

// ---------------------------------------------------------------------
// Launch bookkeeping (called by simt::Device).

/// Open a launch epoch; returns its id (0 when the checker is off).
/// Reports kNestedLaunch when called from inside a task.
inline std::uint64_t open_launch(std::size_t tasks) noexcept {
  if constexpr (enabled()) return detail::open_launch(tasks);
  return 0;
}

inline void close_launch([[maybe_unused]] std::uint64_t launch) noexcept {
  if constexpr (enabled()) detail::close_launch(launch);
}

/// Marks the calling thread as executing `task` of `launch` for the
/// scope's lifetime (nested scopes restore the outer task).
class TaskScope {
 public:
  TaskScope([[maybe_unused]] std::uint64_t launch,
            [[maybe_unused]] std::size_t task) noexcept {
    if constexpr (enabled()) detail::enter_task(launch, task, prev_launch_, prev_task_);
  }
  ~TaskScope() {
    if constexpr (enabled()) detail::leave_task(prev_launch_, prev_task_);
  }
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  std::uint64_t prev_launch_ = 0;
  std::size_t prev_task_ = 0;
};

/// Driver-side label for the next launch(es), e.g.
/// `check::KernelScope scope("modopt/bucket", b);` — violations inside
/// those launches report the kernel as "modopt/bucket[b]".
class KernelScope {
 public:
  explicit KernelScope([[maybe_unused]] const char* name,
                       [[maybe_unused]] std::size_t index = kNoIndex) noexcept {
    if constexpr (enabled()) detail::set_kernel(name, index);
  }
  ~KernelScope() {
    if constexpr (enabled()) detail::clear_kernel();
  }
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;
};

// ---------------------------------------------------------------------
// SharedArena registration (called by simt::SharedArena).

inline void register_arena([[maybe_unused]] const void* lo,
                           [[maybe_unused]] std::size_t bytes) noexcept {
  if constexpr (enabled()) detail::register_arena(lo, bytes);
}

inline void unregister_arena([[maybe_unused]] const void* lo) noexcept {
  if constexpr (enabled()) detail::unregister_arena(lo);
}

/// Bump the arena generation of the buffer starting at `lo`: records
/// written before the bump no longer conflict with (or satisfy) later
/// accesses — the shadow analogue of shared memory being reclaimed
/// between thread blocks.
inline void reset_arena([[maybe_unused]] const void* lo) noexcept {
  if constexpr (enabled()) detail::reset_arena(lo);
}

// ---------------------------------------------------------------------
// Workspace exclusivity (held by core phase drivers around their use of
// a core::Workspace). Two live guards for one workspace on different
// threads report kWorkspaceAliased — the svc contract that pooled
// device workers never share hot-path arenas across concurrent jobs.
class WorkspaceGuard {
 public:
  explicit WorkspaceGuard([[maybe_unused]] const void* ws) noexcept {
    if constexpr (enabled()) {
      ws_ = ws;
      owned_ = detail::acquire_workspace(ws);
    }
  }
  ~WorkspaceGuard() {
    if constexpr (enabled()) {
      if (owned_) detail::release_workspace(ws_);
    }
  }
  WorkspaceGuard(const WorkspaceGuard&) = delete;
  WorkspaceGuard& operator=(const WorkspaceGuard&) = delete;

 private:
  const void* ws_ = nullptr;
  bool owned_ = false;
};

}  // namespace glouvain::check
