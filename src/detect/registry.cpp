#include "detect/detector.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

#include "core/louvain.hpp"
#include "obs/recorder.hpp"
#include "plm/plm.hpp"
#include "seq/louvain.hpp"
#include "zg/zcsr.hpp"

namespace glouvain::detect {

Result Detector::run_z(const zg::ZCsr& z, const Options& options,
                       obs::Recorder* recorder) {
  // Generic fallback: materialize the plain graph. Backends with a
  // native compressed path override this.
  const graph::Csr plain = z.decode_all();
  Options opts = options;
  opts.storage = Storage::kPlain;
  opts.warm_start.reset();
  return run(plain, opts, recorder);
}

namespace {

Result from_louvain(LouvainResult&& base) {
  Result r;
  static_cast<LouvainResult&>(r) = std::move(base);
  return r;
}

/// Shared guard for the compressed paths: the knobs that need plain
/// rows are rejected loudly instead of silently decompressing.
void check_z_compatible(const Options& options, std::string_view backend) {
  if (options.warm_start) {
    throw std::invalid_argument(std::string(backend) +
                                ": warm_start requires plain storage");
  }
}

/// GPU-style Louvain on the software SIMT device. Keeps its device
/// (thread pool + shared arenas) warm across runs — the svc device
/// pool holds one of these per pooled slot — and rebuilds it only when
/// the requested worker-thread count changes.
class CoreDetector final : public Detector {
 public:
  explicit CoreDetector(const Extensions& ext) : base_(ext.core) {}

  std::string_view name() const noexcept override { return "core"; }

  Result run(const graph::Csr& graph, const Options& options,
             obs::Recorder* recorder) override {
    core::Louvain& runner = runner_for(options);
    if (options.storage != Storage::kPlain) {
      // In-memory graphs reach the compressed path through an encode
      // (kMmap behaves like kZcsr here; the true out-of-core route is
      // run_z over a mapped .zg container).
      check_z_compatible(options, name());
      const zg::ZCsr z = zg::ZCsr::encode(graph);
      return runner.run_z(z, recorder);
    }
    if (options.warm_start) {
      return runner.run_warm(graph, options.warm_start->seed,
                             options.warm_start->frontier, recorder);
    }
    return runner.run(graph, recorder);
  }

  Result run_z(const zg::ZCsr& z, const Options& options,
               obs::Recorder* recorder) override {
    return runner_for(options).run_z(z, recorder);
  }

 private:
  /// Rebuild or retune the kept runner. Thread-count and lane-backend
  /// changes rebuild the device (the live device's shape — pool AND
  /// resolved backend — is immutable, see Louvain::set_config);
  /// anything else is a config swap on the warm instance.
  core::Louvain& runner_for(const Options& options) {
    core::Config cfg = core::to_config(options, base_);
    cfg.warm_start.reset();  // passed explicitly in run(); keep the
                             // kept config from pinning the seed arrays
    const unsigned want =
        cfg.device.worker_threads ? cfg.device.worker_threads : cfg.threads;
    const simt::Backend backend = simt::resolve_backend(cfg.device.backend);
    if (!runner_ || want != runner_threads_ || backend != runner_backend_) {
      runner_ = std::make_unique<core::Louvain>(cfg);
      runner_threads_ = want;
      runner_backend_ = backend;
    } else {
      runner_->set_config(cfg);
    }
    return *runner_;
  }

  core::Config base_;
  std::unique_ptr<core::Louvain> runner_;
  unsigned runner_threads_ = ~0u;
  simt::Backend runner_backend_ = simt::Backend::kAuto;
};

class SeqDetector final : public Detector {
 public:
  std::string_view name() const noexcept override { return "seq"; }

  Result run(const graph::Csr& graph, const Options& options,
             obs::Recorder* recorder) override {
    seq::Config cfg;
    static_cast<Options&>(cfg) = options;
    if (options.storage != Storage::kPlain) {
      check_z_compatible(options, name());
      const zg::ZCsr z = zg::ZCsr::encode(graph);
      return from_louvain(seq::louvain_z(z, cfg, recorder));
    }
    if (options.warm_start) {
      return from_louvain(seq::louvain_warm(graph, options.warm_start->seed,
                                            options.warm_start->frontier, cfg,
                                            recorder));
    }
    return from_louvain(seq::louvain(graph, cfg, recorder));
  }

  Result run_z(const zg::ZCsr& z, const Options& options,
               obs::Recorder* recorder) override {
    seq::Config cfg;
    static_cast<Options&>(cfg) = options;
    cfg.warm_start.reset();
    return from_louvain(seq::louvain_z(z, cfg, recorder));
  }
};

class PlmDetector final : public Detector {
 public:
  std::string_view name() const noexcept override { return "plm"; }

  Result run(const graph::Csr& graph, const Options& options,
             obs::Recorder* recorder) override {
    if (options.storage != Storage::kPlain) {
      throw std::invalid_argument(
          "plm: compressed storage is not supported (use --storage plain)");
    }
    plm::Config cfg;
    static_cast<Options&>(cfg) = options;
    return from_louvain(plm::louvain(graph, cfg, recorder));
  }
};

class MultiDetector final : public Detector {
 public:
  explicit MultiDetector(const Extensions& ext) : ext_(ext) {}

  std::string_view name() const noexcept override { return "multi"; }

  Result run(const graph::Csr& graph, const Options& options,
             obs::Recorder* recorder) override {
    if (options.storage != Storage::kPlain) {
      throw std::invalid_argument(
          "multi: compressed storage is not supported (use --storage plain)");
    }
    multi::Config cfg = ext_.multi;
    static_cast<Options&>(cfg) = options;
    // The core extension governs every simulated device; multi's own
    // louvain() runs it through the canonical Options -> Config path.
    cfg.core = ext_.core;
    multi::Result mr = multi::louvain(graph, cfg, recorder);
    return static_cast<Result&&>(std::move(mr));  // slice off multi extras
  }

 private:
  Extensions ext_;
};

/// Sharded multi-device Louvain (DESIGN.md §14). Keeps its engine
/// (device + workspace) warm across runs, exactly like CoreDetector —
/// the svc device pool relies on this for cheap repeated jobs.
class ShardDetector final : public Detector {
 public:
  explicit ShardDetector(const Extensions& ext) : base_(ext.shard) {}

  std::string_view name() const noexcept override { return "shard"; }

  Result run(const graph::Csr& graph, const Options& options,
             obs::Recorder* recorder) override {
    if (options.storage != Storage::kPlain) {
      throw std::invalid_argument(
          "shard: compressed storage is not supported (use --storage plain)");
    }
    if (options.warm_start) {
      throw std::invalid_argument(
          "shard: warm_start is not supported (shards are rebuilt per run)");
    }
    if (options.use_coloring) {
      throw std::invalid_argument(
          "shard: use_coloring is not supported (moves are serialized by "
          "the shard round structure)");
    }
    shard::Result sr = engine_for(options).run(graph, recorder);
    return static_cast<Result&&>(std::move(sr));  // slice off shard extras
  }

 private:
  shard::Engine& engine_for(const Options& options) {
    shard::Config cfg = shard::to_config(options, base_);
    cfg.warm_start.reset();
    const unsigned want = cfg.core.device.worker_threads
                              ? cfg.core.device.worker_threads
                              : cfg.threads;
    const simt::Backend backend =
        simt::resolve_backend(cfg.core.device.backend);
    if (!engine_ || want != engine_threads_ || backend != engine_backend_) {
      engine_ = std::make_unique<shard::Engine>(cfg);
      engine_threads_ = want;
      engine_backend_ = backend;
    } else {
      engine_->set_config(cfg);
    }
    return *engine_;
  }

  shard::Config base_;
  std::unique_ptr<shard::Engine> engine_;
  unsigned engine_threads_ = ~0u;
  simt::Backend engine_backend_ = simt::Backend::kAuto;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Factory, std::less<>> factories;

  Registry() {
    factories.emplace("core", [](const Extensions& ext) {
      return std::make_unique<CoreDetector>(ext);
    });
    factories.emplace("seq", [](const Extensions&) {
      return std::make_unique<SeqDetector>();
    });
    factories.emplace("plm", [](const Extensions&) {
      return std::make_unique<PlmDetector>();
    });
    factories.emplace("multi", [](const Extensions& ext) {
      return std::make_unique<MultiDetector>(ext);
    });
    factories.emplace("shard", [](const Extensions& ext) {
      return std::make_unique<ShardDetector>(ext);
    });
  }
};

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace

util::StatusOr<std::unique_ptr<Detector>> make(std::string_view backend,
                                               const Extensions& ext) {
  Factory factory;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.factories.find(backend);
    if (it == reg.factories.end()) {
      return util::Status::invalid_argument("unknown detection backend: " +
                                            std::string(backend));
    }
    factory = it->second;
  }
  return factory(ext);
}

std::vector<std::string> backend_names() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.factories.size());
  for (const auto& [name, factory] : reg.factories) names.push_back(name);
  return names;
}

bool register_backend(std::string name, Factory factory) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.factories.emplace(std::move(name), std::move(factory)).second;
}

}  // namespace glouvain::detect
