#include "detect/detector.hpp"

#include <map>
#include <mutex>

#include "core/louvain.hpp"
#include "obs/recorder.hpp"
#include "plm/plm.hpp"
#include "seq/louvain.hpp"

namespace glouvain::detect {

namespace {

Result from_louvain(LouvainResult&& base) {
  Result r;
  static_cast<LouvainResult&>(r) = std::move(base);
  return r;
}

/// GPU-style Louvain on the software SIMT device. Keeps its device
/// (thread pool + shared arenas) warm across runs — the svc device
/// pool holds one of these per pooled slot — and rebuilds it only when
/// the requested worker-thread count changes.
class CoreDetector final : public Detector {
 public:
  explicit CoreDetector(const Extensions& ext) : base_(ext.core) {}

  std::string_view name() const noexcept override { return "core"; }

  Result run(const graph::Csr& graph, const Options& options,
             obs::Recorder* recorder) override {
    core::Config cfg = base_;
    static_cast<Options&>(cfg) = options;
    cfg.warm_start.reset();  // passed explicitly below; keep the kept
                             // config from pinning the seed arrays
    const unsigned want =
        cfg.device.worker_threads ? cfg.device.worker_threads : cfg.threads;
    if (!runner_ || want != runner_threads_) {
      runner_ = std::make_unique<core::Louvain>(cfg);
      runner_threads_ = want;
    } else {
      runner_->set_config(cfg);
    }
    if (options.warm_start) {
      return runner_->run_warm(graph, options.warm_start->seed,
                               options.warm_start->frontier, recorder);
    }
    return runner_->run(graph, recorder);
  }

 private:
  core::Config base_;
  std::unique_ptr<core::Louvain> runner_;
  unsigned runner_threads_ = ~0u;
};

class SeqDetector final : public Detector {
 public:
  std::string_view name() const noexcept override { return "seq"; }

  Result run(const graph::Csr& graph, const Options& options,
             obs::Recorder* recorder) override {
    seq::Config cfg;
    static_cast<Options&>(cfg) = options;
    if (options.warm_start) {
      return from_louvain(seq::louvain_warm(graph, options.warm_start->seed,
                                            options.warm_start->frontier, cfg,
                                            recorder));
    }
    return from_louvain(seq::louvain(graph, cfg, recorder));
  }
};

class PlmDetector final : public Detector {
 public:
  std::string_view name() const noexcept override { return "plm"; }

  Result run(const graph::Csr& graph, const Options& options,
             obs::Recorder* recorder) override {
    plm::Config cfg;
    static_cast<Options&>(cfg) = options;
    return from_louvain(plm::louvain(graph, cfg, recorder));
  }
};

class MultiDetector final : public Detector {
 public:
  explicit MultiDetector(const Extensions& ext) : ext_(ext) {}

  std::string_view name() const noexcept override { return "multi"; }

  Result run(const graph::Csr& graph, const Options& options,
             obs::Recorder* recorder) override {
    multi::Config cfg = ext_.multi;
    cfg.device = ext_.core;  // the core extension governs every device
    static_cast<Options&>(cfg.device) = options;
    multi::Result mr = multi::louvain(graph, cfg, recorder);
    return static_cast<Result&&>(std::move(mr));  // slice off multi extras
  }

 private:
  Extensions ext_;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Factory, std::less<>> factories;

  Registry() {
    factories.emplace("core", [](const Extensions& ext) {
      return std::make_unique<CoreDetector>(ext);
    });
    factories.emplace("seq", [](const Extensions&) {
      return std::make_unique<SeqDetector>();
    });
    factories.emplace("plm", [](const Extensions&) {
      return std::make_unique<PlmDetector>();
    });
    factories.emplace("multi", [](const Extensions& ext) {
      return std::make_unique<MultiDetector>(ext);
    });
  }
};

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace

util::StatusOr<std::unique_ptr<Detector>> make(std::string_view backend,
                                               const Extensions& ext) {
  Factory factory;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.factories.find(backend);
    if (it == reg.factories.end()) {
      return util::Status::invalid_argument("unknown detection backend: " +
                                            std::string(backend));
    }
    factory = it->second;
  }
  return factory(ext);
}

std::vector<std::string> backend_names() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.factories.size());
  for (const auto& [name, factory] : reg.factories) names.push_back(name);
  return names;
}

bool register_backend(std::string name, Factory factory) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.factories.emplace(std::move(name), std::move(factory)).second;
}

}  // namespace glouvain::detect
