// The unified detection API: one polymorphic interface over every
// community-detection backend in the library, plus a name registry.
//
//   auto detector = detect::make("core");        // StatusOr
//   obs::Recorder recorder;
//   detect::Result r = (*detector)->run(graph, {.thresholds = ...},
//                                       &recorder);
//
// The service layer and the CLI dispatch exclusively through this
// interface — no per-backend branches. Detectors may be stateful
// (the core detector keeps its simt device + arenas warm across runs,
// which is what the svc device pool relies on); one detector instance
// must not be run from two threads at once.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "detect/options.hpp"
#include "detect/result.hpp"
#include "graph/csr.hpp"
#include "multi/multi.hpp"
#include "shard/engine.hpp"
#include "util/status.hpp"
#include "zg/zcsr.hpp"

namespace glouvain::obs {
class Recorder;
}

namespace glouvain::detect {

/// Backend-specific knobs that survived the Config consolidation.
/// The Options slice inside each member is overwritten by the Options
/// passed to run(), so only the extension fields matter here. The
/// core extension also configures `multi`'s per-device runs.
struct Extensions {
  core::Config core;
  multi::Config multi;
  shard::Config shard;
};

class Detector {
 public:
  virtual ~Detector() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Run the full multi-level pipeline. `recorder` may be null (the
  /// zero-overhead path); when set, the run emits the per-level span
  /// tree and counters described in obs/recorder.hpp.
  ///
  /// Options::storage selects the level-0 adjacency layout: backends
  /// with a compressed path ("core", "seq") encode the graph and run
  /// it, others throw std::invalid_argument on non-plain storage.
  virtual Result run(const graph::Csr& graph, const Options& options,
                     obs::Recorder* recorder = nullptr) = 0;

  /// Run directly from a compressed graph (a zg::ZCsr — typically the
  /// view of a mapped .zg container, so the plain arrays never
  /// materialize). The base implementation decodes to a plain Csr and
  /// delegates to run(); "core" and "seq" override with their native
  /// compressed paths. Options::storage and warm_start are ignored
  /// here (the input is already compressed; warm starts need plain
  /// rows).
  virtual Result run_z(const zg::ZCsr& z, const Options& options,
                       obs::Recorder* recorder = nullptr);
};

using Factory = std::function<std::unique_ptr<Detector>(const Extensions&)>;

/// Instantiate a registered backend ("core" | "seq" | "plm" | "multi",
/// plus anything added via register_backend). Unknown names yield
/// kInvalidArgument.
util::StatusOr<std::unique_ptr<Detector>> make(std::string_view backend,
                                               const Extensions& ext = {});

/// Registered backend names, sorted.
std::vector<std::string> backend_names();

/// Extend the registry (tests, experiments). Returns false if the name
/// was already taken.
bool register_backend(std::string name, Factory factory);

}  // namespace glouvain::detect
