// The shared algorithm options every detection backend understands —
// the consolidation of the former near-duplicate core::Config /
// seq::Config / plm::Config common fields. Backend-specific knobs live
// in extension structs that INHERIT from Options (core::Config,
// seq::Config, plm::Config are now thin derived types), so existing
// call sites compile unchanged while detect::Detector::run() can slice
// a uniform Options into any backend. Header-only and dependency-free
// below every backend.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "core/common.hpp"
#include "simt/backend.hpp"

namespace glouvain::detect {

/// Warm-start request: seed the level-0 partition from a previous run
/// instead of all-singletons and re-optimize only `frontier` before
/// falling through to the normal aggregation hierarchy. Produced by the
/// stream subsystem (stream::Session computes the frontier from a
/// delta); honored by the "core" and "seq" backends, ignored — a full
/// cold run, never a stale result — by backends without a warm path.
struct WarmStart {
  /// Previous partition: one dense label (< num_vertices) per vertex.
  std::vector<graph::Community> seed;
  /// Vertices the level-0 sweep may move; empty = every vertex (a full
  /// re-optimization that still skips the singleton bootstrap).
  std::vector<graph::VertexId> frontier;
};

/// Adjacency storage driving level 0 of a run (detect/README of the
/// zg subsystem: DESIGN.md §12). kPlain reads the Csr arrays directly.
/// kZcsr varint-compresses the level-0 adjacency and decodes rows
/// through per-worker cursors; kMmap is the same decode path over a
/// file-backed mapping (meaningful when the input is a .zg container —
/// for in-memory graphs it behaves like kZcsr). Partitions are
/// bitwise-identical across all three. Honored by the "core" and "seq"
/// backends; backends without a compressed path reject non-plain
/// storage with std::invalid_argument.
enum class Storage { kPlain, kZcsr, kMmap };

constexpr const char* storage_name(Storage s) noexcept {
  switch (s) {
    case Storage::kZcsr: return "zcsr";
    case Storage::kMmap: return "mmap";
    default: return "plain";
  }
}

/// Parse a storage-mode name; returns false (and leaves `out` alone)
/// on an unknown name.
inline bool parse_storage(std::string_view name, Storage& out) noexcept {
  if (name == "plain") { out = Storage::kPlain; return true; }
  if (name == "zcsr") { out = Storage::kZcsr; return true; }
  if (name == "mmap") { out = Storage::kMmap; return true; }
  return false;
}

/// Graph partition strategy of the sharded multi-device backend
/// ("shard"): how vertices are assigned to the k edge-cut shards.
/// Ignored by every other backend.
enum class Partition {
  /// Contiguous vertex-id ranges balanced by arc count.
  kBlock,
  /// Hash-based assignment (the paper's "initial random vertex
  /// partitioning"; the conclusion's coarse-grained observation).
  kRandom,
  /// Arc-balanced block ranges for low-degree vertices; high-degree
  /// hubs (degree above the paper's top modopt bucket bound) are
  /// placed with the plurality of their neighbours and row-replicated
  /// into every shard they touch (the vertex-cut mirror idiom).
  kHubRep,
};

constexpr const char* partition_name(Partition p) noexcept {
  switch (p) {
    case Partition::kBlock: return "block";
    case Partition::kRandom: return "random";
    default: return "hubrep";
  }
}

/// Parse a partition-strategy name; returns false (and leaves `out`
/// alone) on an unknown name.
inline bool parse_partition(std::string_view name, Partition& out) noexcept {
  if (name == "block") { out = Partition::kBlock; return true; }
  if (name == "random") { out = Partition::kRandom; return true; }
  if (name == "hubrep") { out = Partition::kHubRep; return true; }
  return false;
}

/// Materialization of each shard's local sub-CSR ("shard" backend
/// only). kPlain keeps the partitioned local graphs resident; kMmap
/// encodes each one into a zg container on disk (zg::save) and maps it
/// back for the rounds that sweep it (zg::MappedGraph), so resident
/// memory stays roughly the global graph plus the shards currently
/// being swept — graphs larger than RAM partition cleanly. The decode
/// is bitwise (DESIGN.md §12), so results are identical across both.
enum class ShardStorage { kPlain, kMmap };

constexpr const char* shard_storage_name(ShardStorage s) noexcept {
  return s == ShardStorage::kMmap ? "mmap" : "plain";
}

/// Parse a shard-storage name; returns false (and leaves `out` alone)
/// on an unknown name.
inline bool parse_shard_storage(std::string_view name,
                                ShardStorage& out) noexcept {
  if (name == "plain") { out = ShardStorage::kPlain; return true; }
  if (name == "mmap") { out = ShardStorage::kMmap; return true; }
  return false;
}

/// Slot layout of the task-local neighbour-community hash tables used
/// by the GPU-style backend's modularity-optimization kernels. Ignored
/// by backends without such tables (seq, plm).
enum class TableLayout {
  /// kNull sentinel in the key array (core::LocalCommunityHashMap):
  /// the paper's layout, clear() rewrites every key slot.
  kSentinel,
  /// Bit-packed occupancy words beside the key array
  /// (zg::OccCommunityHashMap): clear() zeroes capacity/32 words. The
  /// probe sequence is identical, so results are bitwise-unchanged.
  kOccupancy,
};

constexpr const char* table_layout_name(TableLayout t) noexcept {
  return t == TableLayout::kOccupancy ? "occ" : "sentinel";
}

/// Parse a table-layout name; returns false (and leaves `out` alone)
/// on an unknown name.
inline bool parse_table_layout(std::string_view name,
                               TableLayout& out) noexcept {
  if (name == "sentinel") { out = TableLayout::kSentinel; return true; }
  if (name == "occ") { out = TableLayout::kOccupancy; return true; }
  return false;
}

struct Options {
  /// The paper's adaptive t_bin/t_final schedule (§5).
  ThresholdSchedule thresholds;
  int max_levels = 64;
  int max_sweeps_per_level = 1000;
  /// Worker threads: the simt device's lane workers for `core` (0 =
  /// hardware concurrency), the shared pool for `plm` (0 = global pool
  /// as-is); ignored by the strictly sequential backend.
  unsigned threads = 0;
  /// Null = cold start. Shared so copying Options never copies the
  /// O(n) seed/frontier arrays.
  std::shared_ptr<const WarmStart> warm_start;
  /// Level-0 adjacency storage (see Storage above). Incompatible with
  /// warm_start and use_coloring — both need the plain arrays.
  Storage storage = Storage::kPlain;
  /// Lane substrate for the GPU-style backend's kernels: kScalar is
  /// the lockstep interpreter (bitwise-stable partitions), kVector the
  /// AVX2 lowering, kAuto picks vector iff the CPU supports it.
  /// Ignored by backends without a simt device (seq, plm).
  simt::Backend device = simt::Backend::kAuto;
  /// Hash-table slot layout for the GPU-style backend (see TableLayout).
  TableLayout table_layout = TableLayout::kSentinel;
  /// Serialize moves by a proper graph coloring (Lu et al. [16])
  /// instead of hash-partitioned sub-rounds. GPU-style backend only;
  /// requires plain storage.
  bool use_coloring = false;
  /// Sharded backend only: number of edge-cut shards (0 and 1 both
  /// mean a single shard, which is bitwise-identical to "core").
  unsigned shards = 1;
  /// Sharded backend only: how vertices are assigned to shards.
  Partition partition = Partition::kHubRep;
  /// Seed of the random/hubrep partitioners. Folded into svc job keys
  /// (a different partition is a different computation).
  std::uint64_t partition_seed = 1;
  /// Sharded backend only: run each round's k shard sweeps
  /// CONCURRENTLY on devices leased from a pool (barrier-synchronized
  /// Jacobi rounds — every shard sees the round-start labels, moves
  /// publish at the barrier) instead of sequentially on one device
  /// (Gauss-Seidel rounds). Results are deterministic for a given
  /// (graph, options) regardless of how many devices the pool grants;
  /// they differ from the sequential schedule, so the flag is folded
  /// into svc job keys.
  bool concurrent_shards = false;
  /// Sharded backend only: shard sub-CSR materialization (see
  /// ShardStorage). Bitwise-invariant.
  ShardStorage shard_storage = ShardStorage::kPlain;
};

}  // namespace glouvain::detect
