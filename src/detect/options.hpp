// The shared algorithm options every detection backend understands —
// the consolidation of the former near-duplicate core::Config /
// seq::Config / plm::Config common fields. Backend-specific knobs live
// in extension structs that INHERIT from Options (core::Config,
// seq::Config, plm::Config are now thin derived types), so existing
// call sites compile unchanged while detect::Detector::run() can slice
// a uniform Options into any backend. Header-only and dependency-free
// below every backend.
#pragma once

#include <memory>
#include <vector>

#include "core/common.hpp"

namespace glouvain::detect {

/// Warm-start request: seed the level-0 partition from a previous run
/// instead of all-singletons and re-optimize only `frontier` before
/// falling through to the normal aggregation hierarchy. Produced by the
/// stream subsystem (stream::Session computes the frontier from a
/// delta); honored by the "core" and "seq" backends, ignored — a full
/// cold run, never a stale result — by backends without a warm path.
struct WarmStart {
  /// Previous partition: one dense label (< num_vertices) per vertex.
  std::vector<graph::Community> seed;
  /// Vertices the level-0 sweep may move; empty = every vertex (a full
  /// re-optimization that still skips the singleton bootstrap).
  std::vector<graph::VertexId> frontier;
};

struct Options {
  /// The paper's adaptive t_bin/t_final schedule (§5).
  ThresholdSchedule thresholds;
  int max_levels = 64;
  int max_sweeps_per_level = 1000;
  /// Worker threads: the simt device's lane workers for `core` (0 =
  /// hardware concurrency), the shared pool for `plm` (0 = global pool
  /// as-is); ignored by the strictly sequential backend.
  unsigned threads = 0;
  /// Null = cold start. Shared so copying Options never copies the
  /// O(n) seed/frontier arrays.
  std::shared_ptr<const WarmStart> warm_start;
};

}  // namespace glouvain::detect
