// The shared algorithm options every detection backend understands —
// the consolidation of the former near-duplicate core::Config /
// seq::Config / plm::Config common fields. Backend-specific knobs live
// in extension structs that INHERIT from Options (core::Config,
// seq::Config, plm::Config are now thin derived types), so existing
// call sites compile unchanged while detect::Detector::run() can slice
// a uniform Options into any backend. Header-only and dependency-free
// below every backend.
#pragma once

#include "core/common.hpp"

namespace glouvain::detect {

struct Options {
  /// The paper's adaptive t_bin/t_final schedule (§5).
  ThresholdSchedule thresholds;
  int max_levels = 64;
  int max_sweeps_per_level = 1000;
  /// Worker threads: the simt device's lane workers for `core` (0 =
  /// hardware concurrency), the shared pool for `plm` (0 = global pool
  /// as-is); ignored by the strictly sequential backend.
  unsigned threads = 0;
};

}  // namespace glouvain::detect
