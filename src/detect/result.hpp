// The uniform detection result returned by every backend through the
// detect::Detector interface: the common LouvainResult (community
// labels, modularity, per-level reports, dendrogram, timings) plus the
// device diagnostics that are zero for backends that never touch a
// simt device. core::Result is an alias of this type, so the service
// cache and all existing call sites share one currency.
#pragma once

#include <cstdint>

#include "core/common.hpp"

namespace glouvain::detect {

/// Diagnostics of the software SIMT device (zeroes for seq/plm).
struct DeviceStats {
  std::uint64_t shared_spills = 0;  ///< hash tables that overflowed the
                                    ///< shared arena into heap storage
  unsigned workers = 0;             ///< device worker threads used
};

struct Result : LouvainResult {
  DeviceStats device;
};

}  // namespace glouvain::detect
