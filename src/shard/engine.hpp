// The sharded multi-device Louvain driver (DESIGN.md §14): k edge-cut
// shards, per-shard move phases on the simt device, inter-round halo
// exchange of ghost community/tot, and a global aggregation that
// rebuilds the shards per level.
//
// Execution model: in the default sequential mode — exactly like the
// multi subsystem this supersedes — the k "devices" are simulated
// sequentially on a single warm simt::Device that uses the full worker
// pool for each shard (Gauss-Seidel rounds: later shards of a round
// see earlier shards' moves). With Options::concurrent_shards the
// rounds become BARRIER-SYNCHRONIZED JACOBI rounds on real host
// concurrency: each round leases up to k devices from a
// simt::DevicePool, every shard sweeps as a task on its leased device
// against the round-start snapshot of the global labels/tots, move
// proposals buffer lane-locally, and the barrier commits them in
// gain-sorted order, RE-DECIDING each proposer's destination against
// the partially-committed view with the core gain rule (cross-shard
// swap/overcrowd oscillations are redirected or dropped, never
// published) before running the halo exchange — deterministic for a
// given (graph, options) no matter how many devices the pool grants
// (DESIGN.md §14, "device placement and leasing"). In sequential mode
// wall clock measures TOTAL work; the distributed figure of merit is
// the modeled device-parallel critical path
//
//     Σ_rounds ( max_shard(marshal + phase) + exchange )
//
// emitted twice: as measured seconds (shard/critical_ns — a noisy
// diagnostic on a timeshared CPU) and as deterministic work units
// (shard/critical_work, see Result::critical_work — what
// bench/shard_scale gates monotone-decreasing in k). DESIGN.md §14
// maps each piece to the real multi-GPU deployment (one device per
// shard, NCCL halo messages, an all-reduce for tot).
//
// Semantics: every shard's local graph carries a phantom "rest of
// world" self-loop so its total_weight() equals the GLOBAL 2m, and
// frozen ghost/replica slots are seeded with exchanged global labels
// and community totals — so local move gains equal global gains and
// per-shard quality tracks the sequential algorithm (the ≥98% gate).
// With shards <= 1 (or once a contracted level drops below
// min_shard_vertices) a level runs the core::Louvain level protocol
// verbatim on the unpartitioned graph: a k=1 run is bitwise-identical
// to the "core" backend.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/louvain.hpp"
#include "shard/partition.hpp"

namespace glouvain::obs {
class Recorder;
}

namespace glouvain::simt {
class DevicePool;
class DeviceLease;
}

namespace glouvain::shard {

/// The shared knobs live in the detect::Options base (shards,
/// partition, partition_seed, thresholds, threads, device, ...); only
/// the shard machinery remains here.
struct Config : detect::Options {
  /// Per-shard phase machinery (bucket schemes, device shape). Its
  /// Options slice is overwritten by to_config().
  core::Config core;
  /// Degree above which a vertex is a replicated hub (hubrep only).
  graph::EdgeIdx hub_degree = 319;
  /// Move/exchange rounds per level before aggregating. Round r+1
  /// re-seeds every shard from the exchanged labels and only revisits
  /// the change frontier, so rounds after the first are cheap; the
  /// round loop additionally stops once a round's all-reduced moved
  /// count drops under round_move_floor (cross-shard moves
  /// need tighter settling than intra-phase sweeps, or the cut
  /// boundary freezes prematurely and quality decays with 1/k).
  int rounds_per_level = 12;
  /// Contracted levels smaller than this collapse to a single shard
  /// (the core-identical path doubles as the finishing pass).
  graph::VertexId min_shard_vertices = 1u << 13;
  /// Rounds during which dirty high-degree vertices (local degree >
  /// hub_degree) are re-scanned like everyone else. From this round
  /// on a hub re-enters the frontier only by moving itself: on a
  /// scale-free graph some neighbour of every hub moves every round,
  /// so dirty-marking alone would re-scan each hub's full row per
  /// round forever — the dominant term of the settle tail's critical
  /// path — while the hubs themselves, holding the strongest
  /// community signal, settle within the first rounds.
  int hub_settle_rounds = 2;
  /// Round stopping rule: stop the move/exchange rounds of a level
  /// once a round migrates fewer than this fraction of the level's
  /// vertices (floored at 16 absolute). The knob trades cut-boundary
  /// settling depth against rounds on the critical path; with hubs
  /// settled the tail rounds are cheap (non-hub frontier only), so a
  /// deep 0.1% floor buys quality margin for a few M arcs.
  double round_move_floor = 1e-3;
  /// Device pool for concurrent rounds (Options::concurrent_shards):
  /// the svc service injects its shared pool; null makes the engine
  /// build a private one (shards-wide, splitting Options::threads) on
  /// the first concurrent level. Ignored in sequential mode.
  std::shared_ptr<simt::DevicePool> device_pool;
  /// Directory for mmap shard containers (Options::shard_storage);
  /// "" = the system temp directory.
  std::string spill_dir;
  /// Capacity of the process-wide partition-plan cache, applied by the
  /// next Engine construction/set_config; 0 disables plan caching.
  std::size_t plan_cache_capacity = 8;
};

/// THE lowering from the canonical front-end surface, mirroring
/// core::to_config(): the Options slice of `base` (and of its inner
/// core extension) is overwritten, extension fields survive.
inline Config to_config(const detect::Options& options, Config base = {}) {
  static_cast<detect::Options&>(base) = options;
  base.core = core::to_config(options, base.core);
  return base;
}

struct Result : detect::Result {
  /// Partition diagnostics of level 0 (default-initialized when level
  /// 0 ran unsharded).
  PlanStats partition;
  /// Effective shard count at level 0 (adaptive: may be below
  /// Config::shards on small inputs).
  unsigned shards_used = 1;
  /// Total move/exchange rounds across all sharded levels.
  int exchange_rounds = 0;
  /// Modeled device-parallel critical path across all levels, seconds
  /// (see header comment; also the shard/critical_ns counters).
  /// Measured on the simulating CPU, so noisy — reported as a
  /// diagnostic; gates use critical_work.
  double critical_seconds = 0;
  /// The same critical path in DETERMINISTIC work units (arc
  /// traversals + linear marshal/exchange terms): per round, the
  /// busiest shard's sweeps × active arcs + seed marshal + state
  /// upload (round 0) or reseed, plus the O(n) tot all-reduce; plus
  /// one O(arcs) modularity evaluation per level. The unsharded path
  /// is charged (1 + sweeps) × arcs per level (upload + move sweeps —
  /// its per-sweep modularity evaluations are NOT charged, which
  /// biases the k = 1 baseline LOW, i.e. against the shards). Wall
  /// time on this one-CPU simulator folds in thread-pool launch
  /// overhead a real device does not pay per element, and is too
  /// noisy to gate; identical runs produce identical critical_work,
  /// so bench/shard_scale gates its monotone decrease in k exactly.
  double critical_work = 0;
  /// Concurrent mode: the widest device grant any level's lease got
  /// from the pool (1 = fully degraded, or sequential mode).
  unsigned devices_used = 1;
  /// Partition-plan cache traffic of this run (also the obs counters
  /// cache/plan_hit / cache/plan_miss).
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
};

/// A warm sharded runner: owns one simt device + workspace reused by
/// every shard of every run (the svc device pool keeps Engines warm
/// exactly like core::Louvain instances). Not thread-safe.
class Engine {
 public:
  explicit Engine(const Config& config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Result run(const graph::Csr& graph, obs::Recorder* recorder = nullptr);

  /// Replace the configuration, keeping the device warm. The device
  /// shape of the new config is ignored (as core::Louvain::set_config).
  void set_config(const Config& config);

  const Config& config() const noexcept { return config_; }
  simt::Device& device() noexcept { return *device_; }

 private:
  /// Effective shard count for a level of n vertices.
  unsigned shards_for(graph::VertexId n) const noexcept;

  /// Fetch (or build, spill and insert) the partition plan of
  /// `graph` through the process-wide plan cache.
  std::shared_ptr<const Plan> plan_for(const graph::Csr& graph, unsigned k,
                                       obs::Recorder* rec, Result& result);

  /// Lazily built pool for concurrent rounds (Config::device_pool when
  /// injected, else engine-owned).
  simt::DevicePool& pool();

  /// Per-device-lane scratch of the concurrent Jacobi rounds: each
  /// lane seeds and sweeps its shards against the shared round-start
  /// snapshot with private marshal buffers and its own workspace, and
  /// buffers move proposals for the barrier.
  struct ConcurrentState;

  Config config_;
  std::unique_ptr<simt::Device> device_;
  core::Workspace ws_;
  core::PhaseState state_;
  /// One resident state per shard (as one device per shard would
  /// keep): round 0 of a level uploads the local graph (reset_from,
  /// O(arcs)); later rounds only reseed the label-derived state
  /// (O(n)), which is what a real device pays after a halo update.
  std::vector<core::PhaseState> shard_states_;
  std::shared_ptr<simt::DevicePool> pool_;
  std::unique_ptr<ConcurrentState> conc_;
};

/// One-shot convenience wrapper.
Result louvain(const graph::Csr& graph, const Config& config = {},
               obs::Recorder* recorder = nullptr);

}  // namespace glouvain::shard
