#include "shard/partition.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "util/prng.hpp"

namespace glouvain::shard {

namespace {
using graph::Csr;
using graph::EdgeIdx;
using graph::VertexId;
using graph::Weight;
using graph::kInvalidVertex;

/// Contiguous ranges balanced by the arc prefix sum; `count` maps a
/// vertex to the arcs it contributes (0 to skip it entirely).
template <typename CountFn>
std::vector<unsigned> block_owners(const Csr& graph, unsigned k,
                                   CountFn&& count) {
  const VertexId n = graph.num_vertices();
  std::vector<unsigned> owner(n, 0);
  double total = 0;
  for (VertexId v = 0; v < n; ++v) total += static_cast<double>(count(v));
  double cum = 0;
  unsigned s = 0;
  for (VertexId v = 0; v < n; ++v) {
    owner[v] = s;
    cum += static_cast<double>(count(v));
    while (s + 1 < k && cum >= total * (s + 1) / k) ++s;
  }
  return owner;
}

std::vector<unsigned> assign_owners(const Csr& graph,
                                    const PartitionConfig& config, unsigned k,
                                    std::vector<bool>& is_hub) {
  const VertexId n = graph.num_vertices();
  is_hub.assign(n, false);
  switch (config.strategy) {
    case detect::Partition::kBlock:
      return block_owners(graph, k, [&](VertexId v) { return graph.degree(v); });
    case detect::Partition::kRandom: {
      std::vector<unsigned> owner(n);
      for (VertexId v = 0; v < n; ++v) {
        owner[v] = static_cast<unsigned>(
            util::hash64(static_cast<std::uint64_t>(v) ^ config.seed) % k);
      }
      return owner;
    }
    case detect::Partition::kHubRep:
      break;
  }
  // hubrep: balance the block ranges over NON-hub arcs (a block range
  // that swallows a hub row is exactly the imbalance this strategy
  // exists to avoid), then place each hub with the plurality of its
  // neighbours. Hub neighbours vote with their tentative block slot.
  // Hubs cluster (the rich club connects to itself), so pure plurality
  // piles them into one shard; a capacity cap redirects an over-full
  // plurality choice to the best under-cap shard instead.
  for (VertexId v = 0; v < n; ++v) {
    is_hub[v] = graph.degree(v) > config.hub_degree;
  }
  std::vector<unsigned> owner = block_owners(
      graph, k, [&](VertexId v) { return is_hub[v] ? 0 : graph.degree(v); });

  // Arc load per shard so far (non-hub block ranges are even by
  // construction), and the per-shard cap that bounds imbalance.
  std::vector<double> load(k, 0);
  double total_arcs = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (!is_hub[v]) {
      load[owner[v]] += static_cast<double>(graph.degree(v));
      total_arcs += static_cast<double>(graph.degree(v));
    } else {
      total_arcs += static_cast<double>(graph.degree(v));
    }
  }
  const double cap = 1.05 * total_arcs / k;

  // Heaviest hubs first: they have the least placement freedom.
  std::vector<VertexId> hubs;
  for (VertexId v = 0; v < n; ++v) {
    if (is_hub[v]) hubs.push_back(v);
  }
  std::sort(hubs.begin(), hubs.end(), [&](VertexId a, VertexId b) {
    const auto da = graph.degree(a), db = graph.degree(b);
    return da != db ? da > db : a < b;
  });

  std::vector<std::uint64_t> votes(k);
  for (const VertexId h : hubs) {
    std::fill(votes.begin(), votes.end(), 0);
    for (const VertexId u : graph.neighbors(h)) {
      if (u != h) ++votes[owner[u]];
    }
    const double deg = static_cast<double>(graph.degree(h));
    unsigned best = k;  // best under-cap shard by votes
    std::uint64_t best_votes = 0;
    unsigned lightest = 0;
    for (unsigned s = 0; s < k; ++s) {
      if (load[s] < load[lightest]) lightest = s;
      if (load[s] + deg > cap) continue;
      if (best == k || votes[s] > best_votes) {
        best_votes = votes[s];
        best = s;
      }
    }
    // Every shard over cap (possible once the cap fills): fall back to
    // the lightest, which keeps the maximum load minimal.
    if (best == k) best = lightest;
    owner[h] = best;
    load[best] += deg;
  }
  return owner;
}

}  // namespace

Plan make_plan(const Csr& graph, const PartitionConfig& config) {
  const VertexId n = graph.num_vertices();
  const unsigned k =
      std::max(1u, std::min(config.num_shards, std::max<VertexId>(n, 1)));

  Plan plan;
  plan.num_shards = k;
  std::vector<bool> is_hub;
  plan.owner = assign_owners(graph, config, k, is_hub);
  const std::vector<unsigned>& owner = plan.owner;
  plan.shards.resize(k);
  plan.exchange.recv.assign(k, std::vector<std::vector<VertexId>>(k));
  plan.exchange.send.assign(k, std::vector<std::vector<VertexId>>(k));

  // --- global cut/ownership accounting (min-endpoint edge rule).
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = graph.neighbors(v);
    for (const VertexId u : nbrs) {
      if (u < v) continue;  // count each undirected edge once
      if (owner[u] != owner[v]) ++plan.stats.cut_edges;
      ++plan.shards[owner[std::min(u, v)]].owned_edges;
    }
  }
  plan.stats.cut_fraction =
      graph.num_edges() > 0
          ? static_cast<double>(plan.stats.cut_edges) /
                static_cast<double>(graph.num_edges())
          : 0;

  // --- owned lists (ascending by construction of the v loop).
  std::vector<std::vector<VertexId>> owned(k);
  for (VertexId v = 0; v < n; ++v) owned[owner[v]].push_back(v);

  // --- hub mirrors: every shard owning a neighbour of hub h reads h,
  // so it receives a frozen replica carrying h's edges INTO that shard
  // (the split row — never the full row, which would drag the rest of
  // the graph in as ghosts).
  std::vector<std::vector<VertexId>> replicas(k);
  std::vector<bool> hub_mirrored(n, false);
  {
    std::vector<bool> touches(k);
    for (VertexId h = 0; h < n; ++h) {
      if (!is_hub[h]) continue;
      std::fill(touches.begin(), touches.end(), false);
      for (const VertexId u : graph.neighbors(h)) touches[owner[u]] = true;
      for (unsigned s = 0; s < k; ++s) {
        if (touches[s] && s != owner[h]) {
          replicas[s].push_back(h);
          hub_mirrored[h] = true;
        }
      }
    }
    for (auto& list : replicas) std::sort(list.begin(), list.end());
    for (VertexId h = 0; h < n; ++h) {
      if (hub_mirrored[h]) ++plan.stats.replicated_hubs;
    }
  }

  // --- per-shard assembly.
  const Weight global_2m = graph.total_weight();
  std::vector<VertexId> local_id(n, kInvalidVertex);
  std::vector<VertexId> ghosts;
  std::uint64_t frozen_total = 0;
  EdgeIdx max_arcs = 0;
  EdgeIdx sum_arcs = 0;

  for (unsigned s = 0; s < k; ++s) {
    Shard& shard = plan.shards[s];
    const std::vector<VertexId>& own = owned[s];
    const std::vector<VertexId>& reps = replicas[s];

    // Ghosts: non-hub endpoints of owned rows living elsewhere (hub
    // endpoints are covered by the replica mirrors above).
    ghosts.clear();
    for (const VertexId v : own) {
      for (const VertexId u : graph.neighbors(v)) {
        if (owner[u] == s || is_hub[u]) continue;
        if (local_id[u] == kInvalidVertex) {
          local_id[u] = 0;  // seen-mark; real ids assigned below
          ghosts.push_back(u);
        }
      }
    }
    for (const VertexId g : ghosts) local_id[g] = kInvalidVertex;
    std::sort(ghosts.begin(), ghosts.end());

    shard.num_owned = static_cast<VertexId>(own.size());
    shard.num_replica = static_cast<VertexId>(reps.size());
    shard.num_ghost = static_cast<VertexId>(ghosts.size());
    shard.has_phantom = k > 1;
    const VertexId local_n = shard.num_owned + shard.num_replica +
                             shard.num_ghost + (shard.has_phantom ? 1 : 0);

    shard.global_of.clear();
    shard.global_of.reserve(local_n);
    const auto admit = [&](const std::vector<VertexId>& list) {
      for (const VertexId v : list) {
        local_id[v] = static_cast<VertexId>(shard.global_of.size());
        shard.global_of.push_back(v);
      }
    };
    admit(own);
    admit(reps);
    admit(ghosts);
    if (shard.has_phantom) shard.global_of.push_back(kInvalidVertex);

    // Row widths: full rows for owned, split rows for replicas, empty
    // for ghosts, one self-loop for the phantom.
    std::vector<EdgeIdx> offsets(static_cast<std::size_t>(local_n) + 1, 0);
    for (VertexId i = 0; i < shard.num_owned; ++i) {
      offsets[i + 1] = graph.degree(shard.global_of[i]);
    }
    for (VertexId i = shard.num_owned; i < shard.num_owned + shard.num_replica;
         ++i) {
      const VertexId h = shard.global_of[i];
      EdgeIdx width = 0;
      for (const VertexId u : graph.neighbors(h)) width += owner[u] == s;
      offsets[i + 1] = width;
    }
    if (shard.has_phantom) offsets[local_n] = 1;
    for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

    std::vector<VertexId> adj(offsets.back());
    std::vector<Weight> weights(offsets.back());
    Weight local_sum = 0;
    for (VertexId i = 0; i < shard.num_owned + shard.num_replica; ++i) {
      const VertexId v = shard.global_of[i];
      const bool split = i >= shard.num_owned;
      EdgeIdx at = offsets[i];
      const auto nbrs = graph.neighbors(v);
      const auto wts = graph.weights(v);
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        if (split && owner[nbrs[e]] != s) continue;
        assert(local_id[nbrs[e]] != kInvalidVertex);
        adj[at] = local_id[nbrs[e]];
        weights[at] = wts[e];
        local_sum += wts[e];
        ++at;
      }
      assert(at == offsets[i + 1]);
    }
    if (shard.has_phantom) {
      shard.pad_weight = std::max<Weight>(0, global_2m - local_sum);
      adj[offsets.back() - 1] = local_n - 1;
      weights[offsets.back() - 1] = shard.pad_weight;
    }

    const EdgeIdx arcs = offsets[shard.num_owned + shard.num_replica];
    max_arcs = std::max(max_arcs, arcs);
    sum_arcs += arcs;
    // shard.local is not assembled yet, so count the frozen slots
    // directly rather than through num_frozen().
    frozen_total += shard.num_replica + shard.num_ghost +
                    (shard.has_phantom ? 1 : 0);

    shard.local = Csr(std::move(offsets), std::move(adj), std::move(weights));
    shard.local_arcs = shard.local.num_arcs();

    // Exchange plan: every frozen non-phantom slot is one label read
    // from its owner per round.
    for (VertexId i = shard.num_owned;
         i < shard.num_owned + shard.num_replica + shard.num_ghost; ++i) {
      const VertexId v = shard.global_of[i];
      plan.exchange.recv[s][owner[v]].push_back(v);
    }
    for (unsigned p = 0; p < k; ++p) {
      std::sort(plan.exchange.recv[s][p].begin(),
                plan.exchange.recv[s][p].end());
    }

    // Reset the map for the next shard (only entries this shard set).
    for (const VertexId v : shard.global_of) {
      if (v != kInvalidVertex) local_id[v] = kInvalidVertex;
    }
  }

  for (unsigned s = 0; s < k; ++s) {
    for (unsigned p = 0; p < k; ++p) {
      plan.exchange.send[p][s] = plan.exchange.recv[s][p];
    }
  }

  plan.stats.ghost_ratio =
      n > 0 ? static_cast<double>(frozen_total) / static_cast<double>(n) : 0;
  plan.stats.imbalance =
      sum_arcs > 0 ? static_cast<double>(max_arcs) * k /
                         static_cast<double>(sum_arcs)
                   : 1.0;
  return plan;
}

SpillSet::~SpillSet() {
  for (const std::string& path : paths_) std::remove(path.c_str());
}

}  // namespace glouvain::shard
