// LRU cache of partition plans, the shard-side sibling of the service
// result cache (svc/cache.hpp): repeated jobs on the same graph skip
// make_plan() — and, under mmap shard storage, the per-shard zg
// encode/spill — entirely. Keyed by CONTENT, not identity: the graph
// enters through graph::fingerprint128, so a stream delta that changes
// the graph changes the key and the stale plan simply stops being
// referenced (LRU eviction reclaims it; nothing ever has to be
// invalidated in place).
//
// Thread-safe: many svc submitters may race on one plan. Entries are
// shared_ptr<const Plan>, so an evicted plan stays alive (and its
// spill files stay on disk — Plan::spill is RAII) until the last
// engine using it lets go.
//
// The cache is process-global (plan_cache()), shared by every Engine
// exactly like the zg side tables are shared per process; svc::Service
// surfaces its hit/miss/eviction counters through svc::Stats, and the
// engine mirrors the per-run traffic into the obs counters
// cache/plan_hit and cache/plan_miss.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "detect/options.hpp"
#include "graph/csr.hpp"
#include "shard/partition.hpp"

namespace glouvain::shard {

/// Everything that determines a plan (and, for mmap storage, its
/// on-disk shape): graph content, shard count, strategy, seed, the hub
/// threshold, and the storage mode itself — a resident plan must not
/// satisfy an mmap request, whose shards carry spill paths instead of
/// local graphs.
struct PlanKey {
  std::uint64_t fp_hi = 0;
  std::uint64_t fp_lo = 0;
  unsigned shards = 1;
  detect::Partition strategy = detect::Partition::kHubRep;
  std::uint64_t seed = 1;
  graph::EdgeIdx hub_degree = 319;
  detect::ShardStorage storage = detect::ShardStorage::kPlain;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const noexcept;
};

/// Build the cache key for partitioning `graph` under `config`.
/// O(n + m) — the fingerprint pass; cheap next to make_plan.
PlanKey plan_key(const graph::Csr& graph, const PartitionConfig& config,
                 detect::ShardStorage storage);

class PlanCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
  };

  explicit PlanCache(std::size_t capacity = 8) : capacity_(capacity) {}

  /// Look up a plan; null on miss. Refreshes LRU position on hit.
  std::shared_ptr<const Plan> get(const PlanKey& key);

  /// Insert (or refresh) a plan, evicting the least recently used
  /// entry beyond capacity. A capacity of 0 disables caching.
  void put(const PlanKey& key, std::shared_ptr<const Plan> plan);

  void set_capacity(std::size_t capacity);
  void clear();
  Stats stats() const;

 private:
  struct Entry {
    PlanKey key;
    std::shared_ptr<const Plan> plan;
  };

  std::size_t capacity_;
  mutable std::mutex m_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<PlanKey, std::list<Entry>::iterator, PlanKeyHash> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

/// The process-wide plan cache every Engine consults.
PlanCache& plan_cache();

}  // namespace glouvain::shard
