// Halo exchange state of the sharded backend: the one global
// community/tot view that shards read through ACCESSORS ONLY.
//
// On this substrate the "exchange" is a gather from these arrays; on a
// real multi-GPU deployment each ExchangePlan list would be one
// NCCL/NVLink message per (peer, round) and the arrays below would be
// per-device mirrors (DESIGN.md §14 substitution table). To keep that
// replacement honest, every cross-shard read in src/shard goes through
// community_of()/tot_of() and every write through store_label() /
// rebuild_tot(). tools/simt_lint.py rule "shard-ghost" flags any code
// outside this header that touches the raw arrays directly.
#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace glouvain::shard {

/// The exchanged global state: one label and one community total per
/// GLOBAL vertex/community. Owned by the engine, rebuilt between move
/// rounds. The raw vectors are public so obs/tests can snapshot them,
/// but shard code must use the accessors (lint-enforced).
struct GlobalState {
  std::vector<graph::Community> labels_raw;
  std::vector<graph::Weight> tot_raw;

  void reset(graph::VertexId n) {
    labels_raw.resize(n);
    tot_raw.assign(n, 0);
    for (graph::VertexId v = 0; v < n; ++v) labels_raw[v] = v;
  }

  /// Current community of global vertex v (the halo read).
  graph::Community community_of(graph::VertexId v) const noexcept {
    assert(v < labels_raw.size());
    const graph::Community* p = labels_raw.data();
#if defined(__GNUC__)
    // A caller passing v < size() implies a non-null buffer; the hint
    // stops GCC's -Wnull-dereference from flagging the empty-vector
    // path it invents when inlining this into the engine's loops.
    if (p == nullptr) __builtin_unreachable();
#endif
    return p[v];
  }

  /// Exchanged total strength of community c.
  graph::Weight tot_of(graph::Community c) const noexcept {
    assert(c < tot_raw.size());
    return tot_raw[c];
  }

  /// Publish the new label of an OWNED vertex (the halo write; only a
  /// vertex's owning shard may call this).
  void store_label(graph::VertexId v, graph::Community c) noexcept {
    assert(v < labels_raw.size());
    labels_raw[v] = c;
  }

  /// Publish one owned-vertex move AND keep the exchanged totals
  /// consistent incrementally (the per-phase analogue of the round's
  /// all-reduce). Without this, a shard later in the round would see
  /// fresh labels paired with stale totals — understated a_c turns
  /// into overstated gains and cascading over-merges. Returns whether
  /// the label actually changed.
  bool apply_move(graph::VertexId v, graph::Community c,
                  std::span<const graph::Weight> strengths) noexcept {
    assert(v < labels_raw.size() && c < tot_raw.size());
    const graph::Community old = labels_raw[v];
    if (old == c) return false;
    tot_raw[old] -= strengths[v];
    tot_raw[c] += strengths[v];
    labels_raw[v] = c;
    return true;
  }

  /// Recompute every community's total strength from the per-vertex
  /// strengths — the reduction a real deployment would all-reduce
  /// after each round.
  void rebuild_tot(std::span<const graph::Weight> strengths) {
    assert(strengths.size() == labels_raw.size());
    tot_raw.assign(labels_raw.size(), 0);
    for (graph::VertexId v = 0; v < labels_raw.size(); ++v) {
      tot_raw[labels_raw[v]] += strengths[v];
    }
  }

  std::span<const graph::Community> labels() const noexcept {
    return labels_raw;
  }
  std::span<const graph::Weight> tot() const noexcept { return tot_raw; }

  graph::VertexId size() const noexcept {
    return static_cast<graph::VertexId>(labels_raw.size());
  }
};

}  // namespace glouvain::shard
