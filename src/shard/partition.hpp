// Edge-cut graph partitioner of the sharded multi-device backend
// (DESIGN.md §14). Produces k shards, each a self-contained local Csr:
//
//   [0, num_owned)                  owned vertices, FULL global rows —
//                                   these are the only vertices a
//                                   shard's move phase may relabel;
//   [num_owned, +num_replica)       replicated high-degree hubs
//                                   (hubrep only): frozen mirrors
//                                   carrying their edges into this
//                                   shard (the PowerGraph-style
//                                   vertex-cut split, so a hub's row
//                                   never drags the whole graph into
//                                   one shard's ghost table);
//   [.., +num_ghost)                ghost vertices: frozen, EMPTY rows
//                                   — label-only halo slots whose
//                                   community/tot arrive through the
//                                   exchange plan each round;
//   [local_n - 1] (k > 1)           one phantom "rest of world" vertex
//                                   whose self-loop carries
//                                   pad = global_2m - (local row sum),
//                                   so every shard's total_weight()
//                                   equals the GLOBAL 2m and local
//                                   move gains equal global gains
//                                   exactly (given exchanged tot).
//
// The degree-bucketed cut heuristic follows the paper's binning
// insight: vertices above the top modopt bucket bound (degree > 319 by
// default — the bucket whose hash tables already live in global
// memory) are the hubs worth special-casing; hubrep assigns them to
// the shard holding the plurality of their neighbours and mirrors
// their rows instead of letting one block range absorb them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "detect/options.hpp"
#include "graph/csr.hpp"

namespace glouvain::shard {

struct PartitionConfig {
  unsigned num_shards = 2;
  detect::Partition strategy = detect::Partition::kHubRep;
  std::uint64_t seed = 1;
  /// Degree above which a vertex counts as a hub (hubrep only). The
  /// default is the paper's top modularity-optimization bucket bound.
  graph::EdgeIdx hub_degree = 319;
};

/// One shard's local view. Local vertex i corresponds to global vertex
/// global_of[i] (kInvalidVertex for the phantom).
struct Shard {
  graph::Csr local;
  std::vector<graph::VertexId> global_of;
  graph::VertexId num_owned = 0;
  graph::VertexId num_replica = 0;
  graph::VertexId num_ghost = 0;
  bool has_phantom = false;
  /// Self-loop weight of the phantom (global_2m - local row sum).
  graph::Weight pad_weight = 0;
  /// Edges this shard owns under the min-endpoint rule: {u, v} belongs
  /// to owner(min(u, v)). Every global edge is owned by exactly one
  /// shard (the partitioner invariant tests recompute this).
  graph::EdgeIdx owned_edges = 0;
  /// Out-of-core shards (ShardStorage::kMmap): the zg container this
  /// shard's `local` graph was spilled to; `local` is then empty and
  /// the engine maps/decodes the container per sweep. "" = resident.
  std::string spill_path;
  /// Arc count of `local`, kept valid after a spill empties it.
  graph::EdgeIdx local_arcs = 0;

  /// Derived from global_of (one entry per local slot, phantom
  /// included), NOT from `local` — which a spill empties.
  graph::VertexId num_local() const noexcept {
    return static_cast<graph::VertexId>(global_of.size());
  }
  /// Frozen (non-movable) local vertices: replicas + ghosts + phantom.
  graph::VertexId num_frozen() const noexcept {
    return num_local() - num_owned;
  }
};

/// Per-round halo traffic: recv[s][p] lists the global vertex ids
/// (owned by shard p) whose labels shard s reads; send is the exact
/// mirror (send[p][s] == recv[s][p]). On this substrate the exchange
/// is a gather from the shared label array; on real devices each list
/// is one NCCL/NVLink message per (peer, round).
struct ExchangePlan {
  std::vector<std::vector<std::vector<graph::VertexId>>> recv;
  std::vector<std::vector<std::vector<graph::VertexId>>> send;

  /// Labels transferred per exchange round (sum of recv list sizes).
  std::uint64_t values_per_round() const noexcept {
    std::uint64_t total = 0;
    for (const auto& per_peer : recv) {
      for (const auto& ids : per_peer) total += ids.size();
    }
    return total;
  }
};

struct PlanStats {
  graph::EdgeIdx cut_edges = 0;       ///< edges with endpoints in two shards
  double cut_fraction = 0;            ///< cut_edges / num_edges
  double ghost_ratio = 0;             ///< frozen slots across shards / n
  double imbalance = 0;               ///< max shard arcs / mean shard arcs
  graph::VertexId replicated_hubs = 0; ///< distinct hubs with >=1 mirror
};

/// RAII owner of a plan's on-disk shard containers (mmap shard
/// storage): removes the files when the last reference to the Plan
/// drops — i.e. when the plan cache evicts it and no engine still
/// holds it. Mapped regions survive the unlink (POSIX), so an
/// in-flight sweep is never yanked.
class SpillSet {
 public:
  explicit SpillSet(std::vector<std::string> paths)
      : paths_(std::move(paths)) {}
  ~SpillSet();
  SpillSet(const SpillSet&) = delete;
  SpillSet& operator=(const SpillSet&) = delete;

  const std::vector<std::string>& paths() const noexcept { return paths_; }

 private:
  std::vector<std::string> paths_;
};

struct Plan {
  unsigned num_shards = 1;
  std::vector<unsigned> owner;  ///< global vertex -> owning shard
  std::vector<Shard> shards;
  ExchangePlan exchange;
  PlanStats stats;
  /// Non-null iff the shards were spilled to zg containers (mmap shard
  /// storage); shared so cached plans keep their files alive.
  std::shared_ptr<SpillSet> spill;
};

/// Partition `graph` into config.num_shards shards. Deterministic for
/// a given (graph, config): block boundaries come from the degree
/// prefix sum, random assignment from hash64(v ^ seed), and hubrep
/// from the neighbour-plurality rule with lowest-shard tie-breaks.
Plan make_plan(const graph::Csr& graph, const PartitionConfig& config);

}  // namespace glouvain::shard
