#include "shard/plan_cache.hpp"

#include <utility>

#include "graph/fingerprint.hpp"

namespace glouvain::shard {

namespace {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t PlanKeyHash::operator()(const PlanKey& k) const noexcept {
  std::uint64_t h = k.fp_hi;
  h = mix64(h ^ (k.fp_lo + 0x9e3779b97f4a7c15ULL));
  h = mix64(h ^ (static_cast<std::uint64_t>(k.shards) + 0x1000));
  h = mix64(h ^ (static_cast<std::uint64_t>(k.strategy) + 17));
  h = mix64(h ^ k.seed);
  h = mix64(h ^ (static_cast<std::uint64_t>(k.hub_degree) + 0x5bf0a8b1ULL));
  h = mix64(h ^ (static_cast<std::uint64_t>(k.storage) + 37));
  return static_cast<std::size_t>(h);
}

PlanKey plan_key(const graph::Csr& graph, const PartitionConfig& config,
                 detect::ShardStorage storage) {
  const graph::Fingerprint128 fp = graph::fingerprint128(graph);
  PlanKey key;
  key.fp_hi = fp.hi;
  key.fp_lo = fp.lo;
  key.shards = config.num_shards;
  key.strategy = config.strategy;
  key.seed = config.seed;
  key.hub_degree = config.hub_degree;
  key.storage = storage;
  return key;
}

std::shared_ptr<const Plan> PlanCache::get(const PlanKey& key) {
  const std::lock_guard lock(m_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->plan;
}

void PlanCache::put(const PlanKey& key, std::shared_ptr<const Plan> plan) {
  const std::lock_guard lock(m_);
  if (capacity_ == 0) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_.emplace(key, lru_.begin());
  ++insertions_;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

void PlanCache::set_capacity(std::size_t capacity) {
  const std::lock_guard lock(m_);
  capacity_ = capacity;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

void PlanCache::clear() {
  const std::lock_guard lock(m_);
  lru_.clear();
  index_.clear();
  hits_ = 0;
  misses_ = 0;
  insertions_ = 0;
  evictions_ = 0;
}

PlanCache::Stats PlanCache::stats() const {
  const std::lock_guard lock(m_);
  return Stats{hits_, misses_, insertions_, evictions_, lru_.size(),
               capacity_};
}

PlanCache& plan_cache() {
  static PlanCache cache;
  return cache;
}

}  // namespace glouvain::shard
