#include "shard/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/recorder.hpp"
#include "shard/halo.hpp"
#include "util/timer.hpp"

namespace glouvain::shard {

namespace {
using graph::Community;
using graph::Csr;
using graph::VertexId;
using graph::Weight;
using graph::kInvalidVertex;

simt::DeviceConfig resolve_device(const Config& config) {
  simt::DeviceConfig dev = config.core.device;
  if (dev.worker_threads == 0) dev.worker_threads = config.threads;
  return dev;
}

/// Canonicalize: the inner core config always re-derives from the
/// outer Options slice, so a hand-assembled Config can never run the
/// per-shard phases with knobs that diverge from the front-end surface.
Config lowered(Config config) {
  config.core = core::to_config(config, config.core);
  return config;
}
}  // namespace

Engine::Engine(const Config& config)
    : config_(lowered(config)),
      device_(std::make_unique<simt::Device>(resolve_device(config_))) {}

Engine::~Engine() = default;

void Engine::set_config(const Config& config) {
  const simt::DeviceConfig keep = config_.core.device;
  config_ = lowered(config);
  config_.core.device = keep;  // the live device's shape is immutable
}

unsigned Engine::shards_for(VertexId n) const noexcept {
  const unsigned want = config_.shards == 0 ? 1 : config_.shards;
  if (want <= 1) return 1;
  const VertexId min_n = std::max<VertexId>(config_.min_shard_vertices, 1);
  const std::uint64_t fit = std::max<std::uint64_t>(n / min_n, 1);
  return static_cast<unsigned>(std::min<std::uint64_t>(want, fit));
}

Result Engine::run(const Csr& graph, obs::Recorder* rec) {
  const bool debug = std::getenv("GLOUVAIN_SHARD_DEBUG") != nullptr;
  util::Timer total_timer;
  device_->clear_spills();

  const VertexId n0 = graph.num_vertices();
  Result result;
  result.community.resize(n0);
  device_->for_each(n0, [&](std::size_t v) {
    result.community[v] = static_cast<Community>(v);
  });

  const Csr* current = &graph;
  Csr owned;
  double prev_q = -1.0;
  std::uint64_t prev_spills = 0;

  // Sharded-level scratch, reused across levels and rounds.
  GlobalState gs;
  std::vector<Weight> strengths;
  std::vector<Community> seed;       ///< per-shard local seed labels
  std::vector<Community> rep_comm;   ///< local slot -> global community
  std::vector<Community> comm_slot;  ///< global community -> local slot
  std::vector<VertexId> slot_list;   ///< slots claimed by this shard
  std::vector<VertexId> active_ids;  ///< iota; prefix = a shard's owned
  std::vector<int> last_moved;       ///< round a global vertex last moved
  std::vector<int> dirty_round;      ///< round a neighbour last moved
  std::vector<VertexId> frontier;    ///< round >= 1 restricted active set

  for (int level = 0; level < config_.max_levels; ++level) {
    if (rec) rec->set_level(level);
    const VertexId n = current->num_vertices();
    const unsigned k = shards_for(n);
    LevelReport report;
    report.vertices = n;
    report.arcs = current->num_arcs();
    report.modularity_before = prev_q < -0.5 ? 0 : prev_q;
    const double threshold = config_.thresholds.threshold_for(report.vertices);

    double phase_q = 0;
    int sweeps = 0;
    std::span<const Community> labels;
    util::Timer opt_timer;

    if (k <= 1) {
      // ---- unsharded level: the core::Louvain level protocol
      // verbatim, so shards <= 1 stays bitwise-identical to "core" and
      // small contracted levels get an exact finishing pass.
      state_.reset(*current, *device_);
      const core::PhaseResult phase = core::optimize_phase(
          *device_, *current, config_.core, state_,
          std::span<const VertexId>{}, threshold, ws_, rec);
      phase_q = phase.modularity;
      sweeps = phase.sweeps;
      labels = state_.community;
      const double crit = opt_timer.seconds();
      result.critical_seconds += crit;
      // Work model (Result::critical_work): upload + one arc pass per
      // move sweep. The phase's own per-sweep modularity evaluations
      // are not charged — a deliberate bias AGAINST the sharded runs,
      // whose gates compare to this baseline.
      const double level_work =
          static_cast<double>(report.arcs) *
          (1.0 + static_cast<double>(std::max(phase.sweeps, 1)));
      result.critical_work += level_work;
      if (rec) {
        rec->count("shard/critical_ns", crit * 1e9);
        rec->count("shard/critical_work", level_work);
      }
      if (level == 0) {
        result.shards_used = 1;
        result.first_phase_teps =
            phase.first_sweep_seconds > 0
                ? static_cast<double>(report.arcs) / phase.first_sweep_seconds
                : 0;
      }
    } else {
      // ---- sharded level: partition, then alternate per-shard
      // restricted phases (sequentially on the one warm device — see
      // engine.hpp) with halo exchanges of labels and community totals.
      Plan plan;
      {
        obs::Span span(rec, "shard/partition");
        plan = make_plan(*current,
                         PartitionConfig{k, config_.partition,
                                         config_.partition_seed,
                                         config_.hub_degree});
      }
      if (level == 0) {
        result.partition = plan.stats;
        result.shards_used = k;
      }
      if (rec) {
        rec->count("shard/shards", static_cast<double>(k));
        rec->count("shard/cut_edges",
                   static_cast<double>(plan.stats.cut_edges));
        rec->count("shard/ghost_ratio", plan.stats.ghost_ratio);
        rec->count("shard/imbalance", plan.stats.imbalance);
        rec->count("shard/replicated_hubs",
                   static_cast<double>(plan.stats.replicated_hubs));
        rec->count("shard/halo_values",
                   static_cast<double>(plan.exchange.values_per_round()));
      }

      strengths = current->compute_strengths();
      gs.reset(n);
      gs.rebuild_tot(strengths);
      comm_slot.assign(n, kInvalidVertex);
      VertexId max_owned = 0;
      for (const Shard& sh : plan.shards) {
        max_owned = std::max(max_owned, sh.num_owned);
      }
      active_ids.resize(max_owned);
      for (VertexId i = 0; i < max_owned; ++i) active_ids[i] = i;
      last_moved.assign(n, -1);
      dirty_round.assign(n, -1);
      if (shard_states_.size() < k) shard_states_.resize(k);

      // Every round (round 0 included) runs with the phase-internal
      // modularity machinery off and the sweep count capped: the round
      // loop is the outer iteration here (stopping on the all-reduced
      // moved count), each in-phase evaluation is a full O(|E_local|)
      // pass that would otherwise dominate the per-round critical path
      // at small k, and a shard-locally-converged deep phase is
      // redundant with the rounds themselves — moves its later sweeps
      // would make happen in the next round instead, against an
      // exchanged (fresher) boundary. Sweeps stop on the accumulated
      // predicted gain, bounded hard.
      core::Config frontier_cfg = config_.core;
      frontier_cfg.eval_phase_modularity = false;
      // ONE sweep per round: an in-phase second sweep would re-scan
      // the whole active set against the same stale boundary, while
      // the next round re-scans only the shrunken frontier against
      // exchanged labels — the round loop is the cheaper (and fresher)
      // iteration. This is the one-scan-per-exchange structure of
      // distributed Louvain.
      frontier_cfg.max_sweeps_per_level = 1;

      double level_critical = 0;
      double level_work = 0;
      double first_sweep_max = 0;
      for (int round = 0; round < config_.rounds_per_level; ++round) {
        std::uint64_t moved = 0;
        double max_shard_seconds = 0;
        double max_shard_work = 0;
        // Symmetric Gauss-Seidel over the shards: odd rounds sweep in
        // reverse, so no shard is permanently the leader (with a fixed
        // order the first shard always moves against a stale boundary
        // and the last always reacts — the cut settles lopsided).
        for (unsigned si = 0; si < k; ++si) {
          const unsigned s = (round & 1) != 0 ? k - 1 - si : si;
          const Shard& sh = plan.shards[s];
          if (sh.num_owned == 0) continue;
          util::Timer shard_timer;
          obs::Span shard_span(rec, "shard/phase");
          const VertexId local_n = sh.num_local();
          const VertexId mapped_n =
              local_n - (sh.has_phantom ? 1 : 0);

          // Round 0 optimizes every owned vertex. Later rounds only
          // revisit the change frontier: owned vertices that moved
          // since this shard last ran, or whose neighbourhood changed
          // (movers stamp their neighbours dirty at publish time — the
          // push-based marking below — so membership is two O(1) reads
          // per owned vertex, no adjacency scan). Everything else sits
          // at the local optimum it reached last round (stale only in
          // second-order a_c drift), so re-sweeping it buys nothing
          // and costs a full phase — an idle shard skips even the
          // reseed marshal below.
          std::span<const VertexId> active(active_ids.data(), sh.num_owned);
          double active_arcs = 0;  ///< local arcs the phase will scan
          if (round > 0) {
            frontier.clear();
            // Hub settling (Config::hub_settle_rounds): past the
            // opening rounds a dirty hub row is not re-scanned — on a
            // scale-free cut every hub is dirtied every round, and
            // those full-degree re-scans would dominate the settle
            // tail. A hub that itself moved stays eligible.
            const bool settle_hubs = round >= config_.hub_settle_rounds;
            for (VertexId i = 0; i < sh.num_owned; ++i) {
              const VertexId g = sh.global_of[i];
              const bool moved_recently = last_moved[g] >= round - 1;
              if (!moved_recently &&
                  (dirty_round[g] < round - 1 ||
                   (settle_hubs &&
                    sh.local.degree(i) > config_.hub_degree))) {
                continue;
              }
              frontier.push_back(i);
              active_arcs += static_cast<double>(sh.local.degree(i));
            }
            active = frontier;
          } else {
            for (VertexId i = 0; i < sh.num_owned; ++i) {
              active_arcs += static_cast<double>(sh.local.degree(i));
            }
          }
          if (active.empty()) continue;

          // Seed the local state from the exchanged global view: the
          // slot of community c is the first local vertex found in c,
          // and rep_comm remembers which global community a slot
          // stands for.
          seed.resize(local_n);
          rep_comm.resize(local_n);
          slot_list.clear();
          for (VertexId i = 0; i < mapped_n; ++i) {
            const Community c = gs.community_of(sh.global_of[i]);
            if (comm_slot[c] == kInvalidVertex) {
              comm_slot[c] = i;
              rep_comm[i] = c;
              slot_list.push_back(i);
            }
            seed[i] = comm_slot[c];
          }
          if (sh.has_phantom) seed[local_n - 1] = local_n - 1;
          core::PhaseState& st = shard_states_[s];
          if (round == 0) {
            st.reset_from(sh.local, *device_, seed);
          } else {
            st.reseed(*device_, seed);
          }
          // Exchanged community totals replace the locally-accumulated
          // ones, so gains computed inside the shard are GLOBAL gains.
          // The phantom keeps its reset total (its own pad strength —
          // it is frozen and adjacent to nothing, so it never appears
          // as a move candidate).
          for (const VertexId slot : slot_list) {
            st.tot[slot] = gs.tot_of(rep_comm[slot]);
          }

          const core::PhaseResult phase = core::optimize_phase(
              *device_, sh.local, frontier_cfg, st, active, threshold, ws_,
              rec);
          sweeps += phase.sweeps;
          if (round == 0) {
            first_sweep_max =
                std::max(first_sweep_max, phase.first_sweep_seconds);
          }

          // Publish the owned labels back into the global view, with
          // the community totals updated in the same stroke. Later
          // shards of this round see both (Gauss-Seidel order); the
          // round-end exchange re-reduces the totals from scratch so
          // incremental float drift cannot accumulate across rounds.
          for (VertexId i = 0; i < sh.num_owned; ++i) {
            const Community c_new = rep_comm[st.community[i]];
            const VertexId g = sh.global_of[i];
            if (gs.apply_move(g, c_new, strengths)) {
              ++moved;
              last_moved[g] = round;
              // Push-based frontier maintenance: the mover dirties its
              // global neighbourhood (the targeting of a real halo
              // message), so the next round's membership test needs no
              // adjacency scan. Cost is proportional to the round's
              // migration, not to the edge set. Delta-screening prune
              // (Vite/GVE lineage): a neighbour already in the mover's
              // destination community saw its stay-put option
              // reinforced, not weakened — skip it.
              for (const VertexId u : current->neighbors(g)) {
                if (gs.community_of(u) != c_new) dirty_round[u] = round;
              }
            }
          }
          for (const VertexId slot : slot_list) {
            comm_slot[rep_comm[slot]] = kInvalidVertex;
          }
          max_shard_seconds =
              std::max(max_shard_seconds, shard_timer.seconds());
          // Deterministic per-shard cost (engine.hpp Result doc): one
          // arc pass over the active set per sweep, the O(slots) seed
          // marshal, and the state transfer — full upload on round 0,
          // label-derived reseed after.
          const double shard_work =
              active_arcs *
                  static_cast<double>(std::max(phase.sweeps, 1)) +
              static_cast<double>(mapped_n) +
              (round == 0 ? static_cast<double>(sh.local.num_arcs())
                          : static_cast<double>(local_n));
          max_shard_work = std::max(max_shard_work, shard_work);
          if (debug) {
            std::fprintf(stderr,
                         "  [shard %u] active=%zu sweeps=%d t=%.3fs\n", s,
                         active.size(), phase.sweeps, shard_timer.seconds());
          }
        }

        // Halo exchange: rebuild every community's total strength from
        // scratch (the O(|C|) all-reduce of a real deployment, and the
        // fp-drift hygiene for apply_move's incremental updates).
        util::Timer ex_timer;
        {
          obs::Span ex_span(rec, "shard/exchange");
          gs.rebuild_tot(strengths);
        }
        const double exchange_seconds = ex_timer.seconds();
        level_critical += max_shard_seconds + exchange_seconds;
        // The exchange is the O(n) label broadcast + tot all-reduce.
        level_work += max_shard_work + static_cast<double>(n);
        ++result.exchange_rounds;
        if (rec) {
          rec->count("shard/rounds", 1);
          rec->count("shard/exchange_ns", exchange_seconds * 1e9);
          rec->count("shard/moved", static_cast<double>(moved), round);
        }
        // Round stopping rule: the all-reduced moved count, as
        // distributed Louvain does it — a global modularity evaluation
        // is a full O(|E|) pass and does NOT belong in the per-round
        // exchange (it would dominate the critical path at small k).
        // Rounds settle the cut boundary, so run them until migration
        // dries up; the frontier restriction above makes the trailing
        // rounds cheap.
        if (debug) {
          std::fprintf(stderr,
                       "[shard] level=%d k=%u round=%d moved=%llu "
                       "max_shard=%.3fs work=%.1fM exchange=%.3fs\n",
                       level, k, round,
                       static_cast<unsigned long long>(moved),
                       max_shard_seconds, max_shard_work * 1e-6,
                       exchange_seconds);
        }
        const auto move_floor = static_cast<std::uint64_t>(
            config_.round_move_floor * static_cast<double>(n));
        if (moved < std::max<std::uint64_t>(move_floor, 16)) break;
      }
      // One global modularity evaluation per level (the figure a real
      // deployment computes alongside the final all-reduce), charged to
      // the critical path once.
      util::Timer q_timer;
      {
        obs::Span q_span(rec, "shard/modularity");
        phase_q = core::device_modularity(*device_, *current, gs.labels_raw,
                                          gs.tot_raw, ws_);
      }
      level_critical += q_timer.seconds();
      // The level-end modularity evaluation is itself sharded in a
      // real deployment (each device reduces its local arcs, then an
      // all-reduce), so the critical path carries arcs / k of it.
      level_work += static_cast<double>(report.arcs) / k;
      labels = gs.labels();
      result.critical_seconds += level_critical;
      result.critical_work += level_work;
      if (rec) {
        rec->count("shard/critical_ns", level_critical * 1e9);
        rec->count("shard/critical_work", level_work);
      }
      if (level == 0) {
        result.first_phase_teps =
            first_sweep_max > 0
                ? static_cast<double>(report.arcs) / first_sweep_max
                : 0;
      }
    }

    report.optimize_seconds = opt_timer.seconds();
    report.iterations = sweeps;
    report.modularity_after = phase_q;

    // Termination always checks against the FINE threshold (as core).
    const bool converged =
        prev_q >= -0.5 && (phase_q - prev_q) < config_.thresholds.t_final;

    util::Timer agg_timer;
    core::AggregationResult agg =
        core::aggregate(*device_, *current, config_.core, labels, ws_, rec);
    {
      obs::Span fold_span(rec, "fold");
      auto dense =
          ws_.buffer<Community>(core::Workspace::Slot::kFoldDense, n);
      device_->for_each(n, [&](std::size_t v) {
        dense[v] = agg.new_id[labels[v]];
      });
      device_->for_each(result.community.size(), [&](std::size_t v) {
        result.community[v] = dense[result.community[v]];
      });
      result.dendrogram.push_level(
          std::vector<Community>(dense.begin(), dense.end()));
    }
    ws_.put(std::move(agg.new_id));
    report.aggregate_seconds = agg_timer.seconds();
    result.levels.push_back(report);

    if (rec) {
      rec->count("level/vertices", static_cast<double>(report.vertices));
      rec->count("level/arcs", static_cast<double>(report.arcs));
      const std::uint64_t spills = device_->total_spills();
      rec->count("level/shared_spills",
                 static_cast<double>(spills - prev_spills));
      prev_spills = spills;
    }

    const bool shrunk = agg.contracted.num_vertices() < n;
    prev_q = phase_q;
    Csr next = std::move(agg.contracted);
    if (owned.num_vertices() > 0) ws_.recycle(std::move(owned));
    owned = std::move(next);
    current = &owned;
    if (converged || !shrunk) break;
  }
  if (rec) rec->set_level(-1);

  result.modularity = prev_q;
  result.total_seconds = total_timer.seconds();
  result.device.shared_spills = device_->total_spills();
  result.device.workers = device_->workers();
  return result;
}

Result louvain(const Csr& graph, const Config& config, obs::Recorder* rec) {
  Engine engine(config);
  return engine.run(graph, rec);
}

}  // namespace glouvain::shard
