#include "shard/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/recorder.hpp"
#include "shard/halo.hpp"
#include "shard/plan_cache.hpp"
#include "simt/device_pool.hpp"
#include "util/timer.hpp"
#include "zg/container.hpp"
#include "zg/zcsr.hpp"

namespace glouvain::shard {

namespace engine_detail {

using graph::Community;
using graph::Csr;
using graph::VertexId;
using graph::Weight;
using graph::kInvalidVertex;

std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-device-lane scratch of the concurrent rounds (and, as lane 0,
/// of the sequential simulation): the seed-marshal buffers and the
/// phase workspace one resident device would keep.
struct Lane {
  std::vector<Community> seed;       ///< per-shard local seed labels
  std::vector<Community> rep_comm;   ///< local slot -> global community
  std::vector<Community> comm_slot;  ///< global community -> local slot
  std::vector<VertexId> slot_list;   ///< slots claimed by this shard
  std::vector<VertexId> frontier;    ///< round >= 1 restricted active set
  core::Workspace ws;
};

/// One buffered move: OWNED global vertex -> new global community.
/// Proposals are collected inside a sweep and applied at the barrier
/// (concurrent Jacobi) or immediately after the sweep (sequential
/// Gauss-Seidel) — by the driver thread in both cases. `gain` is the
/// sweep's predicted dQ of the move (against the snapshot it ran on);
/// the barrier commits best-first, so when two snapshot-scored moves
/// conflict the one worth more lands and the marginal one is the one
/// re-scored against it.
struct Proposal {
  VertexId v;
  Community c;
  double gain;
};

/// What one shard's sweep reports back to the driver.
struct SweepOutcome {
  bool ran = false;                ///< false = empty frontier, no work
  int sweeps = 0;
  double seconds = 0;
  double work = 0;                 ///< deterministic work units
  double first_sweep_seconds = 0;  ///< round 0 only
  std::int64_t start_raw = 0;      ///< raw steady-clock ns (trace rebase)
  std::int64_t dur_ns = 0;
};

/// Resident or mapped view of a shard's local graph. The mmap path
/// opens the zg container cheaply (O(1) degree reads drive the
/// frontier membership test) and only decodes the full Csr — bitwise
/// identical to the resident one — once the shard is known to have
/// work this round.
struct LocalGraph {
  const Shard* sh = nullptr;
  std::optional<zg::MappedGraph> mapped;
  Csr decoded;

  static LocalGraph open(const Shard& shard) {
    LocalGraph lg;
    lg.sh = &shard;
    if (!shard.spill_path.empty()) {
      auto m = zg::MappedGraph::open(shard.spill_path);
      if (!m.ok()) {
        throw std::runtime_error("shard spill missing: " +
                                 m.status().message());
      }
      lg.mapped.emplace(std::move(m).value());
    }
    return lg;
  }

  graph::EdgeIdx degree(VertexId i) const noexcept {
    return mapped ? static_cast<graph::EdgeIdx>(mapped->zcsr().degree(i))
                  : sh->local.degree(i);
  }

  const Csr& materialize() {
    if (!mapped) return sh->local;
    if (decoded.num_vertices() == 0) decoded = mapped->zcsr().decode_all();
    return decoded;
  }
};

/// One shard's restricted move sweep against the round-start global
/// snapshot: frontier selection, seed marshal, phase, proposal
/// collection. READS the shared round state (gs, last_moved,
/// dirty_round) and WRITES only lane-local scratch + this shard's
/// PhaseState/proposals — the property that makes the concurrent
/// rounds race-free (and that tools/simt_lint.py rule shard-barrier
/// enforces on the parallel_shards body below).
SweepOutcome run_shard_sweep(
    simt::Device& device, const Shard& sh, core::PhaseState& st,
    const core::Config& frontier_cfg, double threshold, int round,
    graph::EdgeIdx hub_degree, int hub_settle_rounds, const GlobalState& gs,
    const std::vector<int>& last_moved, const std::vector<int>& dirty_round,
    std::span<const VertexId> all_owned, Lane& lane, core::Workspace& ws,
    obs::Recorder* rec, std::vector<Proposal>& proposals) {
  SweepOutcome out;
  out.start_raw = steady_now_ns();
  util::Timer timer;
  LocalGraph lg = LocalGraph::open(sh);
  const VertexId local_n = sh.num_local();
  const VertexId mapped_n = local_n - (sh.has_phantom ? 1 : 0);

  // Round 0 optimizes every owned vertex. Later rounds only revisit
  // the change frontier: owned vertices that moved since this shard
  // last ran, or whose neighbourhood changed (movers stamp their
  // neighbours dirty at publish time — push-based marking — so
  // membership is two O(1) reads per owned vertex, no adjacency
  // scan). Everything else sits at the local optimum it reached last
  // round, so re-sweeping it buys nothing; an idle shard skips even
  // the seed marshal (and, out of core, the decode).
  std::span<const VertexId> active = all_owned;
  double active_arcs = 0;
  if (round > 0) {
    lane.frontier.clear();
    // Hub settling (Config::hub_settle_rounds): past the opening
    // rounds a dirty hub row is not re-scanned — on a scale-free cut
    // every hub is dirtied every round, and those full-degree
    // re-scans would dominate the settle tail. A hub that itself
    // moved stays eligible.
    const bool settle_hubs = round >= hub_settle_rounds;
    for (VertexId i = 0; i < sh.num_owned; ++i) {
      const VertexId g = sh.global_of[i];
      const bool moved_recently = last_moved[g] >= round - 1;
      if (!moved_recently &&
          (dirty_round[g] < round - 1 ||
           (settle_hubs && lg.degree(i) > hub_degree))) {
        continue;
      }
      lane.frontier.push_back(i);
      active_arcs += static_cast<double>(lg.degree(i));
    }
    active = lane.frontier;
  } else {
    for (VertexId i = 0; i < sh.num_owned; ++i) {
      active_arcs += static_cast<double>(lg.degree(i));
    }
  }
  if (active.empty()) return out;

  const Csr& local = lg.materialize();

  // Seed the local state from the exchanged global view: the slot of
  // community c is the first local vertex found in c, and rep_comm
  // remembers which global community a slot stands for.
  lane.seed.resize(local_n);
  lane.rep_comm.resize(local_n);
  lane.slot_list.clear();
  for (VertexId i = 0; i < mapped_n; ++i) {
    const Community c = gs.community_of(sh.global_of[i]);
    if (lane.comm_slot[c] == kInvalidVertex) {
      lane.comm_slot[c] = i;
      lane.rep_comm[i] = c;
      lane.slot_list.push_back(i);
    }
    lane.seed[i] = lane.comm_slot[c];
  }
  if (sh.has_phantom) lane.seed[local_n - 1] = local_n - 1;
  if (round == 0) {
    st.reset_from(local, device, lane.seed);
  } else {
    st.reseed(device, lane.seed);
  }
  // Exchanged community totals replace the locally-accumulated ones,
  // so gains computed inside the shard are GLOBAL gains. The phantom
  // keeps its reset total (its own pad strength — it is frozen and
  // adjacent to nothing, so it never appears as a move candidate).
  for (const VertexId slot : lane.slot_list) {
    st.tot[slot] = gs.tot_of(lane.rep_comm[slot]);
  }

  const core::PhaseResult phase = core::optimize_phase(
      device, local, frontier_cfg, st, active, threshold, ws, rec);
  out.sweeps = phase.sweeps;
  out.first_sweep_seconds = phase.first_sweep_seconds;

  // Buffer the owned labels that changed against the snapshot this
  // sweep ran on; the driver publishes them (gs/apply_move is
  // barrier-protected state).
  proposals.clear();
  for (VertexId i = 0; i < sh.num_owned; ++i) {
    const Community c_new = lane.rep_comm[st.community[i]];
    const VertexId g = sh.global_of[i];
    if (c_new != gs.community_of(g)) {
      proposals.push_back({g, c_new, st.move_gain[i]});
    }
  }
  for (const VertexId slot : lane.slot_list) {
    lane.comm_slot[lane.rep_comm[slot]] = kInvalidVertex;
  }

  // Deterministic per-shard cost (engine.hpp Result doc): one arc
  // pass over the active set per sweep, the O(slots) seed marshal,
  // and the state transfer — full upload on round 0, label-derived
  // reseed after. local_arcs survives a spill, so plain and mmap
  // charge identically.
  out.work = active_arcs * static_cast<double>(std::max(phase.sweeps, 1)) +
             static_cast<double>(mapped_n) +
             (round == 0 ? static_cast<double>(sh.local_arcs)
                         : static_cast<double>(local_n));
  out.dur_ns = steady_now_ns() - out.start_raw;
  out.seconds = timer.seconds();
  out.ran = true;
  return out;
}

/// Run `lanes` host threads over fn(lane); the join IS the round
/// barrier. Cross-shard mutable state (gs writes, last_moved /
/// dirty_round stamps, rebuild_tot) is forbidden inside fn — the
/// simt_lint shard-barrier rule flags it — so everything a lane
/// touches is private until the barrier publishes it.
template <typename Fn>
void run_lanes(unsigned lanes, Fn&& fn) {
  if (lanes <= 1) {
    fn(0u);
    return;
  }
  std::vector<std::exception_ptr> errors(lanes);
  std::vector<std::thread> threads;
  threads.reserve(lanes);
  for (unsigned lane = 0; lane < lanes; ++lane) {
    threads.emplace_back([&errors, &fn, lane] {
      try {
        fn(lane);
      } catch (...) {
        errors[lane] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

/// Publish one shard's buffered proposals into the global view (with
/// incremental tot updates), stamp movers and dirty their global
/// neighbourhoods (the targeting of a real halo message). The
/// delta-screening prune (Vite/GVE lineage): a neighbour already in
/// the mover's destination community saw its stay-put option
/// reinforced, not weakened — skip it.
std::uint64_t apply_proposals(const std::vector<Proposal>& proposals,
                              GlobalState& gs, const Csr& global,
                              std::span<const Weight> strengths, int round,
                              std::vector<int>& last_moved,
                              std::vector<int>& dirty_round) {
  std::uint64_t moved = 0;
  for (const Proposal& p : proposals) {
    if (gs.apply_move(p.v, p.c, strengths)) {
      ++moved;
      last_moved[p.v] = round;
      for (const VertexId u : global.neighbors(p.v)) {
        if (gs.community_of(u) != p.c) dirty_round[u] = round;
      }
    }
  }
  return moved;
}

/// Driver-side scratch of the validated barrier commit: per-community
/// weight accumulators with a lazy-reset stamp (the standard CSR
/// neighbourhood-scan trick), sized to the level's vertex count on
/// first use and reused across rounds/levels.
struct CommitScratch {
  std::vector<Weight> comm_w;       ///< e_{v->c} of the current vertex
  std::vector<std::uint64_t> mark;  ///< lazy-reset stamp for comm_w
  std::uint64_t now = 0;
  std::vector<Community> cands;     ///< touched candidate communities
};

/// Validated barrier commit of the concurrent rounds. A Jacobi sweep's
/// proposals were all scored against the same round-start snapshot, so
/// publishing them blindly re-creates the classic parallel-Louvain
/// pathologies: adjacent vertices in different shards swap into each
/// other's OLD community, and thousands of vertices pile into the same
/// attractive community whose tot each of them priced as if it came
/// alone. Instead the driver RE-DECIDES every buffered move against the
/// CURRENT view — labels and tot of everything committed before it:
/// one scan of the proposer's neighbourhood rebuilds its per-community
/// weights and picks the fresh argmax destination with the exact core
/// gain rule (modopt.cpp: candidate e_{v->c} - k_v*a_c/2m vs. stay,
/// 1e-15 slack). The snapshot only nominates WHO wants to move (and in
/// what order — see the gain sort at the call site); WHERE it lands is
/// decided at commit time, so the commit sequence is a genuine
/// sequential-Louvain move sequence — every applied move is the
/// proposer's best profitable move at its application point, no matter
/// how many lanes raced. (Re-scoring only the snapshot-chosen target
/// was tried first and measurably lags Gauss-Seidel: stale targets get
/// dropped instead of redirected, and the cut settles ~3% short.)
/// O(deg(v)) per proposal on the driver; on a device deployment this
/// is the owner-side conflict-resolution pass folded into the
/// exchange.
std::uint64_t apply_proposals_validated(
    const std::vector<Proposal>& proposals, GlobalState& gs,
    const Csr& global, std::span<const Weight> strengths, int round,
    std::vector<int>& last_moved, std::vector<int>& dirty_round,
    CommitScratch& scratch, double& validate_arcs) {
  std::uint64_t moved = 0;
  const double inv_m2 = 1.0 / static_cast<double>(global.total_weight());
  if (scratch.comm_w.size() < global.num_vertices()) {
    scratch.comm_w.assign(global.num_vertices(), 0);
    scratch.mark.assign(global.num_vertices(), 0);
    scratch.now = 0;
  }
  for (const Proposal& p : proposals) {
    const Community from = gs.community_of(p.v);
    const std::span<const VertexId> adj = global.neighbors(p.v);
    const std::span<const Weight> w = global.weights(p.v);
    validate_arcs += static_cast<double>(adj.size());
    ++scratch.now;
    scratch.cands.clear();
    Weight d_old = 0;  // e_{v->C(v)\{v}}, as in the kernel's slot scan
    for (std::size_t e = 0; e < adj.size(); ++e) {
      const VertexId u = adj[e];
      if (u == p.v) continue;  // self-loop: equal for every candidate
      const Community cu = gs.community_of(u);
      if (cu == from) {
        d_old += w[e];
        continue;
      }
      if (scratch.mark[cu] != scratch.now) {
        scratch.mark[cu] = scratch.now;
        scratch.comm_w[cu] = 0;
        scratch.cands.push_back(cu);
      }
      scratch.comm_w[cu] += w[e];
    }
    const Weight kv = strengths[p.v];
    const double stay = d_old - kv * (gs.tot_of(from) - kv) * inv_m2;
    double best_gain = stay;
    Community best_c = from;
    for (const Community c : scratch.cands) {
      const double gain = scratch.comm_w[c] - kv * gs.tot_of(c) * inv_m2;
      // Strictly-greater keeps ties on the first candidate in adjacency
      // order — deterministic, the CSR fixes the order.
      if (gain > best_gain + 1e-15) {
        best_gain = gain;
        best_c = c;
      }
    }
    if (best_c == from) {
      // The world moved between the sweep and this commit point and no
      // destination pays any more. Mark the vertex dirty so its shard
      // re-scores it NEXT round against the exchanged labels — without
      // the stamp a rejected vertex whose neighbourhood then goes quiet
      // would drop out of the frontier and sit misplaced forever.
      dirty_round[p.v] = round;
      continue;
    }
    if (gs.apply_move(p.v, best_c, strengths)) {
      ++moved;
      last_moved[p.v] = round;
      for (const VertexId u : adj) {
        if (gs.community_of(u) != best_c) dirty_round[u] = round;
      }
    }
  }
  return moved;
}

/// Encode every shard's local graph into a zg container under `dir`
/// and drop the resident copies; the plan then owns the files
/// (Plan::spill) for as long as any engine or the plan cache holds it.
void spill_plan(Plan& plan, const std::string& dir, const PlanKey& key) {
  char tag[96];
  std::snprintf(tag, sizeof tag, "%016llx%016llx-k%u-p%d-s%llu-%d",
                static_cast<unsigned long long>(key.fp_hi),
                static_cast<unsigned long long>(key.fp_lo), key.shards,
                static_cast<int>(key.strategy),
                static_cast<unsigned long long>(key.seed),
                static_cast<int>(key.hub_degree));
  // The filename carries a per-live-Plan nonce in addition to the key
  // tag: two plans for the SAME key can overlap in time (a rebuild
  // after a foreign cleanup deleted the spill files, or two engines
  // racing on a cold cache), and with key-only names the loser's
  // SpillSet destructor would unlink the winner's freshly-written
  // containers out from under it. Overlapping lifetimes guarantee
  // distinct addresses, so distinct names.
  char nonce[24];
  std::snprintf(nonce, sizeof nonce, "%p", static_cast<void*>(&plan));
  std::vector<std::string> paths;
  paths.reserve(plan.shards.size());
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    Shard& sh = plan.shards[s];
    std::string path = dir + "/glouvain-shard-" + tag + "-" + nonce + "-" +
                       std::to_string(s) + ".zg";
    // Write-temp-and-rename so a half-written container is never
    // mapped; the final name is already unique per live Plan.
    const std::string tmp = path + ".tmp";
    const zg::ZCsr z = zg::ZCsr::encode(sh.local);
    const util::Status st = zg::save(z, tmp);
    if (!st.ok()) {
      throw std::runtime_error("shard spill failed: " + st.message());
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      throw std::runtime_error("shard spill rename failed: " + ec.message());
    }
    sh.spill_path = path;
    sh.local = Csr();
    paths.push_back(std::move(path));
  }
  plan.spill = std::make_shared<SpillSet>(std::move(paths));
}

/// A cached mmap plan is only usable while its containers are still on
/// disk (a foreign cleanup of the temp dir must degrade to a rebuild,
/// not a crash).
bool spill_intact(const Plan& plan) {
  for (const Shard& sh : plan.shards) {
    if (sh.spill_path.empty()) continue;
    std::error_code ec;
    if (!std::filesystem::exists(sh.spill_path, ec)) return false;
  }
  return true;
}

}  // namespace engine_detail

namespace {
using engine_detail::Lane;
using engine_detail::LocalGraph;
using engine_detail::Proposal;
using engine_detail::SweepOutcome;
using engine_detail::apply_proposals;
using engine_detail::apply_proposals_validated;
using engine_detail::CommitScratch;
using engine_detail::run_lanes;
using engine_detail::run_shard_sweep;
using engine_detail::spill_intact;
using engine_detail::spill_plan;
using engine_detail::steady_now_ns;
using graph::Community;
using graph::Csr;
using graph::VertexId;
using graph::Weight;
using graph::kInvalidVertex;

simt::DeviceConfig resolve_device(const Config& config) {
  simt::DeviceConfig dev = config.core.device;
  if (dev.worker_threads == 0) dev.worker_threads = config.threads;
  return dev;
}

/// Canonicalize: the inner core config always re-derives from the
/// outer Options slice, so a hand-assembled Config can never run the
/// per-shard phases with knobs that diverge from the front-end surface.
Config lowered(Config config) {
  config.core = core::to_config(config, config.core);
  return config;
}
}  // namespace

struct Engine::ConcurrentState {
  std::vector<Lane> lanes;
  CommitScratch commit;
};

Engine::Engine(const Config& config)
    : config_(lowered(config)),
      device_(std::make_unique<simt::Device>(resolve_device(config_))) {
  plan_cache().set_capacity(config_.plan_cache_capacity);
}

Engine::~Engine() = default;

void Engine::set_config(const Config& config) {
  const simt::DeviceConfig keep = config_.core.device;
  config_ = lowered(config);
  config_.core.device = keep;  // the live device's shape is immutable
  pool_.reset();  // an engine-owned pool re-derives from the new shape
  plan_cache().set_capacity(config_.plan_cache_capacity);
}

simt::DevicePool& Engine::pool() {
  if (config_.device_pool) return *config_.device_pool;
  if (!pool_) {
    simt::DevicePoolConfig pc;
    pc.max_devices = std::max(1u, config_.shards);
    pc.total_threads = config_.threads;
    pc.device = config_.core.device;
    pc.device.worker_threads = 0;
    pool_ = std::make_shared<simt::DevicePool>(pc);
  }
  return *pool_;
}

unsigned Engine::shards_for(VertexId n) const noexcept {
  const unsigned want = config_.shards == 0 ? 1 : config_.shards;
  if (want <= 1) return 1;
  const VertexId min_n = std::max<VertexId>(config_.min_shard_vertices, 1);
  const std::uint64_t fit = std::max<std::uint64_t>(n / min_n, 1);
  return static_cast<unsigned>(std::min<std::uint64_t>(want, fit));
}

std::shared_ptr<const Plan> Engine::plan_for(const Csr& graph, unsigned k,
                                             obs::Recorder* rec,
                                             Result& result) {
  const PartitionConfig pcfg{k, config_.partition, config_.partition_seed,
                             config_.hub_degree};
  const bool mmap = config_.shard_storage == detect::ShardStorage::kMmap;
  const PlanKey key = plan_key(graph, pcfg, config_.shard_storage);
  std::shared_ptr<const Plan> plan = plan_cache().get(key);
  if (plan && mmap && !spill_intact(*plan)) plan = nullptr;
  if (plan) {
    ++result.plan_hits;
    if (rec) rec->count("cache/plan_hit", 1);
    return plan;
  }
  ++result.plan_misses;
  if (rec) rec->count("cache/plan_miss", 1);
  auto built = std::make_shared<Plan>(make_plan(graph, pcfg));
  if (mmap) {
    const std::string dir = config_.spill_dir.empty()
                                ? std::filesystem::temp_directory_path().string()
                                : config_.spill_dir;
    spill_plan(*built, dir, key);
  }
  plan_cache().put(key, built);
  return built;
}

Result Engine::run(const Csr& graph, obs::Recorder* rec) {
  const bool debug = std::getenv("GLOUVAIN_SHARD_DEBUG") != nullptr;
  util::Timer total_timer;
  device_->clear_spills();

  const VertexId n0 = graph.num_vertices();
  Result result;
  result.community.resize(n0);
  device_->for_each(n0, [&](std::size_t v) {
    result.community[v] = static_cast<Community>(v);
  });

  const Csr* current = &graph;
  Csr owned;
  double prev_q = -1.0;
  std::uint64_t prev_spills = 0;

  // Sharded-level scratch, reused across levels and rounds. seq_lane
  // carries the marshal buffers of the sequential simulation; the
  // concurrent mode keeps one Lane per leased device in conc_ instead.
  GlobalState gs;
  std::vector<Weight> strengths;
  Lane seq_lane;
  std::vector<VertexId> active_ids;  ///< iota; prefix = a shard's owned
  std::vector<int> last_moved;       ///< round a global vertex last moved
  std::vector<int> dirty_round;      ///< round a neighbour last moved
  std::vector<std::vector<Proposal>> proposals;  ///< per-shard move buffer
  std::vector<Proposal> all_props;  ///< gain-ordered barrier commit queue
  std::vector<SweepOutcome> outcomes;            ///< per-shard, per round

  for (int level = 0; level < config_.max_levels; ++level) {
    if (rec) rec->set_level(level);
    const VertexId n = current->num_vertices();
    const unsigned k = shards_for(n);
    LevelReport report;
    report.vertices = n;
    report.arcs = current->num_arcs();
    report.modularity_before = prev_q < -0.5 ? 0 : prev_q;
    const double threshold = config_.thresholds.threshold_for(report.vertices);

    double phase_q = 0;
    int sweeps = 0;
    std::span<const Community> labels;
    util::Timer opt_timer;

    if (k <= 1) {
      // ---- unsharded level: the core::Louvain level protocol
      // verbatim, so shards <= 1 stays bitwise-identical to "core" and
      // small contracted levels get an exact finishing pass.
      state_.reset(*current, *device_);
      const core::PhaseResult phase = core::optimize_phase(
          *device_, *current, config_.core, state_,
          std::span<const VertexId>{}, threshold, ws_, rec);
      phase_q = phase.modularity;
      sweeps = phase.sweeps;
      labels = state_.community;
      const double crit = opt_timer.seconds();
      result.critical_seconds += crit;
      // Work model (Result::critical_work): upload + one arc pass per
      // move sweep. The phase's own per-sweep modularity evaluations
      // are not charged — a deliberate bias AGAINST the sharded runs,
      // whose gates compare to this baseline.
      const double level_work =
          static_cast<double>(report.arcs) *
          (1.0 + static_cast<double>(std::max(phase.sweeps, 1)));
      result.critical_work += level_work;
      if (rec) {
        rec->count("shard/critical_ns", crit * 1e9);
        rec->count("shard/critical_work", level_work);
      }
      if (level == 0) {
        result.shards_used = 1;
        result.first_phase_teps =
            phase.first_sweep_seconds > 0
                ? static_cast<double>(report.arcs) / phase.first_sweep_seconds
                : 0;
      }
    } else {
      // ---- sharded level: partition (through the plan cache), then
      // alternate per-shard restricted phases with halo exchanges of
      // labels and community totals. Sequential mode sweeps the shards
      // Gauss-Seidel on the one warm device; concurrent mode leases up
      // to k pooled devices and runs each round as a barrier-
      // synchronized Jacobi step (see engine.hpp).
      std::shared_ptr<const Plan> plan_ptr;
      {
        obs::Span span(rec, "shard/partition");
        plan_ptr = plan_for(*current, k, rec, result);
      }
      const Plan& plan = *plan_ptr;
      if (level == 0) {
        result.partition = plan.stats;
        result.shards_used = k;
      }
      if (rec) {
        rec->count("shard/shards", static_cast<double>(k));
        rec->count("shard/cut_edges",
                   static_cast<double>(plan.stats.cut_edges));
        rec->count("shard/ghost_ratio", plan.stats.ghost_ratio);
        rec->count("shard/imbalance", plan.stats.imbalance);
        rec->count("shard/replicated_hubs",
                   static_cast<double>(plan.stats.replicated_hubs));
        rec->count("shard/halo_values",
                   static_cast<double>(plan.exchange.values_per_round()));
      }

      strengths = current->compute_strengths();
      gs.reset(n);
      gs.rebuild_tot(strengths);
      seq_lane.comm_slot.assign(n, kInvalidVertex);
      VertexId max_owned = 0;
      for (const Shard& sh : plan.shards) {
        max_owned = std::max(max_owned, sh.num_owned);
      }
      active_ids.resize(max_owned);
      for (VertexId i = 0; i < max_owned; ++i) active_ids[i] = i;
      last_moved.assign(n, -1);
      dirty_round.assign(n, -1);
      if (shard_states_.size() < k) shard_states_.resize(k);
      if (proposals.size() < k) proposals.resize(k);
      if (outcomes.size() < k) outcomes.resize(k);

      const bool concurrent = config_.concurrent_shards;
      simt::DeviceLease lease;
      unsigned lanes_n = 0;
      if (concurrent) {
        // One lease per level: the degradation ladder (k devices ->
        // fewer -> 1) happens here, inside acquire().
        lease = pool().acquire(k);
        lanes_n = lease.granted();
        result.devices_used = std::max(result.devices_used, lanes_n);
        if (!conc_) conc_ = std::make_unique<ConcurrentState>();
        if (conc_->lanes.size() < lanes_n) conc_->lanes.resize(lanes_n);
        for (unsigned l = 0; l < lanes_n; ++l) {
          conc_->lanes[l].comm_slot.assign(n, kInvalidVertex);
        }
        if (rec) rec->count_max("shard/devices", lanes_n);
      }

      // Every round (round 0 included) runs with the phase-internal
      // modularity machinery off and the sweep count capped: the round
      // loop is the outer iteration here (stopping on the all-reduced
      // moved count), each in-phase evaluation is a full O(|E_local|)
      // pass that would otherwise dominate the per-round critical path
      // at small k, and a shard-locally-converged deep phase is
      // redundant with the rounds themselves — moves its later sweeps
      // would make happen in the next round instead, against an
      // exchanged (fresher) boundary. Sweeps stop on the accumulated
      // predicted gain, bounded hard.
      core::Config frontier_cfg = config_.core;
      frontier_cfg.eval_phase_modularity = false;
      // ONE sweep per round: an in-phase second sweep would re-scan
      // the whole active set against the same stale boundary, while
      // the next round re-scans only the shrunken frontier against
      // exchanged labels — the round loop is the cheaper (and fresher)
      // iteration. This is the one-scan-per-exchange structure of
      // distributed Louvain.
      frontier_cfg.max_sweeps_per_level = 1;

      double level_critical = 0;
      double level_work = 0;
      double first_sweep_max = 0;
      for (int round = 0; round < config_.rounds_per_level; ++round) {
        std::uint64_t moved = 0;
        double max_shard_seconds = 0;
        double max_shard_work = 0;
        double commit_seconds = 0;   ///< validated barrier commit (conc)
        double validate_arcs = 0;    ///< arcs re-scored by that commit
        if (!concurrent) {
          // Symmetric Gauss-Seidel over the shards: odd rounds sweep in
          // reverse, so no shard is permanently the leader (with a
          // fixed order the first shard always moves against a stale
          // boundary and the last always reacts — the cut settles
          // lopsided). Each sweep publishes before the next shard runs.
          for (unsigned si = 0; si < k; ++si) {
            const unsigned s = (round & 1) != 0 ? k - 1 - si : si;
            const Shard& sh = plan.shards[s];
            if (sh.num_owned == 0) continue;
            obs::Span shard_span(rec, "shard/phase");
            const SweepOutcome o = run_shard_sweep(
                *device_, sh, shard_states_[s], frontier_cfg, threshold,
                round, config_.hub_degree, config_.hub_settle_rounds, gs,
                last_moved, dirty_round,
                std::span<const VertexId>(active_ids.data(), sh.num_owned),
                seq_lane, ws_, rec, proposals[s]);
            if (!o.ran) continue;
            sweeps += o.sweeps;
            if (round == 0) {
              first_sweep_max =
                  std::max(first_sweep_max, o.first_sweep_seconds);
            }
            moved += apply_proposals(proposals[s], gs, *current, strengths,
                                     round, last_moved, dirty_round);
            max_shard_seconds = std::max(max_shard_seconds, o.seconds);
            max_shard_work = std::max(max_shard_work, o.work);
            if (debug) {
              std::fprintf(stderr, "  [shard %u] props=%zu sweeps=%d t=%.3fs\n",
                           s, proposals[s].size(), o.sweeps, o.seconds);
            }
          }
        } else {
          // Jacobi round: every shard sweeps against the same
          // round-start snapshot of gs/last_moved/dirty_round, on its
          // leased device lane; the join below is the barrier, and
          // only then does the driver publish the buffered moves —
          // in fixed shard order, so the result is deterministic no
          // matter how many devices the lease granted.
          obs::Span round_span(rec, "shard/round");
          const std::int64_t anchor_raw = steady_now_ns();
          const std::int64_t anchor_rel = rec ? rec->elapsed_ns() : 0;
          run_lanes(lanes_n, [&](unsigned lane_id) {
            Lane& lane = conc_->lanes[lane_id];
            simt::Device& dev = lease.device(lane_id);
            for (unsigned s = lane_id; s < k; s += lanes_n) {
              const Shard& sh = plan.shards[s];
              outcomes[s] = SweepOutcome{};
              proposals[s].clear();
              if (sh.num_owned == 0) continue;
              outcomes[s] = run_shard_sweep(
                  dev, sh, shard_states_[s], frontier_cfg, threshold, round,
                  config_.hub_degree, config_.hub_settle_rounds, gs,
                  last_moved, dirty_round,
                  std::span<const VertexId>(active_ids.data(), sh.num_owned),
                  lane, lane.ws, nullptr, proposals[s]);
            }
          });
          // ---- barrier: publish timings, then moves, in shard order.
          for (unsigned s = 0; s < k; ++s) {
            const SweepOutcome& o = outcomes[s];
            if (!o.ran) continue;
            if (rec) {
              rec->add_timed_span("shard/phase",
                                  anchor_rel + (o.start_raw - anchor_raw),
                                  o.dur_ns, lease.lane_of(s) + 1);
            }
            sweeps += o.sweeps;
            if (round == 0) {
              first_sweep_max =
                  std::max(first_sweep_max, o.first_sweep_seconds);
            }
            max_shard_seconds = std::max(max_shard_seconds, o.seconds);
            max_shard_work = std::max(max_shard_work, o.work);
          }
          // Validated commit (apply_proposals_validated): the round's
          // proposals merge into one best-first queue — predicted dQ
          // descending, vertex id breaking ties (each owned vertex
          // appears at most once, so the order is total and device-
          // count independent) — and each proposer gets a fresh
          // best-destination decision against the partially-committed
          // view before it lands. Cross-shard swap/overcrowding
          // oscillations die here rather than in the modularity, and
          // when two snapshot-scored moves conflict the more valuable
          // one decides first.
          util::Timer commit_timer;
          all_props.clear();
          for (unsigned s = 0; s < k; ++s) {
            all_props.insert(all_props.end(), proposals[s].begin(),
                             proposals[s].end());
            if (debug && outcomes[s].ran) {
              std::fprintf(stderr,
                           "  [shard %u @lane %u] props=%zu sweeps=%d "
                           "t=%.3fs\n",
                           s, lease.lane_of(s), proposals[s].size(),
                           outcomes[s].sweeps, outcomes[s].seconds);
            }
          }
          std::sort(all_props.begin(), all_props.end(),
                    [](const Proposal& a, const Proposal& b) {
                      return a.gain != b.gain ? a.gain > b.gain : a.v < b.v;
                    });
          moved += apply_proposals_validated(
              all_props, gs, *current, strengths, round, last_moved,
              dirty_round, conc_->commit, validate_arcs);
          commit_seconds = commit_timer.seconds();
        }

        // Halo exchange: rebuild every community's total strength from
        // scratch (the O(|C|) all-reduce of a real deployment, and the
        // fp-drift hygiene for apply_move's incremental updates).
        util::Timer ex_timer;
        {
          obs::Span ex_span(rec, "shard/exchange");
          gs.rebuild_tot(strengths);
        }
        const double exchange_seconds = ex_timer.seconds();
        // The validated commit is driver-side serial work on the
        // concurrent critical path (sequential rounds publish inside
        // the per-shard sweep instead), so it is charged in full.
        level_critical += max_shard_seconds + commit_seconds +
                          exchange_seconds;
        // The exchange is the O(n) label broadcast + tot all-reduce.
        level_work += max_shard_work + validate_arcs + static_cast<double>(n);
        ++result.exchange_rounds;
        if (rec) {
          rec->count("shard/rounds", 1);
          rec->count("shard/exchange_ns", exchange_seconds * 1e9);
          rec->count("shard/moved", static_cast<double>(moved), round);
        }
        // Round stopping rule: the all-reduced moved count, as
        // distributed Louvain does it — a global modularity evaluation
        // is a full O(|E|) pass and does NOT belong in the per-round
        // exchange (it would dominate the critical path at small k).
        // Rounds settle the cut boundary, so run them until migration
        // dries up; the frontier restriction above makes the trailing
        // rounds cheap.
        if (debug) {
          std::fprintf(stderr,
                       "[shard] level=%d k=%u round=%d moved=%llu "
                       "max_shard=%.3fs work=%.1fM exchange=%.3fs%s\n",
                       level, k, round,
                       static_cast<unsigned long long>(moved),
                       max_shard_seconds, max_shard_work * 1e-6,
                       exchange_seconds, concurrent ? " [jacobi]" : "");
        }
        const auto move_floor = static_cast<std::uint64_t>(
            config_.round_move_floor * static_cast<double>(n));
        if (moved < std::max<std::uint64_t>(move_floor, 16)) break;
      }
      // One global modularity evaluation per level (the figure a real
      // deployment computes alongside the final all-reduce), charged to
      // the critical path once.
      util::Timer q_timer;
      {
        obs::Span q_span(rec, "shard/modularity");
        phase_q = core::device_modularity(*device_, *current, gs.labels_raw,
                                          gs.tot_raw, ws_);
      }
      level_critical += q_timer.seconds();
      // The level-end modularity evaluation is itself sharded in a
      // real deployment (each device reduces its local arcs, then an
      // all-reduce), so the critical path carries arcs / k of it.
      level_work += static_cast<double>(report.arcs) / k;
      labels = gs.labels();
      result.critical_seconds += level_critical;
      result.critical_work += level_work;
      if (rec) {
        rec->count("shard/critical_ns", level_critical * 1e9);
        rec->count("shard/critical_work", level_work);
      }
      if (level == 0) {
        result.first_phase_teps =
            first_sweep_max > 0
                ? static_cast<double>(report.arcs) / first_sweep_max
                : 0;
      }
    }

    report.optimize_seconds = opt_timer.seconds();
    report.iterations = sweeps;
    report.modularity_after = phase_q;

    // Termination always checks against the FINE threshold (as core).
    const bool converged =
        prev_q >= -0.5 && (phase_q - prev_q) < config_.thresholds.t_final;

    util::Timer agg_timer;
    core::AggregationResult agg =
        core::aggregate(*device_, *current, config_.core, labels, ws_, rec);
    {
      obs::Span fold_span(rec, "fold");
      auto dense =
          ws_.buffer<Community>(core::Workspace::Slot::kFoldDense, n);
      device_->for_each(n, [&](std::size_t v) {
        dense[v] = agg.new_id[labels[v]];
      });
      device_->for_each(result.community.size(), [&](std::size_t v) {
        result.community[v] = dense[result.community[v]];
      });
      result.dendrogram.push_level(
          std::vector<Community>(dense.begin(), dense.end()));
    }
    ws_.put(std::move(agg.new_id));
    report.aggregate_seconds = agg_timer.seconds();
    result.levels.push_back(report);

    if (rec) {
      rec->count("level/vertices", static_cast<double>(report.vertices));
      rec->count("level/arcs", static_cast<double>(report.arcs));
      const std::uint64_t spills = device_->total_spills();
      rec->count("level/shared_spills",
                 static_cast<double>(spills - prev_spills));
      prev_spills = spills;
    }

    const bool shrunk = agg.contracted.num_vertices() < n;
    prev_q = phase_q;
    Csr next = std::move(agg.contracted);
    if (owned.num_vertices() > 0) ws_.recycle(std::move(owned));
    owned = std::move(next);
    current = &owned;
    if (converged || !shrunk) break;
  }
  if (rec) rec->set_level(-1);

  result.modularity = prev_q;
  result.total_seconds = total_timer.seconds();
  result.device.shared_spills = device_->total_spills();
  result.device.workers = device_->workers();
  return result;
}

Result louvain(const Csr& graph, const Config& config, obs::Recorder* rec) {
  Engine engine(config);
  return engine.run(graph, rec);
}

}  // namespace glouvain::shard
