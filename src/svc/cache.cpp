#include "svc/cache.hpp"

namespace glouvain::svc {

std::shared_ptr<const core::Result> ResultCache::get(const Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void ResultCache::put(const Fingerprint& key,
                      std::shared_ptr<const core::Result> value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(value)});
  index_.emplace(key, lru_.begin());
  ++insertions_;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {hits_, misses_, insertions_, evictions_, lru_.size(), capacity_};
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace glouvain::svc
