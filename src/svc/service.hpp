// The concurrent community-detection service: multiplexes a stream of
// detection jobs over a pool of reusable detect::Detector instances.
//
//   svc::Service service({.devices = 2});
//   svc::JobId id = service.submit(std::move(graph), {.priority = 3});
//   ...
//   svc::JobResult r = service.wait(id);   // r.result->community, ...
//
// Pipeline (see DESIGN.md "Serving"): submit() fingerprints the graph,
// consults the LRU result cache (a hit completes immediately), applies
// admission control (reject when the bounded priority queue is full),
// and routes by estimated cost — tiny graphs go to the sequential
// backend so they never occupy a simt device. Worker threads — one
// permanently bound to each pooled "core" detector (whose simt device
// + arenas stay warm across jobs), plus `aux_workers` device-less
// workers that only take sequential jobs — pop jobs in priority order,
// expire those whose deadline passed while queued, run the job's
// backend through the detect::make() registry (no per-backend dispatch
// here), publish the result, and feed the cache.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "detect/detector.hpp"
#include "graph/csr.hpp"
#include "stream/delta.hpp"
#include "stream/session.hpp"
#include "svc/cache.hpp"
#include "svc/job.hpp"
#include "svc/stats.hpp"
#include "util/status.hpp"

namespace glouvain::svc {

struct ServiceConfig {
  /// Pooled "core" detectors; each gets a dedicated worker thread that
  /// reuses the instance (device + arenas) across jobs.
  unsigned devices = 2;
  /// simt worker threads per pooled device (0 = hardware concurrency).
  unsigned device_threads = 0;
  /// Extra device-less workers that only run sequential-backend jobs,
  /// so degraded tiny jobs do not wait behind device-sized ones.
  unsigned aux_workers = 1;
  /// Pending-job bound; submit() rejects beyond it (backpressure).
  std::size_t queue_capacity = 64;
  /// Result-cache entries (0 disables caching).
  std::size_t cache_capacity = 32;
  /// Backend::Auto degradation threshold: jobs with n + m at or below
  /// this run on the sequential backend.
  std::uint64_t seq_cost_limit = 1u << 13;
  /// Workers do not start picking up jobs until resume() — lets tests
  /// and batch clients stage a queue deterministically.
  bool start_paused = false;

  /// Shared algorithm options handed to every backend. For pooled core
  /// devices, `device_threads` above supersedes options.threads.
  detect::Options options;
  /// Backend-specific extension knobs forwarded to detect::make().
  /// The Options slice inside ext.core is overwritten by `options`.
  detect::Extensions ext;
};

class Service {
 public:
  explicit Service(const ServiceConfig& config = {});

  /// Drains: queued jobs still run, then workers join. Use
  /// shutdown(false) first to discard the backlog instead.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admit a job. Always returns a valid id whose status reports the
  /// outcome: Rejected under backpressure, Completed for a cache hit,
  /// Queued otherwise. The graph is owned by the service until the
  /// job reaches a terminal state.
  JobId submit(graph::Csr graph, const JobOptions& options = {});

  /// Status-reporting admission: backpressure comes back as
  /// kResourceExhausted (no job record is left behind) instead of a
  /// Rejected job the caller must wait() on.
  [[nodiscard]] util::StatusOr<JobId> try_submit(
      graph::Csr graph, const JobOptions& options = {});

  /// Current status, without blocking. Unknown ids (including ids
  /// already consumed by wait()) report Cancelled.
  JobStatus poll(JobId id) const;

  /// Block until the job is terminal and consume its record. Honors
  /// the job's deadline: a queued job whose deadline fires during the
  /// wait is expired from here. One waiter per job.
  JobResult wait(JobId id);

  /// Remove a still-queued job. False once it is running or terminal.
  /// ApplyDelta jobs are never cancellable — a session's delta sequence
  /// must apply gaplessly or its epoch bookkeeping would lie.
  bool cancel(JobId id);

  // ---- Dynamic-graph sessions (the stream subsystem, served) ----
  //
  //   auto sid = service.open_session(std::move(graph));
  //   auto jid = service.submit_delta(*sid, delta);
  //   auto r = service.wait(*jid);          // r.result = post-delta partition
  //   service.close_session(*sid);
  //
  // Each session wraps a stream::Session (mutable graph + warm
  // detector) and is pinned to one device worker; its ApplyDelta jobs
  // only run there, in submission order, so epochs advance gaplessly.
  // Cached delta results are keyed on (graph, backend, options,
  // session, epoch) — see svc::job_key — so they never outlive a
  // mutation and two backends or sessions never alias.

  /// Create a session; runs the initial cold detection synchronously on
  /// the calling thread. `priority` is the fixed priority of every
  /// ApplyDelta job of this session (per-delta priorities would let the
  /// queue reorder a session's deltas).
  [[nodiscard]] util::StatusOr<SessionId> open_session(
      graph::Csr graph, stream::SessionOptions options = {},
      int priority = 0);

  /// Queue one delta batch (job kind ApplyDelta). The returned JobId
  /// supports poll()/wait() like any other job; its JobResult::result
  /// holds the post-delta partition of the whole graph.
  [[nodiscard]] util::StatusOr<JobId> submit_delta(
      SessionId session, stream::Delta delta, bool use_cache = true);

  /// Close an idle session. kFailedPrecondition while delta jobs are
  /// still queued or running; wait() on them first.
  [[nodiscard]] util::Status close_session(SessionId session);

  struct SessionInfo {
    SessionId id = kInvalidSession;
    std::string backend;
    std::uint64_t epoch = 0;        ///< deltas applied so far
    graph::VertexId num_vertices = 0;
    graph::EdgeIdx num_arcs = 0;
    double modularity = 0;          ///< of the latest partition
    unsigned pinned_worker = 0;     ///< device worker the session runs on
    std::size_t outstanding = 0;    ///< queued + running delta jobs
  };
  [[nodiscard]] util::StatusOr<SessionInfo> session_info(SessionId session) const;

  /// Release paused workers (see ServiceConfig::start_paused).
  void resume();

  /// Stop workers; drain=true finishes the backlog first, drain=false
  /// cancels every queued job. Idempotent. Called by the destructor.
  void shutdown(bool drain = true);

  Stats stats() const;
  const ServiceConfig& config() const noexcept { return config_; }

 private:
  struct Job;
  struct SessionState;

  void worker_loop(unsigned index);
  void finish(const std::shared_ptr<Job>& job, JobStatus status);

  ServiceConfig config_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace glouvain::svc
