// Content identity of a graph: a 128-bit hash over the raw CSR arrays
// (offsets, adjacency, edge weights). Two structurally identical graphs
// — same vertex numbering, same neighbor order, same weights — produce
// the same fingerprint, which is what the service's result cache keys
// on: per Chiêm et al. (arXiv:1702.04645) run-to-run nondeterminism is
// acceptable as long as quality holds, so identity of the INPUT, not of
// the run, is the right cache key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "detect/options.hpp"
#include "graph/csr.hpp"

namespace glouvain::svc {

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

  /// 32 hex digits, for logs and the batch report.
  std::string hex() const;
};

/// For unordered_map keying.
struct FingerprintHash {
  std::size_t operator()(const Fingerprint& f) const noexcept {
    return static_cast<std::size_t>(f.hi ^ (f.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Hash the CSR arrays. O(n + m); single pass, no allocation.
Fingerprint fingerprint(const graph::Csr& graph);

/// The result cache's actual key: the graph fingerprint folded with
/// everything else that determines the answer — the backend name, the
/// quality-relevant algorithm options (thresholds, level/sweep caps;
/// NOT `threads`, which only changes speed), and for dynamic-graph
/// sessions the (session, delta-epoch) pair, so a cached result never
/// outlives a mutation and two sessions at the same epoch never alias.
/// O(1); cheap enough to call per submit.
Fingerprint job_key(const Fingerprint& graph_fp, std::string_view backend,
                    const detect::Options& options, std::uint64_t session = 0,
                    std::uint64_t epoch = 0);

}  // namespace glouvain::svc
