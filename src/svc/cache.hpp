// Thread-safe LRU cache of detection results keyed by graph
// fingerprint. Values are shared_ptr<const core::Result>: a hit hands
// the client the same immutable object the first run produced, so
// repeated submissions of the same graph return without touching a
// device and "same fingerprint -> identical community vector" holds by
// construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/louvain.hpp"
#include "svc/fingerprint.hpp"

namespace glouvain::svc {

class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
  };

  /// capacity == 0 disables caching (every lookup misses, puts drop).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Lookup; a hit refreshes recency. Null on miss.
  std::shared_ptr<const core::Result> get(const Fingerprint& key);

  /// Insert or refresh; evicts the least-recently-used entry beyond
  /// capacity.
  void put(const Fingerprint& key, std::shared_ptr<const core::Result> value);

  Stats stats() const;
  void clear();

 private:
  struct Entry {
    Fingerprint key;
    std::shared_ptr<const core::Result> value;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<Fingerprint, std::list<Entry>::iterator, FingerprintHash>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace glouvain::svc
