// Job vocabulary of the service layer: what a client submits (a graph
// plus JobOptions), how a job is routed (Backend), the lifecycle it
// moves through (JobStatus), and what the client gets back (JobResult).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "core/louvain.hpp"
#include "detect/options.hpp"
#include "util/status.hpp"

namespace glouvain::svc {

using JobId = std::uint64_t;
inline constexpr JobId kInvalidJob = 0;

/// Handle of a long-lived dynamic-graph session (Service::open_session).
using SessionId = std::uint64_t;
inline constexpr SessionId kInvalidSession = 0;

/// Which detection engine runs the job. Auto applies the scheduler's
/// degradation policy: jobs whose estimated cost (n + m from the CSR
/// header) is below ServiceConfig::seq_cost_limit are routed to the
/// sequential backend instead of occupying a simt device.
enum class Backend {
  Auto,
  Core,   ///< GPU-style Louvain on a pooled simt device
  Seq,    ///< sequential Blondel-style Louvain (no device)
  Plm,    ///< shared-memory parallel Louvain (global pool)
  Multi,  ///< coarse-grained multi-device Louvain (deprecated; see Shard)
  Shard,  ///< sharded multi-device Louvain with halo exchange
};

/// Lifecycle: Rejected / Cancelled / Expired / Failed / Completed are
/// terminal; Queued -> Running -> Completed is the happy path.
enum class JobStatus {
  Queued,
  Running,
  Completed,
  Cancelled,  ///< cancel() removed it before it ran
  Expired,    ///< deadline passed while still queued
  Rejected,   ///< queue was full at submit (backpressure)
  Failed,     ///< backend threw; JobResult::error has the message
};

inline bool is_terminal(JobStatus s) noexcept {
  return s != JobStatus::Queued && s != JobStatus::Running;
}

const char* to_string(JobStatus s) noexcept;
const char* to_string(Backend b) noexcept;

struct JobOptions {
  /// Higher runs first; ties run in submission order.
  int priority = 0;
  /// Deadline measured from submit(); a job still queued when it fires
  /// expires instead of running. Zero = no deadline. Jobs already
  /// running are never interrupted (admission deadline, not a kill).
  std::chrono::milliseconds deadline{0};
  Backend backend = Backend::Auto;
  /// Consult/populate the result cache for this job.
  bool use_cache = true;
  /// Per-job detection options; null = the service-wide defaults
  /// (ServiceConfig::options). The override participates in the result
  /// cache key exactly like the shared options do, so two jobs that
  /// differ only in, say, the partition seed never alias a cache entry.
  std::shared_ptr<const detect::Options> options;
};

struct JobResult {
  JobStatus status = JobStatus::Queued;
  /// Set iff status == Completed. Shared with the cache: repeated
  /// submissions of the same graph receive the same object. For
  /// non-core backends, `device` holds zeroes.
  std::shared_ptr<const core::Result> result;
  Backend backend = Backend::Auto;  ///< backend that (would have) run it
  bool cache_hit = false;
  double queue_seconds = 0;  ///< submit -> start (or terminal event)
  double run_seconds = 0;    ///< start -> finish, 0 for cache hits
  double total_seconds = 0;  ///< submit -> terminal, wall clock
  /// Order in which the service started running jobs (1-based); 0 for
  /// jobs that never ran. Exposes scheduling order to tests/benches.
  std::uint64_t start_sequence = 0;
  std::string error;  ///< set iff status == Failed
};

/// Map a terminal JobResult onto the shared Status vocabulary (so batch
/// clients and the CLI derive exit codes uniformly). Non-terminal
/// states report kFailedPrecondition.
inline util::Status to_status(const JobResult& r) {
  switch (r.status) {
    case JobStatus::Completed: return util::Status::ok_status();
    case JobStatus::Rejected:
      return util::Status::resource_exhausted("job rejected: queue full");
    case JobStatus::Expired:
      return util::Status::deadline_exceeded("job expired before running");
    case JobStatus::Cancelled: return util::Status::cancelled("job cancelled");
    case JobStatus::Failed:
      return util::Status::internal(r.error.empty() ? "backend failed"
                                                    : r.error);
    case JobStatus::Queued:
    case JobStatus::Running:
      return util::Status::failed_precondition("job not terminal");
  }
  return util::Status::internal("unknown job status");
}

}  // namespace glouvain::svc
