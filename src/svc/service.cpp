#include "svc/service.hpp"

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "shard/plan_cache.hpp"
#include "simt/device_pool.hpp"
#include "svc/queue.hpp"
#include "util/timer.hpp"

namespace glouvain::svc {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

Backend backend_from_name(std::string_view name) noexcept {
  if (name == "core") return Backend::Core;
  if (name == "seq") return Backend::Seq;
  if (name == "plm") return Backend::Plm;
  if (name == "multi") return Backend::Multi;
  if (name == "shard") return Backend::Shard;
  return Backend::Auto;  // custom registry backends count as "other"
}
}  // namespace

/// One dynamic-graph session. `session` (the mutable graph + warm
/// detector) is touched only by open_session() before publication and
/// by the pinned device worker afterwards — never under Impl::m. The
/// snapshot fields below it are guarded by Impl::m and exist so
/// session_info() never has to look at `session` itself.
struct Service::SessionState {
  explicit SessionState(stream::Session s) : session(std::move(s)) {}

  SessionId id = kInvalidSession;
  unsigned pinned = 0;   ///< device worker that runs this session's jobs
  int priority = 0;      ///< fixed priority of every ApplyDelta job
  Fingerprint base_fp;   ///< fingerprint of the graph at epoch 0
  stream::Session session;

  // ---- guarded by Impl::m ----
  std::uint64_t epoch = 0;
  graph::VertexId num_vertices = 0;
  graph::EdgeIdx num_arcs = 0;
  double modularity = 0;
  std::size_t outstanding = 0;  ///< queued + running delta jobs
  std::uint64_t enqueued = 0;   ///< deltas ever admitted (epoch targets)
};

const char* to_string(JobStatus s) noexcept {
  switch (s) {
    case JobStatus::Queued: return "queued";
    case JobStatus::Running: return "running";
    case JobStatus::Completed: return "completed";
    case JobStatus::Cancelled: return "cancelled";
    case JobStatus::Expired: return "expired";
    case JobStatus::Rejected: return "rejected";
    case JobStatus::Failed: return "failed";
  }
  return "?";
}

const char* to_string(Backend b) noexcept {
  switch (b) {
    case Backend::Auto: return "auto";
    case Backend::Core: return "core";
    case Backend::Seq: return "seq";
    case Backend::Plm: return "plm";
    case Backend::Multi: return "multi";
    case Backend::Shard: return "shard";
  }
  return "?";
}

/// One submitted job. Mutable fields are guarded by Impl::m except
/// while the owning worker runs the backend, during which the job is
/// in Running state and no other thread touches the run fields.
struct Service::Job {
  JobId id = kInvalidJob;
  JobOptions options;
  Backend routed = Backend::Auto;
  std::shared_ptr<const graph::Csr> graph;  ///< released when terminal
  Fingerprint fp;

  Clock::time_point submitted;
  Clock::time_point deadline;
  bool has_deadline = false;

  /// Set iff this is an ApplyDelta job; `delta` is consumed by the
  /// pinned worker and `target_epoch` is the session epoch the apply
  /// advances to (admission counts deltas, applies never skip).
  std::shared_ptr<SessionState> session;
  stream::Delta delta;
  std::uint64_t target_epoch = 0;

  JobStatus status = JobStatus::Queued;
  std::shared_ptr<const core::Result> result;
  bool cache_hit = false;
  double queue_seconds = 0;
  double run_seconds = 0;
  double total_seconds = 0;
  std::uint64_t start_sequence = 0;
  std::string error;
};

struct Service::Impl {
  explicit Impl(const ServiceConfig& cfg)
      : queue(cfg.queue_capacity), cache(cfg.cache_capacity) {}

  mutable std::mutex m;
  std::condition_variable cv_work;  ///< workers: queue / stop / resume
  std::condition_variable cv_done;  ///< waiters: job state changes

  bool paused = false;
  bool stopping = false;
  bool drain = true;
  JobId next_id = 1;
  std::uint64_t start_counter = 0;
  std::size_t running = 0;

  BoundedPriorityQueue<std::shared_ptr<Job>> queue;
  std::unordered_map<JobId, std::shared_ptr<Job>> jobs;
  std::unordered_map<SessionId, std::shared_ptr<SessionState>> sessions;
  SessionId next_session = 1;
  unsigned next_pin = 0;  ///< round-robin session -> device worker
  ResultCache cache;
  Stats counters;  ///< monotonic part; instantaneous fields unused here

  /// Extensions handed to every detect::make() call: the configured
  /// ext with the shared options folded in and the pooled-device
  /// thread count applied.
  detect::Extensions run_ext;
  unsigned device_threads_resolved = 0;

  /// Shared device pool for concurrent shard rounds: every
  /// shard-routed job's engine leases from this one pool, so two
  /// concurrent sharded jobs split the service's devices instead of
  /// each spawning a private shards-wide pool (run_ext.shard carries
  /// it into every detect::make()).
  std::shared_ptr<simt::DevicePool> shard_pool;

  /// Pooled stateful detectors, one per device worker; each keeps its
  /// simt device warm across jobs. Only the owning worker touches its
  /// entry after construction.
  std::vector<std::unique_ptr<detect::Detector>> devices;
  std::vector<std::thread> threads;
};

Service::Service(const ServiceConfig& config)
    : config_(config), impl_(std::make_unique<Impl>(config)) {
  // A service with no device could never run a core-routed job.
  if (config_.devices == 0) config_.devices = 1;
  impl_->paused = config_.start_paused;

  impl_->run_ext = config_.ext;
  impl_->run_ext.core = core::to_config(config_.options, impl_->run_ext.core);
  impl_->run_ext.core.device.worker_threads = config_.device_threads;
  // The sharded backend's per-shard phases share the pooled-device
  // thread budget (its Options slice is re-lowered per run).
  impl_->run_ext.shard =
      shard::to_config(config_.options, impl_->run_ext.shard);
  impl_->run_ext.shard.core.device.worker_threads = config_.device_threads;
  impl_->device_threads_resolved =
      config_.device_threads
          ? config_.device_threads
          : (config_.options.threads ? config_.options.threads
                                     : std::thread::hardware_concurrency());

  {
    simt::DevicePoolConfig pc;
    pc.max_devices = config_.devices;
    pc.threads_per_device = impl_->device_threads_resolved;
    pc.device = impl_->run_ext.shard.core.device;
    pc.device.worker_threads = 0;
    impl_->shard_pool = std::make_shared<simt::DevicePool>(pc);
    impl_->run_ext.shard.device_pool = impl_->shard_pool;
  }

  impl_->devices.reserve(config_.devices);
  for (unsigned d = 0; d < config_.devices; ++d) {
    auto made = detect::make("core", impl_->run_ext);
    if (!made.ok()) {
      throw std::runtime_error("svc: cannot construct core detector: " +
                               made.status().to_string());
    }
    impl_->devices.push_back(std::move(made.value()));
  }

  const unsigned total = config_.devices + config_.aux_workers;
  impl_->threads.reserve(total);
  for (unsigned w = 0; w < total; ++w) {
    impl_->threads.emplace_back([this, w] { worker_loop(w); });
  }
}

Service::~Service() { shutdown(/*drain=*/true); }

JobId Service::submit(graph::Csr graph, const JobOptions& options) {
  const std::uint64_t cost = static_cast<std::uint64_t>(graph.num_vertices()) +
                             graph.num_arcs();
  auto job = std::make_shared<Job>();
  job->options = options;
  job->routed = options.backend != Backend::Auto
                    ? options.backend
                    : (cost <= config_.seq_cost_limit ? Backend::Seq
                                                      : Backend::Core);
  job->graph = std::make_shared<const graph::Csr>(std::move(graph));

  // Fingerprint + cache probe outside the service lock: hashing is
  // O(n + m) and the cache has its own mutex.
  const bool caching = options.use_cache && config_.cache_capacity > 0;
  std::shared_ptr<const core::Result> cached;
  if (caching) {
    // The key folds the resolved backend and the quality-relevant
    // options in with the graph hash, so the same graph run by two
    // backends (or two threshold schedules — or two partition seeds,
    // via a per-job options override) never aliases.
    const detect::Options& effective =
        options.options ? *options.options : config_.options;
    job->fp = job_key(fingerprint(*job->graph), to_string(job->routed),
                      effective);
    cached = impl_->cache.get(job->fp);
  }

  job->submitted = Clock::now();
  job->has_deadline = options.deadline.count() > 0;
  if (job->has_deadline) job->deadline = job->submitted + options.deadline;

  std::lock_guard<std::mutex> lock(impl_->m);
  job->id = impl_->next_id++;
  impl_->jobs.emplace(job->id, job);
  ++impl_->counters.submitted;

  if (cached) {
    ++impl_->counters.accepted;
    ++impl_->counters.cache_hits;
    job->result = std::move(cached);
    job->cache_hit = true;
    finish(job, JobStatus::Completed);
  } else if (impl_->stopping || impl_->queue.full()) {
    ++impl_->counters.rejected;
    job->status = JobStatus::Rejected;
    job->graph.reset();
    impl_->cv_done.notify_all();
  } else {
    ++impl_->counters.accepted;
    impl_->queue.push(job->id, options.priority, job);
    impl_->cv_work.notify_all();
  }
  return job->id;
}

util::StatusOr<JobId> Service::try_submit(graph::Csr graph,
                                          const JobOptions& options) {
  const JobId id = submit(std::move(graph), options);
  if (poll(id) == JobStatus::Rejected) {
    wait(id);  // consume the record; Rejected is terminal, no block
    return util::Status::resource_exhausted(
        "svc: queue full, job rejected at admission");
  }
  return id;
}

JobStatus Service::poll(JobId id) const {
  std::lock_guard<std::mutex> lock(impl_->m);
  const auto it = impl_->jobs.find(id);
  return it == impl_->jobs.end() ? JobStatus::Cancelled : it->second->status;
}

JobResult Service::wait(JobId id) {
  std::unique_lock<std::mutex> lock(impl_->m);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) {
    JobResult missing;
    missing.status = JobStatus::Cancelled;
    return missing;
  }
  const std::shared_ptr<Job> job = it->second;

  while (!is_terminal(job->status)) {
    if (job->status == JobStatus::Queued && job->has_deadline) {
      // Expire from the waiter side: a queued job whose deadline fires
      // must not wait for a worker to discover it.
      if (impl_->cv_done.wait_until(lock, job->deadline) ==
              std::cv_status::timeout &&
          job->status == JobStatus::Queued && Clock::now() >= job->deadline) {
        impl_->queue.erase(job->id);
        finish(job, JobStatus::Expired);
      }
    } else {
      impl_->cv_done.wait(lock);
    }
  }

  JobResult result;
  result.status = job->status;
  result.result = job->result;
  result.backend = job->routed;
  result.cache_hit = job->cache_hit;
  result.queue_seconds = job->queue_seconds;
  result.run_seconds = job->run_seconds;
  result.total_seconds = job->total_seconds;
  result.start_sequence = job->start_sequence;
  result.error = job->error;
  impl_->jobs.erase(job->id);
  return result;
}

bool Service::cancel(JobId id) {
  std::lock_guard<std::mutex> lock(impl_->m);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) return false;
  if (it->second->session) return false;  // delta sequences are gapless
  if (!impl_->queue.erase(id)) return false;  // running or terminal
  finish(it->second, JobStatus::Cancelled);
  return true;
}

util::StatusOr<SessionId> Service::open_session(graph::Csr graph,
                                                stream::SessionOptions options,
                                                int priority) {
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    if (impl_->stopping) {
      return util::Status::unavailable("svc: service is shutting down");
    }
  }

  // The epoch-0 fingerprint and the cold detection run on the calling
  // thread: both are O(graph) and need no service state.
  const Fingerprint base = fingerprint(graph);
  auto opened = stream::Session::open(std::move(graph), std::move(options));
  if (!opened.ok()) return opened.status();

  auto st = std::make_shared<SessionState>(std::move(opened).value());
  st->base_fp = base;
  st->priority = priority;
  st->num_vertices = st->session.graph().num_vertices();
  st->num_arcs = st->session.graph().num_arcs();
  st->modularity = st->session.result().modularity;

  std::lock_guard<std::mutex> lock(impl_->m);
  if (impl_->stopping) {
    return util::Status::unavailable("svc: service is shutting down");
  }
  st->id = impl_->next_session++;
  st->pinned = impl_->next_pin++ % static_cast<unsigned>(impl_->devices.size());
  impl_->sessions.emplace(st->id, st);
  ++impl_->counters.sessions_opened;
  return st->id;
}

util::StatusOr<JobId> Service::submit_delta(SessionId session,
                                            stream::Delta delta,
                                            bool use_cache) {
  auto job = std::make_shared<Job>();
  std::lock_guard<std::mutex> lock(impl_->m);
  const auto it = impl_->sessions.find(session);
  if (it == impl_->sessions.end()) {
    return util::Status::not_found("svc: unknown session " +
                                   std::to_string(session));
  }
  if (impl_->stopping) {
    return util::Status::unavailable("svc: service is shutting down");
  }
  ++impl_->counters.submitted;
  if (impl_->queue.full()) {
    ++impl_->counters.rejected;
    return util::Status::resource_exhausted(
        "svc: queue full, delta rejected at admission");
  }
  const std::shared_ptr<SessionState>& st = it->second;

  job->id = impl_->next_id++;
  job->session = st;
  job->delta = std::move(delta);
  job->routed = backend_from_name(st->session.options().backend);
  job->options.priority = st->priority;
  job->options.use_cache = use_cache;
  job->submitted = Clock::now();
  job->target_epoch = ++st->enqueued;
  if (use_cache && config_.cache_capacity > 0) {
    job->fp = job_key(st->base_fp, st->session.options().backend,
                      st->session.options().options, st->id,
                      job->target_epoch);
  }
  ++st->outstanding;
  ++impl_->counters.accepted;
  impl_->jobs.emplace(job->id, job);
  impl_->queue.push(job->id, st->priority, job);
  impl_->cv_work.notify_all();
  return job->id;
}

util::Status Service::close_session(SessionId session) {
  std::lock_guard<std::mutex> lock(impl_->m);
  const auto it = impl_->sessions.find(session);
  if (it == impl_->sessions.end()) {
    return util::Status::not_found("svc: unknown session " +
                                   std::to_string(session));
  }
  if (it->second->outstanding > 0) {
    return util::Status::failed_precondition(
        "svc: session has " + std::to_string(it->second->outstanding) +
        " outstanding delta job(s)");
  }
  impl_->sessions.erase(it);
  ++impl_->counters.sessions_closed;
  return util::Status::ok_status();
}

util::StatusOr<Service::SessionInfo> Service::session_info(
    SessionId session) const {
  std::lock_guard<std::mutex> lock(impl_->m);
  const auto it = impl_->sessions.find(session);
  if (it == impl_->sessions.end()) {
    return util::Status::not_found("svc: unknown session " +
                                   std::to_string(session));
  }
  const SessionState& st = *it->second;
  SessionInfo info;
  info.id = st.id;
  info.backend = st.session.options().backend;
  info.epoch = st.epoch;
  info.num_vertices = st.num_vertices;
  info.num_arcs = st.num_arcs;
  info.modularity = st.modularity;
  info.pinned_worker = st.pinned;
  info.outstanding = st.outstanding;
  return info;
}

void Service::resume() {
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->paused = false;
  }
  impl_->cv_work.notify_all();
}

void Service::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->stopping = true;
    impl_->paused = false;  // a paused backlog still drains
    impl_->drain = drain;
    if (!drain) {
      while (auto job = impl_->queue.pop()) {
        finish(*job, JobStatus::Cancelled);
      }
    }
  }
  impl_->cv_work.notify_all();
  for (auto& t : impl_->threads) t.join();
  impl_->threads.clear();
}

Stats Service::stats() const {
  std::lock_guard<std::mutex> lock(impl_->m);
  Stats s = impl_->counters;
  const ResultCache::Stats cs = impl_->cache.stats();
  s.cache_evictions = cs.evictions;
  s.cache_entries = cs.entries;
  s.queue_depth = impl_->queue.size();
  s.running = impl_->running;
  s.sessions_open = impl_->sessions.size();
  s.devices = static_cast<unsigned>(impl_->devices.size());
  s.device_threads = impl_->device_threads_resolved;
  const shard::PlanCache::Stats ps = shard::plan_cache().stats();
  s.plan_hits = ps.hits;
  s.plan_misses = ps.misses;
  s.plan_evictions = ps.evictions;
  s.plan_entries = ps.entries;
  return s;
}

/// Terminal transition. Caller holds Impl::m.
void Service::finish(const std::shared_ptr<Job>& job, JobStatus status) {
  job->status = status;
  const auto now = Clock::now();
  job->total_seconds = seconds_between(job->submitted, now);
  switch (status) {
    case JobStatus::Completed: ++impl_->counters.completed; break;
    case JobStatus::Cancelled: ++impl_->counters.cancelled; break;
    case JobStatus::Expired:
      ++impl_->counters.expired;
      job->queue_seconds = job->total_seconds;
      break;
    case JobStatus::Failed: ++impl_->counters.failed; break;
    default: break;
  }
  job->graph.reset();
  if (job->session) {
    --job->session->outstanding;
    job->delta = stream::Delta{};  // the batch is dead weight once terminal
  }
  impl_->cv_done.notify_all();
}

void Service::worker_loop(unsigned index) {
  Impl& s = *impl_;
  // Workers [0, devices) each own one pooled stateful detector for
  // their lifetime; the rest are device-less auxiliary workers.
  detect::Detector* pooled =
      index < s.devices.size() ? s.devices[index].get() : nullptr;
  // Non-pooled backends are instantiated through the registry on first
  // use and cached per worker (detectors are single-threaded).
  std::map<std::string, std::unique_ptr<detect::Detector>, std::less<>> local;
  const auto detector_for =
      [&](Backend b) -> util::StatusOr<detect::Detector*> {
    if (b == Backend::Core && pooled) return pooled;
    auto& slot = local[to_string(b)];
    if (!slot) {
      auto made = detect::make(to_string(b), s.run_ext);
      if (!made.ok()) return made.status();
      slot = std::move(made.value());
    }
    return slot.get();
  };
  const auto eligible = [pooled, index](const std::shared_ptr<Job>& job) {
    // ApplyDelta jobs only run on their session's pinned device worker
    // (one thread per session: applies serialize in submission order).
    if (job->session) return pooled != nullptr && index == job->session->pinned;
    // Aux workers only take jobs the cost router degraded off-device.
    return pooled != nullptr || job->routed == Backend::Seq;
  };

  std::unique_lock<std::mutex> lock(s.m);
  for (;;) {
    s.cv_work.wait(lock, [&] {
      if (s.stopping) return true;
      if (s.paused) return false;
      bool any = false;
      s.queue.for_each([&](const std::shared_ptr<Job>& j) {
        any = any || eligible(j);
      });
      return any;
    });
    if (s.stopping) {
      if (!s.drain) return;
      // Draining: leave once nothing this worker could ever run
      // remains (device-routed leftovers belong to device workers).
      bool mine = false;
      s.queue.for_each(
          [&](const std::shared_ptr<Job>& j) { mine = mine || eligible(j); });
      if (!mine) return;
    }

    auto popped = s.queue.pop_if(eligible);
    if (!popped) continue;
    const std::shared_ptr<Job> job = *popped;

    const auto now = Clock::now();
    if (job->has_deadline && now >= job->deadline) {
      finish(job, JobStatus::Expired);
      continue;
    }

    job->status = JobStatus::Running;
    job->start_sequence = ++s.start_counter;
    job->queue_seconds = seconds_between(job->submitted, now);
    ++s.running;
    const std::shared_ptr<const graph::Csr> graph = job->graph;
    lock.unlock();

    // ---- backend execution, no service lock held ----
    const bool caching = job->options.use_cache && config_.cache_capacity > 0;
    std::shared_ptr<const core::Result> result;
    bool from_cache = false;
    std::string error;
    util::Timer run_timer;
    try {
      if (job->session) {
        // ApplyDelta: this worker is the session's pinned (and only)
        // executor, so the stream::Session is touched lock-free. The
        // job's fp already encodes (session, target epoch).
        auto applied = job->session->session.apply(job->delta);
        if (!applied.ok()) {
          error = applied.status().to_string();
        } else {
          result = std::make_shared<core::Result>(
              job->session->session.result());
          if (caching) s.cache.put(job->fp, result);
        }
      } else {
        // Re-probe: a duplicate submission may have completed while
        // this one sat in the queue.
        if (caching) {
          result = s.cache.get(job->fp);
          from_cache = result != nullptr;
        }
        if (!result) {
          auto detector = detector_for(job->routed);
          if (!detector.ok()) {
            error = detector.status().to_string();
          } else {
            const detect::Options& opts = job->options.options
                                              ? *job->options.options
                                              : config_.options;
            result = std::make_shared<core::Result>(
                (*detector)->run(*graph, opts));
            if (caching) s.cache.put(job->fp, result);
          }
        }
      }
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown backend error";
    }
    const double run_seconds = run_timer.seconds();
    // -------------------------------------------------

    lock.lock();
    --s.running;
    job->run_seconds = run_seconds;
    if (!error.empty()) {
      job->error = std::move(error);
      finish(job, JobStatus::Failed);
      continue;
    }
    job->result = result;
    job->cache_hit = from_cache;
    if (job->session) {
      // Publish the post-delta snapshot for session_info(); this worker
      // is the only session mutator, so the reads are race-free.
      SessionState& ss = *job->session;
      ss.epoch = ss.session.epoch();
      ss.num_vertices = ss.session.graph().num_vertices();
      ss.num_arcs = ss.session.graph().num_arcs();
      ss.modularity = ss.session.result().modularity;
      ++s.counters.deltas_applied;
    }
    if (from_cache) {
      ++s.counters.cache_hits;
    } else {
      if (caching) ++s.counters.cache_misses;
      s.counters.run_seconds += run_seconds;
      s.counters.queue_wait_seconds += job->queue_seconds;
      for (const LevelReport& level : result->levels) {
        s.counters.optimize_seconds += level.optimize_seconds;
        s.counters.aggregate_seconds += level.aggregate_seconds;
        s.counters.sweeps_total += static_cast<std::uint64_t>(level.iterations);
        ++s.counters.levels_total;
      }
      switch (job->routed) {
        case Backend::Core:
          ++s.counters.ran_on_device;
          s.counters.shared_spills += result->device.shared_spills;
          break;
        case Backend::Seq: ++s.counters.ran_sequential; break;
        case Backend::Shard:
          ++s.counters.ran_sharded;
          s.counters.shared_spills += result->device.shared_spills;
          break;
        default: ++s.counters.ran_other; break;
      }
    }
    finish(job, JobStatus::Completed);
  }
}

}  // namespace glouvain::svc
