// Bounded priority queue of pending jobs: higher priority first, FIFO
// within a priority. Supports O(log n) push / pop / erase-by-id plus a
// filtered pop so a worker can restrict itself to a subset of jobs
// (the service's auxiliary workers only take device-free backends).
//
// The container itself is NOT internally locked: it is always accessed
// under the owning Service's mutex, which must also cover the job
// state it gates. The thread-safe submit/poll/wait/cancel surface
// lives on svc::Service.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

namespace glouvain::svc {

template <typename T>
class BoundedPriorityQueue {
 public:
  explicit BoundedPriorityQueue(std::size_t capacity) : capacity_(capacity) {}

  std::size_t size() const noexcept { return ordered_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return ordered_.empty(); }
  bool full() const noexcept { return ordered_.size() >= capacity_; }

  /// False (and no insertion) when full — the backpressure signal.
  bool push(std::uint64_t id, int priority, T value) {
    if (full()) return false;
    const Key key{priority, next_seq_++};
    ordered_.emplace(key, Item{id, std::move(value)});
    index_.emplace(id, key);
    return true;
  }

  /// Remove and return the best job, or nullopt when empty.
  std::optional<T> pop() {
    return pop_if([](const T&) { return true; });
  }

  /// Remove and return the best job satisfying `eligible`. Linear in
  /// the number of skipped jobs (queues are tens of entries deep).
  template <typename Pred>
  std::optional<T> pop_if(Pred&& eligible) {
    for (auto it = ordered_.begin(); it != ordered_.end(); ++it) {
      if (!eligible(it->second.value)) continue;
      T value = std::move(it->second.value);
      index_.erase(it->second.id);
      ordered_.erase(it);
      return value;
    }
    return std::nullopt;
  }

  /// Remove a specific queued job (cancellation / expiry). Returns the
  /// removed value, or nullopt if `id` is not queued.
  std::optional<T> erase(std::uint64_t id) {
    const auto idx = index_.find(id);
    if (idx == index_.end()) return std::nullopt;
    const auto it = ordered_.find(idx->second);
    T value = std::move(it->second.value);
    ordered_.erase(it);
    index_.erase(idx);
    return value;
  }

  bool contains(std::uint64_t id) const { return index_.count(id) != 0; }

  /// Visit queued jobs in scheduling order (best first).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, item] : ordered_) fn(item.value);
  }

 private:
  struct Key {
    int priority;
    std::uint64_t seq;
    bool operator<(const Key& o) const noexcept {
      if (priority != o.priority) return priority > o.priority;  // high first
      return seq < o.seq;                                        // then FIFO
    }
  };
  struct Item {
    std::uint64_t id;
    T value;
  };

  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::map<Key, Item> ordered_;
  std::unordered_map<std::uint64_t, Key> index_;
};

}  // namespace glouvain::svc
