// Point-in-time service counters, the serving analogue of the
// per-run DeviceStats: one struct a monitoring loop can poll and diff.
#pragma once

#include <cstddef>
#include <cstdint>

namespace glouvain::svc {

struct Stats {
  // Admission.
  std::uint64_t submitted = 0;  ///< every submit() call
  std::uint64_t accepted = 0;   ///< queued (or completed from cache)
  std::uint64_t rejected = 0;   ///< backpressure: queue full at submit

  // Outcomes (accepted jobs reach exactly one of these).
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;  ///< deadline passed while queued
  std::uint64_t failed = 0;

  // Cache (service-level view; hits at submit never enter the queue).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_entries = 0;

  // Routing of accepted jobs.
  std::uint64_t ran_on_device = 0;  ///< core backend, pooled device
  std::uint64_t ran_sequential = 0; ///< degraded to the seq backend
  std::uint64_t ran_sharded = 0;    ///< shard backend, pooled device
  std::uint64_t ran_other = 0;      ///< plm / multi backends

  // Time accounting, summed over jobs (seconds).
  double queue_wait_seconds = 0;  ///< submit -> start, run jobs only
  double run_seconds = 0;         ///< backend execution time

  // Phase breakdown, aggregated from completed jobs' per-level reports
  // (the service-wide view of the obs phase table).
  double optimize_seconds = 0;   ///< summed modularity-optimization time
  double aggregate_seconds = 0;  ///< summed contraction time
  std::uint64_t levels_total = 0;  ///< hierarchy levels built
  std::uint64_t sweeps_total = 0;  ///< optimization sweeps executed

  // Device pool.
  std::uint64_t shared_spills = 0;  ///< summed DeviceStats::shared_spills
  unsigned devices = 0;             ///< pooled core::Louvain instances
  unsigned device_threads = 0;      ///< simt workers per device

  // Partition-plan cache (process-wide; see shard/plan_cache.hpp —
  // mirrors the result-cache block above for the shard backend's
  // partition plans).
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
  std::uint64_t plan_evictions = 0;
  std::size_t plan_entries = 0;

  // Dynamic-graph sessions.
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t deltas_applied = 0;  ///< ApplyDelta jobs completed

  // Instantaneous.
  std::size_t queue_depth = 0;
  std::size_t running = 0;
  std::size_t sessions_open = 0;
};

}  // namespace glouvain::svc
