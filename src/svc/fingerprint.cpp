#include "svc/fingerprint.hpp"

#include <bit>
#include <cstdio>

#include "graph/fingerprint.hpp"

namespace glouvain::svc {

namespace {

// Two independent mixing lanes (distinct odd multipliers, splitmix64
// finalizer) so a single 64-bit collision does not collide the pair.
struct Mixer {
  std::uint64_t state;

  void absorb(std::uint64_t x) noexcept {
    state += x * 0x9e3779b97f4a7c15ULL;
    state = (state ^ (state >> 30)) * 0xbf58476d1ce4e5b9ULL;
    state = (state ^ (state >> 27)) * 0x94d049bb133111ebULL;
    state ^= state >> 31;
  }
};

}  // namespace

std::string Fingerprint::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

Fingerprint fingerprint(const graph::Csr& graph) {
  // The hash itself lives in the graph layer (graph::fingerprint128)
  // so the shard plan cache can share it without an svc dependency.
  const graph::Fingerprint128 fp = graph::fingerprint128(graph);
  return {fp.hi, fp.lo};
}

Fingerprint job_key(const Fingerprint& graph_fp, std::string_view backend,
                    const detect::Options& options, std::uint64_t session,
                    std::uint64_t epoch) {
  Mixer a{graph_fp.hi};
  Mixer b{graph_fp.lo};

  a.absorb(backend.size());
  for (const char c : backend) {
    a.absorb(static_cast<unsigned char>(c));
    b.absorb(static_cast<unsigned char>(c) ^ 0x6bULL);
  }

  const auto absorb_double = [&](double x) {
    const auto bits = std::bit_cast<std::uint64_t>(x);
    a.absorb(bits);
    b.absorb(bits ^ 0xa5a5a5a5a5a5a5a5ULL);
  };
  absorb_double(options.thresholds.t_bin);
  absorb_double(options.thresholds.t_final);
  a.absorb(options.thresholds.adaptive_limit);
  b.absorb(options.thresholds.adaptive ? 1 : 2);
  a.absorb(static_cast<std::uint64_t>(options.max_levels));
  b.absorb(static_cast<std::uint64_t>(options.max_sweeps_per_level));
  // Results are bitwise-identical across storage modes, but the memory
  // and timing profile is not — keep the cached spans honest.
  a.absorb(static_cast<std::uint64_t>(options.storage) + 1);
  b.absorb(static_cast<std::uint64_t>(options.storage) * 0x9e3779b97f4a7c15ULL);
  // The RESOLVED lane backend keys the cache, not the request: kAuto
  // and an explicit request for what kAuto resolves to produce the
  // same partition, and a vector-backend result must never satisfy a
  // later --device scalar request (different fold order).
  const auto resolved =
      static_cast<std::uint64_t>(simt::resolve_backend(options.device));
  a.absorb(resolved + 0x517cc1b727220a95ULL);
  b.absorb(~resolved);
  // Table layout is bitwise-invariant too, but keeps the spans honest
  // like storage above.
  a.absorb(static_cast<std::uint64_t>(options.table_layout) + 3);
  b.absorb(static_cast<std::uint64_t>(options.table_layout) * 0xff51afd7ed558ccdULL);
  a.absorb(options.use_coloring ? 5 : 7);
  b.absorb(options.use_coloring ? 11 : 13);
  // Sharding changes the computation (a different partition explores a
  // different move order), so shard count, strategy and seed all key
  // the cache. Backends that ignore them absorb the defaults, which is
  // harmless.
  a.absorb(static_cast<std::uint64_t>(options.shards) + 0x1000);
  b.absorb(~static_cast<std::uint64_t>(options.shards));
  a.absorb(static_cast<std::uint64_t>(options.partition) + 17);
  b.absorb(static_cast<std::uint64_t>(options.partition) * 0xc2b2ae3d27d4eb4fULL);
  a.absorb(options.partition_seed);
  b.absorb(options.partition_seed ^ 0x9e3779b97f4a7c15ULL);
  // Concurrent Jacobi rounds are a different move schedule than the
  // sequential Gauss-Seidel simulation, so the flag keys the cache;
  // shard storage is bitwise-invariant but keeps the cached spans
  // honest, like Options::storage above.
  a.absorb(options.concurrent_shards ? 19 : 23);
  b.absorb(options.concurrent_shards ? 29 : 31);
  a.absorb(static_cast<std::uint64_t>(options.shard_storage) + 37);
  b.absorb(static_cast<std::uint64_t>(options.shard_storage) *
           0x9e3779b97f4a7c15ULL);

  a.absorb(session);
  b.absorb(session + 0x2545f4914f6cdd1dULL);
  a.absorb(epoch);
  b.absorb(~epoch);
  return {a.state, b.state};
}

}  // namespace glouvain::svc
