#include "multi/multi.hpp"

#include <algorithm>

#include "graph/ops.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition.hpp"
#include "obs/recorder.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace glouvain::multi {

namespace {
using graph::Community;
using graph::Csr;
using graph::VertexId;
}  // namespace

Result louvain(const Csr& graph, const Config& config, obs::Recorder* rec) {
  util::Timer total_timer;
  Result result;
  const VertexId n = graph.num_vertices();
  const unsigned devices = std::max(1u, config.num_devices);
  result.devices_used = devices;
  if (n == 0) return result;
  if (rec) rec->count("multi/devices", devices);

  // --- 1. Partition vertices across devices.
  const std::size_t part_span = rec ? rec->begin_span("multi/partition") : 0;
  std::vector<std::vector<VertexId>> members(devices);
  for (VertexId v = 0; v < n; ++v) {
    const unsigned d =
        config.partition == PartitionStrategy::Block
            ? static_cast<unsigned>((static_cast<std::uint64_t>(v) * devices) / n)
            : static_cast<unsigned>(util::hash64(v ^ config.seed) % devices);
    members[d].push_back(v);
  }
  if (rec) rec->end_span(part_span);

  // The one canonical Options -> Config lowering: the front-end knobs
  // in the Options base govern every simulated device.
  core::Config device_config = core::to_config(config, config.core);
  device_config.warm_start.reset();  // no warm path across partitions

  // --- 2. Independent local Louvain per device on the induced
  // subgraph. Devices are simulated sequentially (they share this
  // host); each run uses the full worker pool, so wall-clock measures
  // total work, not distributed latency.
  const std::size_t local_span = rec ? rec->begin_span("multi/local") : 0;
  std::vector<Community> global_label(n, 0);
  Community label_base = 0;
  core::Config local_config = device_config;
  local_config.max_levels = std::max(1, config.local_levels);
  for (unsigned d = 0; d < devices; ++d) {
    if (members[d].empty()) continue;
    const Csr local = graph::induced_subgraph(graph, members[d]);
    const core::Result local_result = core::louvain(local, local_config, rec);
    Community local_count = 0;
    for (std::size_t i = 0; i < members[d].size(); ++i) {
      const Community c = local_result.community[i];
      local_count = std::max<Community>(local_count, c + 1);
      global_label[members[d][i]] = label_base + c;
    }
    label_base += local_count;
  }
  if (rec) rec->end_span(local_span);

  metrics::renumber(global_label);
  result.local_modularity = metrics::modularity(graph, global_label);
  if (rec) rec->count("multi/local_modularity", result.local_modularity);

  // --- 3. Contract the full graph by the union partition (cut edges
  // re-enter here) and finish on one device.
  const std::size_t merge_span = rec ? rec->begin_span("multi/merge") : 0;
  const Csr contracted = graph::contract_reference(graph, global_label);
  if (rec) rec->end_span(merge_span);
  const core::Result finish = core::louvain(contracted, device_config, rec);

  result.community = metrics::flatten(global_label, finish.community);
  result.modularity = metrics::modularity(graph, result.community);
  result.levels = finish.levels;
  result.first_phase_teps = finish.first_phase_teps;
  result.device = finish.device;
  result.total_seconds = total_timer.seconds();
  return result;
}

}  // namespace glouvain::multi
