// Coarse-grained multi-device Louvain — the extension the paper's
// conclusion sketches ("our algorithm can also be used as a building
// block in a distributed memory implementation of the Louvain method
// using multi-GPUs"), following the hybrid scheme of Cheong et al. [4]:
//
//   1. partition the vertices across D devices (block ranges or a
//      random/hashed assignment);
//   2. each device runs the full single-device GPU-style Louvain on
//      its induced subgraph, ignoring cut edges (the coarse-grained
//      phase — no communication);
//   3. the union of the local partitions contracts the FULL graph
//      (cut edges re-enter here), and one device finishes the
//      hierarchy on the contracted remainder.
//
// On this substrate the "devices" share one host, so the interesting
// observable is SOLUTION QUALITY versus the partition strategy and
// device count — the paper's closing observation is that coarse-grained
// approaches hold up even under random partitioning, and
// bench/multidevice reproduces exactly that comparison.
#pragma once

#include "core/config.hpp"
#include "core/louvain.hpp"
#include "detect/result.hpp"
#include "graph/csr.hpp"

namespace glouvain::obs {
class Recorder;
}

namespace glouvain::multi {

enum class PartitionStrategy {
  Block,   ///< contiguous vertex-id ranges (locality-preserving)
  Random,  ///< hash-based assignment (the paper's "initial random vertex partitioning")
};

/// DEPRECATED: the shard backend (src/shard, `--backend shard`)
/// supersedes this subsystem as the partitioned path — it exchanges
/// ghost labels/totals between rounds instead of dropping cut edges,
/// so quality tracks the sequential algorithm. `multi` remains as the
/// zero-communication coarse-grained comparator the paper's conclusion
/// sketches.
///
/// The shared knobs (thresholds, threads, device, ...) live in the
/// detect::Options base; multi::louvain lowers them onto every
/// simulated device through the canonical core::to_config() path.
struct Config : detect::Options {
  unsigned num_devices = 2;
  PartitionStrategy partition = PartitionStrategy::Random;
  /// Per-device backend machinery (bucket schemes, device shape). Its
  /// Options slice is overwritten by the canonical lowering inside
  /// louvain().
  core::Config core;
  /// Levels each device runs locally before the global merge. Cut
  /// edges are invisible during the local phase, so deep local
  /// hierarchies bake in mistakes the finishing pass cannot undo
  /// (Louvain only merges); 1 level (as in Cheong et al. [4]) keeps
  /// the coarse phase cheap and reversible.
  int local_levels = 1;
  std::uint64_t seed = 1;
};

struct Result : detect::Result {
  /// Modularity of the union of local partitions BEFORE the global
  /// finishing pass (quantifies what the coarse phase alone achieves).
  double local_modularity = 0;
  unsigned devices_used = 0;
};

/// `recorder` (optional) receives "multi/partition", "multi/local"
/// (with the per-device core runs nested inside), "multi/merge" spans
/// and the finishing run's full span tree, plus counters
/// "multi/local_modularity" and "multi/devices".
Result louvain(const graph::Csr& graph, const Config& config = {},
               obs::Recorder* recorder = nullptr);

}  // namespace glouvain::multi
