// Fine-grained shared-memory parallel Louvain (PLM) — the CPU
// comparator class of the paper's Figure 7 (the OpenMP code of Lu,
// Halappanavar & Kalyanaraman [16] and the PLM of Staudt & Meyerhenke
// [21]). One thread processes many vertices; a vertex moves IMMEDIATELY
// after its best community is computed (asynchronous moves through
// shared memory), with the same move-control heuristics the paper
// adopts from [16]: the singleton-to-singleton guard C[j] < C[i],
// lowest-community-id tie breaking, and the adaptive t_bin/t_final
// threshold schedule.
#pragma once

#include "core/common.hpp"
#include "graph/csr.hpp"

namespace glouvain::plm {

struct Config {
  ThresholdSchedule thresholds;
  int max_levels = 64;
  int max_sweeps_per_level = 1000;
  unsigned threads = 0;  ///< 0 = use the global pool as-is
};

LouvainResult louvain(const graph::Csr& graph, const Config& config = {});

}  // namespace glouvain::plm
