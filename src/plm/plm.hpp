// Fine-grained shared-memory parallel Louvain (PLM) — the CPU
// comparator class of the paper's Figure 7 (the OpenMP code of Lu,
// Halappanavar & Kalyanaraman [16] and the PLM of Staudt & Meyerhenke
// [21]). One thread processes many vertices; a vertex moves IMMEDIATELY
// after its best community is computed (asynchronous moves through
// shared memory), with the same move-control heuristics the paper
// adopts from [16]: the singleton-to-singleton guard C[j] < C[i],
// lowest-community-id tie breaking, and the adaptive t_bin/t_final
// threshold schedule.
#pragma once

#include "core/common.hpp"
#include "detect/options.hpp"
#include "graph/csr.hpp"

namespace glouvain::obs {
class Recorder;
}

namespace glouvain::plm {

/// All knobs are the shared detect::Options (threads = 0 uses the
/// global pool as-is); PLM has no backend-specific extensions.
struct Config : detect::Options {};

/// `recorder` (optional) receives per-level "modopt"/"aggregate" spans
/// comparable with the core backend's.
LouvainResult louvain(const graph::Csr& graph, const Config& config = {},
                      obs::Recorder* recorder = nullptr);

}  // namespace glouvain::plm
