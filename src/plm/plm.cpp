#include "plm/plm.hpp"

#include <algorithm>
#include <cmath>

#include "metrics/modularity.hpp"
#include "metrics/partition.hpp"
#include "obs/recorder.hpp"
#include "prim/scan.hpp"
#include "simt/atomics.hpp"
#include "simt/thread_pool.hpp"
#include "util/timer.hpp"

namespace glouvain::plm {

namespace {

using graph::Community;
using graph::Csr;
using graph::EdgeIdx;
using graph::VertexId;
using graph::Weight;

/// One modularity-optimization phase with immediate (asynchronous)
/// moves. Returns the number of sweeps.
int optimize_phase(const Csr& graph, std::vector<Community>& community,
                   double threshold, int max_sweeps, double* final_q,
                   obs::Recorder* rec) {
  const VertexId n = graph.num_vertices();
  const Weight m2 = graph.total_weight();
  auto& pool = simt::ThreadPool::global();

  community.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) community[v] = v;

  std::vector<Weight> strengths = graph.compute_strengths();
  std::vector<Weight> tot = strengths;
  std::vector<VertexId> com_size(n, 1);

  // Per-worker sparse accumulators (value + touched list), reset in
  // O(deg) after each vertex.
  std::vector<std::vector<Weight>> neigh(pool.size());
  std::vector<std::vector<Community>> touched(pool.size());
  for (unsigned w = 0; w < pool.size(); ++w) {
    neigh[w].assign(n, -1);
    touched[w].reserve(256);
  }

  double current_q = metrics::modularity(graph, community);
  int sweeps = 0;

  while (sweeps < max_sweeps) {
    ++sweeps;
    obs::Span sweep_span(rec, "modopt/sweep");

    pool.parallel_for(n, [&](std::size_t vi, unsigned worker) {
      const auto v = static_cast<VertexId>(vi);
      const Community old_c = simt::atomic_load(community[v]);
      const Weight k = strengths[v];

      auto& nw = neigh[worker];
      auto& tc = touched[worker];
      tc.clear();

      auto nbrs = graph.neighbors(v);
      auto ws = graph.weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (nbrs[i] == v) continue;
        const Community c = simt::atomic_load(community[nbrs[i]]);
        if (nw[c] < 0) {
          nw[c] = 0;
          tc.push_back(c);
        }
        nw[c] += ws[i];
      }

      const Weight d_old = nw[old_c] < 0 ? 0 : nw[old_c];
      const Weight tot_old_without_v = simt::atomic_load(tot[old_c]) - k;

      Community best_c = old_c;
      double best_gain = d_old - k * tot_old_without_v / m2;
      const bool v_is_singleton = simt::atomic_load(com_size[old_c]) == 1;

      for (const Community c : tc) {
        if (c == old_c) continue;
        const double gain = nw[c] - k * simt::atomic_load(tot[c]) / m2;
        if (gain > best_gain + 1e-15 ||
            (gain > best_gain - 1e-15 && c < best_c)) {
          best_gain = gain;
          best_c = c;
        }
      }

      for (const Community c : tc) nw[c] = -1;

      // Singleton guard from [16]: a singleton may only join another
      // singleton with a smaller community id (breaks the two-vertex
      // swap cycle that can livelock simultaneous moves). The guard
      // vetoes the chosen move — the vertex stays put rather than
      // spilling into its second-best community, which with immediate
      // moves would cascade into over-merging.
      if (best_c != old_c && v_is_singleton && best_c > old_c &&
          simt::atomic_load(com_size[best_c]) == 1) {
        best_c = old_c;
      }

      if (best_c != old_c) {
        // Immediate move: commit to the shared arrays so later vertices
        // in this sweep observe it (the defining property of PLM).
        simt::atomic_add(tot[old_c], -k);
        simt::atomic_add(tot[best_c], k);
        simt::atomic_sub(com_size[old_c], VertexId{1});
        simt::atomic_add(com_size[best_c], VertexId{1});
        simt::atomic_store(community[v], best_c);
      }
    });

    const double new_q = metrics::modularity(graph, community);
    const double gain = new_q - current_q;
    current_q = new_q;
    if (gain < threshold) break;
  }

  if (rec) rec->count("modopt/sweeps", sweeps);
  if (final_q) *final_q = current_q;
  return sweeps;
}

/// Parallel contraction: counting-sort vertices by community, then one
/// task per community merges its members' neighbour lists.
Csr contract_parallel(const Csr& graph, const std::vector<Community>& community,
                      VertexId num_communities) {
  const VertexId n = graph.num_vertices();
  auto& pool = simt::ThreadPool::global();

  // Group members of each community.
  std::vector<EdgeIdx> size(num_communities, 0);
  for (VertexId v = 0; v < n; ++v) ++size[community[v]];
  std::vector<EdgeIdx> start(num_communities + 1, 0);
  start[num_communities] = prim::exclusive_scan(
      std::span<const EdgeIdx>(size),
      std::span<EdgeIdx>(start.data(), num_communities), pool);
  std::vector<EdgeIdx> cursor(start.begin(), start.begin() + num_communities);
  std::vector<VertexId> members(n);
  for (VertexId v = 0; v < n; ++v) members[cursor[community[v]]++] = v;

  // Merge each community's rows.
  std::vector<std::vector<std::pair<VertexId, Weight>>> rows(num_communities);
  pool.parallel_for(num_communities, [&](std::size_t c, unsigned) {
    std::vector<std::pair<VertexId, Weight>> acc;
    for (EdgeIdx i = start[c]; i < start[c + 1]; ++i) {
      const VertexId v = members[i];
      auto nbrs = graph.neighbors(v);
      auto ws = graph.weights(v);
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        acc.emplace_back(community[nbrs[e]], ws[e]);
      }
    }
    std::sort(acc.begin(), acc.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    auto& row = rows[c];
    for (std::size_t i = 0; i < acc.size();) {
      const VertexId nb = acc[i].first;
      Weight w = 0;
      while (i < acc.size() && acc[i].first == nb) {
        w += acc[i].second;
        ++i;
      }
      row.emplace_back(nb, w);
    }
  });

  std::vector<EdgeIdx> degree(num_communities);
  for (VertexId c = 0; c < num_communities; ++c) degree[c] = rows[c].size();
  std::vector<EdgeIdx> offsets(num_communities + 1, 0);
  offsets[num_communities] = prim::exclusive_scan(
      std::span<const EdgeIdx>(degree),
      std::span<EdgeIdx>(offsets.data(), num_communities), pool);

  std::vector<VertexId> adj(offsets[num_communities]);
  std::vector<Weight> weights(offsets[num_communities]);
  pool.parallel_for(num_communities, [&](std::size_t c, unsigned) {
    EdgeIdx at = offsets[c];
    for (const auto& [nb, w] : rows[c]) {
      adj[at] = nb;
      weights[at] = w;
      ++at;
    }
  });
  return Csr(std::move(offsets), std::move(adj), std::move(weights));
}

}  // namespace

LouvainResult louvain(const Csr& graph, const Config& config,
                      obs::Recorder* rec) {
  util::Timer total_timer;
  LouvainResult result;
  result.community.resize(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) result.community[v] = v;

  Csr current = graph;
  double prev_q = -1.0;

  for (int level = 0; level < config.max_levels; ++level) {
    if (rec) rec->set_level(level);
    LevelReport report;
    report.vertices = current.num_vertices();
    report.arcs = current.num_arcs();
    report.modularity_before = prev_q < -0.5 ? 0 : prev_q;

    const double threshold = config.thresholds.threshold_for(current.num_vertices());

    util::Timer opt_timer;
    std::vector<Community> phase_community;
    double q = 0;
    {
      obs::Span opt_span(rec, "modopt");
      report.iterations = optimize_phase(current, phase_community, threshold,
                                         config.max_sweeps_per_level, &q, rec);
    }
    report.optimize_seconds = opt_timer.seconds();
    report.modularity_after = q;

    if (level == 0) {
      result.first_phase_teps = report.optimize_seconds > 0
          ? static_cast<double>(current.num_arcs()) * report.iterations /
                report.optimize_seconds
          : 0;
    }

    const bool converged = prev_q >= -0.5 && (q - prev_q) < config.thresholds.t_final;

    util::Timer agg_timer;
    Csr contracted;
    {
      obs::Span agg_span(rec, "aggregate");
      const Community num_communities = metrics::renumber(phase_community);
      result.community = metrics::flatten(result.community, phase_community);
      result.dendrogram.push_level(phase_community);
      contracted = contract_parallel(current, phase_community, num_communities);
    }
    report.aggregate_seconds = agg_timer.seconds();
    result.levels.push_back(report);
    if (rec) {
      rec->count("level/vertices", static_cast<double>(report.vertices));
      rec->count("level/arcs", static_cast<double>(report.arcs));
    }

    const bool shrunk = contracted.num_vertices() < current.num_vertices();
    prev_q = q;
    current = std::move(contracted);
    if (converged || !shrunk) break;
  }
  if (rec) rec->set_level(-1);

  result.modularity = prev_q;
  result.total_seconds = total_timer.seconds();
  return result;
}

}  // namespace glouvain::plm
