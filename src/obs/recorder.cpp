#include "obs/recorder.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>

#include "util/table.hpp"

namespace glouvain::obs {

namespace {

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void json_escape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

Recorder::Recorder() : epoch_ns_(steady_ns()) {}

std::int64_t Recorder::now_ns() const noexcept { return steady_ns() - epoch_ns_; }

std::uint32_t Recorder::intern(std::string_view name) {
  const auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

std::size_t Recorder::begin_span(std::string_view name) {
  SpanRecord span;
  span.name = intern(name);
  span.parent = open_.empty() ? -1 : static_cast<std::int32_t>(open_.back());
  span.level = level_;
  span.start_ns = now_ns();
  const std::size_t index = spans_.size();
  spans_.push_back(span);
  open_.push_back(index);
  return index;
}

void Recorder::end_span(std::size_t index) {
  if (index >= spans_.size()) return;
  spans_[index].duration_ns = now_ns() - spans_[index].start_ns;
  // Spans close LIFO under RAII; tolerate out-of-order closes by
  // popping through the target so validate() can report the rest.
  while (!open_.empty()) {
    const std::size_t top = open_.back();
    open_.pop_back();
    if (top == index) break;
  }
}

std::size_t Recorder::add_timed_span(std::string_view name,
                                     std::int64_t start_ns,
                                     std::int64_t duration_ns,
                                     std::uint32_t track) {
  SpanRecord span;
  span.name = intern(name);
  span.parent = open_.empty() ? -1 : static_cast<std::int32_t>(open_.back());
  span.level = level_;
  span.start_ns = start_ns;
  span.duration_ns = duration_ns < 0 ? 0 : duration_ns;
  span.track = track;
  const std::size_t index = spans_.size();
  spans_.push_back(span);
  return index;
}

void Recorder::count(std::string_view name, double delta, std::int64_t bin) {
  const std::uint32_t id = intern(name);
  const auto key = std::make_tuple(id, static_cast<std::int32_t>(level_), bin);
  const auto it = counter_index_.find(key);
  if (it != counter_index_.end()) {
    counters_[it->second].value += delta;
    return;
  }
  counter_index_.emplace(key, counters_.size());
  counters_.push_back({id, level_, bin, delta});
}

void Recorder::count_max(std::string_view name, double value, std::int64_t bin) {
  const std::uint32_t id = intern(name);
  const auto key = std::make_tuple(id, static_cast<std::int32_t>(level_), bin);
  const auto it = counter_index_.find(key);
  if (it != counter_index_.end()) {
    double& v = counters_[it->second].value;
    if (value > v) v = value;
    return;
  }
  counter_index_.emplace(key, counters_.size());
  counters_.push_back({id, level_, bin, value});
}

void Recorder::clear() {
  spans_.clear();
  open_.clear();
  counters_.clear();
  counter_index_.clear();
  level_ = -1;
  epoch_ns_ = steady_ns();
}

double Recorder::recorded_seconds() const noexcept {
  double total_ns = 0;
  for (const SpanRecord& s : spans_) {
    if (s.parent < 0 && s.duration_ns >= 0) {
      total_ns += static_cast<double>(s.duration_ns);
    }
  }
  return total_ns * 1e-9;
}

std::string Recorder::validate() const {
  if (!open_.empty()) {
    return "span '" + names_[spans_[open_.back()].name] + "' never closed";
  }
  std::vector<std::int64_t> child_sum(spans_.size(), 0);
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& s = spans_[i];
    const std::string label(names_[s.name]);
    if (s.duration_ns < 0) return "span '" + label + "' has no duration";
    if (s.parent >= 0) {
      const SpanRecord& p = spans_[static_cast<std::size_t>(s.parent)];
      if (s.start_ns < p.start_ns ||
          s.start_ns + s.duration_ns > p.start_ns + p.duration_ns) {
        return "span '" + label + "' escapes its parent '" +
               names_[p.name] + "'";
      }
      // Spans on a nonzero track ran concurrently with their siblings
      // (k shard sweeps overlapping on k devices), so their durations
      // legitimately sum past the parent's wall time; containment
      // above still applies, the sibling-sum bound below does not.
      if (s.track == 0) {
        child_sum[static_cast<std::size_t>(s.parent)] += s.duration_ns;
      }
    }
  }
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    if (child_sum[i] > spans_[i].duration_ns) {
      return "children of span '" + names_[spans_[i].name] +
             "' outlast their parent";
    }
  }
  return {};
}

void Recorder::write_phase_table(std::ostream& os) const {
  // Aggregate spans by (level, stage name); stages keep first-seen
  // order within their level so the table reads in execution order.
  struct Row {
    std::int64_t total_ns = 0;
    std::uint64_t calls = 0;
    std::size_t first_index = 0;
  };
  std::map<std::pair<std::int32_t, std::uint32_t>, Row> grouped;
  std::map<std::int32_t, std::int64_t> level_total;  // root spans per level
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& s = spans_[i];
    if (s.duration_ns < 0) continue;
    Row& row = grouped[{s.level, s.name}];
    if (row.calls == 0) row.first_index = i;
    row.total_ns += s.duration_ns;
    ++row.calls;
    if (s.parent < 0) level_total[s.level] += s.duration_ns;
  }

  std::vector<std::pair<std::pair<std::int32_t, std::uint32_t>, Row>> rows(
      grouped.begin(), grouped.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.first.first != b.first.first) return a.first.first < b.first.first;
    return a.second.first_index < b.second.first_index;
  });

  util::Table table({"level", "stage", "calls", "seconds", "share"});
  for (const auto& [key, row] : rows) {
    const std::int64_t total = level_total.count(key.first)
                                   ? level_total[key.first]
                                   : std::int64_t{0};
    table.add_row(
        {key.first < 0 ? "-" : std::to_string(key.first),
         std::string(names_[key.second]), std::to_string(row.calls),
         util::Table::fixed(static_cast<double>(row.total_ns) * 1e-9, 5),
         total > 0 ? util::Table::percent(static_cast<double>(row.total_ns) /
                                              static_cast<double>(total),
                                          0)
                   : "-"});
  }
  table.print(os);

  if (!counters_.empty()) {
    util::Table ctable({"level", "counter", "bin", "value"});
    for (const CounterRecord& c : counters_) {
      ctable.add_row({c.level < 0 ? "-" : std::to_string(c.level),
                      std::string(names_[c.name]),
                      c.bin < 0 ? "-" : std::to_string(c.bin),
                      util::Table::fixed(c.value, 4)});
    }
    os << '\n';
    ctable.print(os);
  }
}

void Recorder::write_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans_) {
    if (s.duration_ns < 0) continue;
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":\"";
    json_escape(os, names_[s.name]);
    // Microsecond floats, the unit chrome://tracing expects.
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "\",\"cat\":\"glouvain\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":0,\"tid\":%u,\"args\":{\"level\":%d}}",
                  static_cast<double>(s.start_ns) * 1e-3,
                  static_cast<double>(s.duration_ns) * 1e-3, s.track, s.level);
    os << buf;
  }
  os << "\n],\"counters\":[";
  first = true;
  for (const CounterRecord& c : counters_) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":\"";
    json_escape(os, names_[c.name]);
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "\",\"level\":%d,\"bin\":%lld,\"value\":%.9g}", c.level,
                  static_cast<long long>(c.bin), c.value);
    os << buf;
  }
  os << "\n]}\n";
}

}  // namespace glouvain::obs
