// Phase/kernel instrumentation substrate (the measurement layer behind
// the paper's Figures 4-7 and Table 1 breakdowns). A Recorder collects
//
//   * SPANS   — monotonic scoped timers forming a tree: one span per
//               phase ("modopt", "aggregate"), per sweep, and per
//               degree-bucket kernel launch, each tagged with the
//               hierarchy level it ran at;
//   * COUNTERS — named scalars, optionally binned (bucket occupancy
//               histograms, hash-spill counts per level, moved-vertex
//               fractions per sweep, sweep counts).
//
// Recording is enabled by passing a Recorder* into a detector run and
// disabled by passing nullptr: every instrumentation site goes through
// the obs::Span guard or a `if (rec)` check, so the disabled cost is a
// pointer test — no clock reads, no allocation (the <3% svc latency
// budget of ISSUE 2).
//
// A Recorder is single-threaded by design: spans are recorded on the
// driver thread at kernel-launch granularity (launch-to-sync wall
// time, exactly what CUDA events would measure per kernel), never from
// inside worker lanes. Concurrent runs each get their own Recorder.
//
// Concurrent EXECUTION inside one run (the sharded backend's Jacobi
// rounds, where k shard sweeps overlap on k leased devices) is still
// recorded from the driver thread: each task captures its own steady
// clock stamps and the driver inserts them at the round barrier via
// add_timed_span(), tagged with a nonzero TRACK (the device lane).
// Tracks map to chrome-trace tids so the trace shows true overlap, and
// validate() exempts nonzero tracks from the sibling-sum check (they
// deliberately overlap) while still requiring parent containment.
//
// Exporters: write_phase_table() renders the per-level x per-stage
// breakdown (the Figure 5/6 shape); write_chrome_trace() emits a
// chrome://tracing-compatible JSON span dump (schema in
// schemas/trace.schema.json) — `glouvain detect --trace out.json`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

namespace glouvain::obs {

/// One closed (or still-open) timed interval. Times are nanoseconds on
/// the steady clock, relative to the Recorder's construction.
struct SpanRecord {
  std::uint32_t name = 0;        ///< index into Recorder::names()
  std::int32_t parent = -1;      ///< index into spans(), -1 = root
  std::int32_t level = -1;       ///< hierarchy level, -1 = outside levels
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = -1; ///< -1 while open
  /// Execution track (chrome-trace tid): 0 = the driver thread, else
  /// the 1-based device lane a concurrently-executed span ran on.
  std::uint32_t track = 0;
};

/// One named (optionally binned) scalar. Repeated count() calls with
/// the same (name, level, bin) accumulate into one record.
struct CounterRecord {
  std::uint32_t name = 0;
  std::int32_t level = -1;
  std::int64_t bin = -1;  ///< -1 = unbinned; else bucket/sweep index
  double value = 0;
};

class Recorder {
 public:
  Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Open a span as a child of the innermost open span. Returns the
  /// span index to pass to end_span. Prefer the obs::Span RAII guard.
  std::size_t begin_span(std::string_view name);
  void end_span(std::size_t index);

  /// Insert an already-measured CLOSED span as a child of the innermost
  /// open span — the barrier-time publication of a concurrently
  /// executed task's interval (see the header comment). `start_ns` is
  /// relative to the Recorder epoch (convert a raw steady-clock stamp
  /// with elapsed_ns()); `track` should be nonzero so validate() knows
  /// siblings on other tracks may overlap it.
  std::size_t add_timed_span(std::string_view name, std::int64_t start_ns,
                             std::int64_t duration_ns, std::uint32_t track);

  /// Nanoseconds since the Recorder epoch on the steady clock — the
  /// time base of every SpanRecord, exposed so concurrent tasks' raw
  /// stamps can be rebased for add_timed_span.
  std::int64_t elapsed_ns() const noexcept { return now_ns(); }

  /// Hierarchy level attached to subsequently opened spans/counters.
  void set_level(int level) noexcept { level_ = level; }
  int current_level() const noexcept { return level_; }

  /// Accumulate `delta` into counter (name, current level, bin).
  void count(std::string_view name, double delta, std::int64_t bin = -1);

  /// Keep the maximum of `value` and the counter's current value —
  /// high-water marks (arena footprints) rather than running sums.
  void count_max(std::string_view name, double value, std::int64_t bin = -1);

  /// Drop all recorded data (names are kept interned).
  void clear();

  const std::vector<SpanRecord>& spans() const noexcept { return spans_; }
  const std::vector<CounterRecord>& counters() const noexcept { return counters_; }
  std::string_view name(std::uint32_t id) const noexcept { return names_[id]; }

  /// Total recorded wall time: sum of root-span durations (seconds).
  double recorded_seconds() const noexcept;

  /// Structural check used by the conformance suite: every span closed
  /// with a non-negative duration, children nested inside their parent,
  /// and sibling durations summing to at most the parent's. Returns an
  /// empty string when well-formed, else a description of the problem.
  std::string validate() const;

  /// Per-level x per-stage table (the Figure 5/6/7 shape), followed by
  /// the counter table when any counters were recorded.
  void write_phase_table(std::ostream& os) const;

  /// chrome://tracing "complete event" JSON (see schemas/trace.schema.json).
  void write_chrome_trace(std::ostream& os) const;

 private:
  std::uint32_t intern(std::string_view name);
  std::int64_t now_ns() const noexcept;

  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> name_ids_;
  std::vector<SpanRecord> spans_;
  std::vector<std::size_t> open_;  ///< stack of open span indices
  std::vector<CounterRecord> counters_;
  std::map<std::tuple<std::uint32_t, std::int32_t, std::int64_t>, std::size_t>
      counter_index_;
  int level_ = -1;
  std::int64_t epoch_ns_ = 0;
};

/// RAII span guard tolerant of a null recorder (the disabled path).
class Span {
 public:
  Span(Recorder* recorder, std::string_view name) : recorder_(recorder) {
    if (recorder_) index_ = recorder_->begin_span(name);
  }
  ~Span() {
    if (recorder_) recorder_->end_span(index_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Recorder* recorder_;
  std::size_t index_ = 0;
};

}  // namespace glouvain::obs
