// Parallel reductions (Thrust reduce/count_if analogues). The
// Scratch-accepting overloads draw the per-chunk partials from a
// reusable arena (zero allocations in steady state).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "prim/scratch.hpp"
#include "simt/thread_pool.hpp"

namespace glouvain::prim {

namespace detail {

template <typename T, typename Combine>
T reduce_chunked(std::span<const T> data, T init, Combine& combine,
                 std::span<T> partial, std::size_t chunk_size,
                 simt::ThreadPool& pool) {
  const std::size_t n = data.size();
  pool.parallel_for(partial.size(), 1, [&](std::size_t c, unsigned) {
    const std::size_t b = c * chunk_size;
    const std::size_t e = std::min(b + chunk_size, n);
    T acc = init;
    for (std::size_t i = b; i < e; ++i) acc = combine(acc, data[i]);
    partial[c] = acc;
  });
  T acc = init;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

}  // namespace detail

/// Generic reduction: combine must be associative and commutative and
/// `init` its identity. Deterministic for a fixed pool size when
/// combine is exact (integer sums); floating-point sums may differ in
/// rounding from a serial loop, as with any parallel reduction.
template <typename T, typename Combine>
T reduce(std::span<const T> data, T init, Combine&& combine, Scratch& scratch,
         simt::ThreadPool& pool = simt::ThreadPool::global()) {
  const std::size_t n = data.size();
  constexpr std::size_t kSerialCutoff = 1 << 15;
  if (n <= kSerialCutoff || pool.size() == 1) {
    T acc = init;
    for (std::size_t i = 0; i < n; ++i) acc = combine(acc, data[i]);
    return acc;
  }
  const std::size_t chunks = 4 * pool.size();
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  Scratch::Frame frame(scratch);
  return detail::reduce_chunked(data, init, combine, scratch.alloc<T>(chunks),
                                chunk_size, pool);
}

template <typename T, typename Combine>
T reduce(std::span<const T> data, T init, Combine&& combine,
         simt::ThreadPool& pool = simt::ThreadPool::global()) {
  const std::size_t n = data.size();
  constexpr std::size_t kSerialCutoff = 1 << 15;
  if (n <= kSerialCutoff || pool.size() == 1) {
    T acc = init;
    for (std::size_t i = 0; i < n; ++i) acc = combine(acc, data[i]);
    return acc;
  }
  const std::size_t chunks = 4 * pool.size();
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<T> partial(chunks, init);
  return detail::reduce_chunked(data, init, combine, std::span<T>(partial),
                                chunk_size, pool);
}

/// Sum of all elements.
template <typename T>
T sum(std::span<const T> data, Scratch& scratch,
      simt::ThreadPool& pool = simt::ThreadPool::global()) {
  return reduce(data, T{}, [](T a, T b) { return a + b; }, scratch, pool);
}

template <typename T>
T sum(std::span<const T> data,
      simt::ThreadPool& pool = simt::ThreadPool::global()) {
  return reduce(data, T{}, [](T a, T b) { return a + b; }, pool);
}

/// Number of indices i in [0, n) for which pred(i) holds.
template <typename Pred>
std::size_t count_if_index(std::size_t n, Pred&& pred, Scratch& scratch,
                           simt::ThreadPool& pool = simt::ThreadPool::global()) {
  const std::size_t chunks = std::max<std::size_t>(1, 4 * pool.size());
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  Scratch::Frame frame(scratch);
  auto partial = scratch.alloc<std::size_t>(chunks);
  pool.parallel_for(chunks, 1, [&](std::size_t c, unsigned) {
    const std::size_t b = c * chunk_size;
    const std::size_t e = std::min(b + chunk_size, n);
    std::size_t acc = 0;
    for (std::size_t i = b; i < e; ++i) acc += pred(i) ? 1 : 0;
    partial[c] = acc;
  });
  std::size_t total = 0;
  for (auto p : partial) total += p;
  return total;
}

template <typename Pred>
std::size_t count_if_index(std::size_t n, Pred&& pred,
                           simt::ThreadPool& pool = simt::ThreadPool::global()) {
  Scratch scratch;
  return count_if_index(n, std::forward<Pred>(pred), scratch, pool);
}

/// Maximum element (returns `lowest` for empty input).
template <typename T>
T max_value(std::span<const T> data, T lowest, Scratch& scratch,
            simt::ThreadPool& pool = simt::ThreadPool::global()) {
  return reduce(data, lowest, [](T a, T b) { return a < b ? b : a; }, scratch,
                pool);
}

template <typename T>
T max_value(std::span<const T> data, T lowest,
            simt::ThreadPool& pool = simt::ThreadPool::global()) {
  return reduce(data, lowest, [](T a, T b) { return a < b ? b : a; }, pool);
}

}  // namespace glouvain::prim
