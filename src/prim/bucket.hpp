// Stable counting sort ("binning") over small integer keys — the
// replacement for repeated Thrust partition() calls when grouping work
// items into the paper's degree buckets. One counting pass beats
// num_buckets stable-partition passes: O(n + B) instead of O(B * n),
// with identical output (items of bucket 0 first, ascending id inside
// each bucket — counting sort is stable over the identity order).
//
// Layout: the per-chunk histogram lives bucket-major
// (counts[b * chunks + c]), so the serial exclusive scan over it
// yields, in one sweep, both every chunk's scatter cursor and the
// bucket boundary offsets.
#pragma once

#include <cstddef>
#include <span>

#include "prim/scratch.hpp"
#include "simt/thread_pool.hpp"

namespace glouvain::prim {

/// Group the items [0, n) by bucket_of(i) in [0, num_buckets):
/// out_order receives the n item ids, bucket by bucket, ascending id
/// within each bucket; out_begin (num_buckets + 1 entries) receives the
/// half-open bucket ranges. All temporaries come from `scratch`.
template <typename Idx, typename BucketFn>
void bucket_sort_index(std::size_t n, std::size_t num_buckets,
                       BucketFn&& bucket_of, std::span<Idx> out_order,
                       std::span<std::size_t> out_begin, Scratch& scratch,
                       simt::ThreadPool& pool = simt::ThreadPool::global()) {
  constexpr std::size_t kSerialCutoff = 1 << 14;
  Scratch::Frame frame(scratch);

  if (n <= kSerialCutoff || pool.size() == 1) {
    auto counts = scratch.alloc<std::size_t>(num_buckets);
    for (std::size_t b = 0; b < num_buckets; ++b) counts[b] = 0;
    for (std::size_t i = 0; i < n; ++i) ++counts[bucket_of(i)];
    std::size_t at = 0;
    for (std::size_t b = 0; b < num_buckets; ++b) {
      out_begin[b] = at;
      const std::size_t c = counts[b];
      counts[b] = at;
      at += c;
    }
    out_begin[num_buckets] = n;
    for (std::size_t i = 0; i < n; ++i) {
      out_order[counts[bucket_of(i)]++] = static_cast<Idx>(i);
    }
    return;
  }

  const std::size_t chunks = 4 * pool.size();
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  auto counts = scratch.alloc<std::size_t>(num_buckets * chunks);

  pool.parallel_for(chunks, 1, [&](std::size_t c, unsigned) {
    for (std::size_t b = 0; b < num_buckets; ++b) counts[b * chunks + c] = 0;
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = std::min(lo + chunk_size, n);
    for (std::size_t i = lo; i < hi; ++i) {
      ++counts[bucket_of(i) * chunks + c];
    }
  });

  // Bucket-major exclusive scan: counts[b * chunks + c] becomes chunk
  // c's scatter cursor for bucket b, and the running total at each
  // bucket boundary is out_begin[b].
  std::size_t total = 0;
  for (std::size_t b = 0; b < num_buckets; ++b) {
    out_begin[b] = total;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t v = counts[b * chunks + c];
      counts[b * chunks + c] = total;
      total += v;
    }
  }
  out_begin[num_buckets] = n;

  pool.parallel_for(chunks, 1, [&](std::size_t c, unsigned) {
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = std::min(lo + chunk_size, n);
    for (std::size_t i = lo; i < hi; ++i) {
      out_order[counts[bucket_of(i) * chunks + c]++] = static_cast<Idx>(i);
    }
  });
}

}  // namespace glouvain::prim
