// Elementwise parallel helpers: fill, iota, transform, gather, scatter.
#pragma once

#include <cstddef>
#include <span>

#include "simt/thread_pool.hpp"

namespace glouvain::prim {

template <typename T>
void fill(std::span<T> data, const T& value,
          simt::ThreadPool& pool = simt::ThreadPool::global()) {
  pool.parallel_for(data.size(), [&](std::size_t i, unsigned) { data[i] = value; });
}

/// data[i] = start + i.
template <typename T>
void iota(std::span<T> data, T start = T{},
          simt::ThreadPool& pool = simt::ThreadPool::global()) {
  pool.parallel_for(data.size(), [&](std::size_t i, unsigned) {
    data[i] = start + static_cast<T>(i);
  });
}

/// out[i] = fn(in[i]).
template <typename In, typename Out, typename F>
void transform(std::span<const In> in, std::span<Out> out, F&& fn,
               simt::ThreadPool& pool = simt::ThreadPool::global()) {
  pool.parallel_for(in.size(), [&](std::size_t i, unsigned) { out[i] = fn(in[i]); });
}

/// out[i] = in[index[i]].
template <typename T, typename Idx>
void gather(std::span<const T> in, std::span<const Idx> index, std::span<T> out,
            simt::ThreadPool& pool = simt::ThreadPool::global()) {
  pool.parallel_for(index.size(), [&](std::size_t i, unsigned) {
    out[i] = in[static_cast<std::size_t>(index[i])];
  });
}

/// out[index[i]] = in[i]; `index` must be a permutation (no duplicate
/// targets) or the result is a race.
template <typename T, typename Idx>
void scatter(std::span<const T> in, std::span<const Idx> index, std::span<T> out,
             simt::ThreadPool& pool = simt::ThreadPool::global()) {
  pool.parallel_for(in.size(), [&](std::size_t i, unsigned) {
    out[static_cast<std::size_t>(index[i])] = in[i];
  });
}

}  // namespace glouvain::prim
