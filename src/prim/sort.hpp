// Parallel sort (Thrust sort/sort_by_key analogue).
//
// Used by the core algorithm to order the highest degree bucket by
// descending degree before interleaved assignment to blocks (§4.1) and
// by the graph builder to assemble CSR rows. Chunked std::sort followed
// by log2(chunks) rounds of pairwise parallel merges — simple, stable
// performance on 2–64 cores, no extra assumptions on the key type.
//
// The Scratch-accepting overloads draw the merge buffer from a
// reusable arena so steady-state sorts allocate nothing.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "prim/scratch.hpp"
#include "simt/thread_pool.hpp"

namespace glouvain::prim {

namespace detail {

constexpr std::size_t kSortSerialCutoff = 1 << 15;

/// Parallel merge sort over `data` with `buffer` (same length) as the
/// ping-pong target. Assumes n > 0 and pool.size() > 1.
template <typename T, typename Compare>
void sort_chunked(std::span<T> data, std::span<T> buffer, Compare comp,
                  simt::ThreadPool& pool) {
  const std::size_t n = data.size();
  // Round chunk count up to a power of two so merge rounds pair evenly.
  std::size_t chunks = 1;
  while (chunks < 2 * static_cast<std::size_t>(pool.size())) chunks <<= 1;
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  pool.parallel_for(chunks, 1, [&](std::size_t c, unsigned) {
    const std::size_t b = std::min(c * chunk_size, n);
    const std::size_t e = std::min(b + chunk_size, n);
    std::sort(data.begin() + static_cast<std::ptrdiff_t>(b),
              data.begin() + static_cast<std::ptrdiff_t>(e), comp);
  });

  std::span<T> src = data;
  std::span<T> dst = buffer;
  for (std::size_t width = chunk_size; width < n; width *= 2) {
    const std::size_t pairs = (n + 2 * width - 1) / (2 * width);
    pool.parallel_for(pairs, 1, [&](std::size_t p, unsigned) {
      const std::size_t lo = std::min(p * 2 * width, n);
      const std::size_t mid = std::min(lo + width, n);
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::merge(src.begin() + static_cast<std::ptrdiff_t>(lo),
                 src.begin() + static_cast<std::ptrdiff_t>(mid),
                 src.begin() + static_cast<std::ptrdiff_t>(mid),
                 src.begin() + static_cast<std::ptrdiff_t>(hi),
                 dst.begin() + static_cast<std::ptrdiff_t>(lo), comp);
    });
    std::swap(src, dst);
  }
  if (src.data() != data.data()) {
    pool.parallel_for(n, [&](std::size_t i, unsigned) { data[i] = src[i]; });
  }
}

}  // namespace detail

template <typename T, typename Compare = std::less<T>>
void sort(std::span<T> data, Compare comp, Scratch& scratch,
          simt::ThreadPool& pool = simt::ThreadPool::global()) {
  const std::size_t n = data.size();
  if (n <= detail::kSortSerialCutoff || pool.size() == 1) {
    std::sort(data.begin(), data.end(), comp);
    return;
  }
  Scratch::Frame frame(scratch);
  detail::sort_chunked(data, scratch.alloc<T>(n), comp, pool);
}

template <typename T, typename Compare = std::less<T>>
void sort(std::span<T> data, Compare comp = {},
          simt::ThreadPool& pool = simt::ThreadPool::global()) {
  const std::size_t n = data.size();
  if (n <= detail::kSortSerialCutoff || pool.size() == 1) {
    std::sort(data.begin(), data.end(), comp);
    return;
  }
  std::vector<T> buffer(n);
  detail::sort_chunked(data, std::span<T>(buffer), comp, pool);
}

/// Sort `keys` and apply the same permutation to `values`. Trivially
/// copyable pairs stage through the scratch arena (the allocation-free
/// hot path); anything else falls back to a properly-constructed
/// vector, since arena memory is raw.
template <typename K, typename V, typename Compare = std::less<K>>
void sort_by_key(std::span<K> keys, std::span<V> values, Compare comp,
                 Scratch& scratch,
                 simt::ThreadPool& pool = simt::ThreadPool::global()) {
  struct Pair {
    K k;
    V v;
  };
  const auto pair_comp = [&comp](const Pair& a, const Pair& b) {
    return comp(a.k, b.k);
  };
  if constexpr (std::is_trivially_copyable_v<K> &&
                std::is_trivially_copyable_v<V>) {
    Scratch::Frame frame(scratch);
    auto pairs = scratch.alloc<Pair>(keys.size());
    pool.parallel_for(keys.size(), [&](std::size_t i, unsigned) {
      pairs[i] = {keys[i], values[i]};
    });
    prim::sort(pairs, pair_comp, scratch, pool);
    pool.parallel_for(keys.size(), [&](std::size_t i, unsigned) {
      keys[i] = pairs[i].k;
      values[i] = pairs[i].v;
    });
  } else {
    std::vector<Pair> pairs(keys.size());
    pool.parallel_for(keys.size(), [&](std::size_t i, unsigned) {
      pairs[i] = {std::move(keys[i]), std::move(values[i])};
    });
    prim::sort(std::span<Pair>(pairs), pair_comp, pool);
    pool.parallel_for(keys.size(), [&](std::size_t i, unsigned) {
      keys[i] = std::move(pairs[i].k);
      values[i] = std::move(pairs[i].v);
    });
  }
}

template <typename K, typename V, typename Compare = std::less<K>>
void sort_by_key(std::span<K> keys, std::span<V> values, Compare comp = {},
                 simt::ThreadPool& pool = simt::ThreadPool::global()) {
  Scratch scratch;
  sort_by_key(keys, values, comp, scratch, pool);
}

}  // namespace glouvain::prim
