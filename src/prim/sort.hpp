// Parallel sort (Thrust sort/sort_by_key analogue).
//
// Used by the core algorithm to order the highest degree bucket by
// descending degree before interleaved assignment to blocks (§4.1) and
// by the graph builder to assemble CSR rows. Chunked std::sort followed
// by log2(chunks) rounds of pairwise parallel merges — simple, stable
// performance on 2–64 cores, no extra assumptions on the key type.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "simt/thread_pool.hpp"

namespace glouvain::prim {

template <typename T, typename Compare = std::less<T>>
void sort(std::span<T> data, Compare comp = {},
          simt::ThreadPool& pool = simt::ThreadPool::global()) {
  const std::size_t n = data.size();
  constexpr std::size_t kSerialCutoff = 1 << 15;
  if (n <= kSerialCutoff || pool.size() == 1) {
    std::sort(data.begin(), data.end(), comp);
    return;
  }

  // Round chunk count up to a power of two so merge rounds pair evenly.
  std::size_t chunks = 1;
  while (chunks < 2 * static_cast<std::size_t>(pool.size())) chunks <<= 1;
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  pool.parallel_for(chunks, 1, [&](std::size_t c, unsigned) {
    const std::size_t b = std::min(c * chunk_size, n);
    const std::size_t e = std::min(b + chunk_size, n);
    std::sort(data.begin() + static_cast<std::ptrdiff_t>(b),
              data.begin() + static_cast<std::ptrdiff_t>(e), comp);
  });

  std::vector<T> buffer(n);
  std::span<T> src = data;
  std::span<T> dst(buffer);
  for (std::size_t width = chunk_size; width < n; width *= 2) {
    const std::size_t pairs = (n + 2 * width - 1) / (2 * width);
    pool.parallel_for(pairs, 1, [&](std::size_t p, unsigned) {
      const std::size_t lo = std::min(p * 2 * width, n);
      const std::size_t mid = std::min(lo + width, n);
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::merge(src.begin() + static_cast<std::ptrdiff_t>(lo),
                 src.begin() + static_cast<std::ptrdiff_t>(mid),
                 src.begin() + static_cast<std::ptrdiff_t>(mid),
                 src.begin() + static_cast<std::ptrdiff_t>(hi),
                 dst.begin() + static_cast<std::ptrdiff_t>(lo), comp);
    });
    std::swap(src, dst);
  }
  if (src.data() != data.data()) {
    pool.parallel_for(n, [&](std::size_t i, unsigned) { data[i] = src[i]; });
  }
}

/// Sort `keys` and apply the same permutation to `values`.
template <typename K, typename V, typename Compare = std::less<K>>
void sort_by_key(std::span<K> keys, std::span<V> values, Compare comp = {},
                 simt::ThreadPool& pool = simt::ThreadPool::global()) {
  struct Pair {
    K k;
    V v;
  };
  std::vector<Pair> pairs(keys.size());
  pool.parallel_for(keys.size(), [&](std::size_t i, unsigned) {
    pairs[i] = {keys[i], values[i]};
  });
  prim::sort(std::span<Pair>(pairs),
             [&comp](const Pair& a, const Pair& b) { return comp(a.k, b.k); },
             pool);
  pool.parallel_for(keys.size(), [&](std::size_t i, unsigned) {
    keys[i] = pairs[i].k;
    values[i] = pairs[i].v;
  });
}

}  // namespace glouvain::prim
