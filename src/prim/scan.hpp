// Parallel prefix sums — the Thrust analogue used between kernels.
//
// The paper's host code calls Thrust prefix sums three times per
// aggregation (newID renumbering, edge-position bounds, vertex-start
// offsets; Algorithm 3 lines 12–16). These implementations use the
// classic two-pass block-scan: per-chunk partial sums, a sequential
// scan over the (few) chunk totals, then a parallel fix-up pass.
//
// Every entry point has a Scratch-accepting overload that draws the
// chunk-partial buffer from a reusable arena (zero allocations in
// steady state); the plain overloads remain as thin self-allocating
// wrappers for one-off callers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "prim/scratch.hpp"
#include "simt/thread_pool.hpp"

namespace glouvain::prim {

namespace detail {

constexpr std::size_t kScanSerialCutoff = 1 << 15;

template <typename T>
T exclusive_scan_chunked(std::span<const T> in, std::span<T> out,
                         std::span<T> partial, std::size_t chunk_size,
                         simt::ThreadPool& pool) {
  const std::size_t n = in.size();
  const std::size_t chunks = partial.size();
  pool.parallel_for(chunks, 1, [&](std::size_t c, unsigned) {
    const std::size_t b = c * chunk_size;
    const std::size_t e = std::min(b + chunk_size, n);
    T sum{};
    for (std::size_t i = b; i < e; ++i) sum += in[i];
    partial[c] = sum;
  });

  T total{};
  for (std::size_t c = 0; c < chunks; ++c) {
    const T v = partial[c];
    partial[c] = total;
    total += v;
  }

  pool.parallel_for(chunks, 1, [&](std::size_t c, unsigned) {
    const std::size_t b = c * chunk_size;
    const std::size_t e = std::min(b + chunk_size, n);
    T running = partial[c];
    for (std::size_t i = b; i < e; ++i) {
      const T v = in[i];
      out[i] = running;
      running += v;
    }
  });
  return total;
}

template <typename T>
T inclusive_scan_chunked(std::span<const T> in, std::span<T> out,
                         std::span<T> partial, std::size_t chunk_size,
                         simt::ThreadPool& pool) {
  const std::size_t n = in.size();
  const std::size_t chunks = partial.size();
  pool.parallel_for(chunks, 1, [&](std::size_t c, unsigned) {
    const std::size_t b = c * chunk_size;
    const std::size_t e = std::min(b + chunk_size, n);
    T sum{};
    for (std::size_t i = b; i < e; ++i) sum += in[i];
    partial[c] = sum;
  });

  T total{};
  for (std::size_t c = 0; c < chunks; ++c) {
    const T v = partial[c];
    partial[c] = total;
    total += v;
  }

  pool.parallel_for(chunks, 1, [&](std::size_t c, unsigned) {
    const std::size_t b = c * chunk_size;
    const std::size_t e = std::min(b + chunk_size, n);
    T running = partial[c];
    for (std::size_t i = b; i < e; ++i) {
      running += in[i];
      out[i] = running;
    }
  });
  return total;
}

}  // namespace detail

/// out[i] = sum of in[0..i); returns the grand total. in and out may
/// alias. Falls back to a serial scan below the cutoff. Chunk partials
/// come from `scratch`: no heap allocation once the arena is warm.
template <typename T>
T exclusive_scan(std::span<const T> in, std::span<T> out, Scratch& scratch,
                 simt::ThreadPool& pool = simt::ThreadPool::global()) {
  const std::size_t n = in.size();
  if (n == 0) return T{};
  if (n <= detail::kScanSerialCutoff || pool.size() == 1) {
    T running{};
    for (std::size_t i = 0; i < n; ++i) {
      const T v = in[i];
      out[i] = running;
      running += v;
    }
    return running;
  }
  const std::size_t chunks = 4 * pool.size();
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  Scratch::Frame frame(scratch);
  return detail::exclusive_scan_chunked(in, out, scratch.alloc<T>(chunks),
                                        chunk_size, pool);
}

/// Self-allocating overload for one-off callers.
template <typename T>
T exclusive_scan(std::span<const T> in, std::span<T> out,
                 simt::ThreadPool& pool = simt::ThreadPool::global()) {
  const std::size_t n = in.size();
  if (n == 0) return T{};
  if (n <= detail::kScanSerialCutoff || pool.size() == 1) {
    T running{};
    for (std::size_t i = 0; i < n; ++i) {
      const T v = in[i];
      out[i] = running;
      running += v;
    }
    return running;
  }
  const std::size_t chunks = 4 * pool.size();
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<T> partial(chunks, T{});
  return detail::exclusive_scan_chunked(in, out, std::span<T>(partial),
                                        chunk_size, pool);
}

/// In-place convenience overloads.
template <typename T>
T exclusive_scan(std::span<T> data, Scratch& scratch,
                 simt::ThreadPool& pool = simt::ThreadPool::global()) {
  return exclusive_scan(std::span<const T>(data.data(), data.size()), data,
                        scratch, pool);
}

template <typename T>
T exclusive_scan(std::span<T> data,
                 simt::ThreadPool& pool = simt::ThreadPool::global()) {
  return exclusive_scan(std::span<const T>(data.data(), data.size()), data, pool);
}

/// out[i] = sum of in[0..i]; returns the grand total. in and out may
/// alias. Same two-pass structure as exclusive_scan.
template <typename T>
T inclusive_scan(std::span<const T> in, std::span<T> out, Scratch& scratch,
                 simt::ThreadPool& pool = simt::ThreadPool::global()) {
  const std::size_t n = in.size();
  if (n == 0) return T{};
  if (n <= detail::kScanSerialCutoff || pool.size() == 1) {
    T running{};
    for (std::size_t i = 0; i < n; ++i) {
      running += in[i];
      out[i] = running;
    }
    return running;
  }
  const std::size_t chunks = 4 * pool.size();
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  Scratch::Frame frame(scratch);
  return detail::inclusive_scan_chunked(in, out, scratch.alloc<T>(chunks),
                                        chunk_size, pool);
}

/// Self-allocating overload for one-off callers.
template <typename T>
T inclusive_scan(std::span<const T> in, std::span<T> out,
                 simt::ThreadPool& pool = simt::ThreadPool::global()) {
  const std::size_t n = in.size();
  if (n == 0) return T{};
  if (n <= detail::kScanSerialCutoff || pool.size() == 1) {
    T running{};
    for (std::size_t i = 0; i < n; ++i) {
      running += in[i];
      out[i] = running;
    }
    return running;
  }
  const std::size_t chunks = 4 * pool.size();
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<T> partial(chunks, T{});
  return detail::inclusive_scan_chunked(in, out, std::span<T>(partial),
                                        chunk_size, pool);
}

/// In-place convenience overloads.
template <typename T>
T inclusive_scan(std::span<T> data, Scratch& scratch,
                 simt::ThreadPool& pool = simt::ThreadPool::global()) {
  return inclusive_scan(std::span<const T>(data.data(), data.size()), data,
                        scratch, pool);
}

template <typename T>
T inclusive_scan(std::span<T> data,
                 simt::ThreadPool& pool = simt::ThreadPool::global()) {
  return inclusive_scan(std::span<const T>(data.data(), data.size()), data, pool);
}

}  // namespace glouvain::prim
