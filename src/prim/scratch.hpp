// Reusable scratch arena for the prim primitives — the host-side
// analogue of the paper's cudaMalloc-once device buffers. Every prim
// call that needs temporary storage (scan partials, merge buffers,
// partition counters, counting-sort histograms) can draw it from a
// Scratch instead of heap-allocating per call, so steady-state
// invocations perform zero allocations.
//
// Structure: a bump allocator over a list of fixed chunks (the same
// never-invalidate discipline as simt::SharedArena). Chunks are
// retained across resets, so once the arena has warmed up to a
// workload's high-water mark, every later request is served from
// existing memory. Nested primitives compose through Frame, an RAII
// mark/release guard: allocations made inside a frame are reclaimed
// when it ends, without ever freeing the underlying chunks.
//
// A Scratch is single-threaded: it belongs to the driver thread that
// launches kernels (exactly like a CUDA stream's workspace buffer);
// worker threads never allocate from it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace glouvain::prim {

class Scratch {
 public:
  /// Arena observability — feeds the obs "ws/*" counters.
  struct Counters {
    std::uint64_t requests = 0;        ///< alloc() calls
    std::uint64_t bytes_requested = 0; ///< sum of rounded request sizes
    std::uint64_t hits = 0;            ///< served from an existing chunk
    std::uint64_t heap_grows = 0;      ///< required a new heap chunk
    std::uint64_t live_high_water = 0; ///< max concurrently-live bytes
  };

  Scratch() = default;
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;
  Scratch(Scratch&&) = default;
  Scratch& operator=(Scratch&&) = default;

  /// Allocate `count` elements of trivially-destructible T. The span is
  /// uninitialized and stays valid until the enclosing Frame ends (or
  /// reset()); later allocations never invalidate it.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    const std::size_t bytes = align_up(count * sizeof(T));
    return {reinterpret_cast<T*>(raw_alloc(bytes)), count};
  }

  /// RAII mark/release: allocations after construction are reclaimed
  /// (chunks kept) when the frame is destroyed. Frames nest.
  class Frame {
   public:
    explicit Frame(Scratch& scratch) noexcept
        : scratch_(scratch),
          chunk_index_(scratch.chunk_index_),
          chunk_used_(scratch.chunk_used_),
          live_bytes_(scratch.live_bytes_) {}
    ~Frame() {
      scratch_.chunk_index_ = chunk_index_;
      scratch_.chunk_used_ = chunk_used_;
      scratch_.live_bytes_ = live_bytes_;
    }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    Scratch& scratch_;
    std::size_t chunk_index_;
    std::size_t chunk_used_;
    std::size_t live_bytes_;
  };

  /// Release every allocation (chunks are kept for reuse).
  void reset() noexcept {
    chunk_index_ = 0;
    chunk_used_ = 0;
    live_bytes_ = 0;
  }

  /// Bytes of chunk capacity currently held (the arena footprint).
  std::size_t held_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.size();
    return total;
  }

  const Counters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = {}; }

 private:
  static constexpr std::size_t kMinChunk = 256 * 1024;

  static std::size_t align_up(std::size_t bytes) noexcept {
    constexpr std::size_t kAlign = alignof(std::max_align_t);
    return (bytes + kAlign - 1) & ~(kAlign - 1);
  }

  unsigned char* raw_alloc(std::size_t bytes) {
    ++counters_.requests;
    counters_.bytes_requested += bytes;
    live_bytes_ += bytes;
    if (live_bytes_ > counters_.live_high_water) {
      counters_.live_high_water = live_bytes_;
    }
    while (chunk_index_ < chunks_.size()) {
      auto& chunk = chunks_[chunk_index_];
      if (chunk_used_ + bytes <= chunk.size()) {
        unsigned char* p = chunk.data() + chunk_used_;
        chunk_used_ += bytes;
        ++counters_.hits;
        return p;
      }
      ++chunk_index_;
      chunk_used_ = 0;
    }
    ++counters_.heap_grows;
    chunks_.emplace_back(std::max(bytes, kMinChunk));
    chunk_index_ = chunks_.size() - 1;
    chunk_used_ = bytes;
    return chunks_.back().data();
  }

  // vector<unsigned char> buffers come from operator new and are
  // max_align_t-aligned; offsets stay aligned via align_up.
  std::vector<std::vector<unsigned char>> chunks_;
  std::size_t chunk_index_ = 0;
  std::size_t chunk_used_ = 0;
  std::size_t live_bytes_ = 0;
  Counters counters_;
};

}  // namespace glouvain::prim
