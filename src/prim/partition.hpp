// Parallel stable partition — the Thrust partition() the paper's host
// code uses to pull out the vertices of one degree bucket (Algorithm 1
// line 5) and the communities of one work bucket (Algorithm 3 line 21).
//
// Count-scan-scatter: each chunk counts its matching elements, an
// exclusive scan over chunk counts assigns output offsets, then chunks
// scatter. Stability (original relative order preserved on both sides)
// follows because chunks are contiguous and offsets are monotone.
//
// The Scratch-accepting overload draws the per-chunk counters from a
// reusable arena (zero allocations in steady state).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "prim/scratch.hpp"
#include "simt/thread_pool.hpp"

namespace glouvain::prim {

namespace detail {

constexpr std::size_t kPartitionSerialCutoff = 1 << 14;

template <typename T, typename Pred>
std::size_t stable_partition_chunked(std::span<const T> in, std::span<T> out,
                                     Pred& pred, std::span<std::size_t> true_count,
                                     std::span<std::size_t> true_off,
                                     std::span<std::size_t> false_off,
                                     std::size_t chunk_size,
                                     simt::ThreadPool& pool) {
  const std::size_t n = in.size();
  const std::size_t chunks = true_count.size();

  pool.parallel_for(chunks, 1, [&](std::size_t c, unsigned) {
    const std::size_t b = c * chunk_size;
    const std::size_t e = std::min(b + chunk_size, n);
    std::size_t t = 0;
    for (std::size_t i = b; i < e; ++i) t += pred(in[i]) ? 1 : 0;
    true_count[c] = t;
  });

  std::size_t total_true = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    true_off[c] = total_true;
    total_true += true_count[c];
  }
  std::size_t false_running = total_true;
  for (std::size_t c = 0; c < chunks; ++c) {
    false_off[c] = false_running;
    const std::size_t b = c * chunk_size;
    const std::size_t e = std::min(b + chunk_size, n);
    false_running += (e > b ? e - b : 0) - true_count[c];
  }

  pool.parallel_for(chunks, 1, [&](std::size_t c, unsigned) {
    const std::size_t b = c * chunk_size;
    const std::size_t e = std::min(b + chunk_size, n);
    std::size_t t = true_off[c], f = false_off[c];
    for (std::size_t i = b; i < e; ++i) {
      if (pred(in[i])) out[t++] = in[i];
      else out[f++] = in[i];
    }
  });
  return total_true;
}

}  // namespace detail

/// Copy all elements of `in` satisfying pred to the front of `out` and
/// the rest to the back; returns the number of matching elements.
/// in and out must not alias; out.size() >= in.size().
template <typename T, typename Pred>
std::size_t stable_partition_copy(std::span<const T> in, std::span<T> out,
                                  Pred&& pred, Scratch& scratch,
                                  simt::ThreadPool& pool = simt::ThreadPool::global()) {
  const std::size_t n = in.size();
  if (n == 0) return 0;
  if (n <= detail::kPartitionSerialCutoff || pool.size() == 1) {
    std::size_t lo = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(in[i])) out[lo++] = in[i];
    }
    std::size_t back = lo;
    for (std::size_t i = 0; i < n; ++i) {
      if (!pred(in[i])) out[back++] = in[i];
    }
    return lo;
  }
  const std::size_t chunks = 4 * pool.size();
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  Scratch::Frame frame(scratch);
  return detail::stable_partition_chunked(
      in, out, pred, scratch.alloc<std::size_t>(chunks),
      scratch.alloc<std::size_t>(chunks), scratch.alloc<std::size_t>(chunks),
      chunk_size, pool);
}

/// Self-allocating overload for one-off callers.
template <typename T, typename Pred>
std::size_t stable_partition_copy(std::span<const T> in, std::span<T> out,
                                  Pred&& pred,
                                  simt::ThreadPool& pool = simt::ThreadPool::global()) {
  const std::size_t n = in.size();
  if (n == 0) return 0;
  if (n <= detail::kPartitionSerialCutoff || pool.size() == 1) {
    std::size_t lo = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(in[i])) out[lo++] = in[i];
    }
    std::size_t back = lo;
    for (std::size_t i = 0; i < n; ++i) {
      if (!pred(in[i])) out[back++] = in[i];
    }
    return lo;
  }
  const std::size_t chunks = 4 * pool.size();
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::size_t> true_count(chunks), true_off(chunks), false_off(chunks);
  return detail::stable_partition_chunked(
      in, out, pred, std::span<std::size_t>(true_count),
      std::span<std::size_t>(true_off), std::span<std::size_t>(false_off),
      chunk_size, pool);
}

}  // namespace glouvain::prim
