// Per-worker scratch memory modelling the GPU's on-chip *shared memory*
// versus off-chip *global memory* split (§4.1 of the paper).
//
// Each worker thread owns one SharedArena whose capacity defaults to
// the 48 KiB of a Kepler SM's shared memory. Kernels request their
// per-vertex hash tables from it; requests that exceed the remaining
// shared capacity spill into a heap-backed overflow region, and the
// spill count is tracked so experiments can verify that the paper's
// bucket boundaries really do keep groups 1–6 on-chip.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "check/check.hpp"

namespace glouvain::simt {

class SharedArena {
 public:
  static constexpr std::size_t kDefaultCapacity = 48 * 1024;  // Kepler SM

  explicit SharedArena(std::size_t capacity_bytes = kDefaultCapacity)
      : shared_(capacity_bytes) {
    if (!shared_.empty()) check::register_arena(shared_.data(), shared_.size());
  }

  ~SharedArena() {
    if (!shared_.empty()) check::unregister_arena(shared_.data());
    for (auto& chunk : chunks_) {
      if (!chunk.empty()) check::unregister_arena(chunk.data());
    }
  }

  // Arenas are owned 1:1 by device workers; copying one would alias its
  // buffers in the shadow registry. Moves are fine — registration is
  // keyed on the heap buffers, which a move transfers intact (and the
  // moved-from vectors are empty, so its destructor unregisters
  // nothing).
  SharedArena(const SharedArena&) = delete;
  SharedArena& operator=(const SharedArena&) = delete;
  SharedArena(SharedArena&&) noexcept = default;
  SharedArena& operator=(SharedArena&&) = delete;

  /// Drop all allocations (called between tasks, like the implicit
  /// reclamation of shared memory between thread blocks). Overflow
  /// chunks are kept for reuse, so steady-state tasks allocate nothing.
  void reset() noexcept {
    shared_used_ = 0;
    chunk_index_ = 0;
    chunk_used_ = 0;
    if constexpr (check::enabled()) {
      if (!shared_.empty()) check::reset_arena(shared_.data());
      for (auto& chunk : chunks_) check::reset_arena(chunk.data());
    }
  }

  /// Allocate `count` elements of T. If the shared region has room the
  /// span lives there; otherwise it comes from the overflow region and
  /// the spill counter ticks. Previously returned spans are NEVER
  /// invalidated by later allocations (until reset()).
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    const std::size_t bytes = align_up(count * sizeof(T));
    if (shared_used_ + bytes <= shared_.size()) {
      T* p = reinterpret_cast<T*>(shared_.data() + shared_used_);
      shared_used_ += bytes;
      return {p, count};
    }
    ++spills_;
    return {reinterpret_cast<T*>(global_alloc(bytes)), count};
  }

  /// Allocate from the overflow ("global memory") region explicitly —
  /// used for the highest bucket where the paper also goes off-chip.
  template <typename T>
  std::span<T> alloc_global(std::size_t count) {
    const std::size_t bytes = align_up(count * sizeof(T));
    return {reinterpret_cast<T*>(global_alloc(bytes)), count};
  }

  std::size_t capacity() const noexcept { return shared_.size(); }
  std::size_t shared_used() const noexcept { return shared_used_; }
  std::uint64_t spills() const noexcept { return spills_; }
  void clear_spills() noexcept { spills_ = 0; }

 private:
  static std::size_t align_up(std::size_t bytes) noexcept {
    constexpr std::size_t kAlign = alignof(std::max_align_t);
    return (bytes + kAlign - 1) & ~(kAlign - 1);
  }

  /// Bump allocator over a list of fixed chunks. Chunks are never
  /// resized or freed while in use, so earlier spans stay valid.
  unsigned char* global_alloc(std::size_t bytes) {
    static constexpr std::size_t kMinChunk = 256 * 1024;
    while (chunk_index_ < chunks_.size()) {
      auto& chunk = chunks_[chunk_index_];
      if (chunk_used_ + bytes <= chunk.size()) {
        unsigned char* p = chunk.data() + chunk_used_;
        chunk_used_ += bytes;
        return p;
      }
      ++chunk_index_;
      chunk_used_ = 0;
    }
    chunks_.emplace_back(std::max(bytes, kMinChunk));
    chunk_index_ = chunks_.size() - 1;
    chunk_used_ = bytes;
    check::register_arena(chunks_.back().data(), chunks_.back().size());
    return chunks_.back().data();
  }

  // vector<unsigned char>'s buffer comes from operator new and is
  // therefore max_align_t-aligned; offsets stay aligned via align_up.
  std::vector<unsigned char> shared_;
  std::vector<std::vector<unsigned char>> chunks_;
  std::size_t shared_used_ = 0;
  std::size_t chunk_index_ = 0;
  std::size_t chunk_used_ = 0;
  std::uint64_t spills_ = 0;
};

}  // namespace glouvain::simt
