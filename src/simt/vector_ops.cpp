// Runtime dispatch + scalar-emulation twins for the vector primitives.
// The emulation paths are semantically identical to the AVX2 paths
// (same fold order up to the epsilon tie rule, same masking), so a
// machine without AVX2 — or a run with GLOUVAIN_NO_AVX2 set — produces
// valid results through the exact same call graph, just without the
// vector ALUs.

#include "simt/vector_ops.hpp"

#include "simt/backend.hpp"
#include "simt/kernel_ops.hpp"

namespace glouvain::simt::vec {

namespace {

BestSlot scan_best_emulated(const std::uint32_t* keys, const double* weights,
                            const std::uint32_t* occ, std::size_t cap,
                            std::uint32_t skip_key, const double* tot,
                            double k, double inv_m2) noexcept {
  constexpr std::uint32_t kNull = 0xffffffffu;
  BestComm best = kEmptyBest;
  double d_skip = 0;
  for (std::size_t pos = 0; pos < cap; ++pos) {
    if (occ != nullptr) {
      if ((occ[pos >> 5] & (1u << (pos & 31))) == 0) continue;
    } else if (keys[pos] == kNull) {
      continue;
    }
    const std::uint32_t c = keys[pos];
    if (c == skip_key) {
      d_skip = weights[pos];
      continue;
    }
    const double gain = weights[pos] - k * tot[c] * inv_m2;
    best = better(best, {gain, c});
  }
  return {best.gain, best.comm, d_skip};
}

}  // namespace

void gather_u32(const std::uint32_t* idx, std::size_t n,
                const std::uint32_t* table, std::uint32_t* out) noexcept {
  if (cpu_has_avx2()) {
    detail::gather_u32_avx2(idx, n, table, out);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = table[idx[i]];
}

BestSlot scan_best_sentinel(const std::uint32_t* keys, const double* weights,
                            std::size_t cap, std::uint32_t skip_key,
                            const double* tot, double k,
                            double inv_m2) noexcept {
  if (cpu_has_avx2()) {
    return detail::scan_best_sentinel_avx2(keys, weights, cap, skip_key, tot,
                                           k, inv_m2);
  }
  return scan_best_emulated(keys, weights, nullptr, cap, skip_key, tot, k,
                            inv_m2);
}

BestSlot scan_best_occ(const std::uint32_t* keys, const double* weights,
                       const std::uint32_t* occ, std::size_t cap,
                       std::uint32_t skip_key, const double* tot, double k,
                       double inv_m2) noexcept {
  if (cpu_has_avx2()) {
    return detail::scan_best_occ_avx2(keys, weights, occ, cap, skip_key, tot,
                                      k, inv_m2);
  }
  return scan_best_emulated(keys, weights, occ, cap, skip_key, tot, k,
                            inv_m2);
}

double row_internal_weight(const std::uint32_t* adj, const double* w,
                           std::size_t deg, const std::uint32_t* community,
                           std::uint32_t c) noexcept {
  if (cpu_has_avx2()) {
    return detail::row_internal_weight_avx2(adj, w, deg, community, c);
  }
  double internal = 0;
  for (std::size_t i = 0; i < deg; ++i) {
    if (community[adj[i]] == c) internal += w[i];
  }
  return internal;
}

}  // namespace glouvain::simt::vec
