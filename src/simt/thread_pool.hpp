// Persistent worker pool: the "streaming multiprocessors" of the
// software SIMT device (see device.hpp). All data-parallel loops in the
// library run through parallel_for / parallel_chunks on this pool.
//
// Scheduling is dynamic: the iteration space is cut into grain-sized
// chunks which workers (and the calling thread) claim with a single
// fetch_add, so skewed workloads — the whole point of the paper's
// degree bucketing — balance automatically across OS threads while the
// *within-chunk* order stays deterministic.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace glouvain::simt {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, including the calling thread.
  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()) + 1; }

  /// fn(begin, end, worker) over [0, n) in grain-sized chunks.
  /// `worker` is a stable id in [0, size()). Not reentrant: a nested
  /// call from inside fn executes sequentially on the caller.
  ///
  /// The callable is dispatched through a monomorphic trampoline — a
  /// plain function pointer plus the caller's stack address — so no
  /// std::function is constructed per launch and no allocation happens
  /// on the hot launch path (the kernel-launch analogue of a CUDA
  /// <<<>>> being allocation-free).
  template <typename F>
  void parallel_chunks(std::size_t n, std::size_t grain, F&& fn) {
    using Fn = std::remove_reference_t<F>;
    run_job(n, grain,
            [](void* ctx, std::size_t b, std::size_t e, unsigned w) {
              (*static_cast<Fn*>(ctx))(b, e, w);
            },
            const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }

  /// fn(i, worker) for every i in [0, n).
  template <typename F>
  void parallel_for(std::size_t n, std::size_t grain, F&& fn) {
    parallel_chunks(n, grain, [&fn](std::size_t b, std::size_t e, unsigned w) {
      for (std::size_t i = b; i < e; ++i) fn(i, w);
    });
  }

  /// Convenience: grain chosen as n / (8 * size()), clamped to [1, 4096].
  template <typename F>
  void parallel_for(std::size_t n, F&& fn) {
    parallel_for(n, default_grain(n), std::forward<F>(fn));
  }

  std::size_t default_grain(std::size_t n) const noexcept;

  /// Process-wide pool (size from GLOUVAIN_THREADS env var, else hardware).
  static ThreadPool& global();

 private:
  /// Type-erased chunk body: fn(ctx, begin, end, worker). `ctx` points
  /// at the caller's callable, which outlives the (synchronous) job.
  using RawChunkFn = void (*)(void*, std::size_t, std::size_t, unsigned);

  void run_job(std::size_t n, std::size_t grain, RawChunkFn fn, void* ctx);
  void worker_loop(unsigned worker_id);
  void run_chunks(unsigned worker_id);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;

  // Current job (valid while active_ > 0).
  RawChunkFn job_fn_ = nullptr;
  void* job_ctx_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_grain_ = 1;
  std::atomic<std::size_t> next_chunk_{0};
  std::atomic<unsigned> active_{0};
  std::atomic<bool> in_parallel_{false};

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace glouvain::simt
