// Atomic operations on plain arrays, mirroring the CUDA intrinsics the
// paper's kernels use (atomicAdd, atomicCAS). Implemented with C++20
// std::atomic_ref so the underlying containers stay ordinary vectors
// that the non-kernel host code can read directly between launches —
// exactly the global-memory model of the GPU original.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "check/check.hpp"

namespace glouvain::simt {

/// atomicAdd(&loc, v): returns the OLD value, like the CUDA intrinsic.
template <typename T>
inline T atomic_add(T& loc, T v) noexcept {
  static_assert(std::is_arithmetic_v<T>);
  check::note_atomic(&loc);
  if constexpr (std::is_floating_point_v<T>) {
    // GCC 12's atomic_ref<double>::fetch_add lowers to a CAS loop; we
    // spell the loop out so the code matches the CUDA pre-Pascal
    // atomicAdd(double) semantics and works on any libstdc++.
    std::atomic_ref<T> ref(loc);
    T old = ref.load(std::memory_order_relaxed);
    while (!ref.compare_exchange_weak(old, old + v, std::memory_order_relaxed)) {
    }
    return old;
  } else {
    return std::atomic_ref<T>(loc).fetch_add(v, std::memory_order_relaxed);
  }
}

/// atomicSub analogue.
template <typename T>
inline T atomic_sub(T& loc, T v) noexcept {
  return atomic_add(loc, static_cast<T>(-v));
}

/// atomicCAS(&loc, expected, desired): returns the value read; the swap
/// happened iff the return value equals `expected` (CUDA semantics).
template <typename T>
inline T atomic_cas(T& loc, T expected, T desired) noexcept {
  std::atomic_ref<T> ref(loc);
  const bool won = ref.compare_exchange_strong(
      expected, desired, std::memory_order_acq_rel, std::memory_order_acquire);
  if (won) {
    check::note_cas_claim(&loc);
  } else {
    check::note_atomic(&loc);
  }
  return expected;  // compare_exchange writes the observed value on failure
}

/// atomicMin analogue; returns the old value.
template <typename T>
inline T atomic_min(T& loc, T v) noexcept {
  check::note_atomic(&loc);
  std::atomic_ref<T> ref(loc);
  T old = ref.load(std::memory_order_relaxed);
  while (v < old && !ref.compare_exchange_weak(old, v, std::memory_order_relaxed)) {
  }
  return old;
}

/// atomicMax analogue; returns the old value.
template <typename T>
inline T atomic_max(T& loc, T v) noexcept {
  check::note_atomic(&loc);
  std::atomic_ref<T> ref(loc);
  T old = ref.load(std::memory_order_relaxed);
  while (v > old && !ref.compare_exchange_weak(old, v, std::memory_order_relaxed)) {
  }
  return old;
}

/// Volatile-style read/write used where kernels communicate through
/// global arrays across a launch boundary.
template <typename T>
inline T atomic_load(const T& loc) noexcept {
  check::note_atomic(&loc);
  return std::atomic_ref<const T>(loc).load(std::memory_order_acquire);
}

template <typename T>
inline void atomic_store(T& loc, T v) noexcept {
  check::note_atomic(&loc);
  std::atomic_ref<T>(loc).store(v, std::memory_order_release);
}

}  // namespace glouvain::simt
