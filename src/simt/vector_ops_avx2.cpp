// AVX2 lowering of the vector lane primitives. This translation unit
// is compiled with -mavx2 -mfma (see simt/CMakeLists.txt) and must be
// entered only behind simt::cpu_has_avx2() — the dispatchers in
// vector_ops.cpp guarantee that, so no function here re-checks.
//
// Numeric contract (see vector_ops.hpp): per-element gain arithmetic
// is the same IEEE multiply/multiply/subtract chain as the scalar
// kernel; the argmax keeps the 1e-15 epsilon tie rule of
// kernel_ops.hpp, evaluated lane-wise and then folded lane 0..7 in a
// fixed order, so results are deterministic for a given input.

#include "simt/vector_ops.hpp"

#if defined(__AVX2__)
#include <immintrin.h>

#include "simt/kernel_ops.hpp"
#endif

namespace glouvain::simt::vec::detail {

#if defined(__AVX2__)

namespace {

constexpr double kEps = 1e-15;

/// u32 -> double, exact over the full 32-bit range (the 2^52 mantissa
/// trick; plain _mm256_cvtepi32_pd would misread ids >= 2^31).
inline __m256d u32_to_pd(__m128i v) noexcept {
  const __m256i magic = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256i v64 = _mm256_cvtepu32_epi64(v);
  return _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(v64, magic)),
                       _mm256_set1_pd(4503599627370496.0));
}

/// Running 4-lane argmax state plus the epsilon-tie fold, the vector
/// form of kernel_ops better().
struct BestLanes {
  __m256d gain = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  __m256d key = _mm256_set1_pd(4294967295.0);

  void fold(__m256d gain4, __m256d key4) noexcept {
    const __m256d veps = _mm256_set1_pd(kEps);
    const __m256d gt =
        _mm256_cmp_pd(gain4, _mm256_add_pd(gain, veps), _CMP_GT_OQ);
    const __m256d ge =
        _mm256_cmp_pd(gain4, _mm256_sub_pd(gain, veps), _CMP_GT_OQ);
    const __m256d lt = _mm256_cmp_pd(key4, key, _CMP_LT_OQ);
    const __m256d take = _mm256_or_pd(gt, _mm256_and_pd(ge, lt));
    gain = _mm256_blendv_pd(gain, gain4, take);
    key = _mm256_blendv_pd(key, key4, take);
  }

  /// Fold the 4 lanes into one candidate, lane 0 first.
  BestComm collapse() const noexcept {
    alignas(32) double g[4];
    alignas(32) double k[4];
    _mm256_store_pd(g, gain);
    _mm256_store_pd(k, key);
    BestComm best = kEmptyBest;
    for (int lane = 0; lane < 4; ++lane) {
      best = better(best, {g[lane], static_cast<std::uint32_t>(k[lane])});
    }
    return best;
  }
};

/// One 8-slot step of the fused scan. `ks` holds the 8 keys, `cand`
/// the candidate mask (live slot, key != skip). Evaluates
/// w - k*tot[key]*inv_m2 under the mask and folds into lo/hi.
inline void scan_step(__m256i ks, __m256i cand, const double* weights,
                      std::size_t at, const double* tot, __m256d vk,
                      __m256d vinv, BestLanes& lo, BestLanes& hi) noexcept {
  const __m256d vneginf =
      _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  const __m128i keys_lo = _mm256_castsi256_si128(ks);
  const __m128i keys_hi = _mm256_extracti128_si256(ks, 1);
  const __m256i m_lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(cand));
  const __m256i m_hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(cand, 1));
  const __m256d mpd_lo = _mm256_castsi256_pd(m_lo);
  const __m256d mpd_hi = _mm256_castsi256_pd(m_hi);
  // Masked gathers: dead lanes neither fault nor load (the sentinel
  // key 0xffffffff would index far past tot[]).
  const __m256d t_lo = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), tot,
                                                keys_lo, mpd_lo, 8);
  const __m256d t_hi = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), tot,
                                                keys_hi, mpd_hi, 8);
  const __m256d w_lo = _mm256_loadu_pd(weights + at);
  const __m256d w_hi = _mm256_loadu_pd(weights + at + 4);
  __m256d gain_lo = _mm256_sub_pd(
      w_lo, _mm256_mul_pd(_mm256_mul_pd(vk, t_lo), vinv));
  __m256d gain_hi = _mm256_sub_pd(
      w_hi, _mm256_mul_pd(_mm256_mul_pd(vk, t_hi), vinv));
  gain_lo = _mm256_blendv_pd(vneginf, gain_lo, mpd_lo);
  gain_hi = _mm256_blendv_pd(vneginf, gain_hi, mpd_hi);
  lo.fold(gain_lo, u32_to_pd(keys_lo));
  hi.fold(gain_hi, u32_to_pd(keys_hi));
}

inline BestComm collapse(const BestLanes& lo, const BestLanes& hi) noexcept {
  return better(lo.collapse(), hi.collapse());
}

}  // namespace

void gather_u32_avx2(const std::uint32_t* idx, std::size_t n,
                     const std::uint32_t* table, std::uint32_t* out) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(table),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i)), 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  for (; i < n; ++i) out[i] = table[idx[i]];
}

BestSlot scan_best_sentinel_avx2(const std::uint32_t* keys,
                                 const double* weights, std::size_t cap,
                                 std::uint32_t skip_key, const double* tot,
                                 double k, double inv_m2) noexcept {
  const __m256i vnull = _mm256_set1_epi32(-1);
  const __m256i vskip = _mm256_set1_epi32(static_cast<int>(skip_key));
  const __m256d vk = _mm256_set1_pd(k);
  const __m256d vinv = _mm256_set1_pd(inv_m2);
  BestLanes lo, hi;
  double d_skip = 0;
  std::size_t i = 0;
  for (; i + 8 <= cap; i += 8) {
    const __m256i ks =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i isnull = _mm256_cmpeq_epi32(ks, vnull);
    if (_mm256_movemask_epi8(isnull) == -1) continue;  // all 8 empty
    const __m256i isskip = _mm256_cmpeq_epi32(ks, vskip);
    const int skipm = _mm256_movemask_ps(_mm256_castsi256_ps(isskip));
    if (skipm != 0) {
      d_skip = weights[i + __builtin_ctz(static_cast<unsigned>(skipm))];
    }
    const __m256i cand = _mm256_andnot_si256(
        _mm256_or_si256(isnull, isskip), _mm256_set1_epi32(-1));
    scan_step(ks, cand, weights, i, tot, vk, vinv, lo, hi);
  }
  BestComm best = collapse(lo, hi);
  for (; i < cap; ++i) {
    const std::uint32_t c = keys[i];
    if (c == 0xffffffffu) continue;
    if (c == skip_key) {
      d_skip = weights[i];
      continue;
    }
    best = better(best, {weights[i] - k * tot[c] * inv_m2, c});
  }
  return {best.gain, best.comm, d_skip};
}

BestSlot scan_best_occ_avx2(const std::uint32_t* keys, const double* weights,
                            const std::uint32_t* occ, std::size_t cap,
                            std::uint32_t skip_key, const double* tot,
                            double k, double inv_m2) noexcept {
  const __m256i bitsel = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256i vskip = _mm256_set1_epi32(static_cast<int>(skip_key));
  const __m256d vk = _mm256_set1_pd(k);
  const __m256d vinv = _mm256_set1_pd(inv_m2);
  BestLanes lo, hi;
  double d_skip = 0;
  std::size_t i = 0;
  // i stays a multiple of 8, so the 8 occupancy bits of a chunk never
  // straddle a 32-bit word.
  for (; i + 8 <= cap; i += 8) {
    const unsigned bits8 = (occ[i >> 5] >> (i & 31)) & 0xffu;
    if (bits8 == 0) continue;
    const __m256i vb = _mm256_set1_epi32(static_cast<int>(bits8));
    const __m256i live =
        _mm256_cmpeq_epi32(_mm256_and_si256(vb, bitsel), bitsel);
    const __m256i ks =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    // Dead slots hold garbage keys — every comparison is masked by the
    // occupancy word.
    const __m256i isskip =
        _mm256_and_si256(_mm256_cmpeq_epi32(ks, vskip), live);
    const int skipm = _mm256_movemask_ps(_mm256_castsi256_ps(isskip));
    if (skipm != 0) {
      d_skip = weights[i + __builtin_ctz(static_cast<unsigned>(skipm))];
    }
    const __m256i cand = _mm256_andnot_si256(isskip, live);
    scan_step(ks, cand, weights, i, tot, vk, vinv, lo, hi);
  }
  BestComm best = collapse(lo, hi);
  for (; i < cap; ++i) {
    if ((occ[i >> 5] & (1u << (i & 31))) == 0) continue;
    const std::uint32_t c = keys[i];
    if (c == skip_key) {
      d_skip = weights[i];
      continue;
    }
    best = better(best, {weights[i] - k * tot[c] * inv_m2, c});
  }
  return {best.gain, best.comm, d_skip};
}

double row_internal_weight_avx2(const std::uint32_t* adj, const double* w,
                                std::size_t deg,
                                const std::uint32_t* community,
                                std::uint32_t c) noexcept {
  const __m256i vc = _mm256_set1_epi32(static_cast<int>(c));
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= deg; i += 8) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(adj + i));
    const __m256i comm =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(community), a, 4);
    const __m256i eq = _mm256_cmpeq_epi32(comm, vc);
    const __m256i m_lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(eq));
    const __m256i m_hi =
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(eq, 1));
    acc_lo = _mm256_add_pd(
        acc_lo, _mm256_and_pd(_mm256_loadu_pd(w + i), _mm256_castsi256_pd(m_lo)));
    acc_hi = _mm256_add_pd(
        acc_hi,
        _mm256_and_pd(_mm256_loadu_pd(w + i + 4), _mm256_castsi256_pd(m_hi)));
  }
  alignas(32) double out[4];
  _mm256_store_pd(out, _mm256_add_pd(acc_lo, acc_hi));
  double s = (out[0] + out[1]) + (out[2] + out[3]);
  for (; i < deg; ++i) {
    if (community[adj[i]] == c) s += w[i];
  }
  return s;
}

#else  // !__AVX2__

// This TU was built without AVX2 (non-x86 toolchain): the dispatchers
// never call in because cpu_has_avx2() is false, but the symbols must
// exist to link.
void gather_u32_avx2(const std::uint32_t*, std::size_t, const std::uint32_t*,
                     std::uint32_t*) noexcept {
  __builtin_trap();
}
BestSlot scan_best_sentinel_avx2(const std::uint32_t*, const double*,
                                 std::size_t, std::uint32_t, const double*,
                                 double, double) noexcept {
  __builtin_trap();
}
BestSlot scan_best_occ_avx2(const std::uint32_t*, const double*,
                            const std::uint32_t*, std::size_t, std::uint32_t,
                            const double*, double, double) noexcept {
  __builtin_trap();
}
double row_internal_weight_avx2(const std::uint32_t*, const double*,
                                std::size_t, const std::uint32_t*,
                                std::uint32_t) noexcept {
  __builtin_trap();
}

#endif  // __AVX2__

}  // namespace glouvain::simt::vec::detail
