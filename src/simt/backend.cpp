#include "simt/backend.hpp"

#include <cstdlib>

namespace glouvain::simt {

namespace {

bool probe_avx2() noexcept {
  if (std::getenv("GLOUVAIN_NO_AVX2") != nullptr) return false;
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

bool cpu_has_avx2() noexcept {
  static const bool has = probe_avx2();
  return has;
}

Backend resolve_backend(Backend requested) noexcept {
  if (requested == Backend::kAuto) {
    return cpu_has_avx2() ? Backend::kVector : Backend::kScalar;
  }
  return requested;
}

}  // namespace glouvain::simt
