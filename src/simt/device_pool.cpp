#include "simt/device_pool.hpp"

#include <algorithm>
#include <thread>

namespace glouvain::simt {

DevicePool::DevicePool(const DevicePoolConfig& config) : config_(config) {
  if (config_.max_devices == 0) config_.max_devices = 1;
  threads_per_device_ = config_.threads_per_device;
  if (threads_per_device_ == 0) {
    unsigned total = config_.total_threads;
    if (total == 0) total = std::max(1u, std::thread::hardware_concurrency());
    threads_per_device_ = std::max(1u, total / config_.max_devices);
  }
  devices_.resize(config_.max_devices);
  in_use_.assign(config_.max_devices, false);
  stats_.capacity = config_.max_devices;
}

DevicePool::~DevicePool() = default;

unsigned DevicePool::capacity() const noexcept { return config_.max_devices; }

DeviceLease DevicePool::acquire(unsigned want) {
  want = std::clamp(want, 1u, config_.max_devices);
  std::unique_lock lock(m_);
  cv_.wait(lock, [&] {
    return std::find(in_use_.begin(), in_use_.end(), false) != in_use_.end();
  });
  std::vector<unsigned> indices;
  std::vector<Device*> granted;
  for (unsigned i = 0; i < config_.max_devices && granted.size() < want; ++i) {
    if (in_use_[i]) continue;
    if (!devices_[i]) {
      DeviceConfig dc = config_.device;
      dc.worker_threads = threads_per_device_;
      devices_[i] = std::make_unique<Device>(dc);
      ++stats_.devices_created;
    }
    in_use_[i] = true;
    indices.push_back(i);
    granted.push_back(devices_[i].get());
  }
  ++stats_.leases;
  stats_.devices_granted += granted.size();
  if (granted.size() < want) ++stats_.degraded_leases;
  return DeviceLease(this, std::move(indices), std::move(granted));
}

void DevicePool::release(const std::vector<unsigned>& indices) {
  {
    const std::lock_guard lock(m_);
    for (const unsigned i : indices) in_use_[i] = false;
  }
  cv_.notify_all();
}

DevicePool::Stats DevicePool::stats() const {
  const std::lock_guard lock(m_);
  return stats_;
}

}  // namespace glouvain::simt
