// A pool of warm simt::Devices handed out in multi-device leases — the
// "k distinct GPUs" of the sharded deployment (DESIGN.md §14). The
// sharded engine asks for one device per shard; the pool grants as many
// as are free and the lease multiplexes shards onto the grant
// round-robin. The degradation ladder is therefore graceful by
// construction:
//
//     k free devices  -> every shard sweeps on its own device;
//     f < k free      -> shard s runs on lane s % f (round-robin);
//     1 free          -> the sequential simulation, one warm device.
//
// acquire() only BLOCKS while zero devices are free — holding out for a
// full grant would serialize concurrent jobs exactly when the pool is
// busiest. Devices are constructed lazily (first lease that reaches
// them), so an unused pool costs two vectors; each device keeps its
// thread pool + shared arenas warm for its next lease, mirroring how
// svc::Service keeps core detectors warm per worker.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include <condition_variable>

#include "simt/device.hpp"

namespace glouvain::simt {

struct DevicePoolConfig {
  /// Devices the pool can hand out (the "GPUs in the box").
  unsigned max_devices = 2;
  /// Worker threads per device; 0 splits total_threads evenly across
  /// max_devices (at least 1 each) so k concurrent shard sweeps never
  /// oversubscribe the host the way k full-width devices would.
  unsigned threads_per_device = 0;
  /// Host threads to split when threads_per_device == 0; 0 = hardware
  /// concurrency.
  unsigned total_threads = 0;
  /// Template for each pooled device (backend, block shape, arena
  /// bytes). worker_threads is overridden per the fields above.
  DeviceConfig device;
};

class DeviceLease;

class DevicePool {
 public:
  struct Stats {
    std::uint64_t leases = 0;           ///< acquire() calls served
    std::uint64_t devices_granted = 0;  ///< sum of granted() over leases
    std::uint64_t degraded_leases = 0;  ///< granted fewer than asked
    unsigned devices_created = 0;       ///< lazily constructed so far
    unsigned capacity = 0;              ///< == config.max_devices
  };

  explicit DevicePool(const DevicePoolConfig& config = {});
  ~DevicePool();

  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

  /// Lease up to `want` devices (want is clamped to [1, capacity]).
  /// Grants min(want, free) immediately when any device is free;
  /// blocks only while every device is leased out. The lease releases
  /// on destruction.
  DeviceLease acquire(unsigned want);

  unsigned capacity() const noexcept;
  Stats stats() const;

 private:
  friend class DeviceLease;
  void release(const std::vector<unsigned>& indices);

  DevicePoolConfig config_;
  unsigned threads_per_device_ = 1;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<bool> in_use_;
  Stats stats_;
};

/// Move-only RAII grant of 1..want devices. Shards map onto the grant
/// by device_for(shard) — round-robin multiplexing when the pool
/// degraded the lease below the asked-for width.
class DeviceLease {
 public:
  DeviceLease() = default;
  DeviceLease(DeviceLease&& other) noexcept { *this = std::move(other); }
  DeviceLease& operator=(DeviceLease&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = other.pool_;
      indices_ = std::move(other.indices_);
      devices_ = std::move(other.devices_);
      other.pool_ = nullptr;
      other.indices_.clear();
      other.devices_.clear();
    }
    return *this;
  }
  ~DeviceLease() { release(); }

  unsigned granted() const noexcept {
    return static_cast<unsigned>(devices_.size());
  }
  Device& device(unsigned lane) const { return *devices_[lane]; }
  /// Round-robin shard placement over the granted lanes.
  Device& device_for(unsigned shard) const {
    return *devices_[shard % devices_.size()];
  }
  unsigned lane_of(unsigned shard) const noexcept {
    return shard % static_cast<unsigned>(devices_.size());
  }

 private:
  friend class DevicePool;
  DeviceLease(DevicePool* pool, std::vector<unsigned> indices,
              std::vector<Device*> devices)
      : pool_(pool), indices_(std::move(indices)), devices_(std::move(devices)) {}
  void release() {
    if (pool_ != nullptr) pool_->release(indices_);
    pool_ = nullptr;
    indices_.clear();
    devices_.clear();
  }

  DevicePool* pool_ = nullptr;
  std::vector<unsigned> indices_;
  std::vector<Device*> devices_;
};

}  // namespace glouvain::simt
