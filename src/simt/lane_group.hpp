// Warp-synchronous lane groups: the unit the paper assigns to a vertex.
//
// On the GPU a vertex of degree d is processed by a group of 2^k lanes
// of one warp (k in [2,5]), by a full warp, or by a whole 128-thread
// block; lanes iterate the vertex's edges in an interleaved (strided)
// pattern and finish with a shuffle-style reduction to pick the best
// community. The software device preserves that structure: a LaneGroup
// executes its lanes in lockstep rounds inside ONE OS thread — a warp
// never diverges across OS threads, matching SIMT — while different
// groups (different vertices) run concurrently on the pool.
//
// Keeping the lane-strided visit order and per-lane partial state means
// the kernel code below is a line-by-line transcription of Algorithm 2
// rather than a loose CPU re-imagining of it.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <span>
#include <utility>

namespace glouvain::simt {

class LaneGroup {
 public:
  /// Scalar lockstep substrate; kernels written against the group
  /// concept branch on this to pick their lowering (see kernel_ops.hpp
  /// and lane_vec.hpp for the vector twin).
  static constexpr bool kVector = false;

  // Precondition: `lanes` is a power of two (the GPU widths 4..32 and
  // 128 all are). reduce()'s offset-halving tree visits exactly
  // lanes/2 + lanes/4 + ... slots; with a non-power-of-two width the
  // first halving drops the top lanes' values on the floor, silently
  // losing candidates.
  explicit constexpr LaneGroup(unsigned lanes) noexcept : lanes_(lanes) {
    assert(lanes > 0 && (lanes & (lanes - 1)) == 0 &&
           "LaneGroup width must be a power of two");
  }

  constexpr unsigned lanes() const noexcept { return lanes_; }

  /// Visit indices [0, n) in warp order: round r dispatches index
  /// r*lanes+lane for each active lane. fn(lane, index).
  template <typename F>
  void strided_for(std::size_t n, F&& fn) const {
    for (std::size_t base = 0; base < n; base += lanes_) {
      const std::size_t limit = std::min<std::size_t>(lanes_, n - base);
      for (unsigned lane = 0; lane < limit; ++lane) {
        fn(lane, base + lane);
      }
    }
  }

  /// Tree reduction of per-lane values, emulating __shfl_down_sync.
  /// combine(a, b) must be associative and commutative.
  ///
  /// Preconditions: lane_values covers ALL lanes() entries and every
  /// entry is initialized (idle lanes must hold the combine identity —
  /// a partial final strided_for round leaves trailing lanes untouched,
  /// and the first halving reads them). lane count must be a power of
  /// two, enforced at construction.
  template <typename T, typename Combine>
  T reduce(std::span<T> lane_values, Combine&& combine) const {
    assert(lane_values.size() >= lanes_ &&
           "reduce needs a full-width lane array");
    for (unsigned offset = lanes_ / 2; offset > 0; offset /= 2) {
      for (unsigned lane = 0; lane < offset; ++lane) {
        lane_values[lane] =
            combine(lane_values[lane], lane_values[lane + offset]);
      }
    }
    return lane_values[0];
  }

  /// Exclusive prefix sum over per-lane counts (Hillis–Steele shape);
  /// returns the total. Used when lanes claim slots in an output array.
  ///
  /// Precondition: lane_values covers all lanes() entries, idle lanes
  /// zero-initialized (they contribute nothing but are still read).
  template <typename T>
  T exclusive_scan(std::span<T> lane_values) const {
    assert(lane_values.size() >= lanes_ &&
           "exclusive_scan needs a full-width lane array");
    T running{};
    for (unsigned lane = 0; lane < lanes_; ++lane) {
      const T v = lane_values[lane];
      lane_values[lane] = running;
      running += v;
    }
    return running;
  }

 private:
  unsigned lanes_;
};

/// LaneGroup with a compile-time lane count. The hot kernels dispatch
/// to one of these for the standard warp-group widths so the strided
/// loops and the reduction tree compile with constant bounds (unrolled,
/// modulo strength-reduced). Semantically identical to
/// LaneGroup(kLanes) call for call.
template <unsigned kLanes>
class FixedLaneGroup {
 public:
  static_assert(kLanes > 0 && (kLanes & (kLanes - 1)) == 0,
                "lane groups are power-of-two wide (see LaneGroup)");

  static constexpr bool kVector = false;

  static constexpr unsigned lanes() noexcept { return kLanes; }

  template <typename F>
  void strided_for(std::size_t n, F&& fn) const {
    for (std::size_t base = 0; base < n; base += kLanes) {
      const std::size_t limit = std::min<std::size_t>(kLanes, n - base);
      for (unsigned lane = 0; lane < limit; ++lane) {
        fn(lane, base + lane);
      }
    }
  }

  /// Same preconditions as LaneGroup::reduce: full-width span, every
  /// lane initialized (idle lanes hold the combine identity).
  template <typename T, typename Combine>
  T reduce(std::span<T> lane_values, Combine&& combine) const {
    assert(lane_values.size() >= kLanes &&
           "reduce needs a full-width lane array");
    for (unsigned offset = kLanes / 2; offset > 0; offset /= 2) {
      for (unsigned lane = 0; lane < offset; ++lane) {
        lane_values[lane] =
            combine(lane_values[lane], lane_values[lane + offset]);
      }
    }
    return lane_values[0];
  }

  template <typename T>
  T exclusive_scan(std::span<T> lane_values) const {
    assert(lane_values.size() >= kLanes &&
           "exclusive_scan needs a full-width lane array");
    T running{};
    for (unsigned lane = 0; lane < kLanes; ++lane) {
      const T v = lane_values[lane];
      lane_values[lane] = running;
      running += v;
    }
    return running;
  }
};

}  // namespace glouvain::simt
