// Warp-synchronous lane groups: the unit the paper assigns to a vertex.
//
// On the GPU a vertex of degree d is processed by a group of 2^k lanes
// of one warp (k in [2,5]), by a full warp, or by a whole 128-thread
// block; lanes iterate the vertex's edges in an interleaved (strided)
// pattern and finish with a shuffle-style reduction to pick the best
// community. The software device preserves that structure: a LaneGroup
// executes its lanes in lockstep rounds inside ONE OS thread — a warp
// never diverges across OS threads, matching SIMT — while different
// groups (different vertices) run concurrently on the pool.
//
// Keeping the lane-strided visit order and per-lane partial state means
// the kernel code below is a line-by-line transcription of Algorithm 2
// rather than a loose CPU re-imagining of it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>

namespace glouvain::simt {

class LaneGroup {
 public:
  explicit constexpr LaneGroup(unsigned lanes) noexcept : lanes_(lanes) {}

  constexpr unsigned lanes() const noexcept { return lanes_; }

  /// Visit indices [0, n) in warp order: round r dispatches index
  /// r*lanes+lane for each active lane. fn(lane, index).
  template <typename F>
  void strided_for(std::size_t n, F&& fn) const {
    for (std::size_t base = 0; base < n; base += lanes_) {
      const std::size_t limit = std::min<std::size_t>(lanes_, n - base);
      for (unsigned lane = 0; lane < limit; ++lane) {
        fn(lane, base + lane);
      }
    }
  }

  /// Tree reduction of per-lane values, emulating __shfl_down_sync.
  /// combine(a, b) must be associative and commutative.
  template <typename T, typename Combine>
  T reduce(std::span<T> lane_values, Combine&& combine) const {
    for (unsigned offset = lanes_ / 2; offset > 0; offset /= 2) {
      for (unsigned lane = 0; lane < offset; ++lane) {
        lane_values[lane] =
            combine(lane_values[lane], lane_values[lane + offset]);
      }
    }
    return lane_values[0];
  }

  /// Exclusive prefix sum over per-lane counts (Hillis–Steele shape);
  /// returns the total. Used when lanes claim slots in an output array.
  template <typename T>
  T exclusive_scan(std::span<T> lane_values) const {
    T running{};
    for (unsigned lane = 0; lane < lanes_; ++lane) {
      const T v = lane_values[lane];
      lane_values[lane] = running;
      running += v;
    }
    return running;
  }

 private:
  unsigned lanes_;
};

/// LaneGroup with a compile-time lane count. The hot kernels dispatch
/// to one of these for the standard warp-group widths so the strided
/// loops and the reduction tree compile with constant bounds (unrolled,
/// modulo strength-reduced). Semantically identical to
/// LaneGroup(kLanes) call for call.
template <unsigned kLanes>
class FixedLaneGroup {
 public:
  static constexpr unsigned lanes() noexcept { return kLanes; }

  template <typename F>
  void strided_for(std::size_t n, F&& fn) const {
    for (std::size_t base = 0; base < n; base += kLanes) {
      const std::size_t limit = std::min<std::size_t>(kLanes, n - base);
      for (unsigned lane = 0; lane < limit; ++lane) {
        fn(lane, base + lane);
      }
    }
  }

  template <typename T, typename Combine>
  T reduce(std::span<T> lane_values, Combine&& combine) const {
    for (unsigned offset = kLanes / 2; offset > 0; offset /= 2) {
      for (unsigned lane = 0; lane < offset; ++lane) {
        lane_values[lane] =
            combine(lane_values[lane], lane_values[lane + offset]);
      }
    }
    return lane_values[0];
  }

  template <typename T>
  T exclusive_scan(std::span<T> lane_values) const {
    T running{};
    for (unsigned lane = 0; lane < kLanes; ++lane) {
      const T v = lane_values[lane];
      lane_values[lane] = running;
      running += v;
    }
    return running;
  }
};

}  // namespace glouvain::simt
