// The vector lane substrate: a lane group whose rounds execute as AVX2
// vector instructions (with a portable scalar-emulation twin — see
// vector_ops.hpp) instead of the scalar lockstep loops of
// LaneGroup/FixedLaneGroup.
//
// VectorLaneGroup<kLanes> satisfies the same group concept the scalar
// groups do — lanes()/strided_for/reduce/exclusive_scan behave exactly
// like FixedLaneGroup<kLanes> — so any kernel written against the
// concept compiles against it unchanged. What changes is how the
// kernel COLLECTIVES of kernel_ops.hpp lower: with kVector set, the
// neighbourhood hash runs behind bulk community gathers and the slot
// scan/argmax runs as a masked vector sweep. kLanes keeps the paper's
// degree-bucket meaning (how many lanes cooperate on one vertex); the
// hardware vector width (8 × u32 / 4 × double under AVX2) is an
// implementation detail of the primitives underneath.
#pragma once

#include <cstdint>
#include <span>

#include "simt/lane_group.hpp"

namespace glouvain::simt {

/// Per-worker vector-lane occupancy accounting, surfaced by the obs
/// counters ("modopt/vector_lane_occupancy"): `active` useful lane
/// slots out of `slots` issued by the vector rounds.
struct VecLaneStats {
  std::uint64_t active = 0;
  std::uint64_t slots = 0;
};

template <unsigned kLanes>
class VectorLaneGroup {
 public:
  // The reduction tree and the strided round shape both assume a
  // power-of-two group; the paper's widths (4..32, 128) all qualify.
  static_assert(kLanes > 0 && (kLanes & (kLanes - 1)) == 0,
                "lane groups are power-of-two wide");

  static constexpr bool kVector = true;

  VectorLaneGroup() = default;
  explicit VectorLaneGroup(VecLaneStats* stats) noexcept : stats_(stats) {}

  static constexpr unsigned lanes() noexcept { return kLanes; }

  template <typename F>
  void strided_for(std::size_t n, F&& fn) const {
    FixedLaneGroup<kLanes>{}.strided_for(n, std::forward<F>(fn));
  }

  template <typename T, typename Combine>
  T reduce(std::span<T> lane_values, Combine&& combine) const {
    return FixedLaneGroup<kLanes>{}.reduce(lane_values,
                                           std::forward<Combine>(combine));
  }

  template <typename T>
  T exclusive_scan(std::span<T> lane_values) const {
    return FixedLaneGroup<kLanes>{}.exclusive_scan(lane_values);
  }

  void note_rounds(std::uint64_t active, std::uint64_t slots) const noexcept {
    if (stats_ != nullptr) {
      stats_->active += active;
      stats_->slots += slots;
    }
  }

 private:
  VecLaneStats* stats_ = nullptr;
};

}  // namespace glouvain::simt
