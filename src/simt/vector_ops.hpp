// Raw vector primitives of the AVX2 lane substrate: the operations a
// lane group's rounds lower to when the device runs Backend::kVector.
// Everything here works on raw pointers so the AVX2 translation unit
// (vector_ops_avx2.cpp, compiled with -mavx2 -mfma) needs no kernel
// headers, and every entry point carries a portable scalar-emulation
// twin selected at runtime — calling these is always safe, with or
// without AVX2 (see simt::cpu_has_avx2()).
//
// Semantics are pinned by the scalar kernels they accelerate:
//   * per-element arithmetic (the gain FMA chain) performs the exact
//     same IEEE operations as the scalar kernel, so individual gains
//     are bitwise-equal; only the argmax FOLD ORDER differs (vector
//     lanes fold slot i into accumulator lane i%4/i%8), which the
//     1e-15 epsilon tie rule of kernel_ops.hpp absorbs;
//   * reductions (row_internal_weight) re-associate the sum across
//     accumulator lanes — permitted on the vector backend only, whose
//     contract is ≥98% quality parity, not bitwise identity.
#pragma once

#include <cstddef>
#include <cstdint>

namespace glouvain::simt::vec {

/// Result of a fused slot scan: the argmax candidate plus the weight
/// found under `skip_key` (at most one slot holds it).
struct BestSlot {
  double gain;
  std::uint32_t key;
  double d_skip;
};

/// out[i] = table[idx[i]] for i in [0, n). The vector form issues
/// 8-wide AVX2 gathers — the serial cache-miss chain of the scalar
/// loop becomes memory-level parallelism.
void gather_u32(const std::uint32_t* idx, std::size_t n,
                const std::uint32_t* table, std::uint32_t* out) noexcept;

/// Fused "scan slots, gather tot, gain, argmax" over a sentinel-layout
/// table (keys[pos] == 0xffffffff marks an empty slot): for every
/// occupied slot with key != skip_key evaluate
///   gain = weights[pos] - k * tot[key] * inv_m2
/// and return the best (gain, key), ties to the lowest key under the
/// kernel_ops epsilon rule; d_skip receives weights at key == skip_key.
BestSlot scan_best_sentinel(const std::uint32_t* keys, const double* weights,
                            std::size_t cap, std::uint32_t skip_key,
                            const double* tot, double k,
                            double inv_m2) noexcept;

/// scan_best over the bit-packed-occupancy layout (zg::OccCommunityHashMap):
/// slot pos is live iff occ[pos >> 5] bit (pos & 31) is set; keys and
/// weights of dead slots are garbage and must stay masked out.
BestSlot scan_best_occ(const std::uint32_t* keys, const double* weights,
                       const std::uint32_t* occ, std::size_t cap,
                       std::uint32_t skip_key, const double* tot, double k,
                       double inv_m2) noexcept;

/// Sum of w[i] over i in [0, deg) where community[adj[i]] == c — the
/// inner loop of the device modularity evaluation. The vector form
/// re-associates the sum (4 accumulator lanes folded at the end).
double row_internal_weight(const std::uint32_t* adj, const double* w,
                           std::size_t deg, const std::uint32_t* community,
                           std::uint32_t c) noexcept;

namespace detail {
// AVX2 translation-unit entry points (vector_ops_avx2.cpp). Call only
// behind cpu_has_avx2() — the dispatchers above do.
void gather_u32_avx2(const std::uint32_t* idx, std::size_t n,
                     const std::uint32_t* table, std::uint32_t* out) noexcept;
BestSlot scan_best_sentinel_avx2(const std::uint32_t* keys,
                                 const double* weights, std::size_t cap,
                                 std::uint32_t skip_key, const double* tot,
                                 double k, double inv_m2) noexcept;
BestSlot scan_best_occ_avx2(const std::uint32_t* keys, const double* weights,
                            const std::uint32_t* occ, std::size_t cap,
                            std::uint32_t skip_key, const double* tot,
                            double k, double inv_m2) noexcept;
double row_internal_weight_avx2(const std::uint32_t* adj, const double* w,
                                std::size_t deg,
                                const std::uint32_t* community,
                                std::uint32_t c) noexcept;
}  // namespace detail

}  // namespace glouvain::simt::vec
