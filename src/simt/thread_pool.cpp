#include "simt/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace glouvain::simt {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads ? threads : std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n > 0 ? n - 1 : 0);
  for (unsigned w = 1; w < n; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    ++generation_;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

std::size_t ThreadPool::default_grain(std::size_t n) const noexcept {
  const std::size_t ideal = n / (8 * static_cast<std::size_t>(size()) + 1);
  return std::clamp<std::size_t>(ideal, 1, 4096);
}

void ThreadPool::run_chunks(unsigned worker_id) {
  for (;;) {
    const std::size_t begin = next_chunk_.fetch_add(job_grain_, std::memory_order_relaxed);
    if (begin >= job_n_) break;
    const std::size_t end = std::min(begin + job_grain_, job_n_);
    try {
      job_fn_(job_ctx_, begin, end, worker_id);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop(unsigned worker_id) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return generation_ != seen || shutdown_; });
      if (shutdown_) return;
      seen = generation_;
    }
    run_chunks(worker_id);
    if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      cv_done_.notify_one();
    }
  }
}

void ThreadPool::run_job(std::size_t n, std::size_t grain, RawChunkFn fn,
                         void* ctx) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);

  // Tiny invocations run inline on the caller.
  if (n <= grain || workers_.empty()) {
    fn(ctx, 0, n, 0);
    return;
  }
  // Nested invocations (a parallel loop launched from inside another
  // one) also run inline; the pool is single-occupancy by design.
  bool expected = false;
  if (!in_parallel_.compare_exchange_strong(expected, true)) {
    fn(ctx, 0, n, 0);
    return;
  }

  job_fn_ = fn;
  job_ctx_ = ctx;
  job_n_ = n;
  job_grain_ = grain;
  next_chunk_.store(0, std::memory_order_relaxed);
  active_.store(static_cast<unsigned>(workers_.size()), std::memory_order_relaxed);
  first_error_ = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++generation_;
  }
  cv_start_.notify_all();

  run_chunks(0);  // the caller participates as worker 0

  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return active_.load(std::memory_order_acquire) == 0; });
  }
  job_fn_ = nullptr;
  job_ctx_ = nullptr;
  in_parallel_.store(false, std::memory_order_release);
  if (first_error_) std::rethrow_exception(first_error_);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("GLOUVAIN_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<unsigned>(v);
    }
    return 0u;
  }());
  return pool;
}

}  // namespace glouvain::simt
