// The software SIMT device: thread pool + per-worker shared-memory
// arenas + kernel-launch API. This is the substitution for the CUDA
// runtime in the reproduction (see DESIGN.md §1): kernels are launched
// over a 1-D grid of tasks, each task runs to completion on one worker
// with access to that worker's SharedArena, and — exactly like thread
// blocks — tasks cannot synchronize with each other inside a launch;
// the host synchronizes by returning from launch().
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "check/check.hpp"
#include "simt/backend.hpp"
#include "simt/lane_group.hpp"
#include "simt/shared_arena.hpp"
#include "simt/thread_pool.hpp"

namespace glouvain::simt {

struct DeviceConfig {
  unsigned warp_size = 32;      ///< lanes per physical warp
  unsigned block_threads = 128; ///< 4 warps per block, as in the paper
  unsigned worker_threads = 0;  ///< 0 = hardware concurrency
  std::size_t shared_bytes = SharedArena::kDefaultCapacity;
  /// Lane substrate for the kernels launched on this device. kAuto
  /// resolves at construction (vector iff the CPU has AVX2 and
  /// GLOUVAIN_NO_AVX2 is unset); Device::backend() is always concrete.
  Backend backend = Backend::kAuto;
};

/// Execution context handed to each kernel task ("thread block").
class TaskContext {
 public:
  TaskContext(std::size_t task, unsigned worker, SharedArena& arena) noexcept
      : task_(task), worker_(worker), arena_(arena) {}

  std::size_t task() const noexcept { return task_; }
  unsigned worker() const noexcept { return worker_; }
  SharedArena& shared() noexcept { return arena_; }

 private:
  std::size_t task_;
  unsigned worker_;
  SharedArena& arena_;
};

class Device {
 public:
  explicit Device(const DeviceConfig& config = {})
      : config_(config),
        backend_(resolve_backend(config.backend)),
        pool_(std::make_unique<ThreadPool>(config.worker_threads)) {
    arenas_.reserve(pool_->size());
    for (unsigned w = 0; w < pool_->size(); ++w) {
      arenas_.emplace_back(config.shared_bytes);
    }
  }

  const DeviceConfig& config() const noexcept { return config_; }

  /// The resolved lane substrate — never kAuto. Kernel hosts dispatch
  /// their group type (scalar lockstep vs vector) on this.
  Backend backend() const noexcept { return backend_; }

  unsigned workers() const noexcept { return pool_->size(); }
  ThreadPool& pool() noexcept { return *pool_; }

  /// Launch `tasks` independent kernel tasks; body(TaskContext&).
  /// Returns when every task has completed (host-side sync point).
  template <typename Body>
  void launch(std::size_t tasks, Body&& body) {
    launch(tasks, /*grain=*/0, std::forward<Body>(body));
  }

  /// Launch with an explicit scheduling grain (tasks per dispatch).
  /// grain == 0 picks the pool default.
  template <typename Body>
  void launch(std::size_t tasks, std::size_t grain, Body&& body) {
    if (grain == 0) grain = pool_->default_grain(tasks);
    const std::uint64_t epoch = check::open_launch(tasks);
    pool_->parallel_for(tasks, grain,
                        [this, epoch, &body](std::size_t t, unsigned w) {
                          SharedArena& arena = arenas_[w];
                          arena.reset();
                          check::TaskScope task_scope(epoch, t);
                          TaskContext ctx(t, w, arena);
                          body(ctx);
                        });
    check::close_launch(epoch);
  }

  /// Plain data-parallel loop without arena setup — the analogue of a
  /// trivial elementwise kernel. fn(i). Each index is its own task for
  /// the checker: elementwise kernels must not couple their iterations.
  template <typename F>
  void for_each(std::size_t n, F&& fn) {
    const std::uint64_t epoch = check::open_launch(n);
    pool_->parallel_for(n, [epoch, &fn](std::size_t i, unsigned) {
      check::TaskScope task_scope(epoch, i);
      fn(i);
    });
    check::close_launch(epoch);
  }

  /// for_each that also hands the body its worker id — for elementwise
  /// kernels that index per-worker state (decode buffers, partial
  /// sums). Same checker bookkeeping as for_each. fn(i, worker).
  template <typename F>
  void for_each_worker(std::size_t n, F&& fn) {
    const std::uint64_t epoch = check::open_launch(n);
    pool_->parallel_for(n, [epoch, &fn](std::size_t i, unsigned w) {
      check::TaskScope task_scope(epoch, i);
      fn(i, w);
    });
    check::close_launch(epoch);
  }

  /// Shared-memory spill diagnostics, summed over workers.
  std::uint64_t total_spills() const noexcept {
    std::uint64_t s = 0;
    for (const auto& a : arenas_) s += a.spills();
    return s;
  }
  void clear_spills() noexcept {
    for (auto& a : arenas_) a.clear_spills();
  }

 private:
  DeviceConfig config_;
  Backend backend_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<SharedArena> arenas_;
};

/// Device pinned to the scalar lockstep substrate — today's semantics,
/// bitwise-identical partitions. Convenience over DeviceConfig.backend.
class ScalarDevice : public Device {
 public:
  explicit ScalarDevice(DeviceConfig config = {})
      : Device((config.backend = Backend::kScalar, config)) {}
};

/// Device pinned to the vector substrate (AVX2 when available, scalar
/// emulation of the same call graph otherwise).
class VectorDevice : public Device {
 public:
  explicit VectorDevice(DeviceConfig config = {})
      : Device((config.backend = Backend::kVector, config)) {}
};

}  // namespace glouvain::simt
