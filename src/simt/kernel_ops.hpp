// Backend-parameterized kernel collectives: the warp-level operations
// of the paper's kernels (neighbourhood hashing with slot claiming,
// the fused slot-scan + best-community reduction), written once and
// executed by whichever lane substrate the group provides.
//
//   * For the scalar groups (LaneGroup, FixedLaneGroup — kVector is
//     false) each collective is the line-by-line Algorithm 2 loop that
//     used to live in core/modopt.cpp, moved verbatim: operation
//     order, check:: notes and atomic_loads are identical, so the
//     scalar backend's partitions are bitwise-unchanged.
//   * For VectorLaneGroup (kVector true) the collective lowers to the
//     AVX2 primitives of vector_ops.hpp: bulk community gathers ahead
//     of the hash probes, and a masked vector scan/argmax instead of
//     the per-lane fold + shuffle tree.
//
// Under a GLOUVAIN_SIMTCHECK build every collective takes the scalar
// reference path regardless of group: the shadow-memory checker
// validates the scalar twin (raw vector loads carry no check:: notes,
// so instrumenting them would only blind the checker).
//
// Tables and rows are duck-typed (capacity/key_at/weight_at/occupied/
// insert_add/insert_add_claim; adj/w/deg) so this header depends on no
// core/ or zg/ type. Vector fast paths additionally use the raw-span
// accessors (keys_data/weights_data, kOccLayout, occ_data).
#pragma once

#include <algorithm>
#include <array>
#include <concepts>
#include <cstdint>
#include <limits>
#include <span>

#include "check/check.hpp"
#include "simt/atomics.hpp"
#include "simt/vector_ops.hpp"

namespace glouvain::simt {

/// Per-lane candidate for the warp argmax reduction (Algorithm 2 line
/// 14): best (gain, community) seen so far, ties to the lowest
/// community id, as §4 of the paper prescribes.
struct BestComm {
  double gain;
  std::uint32_t comm;
};

/// Identity element of better(): what an idle lane reports. Trivially
/// copyable so per-group candidate arrays can stay uninitialized past
/// the active lanes.
inline constexpr BestComm kEmptyBest{
    -std::numeric_limits<double>::infinity(),
    std::numeric_limits<std::uint32_t>::max()};

/// The argmax combine. The 1e-15 epsilon makes float-noise ties
/// deterministic (lowest community id wins); the vector scan's take
/// mask implements exactly this rule, so scalar and vector folds agree
/// except where gains differ by less than the epsilon.
inline BestComm better(const BestComm& a, const BestComm& b) noexcept {
  constexpr double kEps = 1e-15;
  if (b.gain > a.gain + kEps) return b;
  if (b.gain > a.gain - kEps && b.comm < a.comm) return b;
  return a;
}

/// Ascending sort of a claimed-slot list; tiny lists (the common case)
/// use insertion sort to skip the introsort dispatch.
inline void sort_slots(std::span<std::uint32_t> slots) noexcept {
  if (slots.size() <= 16) {
    for (std::size_t i = 1; i < slots.size(); ++i) {
      const std::uint32_t x = slots[i];
      std::size_t j = i;
      for (; j > 0 && slots[j - 1] > x; --j) slots[j] = slots[j - 1];
      slots[j] = x;
    }
    return;
  }
  std::sort(slots.begin(), slots.end());
}

namespace detail {

/// Edges gathered per chunk on the vector path: two 8-wide AVX2
/// gathers of neighbour communities land in this stack buffer before
/// the (inherently serial) hash probes consume them.
inline constexpr std::size_t kGatherChunk = 16;

template <typename Group>
concept HasLaneStats = requires(const Group& g) {
  g.note_rounds(std::uint64_t{}, std::uint64_t{});
};

/// Occupancy accounting for the obs counters: `active` lane slots did
/// useful work out of `slots` issued (vector width × rounds). No-op
/// for groups without a stats sink.
template <typename Group>
void note_rounds(const Group& group, std::uint64_t active,
                 std::uint64_t slots) noexcept {
  if constexpr (HasLaneStats<Group>) group.note_rounds(active, slots);
}

}  // namespace detail

/// Algorithm 2 lines 2-13 as a group collective: lane-parallel hashing
/// of vertex `self`'s neighbourhood into the task-local table,
/// accumulating edge weight under each neighbour's community and
/// recording claimed slots in `touched` (caller scratch >= capacity).
/// The self-loop contributes equally to every candidate (it moves with
/// the vertex), so it is skipped. Returns the claimed-slot count.
template <typename Group, typename Row, typename Table>
std::uint32_t hash_row_claim(const Group& group, const Row& r,
                             std::uint32_t self,
                             const std::uint32_t* community, Table& table,
                             std::uint32_t* touched) {
  std::uint32_t num_touched = 0;
  if constexpr (Group::kVector && !check::enabled()) {
    // Bulk-gather the neighbour communities a chunk at a time, then
    // probe serially from the register-warm buffer. community[] is
    // stable for the whole launch (moves commit between launches), so
    // the gathered values equal what per-probe atomic_loads would see.
    std::uint32_t cbuf[detail::kGatherChunk];
    for (std::size_t base = 0; base < r.deg; base += detail::kGatherChunk) {
      const std::size_t m =
          std::min<std::size_t>(detail::kGatherChunk, r.deg - base);
      vec::gather_u32(r.adj + base, m, community, cbuf);
      for (std::size_t i = 0; i < m; ++i) {
        if (r.adj[base + i] == self) continue;
        bool claimed = false;
        const std::size_t pos =
            table.insert_add_claim(cbuf[i], r.w[base + i], claimed);
        if (claimed) touched[num_touched++] = static_cast<std::uint32_t>(pos);
      }
    }
    detail::note_rounds(group, r.deg, (r.deg + 7) / 8 * 8);
    return num_touched;
  }
  group.strided_for(r.deg, [&](unsigned /*lane*/, std::size_t idx) {
    const std::uint32_t j = r.adj[idx];
    if (j == self) return;
    bool claimed = false;
    const std::size_t pos =
        table.insert_add_claim(atomic_load(community[j]), r.w[idx], claimed);
    if (claimed) touched[num_touched++] = static_cast<std::uint32_t>(pos);
  });
  return num_touched;
}

/// The aggregation flavour (Algorithm 3 mergeCommunity inner loop):
/// hash every edge of the row — self-loops included, they carry the
/// community's internal weight — without claim tracking.
template <typename Group, typename Row, typename Table>
void hash_row(const Group& group, const Row& r, const std::uint32_t* community,
              Table& table) {
  if constexpr (Group::kVector && !check::enabled()) {
    std::uint32_t cbuf[detail::kGatherChunk];
    for (std::size_t base = 0; base < r.deg; base += detail::kGatherChunk) {
      const std::size_t m =
          std::min<std::size_t>(detail::kGatherChunk, r.deg - base);
      vec::gather_u32(r.adj + base, m, community, cbuf);
      for (std::size_t i = 0; i < m; ++i) {
        table.insert_add(cbuf[i], r.w[base + i]);
      }
    }
    detail::note_rounds(group, r.deg, (r.deg + 7) / 8 * 8);
    return;
  }
  group.strided_for(r.deg, [&](unsigned /*lane*/, std::size_t idx) {
    table.insert_add(community[r.adj[idx]], r.w[idx]);
  });
}

namespace detail {

template <typename Table>
concept HasRawSlots = requires(const Table& t) {
  { Table::kOccLayout } -> std::convertible_to<bool>;
  t.keys_data();
  t.weights_data();
};

}  // namespace detail

/// Algorithm 2 line 14 as a group collective: scan the table's slots,
/// evaluate gain = weight - k * tot[key] * inv_m2 for every candidate
/// community, and reduce to the best (gain, community) — the software
/// form of the paper's shuffle-down argmax. The slot holding
/// `skip_key` (the vertex's current community) is excluded from the
/// argmax; its weight lands in d_skip for the caller's stay-gain term.
/// `touched` is the claimed-slot list from hash_row_claim (mutated:
/// sorted in place on the sparse path).
template <typename Group, typename Table>
BestComm scan_best(const Group& group, const Table& table,
                   std::span<std::uint32_t> touched, std::uint32_t skip_key,
                   const double* tot, double k, double inv_m2,
                   double& d_skip) {
  if constexpr (Group::kVector && !check::enabled()) {
    if (touched.size() * 4 <= table.capacity()) {
      // Sparse table: only the claimed slots matter. Ascending fold
      // order keeps the result deterministic for a given partition.
      sort_slots(touched);
      BestComm best = kEmptyBest;
      for (const std::uint32_t pos : touched) {
        const std::uint32_t c = table.key_at(pos);
        if (c == skip_key) {
          d_skip = table.weight_at(pos);
          continue;
        }
        const double gain = table.weight_at(pos) - k * tot[c] * inv_m2;
        best = better(best, {gain, c});
      }
      return best;
    }
    if constexpr (detail::HasRawSlots<Table>) {
      vec::BestSlot bs;
      if constexpr (Table::kOccLayout) {
        bs = vec::scan_best_occ(table.keys_data(), table.weights_data(),
                                table.occ_data(), table.capacity(), skip_key,
                                tot, k, inv_m2);
      } else {
        bs = vec::scan_best_sentinel(table.keys_data(), table.weights_data(),
                                     table.capacity(), skip_key, tot, k,
                                     inv_m2);
      }
      detail::note_rounds(group, touched.size(), table.capacity());
      d_skip = bs.d_skip;
      return {bs.gain, bs.key};
    }
  }

  // Scalar reference: per-lane fold + tree reduction, verbatim from
  // the original compute_move. Only the group's own lanes are
  // initialized: for a 4-lane group the other 124 entries are never
  // read, and zeroing all 2KB per vertex dominated small-degree
  // kernels.
  std::array<BestComm, 128> lane_best;
  for (unsigned l = 0; l < group.lanes(); ++l) lane_best[l] = kEmptyBest;
  const auto scan_slot = [&](unsigned lane, std::size_t pos) {
    const std::uint32_t c = table.key_at(pos);
    if (c == skip_key) {
      // Lanes of a group execute inside one OS thread, so this plain
      // write is race-free (at most one slot holds skip_key).
      d_skip = table.weight_at(pos);
      return;
    }
    const double gain = table.weight_at(pos) - k * atomic_load(tot[c]) * inv_m2;
    lane_best[lane] = better(lane_best[lane], {gain, c});
  };
  if (touched.size() * 4 <= table.capacity()) {
    // Sparse table (typical once the neighbourhood has collapsed into
    // a few communities): visit only the claimed slots, in ascending
    // position. strided_for assigns index i to lane i % lanes, so this
    // replays the full scan's exact per-lane fold sequences and the
    // chosen move is bit-identical.
    sort_slots(touched);
    for (const std::uint32_t pos : touched) {
      scan_slot(static_cast<unsigned>(pos % group.lanes()), pos);
    }
  } else {
    group.strided_for(table.capacity(), [&](unsigned lane, std::size_t pos) {
      if (!table.occupied(pos)) return;
      scan_slot(lane, pos);
    });
  }
  return group.reduce(
      std::span<BestComm>(lane_best.data(), group.lanes()),
      [](const BestComm& a, const BestComm& b) { return better(a, b); });
}

}  // namespace glouvain::simt
