// Execution backend of the software-SIMT device: which substrate a
// lane group's rounds run on.
//
//   kScalar — the original lockstep interpretation: every lane round
//     is an inner `for` loop. Bitwise-reference semantics; this is the
//     twin the simtcheck shadow-memory checker instruments.
//   kVector — the same kernels with the lane rounds lowered to real
//     vector instructions (AVX2 gathers, masked compares, 4-wide FMA
//     gain evaluation). Requires AVX2 at runtime; on a machine without
//     it the vector lane group transparently executes the scalar
//     emulation path, so selecting kVector is always safe.
//   kAuto — resolve at device construction: kVector when the CPU
//     reports AVX2, kScalar otherwise.
//
// The enum is deliberately dependency-free: detect::Options embeds it,
// and options.hpp must stay below every backend.
#pragma once

#include <string_view>

namespace glouvain::simt {

enum class Backend {
  kScalar,
  kVector,
  kAuto,
};

constexpr const char* backend_name(Backend b) noexcept {
  switch (b) {
    case Backend::kScalar: return "scalar";
    case Backend::kVector: return "vector";
    default: return "auto";
  }
}

/// Parse a backend name; returns false (and leaves `out` alone) on an
/// unknown name — callers turn that into the uniform exit-2 path.
inline bool parse_backend(std::string_view name, Backend& out) noexcept {
  if (name == "scalar") { out = Backend::kScalar; return true; }
  if (name == "vector") { out = Backend::kVector; return true; }
  if (name == "auto") { out = Backend::kAuto; return true; }
  return false;
}

/// True when the running CPU supports the AVX2 lane substrate. Probed
/// once (cpuid via __builtin_cpu_supports) and cached. The environment
/// variable GLOUVAIN_NO_AVX2, read at first call, forces false — the
/// CI fallback-dispatch smoke uses it to exercise the emulation path
/// on AVX2 hardware.
bool cpu_has_avx2() noexcept;

/// Collapse kAuto to the substrate this machine will actually run:
/// kVector when AVX2 is available, kScalar otherwise. kScalar and
/// kVector pass through unchanged (kVector without AVX2 still runs,
/// via the vector group's scalar emulation).
Backend resolve_backend(Backend requested) noexcept;

}  // namespace glouvain::simt
